package offramps

import (
	"sync"

	"offramps/internal/capture"
	"offramps/internal/firmware"
	"offramps/internal/printer"
	"offramps/internal/sim"
)

// TestbedCore pools the allocation-heavy per-run state of a testbed so
// a campaign worker resets instead of re-allocating: the simulation
// engine (wheel slots and far-tier heap keep their backing storage
// across Reset), the step-train cache, and — when results are reclaimed
// — recording and deposit backing arrays.
//
// Ownership rules (see DESIGN.md §12): a core may be reused by any
// number of *sequential* NewTestbed(WithCore(core)) calls, but never
// concurrently — one core belongs to one worker. Recordings and Parts
// transfer ownership to the Result they land in and are NEVER recycled
// implicitly; only an explicit Reclaim on a result the caller is done
// with returns their buffers to the core. A campaign whose results
// escape to sinks or the golden cache must not Reclaim them — engine
// and train reuse alone already removes the dominant rebuild cost, and
// fingerprint mode removes the recording allocations entirely.
type TestbedCore struct {
	engine   *sim.Engine
	trains   *firmware.TrainCache
	recBufs  [][]capture.Transaction
	deposits [][]printer.Deposit
}

// NewTestbedCore returns an empty core.
func NewTestbedCore() *TestbedCore {
	return &TestbedCore{
		engine: sim.NewEngine(),
		trains: firmware.NewTrainCache(),
	}
}

// Reclaim takes the bulk buffers out of a dead result — one the caller
// will not read again — and recycles them into the core for the next
// run. The result's Recording and Part fields are nilled so a stale
// reference cannot observe the buffers being rewritten.
func (c *TestbedCore) Reclaim(res *Result) {
	if res == nil {
		return
	}
	seen := make(map[*capture.Recording]bool, 3)
	for _, rec := range []*capture.Recording{res.Recording, res.ArduinoRecording, res.RAMPSRecording} {
		if rec == nil || seen[rec] {
			continue
		}
		seen[rec] = true
		if cap(rec.Transactions) > 0 {
			c.recBufs = append(c.recBufs, rec.Transactions[:0])
		}
	}
	res.Recording, res.ArduinoRecording, res.RAMPSRecording = nil, nil, nil
	if res.Part != nil {
		if d := res.Part.ReclaimDeposits(); cap(d) > 0 {
			c.deposits = append(c.deposits, d[:0])
		}
		res.Part = nil
	}
}

// takeRecBufs hands every spare recording buffer to a new rig.
func (c *TestbedCore) takeRecBufs() [][]capture.Transaction {
	bufs := c.recBufs
	c.recBufs = nil
	return bufs
}

// takeDeposits pops one spare deposit ledger, or nil.
func (c *TestbedCore) takeDeposits() []printer.Deposit {
	if n := len(c.deposits); n > 0 {
		d := c.deposits[n-1]
		c.deposits[n-1] = nil
		c.deposits = c.deposits[:n-1]
		return d
	}
	return nil
}

// corePool recycles worker cores across campaigns in one process.
var corePool = sync.Pool{New: func() any { return NewTestbedCore() }}

// acquireCore takes a pooled core; releaseCore returns it once the
// worker is done with every testbed built on it.
func acquireCore() *TestbedCore  { return corePool.Get().(*TestbedCore) }
func releaseCore(c *TestbedCore) { corePool.Put(c) }

// WithCore builds the testbed on a pooled core: the core's engine is
// Reset and reused, step trains come from the core's shared cache, and
// any reclaimed recording/deposit buffers are donated to the new rig.
// The caller must use cores sequentially (one live testbed per core).
func WithCore(c *TestbedCore) Option { return func(o *options) { o.core = c } }
