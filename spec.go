package offramps

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/flaw3d"
	"offramps/internal/fpga"
	"offramps/internal/gcode"
	"offramps/internal/sim"
	"offramps/internal/slicer"
	"offramps/internal/trojan"
)

// This file is the declarative face of the campaign layer: every
// experiment is data. A ScenarioSpec is a serializable description of one
// simulated print — program reference, trojan spec, detector spec, tap
// placement, seed policy, budget — that compiles into the runtime
// Scenario consumed by Campaign.Run. Trojans and detectors are resolved
// through the registries in internal/trojan and internal/detect, so a new
// scenario is a JSON file, not new Go code. The built-in experiment entry
// points (TableI, TableII, Figure4, Overhead, Drift, TapSides) all
// compile themselves from specs through this same path; hand-written
// Scenario closures remain supported as a thin adapter for cases a spec
// cannot express (e.g. Overhead's latency probes).

// BoxSpec describes a rectangular test part for the built-in slicer.
type BoxSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// ProgramSpec references the G-code a scenario prints. Exactly one source
// may be set — the built-in test part (Part, the default when the spec is
// all-zero), a sliced box (Box), or an external G-code file (File) — plus
// an optional Flaw3D tamper applied to the resolved program, mirroring
// the paper's "Python script which modifies given g-code" (§V-D).
type ProgramSpec struct {
	// Part names a built-in workload; "" and "testpart" are the standard
	// calibration box of the paper's evaluation.
	Part string `json:"part,omitempty"`
	// Flow scales the slicer's flow multiplier (0 means 1.0).
	Flow float64 `json:"flow,omitempty"`
	// Box slices a custom rectangular part.
	Box *BoxSpec `json:"box,omitempty"`
	// File loads external G-code, relative to the spec file's directory.
	File string `json:"file,omitempty"`
	// Flaw3D applies the numbered Table II bootloader-trojan emulation
	// (1..8) to the resolved program.
	Flaw3D int `json:"flaw3d,omitempty"`
}

// Resolve materializes the program. dir anchors relative file references.
func (p ProgramSpec) Resolve(dir string) (gcode.Program, error) {
	set := 0
	if p.Part != "" {
		set++
	}
	if p.Box != nil {
		set++
	}
	if p.File != "" {
		set++
	}
	if set > 1 {
		return nil, fmt.Errorf("offramps: program spec must set at most one of part, box, file")
	}

	var prog gcode.Program
	var err error
	flow := p.Flow
	if flow == 0 {
		flow = 1.0
	}
	switch {
	case p.File != "":
		if p.Flow != 0 {
			return nil, fmt.Errorf("offramps: flow applies to sliced programs, not G-code files")
		}
		path := p.File
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		f, ferr := os.Open(path)
		if ferr != nil {
			return nil, fmt.Errorf("offramps: program file: %w", ferr)
		}
		defer f.Close()
		prog, err = gcode.Parse(f)
	case p.Box != nil:
		box, berr := slicer.NewBox(p.Box.X, p.Box.Y, p.Box.Z)
		if berr != nil {
			return nil, fmt.Errorf("offramps: program box: %w", berr)
		}
		cfg := slicer.DefaultConfig()
		cfg.FlowMultiplier = flow
		prog, err = slicer.Slice(box, cfg)
	case p.Part == "" || p.Part == "testpart":
		if flow == 1.0 {
			// The standard part appears in every scenario of every
			// built-in suite; slice it once per process. Programs are
			// read-only downstream (campaign workers already share one),
			// and the Flaw3D tampers below never mutate their input.
			prog, err = defaultTestPart()
		} else {
			prog, err = TestPartWithFlow(flow)
		}
	default:
		return nil, fmt.Errorf("offramps: unknown built-in part %q", p.Part)
	}
	if err != nil {
		return nil, err
	}

	if p.Flaw3D != 0 {
		tc, ok := flaw3dCase(p.Flaw3D)
		if !ok {
			return nil, fmt.Errorf("offramps: flaw3d test case %d out of range 1..%d", p.Flaw3D, len(flaw3d.TableII()))
		}
		prog, err = tc.Apply(prog)
		if err != nil {
			return nil, fmt.Errorf("offramps: %s: %w", tc, err)
		}
	}
	return prog, nil
}

// defaultTestPart memoizes the flow-1.0 standard part shared by every
// built-in suite's scenarios.
var defaultTestPart = sync.OnceValues(TestPart)

// flaw3dCase looks up a Table II test case by its 1-based number.
func flaw3dCase(num int) (flaw3d.TestCase, bool) {
	cases := flaw3d.TableII()
	if num < 1 || num > len(cases) {
		return flaw3d.TestCase{}, false
	}
	return cases[num-1], true
}

// TrojanSpec names a registered trojan plus its JSON parameters (nil
// params mean the registry defaults — for "T1".."T9" those are the exact
// Table I settings).
type TrojanSpec struct {
	Name   string          `json:"name"`
	Params json.RawMessage `json:"params,omitempty"`
}

// DetectorSpec names a registered detector, its JSON parameters, the
// scenario whose capture serves as golden reference (for golden-based
// strategies), the tap the detector observes, and the trip policy.
type DetectorSpec struct {
	Name   string          `json:"name"`
	Params json.RawMessage `json:"params,omitempty"`
	// Golden names another scenario in the same suite whose primary
	// capture is the reference. Scenarios named here run in an earlier
	// wave (see SuiteSpec).
	Golden string `json:"golden,omitempty"`
	// Policy is "flag" (default: print finishes, verdict in the result)
	// or "abort" (halt the print the moment the detector trips).
	Policy string `json:"policy,omitempty"`
	// Tap binds the detector to a tap side: "" (the board's primary
	// tap), "arduino", "ramps", or "dual" (the paired feed attestation-
	// style detectors consume). The scenario's own tap placement must
	// include the bound side.
	Tap string `json:"tap,omitempty"`
}

// parseTapBinding maps the spec vocabulary onto TapBinding.
func parseTapBinding(s string) (TapBinding, error) {
	switch s {
	case "":
		return BindPrimary, nil
	case "arduino":
		return BindArduino, nil
	case "ramps":
		return BindRAMPS, nil
	case "dual", "both":
		return BindDual, nil
	default:
		return 0, fmt.Errorf("offramps: unknown detector tap %q (want arduino, ramps, or dual)", s)
	}
}

// parsePolicy maps the spec vocabulary onto TripPolicy.
func parsePolicy(s string) (TripPolicy, error) {
	switch s {
	case "", "flag":
		return FlagOnly, nil
	case "abort":
		return AbortOnTrip, nil
	default:
		return 0, fmt.Errorf("offramps: unknown trip policy %q (want flag or abort)", s)
	}
}

// ScenarioSpec is the serializable description of one simulated print:
// the (program × trojan × seed × detector × topology) tuple as data. It
// compiles to a Scenario via Compile.
type ScenarioSpec struct {
	// Name labels the scenario in results; unique within a suite.
	Name string `json:"name"`
	// Program references the G-code to print (zero value = the standard
	// test part).
	Program ProgramSpec `json:"program,omitzero"`
	// Seed pins the time-noise seed absolutely; when 0 the effective seed
	// is the compile context's base seed plus SeedDelta. This is the seed
	// policy that lets one spec file run under many base seeds while
	// keeping the paired-seed structure of the experiment suites.
	Seed uint64 `json:"seed,omitempty"`
	// SeedDelta offsets the base seed (ignored when Seed is set).
	SeedDelta uint64 `json:"seedDelta,omitempty"`
	// Trojan installs a registered trojan on the board.
	Trojan *TrojanSpec `json:"trojan,omitempty"`
	// Detector attaches a registered live detector to the run.
	Detector *DetectorSpec `json:"detector,omitempty"`
	// Tap places the monitoring tap: "arduino" (default), "ramps", or
	// "dual". See WithTapSide.
	Tap string `json:"tap,omitempty"`
	// MITM, when false, removes the board entirely (jumper configuration,
	// Figure 3a). Defaults to true.
	MITM *bool `json:"mitm,omitempty"`
	// Settle overrides how long the simulation keeps running after the
	// firmware stops (0 = default).
	Settle sim.Time `json:"settle,omitempty"`
	// Budget overrides the per-run simulated-time limit (0 = campaign
	// budget).
	Budget sim.Time `json:"budget,omitempty"`
}

// SpecContext carries what compilation needs beyond the spec itself.
type SpecContext struct {
	// BaseSeed anchors relative seed policies (Seed == 0).
	BaseSeed uint64
	// Dir anchors relative program file references.
	Dir string
	// Goldens resolves a DetectorSpec.Golden reference to a capture; nil
	// when the spec set uses no golden-based detectors.
	Goldens func(name string) *capture.Recording
}

// EffectiveSeed applies the spec's seed policy under a base seed.
func (s ScenarioSpec) EffectiveSeed(baseSeed uint64) uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return baseSeed + s.SeedDelta
}

// Compile resolves the spec into a runnable Scenario: the program is
// materialized, trojan and detector names are bound to their registry
// factories, and topology knobs become testbed options. Compilation
// validates eagerly — unknown registry names, bad params, and invalid
// tap/policy vocabulary fail here, not mid-campaign.
func (s ScenarioSpec) Compile(ctx SpecContext) (Scenario, error) {
	if s.Name == "" {
		return Scenario{}, fmt.Errorf("offramps: scenario spec needs a name")
	}
	fail := func(err error) (Scenario, error) {
		return Scenario{}, fmt.Errorf("offramps: spec %q: %w", s.Name, err)
	}

	prog, err := s.Program.Resolve(ctx.Dir)
	if err != nil {
		return fail(err)
	}
	out := Scenario{
		Name:    s.Name,
		Program: prog,
		Seed:    s.EffectiveSeed(ctx.BaseSeed),
	}

	if s.Trojan != nil {
		name, params := s.Trojan.Name, s.Trojan.Params
		// Trial build: surface unknown names and bad params at compile
		// time. Constructors are cheap and side-effect free (hooks install
		// at Arm time), so the trial trojan is simply discarded.
		if _, err := trojan.Build(name, params, out.Seed); err != nil {
			return fail(err)
		}
		out.Trojan = func(seed uint64) fpga.Trojan {
			t, err := trojan.Build(name, params, seed)
			if err != nil {
				return nil // reported by the campaign as a factory failure
			}
			return t
		}
	}

	tap, err := fpga.ParseTapSide(s.Tap)
	if err != nil {
		return fail(err)
	}

	if s.Detector != nil {
		d := *s.Detector
		policy, err := parsePolicy(d.Policy)
		if err != nil {
			return fail(err)
		}
		out.Policy = policy
		bind, err := parseTapBinding(d.Tap)
		if err != nil {
			return fail(err)
		}
		// The detector's tap binding must be a side the scenario actually
		// taps; this is the spec-level twin of Run's binding validation,
		// surfaced before any print simulates.
		switch bind {
		case BindArduino:
			if !tap.TapsArduino() {
				return fail(fmt.Errorf("config error: detector %q is bound to the arduino tap but the scenario taps %q", d.Name, tap))
			}
		case BindRAMPS:
			if !tap.TapsRAMPS() {
				return fail(fmt.Errorf("config error: detector %q is bound to the ramps tap but the scenario taps %q (set \"tap\": \"ramps\" or \"dual\")", d.Name, tap))
			}
		case BindDual:
			if tap != fpga.TapDual {
				return fail(fmt.Errorf("config error: detector %q is bound to the dual tap but the scenario taps %q (set \"tap\": \"dual\")", d.Name, tap))
			}
		}
		out.DetectorBind = bind
		goldens := ctx.Goldens
		if d.Golden != "" && goldens == nil {
			return fail(fmt.Errorf("detector %q references golden %q but the compile context resolves no goldens", d.Name, d.Golden))
		}
		// Trial build: unknown names and bad params must fail at compile
		// time, not after the prints have simulated. Golden-referencing
		// detectors are trial-built against a synthetic one-transaction
		// reference, since the real capture exists only at run time.
		env := detect.BuildEnv{}
		if d.Golden != "" {
			env.Golden = specValidationGolden
		}
		trial, err := detect.Build(d.Name, d.Params, env)
		if err != nil {
			return fail(err)
		}
		// Pair-consuming detectors (attestation) diff both taps and only
		// make sense on the dual feed; plain detectors cannot consume it.
		if _, isPair := trial.(detect.PairObserver); isPair != (bind == BindDual) {
			if isPair {
				return fail(fmt.Errorf("config error: detector %q consumes both taps; bind it with \"tap\": \"dual\" (and tap the scenario dual)", d.Name))
			}
			return fail(fmt.Errorf("config error: detector %q does not consume observation pairs; bind it to one side, not \"dual\"", d.Name))
		}
		out.Detector = func() (detect.Detector, error) {
			env := detect.BuildEnv{}
			if d.Golden != "" {
				env.Golden = goldens(d.Golden)
				if env.Golden == nil {
					return nil, fmt.Errorf("golden scenario %q produced no capture", d.Golden)
				}
			}
			return detect.Build(d.Name, d.Params, env)
		}
	}

	mitm := s.MITM == nil || *s.MITM
	if !mitm {
		if s.Trojan != nil {
			return fail(fmt.Errorf("config error: trojans require the MITM path"))
		}
		if s.Detector != nil {
			return fail(fmt.Errorf("config error: detectors require the MITM path (captures come from the board)"))
		}
		if s.Tap != "" {
			return fail(fmt.Errorf("config error: tap placement requires the MITM path"))
		}
		out.Options = append(out.Options, WithoutMITM())
	}
	// The default Arduino tap adds no option, keeping the compiled
	// scenario golden-cacheable and byte-identical to the closure path.
	if tap != fpga.TapArduino {
		out.Options = append(out.Options, WithTapSide(tap))
	}
	if s.Settle < 0 || s.Budget < 0 {
		return fail(fmt.Errorf("settle and budget must be non-negative"))
	}
	if s.Settle > 0 {
		out.Options = append(out.Options, WithSettle(s.Settle))
	}
	if s.Budget > 0 {
		out.RunOptions = append(out.RunOptions, WithLimit(s.Budget))
	}
	return out, nil
}

// specValidationGolden is the synthetic reference golden-referencing
// detector specs are trial-built against at compile time, so their
// params validate eagerly even though the real capture only exists once
// the referenced scenario has run.
var specValidationGolden = &capture.Recording{
	Transactions: []capture.Transaction{{}},
}

// CompileSpecs compiles a spec list in order.
func CompileSpecs(ctx SpecContext, specs []ScenarioSpec) ([]Scenario, error) {
	out := make([]Scenario, 0, len(specs))
	for _, s := range specs {
		sc, err := s.Compile(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// RunSpecs compiles the specs under ctx and runs them as one campaign —
// the declarative twin of Run.
func (c Campaign) RunSpecs(runCtx context.Context, ctx SpecContext, specs []ScenarioSpec) ([]ScenarioResult, error) {
	scens, err := CompileSpecs(ctx, specs)
	if err != nil {
		return nil, err
	}
	return c.Run(runCtx, scens)
}

// ---------------------------------------------------------------------------
// Suites: a spec file is a named set of scenarios plus post-run
// comparisons.

// CompareSpec replays one scenario's capture through a golden-based
// detector built against another scenario's capture — the paper's
// two-print detection workflow as data.
type CompareSpec struct {
	// Golden and Suspect name scenarios in the same suite.
	Golden  string `json:"golden"`
	Suspect string `json:"suspect"`
	// GoldenTap / SuspectTap pick which capture of a multi-tap scenario
	// to use: "" (primary), "arduino", or "ramps".
	GoldenTap  string `json:"goldenTap,omitempty"`
	SuspectTap string `json:"suspectTap,omitempty"`
	// Detector overrides the default golden-comparator (its Golden field
	// is ignored here — the reference is this entry's Golden scenario).
	Detector *DetectorSpec `json:"detector,omitempty"`
}

// SuiteSpec is a complete declarative experiment: scenarios to print and
// comparisons to draw, with suite-wide seed and budget policy.
type SuiteSpec struct {
	Name string `json:"name"`
	// BaseSeed anchors relative scenario seeds (may be overridden by the
	// runner's -seed flag).
	BaseSeed uint64 `json:"baseSeed,omitempty"`
	// Budget is the per-scenario simulated-time limit (0 = default).
	Budget sim.Time `json:"budget,omitempty"`
	// Workers bounds the campaign pool (0 = GOMAXPROCS).
	Workers   int            `json:"workers,omitempty"`
	Scenarios []ScenarioSpec `json:"scenarios"`
	Compare   []CompareSpec  `json:"compare,omitempty"`

	// dir anchors relative program file references (set by LoadSuiteSpec).
	dir string
}

// ParseSuiteSpec decodes a suite spec from JSON, strictly: unknown fields
// are errors, so a typo fails loudly instead of silently running a
// different experiment. dir anchors relative file references.
func ParseSuiteSpec(data []byte, dir string) (*SuiteSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SuiteSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("offramps: parsing suite spec: %w", err)
	}
	if dec.More() {
		// One suite per file: trailing content (a concatenated second
		// suite, merge debris) would otherwise be silently ignored and a
		// different experiment than the file describes would run.
		return nil, fmt.Errorf("offramps: parsing suite spec: trailing content after the suite object")
	}
	s.dir = dir
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSuiteSpec reads a suite spec file; relative program references
// resolve against the file's directory.
func LoadSuiteSpec(path string) (*SuiteSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("offramps: reading suite spec: %w", err)
	}
	s, err := ParseSuiteSpec(data, filepath.Dir(path))
	if err != nil {
		return nil, fmt.Errorf("offramps: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return s, nil
}

// FindScenario returns the named scenario spec, if the suite has it.
func (s *SuiteSpec) FindScenario(name string) (ScenarioSpec, bool) {
	for _, sc := range s.Scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return ScenarioSpec{}, false
}

// ScenarioNames returns the scenario names in canonical suite order —
// the order reports list them and the order a farm coordinator seeds
// its work queue.
func (s *SuiteSpec) ScenarioNames() []string {
	names := make([]string, len(s.Scenarios))
	for i, sc := range s.Scenarios {
		names[i] = sc.Name
	}
	return names
}

// Validate checks cross-scenario references, name uniqueness, and
// suite-wide knobs. Deep per-scenario validation happens at Compile
// time.
func (s *SuiteSpec) Validate() error {
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("offramps: suite %q has no scenarios", s.Name)
	}
	if s.Budget < 0 {
		return fmt.Errorf("offramps: suite %q: budget must be non-negative", s.Name)
	}
	if s.Workers < 0 {
		return fmt.Errorf("offramps: suite %q: workers must be non-negative", s.Name)
	}
	names := make(map[string]bool, len(s.Scenarios))
	for _, sc := range s.Scenarios {
		if sc.Name == "" {
			return fmt.Errorf("offramps: suite %q: scenario without a name", s.Name)
		}
		if names[sc.Name] {
			return fmt.Errorf("offramps: suite %q: duplicate scenario %q", s.Name, sc.Name)
		}
		names[sc.Name] = true
	}
	goldenOf := make(map[string]string) // scenario → its detector's golden
	for _, sc := range s.Scenarios {
		if sc.Detector != nil && sc.Detector.Golden != "" {
			if !names[sc.Detector.Golden] {
				return fmt.Errorf("offramps: suite %q: scenario %q references unknown golden %q", s.Name, sc.Name, sc.Detector.Golden)
			}
			goldenOf[sc.Name] = sc.Detector.Golden
		}
	}
	// Golden references must be acyclic (a scenario cannot be — even
	// transitively — its own reference); execution orders them in waves.
	for start := range goldenOf {
		seen := map[string]bool{start: true}
		for cur := goldenOf[start]; cur != ""; cur = goldenOf[cur] {
			if seen[cur] {
				return fmt.Errorf("offramps: suite %q: golden reference cycle through %q", s.Name, cur)
			}
			seen[cur] = true
		}
	}
	for i, cmp := range s.Compare {
		if !names[cmp.Golden] || !names[cmp.Suspect] {
			return fmt.Errorf("offramps: suite %q: compare %d references unknown scenario (%q vs %q)", s.Name, i, cmp.Golden, cmp.Suspect)
		}
		for _, tapName := range []string{cmp.GoldenTap, cmp.SuspectTap} {
			side, err := fpga.ParseTapSide(tapName)
			if err == nil && side == fpga.TapDual {
				err = fmt.Errorf("compare tap must name one side, got %q", tapName)
			}
			if err != nil {
				return fmt.Errorf("offramps: suite %q: compare %d: %w", s.Name, i, err)
			}
		}
	}
	return nil
}

// CompareResult is one executed CompareSpec. The tap fields echo the
// spec so a suite with several per-tap comparisons of the same scenario
// pair stays distinguishable in reports (and mergeable across shards).
type CompareResult struct {
	Golden     string         `json:"golden"`
	Suspect    string         `json:"suspect"`
	GoldenTap  string         `json:"goldenTap,omitempty"`
	SuspectTap string         `json:"suspectTap,omitempty"`
	Report     *detect.Report `json:"report,omitempty"`
	Err        error          `json:"-"`
	// Error mirrors Err for the JSON sinks.
	Error string `json:"error,omitempty"`
}

// SuiteReport is the outcome of one suite execution: scenario results in
// spec order plus the comparison verdicts.
type SuiteReport struct {
	Suite       string           `json:"suite"`
	BaseSeed    uint64           `json:"baseSeed"`
	Results     []ScenarioResult `json:"results"`
	Comparisons []CompareResult  `json:"comparisons,omitempty"`
}

// Format renders a human-readable suite summary.
func (r *SuiteReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Suite %s (base seed %d)\n", r.Suite, r.BaseSeed)
	fmt.Fprintf(&sb, "%-24s %-10s %-12s %-10s %s\n", "scenario", "seed", "duration", "completed", "verdict")
	for _, res := range r.Results {
		if res.Err != nil {
			fmt.Fprintf(&sb, "%-24s %-10d %-12s %-10s error: %v\n", res.Name, res.Seed, "-", "-", res.Err)
			continue
		}
		if res.Result == nil {
			// Cancelled suites return partial reports; this scenario
			// never started.
			fmt.Fprintf(&sb, "%-24s %-10d %-12s %-10s not run\n", res.Name, res.Seed, "-", "-")
			continue
		}
		fmt.Fprintf(&sb, "%-24s %-10d %-12v %-10v %s\n",
			res.Name, res.Seed, res.Result.Duration, res.Result.Completed, scenarioVerdict(res))
	}
	for _, cmp := range r.Comparisons {
		if cmp.Err != nil {
			fmt.Fprintf(&sb, "compare %s vs %s: error: %v\n", cmp.Golden, cmp.Suspect, cmp.Err)
			continue
		}
		verdict := "no trojan suspected"
		if cmp.Report.TrojanLikely {
			verdict = "TROJAN LIKELY"
		}
		fmt.Fprintf(&sb, "compare %s vs %s [%s]: %s (%d mismatches, largest %.2f%%, %d final)\n",
			cmp.Golden, cmp.Suspect, cmp.Report.Detector, verdict,
			cmp.Report.NumMismatches, cmp.Report.LargestPercent, len(cmp.Report.Final))
	}
	return sb.String()
}

// RunSuite executes a suite spec in dependency-ordered waves: each wave
// runs every not-yet-run scenario whose golden reference (if any) has
// already completed, so chains of golden references (A ← B ← C) execute
// correctly at any depth. Afterwards the Compare entries replay captures
// through registry-built detectors. Results keep spec order regardless
// of wave. The receiver's Workers/Budget act as defaults; the suite's
// own values win when set.
func (c Campaign) RunSuite(runCtx context.Context, suite *SuiteSpec) (*SuiteReport, error) {
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	if suite.Workers != 0 {
		c.Workers = suite.Workers
	}
	if suite.Budget != 0 {
		c.Budget = suite.Budget
	}

	recordings := make(map[string]*capture.Recording)
	results := make(map[string]ScenarioResult, len(suite.Scenarios))
	ctx := SpecContext{
		BaseSeed: suite.BaseSeed,
		Dir:      suite.dir,
		Goldens:  func(name string) *capture.Recording { return recordings[name] },
	}

	// A sink failure does not stop the suite: the wave's results are
	// complete (Run surfaces sink errors only after every scenario
	// finished), so later waves and the comparisons still run; the first
	// sink error is returned at the end with the full report.
	var sinkFailure error
	runWave := func(specs []ScenarioSpec) error {
		res, err := c.RunSpecs(runCtx, ctx, specs)
		var se *SinkError
		if errors.As(err, &se) {
			if sinkFailure == nil {
				sinkFailure = err
			}
			err = nil
		}
		if err != nil {
			// Record what finished before surfacing the cancellation.
			for _, r := range res {
				if r.Name != "" {
					results[r.Name] = r
				}
			}
			return err
		}
		for _, r := range res {
			results[r.Name] = r
			if r.Err == nil && r.Result != nil && r.Result.Recording != nil {
				recordings[r.Name] = r.Result.Recording
			}
		}
		return nil
	}

	report := &SuiteReport{Suite: suite.Name, BaseSeed: suite.BaseSeed}
	assemble := func() {
		report.Results = make([]ScenarioResult, 0, len(suite.Scenarios))
		for _, sc := range suite.Scenarios {
			r, ok := results[sc.Name]
			if !ok {
				r = ScenarioResult{Name: sc.Name, Seed: sc.EffectiveSeed(suite.BaseSeed)}
			}
			report.Results = append(report.Results, r)
		}
	}

	remaining := suite.Scenarios
	for len(remaining) > 0 {
		var wave, deferred []ScenarioSpec
		for _, sc := range remaining {
			ready := sc.Detector == nil || sc.Detector.Golden == ""
			if !ready {
				_, ready = results[sc.Detector.Golden]
			}
			if ready {
				wave = append(wave, sc)
			} else {
				deferred = append(deferred, sc)
			}
		}
		if len(wave) == 0 {
			// Unreachable after Validate's cycle check; guard anyway so a
			// future bug cannot loop forever.
			assemble()
			return report, fmt.Errorf("offramps: suite %q: unresolvable golden references", suite.Name)
		}
		if err := runWave(wave); err != nil {
			assemble()
			return report, err
		}
		remaining = deferred
	}
	assemble()

	for _, cmp := range suite.Compare {
		report.Comparisons = append(report.Comparisons, runCompare(cmp, results))
	}
	return report, sinkFailure
}

// tapRecording picks the named tap's capture out of a result.
func tapRecording(res *Result, tapName string) (*capture.Recording, error) {
	side, err := fpga.ParseTapSide(tapName)
	if err != nil {
		return nil, err
	}
	if tapName == "" {
		return res.Recording, nil
	}
	switch side {
	case fpga.TapArduino:
		return res.ArduinoRecording, nil
	case fpga.TapRAMPS:
		return res.RAMPSRecording, nil
	default:
		return nil, fmt.Errorf("offramps: compare tap must name one side, got %q", tapName)
	}
}

// runCompare executes one CompareSpec against the collected results.
func runCompare(cmp CompareSpec, results map[string]ScenarioResult) CompareResult {
	out := CompareResult{Golden: cmp.Golden, Suspect: cmp.Suspect, GoldenTap: cmp.GoldenTap, SuspectTap: cmp.SuspectTap}
	fail := func(err error) CompareResult {
		out.Err = err
		out.Error = err.Error()
		return out
	}
	pick := func(name, tapName string) (*capture.Recording, error) {
		r, ok := results[name]
		if !ok || r.Err != nil {
			if !ok {
				return nil, fmt.Errorf("offramps: scenario %q did not run", name)
			}
			return nil, r.Err
		}
		rec, err := tapRecording(r.Result, tapName)
		if err != nil {
			return nil, err
		}
		if rec == nil || rec.Len() == 0 {
			return nil, fmt.Errorf("offramps: scenario %q has no %q-tap capture", name, tapName)
		}
		return rec, nil
	}
	golden, err := pick(cmp.Golden, cmp.GoldenTap)
	if err != nil {
		return fail(err)
	}
	suspect, err := pick(cmp.Suspect, cmp.SuspectTap)
	if err != nil {
		return fail(err)
	}

	name, params := "golden-comparator", json.RawMessage(nil)
	if cmp.Detector != nil {
		name, params = cmp.Detector.Name, cmp.Detector.Params
	}
	d, err := detect.Build(name, params, detect.BuildEnv{Golden: golden})
	if err != nil {
		return fail(err)
	}
	rep, err := detect.Replay(suspect, d)
	if err != nil {
		return fail(err)
	}
	out.Report = rep
	return out
}
