package offramps

import (
	"encoding/json"

	"offramps/internal/capture"
	"offramps/internal/printer"
)

// JSON views for the report sinks (cmd/suite, cmd/experiments -json).
// Results serialize their summary metrics; the raw deposited part and the
// full capture streams are omitted — they are bulk simulation state, and
// captures already have their own CSV serialization (cmd/offramps).

// MarshalJSON renders the result summary: Part and the capture recordings
// are replaced by the capture window count, and the halt error becomes a
// string. The shadow fields stay nil so the bulk fields are omitted. A
// dual-tap result additionally reports each side's window count, so a
// sink can tell whether the two views stayed in step without shipping
// the full streams.
func (r *Result) MarshalJSON() ([]byte, error) {
	type alias Result
	aux := struct {
		*alias
		Part               *printer.Part        `json:"Part,omitempty"`
		Recording          *capture.Recording   `json:"Recording,omitempty"`
		ArduinoRecording   *capture.Recording   `json:"ArduinoRecording,omitempty"`
		RAMPSRecording     *capture.Recording   `json:"RAMPSRecording,omitempty"`
		Fingerprint        *capture.Fingerprint `json:"Fingerprint,omitempty"`
		ArduinoFingerprint *capture.Fingerprint `json:"ArduinoFingerprint,omitempty"`
		RAMPSFingerprint   *capture.Fingerprint `json:"RAMPSFingerprint,omitempty"`
		HaltError          string               `json:"HaltError,omitempty"`
		Windows            int                  `json:"Windows"`
		ArduinoWindows     int                  `json:"ArduinoWindows,omitempty"`
		RAMPSWindows       int                  `json:"RAMPSWindows,omitempty"`
	}{alias: (*alias)(r)}
	if r.HaltError != nil {
		aux.HaltError = r.HaltError.Error()
	}
	// Window counts come from the recordings in full mode and from the
	// fingerprints otherwise, so a fingerprint-mode result serializes to
	// exactly the bytes its full-mode twin would.
	switch {
	case r.Recording != nil:
		aux.Windows = r.Recording.Len()
	case r.Fingerprint != nil:
		aux.Windows = r.Fingerprint.Windows
	}
	switch {
	case r.ArduinoRecording != nil && r.RAMPSRecording != nil:
		aux.ArduinoWindows = r.ArduinoRecording.Len()
		aux.RAMPSWindows = r.RAMPSRecording.Len()
	case r.ArduinoFingerprint != nil && r.RAMPSFingerprint != nil:
		aux.ArduinoWindows = r.ArduinoFingerprint.Windows
		aux.RAMPSWindows = r.RAMPSFingerprint.Windows
	}
	return json.Marshal(aux)
}

// MarshalJSON renders a scenario outcome with its error as a string.
func (r ScenarioResult) MarshalJSON() ([]byte, error) {
	type alias ScenarioResult
	aux := struct {
		alias
		Err string `json:"Err,omitempty"`
	}{alias: alias(r)}
	if r.Err != nil {
		aux.Err = r.Err.Error()
	}
	return json.Marshal(aux)
}
