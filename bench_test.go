package offramps

import (
	"context"
	"fmt"
	"testing"
	"time"

	"offramps/internal/detect"
	"offramps/internal/flaw3d"
	"offramps/internal/fpga"
	"offramps/internal/reconstruct"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

// Each benchmark regenerates one table or figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). The benchmarks
// report simulated seconds per run and verify the experiment's headline
// property, so `go test -bench .` doubles as a reproduction run.

// freshGoldens disables the process-wide golden cache so every benchmark
// iteration pays for its own golden print: the experiment benchmarks
// share seeds across experiments, and cross-benchmark cache hits would
// silently deflate whichever benchmark runs later in the binary.
var freshGoldens = WithGoldenCache(nil)

// BenchmarkTableI regenerates Table I: golden print plus all nine
// trojans, judging each physical effect.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := TableI(uint64(i)+1, freshGoldens)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rep.Rows {
			if !row.Observed {
				b.Fatalf("%s effect not observed: %s", row.ID, row.Measured)
			}
		}
		b.ReportMetric(float64(len(rep.Rows)), "trojans/op")
	}
}

// BenchmarkTableII regenerates Table II: the eight Flaw3D trojans, each
// printed and checked against the golden capture, plus the clean control.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := TableII(uint64(i)+1, freshGoldens)
		if err != nil {
			b.Fatal(err)
		}
		detected := 0
		for _, row := range rep.Rows {
			if row.Detected {
				detected++
			}
		}
		if detected != len(rep.Rows) {
			b.Fatalf("only %d/%d Flaw3D cases detected", detected, len(rep.Rows))
		}
		if rep.CleanFalsePositive {
			b.Fatal("clean control false positive")
		}
		b.ReportMetric(float64(detected), "detected/op")
	}
}

// BenchmarkFigure4 regenerates Figure 4: the relocation-trojan capture
// comparison and the detector's report.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Figure4(uint64(i)+1, freshGoldens)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Report.TrojanLikely {
			b.Fatal("Figure 4 trojan not detected")
		}
		b.ReportMetric(float64(rep.Report.NumMismatches), "mismatches/op")
	}
}

// BenchmarkOverhead regenerates §V-B: propagation delay, signal envelope,
// and the no-quality-impact comparison.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Overhead(uint64(i)+1, freshGoldens)
		if err != nil {
			b.Fatal(err)
		}
		if rep.MaxStepFrequency >= 20_000 {
			b.Fatalf("step frequency %v outside paper envelope", rep.MaxStepFrequency)
		}
		b.ReportMetric(float64(rep.MaxPropagation), "prop-delay-ns/op")
		b.ReportMetric(rep.MaxStepFrequency, "max-step-hz/op")
	}
}

// BenchmarkDrift regenerates §V-C: repeated known-good prints, measuring
// the worst per-window drift against the 5 % margin.
func BenchmarkDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Drift(uint64(i)+1, 3, freshGoldens)
		if err != nil {
			b.Fatal(err)
		}
		if rep.FalsePositives != 0 {
			b.Fatalf("%d false positives", rep.FalsePositives)
		}
		b.ReportMetric(rep.MaxDriftPercent, "max-drift-%/op")
	}
}

// BenchmarkGoldenPrint measures one full end-to-end simulated print —
// slicer output through firmware, MITM, drivers, plant, and capture. It
// runs the way a campaign worker does: successive testbeds on one
// pooled core, each iteration's buffers reclaimed for the next.
func BenchmarkGoldenPrint(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	core := NewTestbedCore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, err := NewTestbed(WithSeed(uint64(i)+1), WithCore(core))
		if err != nil {
			b.Fatal(err)
		}
		res, err := tb.Run(context.Background(), prog)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal(res.HaltError)
		}
		b.ReportMetric(res.Duration.Seconds(), "sim-s/op")
		b.ReportMetric(float64(tb.Engine.Executed()), "events/op")
		core.Reclaim(res)
	}
}

// BenchmarkCampaign measures the concurrent campaign runner end to end:
// a small (clean × trojan × seed) grid fanned across the default worker
// pool, the hot path under every re-platformed experiment.
func BenchmarkCampaign(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	scens := []Scenario{
		{Name: "clean-1", Program: prog, Seed: 1},
		{Name: "clean-2", Program: prog, Seed: 2},
		{Name: "t2", Program: prog, Seed: 3, Trojan: func(seed uint64) fpga.Trojan {
			return trojan.NewT2ExtrusionReduction(trojan.T2Params{KeepRatio: 0.5})
		}},
		{Name: "golden-free", Program: prog, Seed: 4,
			Detector: func() (detect.Detector, error) { return detect.NewRuleEngine(detect.DefaultLimits()) },
			Policy:   FlagOnly},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := Campaign{}.Run(context.Background(), scens)
		if err != nil {
			b.Fatal(err)
		}
		if err := firstScenarioErr(results); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(results)), "scenarios/op")
	}
}

// BenchmarkCampaignWide measures the campaign hot path at survey scale:
// a 104-scenario grid (8 golden-free detector variants × 13 seeds) over
// one program — the shape of a detector-threshold sweep. Sub-benchmarks
// contrast full-trace capture with fingerprint mode, where the
// same-(program, seed) variants fuse onto shared simulations and no
// recording is ever materialized.
func BenchmarkCampaignWide(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	const variants, seeds = 8, 13
	var scens []Scenario
	for v := 0; v < variants; v++ {
		lim := detect.DefaultLimits()
		lim.MaxStepsPerWindow += int32(v) * 96
		lim.MaxStationaryExtrude += int32(v) * 8
		for s := 0; s < seeds; s++ {
			scens = append(scens, Scenario{
				Name:    fmt.Sprintf("v%d-s%d", v, s+1),
				Program: prog,
				Seed:    uint64(s) + 1,
				Detector: func() (detect.Detector, error) {
					return detect.NewRuleEngine(lim)
				},
				Policy: FlagOnly,
			})
		}
	}
	for _, mode := range []CaptureMode{CaptureFull, CaptureFingerprint} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				results, err := Campaign{CaptureMode: mode}.Run(context.Background(), scens)
				if err != nil {
					b.Fatal(err)
				}
				if err := firstScenarioErr(results); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(results))/time.Since(start).Seconds(), "scenarios/sec")
			}
		})
	}
}

// BenchmarkMonitorObserve measures the live detector's per-transaction
// hot path — it must be far faster than the 0.1 s window period for the
// monitor to keep up with the board in real time.
func BenchmarkMonitorObserve(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	golden, err := captureRun(prog, 1)
	if err != nil {
		b.Fatal(err)
	}
	stream := golden.Transactions
	b.ReportAllocs()
	b.ResetTimer()
	observed := 0
	for i := 0; i < b.N; i++ {
		m, err := detect.NewMonitor(golden, detect.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, tx := range stream {
			if v := m.Observe(tx); v.Err != nil || v.Tripped {
				b.Fatalf("clean stream tripped: %v %v", v.Tripped, v.Err)
			}
		}
		observed += len(stream)
		if m.Finalize().TrojanLikely {
			b.Fatal("clean stream flagged")
		}
	}
	b.ReportMetric(float64(observed)/float64(b.N), "tx/op")
}

// BenchmarkDetectorThroughput measures the pure detection algorithm on a
// pre-recorded capture pair (no simulation in the loop) — the cost of the
// paper's real-time analysis path.
func BenchmarkDetectorThroughput(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	golden, err := captureRun(prog, 1)
	if err != nil {
		b.Fatal(err)
	}
	tampered, err := flaw3d.Reduce(prog, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	suspect, err := captureRun(tampered, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := detect.Compare(golden, suspect, detect.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !rep.TrojanLikely {
			b.Fatal("missed")
		}
	}
	b.ReportMetric(float64(golden.Len()), "transactions")
}

// BenchmarkAblationExportPeriod sweeps the capture window — the design
// choice §V-C calls out ("This 5% margin of error can be made
// significantly smaller with a faster communication protocol"). Shorter
// windows mean fewer steps per transaction and tighter drift.
func BenchmarkAblationExportPeriod(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	for _, period := range []sim.Time{50 * sim.Millisecond, 100 * sim.Millisecond, 200 * sim.Millisecond} {
		period := period
		b.Run(period.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := func(seed uint64) *Result {
					tb, err := NewTestbed(WithSeed(seed), WithExportPeriod(period))
					if err != nil {
						b.Fatal(err)
					}
					res, err := tb.Run(context.Background(), prog)
					if err != nil {
						b.Fatal(err)
					}
					return res
				}
				a := run(uint64(i)*2 + 1)
				c := run(uint64(i)*2 + 2)
				rep, err := detect.Compare(a.Recording, c.Recording, detect.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.LargestSubstantial, "drift-%/op")
			}
		})
	}
}

// BenchmarkAblationTimeNoise sweeps the injected execution jitter to show
// the drift margin scales with the machine's asynchrony, the paper's
// stated source of the 5 % margin.
func BenchmarkAblationTimeNoise(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	for _, noise := range []sim.Time{0, 200 * sim.Microsecond, 1000 * sim.Microsecond} {
		noise := noise
		b.Run(noise.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := func(seed uint64) *Result {
					tb, err := NewTestbed(WithSeed(seed), WithTimeNoise(noise))
					if err != nil {
						b.Fatal(err)
					}
					res, err := tb.Run(context.Background(), prog)
					if err != nil {
						b.Fatal(err)
					}
					return res
				}
				a := run(uint64(i)*2 + 1)
				c := run(uint64(i)*2 + 2)
				rep, err := detect.Compare(a.Recording, c.Recording, detect.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.LargestSubstantial, "drift-%/op")
			}
		})
	}
}

// BenchmarkGoldenFree measures the §VI golden-free rule engine over a
// real capture — like the comparator, it must be far faster than the
// 0.1 s window period to run live.
func BenchmarkGoldenFree(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	rec, err := captureRun(prog, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := detect.CheckGoldenFree(rec, detect.DefaultLimits())
		if err != nil {
			b.Fatal(err)
		}
		if rep.TrojanLikely {
			b.Fatal("clean capture flagged")
		}
	}
}

// BenchmarkReconstruct measures the §VI design reverse-engineering pass.
func BenchmarkReconstruct(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	rec, err := captureRun(prog, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		design, err := reconstruct.FromCapture(rec, reconstruct.DefaultCalibration(), 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if len(design.Layers) == 0 {
			b.Fatal("no layers reconstructed")
		}
	}
}

// BenchmarkTrojanOverhead measures how much simulation cost the trojan
// datapath adds over bypass — the in-fabric analogue of the paper's
// "trojans are multiplexed over the original control signals".
func BenchmarkTrojanOverhead(b *testing.B) {
	prog, err := TestPart()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bypass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tb, err := NewTestbed(WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tb.Run(context.Background(), prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("t2-masking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tb, err := NewTestbed(WithSeed(1),
				WithTrojan(trojan.NewT2ExtrusionReduction(trojan.T2Params{KeepRatio: 0.5})))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tb.Run(context.Background(), prog); err != nil {
				b.Fatal(err)
			}
		}
	})
}
