package offramps

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// SinkError wraps the first result-sink failure of a campaign. It is a
// distinct type so callers can tell "the sweep ran, a sink could not
// keep up" (results are complete and reportable) from a run failure:
// Campaign.Run returns it only after every scenario finished, and
// RunSuite keeps executing later waves and comparisons before
// surfacing it with the full report.
type SinkError struct{ Err error }

func (e *SinkError) Error() string { return "offramps: result sink: " + e.Err.Error() }
func (e *SinkError) Unwrap() error { return e.Err }

// A ResultSink receives each ScenarioResult as it completes, in
// completion order, instead of waiting for the whole campaign to buffer —
// so a million-scenario sweep streams to disk with bounded memory. The
// campaign serializes Emit calls (no sink-side locking needed) and the
// rows are self-describing (name, seed), since completion order is
// whatever the worker pool produced. Close flushes whatever the sink
// buffers; it does not close the underlying writer. The sink's owner —
// not the campaign — must call Close once after the last Emit, since
// one sink may span many campaigns.
type ResultSink interface {
	Emit(r ScenarioResult) error
	Close() error
}

// scenarioVerdict summarizes one result the way the suite report does.
func scenarioVerdict(r ScenarioResult) string {
	if r.Err != nil {
		return fmt.Sprintf("error: %v", r.Err)
	}
	if r.Result == nil {
		return "not run"
	}
	// Decide the detector-free case first: "-" means no detector looked,
	// which must never mask a TrojanLikely flag set some other way.
	verdict := "-"
	switch {
	case r.Result.TrojanLikely:
		verdict = "TROJAN LIKELY"
	case len(r.Result.Detections) > 0:
		verdict = "clean"
	}
	if r.Result.Aborted {
		verdict += " (aborted)"
	}
	return verdict
}

// JSONLSink appends one JSON object per completed scenario — the
// streaming twin of the suite JSON report. Label (typically the suite
// name) tags every row so several suites can share one stream.
type JSONLSink struct {
	Label string
	enc   *json.Encoder
}

// NewJSONLSink streams rows to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes one row.
func (s *JSONLSink) Emit(r ScenarioResult) error {
	row := struct {
		Suite  string  `json:"suite,omitempty"`
		Name   string  `json:"name"`
		Seed   uint64  `json:"seed"`
		Result *Result `json:"result,omitempty"`
		Err    string  `json:"error,omitempty"`
	}{Suite: s.Label, Name: r.Name, Seed: r.Seed, Result: r.Result}
	if r.Err != nil {
		row.Err = r.Err.Error()
	}
	return s.enc.Encode(row)
}

// EmitCompare writes one comparison row: {"suite", "compare": {...}}.
// Comparison rows make a JSONL stream a *complete* record of a suite
// run — `suite -merge` can restitch per-shard streams (and a farm
// coordinator its journal) into a full report without the -json
// intermediate. The embedded object is CompareResult's own JSON, so the
// stitched report is byte-identical to the live path's.
func (s *JSONLSink) EmitCompare(c CompareResult) error {
	row := struct {
		Suite   string        `json:"suite,omitempty"`
		Compare CompareResult `json:"compare"`
	}{Suite: s.Label, Compare: c}
	return s.enc.Encode(row)
}

// Close is a no-op; rows are written unbuffered.
func (s *JSONLSink) Close() error { return nil }

// ScenarioCSVHeader labels the streaming scenario rows. It matches the
// batch CSV schema of cmd/suite (whose compare rows reuse the same
// columns), so streamed and batch CSVs concatenate cleanly.
var ScenarioCSVHeader = []string{
	"kind", "suite", "name", "seed", "golden", "suspect",
	"completed", "aborted", "trojan_likely", "mismatches", "final_mismatches",
	"largest_pct", "duration_s", "windows", "filament_mm", "error",
}

// ScenarioCSVRow renders one scenario result as a CSV record under
// ScenarioCSVHeader. suite tags the row's suite column.
func ScenarioCSVRow(suite string, r ScenarioResult) []string {
	row := []string{"scenario", suite, r.Name, strconv.FormatUint(r.Seed, 10), "", ""}
	if r.Err != nil {
		return append(row, "", "", "", "", "", "", "", "", "", r.Err.Error())
	}
	if r.Result == nil {
		return append(row, "", "", "", "", "", "", "", "", "", "not run")
	}
	res := r.Result
	windows := 0
	if res.Recording != nil {
		windows = res.Recording.Len()
	} else if res.Fingerprint != nil {
		windows = res.Fingerprint.Windows
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	return append(row,
		strconv.FormatBool(res.Completed),
		strconv.FormatBool(res.Aborted),
		strconv.FormatBool(res.TrojanLikely),
		"", "", "",
		f(res.Duration.Seconds()),
		strconv.Itoa(windows),
		f(res.Quality.TotalFilament),
		"",
	)
}

// CSVSink streams scenario rows as CSV, writing the header before the
// first row. Label fills the suite column.
type CSVSink struct {
	Label       string
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVSink streams CSV records to w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Emit writes one record (plus the header, first time).
func (s *CSVSink) Emit(r ScenarioResult) error {
	if !s.wroteHeader {
		if err := s.w.Write(ScenarioCSVHeader); err != nil {
			return err
		}
		s.wroteHeader = true
	}
	return s.w.Write(ScenarioCSVRow(s.Label, r))
}

// Close flushes buffered records.
func (s *CSVSink) Close() error {
	s.w.Flush()
	return s.w.Error()
}

// ProgressSink prints a human progress line per completed scenario —
// live feedback during long sweeps. Total, when non-zero, is the
// expected scenario count for "[done/total]" framing. W is the output
// target (nil defaults to os.Stderr, keeping progress out of piped
// report streams). Cache, when set, appends the golden cache's live
// hit/miss counts to every line, so a long sweep shows its cache
// effectiveness as it runs instead of only in a post-mortem.
type ProgressSink struct {
	W     io.Writer
	Total int
	Cache *GoldenCache
	done  int
}

// Emit prints one line.
func (s *ProgressSink) Emit(r ScenarioResult) error {
	w := s.W
	if w == nil {
		w = os.Stderr
	}
	total := "?"
	if s.Total > 0 {
		total = strconv.Itoa(s.Total)
	}
	cache := ""
	if s.Cache != nil {
		hits, misses := s.Cache.Stats()
		cache = fmt.Sprintf("  cache %d hit / %d miss / %.1f MiB", hits, misses, float64(s.Cache.Bytes())/(1<<20))
	}
	s.done++
	_, err := fmt.Fprintf(w, "[%d/%s] %-24s seed=%-8d %s%s\n", s.done, total, r.Name, r.Seed, scenarioVerdict(r), cache)
	return err
}

// Close is a no-op.
func (s *ProgressSink) Close() error { return nil }

// ---------------------------------------------------------------------------
// Reading streams back: a JSONL stream written by JSONLSink (a shard's
// -jsonl output, a farm coordinator's journal) is a durable record of
// which scenarios already ran. The resume index parses one, tolerating
// the torn trailing line a crash leaves behind, so a restarted sweep
// enqueues exactly the complement. StitchReport then reassembles rows —
// from streams or from -json shard reports — into a report
// byte-identical to an uninterrupted run.

// CompareKey canonically keys one comparison by its scenario pair and
// taps (per-tap comparisons of the same pair are distinct rows).
func CompareKey(golden, goldenTap, suspect, suspectTap string) string {
	return golden + "\x00" + goldenTap + "\x00" + suspect + "\x00" + suspectTap
}

// StreamRow is one decoded JSONL stream line: either a scenario row
// (Name set) or a comparison row (Key set). Report carries the
// report-shaped raw JSON — for scenario rows, reconstructed into
// exactly the bytes ScenarioResult marshals to; for comparison rows,
// the embedded CompareResult object verbatim — so stitched reports
// splice rows without re-marshalling anything lossy.
type StreamRow struct {
	Suite  string
	Name   string
	Seed   uint64
	Key    string
	Report json.RawMessage
}

// jsonlRow is the wire shape of one stream line (see JSONLSink.Emit and
// EmitCompare).
type jsonlRow struct {
	Suite   string          `json:"suite"`
	Name    string          `json:"name"`
	Seed    uint64          `json:"seed"`
	Result  json.RawMessage `json:"result"`
	Err     string          `json:"error"`
	Compare json.RawMessage `json:"compare"`
}

// ParseStreamRow decodes one JSONL line.
func ParseStreamRow(line []byte) (*StreamRow, error) {
	var row jsonlRow
	if err := json.Unmarshal(line, &row); err != nil {
		return nil, fmt.Errorf("offramps: stream row: %w", err)
	}
	if len(row.Compare) > 0 {
		var head struct {
			Golden     string `json:"golden"`
			Suspect    string `json:"suspect"`
			GoldenTap  string `json:"goldenTap"`
			SuspectTap string `json:"suspectTap"`
		}
		if err := json.Unmarshal(row.Compare, &head); err != nil || head.Suspect == "" {
			return nil, fmt.Errorf("offramps: unreadable comparison row %s", line)
		}
		return &StreamRow{
			Suite:  row.Suite,
			Key:    CompareKey(head.Golden, head.GoldenTap, head.Suspect, head.SuspectTap),
			Report: row.Compare,
		}, nil
	}
	if row.Name == "" {
		return nil, fmt.Errorf("offramps: unreadable stream row %s", line)
	}
	// Rebuild the report-shaped row. The field set, order, and tags must
	// mirror ScenarioResult's MarshalJSON exactly — the byte-identity of
	// stitched reports rests on it. The result object travels verbatim.
	aux := struct {
		Name   string
		Seed   uint64
		Result json.RawMessage
		Err    string `json:",omitempty"`
	}{row.Name, row.Seed, row.Result, row.Err}
	report, err := json.Marshal(aux)
	if err != nil {
		return nil, err
	}
	return &StreamRow{Suite: row.Suite, Name: row.Name, Seed: row.Seed, Report: report}, nil
}

// ResumeIndex is what a JSONL stream proves already ran: report-shaped
// scenario rows by name and comparison rows by CompareKey, first
// occurrence winning (duplicate completions — a lease that expired
// mid-flight and was re-run — are deterministic repeats, so dropping
// later ones is sound). Torn records whether a truncated trailing line
// was discarded, the signature of a crash mid-append; Dups counts the
// duplicate rows skipped. Either being non-zero marks a stream worth
// compacting before appending more.
type ResumeIndex struct {
	Scenarios map[string]json.RawMessage
	Seeds     map[string]uint64
	Compares  map[string]json.RawMessage
	Torn      bool
	Dups      int
}

// ReadResumeIndex scans a JSONL stream. Rows labelled with a different
// suite are skipped when suite is non-empty (one stream may carry
// several suites). A malformed line is tolerated only as the final
// non-empty line of the stream — the torn tail of an interrupted append
// — and is dropped; malformed content followed by more rows is
// corruption and an error.
func ReadResumeIndex(r io.Reader, suite string) (*ResumeIndex, error) {
	ix := &ResumeIndex{
		Scenarios: make(map[string]json.RawMessage),
		Seeds:     make(map[string]uint64),
		Compares:  make(map[string]json.RawMessage),
	}
	br := bufio.NewReader(r)
	tornLine := 0 // line number of a pending malformed row; later rows make it fatal
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadString('\n')
		text := strings.TrimSpace(line)
		if text != "" {
			if tornLine != 0 {
				return nil, fmt.Errorf("offramps: resume stream line %d: malformed row is not the stream's tail", tornLine)
			}
			row, perr := ParseStreamRow([]byte(text))
			switch {
			case perr != nil:
				tornLine = lineNo
			case suite != "" && row.Suite != suite:
				// Another suite's rows sharing the stream.
			case row.Name != "":
				if _, dup := ix.Scenarios[row.Name]; dup {
					ix.Dups++
				} else {
					ix.Scenarios[row.Name] = row.Report
					ix.Seeds[row.Name] = row.Seed
				}
			default:
				if _, dup := ix.Compares[row.Key]; dup {
					ix.Dups++
				} else {
					ix.Compares[row.Key] = row.Report
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("offramps: resume stream: %w", err)
		}
	}
	ix.Torn = tornLine != 0
	return ix, nil
}

// Missing returns the suite scenarios the index does not cover, in
// canonical suite order — exactly the queue a resumed sweep seeds.
func (ix *ResumeIndex) Missing(s *SuiteSpec) []string {
	var names []string
	for _, sc := range s.Scenarios {
		if _, ok := ix.Scenarios[sc.Name]; !ok {
			names = append(names, sc.Name)
		}
	}
	return names
}

// Validate checks the index against the suite it claims to resume:
// every row must name a suite scenario and carry that scenario's
// effective seed, and every comparison must be one the suite draws. A
// mismatch means the stream belongs to a different sweep (edited grid,
// different -seed) and resuming from it would stitch a lie.
func (ix *ResumeIndex) Validate(s *SuiteSpec) error {
	for name, seed := range ix.Seeds {
		sc, ok := s.FindScenario(name)
		if !ok {
			return fmt.Errorf("offramps: resume stream has scenario %q that suite %q does not (stale stream?)", name, s.Name)
		}
		if want := sc.EffectiveSeed(s.BaseSeed); seed != want {
			return fmt.Errorf("offramps: resume stream ran scenario %q with seed %d, want %d (different base seed?)", name, seed, want)
		}
	}
	known := make(map[string]bool, len(s.Compare))
	for _, cmp := range s.Compare {
		known[CompareKey(cmp.Golden, cmp.GoldenTap, cmp.Suspect, cmp.SuspectTap)] = true
	}
	for key := range ix.Compares {
		if !known[key] {
			return fmt.Errorf("offramps: resume stream has a comparison suite %q does not draw: %q", s.Name, key)
		}
	}
	return nil
}

// RawSuiteReport mirrors SuiteReport with opaque rows. The tags and
// field order must match SuiteReport exactly: the byte-identity
// guarantee of merged and farm-stitched reports rests on both paths
// serializing the same shape.
type RawSuiteReport struct {
	Suite       string            `json:"suite"`
	BaseSeed    uint64            `json:"baseSeed"`
	Results     []json.RawMessage `json:"results"`
	Comparisons []json.RawMessage `json:"comparisons,omitempty"`
}

// RawReportDoc is the document cmd/suite's -json writes, over raw
// suites.
type RawReportDoc struct {
	Suites []RawSuiteReport `json:"suites"`
}

// EncodeReport writes a report document in the canonical indented form
// every emitting path shares — live -json reports, shard merges, and
// farm-stitched reports all produce their bytes here.
func EncodeReport(w io.Writer, doc any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// StitchReport reassembles collected rows into the suite's canonical
// report: scenario rows in spec order, comparison rows in compare
// order, every row present exactly once and carrying its expected seed.
// Coverage gaps, stale rows, and seed drift are errors — a stitched
// report either equals the uninterrupted run byte for byte or does not
// exist.
func StitchReport(s *SuiteSpec, scenarios map[string]json.RawMessage, compares map[string]json.RawMessage) (*RawSuiteReport, error) {
	out := &RawSuiteReport{Suite: s.Name, BaseSeed: s.BaseSeed, Results: make([]json.RawMessage, 0, len(s.Scenarios))}
	for _, sc := range s.Scenarios {
		raw, ok := scenarios[sc.Name]
		if !ok {
			return nil, fmt.Errorf("offramps: scenario %q missing from the collected rows (coverage gap — incomplete sweep?)", sc.Name)
		}
		var head struct {
			Name string
			Seed uint64
		}
		if err := json.Unmarshal(raw, &head); err != nil || head.Name != sc.Name {
			return nil, fmt.Errorf("offramps: unreadable scenario row for %q", sc.Name)
		}
		if want := sc.EffectiveSeed(s.BaseSeed); head.Seed != want {
			return nil, fmt.Errorf("offramps: scenario %q ran seed %d, want %d (rows from a different base seed?)", sc.Name, head.Seed, want)
		}
		out.Results = append(out.Results, raw)
	}
	if len(scenarios) > len(s.Scenarios) {
		for name := range scenarios {
			if _, ok := s.FindScenario(name); !ok {
				return nil, fmt.Errorf("offramps: collected rows contain scenario %q that the suite does not (stale rows?)", name)
			}
		}
	}
	for _, cmp := range s.Compare {
		key := CompareKey(cmp.Golden, cmp.GoldenTap, cmp.Suspect, cmp.SuspectTap)
		raw, ok := compares[key]
		if !ok {
			return nil, fmt.Errorf("offramps: comparison %s vs %s missing from the collected rows", cmp.Golden, cmp.Suspect)
		}
		out.Comparisons = append(out.Comparisons, raw)
	}
	if len(compares) > len(s.Compare) {
		known := make(map[string]bool, len(s.Compare))
		for _, cmp := range s.Compare {
			known[CompareKey(cmp.Golden, cmp.GoldenTap, cmp.Suspect, cmp.SuspectTap)] = true
		}
		for key := range compares {
			if !known[key] {
				return nil, fmt.Errorf("offramps: collected rows contain a comparison the suite does not: %q", key)
			}
		}
	}
	return out, nil
}

// FirstError surfaces a failed row the way the live path's error check
// does, so stitched runs exit non-zero on the same failures. Synthesized
// progressive skip rows (IsSkippedResult) are deliberate outcomes, not
// failures, and are passed over.
func (r *RawSuiteReport) FirstError() error {
	for _, raw := range r.Results {
		var head struct{ Name, Err string }
		if err := json.Unmarshal(raw, &head); err == nil && head.Err != "" && !IsSkippedResult(head.Err) {
			return fmt.Errorf("offramps: suite %s: scenario %s: %s", r.Suite, head.Name, head.Err)
		}
	}
	for _, raw := range r.Comparisons {
		var head struct {
			Golden  string `json:"golden"`
			Suspect string `json:"suspect"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(raw, &head); err == nil && head.Error != "" && !IsSkippedResult(head.Error) {
			return fmt.Errorf("offramps: suite %s: compare %s vs %s: %s", r.Suite, head.Golden, head.Suspect, head.Error)
		}
	}
	return nil
}
