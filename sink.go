package offramps

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// SinkError wraps the first result-sink failure of a campaign. It is a
// distinct type so callers can tell "the sweep ran, a sink could not
// keep up" (results are complete and reportable) from a run failure:
// Campaign.Run returns it only after every scenario finished, and
// RunSuite keeps executing later waves and comparisons before
// surfacing it with the full report.
type SinkError struct{ Err error }

func (e *SinkError) Error() string { return "offramps: result sink: " + e.Err.Error() }
func (e *SinkError) Unwrap() error { return e.Err }

// A ResultSink receives each ScenarioResult as it completes, in
// completion order, instead of waiting for the whole campaign to buffer —
// so a million-scenario sweep streams to disk with bounded memory. The
// campaign serializes Emit calls (no sink-side locking needed) and the
// rows are self-describing (name, seed), since completion order is
// whatever the worker pool produced. Close flushes whatever the sink
// buffers; it does not close the underlying writer. The sink's owner —
// not the campaign — must call Close once after the last Emit, since
// one sink may span many campaigns.
type ResultSink interface {
	Emit(r ScenarioResult) error
	Close() error
}

// scenarioVerdict summarizes one result the way the suite report does.
func scenarioVerdict(r ScenarioResult) string {
	if r.Err != nil {
		return fmt.Sprintf("error: %v", r.Err)
	}
	if r.Result == nil {
		return "not run"
	}
	verdict := "clean"
	if r.Result.TrojanLikely {
		verdict = "TROJAN LIKELY"
	}
	if len(r.Result.Detections) == 0 {
		verdict = "-"
	}
	if r.Result.Aborted {
		verdict += " (aborted)"
	}
	return verdict
}

// JSONLSink appends one JSON object per completed scenario — the
// streaming twin of the suite JSON report. Label (typically the suite
// name) tags every row so several suites can share one stream.
type JSONLSink struct {
	Label string
	enc   *json.Encoder
}

// NewJSONLSink streams rows to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes one row.
func (s *JSONLSink) Emit(r ScenarioResult) error {
	row := struct {
		Suite  string  `json:"suite,omitempty"`
		Name   string  `json:"name"`
		Seed   uint64  `json:"seed"`
		Result *Result `json:"result,omitempty"`
		Err    string  `json:"error,omitempty"`
	}{Suite: s.Label, Name: r.Name, Seed: r.Seed, Result: r.Result}
	if r.Err != nil {
		row.Err = r.Err.Error()
	}
	return s.enc.Encode(row)
}

// Close is a no-op; rows are written unbuffered.
func (s *JSONLSink) Close() error { return nil }

// ScenarioCSVHeader labels the streaming scenario rows. It matches the
// batch CSV schema of cmd/suite (whose compare rows reuse the same
// columns), so streamed and batch CSVs concatenate cleanly.
var ScenarioCSVHeader = []string{
	"kind", "suite", "name", "seed", "golden", "suspect",
	"completed", "aborted", "trojan_likely", "mismatches", "final_mismatches",
	"largest_pct", "duration_s", "windows", "filament_mm", "error",
}

// ScenarioCSVRow renders one scenario result as a CSV record under
// ScenarioCSVHeader. suite tags the row's suite column.
func ScenarioCSVRow(suite string, r ScenarioResult) []string {
	row := []string{"scenario", suite, r.Name, strconv.FormatUint(r.Seed, 10), "", ""}
	if r.Err != nil {
		return append(row, "", "", "", "", "", "", "", "", "", r.Err.Error())
	}
	if r.Result == nil {
		return append(row, "", "", "", "", "", "", "", "", "", "not run")
	}
	res := r.Result
	windows := 0
	if res.Recording != nil {
		windows = res.Recording.Len()
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	return append(row,
		strconv.FormatBool(res.Completed),
		strconv.FormatBool(res.Aborted),
		strconv.FormatBool(res.TrojanLikely),
		"", "", "",
		f(res.Duration.Seconds()),
		strconv.Itoa(windows),
		f(res.Quality.TotalFilament),
		"",
	)
}

// CSVSink streams scenario rows as CSV, writing the header before the
// first row. Label fills the suite column.
type CSVSink struct {
	Label       string
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVSink streams CSV records to w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Emit writes one record (plus the header, first time).
func (s *CSVSink) Emit(r ScenarioResult) error {
	if !s.wroteHeader {
		if err := s.w.Write(ScenarioCSVHeader); err != nil {
			return err
		}
		s.wroteHeader = true
	}
	return s.w.Write(ScenarioCSVRow(s.Label, r))
}

// Close flushes buffered records.
func (s *CSVSink) Close() error {
	s.w.Flush()
	return s.w.Error()
}

// ProgressSink prints a human progress line per completed scenario —
// live feedback during long sweeps. Total, when non-zero, is the
// expected scenario count for "[done/total]" framing.
type ProgressSink struct {
	W     io.Writer
	Total int
	done  int
}

// Emit prints one line.
func (s *ProgressSink) Emit(r ScenarioResult) error {
	s.done++
	total := "?"
	if s.Total > 0 {
		total = strconv.Itoa(s.Total)
	}
	_, err := fmt.Fprintf(s.W, "[%d/%s] %-24s seed=%-8d %s\n", s.done, total, r.Name, r.Seed, scenarioVerdict(r))
	return err
}

// Close is a no-op.
func (s *ProgressSink) Close() error { return nil }
