package offramps

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"offramps/internal/capture"
	"offramps/internal/fpga"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

func TestScenarioSpecSeedPolicy(t *testing.T) {
	if got := (ScenarioSpec{Seed: 42, SeedDelta: 7}).EffectiveSeed(100); got != 42 {
		t.Errorf("absolute seed = %d, want 42", got)
	}
	if got := (ScenarioSpec{SeedDelta: 7}).EffectiveSeed(100); got != 107 {
		t.Errorf("relative seed = %d, want 107", got)
	}
	if got := (ScenarioSpec{}).EffectiveSeed(100); got != 100 {
		t.Errorf("default seed = %d, want 100", got)
	}
}

func TestScenarioSpecCompile(t *testing.T) {
	spec := ScenarioSpec{
		Name:      "trojaned",
		SeedDelta: 3,
		Trojan:    &TrojanSpec{Name: "T2"},
		Detector:  &DetectorSpec{Name: "golden-free", Policy: "abort"},
		Tap:       "dual",
		Settle:    5 * sim.Second,
		Budget:    10 * sim.Second,
	}
	sc, err := spec.Compile(SpecContext{BaseSeed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "trojaned" || sc.Seed != 13 {
		t.Errorf("compiled name/seed = %q/%d", sc.Name, sc.Seed)
	}
	if sc.Trojan == nil || sc.Trojan(13) == nil {
		t.Error("trojan factory missing or returns nil")
	}
	if sc.Detector == nil {
		t.Fatal("detector factory missing")
	}
	if d, err := sc.Detector(); err != nil || d == nil {
		t.Errorf("detector build: %v", err)
	}
	if sc.Policy != AbortOnTrip {
		t.Errorf("policy = %v, want AbortOnTrip", sc.Policy)
	}
	// dual tap + settle → two construction options; budget → one run option.
	if len(sc.Options) != 2 || len(sc.RunOptions) != 1 {
		t.Errorf("options = %d, run options = %d", len(sc.Options), len(sc.RunOptions))
	}
}

func TestScenarioSpecCompilePreservesCacheability(t *testing.T) {
	// A plain golden spec must compile to a scenario the golden cache can
	// memoize — the experiment suites depend on it.
	sc, err := ScenarioSpec{Name: "golden"}.Compile(SpecContext{BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.goldenCacheable() {
		t.Error("plain compiled spec is not golden-cacheable")
	}
	// An explicit default tap must not add an option either.
	sc, err = ScenarioSpec{Name: "golden", Tap: "arduino"}.Compile(SpecContext{BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.goldenCacheable() {
		t.Error("explicit arduino tap broke cacheability")
	}
}

func TestScenarioSpecCompileErrors(t *testing.T) {
	cases := []ScenarioSpec{
		{}, // no name
		{Name: "x", Trojan: &TrojanSpec{Name: "T99"}},                                // unknown trojan
		{Name: "x", Detector: &DetectorSpec{Name: "nope"}},                           // unknown detector
		{Name: "x", Detector: &DetectorSpec{Name: "golden-free", Policy: "explode"}}, // bad policy
		{Name: "x", Tap: "sideways"},                                                 // bad tap
		{Name: "x", Settle: -1},                                                      // negative settle
		{Name: "x", Program: ProgramSpec{Part: "warship"}},                           // unknown part
		{Name: "x", Program: ProgramSpec{Flaw3D: 99}},                                // bad flaw3d case
		{Name: "x", Program: ProgramSpec{Part: "testpart", File: "a.gcode"}},         // two sources
		{Name: "x", Detector: &DetectorSpec{Name: "golden-monitor", Golden: "g"}},    // no resolver
	}
	for i, spec := range cases {
		if _, err := spec.Compile(SpecContext{BaseSeed: 1}); err == nil {
			t.Errorf("case %d: bad spec compiled: %+v", i, spec)
		}
	}

	mitm := false
	bad := ScenarioSpec{Name: "x", MITM: &mitm, Trojan: &TrojanSpec{Name: "T1"}}
	if _, err := bad.Compile(SpecContext{}); err == nil || !strings.Contains(err.Error(), "config error") {
		t.Errorf("trojan without MITM compiled: %v", err)
	}
	bad = ScenarioSpec{Name: "x", MITM: &mitm, Tap: "ramps"}
	if _, err := bad.Compile(SpecContext{}); err == nil || !strings.Contains(err.Error(), "config error") {
		t.Errorf("tap without MITM compiled: %v", err)
	}
	bad = ScenarioSpec{Name: "x", MITM: &mitm, Detector: &DetectorSpec{Name: "golden-free"}}
	if _, err := bad.Compile(SpecContext{}); err == nil || !strings.Contains(err.Error(), "config error") {
		t.Errorf("detector without MITM compiled: %v", err)
	}

	// Golden-referencing detectors must validate their params eagerly
	// too, even though the real reference capture only exists at run
	// time.
	goldens := func(string) *capture.Recording { return nil }
	bad = ScenarioSpec{Name: "x", Detector: &DetectorSpec{
		Name: "golden-monitor", Golden: "g", Params: json.RawMessage(`{"margni": 0.1}`),
	}}
	if _, err := bad.Compile(SpecContext{Goldens: goldens}); err == nil {
		t.Error("bad golden-detector params survived compilation")
	}
	ok := ScenarioSpec{Name: "x", Detector: &DetectorSpec{
		Name: "golden-monitor", Golden: "g", Params: json.RawMessage(`{"margin": 0.1}`),
	}}
	if _, err := ok.Compile(SpecContext{Goldens: goldens}); err != nil {
		t.Errorf("good golden-detector params rejected: %v", err)
	}
}

// TestScenarioSpecDetectorTapValidation: the tap-addressable detection
// negative paths. A detector bound to an untapped side, an attestation
// requested without the dual tap, a dual binding on a plain detector,
// and a side-bound detector without the MITM must all fail at compile
// time with "config error" diagnostics — and, like every Compile check,
// the outcome depends only on the spec's content, never on the order its
// fields were written in (exercised by permuting independent knobs).
func TestScenarioSpecDetectorTapValidation(t *testing.T) {
	bad := []struct {
		name string
		spec ScenarioSpec
	}{
		{"ramps binding on default arduino tap",
			ScenarioSpec{Name: "x", Detector: &DetectorSpec{Name: "golden-free", Tap: "ramps"}}},
		{"arduino binding on ramps tap",
			ScenarioSpec{Name: "x", Tap: "ramps", Detector: &DetectorSpec{Name: "golden-free", Tap: "arduino"}}},
		{"attestation without dual scenario tap",
			ScenarioSpec{Name: "x", Detector: &DetectorSpec{Name: "attestation", Tap: "dual"}}},
		{"attestation on single-side tap",
			ScenarioSpec{Name: "x", Tap: "ramps", Detector: &DetectorSpec{Name: "attestation", Tap: "dual"}}},
		{"attestation without a dual binding",
			ScenarioSpec{Name: "x", Tap: "dual", Detector: &DetectorSpec{Name: "attestation"}}},
		{"plain detector on the dual binding",
			ScenarioSpec{Name: "x", Tap: "dual", Detector: &DetectorSpec{Name: "golden-free", Tap: "dual"}}},
		{"dual binding without MITM",
			func() ScenarioSpec {
				mitm := false
				return ScenarioSpec{Name: "x", MITM: &mitm, Tap: "dual",
					Detector: &DetectorSpec{Name: "attestation", Tap: "dual"}}
			}()},
		{"side-bound detector without MITM",
			func() ScenarioSpec {
				mitm := false
				return ScenarioSpec{Name: "x", MITM: &mitm,
					Detector: &DetectorSpec{Name: "golden-free", Tap: "arduino"}}
			}()},
	}
	for _, tc := range bad {
		_, err := tc.spec.Compile(SpecContext{BaseSeed: 1})
		if err == nil || !strings.Contains(err.Error(), "config error") {
			t.Errorf("%s: err = %v, want a config error", tc.name, err)
		}
	}

	// Unknown binding vocabulary is its own diagnostic.
	if _, err := (ScenarioSpec{Name: "x", Detector: &DetectorSpec{Name: "golden-free", Tap: "sideways"}}).Compile(SpecContext{}); err == nil {
		t.Error("unknown detector tap accepted")
	}

	// The good twins compile: every side the scenario taps is bindable.
	good := []ScenarioSpec{
		{Name: "x", Detector: &DetectorSpec{Name: "golden-free", Tap: "arduino"}},
		{Name: "x", Tap: "ramps", Detector: &DetectorSpec{Name: "golden-free", Tap: "ramps"}},
		{Name: "x", Tap: "dual", Detector: &DetectorSpec{Name: "golden-free", Tap: "ramps"}},
		{Name: "x", Tap: "dual", Detector: &DetectorSpec{Name: "attestation", Tap: "dual"}},
	}
	for i, spec := range good {
		sc, err := spec.Compile(SpecContext{BaseSeed: 1})
		if err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
			continue
		}
		if spec.Detector.Tap == "dual" && sc.DetectorBind != BindDual {
			t.Errorf("good spec %d: DetectorBind = %v, want dual", i, sc.DetectorBind)
		}
	}

	// A compiled dual-attestation scenario with the json round trip: the
	// spec stays pure data.
	js := `{"name": "a", "tap": "dual", "trojan": {"name": "T2"}, "detector": {"name": "attestation", "tap": "dual", "policy": "abort"}}`
	var spec ScenarioSpec
	if err := json.Unmarshal([]byte(js), &spec); err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Compile(SpecContext{BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.DetectorBind != BindDual || sc.Policy != AbortOnTrip {
		t.Errorf("round-tripped spec compiled to bind=%v policy=%v", sc.DetectorBind, sc.Policy)
	}
}

func TestParseSuiteSpecStrict(t *testing.T) {
	if _, err := ParseSuiteSpec([]byte(`{"scenarios": [{"name": "a", "trjoan": {}}]}`), ""); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSuiteSpec([]byte(`{"scenarios": []}`), ""); err == nil {
		t.Error("empty suite accepted")
	}
	if _, err := ParseSuiteSpec([]byte(`{"scenarios": [{"name":"a"},{"name":"a"}]}`), ""); err == nil {
		t.Error("duplicate scenario names accepted")
	}
	if _, err := ParseSuiteSpec([]byte(`{"scenarios": [{"name":"a"}], "compare": [{"golden":"a","suspect":"b"}]}`), ""); err == nil {
		t.Error("dangling compare reference accepted")
	}
	if _, err := ParseSuiteSpec([]byte(`{"scenarios": [{"name":"a","detector":{"name":"golden-monitor","golden":"a"}}]}`), ""); err == nil {
		t.Error("self-golden accepted")
	}
	if _, err := ParseSuiteSpec([]byte(`{"scenarios": [
		{"name":"a","detector":{"name":"golden-monitor","golden":"b"}},
		{"name":"b","detector":{"name":"golden-monitor","golden":"a"}}]}`), ""); err == nil {
		t.Error("golden reference cycle accepted")
	}
	if _, err := ParseSuiteSpec([]byte(`{"scenarios": [{"name":"a"},{"name":"b"}],
		"compare": [{"golden":"a","suspect":"b","suspectTap":"dual"}]}`), ""); err == nil {
		t.Error("dual compare tap accepted (comparisons need one side)")
	}
	if _, err := ParseSuiteSpec([]byte(`{"budget": "-5s", "scenarios": [{"name":"a"}]}`), ""); err == nil {
		t.Error("negative suite budget accepted")
	}
	if _, err := ParseSuiteSpec([]byte(`{"scenarios":[{"name":"a"}]}{"scenarios":[{"name":"b"}]}`), ""); err == nil {
		t.Error("trailing content after the suite object accepted")
	}

	s, err := ParseSuiteSpec([]byte(`{
		"name": "ok",
		"baseSeed": 9,
		"budget": "20m",
		"scenarios": [
			{"name": "g"},
			{"name": "s", "seedDelta": 5, "trojan": {"name": "T2", "params": {"keepRatio": 0.8}}}
		],
		"compare": [{"golden": "g", "suspect": "s"}]
	}`), "")
	if err != nil {
		t.Fatal(err)
	}
	if s.BaseSeed != 9 || s.Budget != 20*60*sim.Second || len(s.Scenarios) != 2 {
		t.Errorf("parsed suite = %+v", s)
	}
}

// TestBuiltinSuitesValidate compiles every built-in experiment's spec
// form — the spec path and the experiment entry points must never drift.
func TestBuiltinSuitesValidate(t *testing.T) {
	suites := []*SuiteSpec{
		TableIISuite(1), Figure4Suite(1), DriftSuite(1, 3), TapSidesSuite(1),
		SelfAttestSuite(1),
		{Name: "table1", BaseSeed: 1, Scenarios: TableISpecs()},
		{Name: "overhead", BaseSeed: 1, Scenarios: OverheadSpecs()},
	}
	for _, s := range suites {
		if err := s.Validate(); err != nil {
			t.Errorf("suite %s: %v", s.Name, err)
		}
		if _, err := CompileSpecs(SpecContext{BaseSeed: s.BaseSeed}, s.Scenarios); err != nil {
			t.Errorf("suite %s compile: %v", s.Name, err)
		}
	}
}

// TestRunSuiteTwoWaves runs a miniature suite whose detector references a
// golden scenario, exercising wave partitioning and the registry-built
// live monitor end to end.
func TestRunSuiteTwoWaves(t *testing.T) {
	suite := &SuiteSpec{
		Name:     "waves",
		BaseSeed: 2,
		Scenarios: []ScenarioSpec{
			{Name: "golden"},
			{
				Name:      "suspect",
				Program:   ProgramSpec{Flaw3D: 1},
				SeedDelta: 50,
				Detector:  &DetectorSpec{Name: "golden-monitor", Golden: "golden", Policy: "abort"},
			},
		},
		Compare: []CompareSpec{{Golden: "golden", Suspect: "suspect"}},
	}
	rep, err := Campaign{}.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(rep.Results); err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Name != "golden" || rep.Results[1].Name != "suspect" {
		t.Fatalf("result order: %s, %s", rep.Results[0].Name, rep.Results[1].Name)
	}
	suspect := rep.Results[1].Result
	if !suspect.Aborted || !suspect.TrojanLikely {
		t.Errorf("live monitor did not abort the 50%% reduction (aborted=%v likely=%v)",
			suspect.Aborted, suspect.TrojanLikely)
	}
	// The post-run comparison sees the truncated capture and agrees.
	if cmp := rep.Comparisons[0]; cmp.Err != nil || !cmp.Report.TrojanLikely {
		t.Errorf("comparison verdict: %+v", cmp)
	}
	if !strings.Contains(rep.Format(), "TROJAN LIKELY") {
		t.Error("Format() missing verdict")
	}
}

// TestRunSuiteChainedGoldens runs a golden-reference chain (A ← B ← C):
// wave ordering must resolve transitively, with each dependent detector
// streaming against a reference printed in an earlier wave.
func TestRunSuiteChainedGoldens(t *testing.T) {
	suite := &SuiteSpec{
		Name:     "chain",
		BaseSeed: 3,
		Scenarios: []ScenarioSpec{
			// Spec order deliberately reversed vs dependency order.
			{Name: "c", SeedDelta: 2, Detector: &DetectorSpec{Name: "golden-comparator", Golden: "b"}},
			{Name: "b", SeedDelta: 1, Detector: &DetectorSpec{Name: "golden-comparator", Golden: "a"}},
			{Name: "a"},
		},
	}
	rep, err := Campaign{}.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(rep.Results); err != nil {
		t.Fatalf("chained golden references failed: %v", err)
	}
	// Results keep spec order; b and c each carry their detector report.
	for i, want := range []string{"c", "b", "a"} {
		if rep.Results[i].Name != want {
			t.Errorf("result %d = %q, want %q", i, rep.Results[i].Name, want)
		}
	}
	for _, name := range []string{"c", "b"} {
		for _, r := range rep.Results {
			if r.Name == name && len(r.Result.Detections) != 1 {
				t.Errorf("%s carries %d detector reports, want 1", name, len(r.Result.Detections))
			}
		}
	}
}

// TestSuiteReportFormatPartial: a cancelled suite's report contains
// never-started scenarios (Result nil, Err nil); Format must render them
// without panicking.
func TestSuiteReportFormatPartial(t *testing.T) {
	rep := &SuiteReport{
		Suite: "partial",
		Results: []ScenarioResult{
			{Name: "never-ran", Seed: 7},
		},
	}
	if out := rep.Format(); !strings.Contains(out, "not run") {
		t.Errorf("partial report rendering = %q", out)
	}
}

// TestSpecCompiledTableIMatchesClosurePath asserts the declarative path
// produces bit-identical results to a hand-built closure scenario — the
// "closure path stays a thin adapter" guarantee.
func TestSpecCompiledTableIMatchesClosurePath(t *testing.T) {
	prog := mustTestPart(t)
	seed := uint64(11)

	compiled, err := CompileSpecs(SpecContext{BaseSeed: seed}, []ScenarioSpec{
		{Name: "t2", Trojan: &TrojanSpec{Name: "T2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	closure := []Scenario{{
		Name: "t2", Program: prog, Seed: seed,
		Trojan: func(s uint64) fpga.Trojan {
			return trojan.NewT2ExtrusionReduction(trojan.T2Params{KeepRatio: 0.5})
		},
	}}

	ra, err := Campaign{}.Run(context.Background(), compiled)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Campaign{}.Run(context.Background(), closure)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(append(ra, rb...)); err != nil {
		t.Fatal(err)
	}
	a, b := ra[0].Result, rb[0].Result
	if a.Duration != b.Duration || a.Quality != b.Quality {
		t.Errorf("spec path diverged from closure path: %v/%v vs %v/%v",
			a.Duration, a.Quality, b.Duration, b.Quality)
	}
	if a.Recording.Len() != b.Recording.Len() {
		t.Fatalf("capture lengths differ: %d vs %d", a.Recording.Len(), b.Recording.Len())
	}
	for i := range a.Recording.Transactions {
		if a.Recording.Transactions[i] != b.Recording.Transactions[i] {
			t.Fatalf("transaction %d differs", i)
		}
	}
}
