package offramps

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"offramps/internal/capture"
	"offramps/internal/gcode"
	"offramps/internal/sim"
)

// goldenKey content-addresses one golden print: the exact program (hashed
// over raw float bits, finer than the 5-decimal G-code serialization), the
// time-noise seed, and the run budget. Everything else that shapes a
// cacheable scenario's capture is the testbed's compiled-in default
// configuration, which is constant for a build: scenarios carrying any
// opaque knob that could change the capture — a trojan or detector
// factory, a Prepare hook, extra Options or RunOptions — are never cached
// (see Scenario.goldenCacheable and DESIGN.md §6).
type goldenKey struct {
	program [sha256.Size]byte
	seed    uint64
	budget  sim.Time
	// mode keeps full-trace and fingerprint-only results apart: the two
	// are deliberately different shapes (one carries a Recording, the
	// other only summaries), so a campaign must never be handed the
	// other mode's cached result.
	mode CaptureMode
}

// hashProgram computes the content address of a program.
func hashProgram(prog gcode.Program) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	for _, c := range prog {
		h.Write([]byte(c.Code))
		h.Write([]byte{0})
		for _, w := range c.Words {
			h.Write([]byte{w.Letter})
			if w.Bare {
				h.Write([]byte{1})
			} else {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w.Value))
				h.Write(buf[:])
			}
		}
		h.Write([]byte{'\n'})
	}
	return [sha256.Size]byte(h.Sum(nil))
}

// goldenEntry is one memoized golden run. The Once serializes concurrent
// workers asking for the same golden: the first computes, the rest reuse.
type goldenEntry struct {
	once sync.Once
	res  *Result
	err  error
	// lastUsed and bytes are owned by the cache mutex: the LRU clock at
	// the entry's most recent lookup, and the entry's retained-size
	// estimate (0 until the result materializes and is counted).
	lastUsed uint64
	bytes    int64
	counted  bool
}

// GoldenCache memoizes golden (trojan-free, detector-free, unmodified)
// print runs across campaigns. The experiment suite re-simulates
// bit-identical goldens — TableII, Figure4, and Drift all print the same
// program with overlapping seeds — so a shared cache lets each golden be
// simulated exactly once per process. Determinism makes this sound: a
// cached Result is bit-identical to a fresh run with the same key (tested
// by TestGoldenCacheBitIdentical).
//
// Cached Results (including Part and Recording) are shared read-only;
// everything downstream of a campaign treats results as immutable.
type GoldenCache struct {
	mu      sync.Mutex
	entries map[goldenKey]*goldenEntry
	hits    uint64
	misses  uint64
	// limit caps len(entries); 0 means unbounded. When an insert pushes
	// the cache over the cap, the least-recently-used settled entry is
	// evicted (callers already holding the evicted *goldenEntry keep
	// their result — eviction only forgets, it never invalidates).
	limit int
	bytes int64
	clock uint64
}

// NewGoldenCache returns an empty, unbounded cache.
func NewGoldenCache() *GoldenCache {
	return &GoldenCache{entries: make(map[goldenKey]*goldenEntry)}
}

// NewGoldenCacheWithLimit returns a cache holding at most maxEntries
// memoized goldens, evicting the least recently used beyond that. A
// non-positive limit means unbounded (same as NewGoldenCache).
func NewGoldenCacheWithLimit(maxEntries int) *GoldenCache {
	gc := NewGoldenCache()
	if maxEntries > 0 {
		gc.limit = maxEntries
	}
	return gc
}

// Stats reports cache hits and misses so far.
func (gc *GoldenCache) Stats() (hits, misses uint64) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.hits, gc.misses
}

// Len reports the number of memoized goldens.
func (gc *GoldenCache) Len() int {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return len(gc.entries)
}

// Bytes estimates the memory retained by the cached results: recording
// transactions, deposit ledgers, and a small fixed overhead per entry.
// It is an accounting figure (slice backing arrays, not Go runtime
// overhead), intended for progress displays and capacity planning.
func (gc *GoldenCache) Bytes() int64 {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.bytes
}

// resultBytes estimates the bulk memory a cached result retains.
func resultBytes(res *Result) int64 {
	const (
		txSize      = 20  // capture.Transaction: uint32 + 4×int32
		depositSize = 32  // printer.Deposit: 4×float64
		fixed       = 512 // result struct, fingerprints, reports
	)
	size := int64(fixed)
	if res == nil {
		return size
	}
	seen := make(map[*capture.Recording]bool, 3)
	for _, rec := range []*capture.Recording{res.Recording, res.ArduinoRecording, res.RAMPSRecording} {
		if rec == nil || seen[rec] {
			continue
		}
		seen[rec] = true
		size += int64(cap(rec.Transactions)) * txSize
	}
	if res.Part != nil {
		size += int64(len(res.Part.Deposits())) * depositSize
	}
	return size
}

// evictLocked drops least-recently-used settled entries until the cache
// fits its limit. keep is the entry that triggered the insert and must
// survive. Callers hold gc.mu.
func (gc *GoldenCache) evictLocked(keep *goldenEntry) {
	if gc.limit <= 0 {
		return
	}
	for len(gc.entries) > gc.limit {
		var oldestKey goldenKey
		var oldest *goldenEntry
		for k, e := range gc.entries {
			if e == keep || !e.counted {
				continue
			}
			if oldest == nil || e.lastUsed < oldest.lastUsed {
				oldestKey, oldest = k, e
			}
		}
		if oldest == nil {
			return // everything else is still in flight; over-cap is transient
		}
		delete(gc.entries, oldestKey)
		gc.bytes -= oldest.bytes
	}
}

// run returns the memoized result for key, computing it via fresh exactly
// once per key (concurrent callers block on the first computation).
// Failures are not memoized: a transient error (e.g. a cancelled context)
// must not poison the key for later campaigns.
func (gc *GoldenCache) run(key goldenKey, fresh func() (*Result, error)) (*Result, error) {
	gc.mu.Lock()
	if gc.entries == nil {
		gc.entries = make(map[goldenKey]*goldenEntry)
	}
	e, ok := gc.entries[key]
	if !ok {
		e = &goldenEntry{}
		gc.entries[key] = e
		gc.misses++
	} else {
		gc.hits++
	}
	gc.clock++
	e.lastUsed = gc.clock
	gc.mu.Unlock()
	e.once.Do(func() { e.res, e.err = fresh() })
	gc.mu.Lock()
	switch {
	case e.err != nil:
		if gc.entries[key] == e {
			delete(gc.entries, key)
		}
	case !e.counted:
		e.counted = true
		e.bytes = resultBytes(e.res)
		gc.bytes += e.bytes
		gc.evictLocked(e)
	}
	gc.mu.Unlock()
	return e.res, e.err
}

// goldenCacheable reports whether the scenario is a pure golden print the
// cache may memoize: no trojan, no detector, no instrumentation, and no
// opaque construction or run options. Options and RunOptions are funcs —
// their effect on the capture cannot be content-addressed, so any
// non-empty slice disqualifies the scenario (the conservative reading of
// "the key must cover every option that affects the capture").
func (s *Scenario) goldenCacheable() bool {
	return s.Trojan == nil && s.Detector == nil && s.Prepare == nil &&
		len(s.Options) == 0 && len(s.RunOptions) == 0
}
