package offramps

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"offramps/internal/gcode"
	"offramps/internal/sim"
)

// goldenKey content-addresses one golden print: the exact program (hashed
// over raw float bits, finer than the 5-decimal G-code serialization), the
// time-noise seed, and the run budget. Everything else that shapes a
// cacheable scenario's capture is the testbed's compiled-in default
// configuration, which is constant for a build: scenarios carrying any
// opaque knob that could change the capture — a trojan or detector
// factory, a Prepare hook, extra Options or RunOptions — are never cached
// (see Scenario.goldenCacheable and DESIGN.md §6).
type goldenKey struct {
	program [sha256.Size]byte
	seed    uint64
	budget  sim.Time
}

// hashProgram computes the content address of a program.
func hashProgram(prog gcode.Program) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	for _, c := range prog {
		h.Write([]byte(c.Code))
		h.Write([]byte{0})
		for _, w := range c.Words {
			h.Write([]byte{w.Letter})
			if w.Bare {
				h.Write([]byte{1})
			} else {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w.Value))
				h.Write(buf[:])
			}
		}
		h.Write([]byte{'\n'})
	}
	return [sha256.Size]byte(h.Sum(nil))
}

// goldenEntry is one memoized golden run. The Once serializes concurrent
// workers asking for the same golden: the first computes, the rest reuse.
type goldenEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// GoldenCache memoizes golden (trojan-free, detector-free, unmodified)
// print runs across campaigns. The experiment suite re-simulates
// bit-identical goldens — TableII, Figure4, and Drift all print the same
// program with overlapping seeds — so a shared cache lets each golden be
// simulated exactly once per process. Determinism makes this sound: a
// cached Result is bit-identical to a fresh run with the same key (tested
// by TestGoldenCacheBitIdentical).
//
// Cached Results (including Part and Recording) are shared read-only;
// everything downstream of a campaign treats results as immutable.
type GoldenCache struct {
	mu      sync.Mutex
	entries map[goldenKey]*goldenEntry
	hits    uint64
	misses  uint64
}

// NewGoldenCache returns an empty cache.
func NewGoldenCache() *GoldenCache {
	return &GoldenCache{entries: make(map[goldenKey]*goldenEntry)}
}

// Stats reports cache hits and misses so far.
func (gc *GoldenCache) Stats() (hits, misses uint64) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.hits, gc.misses
}

// Len reports the number of memoized goldens.
func (gc *GoldenCache) Len() int {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return len(gc.entries)
}

// run returns the memoized result for key, computing it via fresh exactly
// once per key (concurrent callers block on the first computation).
// Failures are not memoized: a transient error (e.g. a cancelled context)
// must not poison the key for later campaigns.
func (gc *GoldenCache) run(key goldenKey, fresh func() (*Result, error)) (*Result, error) {
	gc.mu.Lock()
	if gc.entries == nil {
		gc.entries = make(map[goldenKey]*goldenEntry)
	}
	e, ok := gc.entries[key]
	if !ok {
		e = &goldenEntry{}
		gc.entries[key] = e
		gc.misses++
	} else {
		gc.hits++
	}
	gc.mu.Unlock()
	e.once.Do(func() { e.res, e.err = fresh() })
	if e.err != nil {
		gc.mu.Lock()
		if gc.entries[key] == e {
			delete(gc.entries, key)
		}
		gc.mu.Unlock()
	}
	return e.res, e.err
}

// goldenCacheable reports whether the scenario is a pure golden print the
// cache may memoize: no trojan, no detector, no instrumentation, and no
// opaque construction or run options. Options and RunOptions are funcs —
// their effect on the capture cannot be content-addressed, so any
// non-empty slice disqualifies the scenario (the conservative reading of
// "the key must cover every option that affects the capture").
func (s *Scenario) goldenCacheable() bool {
	return s.Trojan == nil && s.Detector == nil && s.Prepare == nil &&
		len(s.Options) == 0 && len(s.RunOptions) == 0
}
