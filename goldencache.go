package offramps

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"offramps/internal/capture"
	"offramps/internal/gcode"
	"offramps/internal/goldenstore"
	"offramps/internal/sim"
)

// goldenKey content-addresses one golden print: the exact program (hashed
// over raw float bits, finer than the 5-decimal G-code serialization), the
// time-noise seed, and the run budget. Everything else that shapes a
// cacheable scenario's capture is the testbed's compiled-in default
// configuration, which is constant for a build: scenarios carrying any
// opaque knob that could change the capture — a trojan or detector
// factory, a Prepare hook, extra Options or RunOptions — are never cached
// (see Scenario.goldenCacheable and DESIGN.md §6).
type goldenKey struct {
	program [sha256.Size]byte
	seed    uint64
	budget  sim.Time
	// mode keeps full-trace and fingerprint-only results apart: the two
	// are deliberately different shapes (one carries a Recording, the
	// other only summaries), so a campaign must never be handed the
	// other mode's cached result.
	mode CaptureMode
}

// storeKey maps the in-memory key onto the persistent store's key type
// (identical fields; goldenstore cannot import this package).
func (k goldenKey) storeKey() goldenstore.Key {
	return goldenstore.Key{
		Program: k.program,
		Seed:    k.seed,
		Budget:  int64(k.budget),
		Mode:    uint8(k.mode),
	}
}

// hashProgram computes the content address of a program.
func hashProgram(prog gcode.Program) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	for _, c := range prog {
		h.Write([]byte(c.Code))
		h.Write([]byte{0})
		for _, w := range c.Words {
			h.Write([]byte{w.Letter})
			if w.Bare {
				h.Write([]byte{1})
			} else {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w.Value))
				h.Write(buf[:])
			}
		}
		h.Write([]byte{'\n'})
	}
	return [sha256.Size]byte(h.Sum(nil))
}

// goldenEntry is one memoized golden run. The first caller to insert the
// entry owns the computation; everyone else blocks on done. If the owner
// fails, it records the error, unpublishes the entry, and closes done —
// waiters observe the failure and re-attempt with a fresh entry rather
// than inheriting an error that may have been specific to the owner (a
// cancelled context, a transient store fault).
type goldenEntry struct {
	done chan struct{} // closed once res/err are final
	res  *Result
	err  error
	// lastUsed and bytes are owned by the cache mutex: the LRU clock at
	// the entry's most recent lookup, and the entry's retained-size
	// estimate (0 until the result materializes and is counted).
	lastUsed uint64
	bytes    int64
	counted  bool
}

// GoldenCache memoizes golden (trojan-free, detector-free, unmodified)
// print runs across campaigns. The experiment suite re-simulates
// bit-identical goldens — TableII, Figure4, and Drift all print the same
// program with overlapping seeds — so a shared cache lets each golden be
// simulated exactly once per process. Determinism makes this sound: a
// cached Result is bit-identical to a fresh run with the same key (tested
// by TestGoldenCacheBitIdentical).
//
// Cached Results (including Part and Recording) are shared read-only;
// everything downstream of a campaign treats results as immutable.
type GoldenCache struct {
	mu      sync.Mutex
	entries map[goldenKey]*goldenEntry
	hits    uint64
	misses  uint64
	// limit caps len(entries); 0 means unbounded. When an insert pushes
	// the cache over the cap, the least-recently-used settled entry is
	// evicted (callers already holding the evicted *goldenEntry keep
	// their result — eviction only forgets, it never invalidates).
	limit int
	bytes int64
	clock uint64

	// store is the optional persistent tier (AttachStore). A memory miss
	// consults it before simulating; a fresh simulation is written back
	// best-effort. storeHits/storeMisses count those consultations, and
	// sims counts actual fresh simulations — on a fully warm store a
	// fresh process reports memory misses but zero sims.
	store       *goldenstore.Store
	storeHits   uint64
	storeMisses uint64
	sims        uint64
	// used records every store key this cache has been asked for — the
	// keep set a store GC (goldenstore.Rebuild) retains. Tracked only
	// while a store is attached.
	used map[goldenstore.Key]bool
}

// NewGoldenCache returns an empty, unbounded cache.
func NewGoldenCache() *GoldenCache {
	return &GoldenCache{entries: make(map[goldenKey]*goldenEntry)}
}

// NewGoldenCacheWithLimit returns a cache holding at most maxEntries
// memoized goldens, evicting the least recently used beyond that. A
// non-positive limit means unbounded (same as NewGoldenCache).
func NewGoldenCacheWithLimit(maxEntries int) *GoldenCache {
	gc := NewGoldenCache()
	if maxEntries > 0 {
		gc.limit = maxEntries
	}
	return gc
}

// AttachStore wires a persistent golden store behind the in-memory tier.
// Memory misses consult the store before simulating; fresh simulations
// are persisted best-effort (encode or write failures are ignored — the
// store is an accelerator, never a correctness dependency). Attach
// before the cache is shared across goroutines.
func (gc *GoldenCache) AttachStore(store *goldenstore.Store) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	gc.store = store
}

// Stats reports memory-tier hits and misses so far. A hit is counted
// only when a settled result is actually served — a waiter that joined a
// computation that then failed re-attempts and is not a hit.
func (gc *GoldenCache) Stats() (hits, misses uint64) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.hits, gc.misses
}

// StoreStats reports persistent-tier hits and misses (zero when no store
// is attached).
func (gc *GoldenCache) StoreStats() (hits, misses uint64) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.storeHits, gc.storeMisses
}

// Sims reports the number of fresh golden simulations actually run — the
// figure a warm persistent store drives to zero.
func (gc *GoldenCache) Sims() uint64 {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.sims
}

// Len reports the number of memoized goldens.
func (gc *GoldenCache) Len() int {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return len(gc.entries)
}

// Bytes estimates the memory retained by the cached results: recording
// transactions, deposit ledgers, and a small fixed overhead per entry.
// It is an accounting figure (slice backing arrays, not Go runtime
// overhead), intended for progress displays and capacity planning.
func (gc *GoldenCache) Bytes() int64 {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.bytes
}

// resultBytes estimates the bulk memory a cached result retains.
func resultBytes(res *Result) int64 {
	const (
		txSize      = 20  // capture.Transaction: uint32 + 4×int32
		depositSize = 32  // printer.Deposit: 4×float64
		fixed       = 512 // result struct, fingerprints, reports
	)
	size := int64(fixed)
	if res == nil {
		return size
	}
	seen := make(map[*capture.Recording]bool, 3)
	for _, rec := range []*capture.Recording{res.Recording, res.ArduinoRecording, res.RAMPSRecording} {
		if rec == nil || seen[rec] {
			continue
		}
		seen[rec] = true
		size += int64(cap(rec.Transactions)) * txSize
	}
	if res.Part != nil {
		size += int64(len(res.Part.Deposits())) * depositSize
	}
	return size
}

// evictLocked drops least-recently-used settled entries until the cache
// fits its limit. keep is the entry that triggered the insert and must
// survive. Callers hold gc.mu.
func (gc *GoldenCache) evictLocked(keep *goldenEntry) {
	if gc.limit <= 0 {
		return
	}
	for len(gc.entries) > gc.limit {
		var oldestKey goldenKey
		var oldest *goldenEntry
		for k, e := range gc.entries {
			if e == keep || !e.counted {
				continue
			}
			if oldest == nil || e.lastUsed < oldest.lastUsed {
				oldestKey, oldest = k, e
			}
		}
		if oldest == nil {
			return // everything else is still in flight; over-cap is transient
		}
		delete(gc.entries, oldestKey)
		gc.bytes -= oldest.bytes
	}
}

// run returns the memoized result for key. Concurrent callers for the
// same key block on the first caller's computation; if that owner fails,
// its waiters re-attempt the key themselves instead of inheriting an
// error that may have been the owner's alone (a cancelled context), so a
// transient failure never poisons the key — and never fails bystanders.
// Failures are not memoized.
func (gc *GoldenCache) run(key goldenKey, fresh func() (*Result, error)) (*Result, error) {
	for {
		gc.mu.Lock()
		if gc.entries == nil {
			gc.entries = make(map[goldenKey]*goldenEntry)
		}
		if gc.store != nil {
			if gc.used == nil {
				gc.used = make(map[goldenstore.Key]bool)
			}
			gc.used[key.storeKey()] = true
		}
		if e, ok := gc.entries[key]; ok {
			gc.clock++
			e.lastUsed = gc.clock
			gc.mu.Unlock()
			<-e.done
			if e.err != nil {
				continue // owner failed and unpublished the entry; re-attempt
			}
			gc.mu.Lock()
			gc.hits++
			gc.mu.Unlock()
			return e.res, nil
		}
		e := &goldenEntry{done: make(chan struct{})}
		gc.entries[key] = e
		gc.misses++
		gc.clock++
		e.lastUsed = gc.clock
		gc.mu.Unlock()

		res, err := gc.fill(key, fresh)

		gc.mu.Lock()
		if err != nil {
			e.err = err
			if gc.entries[key] == e {
				delete(gc.entries, key)
			}
			gc.mu.Unlock()
			close(e.done)
			return nil, err
		}
		e.res = res
		e.counted = true
		e.bytes = resultBytes(res)
		gc.bytes += e.bytes
		gc.evictLocked(e)
		gc.mu.Unlock()
		close(e.done)
		return res, nil
	}
}

// fill produces the result for a memory-tier miss: consult the persistent
// store if one is attached (a corrupt or undecodable entry is a miss,
// never an error), otherwise simulate fresh and write the golden back
// best-effort.
func (gc *GoldenCache) fill(key goldenKey, fresh func() (*Result, error)) (*Result, error) {
	gc.mu.Lock()
	store := gc.store
	gc.mu.Unlock()
	if store != nil {
		sk := key.storeKey()
		if payload, ok := store.Get(sk); ok {
			if res, err := decodeGoldenResult(payload); err == nil {
				gc.mu.Lock()
				gc.storeHits++
				gc.mu.Unlock()
				return res, nil
			}
		}
		gc.mu.Lock()
		gc.storeMisses++
		gc.mu.Unlock()
	}
	res, err := fresh()
	if err != nil {
		return nil, err
	}
	gc.mu.Lock()
	gc.sims++
	gc.mu.Unlock()
	if store != nil {
		if payload, encErr := encodeGoldenResult(res); encErr == nil {
			_ = store.Put(key.storeKey(), payload)
		}
	}
	return res, nil
}

// UsedStoreKeys returns every persistent-store key the cache has been
// asked for since its store was attached — the keep set for a
// goldenstore.Rebuild garbage collection after a run (see cmd/suite's
// -golden-store-gc).
func (gc *GoldenCache) UsedStoreKeys() []goldenstore.Key {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	out := make([]goldenstore.Key, 0, len(gc.used))
	for k := range gc.used {
		out = append(out, k)
	}
	return out
}

// goldenCacheable reports whether the scenario is a pure golden print the
// cache may memoize: no trojan, no detector, no instrumentation, and no
// opaque construction or run options. Options and RunOptions are funcs —
// their effect on the capture cannot be content-addressed, so any
// non-empty slice disqualifies the scenario (the conservative reading of
// "the key must cover every option that affects the capture").
func (s *Scenario) goldenCacheable() bool {
	return s.Trojan == nil && s.Detector == nil && s.Prepare == nil &&
		len(s.Options) == 0 && len(s.RunOptions) == 0
}
