package offramps

import (
	"context"
	"fmt"

	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/firmware"
	"offramps/internal/fpga"
	"offramps/internal/gcode"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// DefaultRunBudget bounds a run's *simulated* time when WithLimit is not
// given. The standard test part takes ≈2 simulated minutes; an hour of
// headroom catches hangs without false positives.
const DefaultRunBudget = 3600 * sim.Second

// TripPolicy says what a live detector's trip does to the run.
type TripPolicy int

const (
	// FlagOnly keeps printing; the verdict lands in Result.Detections at
	// the end of the run.
	FlagOnly TripPolicy = iota
	// AbortOnTrip halts the print the moment the detector trips —
	// "enabling a user to halt a print as soon as a Trojan is suspected"
	// (paper §V-C), saving machine time and material cost (§V-A).
	AbortOnTrip
)

// RunProgress is a snapshot delivered to the WithProgress callback after
// each simulation step.
type RunProgress struct {
	// Now is the current simulated time.
	Now sim.Time
	// Windows is the number of capture windows exported so far (zero
	// without the MITM).
	Windows int
	// Tripped is true once any attached live detector has tripped.
	Tripped bool
}

// TapBinding names the tap a live detector observes. The zero value,
// BindPrimary, is the board's primary tap — the paper's rig — so
// detectors attached without an explicit binding behave exactly as
// before taps became addressable.
type TapBinding int

const (
	// BindPrimary feeds the detector from the board's primary tap
	// (Arduino-side when tapped — the paper's configuration — else
	// RAMPS).
	BindPrimary TapBinding = iota
	// BindArduino feeds the detector from the Arduino-side (input) tap:
	// what the firmware commanded.
	BindArduino
	// BindRAMPS feeds the detector from the RAMPS-side (output) tap:
	// what the printer actually received — the side that sees board-
	// injected trojans (§V-D).
	BindRAMPS
	// BindDual feeds the detector synchronized per-window pairs from
	// both taps; the detector must implement detect.PairObserver (e.g.
	// the attestation detector).
	BindDual
)

// String names the binding for error messages and reports.
func (b TapBinding) String() string {
	switch b {
	case BindPrimary:
		return "primary"
	case BindArduino:
		return "arduino"
	case BindRAMPS:
		return "ramps"
	case BindDual:
		return "dual"
	default:
		return fmt.Sprintf("TapBinding(%d)", int(b))
	}
}

// CaptureMode selects how much of the board's capture a run
// materializes. CaptureFull (the zero value) records the complete
// transaction trace — the paper's CSV — into Result.Recording.
// CaptureFingerprint streams transactions into the bound detectors and
// rolling capture.Fingerprints only: detector verdicts are identical
// (they observe the same stream), but no trace is allocated, so a run's
// memory cost is O(1) in window count. Result.Recording and its per-
// side siblings are nil in fingerprint mode; Result.Fingerprint (and
// siblings) are populated in both modes.
type CaptureMode int

const (
	// CaptureFull materializes the full transaction trace (default).
	CaptureFull CaptureMode = iota
	// CaptureFingerprint keeps only rolling fingerprints.
	CaptureFingerprint
)

// String names the mode for reports.
func (m CaptureMode) String() string { return capture.Mode(m).String() }

// RunOption configures one Testbed.Run.
type RunOption func(*runConfig)

// sideFeed buffers one tap's exported transactions as the board streams
// them (Board.OnExport); detectors drain it between simulation steps so
// trips and aborts stay deterministic step-boundary decisions. Consumed
// entries are compacted away between steps (base counts them), keeping
// the buffer O(detector lag) instead of O(windows).
type sideFeed struct {
	txs  []capture.Transaction
	base int // stream index of txs[0]
}

// total is the count of transactions ever streamed into the feed.
func (f *sideFeed) total() int { return f.base + len(f.txs) }

type boundDetector struct {
	d       detect.Detector
	policy  TripPolicy
	binding TapBinding
	// pair is non-nil exactly when binding == BindDual (validated at run
	// start).
	pair detect.PairObserver
	// src is the single-side feed; up/down are the dual feeds.
	src      *sideFeed
	up, down *sideFeed
	fed      int // windows (or pairs) consumed so far
	tripped  bool
}

type runConfig struct {
	limit     sim.Time
	detectors []*boundDetector
	progress  func(RunProgress)
	mode      CaptureMode
	plan      *firmware.Compiled
}

// WithLimit bounds the run's *simulated* time (default DefaultRunBudget).
func WithLimit(limit sim.Time) RunOption {
	return func(rc *runConfig) { rc.limit = limit }
}

// WithCaptureMode selects full-trace or fingerprint-only capture for
// the run (default CaptureFull). See CaptureMode.
func WithCaptureMode(m CaptureMode) RunOption {
	return func(rc *runConfig) { rc.mode = m }
}

// withCompiled runs the program from a pre-compiled move plan (shared
// across same-program scenarios by the campaign layer) instead of
// planning each move during execution. The plan must have been compiled
// from the same program and firmware config; Run validates the program
// identity.
func withCompiled(c *firmware.Compiled) RunOption {
	return func(rc *runConfig) { rc.plan = c }
}

// WithDetector attaches a live streaming detector to the run, fed from
// the board's primary tap: every capture transaction is fed to it about
// when the hardware would emit it. Under AbortOnTrip the simulation
// stops the moment the detector trips; under FlagOnly the print finishes
// and the verdict lands in Result.Detections. Any number of detectors
// may be attached; each one's finalized report is returned in attachment
// order.
func WithDetector(d detect.Detector, policy TripPolicy) RunOption {
	return WithDetectorAt(BindPrimary, d, policy)
}

// WithDetectorAt attaches a live detector bound to a specific tap: the
// Arduino side (what the firmware commanded), the RAMPS side (what the
// printer received — visible board tampering), or the dual pair feed for
// attestation-style detectors that diff the two views of the same print.
// The board must actually tap the bound side (WithTapSide); a dual
// binding additionally requires the detector to implement
// detect.PairObserver. Both constraints are validated when Run starts,
// independent of option order.
func WithDetectorAt(binding TapBinding, d detect.Detector, policy TripPolicy) RunOption {
	return func(rc *runConfig) {
		rc.detectors = append(rc.detectors, &boundDetector{d: d, policy: policy, binding: binding})
	}
}

// WithProgress registers a callback invoked after every simulation step —
// a hook for progress bars and streaming dashboards. Attaching it makes
// the run step in capture-window increments.
func WithProgress(fn func(RunProgress)) RunOption {
	return func(rc *runConfig) { rc.progress = fn }
}

// Run executes the program to completion (or kill, or detector abort),
// lets the simulation settle, and collects the result. The context
// cancels the run between simulation steps; options bound the simulated
// time and attach live detectors.
func (tb *Testbed) Run(ctx context.Context, prog gcode.Program, opts ...RunOption) (*Result, error) {
	rc := runConfig{limit: DefaultRunBudget}
	for _, opt := range opts {
		opt(&rc)
	}
	if rc.limit <= 0 {
		return nil, fmt.Errorf("offramps: Run limit must be positive")
	}
	if len(rc.detectors) > 0 && tb.Board == nil {
		return nil, fmt.Errorf("offramps: live detectors require the MITM path (captures come from the board)")
	}
	if rc.mode != CaptureFull && rc.mode != CaptureFingerprint {
		return nil, fmt.Errorf("offramps: unknown capture mode %v", rc.mode)
	}
	if rc.mode == CaptureFingerprint && tb.Board != nil {
		if err := tb.Board.SetCaptureMode(capture.ModeFingerprint); err != nil {
			return nil, fmt.Errorf("offramps: %w", err)
		}
	}
	if err := tb.bindDetectors(&rc); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	if rc.plan != nil {
		if err := tb.Firmware.LoadCompiled(prog, rc.plan); err != nil {
			return nil, fmt.Errorf("offramps: %w", err)
		}
	} else {
		tb.Firmware.Load(prog)
	}
	if err := tb.Firmware.Start(); err != nil {
		return nil, fmt.Errorf("offramps: %w", err)
	}

	// With live detectors or a progress callback the simulation steps in
	// capture-window increments so each transaction is observed about
	// when the hardware would emit it; otherwise whole seconds.
	step := sim.Time(sim.Second)
	if tb.Board != nil && (len(rc.detectors) > 0 || rc.progress != nil) {
		step = tb.Board.Config().ExportPeriod
	}

	res := &Result{}
	deadline := tb.Engine.Now() + rc.limit
	for !tb.Firmware.Done() && !res.Aborted {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("offramps: run cancelled: %w", err)
		}
		if tb.Engine.Now() >= deadline {
			return nil, &ErrTimeout{Limit: rc.limit}
		}
		if err := tb.Engine.Run(tb.Engine.Now() + step); err != nil {
			return nil, fmt.Errorf("offramps: simulation: %w", err)
		}
		if err := tb.feedDetectors(&rc, res, true); err != nil {
			return nil, err
		}
		if rc.progress != nil {
			rc.progress(tb.progressSnapshot(&rc))
		}
	}
	finished := tb.Firmware.FinishedAt()
	if !res.Aborted {
		// Normal completion: settle to observe post-kill physics, then
		// feed the trailing windows. It is too late to abort a finished
		// print, so trips here never truncate the feed — every detector
		// sees the full stream and the end-of-print checks run in each
		// detector's Finalize.
		if err := tb.Engine.Run(tb.Engine.Now() + tb.opts.settle); err != nil {
			return nil, fmt.Errorf("offramps: settling: %w", err)
		}
		if err := tb.feedDetectors(&rc, res, false); err != nil {
			return nil, err
		}
		if rc.progress != nil {
			rc.progress(tb.progressSnapshot(&rc))
		}
	}
	if tb.Board != nil {
		tb.Board.StopCapture()
	}

	res.Completed = !res.Aborted && tb.Firmware.Err() == nil
	res.HaltError = tb.Firmware.Err()
	res.Duration = finished
	if res.Aborted {
		res.Duration = tb.Engine.Now()
	}
	res.Quality = tb.Plant.Part().AssessQuality(1.0)
	res.Part = tb.Plant.Part()
	res.PeakHotendTemp = tb.Plant.PeakHotendTemp()
	res.PeakBedTemp = tb.Plant.PeakBedTemp()
	res.HotendExceededSafe = tb.Plant.HotendExceededSafe()
	res.FanDutyAtEnd = tb.Plant.FanDuty()
	res.PeakFanDuty = tb.Plant.PeakFanDuty()
	res.StepsLost = make(map[signal.Axis]uint64, 4)
	for _, a := range signal.Axes {
		res.StepsLost[a] = tb.Plant.Driver(a).StepsLost()
	}
	if tb.Board != nil {
		if rc.mode == CaptureFull {
			res.Recording = tb.Board.Recording()
			res.ArduinoRecording = tb.Board.RecordingAt(fpga.TapArduino)
			res.RAMPSRecording = tb.Board.RecordingAt(fpga.TapRAMPS)
		}
		res.Fingerprint = tb.Board.Fingerprint()
		res.ArduinoFingerprint = tb.Board.FingerprintAt(fpga.TapArduino)
		res.RAMPSFingerprint = tb.Board.FingerprintAt(fpga.TapRAMPS)
	}
	for _, bd := range rc.detectors {
		rep := bd.d.Finalize()
		if bd.pair != nil {
			// The pair feed delivers only complete pairs; windows one side
			// exported and the other never did are a divergence the
			// detector cannot see on its own (a board suppressing its
			// trailing exports must not attest clean).
			detect.FlagImbalance(rep, bd.down.total()-bd.up.total())
		}
		res.Detections = append(res.Detections, rep)
		if rep.TrojanLikely {
			res.TrojanLikely = true
		}
	}
	return res, nil
}

// bindDetectors resolves every attached detector's tap binding against
// the board's actual tap topology and subscribes the per-side streaming
// feeds. Validation runs after all options are applied, so the outcome
// is independent of option order: a detector bound to an untapped side,
// a dual binding on a single-tap board, a pair-consuming detector bound
// to one side, and a plain detector bound to the dual feed all fail
// here, before any simulation happens.
func (tb *Testbed) bindDetectors(rc *runConfig) error {
	if len(rc.detectors) == 0 {
		return nil
	}
	feeds := make(map[fpga.TapSide]*sideFeed, 2)
	subscribe := func(side fpga.TapSide) (*sideFeed, error) {
		if f, ok := feeds[side]; ok {
			return f, nil
		}
		f := &sideFeed{}
		if err := tb.Board.OnExport(side, func(tx capture.Transaction) {
			f.txs = append(f.txs, tx)
		}); err != nil {
			return nil, err
		}
		feeds[side] = f
		return f, nil
	}
	boardTap := tb.Board.Config().Tap
	for _, bd := range rc.detectors {
		pair, isPair := bd.d.(detect.PairObserver)
		if bd.binding == BindDual {
			if boardTap != fpga.TapDual {
				return fmt.Errorf("offramps: config error: detector %s is bound to the dual tap but the board taps %v (add WithTapSide(fpga.TapDual))", bd.d.Name(), boardTap)
			}
			if !isPair {
				return fmt.Errorf("offramps: config error: detector %s is bound to the dual tap but does not consume observation pairs", bd.d.Name())
			}
			bd.pair = pair
			var err error
			if bd.up, err = subscribe(fpga.TapArduino); err != nil {
				return fmt.Errorf("offramps: %w", err)
			}
			if bd.down, err = subscribe(fpga.TapRAMPS); err != nil {
				return fmt.Errorf("offramps: %w", err)
			}
			continue
		}
		if isPair {
			return fmt.Errorf("offramps: config error: detector %s consumes both taps; bind it with BindDual", bd.d.Name())
		}
		var side fpga.TapSide
		switch bd.binding {
		case BindPrimary:
			side = tb.Board.PrimaryTap()
		case BindArduino:
			side = fpga.TapArduino
		case BindRAMPS:
			side = fpga.TapRAMPS
		default:
			return fmt.Errorf("offramps: unknown tap binding %v", bd.binding)
		}
		if (side == fpga.TapArduino && !boardTap.TapsArduino()) ||
			(side == fpga.TapRAMPS && !boardTap.TapsRAMPS()) {
			return fmt.Errorf("offramps: config error: detector %s is bound to the %v tap but the board taps %v (see WithTapSide)", bd.d.Name(), side, boardTap)
		}
		f, err := subscribe(side)
		if err != nil {
			return fmt.Errorf("offramps: detector %s: %w", bd.d.Name(), err)
		}
		bd.src = f
	}
	return nil
}

// feedDetectors drains the per-side streaming feeds into every attached
// detector, window by window in rounds: round r delivers window r (or
// pair r, for a dual binding) to each detector in attachment order, so
// detectors on different taps advance in lockstep. While the print is
// still running (allowAbort) a trip from an AbortOnTrip detector records
// the abort and stops the feed at the end of its round; after
// completion, trips only flag and the whole stream is delivered.
func (tb *Testbed) feedDetectors(rc *runConfig, res *Result, allowAbort bool) error {
	if tb.Board == nil || len(rc.detectors) == 0 {
		return nil
	}
	for {
		progressed := false
		for _, bd := range rc.detectors {
			var v detect.Verdict
			if bd.pair != nil {
				if bd.fed >= bd.up.total() || bd.fed >= bd.down.total() {
					continue
				}
				v = bd.pair.ObservePair(bd.up.txs[bd.fed-bd.up.base], bd.down.txs[bd.fed-bd.down.base])
			} else {
				if bd.fed >= bd.src.total() {
					continue
				}
				v = bd.d.Observe(bd.src.txs[bd.fed-bd.src.base])
			}
			bd.fed++
			progressed = true
			if v.Err != nil {
				return fmt.Errorf("offramps: detector %s: %w", bd.d.Name(), v.Err)
			}
			if v.Tripped && !bd.tripped {
				bd.tripped = true
				if allowAbort && bd.policy == AbortOnTrip && !res.Aborted {
					res.Aborted = true
					res.AbortedAt = tb.Engine.Now()
					res.TripReason = v.Reason()
				}
			}
		}
		if !progressed || res.Aborted {
			compactFeeds(rc)
			return nil
		}
	}
}

// compactFeeds drops feed entries every detector has consumed, shifting
// the survivors to the front so the buffers stay O(detector lag) across
// the whole run instead of retaining every window ever streamed. Without
// this, fingerprint mode would still accumulate an O(windows) shadow of
// the trace inside the feeds.
func compactFeeds(rc *runConfig) {
	minFed := func(f *sideFeed) int {
		low := -1
		for _, bd := range rc.detectors {
			if bd.src == f || bd.up == f || bd.down == f {
				if low < 0 || bd.fed < low {
					low = bd.fed
				}
			}
		}
		return low
	}
	seen := make(map[*sideFeed]bool, 2)
	for _, bd := range rc.detectors {
		for _, f := range []*sideFeed{bd.src, bd.up, bd.down} {
			if f == nil || seen[f] {
				continue
			}
			seen[f] = true
			low := minFed(f)
			if keep := low - f.base; keep > 0 {
				n := copy(f.txs, f.txs[keep:])
				f.txs = f.txs[:n]
				f.base = low
			}
		}
	}
}

func (tb *Testbed) progressSnapshot(rc *runConfig) RunProgress {
	p := RunProgress{Now: tb.Engine.Now()}
	if tb.Board != nil {
		p.Windows = tb.Board.Windows()
	}
	for _, bd := range rc.detectors {
		if bd.tripped {
			p.Tripped = true
		}
	}
	return p
}
