package offramps

import (
	"context"
	"fmt"

	"offramps/internal/detect"
	"offramps/internal/fpga"
	"offramps/internal/gcode"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// DefaultRunBudget bounds a run's *simulated* time when WithLimit is not
// given. The standard test part takes ≈2 simulated minutes; an hour of
// headroom catches hangs without false positives.
const DefaultRunBudget = 3600 * sim.Second

// TripPolicy says what a live detector's trip does to the run.
type TripPolicy int

const (
	// FlagOnly keeps printing; the verdict lands in Result.Detections at
	// the end of the run.
	FlagOnly TripPolicy = iota
	// AbortOnTrip halts the print the moment the detector trips —
	// "enabling a user to halt a print as soon as a Trojan is suspected"
	// (paper §V-C), saving machine time and material cost (§V-A).
	AbortOnTrip
)

// RunProgress is a snapshot delivered to the WithProgress callback after
// each simulation step.
type RunProgress struct {
	// Now is the current simulated time.
	Now sim.Time
	// Windows is the number of capture windows exported so far (zero
	// without the MITM).
	Windows int
	// Tripped is true once any attached live detector has tripped.
	Tripped bool
}

// RunOption configures one Testbed.Run.
type RunOption func(*runConfig)

type boundDetector struct {
	d       detect.Detector
	policy  TripPolicy
	tripped bool
}

type runConfig struct {
	limit     sim.Time
	detectors []*boundDetector
	progress  func(RunProgress)
}

// WithLimit bounds the run's *simulated* time (default DefaultRunBudget).
func WithLimit(limit sim.Time) RunOption {
	return func(rc *runConfig) { rc.limit = limit }
}

// WithDetector attaches a live streaming detector to the run: every
// capture transaction is fed to it about when the hardware would emit it.
// Under AbortOnTrip the simulation stops the moment the detector trips;
// under FlagOnly the print finishes and the verdict lands in
// Result.Detections. Any number of detectors may be attached; each one's
// finalized report is returned in attachment order.
func WithDetector(d detect.Detector, policy TripPolicy) RunOption {
	return func(rc *runConfig) {
		rc.detectors = append(rc.detectors, &boundDetector{d: d, policy: policy})
	}
}

// WithProgress registers a callback invoked after every simulation step —
// a hook for progress bars and streaming dashboards. Attaching it makes
// the run step in capture-window increments.
func WithProgress(fn func(RunProgress)) RunOption {
	return func(rc *runConfig) { rc.progress = fn }
}

// Run executes the program to completion (or kill, or detector abort),
// lets the simulation settle, and collects the result. The context
// cancels the run between simulation steps; options bound the simulated
// time and attach live detectors.
func (tb *Testbed) Run(ctx context.Context, prog gcode.Program, opts ...RunOption) (*Result, error) {
	rc := runConfig{limit: DefaultRunBudget}
	for _, opt := range opts {
		opt(&rc)
	}
	if rc.limit <= 0 {
		return nil, fmt.Errorf("offramps: Run limit must be positive")
	}
	if len(rc.detectors) > 0 && tb.Board == nil {
		return nil, fmt.Errorf("offramps: live detectors require the MITM path (captures come from the board)")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	tb.Firmware.Load(prog)
	if err := tb.Firmware.Start(); err != nil {
		return nil, fmt.Errorf("offramps: %w", err)
	}

	// With live detectors or a progress callback the simulation steps in
	// capture-window increments so each transaction is observed about
	// when the hardware would emit it; otherwise whole seconds.
	step := sim.Time(sim.Second)
	if tb.Board != nil && (len(rc.detectors) > 0 || rc.progress != nil) {
		step = tb.Board.Config().ExportPeriod
	}

	res := &Result{}
	deadline := tb.Engine.Now() + rc.limit
	fed := 0
	for !tb.Firmware.Done() && !res.Aborted {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("offramps: run cancelled: %w", err)
		}
		if tb.Engine.Now() >= deadline {
			return nil, &ErrTimeout{Limit: rc.limit}
		}
		if err := tb.Engine.Run(tb.Engine.Now() + step); err != nil {
			return nil, fmt.Errorf("offramps: simulation: %w", err)
		}
		var err error
		fed, err = tb.feedDetectors(&rc, res, fed, true)
		if err != nil {
			return nil, err
		}
		if rc.progress != nil {
			rc.progress(tb.progressSnapshot(&rc))
		}
	}
	finished := tb.Firmware.FinishedAt()
	if !res.Aborted {
		// Normal completion: settle to observe post-kill physics, then
		// feed the trailing windows. It is too late to abort a finished
		// print, so trips here never truncate the feed — every detector
		// sees the full stream and the end-of-print checks run in each
		// detector's Finalize.
		if err := tb.Engine.Run(tb.Engine.Now() + tb.opts.settle); err != nil {
			return nil, fmt.Errorf("offramps: settling: %w", err)
		}
		var err error
		if fed, err = tb.feedDetectors(&rc, res, fed, false); err != nil {
			return nil, err
		}
		if rc.progress != nil {
			rc.progress(tb.progressSnapshot(&rc))
		}
	}
	if tb.Board != nil {
		tb.Board.StopCapture()
	}

	res.Completed = !res.Aborted && tb.Firmware.Err() == nil
	res.HaltError = tb.Firmware.Err()
	res.Duration = finished
	if res.Aborted {
		res.Duration = tb.Engine.Now()
	}
	res.Quality = tb.Plant.Part().AssessQuality(1.0)
	res.Part = tb.Plant.Part()
	res.PeakHotendTemp = tb.Plant.PeakHotendTemp()
	res.PeakBedTemp = tb.Plant.PeakBedTemp()
	res.HotendExceededSafe = tb.Plant.HotendExceededSafe()
	res.FanDutyAtEnd = tb.Plant.FanDuty()
	res.PeakFanDuty = tb.Plant.PeakFanDuty()
	res.StepsLost = make(map[signal.Axis]uint64, 4)
	for _, a := range signal.Axes {
		res.StepsLost[a] = tb.Plant.Driver(a).StepsLost()
	}
	if tb.Board != nil {
		res.Recording = tb.Board.Recording()
		res.ArduinoRecording = tb.Board.RecordingAt(fpga.TapArduino)
		res.RAMPSRecording = tb.Board.RecordingAt(fpga.TapRAMPS)
	}
	for _, bd := range rc.detectors {
		rep := bd.d.Finalize()
		res.Detections = append(res.Detections, rep)
		if rep.TrojanLikely {
			res.TrojanLikely = true
		}
	}
	return res, nil
}

// feedDetectors streams freshly exported capture transactions to every
// attached detector, starting at position fed, and returns the new feed
// position. While the print is still running (allowAbort) a trip from an
// AbortOnTrip detector records the abort and stops the feed; after
// completion, trips only flag and the whole stream is delivered.
func (tb *Testbed) feedDetectors(rc *runConfig, res *Result, fed int, allowAbort bool) (int, error) {
	if tb.Board == nil || len(rc.detectors) == 0 {
		return fed, nil
	}
	rec := tb.Board.Recording()
	for ; fed < rec.Len(); fed++ {
		tx := rec.Transactions[fed]
		for _, bd := range rc.detectors {
			v := bd.d.Observe(tx)
			if v.Err != nil {
				return fed, fmt.Errorf("offramps: detector %s: %w", bd.d.Name(), v.Err)
			}
			if v.Tripped && !bd.tripped {
				bd.tripped = true
				if allowAbort && bd.policy == AbortOnTrip && !res.Aborted {
					res.Aborted = true
					res.AbortedAt = tb.Engine.Now()
					res.TripReason = v.Reason()
				}
			}
		}
		if res.Aborted {
			fed++
			break
		}
	}
	return fed, nil
}

func (tb *Testbed) progressSnapshot(rc *runConfig) RunProgress {
	p := RunProgress{Now: tb.Engine.Now()}
	if tb.Board != nil {
		p.Windows = tb.Board.Recording().Len()
	}
	for _, bd := range rc.detectors {
		if bd.tripped {
			p.Tripped = true
		}
	}
	return p
}
