package offramps

import (
	"math"
	"strings"
	"testing"

	"offramps/internal/detect"
	"offramps/internal/gcode"
	"offramps/internal/reconstruct"
	"offramps/internal/sim"
)

// These tests exercise the two §VI future-work extensions end-to-end on
// real simulated captures: golden-free detection and toolpath
// reconstruction.

func TestGoldenFreePassesRealPrint(t *testing.T) {
	prog := mustTestPart(t)
	rec, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := detect.CheckGoldenFree(rec, detect.DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrojanLikely {
		t.Fatalf("healthy print violates golden-free rules:\n%s", rep.Format())
	}
}

func TestGoldenFreeCatchesFilamentDump(t *testing.T) {
	// A sabotage the golden-based detector would need a reference for,
	// but physics rules catch outright: 6 mm of filament extruded in
	// place mid-print (a blob that wrecks the surface).
	prog := mustTestPart(t).Clone()
	insertAt := -1
	moves := 0
	for i, c := range prog {
		if c.Is("G1") && c.Has('E') && c.Has('X') {
			moves++
			if moves == 40 {
				insertAt = i
				break
			}
		}
	}
	if insertAt < 0 {
		t.Fatal("no insertion point found")
	}
	st := gcode.NewState()
	for _, c := range prog[:insertAt+1] {
		st.Apply(c)
	}
	dump := gcode.Synthesize("G1", gcode.P('E', st.Pos.E+6), gcode.P('F', 300))
	tampered := append(prog[:insertAt+1:insertAt+1], dump)
	tampered = append(tampered, prog[insertAt+1:]...)

	rec, err := captureRun(tampered, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := detect.CheckGoldenFree(rec, detect.DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TrojanLikely {
		t.Fatal("filament dump not flagged by golden-free rules")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "stationary-extrude" {
			found = true
		}
	}
	if !found {
		t.Errorf("wrong rule fired: %+v", rep.Violations)
	}
}

func TestGoldenFreeCatchesCarriageCrash(t *testing.T) {
	// Commanding the head far outside the build volume: the firmware
	// obliges (Marlin without software endstops beyond max), the capture
	// shows it, and the rule engine flags it without any golden model.
	prog := mustTestPart(t).Clone()
	for i, c := range prog {
		if c.Is("G1") && c.Has('X') && c.Has('E') {
			prog[i] = c.WithWord('X', 300) // beyond the 250 mm axis
			break
		}
	}
	rec, err := captureRun(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := detect.CheckGoldenFree(rec, detect.DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "build-volume" && strings.Contains(v.Detail, "X") {
			found = true
		}
	}
	if !found {
		t.Fatalf("carriage crash not flagged:\n%s", rep.Format())
	}
}

func TestReconstructionStealsDesign(t *testing.T) {
	prog := mustTestPart(t)
	rec, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	design, err := reconstruct.FromCapture(rec, reconstruct.DefaultCalibration(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// The stolen design must match the sliced part: 8 layers of a 20 mm
	// box (the reconstruction sees the perimeter centreline ≈19.55 mm,
	// at window resolution).
	realLayers := 0
	for _, l := range design.Layers {
		if l.Filament > 1 {
			realLayers++
		}
	}
	if realLayers < 7 || realLayers > 10 {
		t.Errorf("reconstructed %d substantial layers, want ≈8", realLayers)
	}
	if math.Abs(design.FootprintW-19.55) > 1.5 {
		t.Errorf("footprint width %v, want ≈19.55", design.FootprintW)
	}
	// Filament budget matches the slicer's (within capture resolution).
	stats := gcode.ComputeStats(prog)
	if math.Abs(design.TotalFilament-stats.NetFilament) > stats.NetFilament*0.05 {
		t.Errorf("stolen filament budget %v vs sliced %v", design.TotalFilament, stats.NetFilament)
	}
	// A rendered layer shows a hollow-ish square: material present.
	img, err := design.RenderLayer(len(design.Layers)-1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(img, "#") < 10 {
		t.Errorf("render too sparse:\n%s", img)
	}
}

func TestReconstructionSeesTrojanDamage(t *testing.T) {
	// Reverse-engineering also works as an offline forensic view: the
	// T2-masked print reconstructs with half the filament.
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	gDesign, err := reconstruct.FromCapture(golden, reconstruct.DefaultCalibration(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	_ = gDesign
	_ = sim.Second
	// Note: T2 masks pulses downstream of the tracker, so the capture
	// of a T2 print matches the golden. The *firmware-level* analogue —
	// Flaw3D reduction — is visible:
	reduced, err := TestPartWithFlow(0.5)
	if err != nil {
		t.Fatal(err)
	}
	rRec, err := captureRun(reduced, 2)
	if err != nil {
		t.Fatal(err)
	}
	rDesign, err := reconstruct.FromCapture(rRec, reconstruct.DefaultCalibration(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rDesign.TotalFilament / gDesign.TotalFilament
	if math.Abs(ratio-0.5) > 0.06 {
		t.Errorf("reconstructed filament ratio %v, want ≈0.5", ratio)
	}
}
