package offramps

import (
	"testing"

	"offramps/internal/detect"
	"offramps/internal/flaw3d"
	"offramps/internal/sim"
)

func TestRunMonitoredAbortsTrojanEarly(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A blatant relocation trojan: the monitor must abort mid-print.
	tampered, err := flaw3d.Relocate(prog, 5)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.RunMonitored(tampered, 3600*sim.Second, golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || !res.TrojanLikely {
		t.Fatalf("trojan print not aborted: %+v", res)
	}
	if res.Trip == nil {
		t.Fatal("no trip mismatch recorded")
	}
	// The abort saved machine time: the job stopped well before the
	// golden print's full duration.
	goldenDuration := sim.Time(golden.Len()) * 100 * sim.Millisecond
	if res.AbortedAt >= goldenDuration {
		t.Errorf("aborted at %v, golden print runs %v — nothing saved", res.AbortedAt, goldenDuration)
	}
}

func TestRunMonitoredCleanPrintCompletes(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(3)) // different seed: real re-print
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.RunMonitored(prog, 3600*sim.Second, golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatalf("clean print aborted at %v: %+v", res.AbortedAt, res.Trip)
	}
	if res.TrojanLikely {
		t.Error("clean print flagged at finish")
	}
	if !res.Completed {
		t.Errorf("clean print incomplete: %v", res.HaltError)
	}
}

func TestRunMonitoredStealthyFlaggedAtFinish(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2% reduction: survives the windowed margin, caught by the final
	// 0%-margin check.
	tampered, err := flaw3d.Reduce(prog, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.RunMonitored(tampered, 3600*sim.Second, golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TrojanLikely {
		t.Error("stealthy reduction not flagged")
	}
}

func TestRunMonitoredRequiresMITM(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithoutMITM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.RunMonitored(prog, sim.Second, golden, detect.DefaultConfig()); err == nil {
		t.Error("monitored run without MITM accepted")
	}
}
