package offramps

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testGrid is a three-axis sweep used by the expansion property tests:
// 2 programs × 3 trojans × 2 taps = 12 cells plus one extra golden.
func testGrid() *GridSpec {
	return &GridSpec{
		Name:     "prop-grid",
		BaseSeed: 1,
		Extra:    []ScenarioSpec{{Name: "golden"}},
		Axes: GridAxes{
			Programs: []ProgramAxis{
				{},
				{ProgramSpec: ProgramSpec{Flaw3D: 3}},
			},
			Trojans: []TrojanAxis{
				{Label: "clean"},
				{TrojanSpec: TrojanSpec{Name: "T2"}},
				{TrojanSpec: TrojanSpec{Name: "T5"}},
			},
			Taps: []string{"arduino", "ramps"},
		},
		SeedPolicy:  &GridSeedPolicy{DeltaStart: 10},
		CompareWith: "golden",
	}
}

// TestGridExpandDeterministic expands the same grid twice and requires
// identical suites — scenario for scenario and byte for byte. The whole
// shard/merge machinery rests on this property.
func TestGridExpandDeterministic(t *testing.T) {
	a, err := testGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two expansions differ:\n%+v\n%+v", a, b)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("expansion JSON differs:\n%s\n%s", aj, bj)
	}
}

// TestGridExpandCrossProduct checks the expansion's shape: the full
// cross-product, duplicate-free names, extras first, and the seeds
// innermost ordering.
func TestGridExpandCrossProduct(t *testing.T) {
	suite, err := testGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(suite.Scenarios), 1+2*3*2; got != want {
		t.Fatalf("scenarios = %d, want %d", got, want)
	}
	if suite.Scenarios[0].Name != "golden" {
		t.Errorf("extras must come first, got %q", suite.Scenarios[0].Name)
	}
	seen := make(map[string]bool)
	for _, sc := range suite.Scenarios {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
	// Fixed axis order: program, then trojan, then tap.
	if got, want := suite.Scenarios[1].Name, "testpart/clean/arduino"; got != want {
		t.Errorf("first cell = %q, want %q", got, want)
	}
	if got, want := suite.Scenarios[2].Name, "testpart/clean/ramps"; got != want {
		t.Errorf("second cell = %q, want %q", got, want)
	}
	last := suite.Scenarios[len(suite.Scenarios)-1]
	if got, want := last.Name, "flaw3d-3/T5/ramps"; got != want {
		t.Errorf("last cell = %q, want %q", got, want)
	}
	// Seed policy: deltas follow full-product order.
	if got, want := suite.Scenarios[1].SeedDelta, uint64(10); got != want {
		t.Errorf("first cell delta = %d, want %d", got, want)
	}
	if got, want := last.SeedDelta, uint64(10+11); got != want {
		t.Errorf("last cell delta = %d, want %d", got, want)
	}
	// One auto-compare per cell against the golden.
	if got, want := len(suite.Compare), 12; got != want {
		t.Errorf("compares = %d, want %d", got, want)
	}
	if err := suite.Validate(); err != nil {
		t.Errorf("expanded suite invalid: %v", err)
	}
}

// TestGridFilters exercises include/exclude semantics: excludes trim the
// product, includes whitelist it, and seed-policy deltas do not shift
// when neighbours are filtered away.
func TestGridFilters(t *testing.T) {
	g := testGrid()
	g.Exclude = []GridFilter{{Trojan: "T5"}}
	suite, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(suite.Scenarios), 1+2*2*2; got != want {
		t.Fatalf("after exclude: scenarios = %d, want %d", got, want)
	}
	for _, sc := range suite.Scenarios {
		if strings.Contains(sc.Name, "T5") {
			t.Errorf("excluded cell %q survived", sc.Name)
		}
	}
	// flaw3d-3/T2/arduino sat at full-product index 8 before filtering;
	// its delta must not shift because the T5 cells were excluded.
	for _, sc := range suite.Scenarios {
		if sc.Name == "flaw3d-3/T2/arduino" {
			if got, want := sc.SeedDelta, uint64(10+8); got != want {
				t.Errorf("filtered expansion shifted seed delta: %d, want %d", got, want)
			}
		}
	}

	g = testGrid()
	g.Include = []GridFilter{{Name: "*/T2/*"}, {Trojan: "clean", Tap: "ramps"}}
	suite, err = g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 4 T2 cells (glob) + 2 clean/ramps cells (label match) + golden.
	if got, want := len(suite.Scenarios), 1+4+2; got != want {
		t.Fatalf("after include: scenarios = %d, want %d:\n%+v", got, want, suite.Scenarios)
	}

	g = testGrid()
	g.Exclude = []GridFilter{{}}
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "empty include/exclude filter") {
		t.Errorf("empty filter accepted: %v", err)
	}

	g = testGrid()
	g.Include = []GridFilter{{Trojan: "no-such-trojan"}}
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "filters removed every cell") {
		t.Errorf("all-cells-filtered grid accepted: %v", err)
	}

	// A filter naming an axis the grid does not sweep would silently
	// never match — it must be rejected, not ignored.
	g = testGrid()
	g.Exclude = []GridFilter{{Detector: "attestation"}}
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "does not sweep") {
		t.Errorf("filter on unswept axis accepted: %v", err)
	}
}

// TestGridConflicts checks that a template field and the axis sweeping
// it cannot both be set, and that seed knobs are mutually exclusive.
func TestGridConflicts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*GridSpec)
		want string
	}{
		{"template trojan vs axis", func(g *GridSpec) { g.Template.Trojan = &TrojanSpec{Name: "T1"} }, "conflicts with template.trojan"},
		{"template tap vs axis", func(g *GridSpec) { g.Template.Tap = "dual" }, "conflicts with template.tap"},
		{"template program vs axis", func(g *GridSpec) { g.Template.Program = ProgramSpec{Flaw3D: 1} }, "conflicts with template.program"},
		{"seed policy vs template seed", func(g *GridSpec) { g.Template.Seed = 9 }, "seedPolicy conflicts"},
		{"seed policy vs seeds axis", func(g *GridSpec) { g.Axes.Seeds = &SeedAxis{From: 1, To: 3} }, "seedPolicy conflicts"},
		{"no name", func(g *GridSpec) { g.Name = "" }, "needs a name"},
	}
	for _, tc := range cases {
		g := testGrid()
		tc.mut(g)
		_, err := g.Expand()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestSeedAxis checks range expansion and the absolute-seed-zero guard.
func TestSeedAxis(t *testing.T) {
	g := testGrid()
	g.SeedPolicy = nil
	g.Axes.Seeds = &SeedAxis{From: 3, To: 9, Step: 3}
	suite, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(suite.Scenarios), 1+12*3; got != want {
		t.Fatalf("scenarios = %d, want %d", got, want)
	}
	var seeds []uint64
	for _, sc := range suite.Scenarios[1:4] {
		seeds = append(seeds, sc.Seed)
	}
	if !reflect.DeepEqual(seeds, []uint64{3, 6, 9}) {
		t.Errorf("seeds innermost = %v, want [3 6 9]", seeds)
	}

	g.Axes.Seeds = &SeedAxis{Values: []uint64{0, 1}}
	if _, err := g.Expand(); err == nil || !strings.Contains(err.Error(), "seed 0 is reserved") {
		t.Errorf("absolute seed 0 accepted: %v", err)
	}
	g.Axes.Seeds = &SeedAxis{Values: []uint64{0, 1}, Delta: true}
	if _, err := g.Expand(); err != nil {
		t.Errorf("delta seed 0 rejected: %v", err)
	}
}

// TestParseGridSpecStrict mirrors the suite parser's strictness: unknown
// fields and trailing content fail loudly.
func TestParseGridSpecStrict(t *testing.T) {
	if _, err := ParseGridSpec([]byte(`{"name":"g","axes":{"tapps":["ramps"]}}`), ""); err == nil {
		t.Error("unknown axis field accepted")
	}
	if _, err := ParseGridSpec([]byte(`{"name":"g","axes":{}} {"second":true}`), ""); err == nil || !strings.Contains(err.Error(), "trailing content") {
		t.Errorf("trailing content accepted: %v", err)
	}
}

// TestShardPartitionExact is the sharding property test: for every shard
// count, the owned sets partition the suite's scenarios exactly — every
// scenario in exactly one shard — and comparisons follow their suspect.
func TestShardPartitionExact(t *testing.T) {
	suite, err := testGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	for count := 1; count <= 5; count++ {
		ownedBy := make(map[string]int)
		compareCount := 0
		for index := 1; index <= count; index++ {
			sh, err := suite.Shard(index, count)
			if err != nil {
				t.Fatal(err)
			}
			for name := range sh.Owned {
				if prev, dup := ownedBy[name]; dup {
					t.Errorf("count=%d: %q owned by shards %d and %d", count, name, prev, index)
				}
				ownedBy[name] = index
			}
			// Every owned scenario is in the shard's spec; every compare's
			// suspect is owned and its golden is present.
			inSpec := make(map[string]bool)
			for _, sc := range sh.Spec.Scenarios {
				inSpec[sc.Name] = true
			}
			for name := range sh.Owned {
				if !inSpec[name] {
					t.Errorf("count=%d shard %d: owned %q missing from spec", count, index, name)
				}
			}
			for _, cmp := range sh.Spec.Compare {
				if !sh.Owned[cmp.Suspect] {
					t.Errorf("count=%d shard %d: compare suspect %q not owned", count, index, cmp.Suspect)
				}
				if !inSpec[cmp.Golden] {
					t.Errorf("count=%d shard %d: compare golden %q not in spec", count, index, cmp.Golden)
				}
			}
			compareCount += len(sh.Spec.Compare)
		}
		if len(ownedBy) != len(suite.Scenarios) {
			t.Errorf("count=%d: %d scenarios owned, want %d", count, len(ownedBy), len(suite.Scenarios))
		}
		if compareCount != len(suite.Compare) {
			t.Errorf("count=%d: %d compares across shards, want %d", count, compareCount, len(suite.Compare))
		}
	}
	if _, err := suite.Shard(0, 4); err == nil {
		t.Error("shard 0/4 accepted")
	}
	if _, err := suite.Shard(5, 4); err == nil {
		t.Error("shard 5/4 accepted")
	}
}

// TestShardGoldenClosure: a live detector's golden reference must travel
// with its scenario even when the golden hashes into another shard.
func TestShardGoldenClosure(t *testing.T) {
	suite := &SuiteSpec{
		Name: "closure",
		Scenarios: []ScenarioSpec{
			{Name: "root"},
			{Name: "mid", Detector: &DetectorSpec{Name: "golden-monitor", Golden: "root"}},
			{Name: "leaf", Detector: &DetectorSpec{Name: "golden-monitor", Golden: "mid"}},
		},
	}
	for count := 2; count <= 4; count++ {
		for index := 1; index <= count; index++ {
			sh, err := suite.Shard(index, count)
			if err != nil {
				t.Fatal(err)
			}
			inSpec := make(map[string]bool)
			for _, sc := range sh.Spec.Scenarios {
				inSpec[sc.Name] = true
			}
			if sh.Owned["leaf"] && (!inSpec["mid"] || !inSpec["root"]) {
				t.Errorf("count=%d shard %d owns leaf but lacks its golden chain: %v", count, index, inSpec)
			}
			if sh.Owned["mid"] && !inSpec["root"] {
				t.Errorf("count=%d shard %d owns mid but lacks root", count, index)
			}
		}
	}
}

// TestSubset: a single-name subset — what a farm lease resolves to —
// carries its full golden chain plus exactly the comparisons the named
// scenario draws as suspect; unknown names are refused.
func TestSubset(t *testing.T) {
	suite := &SuiteSpec{
		Name: "subset",
		Scenarios: []ScenarioSpec{
			{Name: "root"},
			{Name: "mid", Detector: &DetectorSpec{Name: "golden-monitor", Golden: "root"}},
			{Name: "leaf", Detector: &DetectorSpec{Name: "golden-monitor", Golden: "mid"}},
		},
		Compare: []CompareSpec{
			{Golden: "root", Suspect: "leaf"},
			{Golden: "root", Suspect: "mid"},
		},
	}
	sh, err := suite.Subset("leaf")
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Owned) != 1 || !sh.Owned["leaf"] {
		t.Errorf("Owned = %v, want just leaf", sh.Owned)
	}
	inSpec := make(map[string]bool)
	for _, sc := range sh.Spec.Scenarios {
		inSpec[sc.Name] = true
	}
	if !inSpec["leaf"] || !inSpec["mid"] || !inSpec["root"] {
		t.Errorf("sub-suite lacks the golden chain: %v", inSpec)
	}
	if len(sh.Spec.Compare) != 1 || sh.Spec.Compare[0].Suspect != "leaf" {
		t.Errorf("sub-suite compares = %v, want only leaf's", sh.Spec.Compare)
	}

	if _, err := suite.Subset("no-such"); err == nil {
		t.Error("Subset of an unknown scenario accepted")
	}
	// An empty subset is a valid (empty) shard — Shard delegates here and
	// a sweep can have more shards than scenarios.
	if empty, err := suite.Subset(); err != nil || len(empty.Spec.Scenarios) != 0 {
		t.Errorf("empty Subset = %v, %v; want an empty shard", empty, err)
	}

	// Subset and Shard agree: a shard's spec equals the Subset of its
	// owned names (same closure, same canonical order).
	full, err := testGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	shard, err := full.Shard(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var owned []string
	for _, sc := range full.Scenarios {
		if shard.Owned[sc.Name] {
			owned = append(owned, sc.Name)
		}
	}
	viaSubset, err := full.Subset(owned...)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaSubset.Spec.Scenarios) != len(shard.Spec.Scenarios) {
		t.Errorf("Subset(%v) has %d scenarios, Shard has %d", owned, len(viaSubset.Spec.Scenarios), len(shard.Spec.Scenarios))
	}
}

// TestParseShard checks the "i/N" notation.
func TestParseShard(t *testing.T) {
	if i, n, err := ParseShard("2/4"); err != nil || i != 2 || n != 4 {
		t.Errorf("ParseShard(2/4) = %d %d %v", i, n, err)
	}
	for _, bad := range []string{"", "3", "0/4", "5/4", "a/b", "1/0", "-1/4", "2/4x", "1/2/3", " 1/2", "2 /4"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// TestGridTableIIMatchesExperiment runs the committed Table II grid file
// and the hand-built TableIISuite under separate caches and requires the
// comparison reports to be deeply identical: the grid reproduces the
// paper's Table II, scenario names, seeds, verdicts and all.
func TestGridTableIIMatchesExperiment(t *testing.T) {
	g, err := LoadGridSpec(filepath.Join("examples", "specs", "grid_tableii.json"))
	if err != nil {
		t.Fatal(err)
	}
	suite, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}

	gridRep, err := Campaign{Cache: NewGoldenCache()}.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	tabRep, err := Campaign{Cache: NewGoldenCache()}.RunSuite(context.Background(), TableIISuite(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(gridRep.Results); err != nil {
		t.Fatal(err)
	}

	if len(gridRep.Comparisons) != len(tabRep.Comparisons) {
		t.Fatalf("comparisons: grid %d, experiment %d", len(gridRep.Comparisons), len(tabRep.Comparisons))
	}
	for i, tc := range tabRep.Comparisons {
		gc := gridRep.Comparisons[i]
		if gc.Suspect != tc.Suspect || gc.Golden != tc.Golden {
			t.Errorf("compare %d: grid %s vs %s, experiment %s vs %s", i, gc.Golden, gc.Suspect, tc.Golden, tc.Suspect)
			continue
		}
		if !reflect.DeepEqual(gc.Report, tc.Report) {
			t.Errorf("compare %s: grid report diverges from the experiment's:\ngrid: %+v\nexp:  %+v", gc.Suspect, gc.Report, tc.Report)
		}
	}
}
