package offramps

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"offramps/internal/detect"
	"offramps/internal/fpga"
	"offramps/internal/trojan"
)

// campaignScenarios builds a small mixed grid: clean prints, a trojaned
// print, and a detector-attached print. Factories make the slice safely
// reusable across campaign runs.
func campaignScenarios(t *testing.T) []Scenario {
	t.Helper()
	prog := mustTestPart(t)
	return []Scenario{
		{Name: "clean", Program: prog, Seed: 1},
		{Name: "t2", Program: prog, Seed: 1, Trojan: func(seed uint64) fpga.Trojan {
			return trojan.NewT2ExtrusionReduction(trojan.T2Params{KeepRatio: 0.5})
		}},
		{Name: "golden-free", Program: prog, Seed: 2,
			Detector: func() (detect.Detector, error) { return detect.NewRuleEngine(detect.DefaultLimits()) },
			Policy:   FlagOnly},
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	scens := campaignScenarios(t)
	run := func(workers int) []ScenarioResult {
		results, err := Campaign{Workers: workers}.Run(context.Background(), scens)
		if err != nil {
			t.Fatal(err)
		}
		if err := firstScenarioErr(results); err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial := run(1)
	parallel := run(4)

	if len(serial) != len(scens) || len(parallel) != len(scens) {
		t.Fatalf("result counts: %d, %d, want %d", len(serial), len(parallel), len(scens))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Name != scens[i].Name || b.Name != scens[i].Name {
			t.Fatalf("result %d out of order: %q vs %q", i, a.Name, b.Name)
		}
		if a.Seed != b.Seed {
			t.Errorf("%s: seeds differ: %d vs %d", a.Name, a.Seed, b.Seed)
		}
		if a.Result.Duration != b.Result.Duration {
			t.Errorf("%s: durations differ: %v vs %v", a.Name, a.Result.Duration, b.Result.Duration)
		}
		if a.Result.Quality != b.Result.Quality {
			t.Errorf("%s: quality differs: %v vs %v", a.Name, a.Result.Quality, b.Result.Quality)
		}
		ra, rb := a.Result.Recording, b.Result.Recording
		if ra.Len() != rb.Len() {
			t.Fatalf("%s: capture lengths differ: %d vs %d", a.Name, ra.Len(), rb.Len())
		}
		for j := range ra.Transactions {
			if ra.Transactions[j] != rb.Transactions[j] {
				t.Fatalf("%s: transaction %d differs", a.Name, j)
			}
		}
		if !reflect.DeepEqual(a.Result.Detections, b.Result.Detections) {
			t.Errorf("%s: detection reports differ", a.Name)
		}
	}
	// The trojaned scenario must actually differ from the clean one —
	// determinism must not come from scenarios collapsing together.
	if serial[0].Result.Quality.TotalFilament <= serial[1].Result.Quality.TotalFilament {
		t.Error("T2 scenario extruded at least as much as the clean print")
	}
	// And the detector-attached scenario must carry its report.
	if len(serial[2].Result.Detections) != 1 {
		t.Fatalf("golden-free scenario has %d reports", len(serial[2].Result.Detections))
	}
	if serial[2].Result.Detections[0].TrojanLikely {
		t.Error("clean print flagged by the rule engine")
	}
}

func TestCampaignDerivesSeedsDeterministically(t *testing.T) {
	prog := mustTestPart(t)
	scens := []Scenario{{Name: "a", Program: prog}, {Name: "b", Program: prog}}
	results, err := Campaign{BaseSeed: 10, Workers: 2}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Seed != 11 || results[1].Seed != 42 {
		t.Errorf("derived seeds = %d, %d, want 11, 42", results[0].Seed, results[1].Seed)
	}
}

func TestCampaignReportsScenarioErrors(t *testing.T) {
	prog := mustTestPart(t)
	scens := []Scenario{
		{Name: "bad-trojan", Program: prog, Seed: 1, Trojan: func(uint64) fpga.Trojan { return nil }},
		{Name: "ok", Program: prog, Seed: 1},
	}
	results, err := Campaign{Workers: 2}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("nil trojan factory not reported")
	}
	if results[1].Err != nil || results[1].Result == nil {
		t.Error("healthy scenario poisoned by its neighbour")
	}
	if firstScenarioErr(results) == nil {
		t.Error("firstScenarioErr missed the failure")
	}
}

func TestCampaignCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Campaign{}.Run(ctx, campaignScenarios(t))
	if err == nil {
		t.Error("cancelled campaign returned no error")
	}
}

// TestCampaignCancelMidPool cancels the context while the worker pool is
// mid-campaign: the pool must drain (no goroutine leak), Run must report
// the cancellation, in-flight scenarios must carry the cancellation error
// in their slot, and scenarios never started must be left untouched.
func TestCampaignCancelMidPool(t *testing.T) {
	prog := mustTestPart(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const n = 6
	scens := make([]Scenario, n)
	for i := range scens {
		scens[i] = Scenario{Name: fmt.Sprintf("s%d", i), Program: prog, Seed: uint64(i) + 1}
	}
	// The first scenario pulls the plug as soon as its worker picks it
	// up, so the cancellation lands while the pool is busy.
	scens[0].Prepare = func(*Testbed) error {
		cancel()
		return nil
	}

	before := runtime.NumGoroutine()
	results, err := Campaign{Workers: 2}.Run(ctx, scens)
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if len(results) != n {
		t.Fatalf("results = %d slots, want %d", len(results), n)
	}

	var cancelled, unstarted, finished int
	for i, r := range results {
		switch {
		case r.Name == "" && r.Err == nil && r.Result == nil:
			unstarted++
		case r.Err != nil:
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("slot %d error is not the cancellation: %v", i, r.Err)
			}
			cancelled++
		case r.Result != nil:
			finished++ // raced the cancel and completed — legitimate
		default:
			t.Errorf("slot %d in impossible state: %+v", i, r)
		}
	}
	if cancelled == 0 {
		t.Error("no in-flight scenario carried the cancellation error")
	}
	if unstarted == 0 {
		t.Error("every scenario started despite the early cancel")
	}
	t.Logf("cancelled=%d unstarted=%d finished=%d", cancelled, unstarted, finished)

	// Run returns only after the pool's WaitGroup drains; give the
	// runtime a moment to reap worker stacks, then demand no leak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}
