package offramps

import (
	"context"
	"strings"
	"testing"

	"offramps/internal/detect"
	"offramps/internal/flaw3d"
	"offramps/internal/sim"
)

func TestRunAbortsTrojanEarly(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A blatant relocation trojan: the live monitor must abort mid-print.
	tampered, err := flaw3d.Relocate(prog, 5)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), tampered, WithDetector(monitor, AbortOnTrip))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || !res.TrojanLikely {
		t.Fatalf("trojan print not aborted: %+v", res)
	}
	if res.TripReason == "" {
		t.Fatal("no trip reason recorded")
	}
	if len(res.Detections) != 1 || res.Detections[0].Trip == nil {
		t.Fatalf("trip not in the finalized report: %+v", res.Detections)
	}
	if res.Completed {
		t.Error("aborted run reported as completed")
	}
	// The abort saved machine time: the job stopped well before the
	// golden print's full duration.
	goldenDuration := sim.Time(golden.Len()) * 100 * sim.Millisecond
	if res.AbortedAt >= goldenDuration {
		t.Errorf("aborted at %v, golden print runs %v — nothing saved", res.AbortedAt, goldenDuration)
	}
}

func TestRunCleanPrintCompletesUnderMonitor(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(3)) // different seed: real re-print
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), prog, WithDetector(monitor, AbortOnTrip))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatalf("clean print aborted at %v: %s", res.AbortedAt, res.TripReason)
	}
	if res.TrojanLikely {
		t.Error("clean print flagged at finish")
	}
	if !res.Completed {
		t.Errorf("clean print incomplete: %v", res.HaltError)
	}
}

func TestRunStealthyFlaggedAtFinish(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2% reduction: survives the windowed margin, caught by the final
	// 0%-margin check in the detector's Finalize.
	tampered, err := flaw3d.Reduce(prog, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), tampered, WithDetector(monitor, AbortOnTrip))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Errorf("stealthy reduction aborted mid-print: %s", res.TripReason)
	}
	if !res.TrojanLikely {
		t.Error("stealthy reduction not flagged")
	}
	if len(res.Detections) != 1 || len(res.Detections[0].Final) == 0 {
		t.Errorf("final-count mismatch missing from report: %+v", res.Detections)
	}
}

func TestRunDetectorsRequireMITM(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithoutMITM())
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = tb.Run(context.Background(), prog, WithLimit(sim.Second), WithDetector(monitor, AbortOnTrip))
	if err == nil {
		t.Error("detector run without MITM accepted")
	}
}

func TestRunEnsembleAndFlagOnly(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A blatant trojan under FlagOnly: the print must run to the end and
	// both ensemble members must still deliver their reports.
	tampered, err := flaw3d.Relocate(prog, 5)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rules, err := detect.NewRuleEngine(detect.DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	ensemble, err := detect.NewEnsemble(detect.VoteAny, monitor, rules)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), tampered, WithDetector(ensemble, FlagOnly))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("FlagOnly detector aborted the print")
	}
	if !res.TrojanLikely {
		t.Error("blatant trojan not flagged")
	}
	if len(res.Detections) != 1 || len(res.Detections[0].Sub) != 2 {
		t.Fatalf("ensemble report missing members: %+v", res.Detections)
	}
	if !strings.Contains(res.Detections[0].Format(), "golden-monitor") {
		t.Error("report does not name the tripping member")
	}
}

func TestRunProgressCallback(t *testing.T) {
	prog := mustTestPart(t)
	tb, err := NewTestbed(WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	var lastWindows int
	res, err := tb.Run(context.Background(), prog, WithProgress(func(p RunProgress) {
		calls++
		if p.Windows < lastWindows {
			t.Errorf("windows went backwards: %d -> %d", lastWindows, p.Windows)
		}
		lastWindows = p.Windows
	}))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if lastWindows != res.Recording.Len() {
		t.Errorf("final progress saw %d windows, capture has %d", lastWindows, res.Recording.Len())
	}
}

func TestRunContextCancellation(t *testing.T) {
	prog := mustTestPart(t)
	tb, err := NewTestbed(WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tb.Run(ctx, prog); err == nil {
		t.Error("cancelled context accepted")
	}
}
