package offramps

import (
	"context"
	"strings"
	"testing"

	"offramps/internal/detect"
	"offramps/internal/flaw3d"
	"offramps/internal/fpga"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

// boardTrojan builds a registered board trojan for run-layer tests.
func boardTrojan(t *testing.T, id string, seed uint64) fpga.Trojan {
	t.Helper()
	tr, err := trojan.Build(id, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunAbortsTrojanEarly(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A blatant relocation trojan: the live monitor must abort mid-print.
	tampered, err := flaw3d.Relocate(prog, 5)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), tampered, WithDetector(monitor, AbortOnTrip))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || !res.TrojanLikely {
		t.Fatalf("trojan print not aborted: %+v", res)
	}
	if res.TripReason == "" {
		t.Fatal("no trip reason recorded")
	}
	if len(res.Detections) != 1 || res.Detections[0].Trip == nil {
		t.Fatalf("trip not in the finalized report: %+v", res.Detections)
	}
	if res.Completed {
		t.Error("aborted run reported as completed")
	}
	// The abort saved machine time: the job stopped well before the
	// golden print's full duration.
	goldenDuration := sim.Time(golden.Len()) * 100 * sim.Millisecond
	if res.AbortedAt >= goldenDuration {
		t.Errorf("aborted at %v, golden print runs %v — nothing saved", res.AbortedAt, goldenDuration)
	}
}

func TestRunCleanPrintCompletesUnderMonitor(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(3)) // different seed: real re-print
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), prog, WithDetector(monitor, AbortOnTrip))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatalf("clean print aborted at %v: %s", res.AbortedAt, res.TripReason)
	}
	if res.TrojanLikely {
		t.Error("clean print flagged at finish")
	}
	if !res.Completed {
		t.Errorf("clean print incomplete: %v", res.HaltError)
	}
}

func TestRunStealthyFlaggedAtFinish(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2% reduction: survives the windowed margin, caught by the final
	// 0%-margin check in the detector's Finalize.
	tampered, err := flaw3d.Reduce(prog, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), tampered, WithDetector(monitor, AbortOnTrip))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Errorf("stealthy reduction aborted mid-print: %s", res.TripReason)
	}
	if !res.TrojanLikely {
		t.Error("stealthy reduction not flagged")
	}
	if len(res.Detections) != 1 || len(res.Detections[0].Final) == 0 {
		t.Errorf("final-count mismatch missing from report: %+v", res.Detections)
	}
}

func TestRunDetectorsRequireMITM(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithoutMITM())
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = tb.Run(context.Background(), prog, WithLimit(sim.Second), WithDetector(monitor, AbortOnTrip))
	if err == nil {
		t.Error("detector run without MITM accepted")
	}
}

func TestRunEnsembleAndFlagOnly(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A blatant trojan under FlagOnly: the print must run to the end and
	// both ensemble members must still deliver their reports.
	tampered, err := flaw3d.Relocate(prog, 5)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rules, err := detect.NewRuleEngine(detect.DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	ensemble, err := detect.NewEnsemble(detect.VoteAny, monitor, rules)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), tampered, WithDetector(ensemble, FlagOnly))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("FlagOnly detector aborted the print")
	}
	if !res.TrojanLikely {
		t.Error("blatant trojan not flagged")
	}
	if len(res.Detections) != 1 || len(res.Detections[0].Sub) != 2 {
		t.Fatalf("ensemble report missing members: %+v", res.Detections)
	}
	if !strings.Contains(res.Detections[0].Format(), "golden-monitor") {
		t.Error("report does not name the tripping member")
	}
}

// TestRunSideBoundDetectors is the §V-D asymmetry live, in one print:
// the same board-run T2 masking trojan is invisible to a golden monitor
// fed from the Arduino-side tap and flagged by an identical monitor fed
// from the RAMPS side.
func TestRunSideBoundDetectors(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(WithSeed(2), WithTapSide(fpga.TapDual), WithTrojan(boardTrojan(t, "T2", 2)))
	if err != nil {
		t.Fatal(err)
	}
	upMonitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	downMonitor, err := detect.NewMonitor(golden, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), prog,
		WithDetectorAt(BindArduino, upMonitor, FlagOnly),
		WithDetectorAt(BindRAMPS, downMonitor, FlagOnly),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) != 2 {
		t.Fatalf("got %d detections, want 2", len(res.Detections))
	}
	if up := res.Detections[0]; up.TrojanLikely {
		t.Errorf("arduino-bound monitor flagged the board's own trojan — §V-D says it cannot:\n%s", up.Format())
	}
	if down := res.Detections[1]; !down.TrojanLikely {
		t.Errorf("ramps-bound monitor missed the board-injected trojan:\n%s", down.Format())
	}
	if !res.TrojanLikely {
		t.Error("run verdict did not aggregate the ramps-side detection")
	}
}

// TestRunAttestationAbortsBoardTrojan is the tentpole claim end to end:
// a dual-tap rig running the attestation detector halts a board-resident
// trojan mid-print from a SINGLE simulation — no golden capture, no
// second run.
func TestRunAttestationAbortsBoardTrojan(t *testing.T) {
	prog := mustTestPart(t)
	tb, err := NewTestbed(WithSeed(3), WithTapSide(fpga.TapDual), WithTrojan(boardTrojan(t, "T2", 3)))
	if err != nil {
		t.Fatal(err)
	}
	att, err := detect.NewAttestation(detect.DefaultAttestationConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), prog, WithDetectorAt(BindDual, att, AbortOnTrip))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || !res.TrojanLikely {
		t.Fatalf("board trojan not aborted by self-attestation: %+v", res)
	}
	if res.TripReason == "" {
		t.Fatal("no trip reason recorded")
	}
	if len(res.Detections) != 1 || res.Detections[0].Detector != "attestation" {
		t.Fatalf("attestation report missing: %+v", res.Detections)
	}
}

func TestRunAttestationCleanDualPasses(t *testing.T) {
	prog := mustTestPart(t)
	tb, err := NewTestbed(WithSeed(4), WithTapSide(fpga.TapDual))
	if err != nil {
		t.Fatal(err)
	}
	att, err := detect.NewAttestation(detect.DefaultAttestationConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), prog, WithDetectorAt(BindDual, att, AbortOnTrip))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted || res.TrojanLikely {
		t.Fatalf("clean dual-tap print failed attestation: %s", res.Detections[0].Format())
	}
	if res.Detections[0].NumCompared == 0 {
		t.Error("attestation compared no pairs")
	}
}

// TestRunTapBindingValidation: every invalid binding fails before the
// simulation starts, independent of the order options are applied in.
func TestRunTapBindingValidation(t *testing.T) {
	prog := mustTestPart(t)
	golden, err := captureRun(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	monitor := func() detect.Detector {
		m, err := detect.NewMonitor(golden, detect.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	attestation := func() detect.Detector {
		a, err := detect.NewAttestation(detect.DefaultAttestationConfig())
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	cases := []struct {
		name string
		tap  fpga.TapSide
		opt  RunOption
	}{
		{"ramps binding on arduino-only board", fpga.TapArduino, WithDetectorAt(BindRAMPS, monitor(), FlagOnly)},
		{"arduino binding on ramps-only board", fpga.TapRAMPS, WithDetectorAt(BindArduino, monitor(), FlagOnly)},
		{"dual binding on single-tap board", fpga.TapArduino, WithDetectorAt(BindDual, attestation(), FlagOnly)},
		{"pair detector on primary binding", fpga.TapDual, WithDetector(attestation(), FlagOnly)},
		{"pair detector on single-side binding", fpga.TapDual, WithDetectorAt(BindRAMPS, attestation(), FlagOnly)},
		{"plain detector on dual binding", fpga.TapDual, WithDetectorAt(BindDual, monitor(), FlagOnly)},
	}
	for _, tc := range cases {
		// The option order must not matter: the same config error fires
		// with the detector first or last.
		orders := [][]RunOption{
			{tc.opt, WithLimit(sim.Second)},
			{WithLimit(sim.Second), tc.opt},
		}
		for i, opts := range orders {
			tb, err := NewTestbed(WithTapSide(tc.tap))
			if err != nil {
				t.Fatal(err)
			}
			_, err = tb.Run(context.Background(), prog, opts...)
			if err == nil || !strings.Contains(err.Error(), "config error") {
				t.Errorf("%s (order %d): err = %v, want config error", tc.name, i, err)
			}
		}
	}
}

func TestRunProgressCallback(t *testing.T) {
	prog := mustTestPart(t)
	tb, err := NewTestbed(WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	var lastWindows int
	res, err := tb.Run(context.Background(), prog, WithProgress(func(p RunProgress) {
		calls++
		if p.Windows < lastWindows {
			t.Errorf("windows went backwards: %d -> %d", lastWindows, p.Windows)
		}
		lastWindows = p.Windows
	}))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if lastWindows != res.Recording.Len() {
		t.Errorf("final progress saw %d windows, capture has %d", lastWindows, res.Recording.Len())
	}
}

func TestRunContextCancellation(t *testing.T) {
	prog := mustTestPart(t)
	tb, err := NewTestbed(WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tb.Run(ctx, prog); err == nil {
		t.Error("cancelled context accepted")
	}
}
