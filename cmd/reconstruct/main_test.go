package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleCSV = `Index, X, Y, Z, E
0, 0, 0, 80, 0
1, 8000, 8000, 80, 0
2, 9600, 8000, 80, 96
3, 9600, 9600, 80, 192
4, 8000, 9600, 80, 288
5, 8000, 8000, 80, 384
`

func TestRunSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-capture", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-capture", path, "-layer", "0", "-width", "24"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -capture accepted")
	}
	if err := run([]string{"-capture", "/nope.csv"}); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "cap.csv")
	os.WriteFile(path, []byte(sampleCSV), 0o644)
	if err := run([]string{"-capture", path, "-layer", "99"}); err == nil {
		t.Error("out-of-range layer accepted")
	}
	if err := run([]string{"-capture", path, "-window", "0"}); err == nil {
		t.Error("zero window accepted")
	}
	if err := run([]string{"-capture", path, "-x-steps", "0"}); err == nil {
		t.Error("zero calibration accepted")
	}
}
