// Command reconstruct reverse-engineers a printed part from an OFFRAMPS
// capture — the IP-theft direction the paper's discussion raises ("even
// reverse-engineering printed parts from their control signals", §VI).
// Unlike the acoustic/power side channels of prior work, the MITM capture
// is lossless, so the stolen toolpath is exact at window resolution.
//
// Usage:
//
//	reconstruct -capture print.csv
//	reconstruct -capture print.csv -layer 3 -width 60   # ASCII render
package main

import (
	"flag"
	"fmt"
	"os"

	"offramps/internal/capture"
	"offramps/internal/reconstruct"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reconstruct:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reconstruct", flag.ContinueOnError)
	var (
		capPath = fs.String("capture", "", "capture CSV to reverse-engineer (required)")
		layer   = fs.Int("layer", -1, "render this layer as ASCII (-1 = none)")
		width   = fs.Int("width", 60, "ASCII render width, columns")
		window  = fs.Float64("window", 0.1, "capture window length, seconds")
		xspm    = fs.Float64("x-steps", 80, "X steps per mm of the victim machine")
		yspm    = fs.Float64("y-steps", 80, "Y steps per mm")
		zspm    = fs.Float64("z-steps", 400, "Z steps per mm")
		espm    = fs.Float64("e-steps", 96, "E steps per mm")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *capPath == "" {
		return fmt.Errorf("-capture is required")
	}
	f, err := os.Open(*capPath)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := capture.ReadCSV(f)
	if err != nil {
		return err
	}

	cal := reconstruct.Calibration{
		XStepsPerMM: *xspm, YStepsPerMM: *yspm,
		ZStepsPerMM: *zspm, EStepsPerMM: *espm,
	}
	design, err := reconstruct.FromCapture(rec, cal, *window)
	if err != nil {
		return err
	}

	fmt.Printf("stolen design: %s\n", design.Summary())
	fmt.Printf("%-8s %-10s %-12s %s\n", "layer", "Z (mm)", "filament", "extent (mm)")
	for i, l := range design.Layers {
		fmt.Printf("%-8d %-10.2f %-12.2f %.2f × %.2f\n", i, l.Z, l.Filament, l.Width(), l.Depth())
	}
	if *layer >= 0 {
		img, err := design.RenderLayer(*layer, *width)
		if err != nil {
			return err
		}
		fmt.Printf("\nlayer %d toolpath:\n%s", *layer, img)
	}
	return nil
}
