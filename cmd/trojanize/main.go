// Command trojanize applies a Flaw3D-style trojan to a G-code file — the
// Go port of the Python script the paper uses to recreate the malicious
// bootloader's edits (§V-D): "We recreate these Trojans using a Python
// script which modifies given g-code in the same way the malicious
// bootloader does."
//
// Usage:
//
//	trojanize -mode reduction -value 0.5  -i part.gcode -o bad.gcode
//	trojanize -mode relocation -value 20  -i part.gcode -o bad.gcode
//	trojanize -case 7 -i part.gcode -o bad.gcode   # Table II test case
package main

import (
	"flag"
	"fmt"
	"os"

	"offramps/internal/flaw3d"
	"offramps/internal/gcode"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trojanize:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trojanize", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "", "trojan family: reduction or relocation")
		value   = fs.Float64("value", 0, "reduction factor (0,1] or relocation interval")
		caseNum = fs.Int("case", 0, "Table II test case number (1-8); overrides -mode/-value")
		in      = fs.String("i", "", "input G-code file (default stdin)")
		out     = fs.String("o", "", "output G-code file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	prog, err := gcode.Parse(src)
	if err != nil {
		return err
	}

	var tampered gcode.Program
	switch {
	case *caseNum != 0:
		cases := flaw3d.TableII()
		if *caseNum < 1 || *caseNum > len(cases) {
			return fmt.Errorf("-case must be 1..%d", len(cases))
		}
		tc := cases[*caseNum-1]
		fmt.Fprintf(os.Stderr, "trojanize: applying %s\n", tc)
		tampered, err = tc.Apply(prog)
	case *mode == "reduction":
		tampered, err = flaw3d.Reduce(prog, *value)
	case *mode == "relocation":
		tampered, err = flaw3d.Relocate(prog, int(*value))
	default:
		return fmt.Errorf("need -case N or -mode reduction|relocation")
	}
	if err != nil {
		return err
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if _, err := dst.WriteString(tampered.String()); err != nil {
		return fmt.Errorf("writing output: %w", err)
	}
	return nil
}
