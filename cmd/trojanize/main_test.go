package main

import (
	"os"
	"path/filepath"
	"testing"

	"offramps/internal/gcode"
)

const sample = `G28
M83
G1 X10 Y10 F3000
G1 X20 Y10 E1.0 F1200
G1 X20 Y20 E1.0
G1 X10 Y20 E1.0
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.gcode")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReduction(t *testing.T) {
	in := writeSample(t)
	out := filepath.Join(t.TempDir(), "out.gcode")
	if err := run([]string{"-mode", "reduction", "-value", "0.5", "-i", in, "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	prog, err := gcode.ParseString(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := gcode.ComputeStats(prog).NetFilament; got != 1.5 {
		t.Errorf("net filament = %v, want 1.5 (3.0 × 0.5)", got)
	}
}

func TestRunRelocation(t *testing.T) {
	in := writeSample(t)
	out := filepath.Join(t.TempDir(), "out.gcode")
	if err := run([]string{"-mode", "relocation", "-value", "2", "-i", in, "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if len(data) == 0 {
		t.Fatal("empty output")
	}
}

func TestRunTableIICase(t *testing.T) {
	in := writeSample(t)
	out := filepath.Join(t.TempDir(), "out.gcode")
	if err := run([]string{"-case", "1", "-i", in, "-o", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	in := writeSample(t)
	if err := run([]string{"-i", in}); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-case", "99", "-i", in}); err == nil {
		t.Error("case 99 accepted")
	}
	if err := run([]string{"-mode", "reduction", "-value", "2", "-i", in}); err == nil {
		t.Error("factor 2 accepted")
	}
	if err := run([]string{"-mode", "reduction", "-value", "0.5", "-i", "/nonexistent"}); err == nil {
		t.Error("missing input accepted")
	}
}
