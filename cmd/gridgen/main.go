// Command gridgen expands a parameter-grid sweep description into a
// plain suite-spec file: grid JSON in, suite JSON out. The expansion is
// the same deterministic cross-product `suite -grid` runs in-process —
// materializing it lets the suite be inspected, diffed, committed, or
// handed to a runner that only speaks suite specs.
//
// Usage:
//
//	gridgen grid.json                  # expanded suite on stdout
//	gridgen -o suite.json grid.json
//	gridgen -names grid.json           # one scenario name per line
//	gridgen -names -shard 2/4 grid.json  # ...owned by shard 2 of 4
//
// -names lists the expanded scenario names (with -shard, only the named
// shard's), which is how a CI matrix or remote executor can preview a
// sweep's slices without running anything.
//
// Static -shard slices and the farm's dynamic lease queue (see
// internal/farm and cmd/coordinator) are two partitions of the same
// scenario-name space: `gridgen -names -shard i/N` previews exactly the
// set a `suite -shard i/N` run would own, while a coordinator deals the
// same names out one lease at a time. Either way the reassembled report
// is byte-identical to the unsharded run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"offramps"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gridgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gridgen", flag.ContinueOnError)
	var (
		out   = fs.String("o", "", "write the expanded suite spec to `file` (default stdout)")
		names = fs.Bool("names", false, "print expanded scenario names instead of the suite JSON")
		shard = fs.String("shard", "", "with -names, list only shard `i/N`'s owned scenarios")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("want exactly one grid file, got %d args", fs.NArg())
	}
	if *shard != "" && !*names {
		return fmt.Errorf("-shard requires -names (use cmd/suite -shard to run a slice)")
	}

	g, err := offramps.LoadGridSpec(fs.Arg(0))
	if err != nil {
		return err
	}
	suite, err := g.Expand()
	if err != nil {
		return err
	}

	if *names {
		owned := func(string) bool { return true }
		if *shard != "" {
			idx, cnt, err := offramps.ParseShard(*shard)
			if err != nil {
				return err
			}
			owned = func(name string) bool { return offramps.ShardOf(name, cnt) == idx-1 }
		}
		w := stdout
		for _, sc := range suite.Scenarios {
			if owned(sc.Name) {
				fmt.Fprintln(w, sc.Name)
			}
		}
		return nil
	}

	w := stdout
	var f *os.File
	if *out != "" {
		if f, err = os.Create(*out); err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite); err != nil {
		return err
	}
	if f != nil {
		return f.Close()
	}
	return nil
}
