package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"offramps"
)

// repoRoot walks up from the test's working directory to the module root
// so the committed example specs resolve.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestGridgenRoundTrips expands the committed Table II grid and feeds
// the output back through the strict suite parser: gridgen's JSON is a
// complete, valid suite spec.
func TestGridgenRoundTrips(t *testing.T) {
	grid := filepath.Join(repoRoot(t), "examples", "specs", "grid_tableii.json")
	var out strings.Builder
	if err := run([]string{grid}, &out); err != nil {
		t.Fatal(err)
	}
	suite, err := offramps.ParseSuiteSpec([]byte(out.String()), filepath.Dir(grid))
	if err != nil {
		t.Fatalf("gridgen output does not parse as a suite spec: %v", err)
	}
	if suite.Name != "table2-grid" {
		t.Errorf("suite name = %q", suite.Name)
	}
	if len(suite.Scenarios) != 10 || len(suite.Compare) != 9 {
		t.Errorf("suite shape: %d scenarios, %d compares", len(suite.Scenarios), len(suite.Compare))
	}
}

// TestGridgenNamesShards: -names lists every scenario, and the -shard
// slices partition that list exactly.
func TestGridgenNamesShards(t *testing.T) {
	grid := filepath.Join(repoRoot(t), "examples", "specs", "grid_tableii.json")
	var all strings.Builder
	if err := run([]string{"-names", grid}, &all); err != nil {
		t.Fatal(err)
	}
	names := strings.Fields(all.String())
	if len(names) != 10 {
		t.Fatalf("names = %v", names)
	}
	seen := map[string]int{}
	for i := 1; i <= 3; i++ {
		var out strings.Builder
		if err := run([]string{"-names", "-shard", fmt.Sprintf("%d/3", i), grid}, &out); err != nil {
			t.Fatal(err)
		}
		for _, n := range strings.Fields(out.String()) {
			seen[n]++
		}
	}
	if len(seen) != len(names) {
		t.Errorf("shards cover %d of %d names", len(seen), len(names))
	}
	for n, c := range seen {
		if c != 1 {
			t.Errorf("name %q listed by %d shards", n, c)
		}
	}
}

// TestGridgenRejectsBadInput covers the CLI guards.
func TestGridgenRejectsBadInput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-shard", "1/2", "grid.json"}, &out); err == nil {
		t.Error("-shard without -names accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Error("missing grid file accepted")
	}
}
