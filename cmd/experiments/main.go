// Command experiments regenerates every table and figure in the paper's
// evaluation section (see DESIGN.md §3 for the experiment index), plus
// the tap-side topology experiment this reproduction adds. Every
// experiment fans its prints across a campaign worker pool; -workers
// bounds the pool. -json writes the machine-readable reports alongside
// the Format() text.
//
// Usage:
//
//	experiments -all
//	experiments -table1 -figure4
//	experiments -drift -runs 6
//	experiments -all -workers 4
//	experiments -all -json reports.json
//	experiments -all -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"offramps"
	"offramps/internal/goldenstore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		all      = fs.Bool("all", false, "run every experiment")
		table1   = fs.Bool("table1", false, "Table I: the nine-trojan suite")
		table2   = fs.Bool("table2", false, "Table II: Flaw3D detection matrix")
		figure4  = fs.Bool("figure4", false, "Figure 4: detection output excerpt")
		overhead = fs.Bool("overhead", false, "§V-B: monitoring overhead")
		drift    = fs.Bool("drift", false, "§V-C: time-noise drift bound")
		tapside  = fs.Bool("tapside", false, "§V-D: tap-side topology (co-location blind spot)")
		selfatt  = fs.Bool("selfattest", false, "dual-tap board self-attestation (golden-free board-trojan detection)")
		seed     = fs.Uint64("seed", 1, "base time-noise seed")
		runs     = fs.Int("runs", 4, "number of prints for the drift experiment")
		workers  = fs.Int("workers", 0, "campaign worker-pool size (0 = GOMAXPROCS)")
		jsonOut  = fs.String("json", "", "also write the machine-readable reports to `file` (\"-\" = stdout)")
		storeDir = fs.String("golden-store", "", "persist golden runs in `dir` across invocations")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to `file`")
		memprofile = fs.String("memprofile", "", "write a heap profile taken after the experiments to `file`")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}
	if *all {
		*table1, *table2, *figure4, *overhead, *drift, *tapside, *selfatt = true, true, true, true, true, true, true
	}
	if !*table1 && !*table2 && !*figure4 && !*overhead && !*drift && !*tapside && !*selfatt {
		fs.Usage()
		return fmt.Errorf("nothing selected; use -all or pick experiments")
	}

	// -golden-store swaps the process-wide experiment cache for one backed
	// by a persistent tier: a rerun of the same tables serves its goldens
	// from disk instead of re-simulating them.
	var cache *offramps.GoldenCache
	if *storeDir != "" {
		store, err := goldenstore.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("golden-store: %w", err)
		}
		cache = offramps.NewGoldenCache()
		cache.AttachStore(store)
	}

	type experiment struct {
		enabled bool
		name    string
		key     string // stable key for the -json document
		run     func() (interface{ Format() string }, error)
	}
	list := []experiment{
		{*table1, "Table I", "table1", func() (interface{ Format() string }, error) { return offrampsTableI(*seed, *workers, cache) }},
		{*table2, "Table II", "table2", func() (interface{ Format() string }, error) { return offrampsTableII(*seed, *workers, cache) }},
		{*figure4, "Figure 4", "figure4", func() (interface{ Format() string }, error) { return offrampsFigure4(*seed, *workers, cache) }},
		{*overhead, "Overhead (§V-B)", "overhead", func() (interface{ Format() string }, error) { return offrampsOverhead(*seed, *workers, cache) }},
		{*drift, "Drift (§V-C)", "drift", func() (interface{ Format() string }, error) { return offrampsDrift(*seed, *runs, *workers, cache) }},
		{*tapside, "Tap sides (§V-D)", "tapside", func() (interface{ Format() string }, error) { return offrampsTapSides(*seed, *workers, cache) }},
		{*selfatt, "Self-attestation", "selfattest", func() (interface{ Format() string }, error) { return offrampsSelfAttest(*seed, *workers, cache) }},
	}
	reports := make(map[string]any)
	for _, ex := range list {
		if !ex.enabled {
			continue
		}
		fmt.Printf("==== %s ====\n", ex.name)
		start := time.Now()
		rep, err := ex.run()
		if err != nil {
			return fmt.Errorf("%s: %w", ex.name, err)
		}
		fmt.Print(rep.Format())
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		reports[ex.key] = rep
	}
	if cache != nil {
		storeHits, storeMisses := cache.StoreStats()
		fmt.Printf("golden store: %d hits, %d misses, %d simulations\n",
			storeHits, storeMisses, cache.Sims())
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, *seed, reports); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	return nil
}

// writeJSON emits the machine-readable report document to path ("-" =
// stdout).
func writeJSON(path string, seed uint64, reports map[string]any) error {
	doc := struct {
		Seed    uint64         `json:"seed"`
		Reports map[string]any `json:"reports"`
	}{Seed: seed, Reports: reports}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
