package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunRequiresSelection(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("empty selection accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full simulated prints")
	}
	// The overhead experiment is the fastest full-pipeline one.
	if err := run([]string{"-overhead"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full simulated prints")
	}
	path := filepath.Join(t.TempDir(), "reports.json")
	if err := run([]string{"-overhead", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Seed    uint64                     `json:"seed"`
		Reports map[string]json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if doc.Seed != 1 {
		t.Errorf("seed = %d, want 1", doc.Seed)
	}
	if _, ok := doc.Reports["overhead"]; !ok || len(doc.Reports) != 1 {
		t.Errorf("reports keys = %v, want [overhead]", doc.Reports)
	}
}
