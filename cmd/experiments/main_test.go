package main

import "testing"

func TestRunRequiresSelection(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("empty selection accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full simulated prints")
	}
	// The overhead experiment is the fastest full-pipeline one.
	if err := run([]string{"-overhead"}); err != nil {
		t.Fatal(err)
	}
}
