package main

import "offramps"

// Thin adapters giving each experiment the common Format() interface the
// runner loop consumes and translating the -workers and -golden-store
// flags into campaign options.

func campaignOpts(workers int, cache *offramps.GoldenCache) []offramps.ExperimentOption {
	var opts []offramps.ExperimentOption
	if workers > 0 {
		opts = append(opts, offramps.WithWorkers(workers))
	}
	if cache != nil {
		opts = append(opts, offramps.WithGoldenCache(cache))
	}
	return opts
}

func offrampsTableI(seed uint64, workers int, cache *offramps.GoldenCache) (interface{ Format() string }, error) {
	return offramps.TableI(seed, campaignOpts(workers, cache)...)
}

func offrampsTableII(seed uint64, workers int, cache *offramps.GoldenCache) (interface{ Format() string }, error) {
	return offramps.TableII(seed, campaignOpts(workers, cache)...)
}

func offrampsFigure4(seed uint64, workers int, cache *offramps.GoldenCache) (interface{ Format() string }, error) {
	return offramps.Figure4(seed, campaignOpts(workers, cache)...)
}

func offrampsOverhead(seed uint64, workers int, cache *offramps.GoldenCache) (interface{ Format() string }, error) {
	return offramps.Overhead(seed, campaignOpts(workers, cache)...)
}

func offrampsDrift(seed uint64, runs, workers int, cache *offramps.GoldenCache) (interface{ Format() string }, error) {
	return offramps.Drift(seed, runs, campaignOpts(workers, cache)...)
}

func offrampsTapSides(seed uint64, workers int, cache *offramps.GoldenCache) (interface{ Format() string }, error) {
	return offramps.TapSides(seed, campaignOpts(workers, cache)...)
}

func offrampsSelfAttest(seed uint64, workers int, cache *offramps.GoldenCache) (interface{ Format() string }, error) {
	return offramps.SelfAttest(seed, campaignOpts(workers, cache)...)
}
