package main

import "offramps"

// Thin adapters giving each experiment the common Format() interface the
// runner loop consumes.

func offrampsTableI(seed uint64) (interface{ Format() string }, error) {
	return offramps.TableI(seed)
}

func offrampsTableII(seed uint64) (interface{ Format() string }, error) {
	return offramps.TableII(seed)
}

func offrampsFigure4(seed uint64) (interface{ Format() string }, error) {
	return offramps.Figure4(seed)
}

func offrampsOverhead(seed uint64) (interface{ Format() string }, error) {
	return offramps.Overhead(seed)
}

func offrampsDrift(seed uint64, runs int) (interface{ Format() string }, error) {
	return offramps.Drift(seed, runs)
}
