package main

import "offramps"

// Thin adapters giving each experiment the common Format() interface the
// runner loop consumes and translating the -workers flag into campaign
// options.

func campaignOpts(workers int) []offramps.ExperimentOption {
	if workers <= 0 {
		return nil
	}
	return []offramps.ExperimentOption{offramps.WithWorkers(workers)}
}

func offrampsTableI(seed uint64, workers int) (interface{ Format() string }, error) {
	return offramps.TableI(seed, campaignOpts(workers)...)
}

func offrampsTableII(seed uint64, workers int) (interface{ Format() string }, error) {
	return offramps.TableII(seed, campaignOpts(workers)...)
}

func offrampsFigure4(seed uint64, workers int) (interface{ Format() string }, error) {
	return offramps.Figure4(seed, campaignOpts(workers)...)
}

func offrampsOverhead(seed uint64, workers int) (interface{ Format() string }, error) {
	return offramps.Overhead(seed, campaignOpts(workers)...)
}

func offrampsDrift(seed uint64, runs, workers int) (interface{ Format() string }, error) {
	return offramps.Drift(seed, runs, campaignOpts(workers)...)
}

func offrampsTapSides(seed uint64, workers int) (interface{ Format() string }, error) {
	return offramps.TapSides(seed, campaignOpts(workers)...)
}

func offrampsSelfAttest(seed uint64, workers int) (interface{ Format() string }, error) {
	return offramps.SelfAttest(seed, campaignOpts(workers)...)
}
