// Command offramps runs one simulated print on the full OFFRAMPS testbed:
// Marlin-twin firmware → FPGA MITM → RAMPS drivers → printer plant. It can
// arm any of the paper's Table I trojans, attach live detectors that halt
// the print the moment a trojan is suspected, export the monitoring
// capture as CSV, and dump the control signals as a VCD waveform for
// GTKWave.
//
// Usage:
//
//	offramps                         # golden print of the built-in part
//	offramps -gcode part.gcode       # print a sliced file
//	offramps -trojan T7 -settle 60s  # thermal-runaway attack, watch physics
//	offramps -capture out.csv        # save the pulse-profile capture
//	offramps -vcd steps.vcd          # save STEP/DIR waveforms
//	offramps -monitor golden.csv     # live golden monitor, abort on trip
//	offramps -golden-free            # live physics rules, abort on trip
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"offramps"
	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/gcode"
	"offramps/internal/signal"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "offramps:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("offramps", flag.ContinueOnError)
	var (
		gcodePath  = fs.String("gcode", "", "G-code file to print (default: built-in 20 mm test box)")
		trojanID   = fs.String("trojan", "", "arm a Table I trojan: T1..T9")
		seed       = fs.Uint64("seed", 1, "time-noise seed (a different seed is a different physical run)")
		settle     = fs.Duration("settle", 2*time.Second, "simulated time to keep running after the print ends")
		capPath    = fs.String("capture", "", "write the pulse-profile capture CSV here")
		vcdPath    = fs.String("vcd", "", "write STEP/DIR/heater waveforms as VCD here")
		noMITM     = fs.Bool("direct", false, "bypass the FPGA with jumpers (Figure 3a)")
		budget     = fs.Duration("budget", time.Hour, "simulated-time budget")
		monitorCSV = fs.String("monitor", "", "golden capture CSV: attach a live monitor that aborts on trip")
		goldenFree = fs.Bool("golden-free", false, "attach the live golden-free rule engine (aborts on trip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	prog, err := loadProgram(*gcodePath)
	if err != nil {
		return err
	}

	opts := []offramps.Option{
		offramps.WithSeed(*seed),
		offramps.WithSettle(sim.FromDuration(*settle)),
	}
	if *noMITM {
		opts = append(opts, offramps.WithoutMITM())
	}
	if *trojanID != "" {
		tr, err := findTrojan(*trojanID, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("arming %s: %s\n", tr.ID(), tr.Description())
		opts = append(opts, offramps.WithTrojan(tr))
	}

	tb, err := offramps.NewTestbed(opts...)
	if err != nil {
		return err
	}

	ropts := []offramps.RunOption{offramps.WithLimit(sim.FromDuration(*budget))}
	if *monitorCSV != "" {
		golden, err := readCapture(*monitorCSV)
		if err != nil {
			return fmt.Errorf("golden capture: %w", err)
		}
		m, err := detect.NewMonitor(golden, detect.DefaultConfig())
		if err != nil {
			return err
		}
		ropts = append(ropts, offramps.WithDetector(m, offramps.AbortOnTrip))
	}
	if *goldenFree {
		e, err := detect.NewRuleEngine(detect.DefaultLimits())
		if err != nil {
			return err
		}
		ropts = append(ropts, offramps.WithDetector(e, offramps.AbortOnTrip))
	}

	var traces []*signal.Trace
	if *vcdPath != "" {
		for _, pin := range []string{
			signal.PinXStep, signal.PinXDir, signal.PinYStep, signal.PinYDir,
			signal.PinZStep, signal.PinEStep, signal.PinHotend, signal.PinBed, signal.PinFan,
		} {
			traces = append(traces, signal.NewTrace(tb.RAMPS.Line(pin)))
		}
	}

	res, err := tb.Run(context.Background(), prog, ropts...)
	if err != nil {
		return err
	}
	printSummary(res)

	if *capPath != "" && res.Recording != nil {
		f, err := os.Create(*capPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Recording.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("capture: %d transactions -> %s\n", res.Recording.Len(), *capPath)
	}
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := signal.WriteVCD(f, traces); err != nil {
			return err
		}
		fmt.Printf("waveforms -> %s\n", *vcdPath)
	}
	return nil
}

func loadProgram(path string) (gcode.Program, error) {
	if path == "" {
		return offramps.TestPart()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gcode.Parse(f)
}

func readCapture(path string) (*capture.Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return capture.ReadCSV(f)
}

func findTrojan(id string, seed uint64) (trojan.Info, error) {
	for _, tr := range trojan.Suite(seed) {
		if tr.ID() == id {
			return tr, nil
		}
	}
	return nil, fmt.Errorf("unknown trojan %q (want T1..T9)", id)
}

func printSummary(res *offramps.Result) {
	status := "completed"
	if res.Aborted {
		status = fmt.Sprintf("ABORTED by detector at %v — %s", res.AbortedAt, res.TripReason)
	} else if !res.Completed {
		status = fmt.Sprintf("HALTED: %v", res.HaltError)
	}
	fmt.Printf("print %s in %v simulated\n", status, res.Duration)
	fmt.Printf("part: %s\n", res.Quality)
	fmt.Printf("thermal: hotend peak %.1f°C (exceeded spec: %v), bed peak %.1f°C\n",
		res.PeakHotendTemp, res.HotendExceededSafe, res.PeakBedTemp)
	fmt.Printf("cooling: peak fan duty %.2f\n", res.PeakFanDuty)
	lost := uint64(0)
	for _, n := range res.StepsLost {
		lost += n
	}
	if lost > 0 {
		fmt.Printf("steps lost to disabled drivers: %d\n", lost)
	}
	for _, rep := range res.Detections {
		verdict := "no trojan suspected"
		if rep.TrojanLikely {
			verdict = "TROJAN LIKELY"
		}
		fmt.Printf("detector %s: %s\n", rep.Detector, verdict)
	}
}
