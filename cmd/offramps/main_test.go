package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBuiltinPartWithCaptureAndVCD(t *testing.T) {
	dir := t.TempDir()
	capPath := filepath.Join(dir, "cap.csv")
	vcdPath := filepath.Join(dir, "steps.vcd")
	if err := run([]string{"-capture", capPath, "-vcd", vcdPath, "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	capData, err := os.ReadFile(capPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(capData), "Index, X, Y, Z, E") {
		t.Errorf("capture header: %.40s", capData)
	}
	vcdData, err := os.ReadFile(vcdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(vcdData), "$var wire 1") {
		t.Error("VCD missing variable declarations")
	}
}

func TestRunWithTrojan(t *testing.T) {
	// T6 kills the print early: the run must still succeed (the halt is
	// the experiment's outcome, not a tool failure).
	if err := run([]string{"-trojan", "T6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDirectMode(t *testing.T) {
	if err := run([]string{"-direct"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGCodeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.gcode")
	src := "G28\nG1 X30 Y30 F9000\nG1 X40 E1 F1200\nM84\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-gcode", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-trojan", "T99"}); err == nil {
		t.Error("unknown trojan accepted")
	}
	if err := run([]string{"-gcode", "/nonexistent.gcode"}); err == nil {
		t.Error("missing gcode file accepted")
	}
	if err := run([]string{"-trojan", "T1", "-direct"}); err == nil {
		t.Error("trojan in direct mode accepted")
	}
}
