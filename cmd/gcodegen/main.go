// Command gcodegen slices a built-in test shape into Marlin G-code — the
// repository's stand-in for Ultimaker Cura in the paper's toolchain.
//
// Usage:
//
//	gcodegen -shape box -x 20 -y 20 -z 1.6 -o part.gcode
//	gcodegen -shape cylinder -r 8 -z 5
//	gcodegen -shape tensile -len 60 -z 2 -flow 0.9
package main

import (
	"flag"
	"fmt"
	"os"

	"offramps/internal/gcode"
	"offramps/internal/slicer"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gcodegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("gcodegen", flag.ContinueOnError)
	var (
		shape   = fs.String("shape", "box", "shape to slice: box, cylinder, tensile")
		x       = fs.Float64("x", 20, "box width, mm")
		y       = fs.Float64("y", 20, "box depth, mm")
		z       = fs.Float64("z", 1.6, "part height, mm")
		r       = fs.Float64("r", 8, "cylinder radius, mm")
		barLen  = fs.Float64("len", 60, "tensile bar length, mm")
		flow    = fs.Float64("flow", 1.0, "extrusion multiplier")
		layerH  = fs.Float64("layer", 0.2, "layer height, mm")
		infill  = fs.Float64("infill", 2.0, "infill line spacing, mm (0 = walls only)")
		solidN  = fs.Int("solid", 0, "solid top/bottom shell layers")
		skirt   = fs.Int("skirt", 0, "skirt loops around the part on layer 1")
		hotend  = fs.Float64("hotend", 210, "hotend temperature, °C")
		bed     = fs.Float64("bed", 60, "bed temperature, °C")
		out     = fs.String("o", "", "output file (default stdout)")
		summary = fs.Bool("stats", false, "print program statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := slicer.DefaultConfig()
	cfg.FlowMultiplier = *flow
	cfg.LayerHeight = *layerH
	cfg.FirstLayerHeight = *layerH
	cfg.InfillSpacing = *infill
	cfg.SolidLayers = *solidN
	cfg.SkirtLoops = *skirt
	if *skirt > 0 {
		cfg.SkirtGap = 3
	}
	cfg.HotendTemp = *hotend
	cfg.BedTemp = *bed

	var solid slicer.Shape
	var err error
	switch *shape {
	case "box":
		solid, err = slicer.NewBox(*x, *y, *z)
	case "cylinder":
		solid, err = slicer.NewCylinder(*r, *z, 48)
	case "tensile":
		solid, err = slicer.NewTensileBar(*barLen, *z)
	default:
		return fmt.Errorf("unknown shape %q (want box, cylinder, tensile)", *shape)
	}
	if err != nil {
		return err
	}

	prog, err := slicer.Slice(solid, cfg)
	if err != nil {
		return err
	}
	if *summary {
		fmt.Fprintln(os.Stderr, gcode.ComputeStats(prog))
	}

	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if _, err := dst.WriteString(prog.String()); err != nil {
		return fmt.Errorf("writing output: %w", err)
	}
	return nil
}
