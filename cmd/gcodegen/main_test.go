package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"offramps/internal/gcode"
)

func TestRunGeneratesParseableGCode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "part.gcode")
	if err := run([]string{"-shape", "box", "-x", "12", "-y", "12", "-z", "0.6", "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := gcode.ParseString(string(data))
	if err != nil {
		t.Fatalf("generated G-code does not parse: %v", err)
	}
	stats := gcode.ComputeStats(prog)
	if stats.PrintingMoves == 0 || stats.Layers != 3 {
		t.Errorf("stats = %v", stats)
	}
}

func TestRunShapes(t *testing.T) {
	for _, shape := range []string{"cylinder", "tensile"} {
		out := filepath.Join(t.TempDir(), shape+".gcode")
		if err := run([]string{"-shape", shape, "-z", "0.4", "-o", out}, os.Stdout); err != nil {
			t.Errorf("%s: %v", shape, err)
		}
	}
}

func TestRunSkirtAndSolid(t *testing.T) {
	out := filepath.Join(t.TempDir(), "part.gcode")
	if err := run([]string{"-x", "12", "-y", "12", "-z", "0.6", "-skirt", "1", "-solid", "1", "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "G1") {
		t.Error("no moves generated")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-shape", "sphere"}, os.Stdout); err == nil {
		t.Error("unknown shape accepted")
	}
	if err := run([]string{"-shape", "box", "-x", "0"}, os.Stdout); err == nil {
		t.Error("zero dimension accepted")
	}
	if err := run([]string{"-bogusflag"}, os.Stdout); err == nil {
		t.Error("bad flag accepted")
	}
}
