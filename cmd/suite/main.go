// Command suite executes declarative scenario-spec files: every
// experiment is data, not code. A spec file describes scenarios (program
// reference, trojan, detector, tap placement, seed policy, budget) and
// post-run golden comparisons; the runner compiles them through the
// registry-backed spec compiler and fans the prints across the campaign
// worker pool, then emits human, JSON, and CSV reports.
//
// Usage:
//
//	suite spec.json...
//	suite -workers 4 -json report.json -csv rows.csv specs/*.json
//	suite -seed 99 spec.json        # override the spec's base seed
//	suite -grid grid.json           # expand a parameter-grid sweep first
//	suite -grid -shard 2/4 -json shard2.json grid.json
//	suite -grid -merge -json merged.json grid.json shard*.json
//	suite -grid -merge -json merged.json grid.json shard*.jsonl
//	suite -jsonl results.jsonl -progress big_sweep.json
//	suite -golden-store .goldens spec.json  # reuse golden prints across runs
//	suite -progressive -scenario-budget 14 -earlystop 2 grid_sweep.json
//	suite -golden-store .goldens -golden-store-gc spec.json  # drop stale goldens
//
// -progressive runs a grid as a progressive sweep (internal/sched):
// round one executes one seed per grid cell (plus every extra), later
// rounds refine cells that sit on a detection boundary first, and
// -scenario-budget / -earlystop bound the total work. Scenarios the
// scheduler retires become synthesized "skipped (...)" rows, so the
// report and any -jsonl stream stay complete; every executed row is
// byte-identical to the full run's.
//
// A grid file (-grid) is a compact sweep description — axes of programs,
// trojans, detectors, taps, budgets, and seeds, cross-multiplied minus
// include/exclude filters — expanded deterministically into a suite (see
// cmd/gridgen to materialize the expansion). -shard i/N runs a disjoint,
// stable slice of any suite: each scenario's shard is a hash of its
// name, so CI matrices and remote runners can split a sweep and -merge
// reassembles the per-shard JSON reports into one report byte-identical
// to the unsharded run. -jsonl and -progress stream per-scenario rows as
// prints complete, keeping memory bounded on huge sweeps.
//
// See examples/specs/ for committed spec files, including the RAMPS-side
// tap scenario that detects a board-injected trojan the paper's
// Arduino-side tap is blind to (§V-D), the dual-tap self-attestation
// suite, and the Table II reproduction expressed as a grid
// (grid_tableii.json).
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"offramps"
	"offramps/internal/goldenstore"
	"offramps/internal/sched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "suite:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("suite", flag.ContinueOnError)
	var (
		workers  = fs.Int("workers", 0, "campaign worker-pool size (0 = GOMAXPROCS, overrides spec)")
		seed     = fs.Uint64("seed", 0, "override every suite's base seed (0 = use the spec's)")
		jsonOut  = fs.String("json", "", "write the suite reports as JSON to `file` (\"-\" = stdout)")
		csvOut   = fs.String("csv", "", "write per-scenario and per-comparison rows as CSV to `file` (\"-\" = stdout)")
		grid     = fs.Bool("grid", false, "treat the spec files as parameter-grid sweeps and expand them first (grid_*.json files auto-detect)")
		shard    = fs.String("shard", "", "run only shard `i/N` of each suite (stable per-scenario slices; merge with -merge)")
		merge    = fs.Bool("merge", false, "merge shard outputs: first arg is the spec/grid file, the rest are per-shard -json reports or -jsonl streams")
		jsonlOut = fs.String("jsonl", "", "stream one JSON line per completed scenario to `file` (\"-\" = stdout)")
		progress = fs.Bool("progress", false, "print a progress line as each scenario completes")
		storeDir = fs.String("golden-store", "", "persist golden runs in `dir` across invocations (misses fill it; corrupt entries re-simulate)")
		storeGC  = fs.Bool("golden-store-gc", false, "after the run, rebuild the golden store keeping only entries this run touched (requires -golden-store)")
		prog     = fs.Bool("progressive", false, "run grids progressively: coverage round first, boundary-guided refinement after (grid specs only)")
		budget   = fs.Int("scenario-budget", 0, "progressive: target number of executed scenarios, coverage included (0 = unlimited; coverage always runs)")
		early    = fs.Int("earlystop", 0, "progressive: retire a cell once its first `k` seeds agree on a verdict (0 = never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return fmt.Errorf("no spec files given")
	}
	if *storeGC && *storeDir == "" {
		return fmt.Errorf("-golden-store-gc requires -golden-store")
	}
	if *prog && (*shard != "" || *merge) {
		return fmt.Errorf("-progressive is incompatible with -shard and -merge (the scheduler owns the execution order)")
	}
	if (*budget != 0 || *early != 0) && !*prog {
		return fmt.Errorf("-scenario-budget and -earlystop require -progressive")
	}
	if *merge {
		if *shard != "" {
			return fmt.Errorf("-merge and -shard are mutually exclusive")
		}
		if *csvOut != "" || *jsonlOut != "" || *progress {
			return fmt.Errorf("-csv, -jsonl, and -progress are not supported with -merge (it stitches existing -json reports)")
		}
		return runMerge(*grid, *seed, paths, *jsonOut, stdout)
	}
	var shardIdx, shardCnt int
	if *shard != "" {
		var err error
		if shardIdx, shardCnt, err = offramps.ParseShard(*shard); err != nil {
			return err
		}
	}

	var jsonl *offramps.JSONLSink
	if *jsonlOut != "" {
		w, closer, err := sink(*jsonlOut, stdout)
		if err != nil {
			return fmt.Errorf("jsonl: %w", err)
		}
		defer closer()
		jsonl = offramps.NewJSONLSink(w)
	}

	// One golden cache across all suites: spec files that print the same
	// (program, seed) golden share a single simulation. -golden-store adds
	// a persistent tier underneath, shared across invocations.
	cache := offramps.NewGoldenCache()
	var store *goldenstore.Store
	if *storeDir != "" {
		var err error
		if store, err = goldenstore.Open(*storeDir); err != nil {
			return fmt.Errorf("golden-store: %w", err)
		}
		cache.AttachStore(store)
	}
	var reports []*offramps.SuiteReport
	var sinkFailure error
	for _, path := range paths {
		var spec *offramps.SuiteSpec
		var layout *sched.Grid
		var err error
		if *prog {
			spec, layout, err = offramps.LoadSuiteOrGridLayout(path, *grid)
		} else {
			spec, err = loadSuite(path, *grid)
		}
		if err != nil {
			return err
		}
		if *seed != 0 {
			spec.BaseSeed = *seed
		}
		runSpec := spec
		var sh *offramps.SuiteShard
		if *shard != "" {
			if sh, err = spec.Shard(shardIdx, shardCnt); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			runSpec = sh.Spec
		}

		c := offramps.Campaign{Cache: cache}
		if *workers > 0 {
			c.Workers = *workers
			runSpec.Workers = 0 // flag wins over the spec
		}
		// The jsonl sink spans every suite and is closed after the loop;
		// per-suite sinks are closed as each suite finishes.
		var perSuite []offramps.ResultSink
		if jsonl != nil {
			jsonl.Label = spec.Name
			c.Sinks = append(c.Sinks, ownedOnly(sh, jsonl))
		}
		if *progress {
			total := len(runSpec.Scenarios)
			if sh != nil {
				total = len(sh.Owned)
			}
			ps := ownedOnly(sh, &offramps.ProgressSink{W: stdout, Total: total, Cache: cache})
			c.Sinks = append(c.Sinks, ps)
			perSuite = append(perSuite, ps)
		}

		start := time.Now()
		rep := &offramps.SuiteReport{Suite: runSpec.Name, BaseSeed: runSpec.BaseSeed, Results: []offramps.ScenarioResult{}}
		var stats offramps.SweepStats
		if len(runSpec.Scenarios) > 0 {
			if layout != nil {
				rep, stats, err = c.RunSuiteProgressive(context.Background(), runSpec, layout,
					sched.Config{Budget: *budget, EarlyStopK: *early})
			} else {
				rep, err = c.RunSuite(context.Background(), runSpec)
			}
			if err != nil {
				// A sink failure still produced a complete report — keep
				// going so -json/-csv artifacts are written, and surface
				// the error at exit.
				var se *offramps.SinkError
				if !errors.As(err, &se) {
					return fmt.Errorf("%s: %w", path, err)
				}
				if sinkFailure == nil {
					sinkFailure = fmt.Errorf("%s: %w", path, err)
				}
			}
		}
		for _, s := range perSuite {
			if cerr := s.Close(); cerr != nil && sinkFailure == nil {
				sinkFailure = fmt.Errorf("%s: result sink: %w", path, cerr)
			}
		}
		if sh != nil {
			// Helper goldens ran for the shard's compares but belong to
			// another shard's report.
			rep = sh.Filter(rep)
			fmt.Fprintf(stdout, "shard %d/%d of %s: %d of %d scenarios\n",
				shardIdx, shardCnt, spec.Name, len(rep.Results), len(spec.Scenarios))
		}
		if jsonl != nil {
			// Comparison rows ride the stream too (after the suite's
			// scenario rows), so a -jsonl stream alone carries everything
			// -merge needs to stitch the full report.
			for _, cmp := range rep.Comparisons {
				if cerr := jsonl.EmitCompare(cmp); cerr != nil && sinkFailure == nil {
					sinkFailure = fmt.Errorf("jsonl: %w", cerr)
				}
			}
		}
		fmt.Fprint(stdout, rep.Format())
		if layout != nil {
			fmt.Fprintln(stdout, stats.Summary())
		}
		fmt.Fprintf(stdout, "(%s executed in %v)\n\n", path, time.Since(start).Round(time.Millisecond))
		reports = append(reports, rep)
	}
	if jsonl != nil {
		if cerr := jsonl.Close(); cerr != nil && sinkFailure == nil {
			sinkFailure = fmt.Errorf("jsonl: %w", cerr)
		}
	}
	if *storeDir != "" {
		storeHits, storeMisses := cache.StoreStats()
		fmt.Fprintf(stdout, "golden store: %d hits, %d misses, %d simulations\n",
			storeHits, storeMisses, cache.Sims())
	}
	if *storeGC {
		// The keep set is every store key this run consulted (hit or
		// miss-then-fill); everything else is a leftover from old specs,
		// formats, or seeds and is compacted away atomically.
		before := store.Len()
		keep := make(map[goldenstore.Key]bool)
		for _, k := range cache.UsedStoreKeys() {
			keep[k] = true
		}
		if err := store.Rebuild(func(k goldenstore.Key, _ []byte) bool { return keep[k] }); err != nil {
			return fmt.Errorf("golden-store-gc: %w", err)
		}
		fmt.Fprintf(stdout, "golden store gc: kept %d entries, dropped %d\n",
			store.Len(), before-store.Len())
	}

	if *jsonOut != "" {
		if err := writeJSONDoc(*jsonOut, stdout, struct {
			Suites []*offramps.SuiteReport `json:"suites"`
		}{reports}); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	if *csvOut != "" {
		if err := writeCSV(*csvOut, stdout, reports); err != nil {
			return fmt.Errorf("csv: %w", err)
		}
	}
	if err := firstError(reports); err != nil {
		return err
	}
	return sinkFailure
}

// ownedOnly filters streamed rows to the shard's owned scenarios:
// helper goldens execute in every shard that needs them, but across a
// sharded sweep's concatenated -jsonl streams each scenario must appear
// exactly once, matching the merged -json report.
func ownedOnly(sh *offramps.SuiteShard, inner offramps.ResultSink) offramps.ResultSink {
	if sh == nil {
		return inner
	}
	return &ownedSink{sh: sh, inner: inner}
}

type ownedSink struct {
	sh    *offramps.SuiteShard
	inner offramps.ResultSink
}

func (s *ownedSink) Emit(r offramps.ScenarioResult) error {
	if !s.sh.Owned[r.Name] {
		return nil
	}
	return s.inner.Emit(r)
}

func (s *ownedSink) Close() error { return s.inner.Close() }

// loadSuite reads a suite spec — or a grid spec expanded into one. -grid
// forces grid interpretation; without it, the committed grid_*.json
// naming convention decides, so `suite examples/specs/*.json` keeps
// working with grids in the glob. The same loading path backs the farm
// coordinator (cmd/coordinator), so both front ends see identical
// suites for identical inputs.
func loadSuite(path string, grid bool) (*offramps.SuiteSpec, error) {
	return offramps.LoadSuiteOrGrid(path, grid)
}

// firstError surfaces scenario or comparison failures as a non-zero exit
// (a TrojanLikely verdict is a finding, not a failure, and a progressive
// sweep's synthesized "skipped (...)" rows are deliberate outcomes).
func firstError(reports []*offramps.SuiteReport) error {
	for _, rep := range reports {
		for _, r := range rep.Results {
			if r.Err != nil && !offramps.IsSkippedResult(r.Err.Error()) {
				return fmt.Errorf("suite %s: scenario %s: %w", rep.Suite, r.Name, r.Err)
			}
		}
		for _, c := range rep.Comparisons {
			if c.Err != nil && !offramps.IsSkippedResult(c.Err.Error()) {
				return fmt.Errorf("suite %s: compare %s vs %s: %w", rep.Suite, c.Golden, c.Suspect, c.Err)
			}
		}
	}
	return nil
}

// sink opens the output target ("-" = the runner's stdout). The returned
// close func is idempotent, so it can back both a defer (cleanup on
// error) and an explicit flush-and-close whose error is checked.
func sink(path string, stdout io.Writer) (io.Writer, func() error, error) {
	if path == "-" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	var once sync.Once
	var cerr error
	return f, func() error {
		once.Do(func() { cerr = f.Close() })
		return cerr
	}, nil
}

// writeJSONDoc writes any document as indented JSON. Both the live
// report path and the shard merge path emit through this one encoder
// configuration — that shared normalization is what makes a merged
// report byte-identical to an unsharded one.
func writeJSONDoc(path string, stdout io.Writer, doc any) error {
	w, closer, err := sink(path, stdout)
	if err != nil {
		return err
	}
	defer closer()
	if err := offramps.EncodeReport(w, doc); err != nil {
		return err
	}
	return closer()
}

func writeCSV(path string, stdout io.Writer, reports []*offramps.SuiteReport) error {
	w, closer, err := sink(path, stdout)
	if err != nil {
		return err
	}
	defer closer()
	cw := csv.NewWriter(w)
	if err := cw.Write(offramps.ScenarioCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for _, rep := range reports {
		for _, r := range rep.Results {
			if err := cw.Write(offramps.ScenarioCSVRow(rep.Suite, r)); err != nil {
				return err
			}
		}
		for _, c := range rep.Comparisons {
			row := []string{"compare", rep.Suite, "", "", c.Golden, c.Suspect}
			if c.Err != nil {
				row = append(row, "", "", "", "", "", "", "", "", "", c.Err.Error())
			} else {
				row = append(row,
					"", "",
					strconv.FormatBool(c.Report.TrojanLikely),
					strconv.Itoa(c.Report.NumMismatches),
					strconv.Itoa(len(c.Report.Final)),
					f(c.Report.LargestPercent),
					"", "", "", "",
				)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return closer()
}
