// Command suite executes declarative scenario-spec files: every
// experiment is data, not code. A spec file describes scenarios (program
// reference, trojan, detector, tap placement, seed policy, budget) and
// post-run golden comparisons; the runner compiles them through the
// registry-backed spec compiler and fans the prints across the campaign
// worker pool, then emits human, JSON, and CSV reports.
//
// Usage:
//
//	suite spec.json...
//	suite -workers 4 -json report.json -csv rows.csv specs/*.json
//	suite -seed 99 spec.json        # override the spec's base seed
//
// See examples/specs/ for committed spec files, including the RAMPS-side
// tap scenario that detects a board-injected trojan the paper's
// Arduino-side tap is blind to (§V-D), and the dual-tap self-attestation
// suite whose "attestation" detector (bound with "tap": "dual") flags a
// board-resident trojan in a single print with no golden capture.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"offramps"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "suite:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("suite", flag.ContinueOnError)
	var (
		workers = fs.Int("workers", 0, "campaign worker-pool size (0 = GOMAXPROCS, overrides spec)")
		seed    = fs.Uint64("seed", 0, "override every suite's base seed (0 = use the spec's)")
		jsonOut = fs.String("json", "", "write the suite reports as JSON to `file` (\"-\" = stdout)")
		csvOut  = fs.String("csv", "", "write per-scenario and per-comparison rows as CSV to `file` (\"-\" = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return fmt.Errorf("no spec files given")
	}

	// One golden cache across all suites: spec files that print the same
	// (program, seed) golden share a single simulation.
	cache := offramps.NewGoldenCache()
	var reports []*offramps.SuiteReport
	for _, path := range paths {
		spec, err := offramps.LoadSuiteSpec(path)
		if err != nil {
			return err
		}
		if *seed != 0 {
			spec.BaseSeed = *seed
		}
		c := offramps.Campaign{Cache: cache}
		if *workers > 0 {
			c.Workers = *workers
			spec.Workers = 0 // flag wins over the spec
		}
		start := time.Now()
		rep, err := c.RunSuite(context.Background(), spec)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprint(stdout, rep.Format())
		fmt.Fprintf(stdout, "(%s executed in %v)\n\n", path, time.Since(start).Round(time.Millisecond))
		reports = append(reports, rep)
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, stdout, reports); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	if *csvOut != "" {
		if err := writeCSV(*csvOut, stdout, reports); err != nil {
			return fmt.Errorf("csv: %w", err)
		}
	}
	return firstError(reports)
}

// firstError surfaces scenario or comparison failures as a non-zero exit
// (a TrojanLikely verdict is a finding, not a failure).
func firstError(reports []*offramps.SuiteReport) error {
	for _, rep := range reports {
		for _, r := range rep.Results {
			if r.Err != nil {
				return fmt.Errorf("suite %s: scenario %s: %w", rep.Suite, r.Name, r.Err)
			}
		}
		for _, c := range rep.Comparisons {
			if c.Err != nil {
				return fmt.Errorf("suite %s: compare %s vs %s: %w", rep.Suite, c.Golden, c.Suspect, c.Err)
			}
		}
	}
	return nil
}

// sink opens the output target ("-" = the runner's stdout). The returned
// close func is idempotent, so it can back both a defer (cleanup on
// error) and an explicit flush-and-close whose error is checked.
func sink(path string, stdout io.Writer) (io.Writer, func() error, error) {
	if path == "-" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	var once sync.Once
	var cerr error
	return f, func() error {
		once.Do(func() { cerr = f.Close() })
		return cerr
	}, nil
}

func writeJSON(path string, stdout io.Writer, reports []*offramps.SuiteReport) error {
	w, closer, err := sink(path, stdout)
	if err != nil {
		return err
	}
	defer closer()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Suites []*offramps.SuiteReport `json:"suites"`
	}{reports}); err != nil {
		return err
	}
	return closer()
}

// csvHeader labels both row kinds; comparison rows leave the scenario
// metric columns empty and vice versa.
var csvHeader = []string{
	"kind", "suite", "name", "seed", "golden", "suspect",
	"completed", "aborted", "trojan_likely", "mismatches", "final_mismatches",
	"largest_pct", "duration_s", "windows", "filament_mm", "error",
}

func writeCSV(path string, stdout io.Writer, reports []*offramps.SuiteReport) error {
	w, closer, err := sink(path, stdout)
	if err != nil {
		return err
	}
	defer closer()
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for _, rep := range reports {
		for _, r := range rep.Results {
			row := []string{"scenario", rep.Suite, r.Name, strconv.FormatUint(r.Seed, 10), "", ""}
			if r.Err != nil {
				row = append(row, "", "", "", "", "", "", "", "", "", r.Err.Error())
			} else {
				res := r.Result
				windows := 0
				if res.Recording != nil {
					windows = res.Recording.Len()
				}
				row = append(row,
					strconv.FormatBool(res.Completed),
					strconv.FormatBool(res.Aborted),
					strconv.FormatBool(res.TrojanLikely),
					"", "", "",
					f(res.Duration.Seconds()),
					strconv.Itoa(windows),
					f(res.Quality.TotalFilament),
					"",
				)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		for _, c := range rep.Comparisons {
			row := []string{"compare", rep.Suite, "", "", c.Golden, c.Suspect}
			if c.Err != nil {
				row = append(row, "", "", "", "", "", "", "", "", "", c.Err.Error())
			} else {
				row = append(row,
					"", "",
					strconv.FormatBool(c.Report.TrojanLikely),
					strconv.Itoa(c.Report.NumMismatches),
					strconv.Itoa(len(c.Report.Final)),
					f(c.Report.LargestPercent),
					"", "", "", "",
				)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return closer()
}
