package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"offramps"
)

// Shard merging. Each shard ran a disjoint, hash-keyed slice of one
// suite and wrote either a normal -json report or a -jsonl stream
// containing only its owned scenarios and comparisons. The merge
// re-expands the suite (or grid) to recover the canonical scenario
// order, stitches the shard rows back into that order (StitchReport),
// and re-emits through the same JSON encoder the live path uses
// (EncodeReport) — so the merged report is byte-identical to an
// unsharded run of the same suite and seeds. Rows are carried as raw
// JSON: the merge never re-simulates, re-parses floats, or reorders
// keys. A farm coordinator's journal is a -jsonl stream too, so a
// half-finished distributed sweep merges the same way once complete.

func runMerge(grid bool, seed uint64, paths []string, jsonOut string, stdout io.Writer) error {
	if len(paths) < 2 {
		return fmt.Errorf("-merge needs the spec/grid file followed by at least one shard report or stream")
	}
	suite, err := loadSuite(paths[0], grid)
	if err != nil {
		return err
	}
	if seed != 0 {
		suite.BaseSeed = seed
	}

	results := make(map[string]json.RawMessage)
	compares := make(map[string]json.RawMessage)
	for _, p := range paths[1:] {
		if strings.HasSuffix(p, ".jsonl") {
			err = mergeStream(p, suite, results, compares, stdout)
		} else {
			err = mergeReport(p, suite, results, compares)
		}
		if err != nil {
			return err
		}
	}

	merged, err := offramps.StitchReport(suite, results, compares)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "merged %d shard inputs of suite %s: %d scenarios, %d comparisons\n",
		len(paths)-1, suite.Name, len(merged.Results), len(merged.Comparisons))
	if jsonOut != "" {
		if err := writeJSONDoc(jsonOut, stdout, offramps.RawReportDoc{Suites: []offramps.RawSuiteReport{*merged}}); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	return merged.FirstError()
}

// mergeStream folds one -jsonl shard stream (or farm journal) into the
// row maps. The resume index already drops in-stream duplicate rows
// (deterministic repeats); across files an overlap is still an error —
// two shards claiming one scenario means the shard math was wrong.
func mergeStream(path string, suite *offramps.SuiteSpec, results, compares map[string]json.RawMessage, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("shard stream: %w", err)
	}
	ix, err := offramps.ReadResumeIndex(f, suite.Name)
	f.Close()
	if err != nil {
		return fmt.Errorf("shard stream %s: %w", path, err)
	}
	if err := ix.Validate(suite); err != nil {
		return fmt.Errorf("shard stream %s: %w", path, err)
	}
	if ix.Torn {
		// An interrupted run's tail; the dropped row surfaces as a
		// coverage gap in the stitch if no other input carries it.
		fmt.Fprintf(stdout, "note: %s ends in a torn line (dropped)\n", path)
	}
	for name, raw := range ix.Scenarios {
		if _, dup := results[name]; dup {
			return fmt.Errorf("scenario %q appears in more than one shard input (overlapping shards?)", name)
		}
		results[name] = raw
	}
	for key, raw := range ix.Compares {
		if _, dup := compares[key]; dup {
			parts := strings.Split(key, "\x00")
			return fmt.Errorf("comparison %s vs %s appears in more than one shard input", parts[0], parts[2])
		}
		compares[key] = raw
	}
	return nil
}

// mergeReport folds one -json shard report into the row maps.
func mergeReport(path string, suite *offramps.SuiteSpec, results, compares map[string]json.RawMessage) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("shard report: %w", err)
	}
	var doc offramps.RawReportDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("shard report %s: %w", path, err)
	}
	if len(doc.Suites) != 1 {
		return fmt.Errorf("shard report %s: want exactly one suite, got %d", path, len(doc.Suites))
	}
	rs := doc.Suites[0]
	if rs.Suite != suite.Name {
		return fmt.Errorf("shard report %s is for suite %q, not %q", path, rs.Suite, suite.Name)
	}
	if rs.BaseSeed != suite.BaseSeed {
		return fmt.Errorf("shard report %s ran base seed %d, not %d (same -seed for every shard and the merge)", path, rs.BaseSeed, suite.BaseSeed)
	}
	for _, raw := range rs.Results {
		var head struct{ Name string }
		if err := json.Unmarshal(raw, &head); err != nil || head.Name == "" {
			return fmt.Errorf("shard report %s: unreadable scenario row %s", path, raw)
		}
		if _, dup := results[head.Name]; dup {
			return fmt.Errorf("scenario %q appears in more than one shard input (overlapping shards?)", head.Name)
		}
		results[head.Name] = raw
	}
	for _, raw := range rs.Comparisons {
		var head struct {
			Golden     string `json:"golden"`
			Suspect    string `json:"suspect"`
			GoldenTap  string `json:"goldenTap"`
			SuspectTap string `json:"suspectTap"`
		}
		if err := json.Unmarshal(raw, &head); err != nil || head.Suspect == "" {
			return fmt.Errorf("shard report %s: unreadable comparison row %s", path, raw)
		}
		key := offramps.CompareKey(head.Golden, head.GoldenTap, head.Suspect, head.SuspectTap)
		if _, dup := compares[key]; dup {
			return fmt.Errorf("comparison %s vs %s appears in more than one shard input", head.Golden, head.Suspect)
		}
		compares[key] = raw
	}
	return nil
}
