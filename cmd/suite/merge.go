package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Shard-report merging. Each shard ran a disjoint, hash-keyed slice of
// one suite and wrote a normal -json report containing only its owned
// scenarios and comparisons. The merge re-expands the suite (or grid) to
// recover the canonical scenario order, stitches the shard rows back
// into that order, and re-emits through the same JSON encoder the live
// path uses — so the merged report is byte-identical to an unsharded
// run of the same suite and seeds. Rows are carried as raw JSON: the
// merge never re-simulates, re-parses floats, or reorders keys.

// rawSuite mirrors offramps.SuiteReport field-for-field with opaque
// rows. The tags and field order must match SuiteReport exactly: the
// byte-identity guarantee rests on both paths serializing the same
// shape.
type rawSuite struct {
	Suite       string            `json:"suite"`
	BaseSeed    uint64            `json:"baseSeed"`
	Results     []json.RawMessage `json:"results"`
	Comparisons []json.RawMessage `json:"comparisons,omitempty"`
}

type rawDoc struct {
	Suites []rawSuite `json:"suites"`
}

func runMerge(grid bool, seed uint64, paths []string, jsonOut string, stdout io.Writer) error {
	if len(paths) < 2 {
		return fmt.Errorf("-merge needs the spec/grid file followed by at least one shard report")
	}
	suite, err := loadSuite(paths[0], grid)
	if err != nil {
		return err
	}
	if seed != 0 {
		suite.BaseSeed = seed
	}

	results := make(map[string]json.RawMessage)
	compares := make(map[string]json.RawMessage)
	// Per-tap comparisons of the same scenario pair are distinct entries,
	// so the key carries the taps too.
	cmpKey := func(golden, goldenTap, suspect, suspectTap string) string {
		return golden + "\x00" + goldenTap + "\x00" + suspect + "\x00" + suspectTap
	}
	for _, p := range paths[1:] {
		data, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("shard report: %w", err)
		}
		var doc rawDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("shard report %s: %w", p, err)
		}
		if len(doc.Suites) != 1 {
			return fmt.Errorf("shard report %s: want exactly one suite, got %d", p, len(doc.Suites))
		}
		rs := doc.Suites[0]
		if rs.Suite != suite.Name {
			return fmt.Errorf("shard report %s is for suite %q, not %q", p, rs.Suite, suite.Name)
		}
		if rs.BaseSeed != suite.BaseSeed {
			return fmt.Errorf("shard report %s ran base seed %d, not %d (same -seed for every shard and the merge)", p, rs.BaseSeed, suite.BaseSeed)
		}
		for _, raw := range rs.Results {
			var head struct{ Name string }
			if err := json.Unmarshal(raw, &head); err != nil || head.Name == "" {
				return fmt.Errorf("shard report %s: unreadable scenario row %s", p, raw)
			}
			if _, dup := results[head.Name]; dup {
				return fmt.Errorf("scenario %q appears in more than one shard report (overlapping shards?)", head.Name)
			}
			results[head.Name] = raw
		}
		for _, raw := range rs.Comparisons {
			var head struct {
				Golden     string `json:"golden"`
				Suspect    string `json:"suspect"`
				GoldenTap  string `json:"goldenTap"`
				SuspectTap string `json:"suspectTap"`
			}
			if err := json.Unmarshal(raw, &head); err != nil || head.Suspect == "" {
				return fmt.Errorf("shard report %s: unreadable comparison row %s", p, raw)
			}
			key := cmpKey(head.Golden, head.GoldenTap, head.Suspect, head.SuspectTap)
			if _, dup := compares[key]; dup {
				return fmt.Errorf("comparison %s vs %s appears in more than one shard report", head.Golden, head.Suspect)
			}
			compares[key] = raw
		}
	}

	merged := rawSuite{Suite: suite.Name, BaseSeed: suite.BaseSeed, Results: make([]json.RawMessage, 0, len(suite.Scenarios))}
	for _, sc := range suite.Scenarios {
		raw, ok := results[sc.Name]
		if !ok {
			return fmt.Errorf("scenario %q missing from the shard reports (coverage gap — were all N shards merged?)", sc.Name)
		}
		merged.Results = append(merged.Results, raw)
		delete(results, sc.Name)
	}
	for name := range results {
		return fmt.Errorf("shard reports contain scenario %q that the suite does not (stale shard files?)", name)
	}
	for _, cmp := range suite.Compare {
		key := cmpKey(cmp.Golden, cmp.GoldenTap, cmp.Suspect, cmp.SuspectTap)
		raw, ok := compares[key]
		if !ok {
			return fmt.Errorf("comparison %s vs %s missing from the shard reports", cmp.Golden, cmp.Suspect)
		}
		merged.Comparisons = append(merged.Comparisons, raw)
		delete(compares, key)
	}
	for key := range compares {
		return fmt.Errorf("shard reports contain a comparison the suite does not: %q", key)
	}

	fmt.Fprintf(stdout, "merged %d shard reports of suite %s: %d scenarios, %d comparisons\n",
		len(paths)-1, suite.Name, len(merged.Results), len(merged.Comparisons))
	if jsonOut != "" {
		if err := writeJSONDoc(jsonOut, stdout, rawDoc{Suites: []rawSuite{merged}}); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	return firstMergedError(merged)
}

// firstMergedError mirrors firstError over raw rows, so a merged report
// carrying a scenario or comparison failure exits non-zero exactly like
// the live path.
func firstMergedError(merged rawSuite) error {
	for _, raw := range merged.Results {
		var head struct{ Name, Err string }
		if err := json.Unmarshal(raw, &head); err == nil && head.Err != "" {
			return fmt.Errorf("suite %s: scenario %s: %s", merged.Suite, head.Name, head.Err)
		}
	}
	for _, raw := range merged.Comparisons {
		var head struct {
			Golden  string `json:"golden"`
			Suspect string `json:"suspect"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(raw, &head); err == nil && head.Error != "" {
			return fmt.Errorf("suite %s: compare %s vs %s: %s", merged.Suite, head.Golden, head.Suspect, head.Error)
		}
	}
	return nil
}
