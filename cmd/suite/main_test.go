package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"offramps"
)

// repoRoot walks up from the test's working directory to the module root
// so the committed example specs resolve.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestTapsideExampleSpec executes the committed tap-placement spec file
// end to end — the acceptance scenario for the composable rig topology: a
// RAMPS-side tap detects a board-injected trojan that the paper's
// Arduino-side tap misses.
func TestTapsideExampleSpec(t *testing.T) {
	spec := filepath.Join(repoRoot(t), "examples", "specs", "tapside.json")
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	csvPath := filepath.Join(t.TempDir(), "rows.csv")

	var out strings.Builder
	if err := run([]string{"-json", jsonPath, "-csv", csvPath, spec}, &out); err != nil {
		t.Fatal(err)
	}

	text := out.String()
	if !strings.Contains(text, "compare golden vs arduino-tap [golden-comparator]: no trojan suspected") {
		t.Errorf("arduino-side tap did not stay blind to the board's own trojan:\n%s", text)
	}
	if !strings.Contains(text, "compare golden vs ramps-tap [golden-comparator]: TROJAN LIKELY") {
		t.Errorf("ramps-side tap did not detect the board-injected trojan:\n%s", text)
	}

	// The JSON sink round-trips and carries both verdicts.
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Suites []struct {
			Suite       string `json:"suite"`
			Comparisons []struct {
				Suspect string `json:"suspect"`
				Report  struct {
					TrojanLikely  bool
					NumMismatches int
				} `json:"report"`
			} `json:"comparisons"`
		} `json:"suites"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("JSON sink: %v", err)
	}
	if len(doc.Suites) != 1 || len(doc.Suites[0].Comparisons) != 2 {
		t.Fatalf("JSON sink shape: %+v", doc)
	}
	byName := map[string]bool{}
	for _, c := range doc.Suites[0].Comparisons {
		byName[c.Suspect] = c.Report.TrojanLikely
	}
	if byName["arduino-tap"] {
		t.Error("JSON: arduino-tap flagged")
	}
	if !byName["ramps-tap"] {
		t.Error("JSON: ramps-tap not flagged")
	}

	// The CSV sink has a header plus one row per scenario and comparison.
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	if len(lines) != 1+3+2 {
		t.Errorf("CSV rows = %d, want 6:\n%s", len(lines), csvData)
	}
	if !strings.HasPrefix(lines[0], "kind,suite,name,seed") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestLiveMonitorExampleSpec executes the committed two-wave spec: the
// suspect's golden-monitor detector references the golden scenario's
// capture and aborts the tampered print mid-run.
func TestLiveMonitorExampleSpec(t *testing.T) {
	spec := filepath.Join(repoRoot(t), "examples", "specs", "live_monitor.json")
	var out strings.Builder
	if err := run([]string{spec}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "TROJAN LIKELY (aborted)") {
		t.Errorf("live monitor did not abort the tampered print:\n%s", out.String())
	}
}

// TestAttestationExampleSpec executes the committed self-attestation
// spec end to end — the acceptance scenario for tap-addressable
// detection: a dual-tap attestation detector flags a board-run T2 in a
// single print with no golden reference, while the same run's Arduino-
// side capture passes the paper's golden workflow.
func TestAttestationExampleSpec(t *testing.T) {
	spec := filepath.Join(repoRoot(t), "examples", "specs", "attestation.json")
	var out strings.Builder
	if err := run([]string{spec}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	lines := strings.Split(text, "\n")
	scenarioVerdict := func(name string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, name+" ") {
				return l
			}
		}
		t.Fatalf("scenario %q missing from output:\n%s", name, text)
		return ""
	}
	if l := scenarioVerdict("attested"); !strings.Contains(l, "TROJAN LIKELY") {
		t.Errorf("dual-tap attestation did not flag the board trojan: %q", l)
	}
	if l := scenarioVerdict("clean-attested"); strings.Contains(l, "TROJAN LIKELY") {
		t.Errorf("clean dual-tap attestation false-positived: %q", l)
	}
	if !strings.Contains(text, "compare golden vs attested [golden-comparator]: no trojan suspected") {
		t.Errorf("the trojaned run's arduino-side capture did not pass the paper's golden workflow:\n%s", text)
	}
}

func TestRunRejectsMissingSpec(t *testing.T) {
	var out strings.Builder
	if err := run([]string{filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run([]string{}, &out); err == nil {
		t.Error("empty spec list accepted")
	}
}

// TestGridTableIIExampleSpec runs the committed Table II grid sweep in
// -grid mode: the generator expands the eight Flaw3D cases plus golden
// and clean control, and every tampered print is detected while the
// clean control passes — the paper's Table II from a 30-line grid file.
func TestGridTableIIExampleSpec(t *testing.T) {
	spec := filepath.Join(repoRoot(t), "examples", "specs", "grid_tableii.json")
	var out strings.Builder
	if err := run([]string{"-grid", spec}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for i := 1; i <= 8; i++ {
		want := fmt.Sprintf("compare golden vs flaw3d-%d [golden-comparator]: TROJAN LIKELY", i)
		if !strings.Contains(text, want) {
			t.Errorf("flaw3d case %d not detected:\n%s", i, text)
		}
	}
	if !strings.Contains(text, "compare golden vs clean-control [golden-comparator]: no trojan suspected") {
		t.Errorf("clean control false-positived:\n%s", text)
	}
}

// TestShardMergeByteIdentical is the sharding acceptance test: for base
// seeds 1 and 7, running the grid as four hash-keyed shards and merging
// the per-shard JSON reports yields a file byte-identical to the
// unsharded run's.
func TestShardMergeByteIdentical(t *testing.T) {
	grid := filepath.Join("testdata", "grid_shard.json")
	for _, seed := range []string{"1", "7"} {
		t.Run("seed"+seed, func(t *testing.T) {
			dir := t.TempDir()
			full := filepath.Join(dir, "full.json")
			var out strings.Builder
			if err := run([]string{"-grid", "-seed", seed, "-json", full, grid}, &out); err != nil {
				t.Fatal(err)
			}

			const shards = 4
			mergeArgs := []string{"-grid", "-merge", "-seed", seed, "-json", filepath.Join(dir, "merged.json"), grid}
			for i := 1; i <= shards; i++ {
				shardOut := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
				if err := run([]string{"-grid", "-seed", seed, "-shard", fmt.Sprintf("%d/%d", i, shards), "-json", shardOut, grid}, &out); err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
				mergeArgs = append(mergeArgs, shardOut)
			}
			if err := run(mergeArgs, &out); err != nil {
				t.Fatalf("merge: %v", err)
			}

			want, err := os.ReadFile(full)
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(dir, "merged.json"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("merged report is not byte-identical to the unsharded run\nunsharded: %d bytes\nmerged:    %d bytes", len(want), len(got))
			}
		})
	}
}

// TestMergeFromJSONLStreams: -merge stitches per-shard -jsonl streams —
// no -json intermediate — into the same bytes as the unsharded run, and
// mixed inputs (one shard as a report, one as a stream) merge too.
func TestMergeFromJSONLStreams(t *testing.T) {
	grid := filepath.Join("testdata", "grid_shard.json")
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	var out strings.Builder
	if err := run([]string{"-grid", "-json", full, grid}, &out); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for i := 1; i <= 2; i++ {
		if err := run([]string{"-grid", "-shard", fmt.Sprintf("%d/2", i),
			"-jsonl", filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i)),
			"-json", filepath.Join(dir, fmt.Sprintf("shard%d.json", i)), grid}, &out); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}

	merged := filepath.Join(dir, "merged.json")
	if err := run([]string{"-grid", "-merge", "-json", merged, grid,
		filepath.Join(dir, "shard1.jsonl"), filepath.Join(dir, "shard2.jsonl")}, &out); err != nil {
		t.Fatalf("stream merge: %v", err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("stream-merged report is not byte-identical to the unsharded run")
	}

	if err := run([]string{"-grid", "-merge", "-json", merged, grid,
		filepath.Join(dir, "shard1.json"), filepath.Join(dir, "shard2.jsonl")}, &out); err != nil {
		t.Fatalf("mixed merge: %v", err)
	}
	if got, err = os.ReadFile(merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("mixed-input merge is not byte-identical to the unsharded run")
	}
}

// TestMergeDetectsCoverageGap: merging fewer shards than the sweep needs
// must fail loudly, not emit a silently incomplete report.
func TestMergeDetectsCoverageGap(t *testing.T) {
	grid := filepath.Join("testdata", "grid_shard.json")
	dir := t.TempDir()
	var out strings.Builder
	shard1 := filepath.Join(dir, "shard1.json")
	if err := run([]string{"-grid", "-shard", "1/4", "-json", shard1, grid}, &out); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-grid", "-merge", "-json", filepath.Join(dir, "merged.json"), grid, shard1}, &out)
	if err == nil || !strings.Contains(err.Error(), "coverage gap") {
		t.Errorf("partial merge accepted: %v", err)
	}
	// Merging the same shard twice is an overlap, not coverage.
	err = run([]string{"-grid", "-merge", "-json", filepath.Join(dir, "merged.json"), grid, shard1, shard1}, &out)
	if err == nil || !strings.Contains(err.Error(), "more than one shard") {
		t.Errorf("overlapping merge accepted: %v", err)
	}
}

// TestShardFlagValidation covers the CLI-level shard/merge guards.
func TestShardFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-shard", "9/4", filepath.Join("testdata", "grid_shard.json")}, &out); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run([]string{"-shard", "1/4", "-merge", "x.json", "y.json"}, &out); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-shard with -merge accepted: %v", err)
	}
	if err := run([]string{"-merge", "onlyspec.json"}, &out); err == nil {
		t.Error("merge without shard reports accepted")
	}
	if err := run([]string{"-merge", "-csv", "rows.csv", "x.json", "y.json"}, &out); err == nil || !strings.Contains(err.Error(), "not supported with -merge") {
		t.Errorf("-merge with -csv accepted: %v", err)
	}
	if err := run([]string{"-merge", "-progress", "x.json", "y.json"}, &out); err == nil || !strings.Contains(err.Error(), "not supported with -merge") {
		t.Errorf("-merge with -progress accepted: %v", err)
	}
}

// TestShardedJSONLStreamsOwnedOnly: helper goldens execute in several
// shards, but the concatenated per-shard JSONL streams must carry each
// scenario — and each comparison — exactly once, matching the merged
// report.
func TestShardedJSONLStreamsOwnedOnly(t *testing.T) {
	grid := filepath.Join("testdata", "grid_shard.json")
	dir := t.TempDir()
	scenarios := map[string]int{}
	compares := map[string]int{}
	for i := 1; i <= 2; i++ {
		rows := filepath.Join(dir, fmt.Sprintf("rows%d.jsonl", i))
		var out strings.Builder
		if err := run([]string{"-grid", "-shard", fmt.Sprintf("%d/2", i), "-jsonl", rows, grid}, &out); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		data, err := os.ReadFile(rows)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			row, err := offramps.ParseStreamRow([]byte(line))
			if err != nil {
				t.Fatalf("bad row %q: %v", line, err)
			}
			if row.Name != "" {
				scenarios[row.Name]++
			} else {
				compares[row.Key]++
			}
		}
	}
	if len(scenarios) != 5 {
		t.Errorf("distinct scenarios streamed = %d, want 5", len(scenarios))
	}
	for name, n := range scenarios {
		if n != 1 {
			t.Errorf("scenario %q streamed %d times across shards", name, n)
		}
	}
	for key, n := range compares {
		if n != 1 {
			t.Errorf("comparison %q streamed %d times across shards", key, n)
		}
	}
}

// TestMergePerTapComparisons: two comparisons of the same scenario pair
// that differ only in tap (the attestation-style §V-D pattern) must
// survive the shard→merge round trip as distinct rows, byte-identical
// to the unsharded report.
func TestMergePerTapComparisons(t *testing.T) {
	spec := filepath.Join("testdata", "pertap_compare.json")
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	var out strings.Builder
	if err := run([]string{"-json", full, spec}, &out); err != nil {
		t.Fatal(err)
	}
	mergeArgs := []string{"-merge", "-json", filepath.Join(dir, "merged.json"), spec}
	for i := 1; i <= 2; i++ {
		shardOut := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		if err := run([]string{"-shard", fmt.Sprintf("%d/2", i), "-json", shardOut, spec}, &out); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		mergeArgs = append(mergeArgs, shardOut)
	}
	if err := run(mergeArgs, &out); err != nil {
		t.Fatalf("merge: %v", err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("per-tap merged report differs from the unsharded run")
	}
	if !strings.Contains(string(want), `"suspectTap": "ramps"`) {
		t.Errorf("comparison rows do not carry their tap:\n%s", want)
	}
}

// TestGoldenStoreWarmRerun is the persistent-store acceptance test at
// the command level: a cold invocation populates -golden-store, a second
// invocation (fresh process state: new cache, reopened store) replays
// the suite with zero golden simulations, and the two JSON reports are
// byte-identical.
func TestGoldenStoreWarmRerun(t *testing.T) {
	spec := filepath.Join(repoRoot(t), "examples", "specs", "tapside.json")
	tmp := t.TempDir()
	storeDir := filepath.Join(tmp, "goldens")
	coldJSON := filepath.Join(tmp, "cold.json")
	warmJSON := filepath.Join(tmp, "warm.json")

	var coldOut strings.Builder
	if err := run([]string{"-golden-store", storeDir, "-json", coldJSON, spec}, &coldOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldOut.String(), "golden store: 0 hits, 1 misses, 1 simulations") {
		t.Errorf("cold run stats missing or wrong:\n%s", coldOut.String())
	}

	var warmOut strings.Builder
	if err := run([]string{"-golden-store", storeDir, "-json", warmJSON, spec}, &warmOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warmOut.String(), "golden store: 1 hits, 0 misses, 0 simulations") {
		t.Errorf("warm run still simulating goldens:\n%s", warmOut.String())
	}

	cold, err := os.ReadFile(coldJSON)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := os.ReadFile(warmJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm report differs from cold report")
	}
}
