package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the test's working directory to the module root
// so the committed example specs resolve.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestTapsideExampleSpec executes the committed tap-placement spec file
// end to end — the acceptance scenario for the composable rig topology: a
// RAMPS-side tap detects a board-injected trojan that the paper's
// Arduino-side tap misses.
func TestTapsideExampleSpec(t *testing.T) {
	spec := filepath.Join(repoRoot(t), "examples", "specs", "tapside.json")
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	csvPath := filepath.Join(t.TempDir(), "rows.csv")

	var out strings.Builder
	if err := run([]string{"-json", jsonPath, "-csv", csvPath, spec}, &out); err != nil {
		t.Fatal(err)
	}

	text := out.String()
	if !strings.Contains(text, "compare golden vs arduino-tap [golden-comparator]: no trojan suspected") {
		t.Errorf("arduino-side tap did not stay blind to the board's own trojan:\n%s", text)
	}
	if !strings.Contains(text, "compare golden vs ramps-tap [golden-comparator]: TROJAN LIKELY") {
		t.Errorf("ramps-side tap did not detect the board-injected trojan:\n%s", text)
	}

	// The JSON sink round-trips and carries both verdicts.
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Suites []struct {
			Suite       string `json:"suite"`
			Comparisons []struct {
				Suspect string `json:"suspect"`
				Report  struct {
					TrojanLikely  bool
					NumMismatches int
				} `json:"report"`
			} `json:"comparisons"`
		} `json:"suites"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("JSON sink: %v", err)
	}
	if len(doc.Suites) != 1 || len(doc.Suites[0].Comparisons) != 2 {
		t.Fatalf("JSON sink shape: %+v", doc)
	}
	byName := map[string]bool{}
	for _, c := range doc.Suites[0].Comparisons {
		byName[c.Suspect] = c.Report.TrojanLikely
	}
	if byName["arduino-tap"] {
		t.Error("JSON: arduino-tap flagged")
	}
	if !byName["ramps-tap"] {
		t.Error("JSON: ramps-tap not flagged")
	}

	// The CSV sink has a header plus one row per scenario and comparison.
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	if len(lines) != 1+3+2 {
		t.Errorf("CSV rows = %d, want 6:\n%s", len(lines), csvData)
	}
	if !strings.HasPrefix(lines[0], "kind,suite,name,seed") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestLiveMonitorExampleSpec executes the committed two-wave spec: the
// suspect's golden-monitor detector references the golden scenario's
// capture and aborts the tampered print mid-run.
func TestLiveMonitorExampleSpec(t *testing.T) {
	spec := filepath.Join(repoRoot(t), "examples", "specs", "live_monitor.json")
	var out strings.Builder
	if err := run([]string{spec}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "TROJAN LIKELY (aborted)") {
		t.Errorf("live monitor did not abort the tampered print:\n%s", out.String())
	}
}

// TestAttestationExampleSpec executes the committed self-attestation
// spec end to end — the acceptance scenario for tap-addressable
// detection: a dual-tap attestation detector flags a board-run T2 in a
// single print with no golden reference, while the same run's Arduino-
// side capture passes the paper's golden workflow.
func TestAttestationExampleSpec(t *testing.T) {
	spec := filepath.Join(repoRoot(t), "examples", "specs", "attestation.json")
	var out strings.Builder
	if err := run([]string{spec}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	lines := strings.Split(text, "\n")
	scenarioVerdict := func(name string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, name+" ") {
				return l
			}
		}
		t.Fatalf("scenario %q missing from output:\n%s", name, text)
		return ""
	}
	if l := scenarioVerdict("attested"); !strings.Contains(l, "TROJAN LIKELY") {
		t.Errorf("dual-tap attestation did not flag the board trojan: %q", l)
	}
	if l := scenarioVerdict("clean-attested"); strings.Contains(l, "TROJAN LIKELY") {
		t.Errorf("clean dual-tap attestation false-positived: %q", l)
	}
	if !strings.Contains(text, "compare golden vs attested [golden-comparator]: no trojan suspected") {
		t.Errorf("the trojaned run's arduino-side capture did not pass the paper's golden workflow:\n%s", text)
	}
}

func TestRunRejectsMissingSpec(t *testing.T) {
	var out strings.Builder
	if err := run([]string{filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run([]string{}, &out); err == nil {
		t.Error("empty spec list accepted")
	}
}
