// Command coordinator serves one resumable sweep to a fleet of
// stateless workers. It expands a suite or grid spec into a work queue
// of scenario names, hands out heartbeat-guarded leases over HTTP (see
// internal/farm), journals every completed row to a JSONL file, and —
// once every scenario is in — stitches the rows into a report
// byte-identical to an uninterrupted single-process `suite` run.
//
// Usage:
//
//	coordinator -json merged.json spec.json
//	coordinator -grid -journal sweep.jsonl -json merged.json grid_tableii.json
//	coordinator -addr 127.0.0.1:7333 -ttl 30s -journal sweep.jsonl grid.json
//
// Kill it mid-sweep and start it again with the same -journal: it reads
// the journal back (tolerating the torn trailing line a crash leaves),
// re-queues only the missing scenarios, and the workers carry on. The
// journal is the same row format `suite -jsonl` writes, so
// `suite -merge` can also stitch it directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"offramps"
	"offramps/internal/farm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("coordinator", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:0", "listen `address` (port 0 = pick a free port)")
		addrFile = fs.String("addr-file", "", "write the bound address to `file` once listening (for scripts that used port 0)")
		grid     = fs.Bool("grid", false, "treat the spec file as a parameter-grid sweep and expand it first (grid_*.json auto-detects)")
		seed     = fs.Uint64("seed", 0, "override the suite's base seed (0 = use the spec's)")
		ttl      = fs.Duration("ttl", 30*time.Second, "lease heartbeat window; a worker silent this long loses its scenario")
		journal  = fs.String("journal", "", "append completed rows to this JSONL `file` and resume from it on restart")
		jsonOut  = fs.String("json", "", "write the final stitched report as JSON to `file` (\"-\" = stdout)")
		linger   = fs.Duration("linger", 2*time.Second, "keep serving this long after the sweep completes, so polling workers see \"done\" and exit")
		progress = fs.Bool("progress", false, "print a line per accepted completion")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("want exactly one spec file, got %d", fs.NArg())
	}
	path := fs.Arg(0)

	spec, err := offramps.LoadSuiteOrGrid(path, *grid)
	if err != nil {
		return err
	}
	if *seed != 0 {
		spec.BaseSeed = *seed
	}

	co, err := farm.NewCoordinator(spec, *ttl, *journal)
	if err != nil {
		return err
	}
	defer co.Close()
	if *progress {
		co.Progress = stdout
	}
	if n := co.Resumed(); n > 0 {
		fmt.Fprintf(stdout, "resumed %d of %d scenarios from %s\n", n, len(spec.Scenarios), *journal)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "suite %q: %d scenarios on http://%s\n", spec.Name, len(spec.Scenarios), ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("addr-file: %w", err)
		}
	}
	srv := &http.Server{Handler: co.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case <-co.Done():
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	}
	// Workers poll; give their next lease request a chance to see "done"
	// before the listener goes away.
	time.Sleep(*linger)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)

	rep, err := co.Report()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sweep complete: %d scenarios, %d comparisons\n", len(rep.Results), len(rep.Comparisons))
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, stdout, rep); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	if err := co.Close(); err != nil {
		return err
	}
	return rep.FirstError()
}

// writeReport writes the {"suites":[...]} document `suite -json` writes,
// through the same encoder, so the bytes match a local run's exactly.
func writeReport(path string, stdout io.Writer, rep *offramps.RawSuiteReport) error {
	doc := offramps.RawReportDoc{Suites: []offramps.RawSuiteReport{*rep}}
	if path == "-" {
		return offramps.EncodeReport(stdout, doc)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := offramps.EncodeReport(f, doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
