// Command coordinator serves one resumable sweep to a fleet of
// stateless workers. It expands a suite or grid spec into a work queue
// of scenario names, hands out heartbeat-guarded leases over HTTP (see
// internal/farm), journals every completed row to a JSONL file, and —
// once every scenario is in — stitches the rows into a report
// byte-identical to an uninterrupted single-process `suite` run.
//
// Usage:
//
//	coordinator -json merged.json spec.json
//	coordinator -grid -journal sweep.jsonl -json merged.json grid_tableii.json
//	coordinator -addr 127.0.0.1:7333 -ttl 30s -strikes 3 -fsync 1 grid.json
//	coordinator -progressive -scenario-budget 14 -earlystop 2 grid_sweep.json
//
// -progressive feeds the lease queue from the progressive scheduler
// (internal/sched) instead of naive suite order: workers receive one
// round at a time — coverage first, then boundary-guided refinement —
// and scenarios the scheduler retires are journaled as synthesized
// "skipped (...)" rows. The queue is reordered, never re-keyed, so
// journals, resume, quarantine, and stitching work unchanged; a resumed
// progressive sweep must be restarted with the same -progressive,
// -scenario-budget, and -earlystop it began with.
//
// Kill it mid-sweep and start it again with the same -journal: it reads
// the journal back (tolerating the torn trailing line a crash leaves,
// and compacting the file if the crash left dead rows), re-queues only
// the missing scenarios, and the workers carry on. The journal is the
// same row format `suite -jsonl` writes, so `suite -merge` can also
// stitch it directly.
//
// SIGTERM/SIGINT drains instead of dying: no new leases are dealt
// (workers see "drain" and exit), in-flight scenarios get their
// heartbeats and completions honoured, then the journal is flushed and
// closed so the sweep resumes cleanly on the next start.
//
// A scenario failed or abandoned by -strikes distinct leases is
// quarantined: parked out of the queue, listed in /v1/status, and
// reported as an error row in the stitched report — graceful
// degradation instead of a livelocked sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"offramps"
	"offramps/internal/farm"
	"offramps/internal/sched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("coordinator", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:0", "listen `address` (port 0 = pick a free port)")
		addrFile = fs.String("addr-file", "", "write the bound address to `file` once listening (for scripts that used port 0)")
		grid     = fs.Bool("grid", false, "treat the spec file as a parameter-grid sweep and expand it first (grid_*.json auto-detects)")
		seed     = fs.Uint64("seed", 0, "override the suite's base seed (0 = use the spec's)")
		ttl      = fs.Duration("ttl", 30*time.Second, "lease heartbeat window; a worker silent this long loses its scenario")
		strikes  = fs.Int("strikes", 3, "quarantine a scenario after this many failed/abandoned leases (0 = never)")
		journal  = fs.String("journal", "", "append completed rows to this JSONL `file` and resume from it on restart")
		fsync    = fs.Int("fsync", 1, "fsync the journal every `n` accepted completions (0 = leave flushing to the OS)")
		jsonOut  = fs.String("json", "", "write the final stitched report as JSON to `file` (\"-\" = stdout)")
		linger   = fs.Duration("linger", 2*time.Second, "keep serving this long after the sweep completes, so polling workers see \"done\" and exit")
		progress = fs.Bool("progress", false, "print a line per accepted completion")
		prog     = fs.Bool("progressive", false, "feed the lease queue from the progressive scheduler (grid specs only)")
		budget   = fs.Int("scenario-budget", 0, "progressive: target number of executed scenarios, coverage included (0 = unlimited)")
		early    = fs.Int("earlystop", 0, "progressive: retire a cell once its first `k` seeds agree on a verdict (0 = never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("want exactly one spec file, got %d", fs.NArg())
	}
	path := fs.Arg(0)

	if (*budget != 0 || *early != 0) && !*prog {
		return fmt.Errorf("-scenario-budget and -earlystop require -progressive")
	}
	var spec *offramps.SuiteSpec
	var layout *sched.Grid
	var err error
	if *prog {
		spec, layout, err = offramps.LoadSuiteOrGridLayout(path, *grid)
	} else {
		spec, err = offramps.LoadSuiteOrGrid(path, *grid)
	}
	if err != nil {
		return err
	}
	if *seed != 0 {
		spec.BaseSeed = *seed
	}

	cfg := farm.Config{
		TTL:        *ttl,
		Journal:    *journal,
		SyncEvery:  *fsync,
		MaxStrikes: *strikes,
	}
	if layout != nil {
		cfg.Progressive = &farm.Progressive{
			Layout: layout,
			Sched:  sched.Config{Budget: *budget, EarlyStopK: *early},
		}
	}
	co, err := farm.NewCoordinator(spec, cfg)
	if err != nil {
		return err
	}
	defer co.Close()
	if *progress {
		co.Progress = stdout
	}
	if n := co.Resumed(); n > 0 {
		fmt.Fprintf(stdout, "resumed %d of %d scenarios from %s\n", n, len(spec.Scenarios), *journal)
	}
	if n := co.Compacted(); n > 0 {
		fmt.Fprintf(stdout, "compacted %s: dropped %d dead row(s)\n", *journal, n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "suite %q: %d scenarios on http://%s\n", spec.Name, len(spec.Scenarios), ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("addr-file: %w", err)
		}
	}
	srv := &http.Server{Handler: co.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case <-co.Done():
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-sigCtx.Done():
		stop() // a second signal kills hard
		return drain(co, srv, *ttl, *journal, stdout)
	}
	// Workers poll; give their next lease request a chance to see "done"
	// before the listener goes away.
	time.Sleep(*linger)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)

	rep, err := co.Report()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sweep complete: %d scenarios, %d comparisons\n", len(rep.Results), len(rep.Comparisons))
	if st, ok := co.SweepStats(); ok {
		fmt.Fprintln(stdout, st.Summary())
	}
	for _, q := range co.Quarantined() {
		fmt.Fprintf(stdout, "quarantined: %s (%d strikes; last: %s)\n", q.Scenario, q.Strikes, q.Reason)
	}
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, stdout, rep); err != nil {
			return fmt.Errorf("json: %w", err)
		}
	}
	if err := co.Close(); err != nil {
		return err
	}
	return rep.FirstError()
}

// drain is the SIGTERM path: stop dealing leases, let in-flight
// scenarios complete (bounded by one TTL — a worker silent that long
// has lost its lease anyway), then flush and close the journal. The
// sweep stays incomplete on purpose; the journal resumes it.
func drain(co *farm.Coordinator, srv *http.Server, ttl time.Duration, journal string, stdout io.Writer) error {
	fmt.Fprintln(stdout, "draining: no new leases; waiting for in-flight scenarios")
	co.Drain()
	deadline := time.Now().Add(ttl + time.Second)
	for {
		_, leased, _, _, _ := co.Counts()
		if leased == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	if err := co.Close(); err != nil {
		return err
	}
	_, leased, done, quarantined, total := co.Counts()
	fmt.Fprintf(stdout, "drained: %d/%d scenarios done (%d quarantined, %d still leased)\n", done, total, quarantined, leased)
	if journal != "" {
		fmt.Fprintf(stdout, "resume with the same -journal %s\n", journal)
	}
	return nil
}

// writeReport writes the {"suites":[...]} document `suite -json` writes,
// through the same encoder, so the bytes match a local run's exactly.
func writeReport(path string, stdout io.Writer, rep *offramps.RawSuiteReport) error {
	doc := offramps.RawReportDoc{Suites: []offramps.RawSuiteReport{*rep}}
	if path == "-" {
		return offramps.EncodeReport(stdout, doc)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := offramps.EncodeReport(f, doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
