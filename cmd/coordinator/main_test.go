package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"offramps"
	"offramps/internal/farm"
)

const testGrid = `{
  "name": "coord-grid",
  "baseSeed": 1,
  "extra": [{"name": "golden"}],
  "axes": {"trojans": [{"label": "clean"}, {"name": "T2"}]},
  "seedPolicy": {"deltaStart": 10},
  "compareWith": "golden"
}`

func TestFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("no spec file accepted")
	}
	if err := run([]string{"a.json", "b.json"}, &out); err == nil {
		t.Error("two spec files accepted")
	}
	if err := run([]string{"does-not-exist.json"}, &out); err == nil {
		t.Error("missing spec file accepted")
	}
}

// TestCoordinatorEndToEnd drives the real command: a port-0 coordinator
// announced via -addr-file, drained by two in-process workers, must
// write the exact bytes of an uninterrupted local run.
func TestCoordinatorEndToEnd(t *testing.T) {
	dir := t.TempDir()
	grid := filepath.Join(dir, "grid_coord.json")
	if err := os.WriteFile(grid, []byte(testGrid), 0o644); err != nil {
		t.Fatal(err)
	}

	// Local reference bytes.
	spec, err := offramps.LoadSuiteOrGrid(grid, true)
	if err != nil {
		t.Fatal(err)
	}
	c := offramps.Campaign{Cache: offramps.NewGoldenCache()}
	rep, err := c.RunSuite(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := offramps.EncodeReport(&want, struct {
		Suites []*offramps.SuiteReport `json:"suites"`
	}{[]*offramps.SuiteReport{rep}}); err != nil {
		t.Fatal(err)
	}

	addrFile := filepath.Join(dir, "addr")
	jsonOut := filepath.Join(dir, "merged.json")
	var coOut strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-grid", "-journal", filepath.Join(dir, "sweep.jsonl"),
			"-json", jsonOut, "-linger", "50ms", "-progress", grid,
		}, &coOut)
	}()

	var addr string
	for i := 0; i < 200; i++ {
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("coordinator never wrote its address")
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &farm.Worker{
				Client: &farm.Client{Base: "http://" + addr},
				Name:   fmt.Sprintf("w%d", i),
				Poll:   5 * time.Millisecond,
			}
			if _, err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("coordinator: %v\n%s", err, coOut.String())
	}

	got, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("coordinator report is not byte-identical to the local run")
	}
	if !strings.Contains(coOut.String(), "sweep complete") {
		t.Errorf("missing completion line:\n%s", coOut.String())
	}
}
