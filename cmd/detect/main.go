// Command detect compares a captured pulse profile against a golden
// reference and prints the paper's Figure 4c report — the Go port of the
// paper's Python detection script (§V-C).
//
// Usage:
//
//	detect -golden golden.csv -capture print.csv
//	detect -golden golden.csv -capture print.csv -margin 0.03
//	detect -golden-free -capture print.csv          # physics rules only
//
// The -golden-free mode needs no reference capture: it checks the
// machine-physics plausibility rules (build volume, step rate, retraction
// depth, stationary extrusion) from the §VI future-work extension.
//
// Exit status: 0 = no trojan suspected, 2 = trojan likely, 1 = error.
package main

import (
	"flag"
	"fmt"
	"os"

	"offramps/internal/capture"
	"offramps/internal/detect"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "detect:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	var (
		goldenPath = fs.String("golden", "", "golden capture CSV (required unless -golden-free)")
		printPath  = fs.String("capture", "", "suspect capture CSV (required)")
		margin     = fs.Float64("margin", 0.05, "per-window margin of error (paper: 0.05)")
		maxShown   = fs.Int("max-shown", 64, "cap on mismatch lines printed")
		goldenFree = fs.Bool("golden-free", false, "use machine-physics rules instead of a golden capture")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *printPath == "" {
		return 1, fmt.Errorf("-capture is required")
	}
	if *goldenFree {
		suspect, err := readCapture(*printPath)
		if err != nil {
			return 1, fmt.Errorf("capture: %w", err)
		}
		report, err := detect.CheckGoldenFree(suspect, detect.DefaultLimits())
		if err != nil {
			return 1, err
		}
		fmt.Print(report.Format())
		if report.TrojanLikely {
			return 2, nil
		}
		return 0, nil
	}
	if *goldenPath == "" {
		return 1, fmt.Errorf("-golden is required (or use -golden-free)")
	}

	golden, err := readCapture(*goldenPath)
	if err != nil {
		return 1, fmt.Errorf("golden: %w", err)
	}
	suspect, err := readCapture(*printPath)
	if err != nil {
		return 1, fmt.Errorf("capture: %w", err)
	}

	cfg := detect.DefaultConfig()
	cfg.Margin = *margin
	cfg.MaxReported = *maxShown
	report, err := detect.Compare(golden, suspect, cfg)
	if err != nil {
		return 1, err
	}
	fmt.Print(report.Format())
	if report.TrojanLikely {
		return 2, nil
	}
	return 0, nil
}

func readCapture(path string) (*capture.Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return capture.ReadCSV(f)
}
