// Command detect replays a captured pulse profile through the detection
// stack and prints the paper's Figure 4c report — the Go port of the
// paper's Python detection script (§V-C), rebuilt on the pluggable
// detect.Detector interface.
//
// Usage:
//
//	detect -golden golden.csv -capture print.csv
//	detect -golden golden.csv -capture print.csv -margin 0.03
//	detect -golden-free -capture print.csv          # physics rules only
//	detect -golden golden.csv -golden-free -capture print.csv -vote any
//
// The -golden-free mode needs no reference capture: it checks the
// machine-physics plausibility rules (build volume, step rate, retraction
// depth, stationary extrusion) from the §VI future-work extension. Giving
// both -golden and -golden-free runs them as an ensemble combined under
// -vote (any = either flags, all = both must flag).
//
// Exit status: 0 = no trojan suspected, 2 = trojan likely, 1 = error.
package main

import (
	"flag"
	"fmt"
	"os"

	"offramps/internal/capture"
	"offramps/internal/detect"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "detect:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	var (
		goldenPath = fs.String("golden", "", "golden capture CSV (required unless -golden-free)")
		printPath  = fs.String("capture", "", "suspect capture CSV (required)")
		margin     = fs.Float64("margin", 0.05, "per-window margin of error (paper: 0.05)")
		maxShown   = fs.Int("max-shown", 64, "cap on mismatch lines printed")
		goldenFree = fs.Bool("golden-free", false, "use the machine-physics rule engine")
		vote       = fs.String("vote", "any", "ensemble rule when combining detectors: any | all")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *printPath == "" {
		return 1, fmt.Errorf("-capture is required")
	}
	if *goldenPath == "" && !*goldenFree {
		return 1, fmt.Errorf("-golden is required (or use -golden-free)")
	}
	rule := detect.VoteAny
	switch *vote {
	case "any":
	case "all":
		rule = detect.VoteAll
	default:
		return 1, fmt.Errorf("-vote must be any or all, got %q", *vote)
	}

	var detectors []detect.Detector
	if *goldenPath != "" {
		golden, err := readCapture(*goldenPath)
		if err != nil {
			return 1, fmt.Errorf("golden: %w", err)
		}
		cfg := detect.DefaultConfig()
		cfg.Margin = *margin
		cfg.MaxReported = *maxShown
		comparator, err := detect.NewComparator(golden, cfg)
		if err != nil {
			return 1, err
		}
		detectors = append(detectors, comparator)
	}
	if *goldenFree {
		engine, err := detect.NewRuleEngine(detect.DefaultLimits())
		if err != nil {
			return 1, err
		}
		detectors = append(detectors, engine)
	}

	d := detectors[0]
	if len(detectors) > 1 {
		var err error
		if d, err = detect.NewEnsemble(rule, detectors...); err != nil {
			return 1, err
		}
	}

	suspect, err := readCapture(*printPath)
	if err != nil {
		return 1, fmt.Errorf("capture: %w", err)
	}
	if suspect.Len() == 0 && *goldenPath == "" {
		// The rule engine has nothing to judge an empty stream against; a
		// golden detector treats one as a divergence in itself, so with a
		// reference present the verdict (exit 2) is the right answer.
		return 1, fmt.Errorf("capture: %s contains no transactions", *printPath)
	}
	report, err := detect.Replay(suspect, d)
	if err != nil {
		return 1, err
	}
	fmt.Print(report.Format())
	if report.TrojanLikely {
		return 2, nil
	}
	return 0, nil
}

func readCapture(path string) (*capture.Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return capture.ReadCSV(f)
}
