package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCSV(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goldenCSV = `Index, X, Y, Z, E
0, 1000, 1200, 80, 500
1, 2000, 2400, 80, 1000
2, 3000, 3600, 80, 1500
`

func TestRunCleanPair(t *testing.T) {
	g := writeCSV(t, "g.csv", goldenCSV)
	s := writeCSV(t, "s.csv", goldenCSV)
	code, err := run([]string{"-golden", g, "-capture", s})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

func TestRunTrojanPair(t *testing.T) {
	g := writeCSV(t, "g.csv", goldenCSV)
	s := writeCSV(t, "s.csv", `Index, X, Y, Z, E
0, 1000, 1200, 80, 500
1, 2000, 2400, 80, 700
2, 3000, 3600, 80, 900
`)
	code, err := run([]string{"-golden", g, "-capture", s})
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit = %d, want 2 (trojan likely)", code)
	}
}

func TestRunGoldenFreeMode(t *testing.T) {
	s := writeCSV(t, "s.csv", goldenCSV)
	code, err := run([]string{"-golden-free", "-capture", s})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("clean golden-free exit = %d", code)
	}
	bad := writeCSV(t, "bad.csv", `Index, X, Y, Z, E
0, 1000, 1200, 80, 500
1, 99000, 1200, 80, 1000
`)
	code, err = run([]string{"-golden-free", "-capture", bad})
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("out-of-volume golden-free exit = %d, want 2", code)
	}
}

func TestRunArgumentErrors(t *testing.T) {
	g := writeCSV(t, "g.csv", goldenCSV)
	if _, err := run([]string{"-golden", g}); err == nil {
		t.Error("missing -capture accepted")
	}
	if _, err := run([]string{"-capture", g}); err == nil {
		t.Error("missing -golden accepted")
	}
	if _, err := run([]string{"-golden", "/nope", "-capture", g}); err == nil {
		t.Error("missing golden file accepted")
	}
	bad := writeCSV(t, "bad.csv", "not a capture\n")
	if _, err := run([]string{"-golden", bad, "-capture", g}); err == nil {
		t.Error("malformed golden accepted")
	}
}
