package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"offramps"
	"offramps/internal/farm"
)

func TestFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil || !strings.Contains(err.Error(), "-coordinator is required") {
		t.Errorf("missing -coordinator accepted: %v", err)
	}
	if err := run([]string{"-coordinator", "http://x", "stray.json"}, &out); err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("positional args accepted: %v", err)
	}
}

// TestWorkerEndToEnd: the real command against an in-process
// coordinator drains the whole sweep and reports it.
func TestWorkerEndToEnd(t *testing.T) {
	grid := filepath.Join(t.TempDir(), "grid_worker.json")
	if err := os.WriteFile(grid, []byte(`{
  "name": "worker-grid",
  "baseSeed": 1,
  "extra": [{"name": "golden"}],
  "axes": {"trojans": [{"label": "clean"}, {"name": "T2"}]},
  "seedPolicy": {"deltaStart": 10},
  "compareWith": "golden"
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := offramps.LoadSuiteOrGrid(grid, true)
	if err != nil {
		t.Fatal(err)
	}
	co, err := farm.NewCoordinator(spec, farm.Config{TTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	var out strings.Builder
	if err := run([]string{"-coordinator", srv.URL, "-name", "t1", "-poll", "5ms"}, &out); err != nil {
		t.Fatalf("worker: %v\n%s", err, out.String())
	}
	select {
	case <-co.Done():
	default:
		t.Error("worker exited but the sweep is not done")
	}
	if _, _, done, _, total := co.Counts(); done != total {
		t.Errorf("done = %d, total = %d", done, total)
	}
	if !strings.Contains(out.String(), "exiting after") {
		t.Errorf("missing exit line:\n%s", out.String())
	}
}
