// Command worker joins a coordinator's sweep (see cmd/coordinator and
// internal/farm): it fetches the suite once, then leases scenario names,
// runs each lease's sub-suite (the owned scenario plus its helper golden
// runs, recovered via SuiteSpec.Subset) through the ordinary campaign
// path, and streams the JSONL rows back. Workers are stateless — all
// they accumulate is a golden cache — so they can be killed, added, and
// restarted freely at any point in the sweep.
//
// Usage:
//
//	worker -coordinator http://127.0.0.1:7333
//	worker -coordinator http://host:7333 -name rig2 -poll 250ms
//	worker -coordinator http://host:7333 -max 5   # drain 5 leases, then exit
//	worker -coordinator http://host:7333 -golden-store /shared/goldens
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"offramps"
	"offramps/internal/farm"
	"offramps/internal/goldenstore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	var (
		coord   = fs.String("coordinator", "", "coordinator base `URL`, e.g. http://127.0.0.1:7333 (required)")
		name    = fs.String("name", "", "worker name shown in coordinator status (default host-pid)")
		dir     = fs.String("dir", ".", "directory resolving the suite's relative program references")
		poll    = fs.Duration("poll", 500*time.Millisecond, "wait between lease polls while the queue is empty")
		retries = fs.Int("retries", 10, "consecutive transport failures tolerated before giving up")
		max     = fs.Int("max", 0, "exit after completing this many scenarios (0 = run until the sweep is done)")
		store   = fs.String("golden-store", "", "persist golden runs in `dir`, shared across workers and restarts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v (the suite comes from the coordinator)", fs.Args())
	}
	if *coord == "" {
		fs.Usage()
		return fmt.Errorf("-coordinator is required")
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	// A restarted worker loses its in-memory goldens; -golden-store lets
	// it warm back up from disk instead of re-simulating, and lets
	// co-located workers share one golden pool.
	cache := offramps.NewGoldenCache()
	if *store != "" {
		gs, err := goldenstore.Open(*store)
		if err != nil {
			return fmt.Errorf("golden-store: %w", err)
		}
		cache.AttachStore(gs)
	}

	w := &farm.Worker{
		Client:     &farm.Client{Base: *coord},
		Name:       *name,
		Dir:        *dir,
		Cache:      cache,
		Poll:       *poll,
		MaxRetries: *retries,
		Max:        *max,
		Log:        stdout,
	}
	// SIGTERM/SIGINT abandons the in-flight scenario cleanly: the lease
	// expires on the coordinator and another worker re-deals it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	n, err := w.Run(ctx)
	if errors.Is(err, context.Canceled) && ctx.Err() != nil {
		fmt.Fprintf(stdout, "worker %s: interrupted after %d scenario(s); lease returns to the queue\n", *name, n)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "worker %s: exiting after %d scenario(s)\n", *name, n)
	return nil
}
