package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkGoldenPrint \t       3\t  80680280 ns/op\t   1198928 events/op\t       166.2 sim-s/op\t 2946872 B/op\t    1204 allocs/op"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if r.Name != "BenchmarkGoldenPrint" || r.Runs != 3 {
		t.Errorf("name/runs = %q/%d", r.Name, r.Runs)
	}
	want := map[string]float64{
		"ns/op":     80680280,
		"events/op": 1198928,
		"sim-s/op":  166.2,
		"B/op":      2946872,
		"allocs/op": 1204,
	}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
}

func TestParseBenchLineWithGOMAXPROCSSuffix(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkCampaign-8   5   1000000 ns/op   42 allocs/op")
	if !ok || r.Name != "BenchmarkCampaign-8" || r.Metrics["allocs/op"] != 42 {
		t.Errorf("parsed %+v ok=%v", r, ok)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tofframps\t1.028s",
		"",
		"BenchmarkBroken abc ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q misparsed as a benchmark", line)
		}
	}
}

func TestParseHeader(t *testing.T) {
	rep := Report{}
	for _, line := range []string{
		"goos: linux",
		"goarch: amd64",
		"pkg: offramps",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
	} {
		parseHeader(&rep, line)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "offramps" || rep.CPU == "" {
		t.Errorf("header = %+v", rep)
	}
}
