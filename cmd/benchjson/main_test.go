package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkGoldenPrint \t       3\t  80680280 ns/op\t   1198928 events/op\t       166.2 sim-s/op\t 2946872 B/op\t    1204 allocs/op"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if r.Name != "BenchmarkGoldenPrint" || r.Runs != 3 {
		t.Errorf("name/runs = %q/%d", r.Name, r.Runs)
	}
	want := map[string]float64{
		"ns/op":     80680280,
		"events/op": 1198928,
		"sim-s/op":  166.2,
		"B/op":      2946872,
		"allocs/op": 1204,
	}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
}

func TestParseBenchLineWithGOMAXPROCSSuffix(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkCampaign-8   5   1000000 ns/op   42 allocs/op")
	if !ok || r.Name != "BenchmarkCampaign-8" || r.Metrics["allocs/op"] != 42 {
		t.Errorf("parsed %+v ok=%v", r, ok)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tofframps\t1.028s",
		"",
		"BenchmarkBroken abc ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q misparsed as a benchmark", line)
		}
	}
}

func TestRunAggregatesRepetitionsToMedians(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"BenchmarkGoldenPrint-8   2   100 ns/op   10 allocs/op",
		"BenchmarkCampaign-8      4   500 ns/op",
		"BenchmarkGoldenPrint-8   2   900 ns/op   14 allocs/op", // outlier
		"BenchmarkGoldenPrint-8   3   110 ns/op   12 allocs/op",
		"BenchmarkCampaign-8      4   520 ns/op",
		"PASS",
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 3 {
		t.Errorf("runs = %d, want 3", rep.Runs)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2 (repetitions must collapse)", len(rep.Benchmarks))
	}
	gp := rep.Benchmarks[0]
	if gp.Name != "BenchmarkGoldenPrint-8" || gp.Metrics["ns/op"] != 110 || gp.Metrics["allocs/op"] != 12 {
		t.Errorf("median not taken: %+v", gp)
	}
	if gp.Runs != 2 {
		t.Errorf("iteration median = %d, want 2", gp.Runs)
	}
	if c := rep.Benchmarks[1]; c.Metrics["ns/op"] != 510 {
		t.Errorf("even-count median = %v, want 510", c.Metrics["ns/op"])
	}
}

func TestRunSingleShotKeepsLegacyShape(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("BenchmarkGoldenPrint-8   2   100 ns/op"), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 0 {
		t.Errorf("single-shot report grew a top-level runs field: %d", rep.Runs)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Metrics["ns/op"] != 100 {
		t.Errorf("single-shot result mangled: %+v", rep.Benchmarks)
	}
}

func TestParseHeader(t *testing.T) {
	rep := Report{}
	for _, line := range []string{
		"goos: linux",
		"goarch: amd64",
		"pkg: offramps",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
	} {
		parseHeader(&rep, line)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "offramps" || rep.CPU == "" {
		t.Errorf("header = %+v", rep)
	}
}

func TestBenchBase(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkCampaign-8":     "BenchmarkCampaign",
		"BenchmarkCampaign":       "BenchmarkCampaign",
		"BenchmarkCampaign-":      "BenchmarkCampaign-",
		"BenchmarkT2-Masking":     "BenchmarkT2-Masking",
		"BenchmarkGoldenPrint-16": "BenchmarkGoldenPrint",
	} {
		if got := benchBase(in); got != want {
			t.Errorf("benchBase(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeBenchReport(t *testing.T, dir, name string, ns map[string]float64) string {
	t.Helper()
	rep := Report{}
	for bench, v := range ns {
		rep.Benchmarks = append(rep.Benchmarks, Result{Name: bench, Runs: 2, Metrics: map[string]float64{"ns/op": v}})
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareAnnotatesRegressions(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchReport(t, dir, "old.json", map[string]float64{
		"BenchmarkGoldenPrint": 100_000_000, "BenchmarkCampaign-8": 400_000_000,
	})
	cur := writeBenchReport(t, dir, "new.json", map[string]float64{
		"BenchmarkGoldenPrint-8": 130_000_000, "BenchmarkCampaign": 390_000_000,
	})
	var out strings.Builder
	if err := runCompare(old, cur, "ns/op", "BenchmarkGoldenPrint,BenchmarkCampaign", 15, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "::warning title=bench regression::BenchmarkGoldenPrint ns/op regressed +30.0%") {
		t.Errorf("30%% regression not annotated:\n%s", text)
	}
	if strings.Contains(text, "::warning title=bench regression::BenchmarkCampaign") {
		t.Errorf("improvement annotated as regression:\n%s", text)
	}
	if !strings.Contains(text, "BenchmarkCampaign: ns/op 400000000 -> 390000000 (-2.5%)") {
		t.Errorf("delta line missing:\n%s", text)
	}
}

func TestRunCompareMissingBenchFails(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchReport(t, dir, "old.json", map[string]float64{"BenchmarkGoldenPrint": 1})
	cur := writeBenchReport(t, dir, "new.json", map[string]float64{"BenchmarkOther": 1})
	var out strings.Builder
	err := runCompare(old, cur, "ns/op", "BenchmarkGoldenPrint", 15, &out)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing benchmark tolerated: %v", err)
	}

	// A benchmark present in both reports but without the tracked metric
	// in the new one is equally a broken harness, not a -100% win.
	old = writeBenchReport(t, dir, "old2.json", map[string]float64{"BenchmarkGoldenPrint": 100})
	cur = writeBenchReport(t, dir, "new2.json", map[string]float64{"BenchmarkGoldenPrint": 100})
	err = runCompare(old, cur, "allocs/op", "BenchmarkGoldenPrint", 15, &out)
	if err == nil || !strings.Contains(err.Error(), "no allocs/op") {
		t.Errorf("vanished metric tolerated: %v", err)
	}
}

func TestRunCompareAgainstCommittedBaseline(t *testing.T) {
	// The committed BENCH_<n>.json files must stay consumable by the CI
	// compare step. Pick the newest by numeric label, matching the CI
	// step's `sort -V` (lexical order breaks at BENCH_10).
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no committed BENCH files: %v", err)
	}
	latest, best := "", -1
	for _, m := range matches {
		label := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		if n, err := strconv.Atoi(label); err == nil && n > best {
			latest, best = m, n
		}
	}
	if latest == "" {
		t.Fatalf("no numerically labelled BENCH files among %v", matches)
	}
	var out strings.Builder
	if err := runCompare(latest, latest, "ns/op", "BenchmarkGoldenPrint,BenchmarkCampaign", 15, &out); err != nil {
		t.Fatalf("self-compare of %s failed: %v", latest, err)
	}
	if !strings.Contains(out.String(), "(+0.0%)") {
		t.Errorf("self-compare deltas not zero:\n%s", out.String())
	}
}
