package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Comparison mode: `benchjson -compare old.json new.json` diffs two
// archived reports and annotates regressions. CI points old.json at the
// newest committed BENCH_<n>.json and new.json at the run's fresh
// results; any benchmark whose tracked metric regressed past the
// threshold emits a GitHub Actions ::warning:: annotation. The exit
// status stays zero — perf tracking is advisory, not a gate — unless a
// compared benchmark is missing from the new report, which means the
// bench harness itself broke.

// loadReport reads an archived benchjson document and indexes it by
// benchmark base name (the "-8" GOMAXPROCS suffix stripped, so reports
// from different machines compare).
func loadReport(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Result, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[benchBase(b.Name)] = b
	}
	return out, nil
}

// benchBase strips a trailing "-<digits>" GOMAXPROCS suffix.
func benchBase(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i == len(name)-1 {
		return name
	}
	return name[:i]
}

// runCompare diffs the named benchmarks' metric between two reports.
func runCompare(oldPath, newPath, metric, benches string, threshold float64, out io.Writer) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}

	var missing []string
	for _, name := range strings.Split(benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		n, ok := newRep[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		o, ok := oldRep[name]
		if !ok {
			fmt.Fprintf(out, "%s: not in baseline %s, skipping\n", name, oldPath)
			continue
		}
		ov, nv := o.Metrics[metric], n.Metrics[metric]
		if nv == 0 {
			// A tracked metric vanishing from the fresh report is a broken
			// bench harness, not a 100% improvement.
			missing = append(missing, fmt.Sprintf("%s (no %s)", name, metric))
			continue
		}
		if ov == 0 {
			fmt.Fprintf(out, "%s: baseline has no %s, skipping\n", name, metric)
			continue
		}
		delta := (nv - ov) / ov * 100
		fmt.Fprintf(out, "%s: %s %.0f -> %.0f (%+.1f%%) vs %s\n", name, metric, ov, nv, delta, oldPath)
		if delta > threshold {
			fmt.Fprintf(out, "::warning title=bench regression::%s %s regressed %+.1f%% vs %s (threshold %.0f%%)\n",
				name, metric, delta, oldPath, threshold)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("benchmarks missing from %s: %s", newPath, strings.Join(missing, ", "))
	}
	return nil
}
