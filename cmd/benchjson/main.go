// Command benchjson converts `go test -bench` output read from stdin into
// a JSON document on stdout, so CI can archive the perf trajectory of the
// key benchmarks across PRs (see scripts/bench.sh).
//
// Every benchmark line becomes one object carrying the iteration count and
// every reported metric keyed by its unit (ns/op, allocs/op, B/op, and any
// custom b.ReportMetric units such as events/op or sim-s/op).
//
// With -compare, benchjson instead diffs two archived reports:
//
//	benchjson -compare BENCH_3.json BENCH_ci.json
//	benchjson -compare -threshold 15 -metric ns/op -benches BenchmarkGoldenPrint old.json new.json
//
// printing per-benchmark deltas and a GitHub Actions ::warning::
// annotation for any tracked benchmark that regressed past the
// threshold. Comparison is advisory (exit 0 on regressions); only a
// benchmark missing from the new report fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		compare   = fs.Bool("compare", false, "compare two archived reports (old.json new.json) instead of converting")
		metric    = fs.String("metric", "ns/op", "metric `unit` to compare")
		benches   = fs.String("benches", "BenchmarkGoldenPrint,BenchmarkCampaign", "comma-separated benchmark `names` to compare")
		threshold = fs.Float64("threshold", 15, "annotate regressions beyond this `percent`")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	var err error
	if *compare {
		if fs.NArg() != 2 {
			err = fmt.Errorf("-compare wants exactly two report files, got %d args", fs.NArg())
		} else {
			err = runCompare(fs.Arg(0), fs.Arg(1), *metric, *benches, *threshold, os.Stdout)
		}
	} else {
		err = run(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func run(in *os.File, out *os.File) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rep := Report{}
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
			continue
		}
		parseHeader(&rep, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseHeader captures the context lines `go test` prints before results.
func parseHeader(rep *Report, line string) {
	if s, ok := strings.CutPrefix(line, "goos: "); ok {
		rep.Goos = s
	} else if s, ok := strings.CutPrefix(line, "goarch: "); ok {
		rep.Goarch = s
	} else if s, ok := strings.CutPrefix(line, "pkg: "); ok {
		rep.Pkg = s
	} else if s, ok := strings.CutPrefix(line, "cpu: "); ok {
		rep.CPU = s
	}
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   3   80680280 ns/op   1204 allocs/op   166.2 sim-s/op
//
// into a Result. Non-benchmark lines report ok=false.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	name := fields[0]
	if !strings.HasPrefix(name, "Benchmark") {
		return Result{}, false
	}
	var runs int64
	if _, err := fmt.Sscanf(fields[1], "%d", &runs); err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Runs: runs, Metrics: make(map[string]float64, (len(fields)-2)/2)}
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
