// Command benchjson converts `go test -bench` output read from stdin into
// a JSON document on stdout, so CI can archive the perf trajectory of the
// key benchmarks across PRs (see scripts/bench.sh).
//
// Every benchmark becomes one object carrying the iteration count and
// every reported metric keyed by its unit (ns/op, allocs/op, B/op, and any
// custom b.ReportMetric units such as events/op or sim-s/op). When the
// input carries `-count N` repetitions of a benchmark, the repetitions
// are collapsed to one object holding the per-metric MEDIAN — robust to
// the one slow outlier a shared CI runner produces — and the report's
// top-level "runs" field records N.
//
// With -compare, benchjson instead diffs two archived reports:
//
//	benchjson -compare BENCH_3.json BENCH_ci.json
//	benchjson -compare -threshold 15 -metric ns/op -benches BenchmarkGoldenPrint old.json new.json
//
// printing per-benchmark deltas and a GitHub Actions ::warning::
// annotation for any tracked benchmark that regressed past the
// threshold. Comparison is advisory (exit 0 on regressions); only a
// benchmark missing from the new report fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		compare   = fs.Bool("compare", false, "compare two archived reports (old.json new.json) instead of converting")
		metric    = fs.String("metric", "ns/op", "metric `unit` to compare")
		benches   = fs.String("benches", "BenchmarkGoldenPrint,BenchmarkCampaign", "comma-separated benchmark `names` to compare")
		threshold = fs.Float64("threshold", 15, "annotate regressions beyond this `percent`")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	var err error
	if *compare {
		if fs.NArg() != 2 {
			err = fmt.Errorf("-compare wants exactly two report files, got %d args", fs.NArg())
		} else {
			err = runCompare(fs.Arg(0), fs.Arg(1), *metric, *benches, *threshold, os.Stdout)
		}
	} else {
		err = run(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits. Runs is the `-count`
// repetition depth the medians were taken over (largest group seen;
// omitted in pre-aggregation reports).
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Runs       int      `json:"runs,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func run(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rep := Report{}
	var order []string
	samples := make(map[string][]Result)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseBenchLine(line); ok {
			if _, seen := samples[r.Name]; !seen {
				order = append(order, r.Name)
			}
			samples[r.Name] = append(samples[r.Name], r)
			continue
		}
		parseHeader(&rep, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, name := range order {
		group := samples[name]
		rep.Benchmarks = append(rep.Benchmarks, aggregate(group))
		if len(group) > rep.Runs {
			rep.Runs = len(group)
		}
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	if rep.Runs == 1 {
		rep.Runs = 0 // single-shot input: keep the legacy document shape
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// aggregate collapses the `-count` repetitions of one benchmark into a
// single result: the median of each metric (over the repetitions that
// reported it) and the median iteration count.
func aggregate(group []Result) Result {
	if len(group) == 1 {
		return group[0]
	}
	out := Result{Name: group[0].Name, Metrics: make(map[string]float64)}
	iters := make([]float64, len(group))
	for i, r := range group {
		iters[i] = float64(r.Runs)
	}
	out.Runs = int64(median(iters))
	units := make(map[string][]float64)
	for _, r := range group {
		for unit, v := range r.Metrics {
			units[unit] = append(units[unit], v)
		}
	}
	for unit, vs := range units {
		out.Metrics[unit] = median(vs)
	}
	return out
}

// median returns the middle value (mean of the two middles for even
// counts). vs is sorted in place.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// parseHeader captures the context lines `go test` prints before results.
func parseHeader(rep *Report, line string) {
	if s, ok := strings.CutPrefix(line, "goos: "); ok {
		rep.Goos = s
	} else if s, ok := strings.CutPrefix(line, "goarch: "); ok {
		rep.Goarch = s
	} else if s, ok := strings.CutPrefix(line, "pkg: "); ok {
		rep.Pkg = s
	} else if s, ok := strings.CutPrefix(line, "cpu: "); ok {
		rep.CPU = s
	}
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   3   80680280 ns/op   1204 allocs/op   166.2 sim-s/op
//
// into a Result. Non-benchmark lines report ok=false.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	name := fields[0]
	if !strings.HasPrefix(name, "Benchmark") {
		return Result{}, false
	}
	var runs int64
	if _, err := fmt.Sscanf(fields[1], "%d", &runs); err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Runs: runs, Metrics: make(map[string]float64, (len(fields)-2)/2)}
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
