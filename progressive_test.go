package offramps

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"offramps/internal/sched"
)

// loadSweepLayout loads the committed multi-seed Table II sweep grid
// fresh for each use, so runs never share spec state.
func loadSweepLayout(t *testing.T) (*SuiteSpec, *sched.Grid) {
	t.Helper()
	suite, layout, err := LoadSuiteOrGridLayout(filepath.Join("examples", "specs", "grid_tableii_sweep.json"), false)
	if err != nil {
		t.Fatal(err)
	}
	return suite, layout
}

// suiteDoc serializes a report exactly as `suite -json` writes it — the
// unit of every byte-identity claim below.
func suiteDoc(t *testing.T, rep *SuiteReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	doc := struct {
		Suites []*SuiteReport `json:"suites"`
	}{[]*SuiteReport{rep}}
	if err := EncodeReport(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// axisNeighbours reports whether two cell coordinates differ by exactly
// one step on exactly one axis — the scheduler's boundary relation,
// re-derived independently here.
func axisNeighbours(a, b []int) bool {
	diff := 0
	for i := range a {
		switch d := a[i] - b[i]; {
		case d == 0:
		case d == 1 || d == -1:
			diff++
		default:
			return false
		}
	}
	return diff == 1
}

// TestProgressiveSweep runs the committed sweep grid once in full and
// checks the progressive scheduler against it: unlimited budget
// reproduces the naive run byte for byte, and a half-budget early-stop
// run still covers every cell, promotes every detection-boundary cell,
// and executes rows byte-identical to the full run's.
func TestProgressiveSweep(t *testing.T) {
	ctx := context.Background()
	// One cache across all runs: goldens are bit-identical under a fixed
	// key, so sharing only removes redundant simulations.
	cache := NewGoldenCache()

	fullSuite, layout := loadSweepLayout(t)
	full, err := Campaign{Cache: cache}.RunSuite(ctx, fullSuite)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(full.Results); err != nil {
		t.Fatal(err)
	}
	fullDoc := suiteDoc(t, full)
	fullRows := make(map[string]ScenarioResult, len(full.Results))
	for _, r := range full.Results {
		fullRows[r.Name] = r
	}

	// The reference boundary set, derived from the full run: a cell is
	// on a detection boundary when its first seed's verdict differs from
	// an axis-neighbour's.
	fullVerdicts := make([]sched.Verdict, len(layout.Cells))
	cmpCache := make(map[string]CompareResult)
	for i, c := range layout.Cells {
		fullVerdicts[i] = progressiveVerdict(c.Seeds[0], fullSuite, fullRows, cmpCache)
	}
	boundary := make(map[string]bool)
	for i, a := range layout.Cells {
		for j, b := range layout.Cells {
			if i != j && axisNeighbours(a.Coord, b.Coord) && fullVerdicts[i] != fullVerdicts[j] {
				boundary[a.Key] = true
			}
		}
	}
	if len(boundary) == 0 {
		t.Fatal("the sweep grid has no detection boundary; the refinement test would be vacuous")
	}

	t.Run("full budget matches RunSuite", func(t *testing.T) {
		suite, lay := loadSweepLayout(t)
		rep, st, err := Campaign{Cache: cache}.RunSuiteProgressive(ctx, suite, lay, sched.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if st.Skipped != 0 || st.Executed != st.Total {
			t.Errorf("stats = %+v, want everything executed", st.Stats)
		}
		if got := suiteDoc(t, rep); !bytes.Equal(got, fullDoc) {
			t.Errorf("full-budget progressive report differs from RunSuite\nnaive: %d bytes\nprog:  %d bytes", len(fullDoc), len(got))
		}
	})

	t.Run("half budget covers every cell and matches executed rows", func(t *testing.T) {
		suite, lay := loadSweepLayout(t)
		budget := len(suite.Scenarios) / 2
		cfg := sched.Config{Budget: budget, EarlyStopK: 2}
		rep, st, err := Campaign{Cache: cache}.RunSuiteProgressive(ctx, suite, lay, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Covered != st.Cells {
			t.Errorf("covered %d of %d cells, want full coverage regardless of budget", st.Covered, st.Cells)
		}
		if st.Executed > budget {
			t.Errorf("executed %d scenarios over budget %d", st.Executed, budget)
		}
		if st.Boundary != len(boundary) {
			t.Errorf("scheduler found %d boundary cells, full run has %d", st.Boundary, len(boundary))
		}

		executed := make(map[string]int)
		for _, r := range rep.Results {
			if r.Err != nil && IsSkippedResult(r.Err.Error()) {
				continue
			}
			// Every executed row must be byte-identical to the full run's
			// row for the same scenario.
			got, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(fullRows[r.Name])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("scenario %s: progressive row differs from the full run's\nfull: %s\nprog: %s", r.Name, want, got)
			}
			for _, c := range lay.Cells {
				for _, s := range c.Seeds {
					if s == r.Name {
						executed[c.Key]++
					}
				}
			}
		}
		// Every detection-boundary cell of the full sweep was promoted:
		// refinement reached it before any non-boundary cell, so under a
		// budget with any refinement room it holds more than one seed.
		for key := range boundary {
			if executed[key] < 2 {
				t.Errorf("boundary cell %s executed %d seeds, want refinement (≥ 2)", key, executed[key])
			}
		}

		// Fixed (spec, budget, K) is deterministic: a rerun with a
		// different worker count produces the same bytes.
		repDoc := suiteDoc(t, rep)
		suite3, lay3 := loadSweepLayout(t)
		again, _, err := Campaign{Cache: cache, Workers: 3}.RunSuiteProgressive(ctx, suite3, lay3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := suiteDoc(t, again); !bytes.Equal(got, repDoc) {
			t.Error("progressive report is not deterministic across runs/worker counts")
		}
	})
}

// TestProgressiveSingleSeedGrid: on the committed single-seed Table II
// grid every cell is mandatory coverage, so any budget — even one far
// below the scenario count — degenerates to the full run, byte for
// byte. This is the invariant the CI progressive job pins against the
// committed report checksum.
func TestProgressiveSingleSeedGrid(t *testing.T) {
	ctx := context.Background()
	cache := NewGoldenCache()
	path := filepath.Join("examples", "specs", "grid_tableii.json")

	suite, _, err := LoadSuiteOrGridLayout(path, false)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Campaign{Cache: cache}.RunSuite(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}

	suite2, layout, err := LoadSuiteOrGridLayout(path, false)
	if err != nil {
		t.Fatal(err)
	}
	rep, st, err := Campaign{Cache: cache}.RunSuiteProgressive(ctx, suite2, layout, sched.Config{Budget: 5, EarlyStopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 0 {
		t.Errorf("skipped %d scenarios; single-seed cells are all mandatory", st.Skipped)
	}
	if !bytes.Equal(suiteDoc(t, rep), suiteDoc(t, full)) {
		t.Error("progressive run of the single-seed grid differs from the naive run")
	}
}

// TestValidateProgressive rejects suites whose golden references point
// at skippable cell scenarios.
func TestValidateProgressiveRejectsCellGoldens(t *testing.T) {
	layout := &sched.Grid{
		Dims: []int{2},
		Cells: []sched.Cell{
			{Key: "a", Coord: []int{0}, Seeds: []string{"a/s1"}},
			{Key: "b", Coord: []int{1}, Seeds: []string{"b/s1"}},
		},
	}
	suite := &SuiteSpec{
		Name: "bad",
		Scenarios: []ScenarioSpec{
			{Name: "a/s1"},
			{Name: "b/s1"},
		},
		Compare: []CompareSpec{{Golden: "a/s1", Suspect: "b/s1"}},
	}
	if err := ValidateProgressive(suite, layout); err == nil {
		t.Error("a compare against a cell scenario was accepted")
	}
	layout.Extras = []string{"a/s1"}
	if err := ValidateProgressive(suite, layout); err != nil {
		t.Errorf("golden listed as an extra was rejected: %v", err)
	}
}
