package offramps

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path"
	"path/filepath"
	"strconv"
	"strings"

	"offramps/internal/sched"
	"offramps/internal/sim"
)

// This file is the suite *generator*: a GridSpec is a compact sweep
// description — lists of programs, trojans, detectors, tap placements,
// budgets, and a seed range — that expands into the cross-product of
// ScenarioSpecs, minus include/exclude filters. Expansion is
// deterministic and ordered: the same grid file always produces the same
// suite, scenario for scenario, byte for byte. That determinism is what
// makes the second half of this file sound: every expanded scenario has
// a stable shard key (an FNV-1a hash of its name), so `suite -shard i/N`
// runs a disjoint, reproducible slice of the sweep and a merged set of
// shard reports is byte-identical to the unsharded run.

// ProgramAxis is one value of the programs axis: a ProgramSpec plus an
// optional display label overriding the derived one.
type ProgramAxis struct {
	ProgramSpec
	Label string `json:"label,omitempty"`
}

// TrojanAxis is one value of the trojans axis. An entry with no name
// means "no trojan" (the clean arm of the sweep); give it a label when
// the derived "clean" is not wanted.
type TrojanAxis struct {
	TrojanSpec
	Label string `json:"label,omitempty"`
}

// DetectorAxis is one value of the detectors axis. An entry with no name
// means "no detector".
type DetectorAxis struct {
	DetectorSpec
	Label string `json:"label,omitempty"`
}

// SeedAxis sweeps the seed dimension: either an explicit value list or
// an inclusive [From, To] range with Step (default 1). When Delta is set
// the values are offsets from the suite's base seed (ScenarioSpec
// SeedDelta); otherwise they pin absolute seeds.
type SeedAxis struct {
	Values []uint64 `json:"values,omitempty"`
	From   uint64   `json:"from,omitempty"`
	To     uint64   `json:"to,omitempty"`
	Step   uint64   `json:"step,omitempty"`
	Delta  bool     `json:"delta,omitempty"`
}

// expand materializes the axis values.
func (a *SeedAxis) expand() ([]uint64, error) {
	if len(a.Values) > 0 {
		if a.From != 0 || a.To != 0 || a.Step != 0 {
			return nil, fmt.Errorf("seed axis sets both values and a range")
		}
		return a.Values, nil
	}
	step := a.Step
	if step == 0 {
		step = 1
	}
	if a.To < a.From {
		return nil, fmt.Errorf("seed axis range [%d, %d] is empty", a.From, a.To)
	}
	var out []uint64
	for v := a.From; v <= a.To; v += step {
		out = append(out, v)
		if v > v+step { // overflow guard
			break
		}
	}
	return out, nil
}

// GridAxes are the sweep dimensions. An absent axis contributes no
// label and leaves the template's value in place; a present axis
// overrides it for every cell.
type GridAxes struct {
	Programs  []ProgramAxis  `json:"programs,omitempty"`
	Trojans   []TrojanAxis   `json:"trojans,omitempty"`
	Detectors []DetectorAxis `json:"detectors,omitempty"`
	// Taps are tap placements: "arduino", "ramps", or "dual".
	Taps []string `json:"taps,omitempty"`
	// Budgets are per-scenario simulated-time limits.
	Budgets []sim.Time `json:"budgets,omitempty"`
	Seeds   *SeedAxis  `json:"seeds,omitempty"`
}

// GridSeedPolicy assigns each expanded cell an increasing SeedDelta
// (DeltaStart + index·DeltaStep, in full-product order, before filters
// apply — so excluding a cell never shifts its neighbours' seeds). It
// models the experiment suites' "physically separate runs of the same
// job" pairing without a seed axis.
type GridSeedPolicy struct {
	DeltaStart uint64 `json:"deltaStart"`
	DeltaStep  uint64 `json:"deltaStep,omitempty"`
}

// GridFilter selects cells by their axis labels (exact match; empty
// fields are wildcards) or by a path.Match glob over the full cell name.
// A cell is kept when it matches at least one include filter (or the
// include list is empty) and no exclude filter.
type GridFilter struct {
	Name     string `json:"name,omitempty"`
	Program  string `json:"program,omitempty"`
	Trojan   string `json:"trojan,omitempty"`
	Detector string `json:"detector,omitempty"`
	Tap      string `json:"tap,omitempty"`
}

// matches reports whether the filter selects a cell with the given name
// and labels. An all-empty filter matches nothing (it is rejected by
// Validate anyway).
func (f GridFilter) matches(name string, labels map[string]string) (bool, error) {
	if f.isEmpty() {
		return false, nil
	}
	if f.Name != "" {
		ok, err := path.Match(f.Name, name)
		if err != nil {
			return false, fmt.Errorf("bad name glob %q: %w", f.Name, err)
		}
		if !ok {
			return false, nil
		}
	}
	for axis, want := range map[string]string{
		"program": f.Program, "trojan": f.Trojan, "detector": f.Detector, "tap": f.Tap,
	} {
		if want != "" && labels[axis] != want {
			return false, nil
		}
	}
	return true, nil
}

func (f GridFilter) isEmpty() bool {
	return f == GridFilter{}
}

// GridSpec is a compact sweep description that expands into a SuiteSpec:
// the cross-product of the axes, each cell a ScenarioSpec derived from
// the template, plus verbatim extra scenarios (golden references,
// controls) and comparison entries.
type GridSpec struct {
	Name     string `json:"name"`
	BaseSeed uint64 `json:"baseSeed,omitempty"`
	// Budget/Workers pass through to the expanded suite.
	Budget  sim.Time `json:"budget,omitempty"`
	Workers int      `json:"workers,omitempty"`
	// Template seeds every cell; axis values override its fields, and its
	// Name (when set) prefixes every cell name. Setting a template field
	// that an axis also sweeps is an error.
	Template ScenarioSpec `json:"template,omitempty"`
	Axes     GridAxes     `json:"axes"`
	// SeedPolicy assigns per-cell seed deltas by expansion index;
	// mutually exclusive with a seeds axis.
	SeedPolicy *GridSeedPolicy `json:"seedPolicy,omitempty"`
	Include    []GridFilter    `json:"include,omitempty"`
	Exclude    []GridFilter    `json:"exclude,omitempty"`
	// Extra scenarios are prepended verbatim, before the expanded cells —
	// typically the golden print and clean controls.
	Extra []ScenarioSpec `json:"extra,omitempty"`
	// CompareWith names a scenario (usually from Extra) to golden-compare
	// every expanded cell against, in expansion order.
	CompareWith string `json:"compareWith,omitempty"`
	// Compare entries are appended verbatim after the generated ones.
	Compare []CompareSpec `json:"compare,omitempty"`

	// dir anchors relative program file references (set by LoadGridSpec).
	dir string
}

// ParseGridSpec decodes a grid spec from JSON, strictly — unknown fields
// and trailing content are errors, mirroring ParseSuiteSpec. dir anchors
// relative file references in the expanded suite.
func ParseGridSpec(data []byte, dir string) (*GridSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g GridSpec
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("offramps: parsing grid spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("offramps: parsing grid spec: trailing content after the grid object")
	}
	g.dir = dir
	return &g, nil
}

// LoadGridSpec reads a grid spec file; a missing name defaults to the
// file's base name.
func LoadGridSpec(path string) (*GridSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("offramps: reading grid spec: %w", err)
	}
	g, err := ParseGridSpec(data, filepath.Dir(path))
	if err != nil {
		return nil, fmt.Errorf("offramps: %s: %w", path, err)
	}
	if g.Name == "" {
		g.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return g, nil
}

// LoadSuiteOrGrid loads a spec file as a plain suite, or as a grid
// expanded into one. forceGrid forces grid interpretation; without it
// the committed grid_*.json naming convention decides, so spec globs
// with grids mixed in keep working. This is the one loading path shared
// by cmd/suite, cmd/gridgen consumers, and the farm coordinator.
func LoadSuiteOrGrid(path string, forceGrid bool) (*SuiteSpec, error) {
	if forceGrid || strings.HasPrefix(filepath.Base(path), "grid_") {
		g, err := LoadGridSpec(path)
		if err != nil {
			return nil, err
		}
		s, err := g.Expand()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	return LoadSuiteSpec(path)
}

// programLabel derives a deterministic label for a program axis value.
func programLabel(p ProgramSpec) string {
	var parts []string
	switch {
	case p.File != "":
		base := filepath.Base(p.File)
		parts = append(parts, strings.TrimSuffix(base, filepath.Ext(base)))
	case p.Box != nil:
		parts = append(parts, fmt.Sprintf("box%gx%gx%g", p.Box.X, p.Box.Y, p.Box.Z))
	case p.Part != "":
		parts = append(parts, p.Part)
	default:
		parts = append(parts, "testpart")
	}
	if p.Flow != 0 {
		parts = append(parts, fmt.Sprintf("flow%g", p.Flow))
	}
	if p.Flaw3D != 0 {
		parts = append(parts, fmt.Sprintf("flaw3d-%d", p.Flaw3D))
	}
	// The default part is implied; a tampered or flow-scaled default
	// labels itself by the modification alone ("flaw3d-3", "flow1.5").
	if len(parts) > 1 && parts[0] == "testpart" && p.Part == "" {
		parts = parts[1:]
	}
	return strings.Join(parts, "-")
}

// axisValue is one resolved value of one axis: the label it contributes
// to cell names/filters and the mutation it applies to the cell spec.
type axisValue struct {
	label string
	apply func(*ScenarioSpec)
}

// gridAxis is one resolved axis: its filter key and values. An absent
// axis has a single no-op value and contributes no name label.
type gridAxis struct {
	key     string
	present bool
	values  []axisValue
}

// axes resolves the sweep dimensions in their fixed expansion order
// (programs, trojans, detectors, taps, budgets, seeds — seeds innermost,
// so paired-seed runs of one configuration stay adjacent).
func (g *GridSpec) axes() ([]gridAxis, error) {
	noop := []axisValue{{}}
	out := []gridAxis{
		{key: "program", values: noop},
		{key: "trojan", values: noop},
		{key: "detector", values: noop},
		{key: "tap", values: noop},
		{key: "budget", values: noop},
		{key: "seed", values: noop},
	}
	conflict := func(axis, field string, set bool) error {
		if set {
			return fmt.Errorf("offramps: grid %q: the %s axis conflicts with template.%s", g.Name, axis, field)
		}
		return nil
	}

	if len(g.Axes.Programs) > 0 {
		zero := ProgramSpec{}
		if err := conflict("programs", "program", g.Template.Program != zero); err != nil {
			return nil, err
		}
		ax := gridAxis{key: "program", present: true}
		for _, p := range g.Axes.Programs {
			p := p
			label := p.Label
			if label == "" {
				label = programLabel(p.ProgramSpec)
			}
			ax.values = append(ax.values, axisValue{label, func(s *ScenarioSpec) { s.Program = p.ProgramSpec }})
		}
		out[0] = ax
	}
	if len(g.Axes.Trojans) > 0 {
		if err := conflict("trojans", "trojan", g.Template.Trojan != nil); err != nil {
			return nil, err
		}
		ax := gridAxis{key: "trojan", present: true}
		for _, t := range g.Axes.Trojans {
			t := t
			label := t.Label
			if label == "" {
				label = t.Name
				if label == "" {
					label = "clean"
				}
			}
			ax.values = append(ax.values, axisValue{label, func(s *ScenarioSpec) {
				if t.Name == "" {
					s.Trojan = nil
					return
				}
				s.Trojan = &TrojanSpec{Name: t.Name, Params: t.Params}
			}})
		}
		out[1] = ax
	}
	if len(g.Axes.Detectors) > 0 {
		if err := conflict("detectors", "detector", g.Template.Detector != nil); err != nil {
			return nil, err
		}
		ax := gridAxis{key: "detector", present: true}
		for _, d := range g.Axes.Detectors {
			d := d
			label := d.Label
			if label == "" {
				label = d.Name
				if label == "" {
					label = "none"
				}
			}
			ax.values = append(ax.values, axisValue{label, func(s *ScenarioSpec) {
				if d.Name == "" {
					s.Detector = nil
					return
				}
				spec := d.DetectorSpec
				s.Detector = &spec
			}})
		}
		out[2] = ax
	}
	if len(g.Axes.Taps) > 0 {
		if err := conflict("taps", "tap", g.Template.Tap != ""); err != nil {
			return nil, err
		}
		ax := gridAxis{key: "tap", present: true}
		for _, t := range g.Axes.Taps {
			t := t
			label := t
			if label == "" {
				label = "arduino"
			}
			ax.values = append(ax.values, axisValue{label, func(s *ScenarioSpec) { s.Tap = t }})
		}
		out[3] = ax
	}
	if len(g.Axes.Budgets) > 0 {
		if err := conflict("budgets", "budget", g.Template.Budget != 0); err != nil {
			return nil, err
		}
		ax := gridAxis{key: "budget", present: true}
		for _, b := range g.Axes.Budgets {
			b := b
			ax.values = append(ax.values, axisValue{"budget" + b.String(), func(s *ScenarioSpec) { s.Budget = b }})
		}
		out[4] = ax
	}
	if g.Axes.Seeds != nil {
		if err := conflict("seeds", "seed/seedDelta", g.Template.Seed != 0 || g.Template.SeedDelta != 0); err != nil {
			return nil, err
		}
		if g.SeedPolicy != nil {
			return nil, fmt.Errorf("offramps: grid %q: seedPolicy conflicts with a seeds axis", g.Name)
		}
		vals, err := g.Axes.Seeds.expand()
		if err != nil {
			return nil, fmt.Errorf("offramps: grid %q: %w", g.Name, err)
		}
		ax := gridAxis{key: "seed", present: true}
		for _, v := range vals {
			v := v
			if g.Axes.Seeds.Delta {
				ax.values = append(ax.values, axisValue{fmt.Sprintf("d%d", v), func(s *ScenarioSpec) { s.SeedDelta = v }})
			} else {
				if v == 0 {
					return nil, fmt.Errorf("offramps: grid %q: absolute seed 0 is reserved (use delta seeds)", g.Name)
				}
				ax.values = append(ax.values, axisValue{fmt.Sprintf("s%d", v), func(s *ScenarioSpec) { s.Seed = v }})
			}
		}
		out[5] = ax
	}
	return out, nil
}

// Expand materializes the grid into a complete SuiteSpec: extra
// scenarios first (verbatim), then every cross-product cell that
// survives the filters, named by the labels of the multi-valued axes
// and validated as a suite. Expansion is pure and deterministic — same
// grid, same suite.
func (g *GridSpec) Expand() (*SuiteSpec, error) {
	s, _, err := g.expand(false)
	return s, err
}

// ExpandLayout expands the grid and additionally derives its
// progressive layout: the sched.Grid of cells (one per point on the
// swept non-seed axes, holding that point's scenario names in seed
// order) plus the extra scenarios. The layout walks the same
// cross-product as Expand, so cell order, coordinates, and seed
// grouping are exactly as deterministic as the suite itself.
func (g *GridSpec) ExpandLayout() (*SuiteSpec, *sched.Grid, error) {
	return g.expand(true)
}

func (g *GridSpec) expand(withLayout bool) (*SuiteSpec, *sched.Grid, error) {
	if g.Name == "" {
		return nil, nil, fmt.Errorf("offramps: grid spec needs a name")
	}
	if g.SeedPolicy != nil && (g.Template.Seed != 0 || g.Template.SeedDelta != 0) {
		return nil, nil, fmt.Errorf("offramps: grid %q: seedPolicy conflicts with template seed fields", g.Name)
	}
	axes, err := g.axes()
	if err != nil {
		return nil, nil, err
	}
	// A filter naming an axis the grid does not sweep would silently
	// never match (labels carry swept axes only) — reject it instead.
	present := make(map[string]bool, len(axes))
	for _, ax := range axes {
		if ax.present {
			present[ax.key] = true
		}
	}
	for _, f := range append(append([]GridFilter{}, g.Include...), g.Exclude...) {
		if f.isEmpty() {
			return nil, nil, fmt.Errorf("offramps: grid %q: empty include/exclude filter matches nothing", g.Name)
		}
		for axis, val := range map[string]string{
			"program": f.Program, "trojan": f.Trojan, "detector": f.Detector, "tap": f.Tap,
		} {
			if val != "" && !present[axis] {
				return nil, nil, fmt.Errorf("offramps: grid %q: filter references the %s axis, which the grid does not sweep", g.Name, axis)
			}
		}
	}

	// The progressive layout shadows the walk: Dims are the present
	// non-seed axes' cardinalities, a cell is one coordinate on them, and
	// the seed axis (innermost) groups each cell's scenarios in seed
	// order. The seed axis index is fixed by axes()'s expansion order.
	const seedAxis = 5
	var layout *sched.Grid
	var cellAt map[string]int
	if withLayout {
		layout = &sched.Grid{}
		for ai, ax := range axes {
			if ax.present && ai != seedAxis {
				layout.Dims = append(layout.Dims, len(ax.values))
			}
		}
		for _, ex := range g.Extra {
			layout.Extras = append(layout.Extras, ex.Name)
		}
		cellAt = make(map[string]int)
	}

	// Walk the cross-product in fixed nested order. idx is the cell's
	// position in the *full* product, so seed-policy deltas are stable
	// under filter changes.
	var cells []ScenarioSpec
	counters := make([]int, len(axes))
	total := 1
	for _, ax := range axes {
		total *= len(ax.values)
	}
	for idx := 0; idx < total; idx++ {
		spec := g.Template
		labels := make(map[string]string, len(axes))
		var nameParts []string
		var coord []int
		if spec.Name != "" {
			nameParts = append(nameParts, spec.Name)
		}
		for ai, ax := range axes {
			v := ax.values[counters[ai]]
			if v.apply != nil {
				v.apply(&spec)
			}
			if ax.present {
				labels[ax.key] = v.label
				if len(ax.values) > 1 {
					nameParts = append(nameParts, v.label)
				}
				if ai != seedAxis {
					coord = append(coord, counters[ai])
				}
			}
		}
		// The cell label is the name minus the seed axis's contribution —
		// the seed axis is last, so its label (when it contributes one) is
		// the final name part.
		cellParts := nameParts
		if axes[seedAxis].present && len(axes[seedAxis].values) > 1 {
			cellParts = nameParts[:len(nameParts)-1]
		}
		cellName := strings.Join(cellParts, "/")
		if cellName == "" {
			cellName = "cell"
		}
		if len(nameParts) == 0 {
			nameParts = append(nameParts, "cell")
		}
		spec.Name = strings.Join(nameParts, "/")
		if g.SeedPolicy != nil {
			step := g.SeedPolicy.DeltaStep
			if step == 0 {
				step = 1
			}
			spec.SeedDelta = g.SeedPolicy.DeltaStart + uint64(idx)*step
		}

		keep := len(g.Include) == 0
		for _, f := range g.Include {
			ok, err := f.matches(spec.Name, labels)
			if err != nil {
				return nil, nil, fmt.Errorf("offramps: grid %q: include: %w", g.Name, err)
			}
			if ok {
				keep = true
				break
			}
		}
		for _, f := range g.Exclude {
			ok, err := f.matches(spec.Name, labels)
			if err != nil {
				return nil, nil, fmt.Errorf("offramps: grid %q: exclude: %w", g.Name, err)
			}
			if ok {
				keep = false
				break
			}
		}
		if keep {
			cells = append(cells, spec)
			if withLayout {
				ck := fmt.Sprint(coord)
				if ci, ok := cellAt[ck]; ok {
					layout.Cells[ci].Seeds = append(layout.Cells[ci].Seeds, spec.Name)
				} else {
					cellAt[ck] = len(layout.Cells)
					layout.Cells = append(layout.Cells, sched.Cell{Key: cellName, Coord: coord, Seeds: []string{spec.Name}})
				}
			}
		}

		// Odometer increment, innermost (seeds) axis fastest.
		for ai := len(axes) - 1; ai >= 0; ai-- {
			counters[ai]++
			if counters[ai] < len(axes[ai].values) {
				break
			}
			counters[ai] = 0
		}
	}
	if len(cells) == 0 {
		return nil, nil, fmt.Errorf("offramps: grid %q: filters removed every cell", g.Name)
	}

	suite := &SuiteSpec{
		Name:      g.Name,
		BaseSeed:  g.BaseSeed,
		Budget:    g.Budget,
		Workers:   g.Workers,
		Scenarios: append(append([]ScenarioSpec{}, g.Extra...), cells...),
		dir:       g.dir,
	}
	if g.CompareWith != "" {
		for _, c := range cells {
			suite.Compare = append(suite.Compare, CompareSpec{Golden: g.CompareWith, Suspect: c.Name})
		}
	}
	suite.Compare = append(suite.Compare, g.Compare...)
	if err := suite.Validate(); err != nil {
		return nil, nil, fmt.Errorf("offramps: grid %q: expanded suite invalid: %w", g.Name, err)
	}
	return suite, layout, nil
}

// LoadSuiteOrGridLayout is LoadSuiteOrGrid's progressive twin: it loads
// the file as a grid (by the grid_*.json convention, or forced) and
// expands it together with its sched layout. Plain suites are rejected —
// a progressive sweep needs the grid's axes to derive cell
// neighbourhoods from.
func LoadSuiteOrGridLayout(path string, forceGrid bool) (*SuiteSpec, *sched.Grid, error) {
	if !forceGrid && !strings.HasPrefix(filepath.Base(path), "grid_") {
		return nil, nil, fmt.Errorf("offramps: %s: progressive execution needs a grid spec (name it grid_*.json or force grid interpretation)", path)
	}
	g, err := LoadGridSpec(path)
	if err != nil {
		return nil, nil, err
	}
	s, layout, err := g.ExpandLayout()
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, layout, nil
}

// ---------------------------------------------------------------------------
// Sharding: a stable key per scenario partitions a suite into disjoint,
// reproducible slices for CI matrix fan-out and remote execution.

// ShardOf returns the 0-based shard that owns the named scenario among
// count shards. The key is an FNV-1a hash of the scenario name, so a
// scenario's shard never depends on expansion order — reordering or
// filtering a grid does not reshuffle the slices.
//
// Static shards and the farm's dynamic lease queue (internal/farm) are
// two partitions of the same name space: `suite -shard i/N` fixes the
// partition up front by this hash, while a farm coordinator hands out
// the very same scenario names one lease at a time. Either way each
// name runs exactly once, carries its golden closure (Subset), and the
// stitched reports are byte-identical — `gridgen -names -shard i/N`
// previews the static slices, `gridgen -names` lists the farm queue's
// seed order.
func ShardOf(name string, count int) int {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int(h.Sum64() % uint64(count))
}

// ParseShard parses the "i/N" shard notation (1-based index). The whole
// string must be the pattern — trailing garbage ("2/4x", "1/4/8") is an
// error, not a silently truncated slice.
func ParseShard(s string) (index, count int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if ok {
		var ia, ib int
		if ia, err = strconv.Atoi(a); err == nil {
			if ib, err = strconv.Atoi(b); err == nil {
				index, count = ia, ib
			}
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("offramps: shard must be \"i/N\", got %q", s)
	}
	if count < 1 || index < 1 || index > count {
		return 0, 0, fmt.Errorf("offramps: shard %d/%d out of range", index, count)
	}
	return index, count, nil
}

// SuiteShard is one runnable slice of a suite. Spec contains the owned
// scenarios plus any helper scenarios they depend on (golden references
// of owned detectors and owned comparisons, transitively); Owned marks
// the scenarios whose results belong in this shard's report — helpers
// execute but are reported by the shard that owns them.
type SuiteShard struct {
	Spec  *SuiteSpec
	Owned map[string]bool
}

// Shard slices the suite into shard index (1-based) of count. The owned
// sets of the count shards partition the suite's scenarios exactly;
// comparisons are owned by their suspect's shard. Helper goldens may run
// in several shards — the golden cache makes the repeats cheap and
// determinism makes them bit-identical — so merged shard reports equal
// the unsharded run.
func (s *SuiteSpec) Shard(index, count int) (*SuiteShard, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if count < 1 || index < 1 || index > count {
		return nil, fmt.Errorf("offramps: shard %d/%d out of range", index, count)
	}
	var names []string
	for _, sc := range s.Scenarios {
		if ShardOf(sc.Name, count) == index-1 {
			names = append(names, sc.Name)
		}
	}
	return s.Subset(names...)
}

// Subset returns the runnable slice of the suite owning exactly the
// named scenarios: the sub-suite contains them plus their golden
// closure (golden references of owned detectors and owned comparisons,
// transitively) as helper runs, and the owned comparisons are the ones
// whose suspect is named. This is the closure logic both distribution
// mechanisms share: Shard calls it with a hash-keyed slice, and a farm
// worker (internal/farm) calls it with the single scenario name it
// leased, so a lease carries its helper golden runs the same way a
// static shard does.
func (s *SuiteSpec) Subset(names ...string) (*SuiteShard, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(s.Scenarios))
	for _, sc := range s.Scenarios {
		known[sc.Name] = true
	}
	owned := make(map[string]bool, len(names))
	for _, name := range names {
		if !known[name] {
			return nil, fmt.Errorf("offramps: suite %q has no scenario %q", s.Name, name)
		}
		owned[name] = true
	}

	// need = owned ∪ golden closure. A needed scenario's own detector may
	// reference another golden, so iterate to a fixpoint.
	need := make(map[string]bool, len(owned))
	for name := range owned {
		need[name] = true
	}
	var compares []CompareSpec
	for _, cmp := range s.Compare {
		if owned[cmp.Suspect] {
			compares = append(compares, cmp)
			need[cmp.Golden] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sc := range s.Scenarios {
			if need[sc.Name] && sc.Detector != nil && sc.Detector.Golden != "" && !need[sc.Detector.Golden] {
				need[sc.Detector.Golden] = true
				changed = true
			}
		}
	}

	sub := &SuiteSpec{
		Name:     s.Name,
		BaseSeed: s.BaseSeed,
		Budget:   s.Budget,
		Workers:  s.Workers,
		Compare:  compares,
		dir:      s.dir,
	}
	for _, sc := range s.Scenarios {
		if need[sc.Name] {
			sub.Scenarios = append(sub.Scenarios, sc)
		}
	}
	return &SuiteShard{Spec: sub, Owned: owned}, nil
}

// Filter reduces a report of the shard's Spec to the owned scenarios,
// preserving order. Comparisons are already shard-local.
func (sh *SuiteShard) Filter(rep *SuiteReport) *SuiteReport {
	out := &SuiteReport{
		Suite:       rep.Suite,
		BaseSeed:    rep.BaseSeed,
		Results:     make([]ScenarioResult, 0, len(sh.Owned)),
		Comparisons: rep.Comparisons,
	}
	for _, r := range rep.Results {
		if sh.Owned[r.Name] {
			out.Results = append(out.Results, r)
		}
	}
	return out
}
