// Thermal runaway: the paper's destructive trojan T7. The FPGA clamps the
// hotend MOSFET gate high; the firmware's MAXTEMP panic fires and kills
// its output — but the clamp sits downstream of the kill, so the element
// keeps heating past its working specification (§IV-C).
//
// The example prints an ASCII temperature timeline showing the setpoint
// ramp, the clamp engaging, the firmware panic, and the runaway.
//
//	go run ./examples/thermal_runaway
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"offramps"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

func main() {
	prog, err := offramps.TestPart()
	if err != nil {
		log.Fatal(err)
	}

	tr := trojan.NewT7ThermalRunaway(trojan.T7Params{Delay: 90 * sim.Second})
	tb, err := offramps.NewTestbed(
		offramps.WithSeed(1),
		offramps.WithTrojan(tr),
		offramps.WithSettle(90*sim.Second), // watch the post-kill physics
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tb.Run(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("firmware outcome: %v\n", res.HaltError)
	fmt.Printf("hotend peak: %.1f °C (working spec: 260 °C) — exceeded: %v\n\n",
		res.PeakHotendTemp, res.HotendExceededSafe)

	// ASCII plot of the hotend history, one row per 10 simulated seconds.
	history := tb.Plant.HotendHistory()
	const (
		cols    = 60
		maxTemp = 400.0
	)
	fmt.Printf("%8s  %-*s\n", "time", cols, "hotend temperature (each column = 6.7 °C, '|' = 260 °C spec)")
	specCol := int(260 / maxTemp * cols)
	step := 10 * sim.Second
	next := sim.Time(0)
	for _, s := range history {
		if s.At < next {
			continue
		}
		next = s.At + step
		n := int(s.Temp / maxTemp * float64(cols))
		if n < 0 {
			n = 0
		}
		if n > cols {
			n = cols
		}
		bar := []byte(strings.Repeat("#", n) + strings.Repeat(" ", cols-n))
		if specCol < len(bar) {
			if bar[specCol] == ' ' {
				bar[specCol] = '|'
			} else {
				bar[specCol] = '!'
			}
		}
		fmt.Printf("%8s  %s %5.1f°C\n", s.At, bar, s.Temp)
	}
	fmt.Println("\nThe firmware killed its heater output at the MAXTEMP panic, but the")
	fmt.Println("FPGA clamp holds the MOSFET on: 'bypassing all thermal control and")
	fmt.Println("fail-safes from the firmware' (paper §IV-C, Trojan T7).")
}
