// Flaw3D detection: the paper's §V-D study end-to-end. A known-good print
// is captured as the golden model; each of the eight Flaw3D trojans is
// applied to the G-code, printed, captured, and checked by the detector.
//
//	go run ./examples/flaw3d_detection
package main

import (
	"context"
	"fmt"
	"log"

	"offramps"
	"offramps/internal/detect"
	"offramps/internal/flaw3d"
	"offramps/internal/gcode"
)

func capturePrint(prog gcode.Program, seed uint64) *offramps.Result {
	tb, err := offramps.NewTestbed(offramps.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	res, err := tb.Run(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	prog, err := offramps.TestPart()
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: golden model. In the paper this print would be validated
	// by destructive testing before its capture is trusted (§V-B).
	golden := capturePrint(prog, 1)
	fmt.Printf("golden capture: %d transactions\n\n", golden.Recording.Len())

	// Step 2: each Table II trojan, printed with a different time-noise
	// seed (a physically separate run of the job).
	for i, tc := range flaw3d.TableII() {
		tampered, err := tc.Apply(prog)
		if err != nil {
			log.Fatal(err)
		}
		suspect := capturePrint(tampered, uint64(i)+100)
		report, err := detect.Compare(golden.Recording, suspect.Recording, detect.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		verdict := "MISSED"
		if report.TrojanLikely {
			verdict = "detected"
		}
		fmt.Printf("%-28s %s  (%d mismatches, largest %.2f%%, %d final-count diffs)\n",
			tc.String(), verdict, report.NumMismatches, report.LargestPercent, len(report.Final))
	}

	// Step 3: verify the margin doesn't cry wolf on a clean re-print.
	clean := capturePrint(prog, 999)
	report, err := detect.Compare(golden.Recording, clean.Recording, detect.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclean re-print: trojanLikely=%v (drift %.2f%%, within the paper's 5%% margin)\n",
		report.TrojanLikely, report.LargestPercent)
}
