// Quickstart: slice a part, print it on the simulated OFFRAMPS testbed,
// and look at what the FPGA captured.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"offramps"
)

func main() {
	// 1. Slice the standard test part (a 20 mm calibration box — the
	//    simulated stand-in for the paper's graph-paper photos).
	prog, err := offramps.TestPart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sliced program: %d lines\n", len(prog))

	// 2. Assemble the testbed: firmware twin, OFFRAMPS MITM, RAMPS
	//    drivers, printer plant. No trojans — this is the paper's T0
	//    "golden print" with the FPGA in bypass mode.
	tb, err := offramps.NewTestbed(offramps.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Print it. The limit bounds *simulated* time, not wall time; a
	//    full print simulates in well under a second of wall clock.
	res, err := tb.Run(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the outcome.
	fmt.Printf("print finished in %v simulated time\n", res.Duration)
	fmt.Printf("printed part: %s\n", res.Quality)
	fmt.Printf("hotend peak: %.1f °C, bed peak: %.1f °C\n", res.PeakHotendTemp, res.PeakBedTemp)

	// 5. The OFFRAMPS capture: one transaction per 0.1 s with the step
	//    counts of all four motors (paper §V-B).
	fmt.Printf("capture: %d transactions\n", res.Recording.Len())
	fmt.Println("first five:")
	fmt.Println("Index, X, Y, Z, E")
	for _, tx := range res.Recording.Transactions[:5] {
		fmt.Printf("%d, %d, %d, %d, %d\n", tx.Index, tx.X, tx.Y, tx.Z, tx.E)
	}
	final, _ := res.Recording.Final()
	fmt.Printf("final counts: X=%d Y=%d Z=%d E=%d\n", final.X, final.Y, final.Z, final.E)
}
