// IP theft: an attacker with MITM access to the control signals steals
// the printed design. The paper's discussion names this capability
// ("reverse-engineering printed parts from their control signals", §VI)
// as a consequence of the OFFRAMPS position in the signal chain; unlike
// the lossy acoustic/power side channels of prior work (§II-A), the
// capture is exact.
//
//	go run ./examples/ip_theft
package main

import (
	"context"
	"fmt"
	"log"

	"offramps"
	"offramps/internal/reconstruct"
)

func main() {
	// The victim prints a proprietary part...
	prog, err := offramps.TestPart()
	if err != nil {
		log.Fatal(err)
	}
	tb, err := offramps.NewTestbed(offramps.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := tb.Run(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}

	// ...and the attacker walks away with the capture. Steps-per-mm for
	// the victim's machine class is public knowledge ("the attackers have
	// prior information about the type of motors", paper §II-A).
	design, err := reconstruct.FromCapture(res.Recording, reconstruct.DefaultCalibration(), 0.1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stolen design: %s\n\n", design.Summary())
	fmt.Printf("%-8s %-8s %-10s %s\n", "layer", "Z (mm)", "filament", "extent (mm)")
	for i, l := range design.Layers {
		if l.Filament < 1 {
			continue // skip prime-line slivers
		}
		fmt.Printf("%-8d %-8.2f %-10.2f %.2f × %.2f\n", i, l.Z, l.Filament, l.Width(), l.Depth())
	}

	// Render the top layer's toolpath.
	top := len(design.Layers) - 1
	img, err := design.RenderLayer(top, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstructed toolpath of layer %d (each '#' is a visited cell):\n%s", top, img)
	fmt.Println("\nEvery coordinate above came from the step counters alone —")
	fmt.Println("no access to the G-code, the slicer, or the CAD model.")
}
