// Live monitor: real-time trojan detection with mid-print abort. The
// paper notes the analysis "can also be done in real-time while printing,
// enabling a user to halt a print as soon as a Trojan is suspected"
// (§V-C) — saving machine time and material (§V-A).
//
// The example prints the same job three times with a live golden monitor
// attached via WithDetector(..., AbortOnTrip): clean (runs to
// completion), blatant relocation trojan (aborted within seconds), and
// stealthy 2 % reduction (flagged at the final count check). A fourth run
// pairs the monitor with the golden-free rule engine in an ensemble —
// the same Run entry point drives every configuration.
//
//	go run ./examples/live_monitor
package main

import (
	"context"
	"fmt"
	"log"

	"offramps"
	"offramps/internal/detect"
	"offramps/internal/flaw3d"
	"offramps/internal/gcode"
)

func main() {
	ctx := context.Background()
	prog, err := offramps.TestPart()
	if err != nil {
		log.Fatal(err)
	}

	// Golden capture from a validated print.
	goldenTB, err := offramps.NewTestbed(offramps.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	golden, err := goldenTB.Run(ctx, prog)
	if err != nil {
		log.Fatal(err)
	}
	goldenTime := golden.Duration
	fmt.Printf("golden print: %v, %d transactions\n\n", goldenTime, golden.Recording.Len())

	monitored := func(name string, job gcode.Program, seed uint64, build func() (detect.Detector, error)) {
		tb, err := offramps.NewTestbed(offramps.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		d, err := build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := tb.Run(ctx, job, offramps.WithDetector(d, offramps.AbortOnTrip))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", name)
		switch {
		case res.Aborted:
			saved := goldenTime - res.AbortedAt
			fmt.Printf("    ABORTED at %v — %s\n", res.AbortedAt, res.TripReason)
			fmt.Printf("    saved ≈%v of machine time and the filament with it\n", saved)
		case res.TrojanLikely:
			fmt.Printf("    completed, but flagged at the final 0%%-margin check\n")
		default:
			fmt.Printf("    completed clean in %v\n", res.Duration)
		}
		fmt.Println()
	}

	goldenMonitor := func() (detect.Detector, error) {
		return detect.NewMonitor(golden.Recording, detect.DefaultConfig())
	}

	monitored("clean re-print (different seed)", prog, 7, goldenMonitor)

	relocated, err := flaw3d.Relocate(prog, 5)
	if err != nil {
		log.Fatal(err)
	}
	monitored("relocation trojan (every 5 moves)", relocated, 8, goldenMonitor)

	reduced, err := flaw3d.Reduce(prog, 0.98)
	if err != nil {
		log.Fatal(err)
	}
	monitored("stealthy 2% reduction trojan", reduced, 9, goldenMonitor)

	// The same trojan hunted by an ensemble: golden monitor + golden-free
	// physics rules, tripping if either does.
	monitored("relocation trojan vs ensemble(any)", relocated, 10, func() (detect.Detector, error) {
		m, err := detect.NewMonitor(golden.Recording, detect.DefaultConfig())
		if err != nil {
			return nil, err
		}
		e, err := detect.NewRuleEngine(detect.DefaultLimits())
		if err != nil {
			return nil, err
		}
		return detect.NewEnsemble(detect.VoteAny, m, e)
	})
}
