// Trojan gallery: run the paper's full Table I attack suite (T1–T9)
// against the same sliced part and measure each trojan's physical effect
// on the printed object or the machine.
//
//	go run ./examples/trojan_gallery
package main

import (
	"context"
	"fmt"
	"log"

	"offramps"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

func main() {
	prog, err := offramps.TestPart()
	if err != nil {
		log.Fatal(err)
	}

	// Golden reference: FPGA in bypass (paper's T0).
	goldenTB, err := offramps.NewTestbed(offramps.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	golden, err := goldenTB.Run(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T0 golden: %s\n\n", golden.Quality)

	for _, tr := range trojan.Suite(1) {
		opts := []offramps.Option{offramps.WithSeed(1), offramps.WithTrojan(tr)}
		if tr.ID() == "T7" {
			// Destructive trojan: keep simulating after the firmware
			// panics to watch the clamped heater run away.
			opts = append(opts, offramps.WithSettle(60*sim.Second))
		}
		tb, err := offramps.NewTestbed(opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tb.Run(context.Background(), prog)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s [%s] %s\n", tr.ID(), tr.Kind(), tr.Description())
		diff := res.Part.Compare(golden.Part, 1.0)
		switch {
		case !res.Completed:
			fmt.Printf("    print DIED: %v\n", res.HaltError)
		default:
			fmt.Printf("    part: %s\n", res.Quality)
			fmt.Printf("    vs golden: %s\n", diff)
		}
		if res.HotendExceededSafe {
			fmt.Printf("    DESTRUCTIVE: hotend peaked at %.0f °C (spec 260)\n", res.PeakHotendTemp)
		}
		if res.PeakFanDuty < golden.PeakFanDuty/2 {
			fmt.Printf("    cooling sabotaged: peak fan duty %.2f (golden %.2f)\n",
				res.PeakFanDuty, golden.PeakFanDuty)
		}
		lost := uint64(0)
		for _, n := range res.StepsLost {
			lost += n
		}
		if lost > 0 {
			fmt.Printf("    %d commanded steps silently lost\n", lost)
		}
		fmt.Println()
	}
}
