package offramps

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"offramps/internal/firmware"
	"offramps/internal/fpga"
	"offramps/internal/gcode"
	"offramps/internal/printer"
	"offramps/internal/signal"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

func mustTestPart(t *testing.T) gcode.Program {
	t.Helper()
	prog, err := TestPart()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestGoldenPrintEndToEnd(t *testing.T) {
	tb, err := NewTestbed(WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), mustTestPart(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("golden print halted: %v", res.HaltError)
	}
	// 1.6 mm at 0.2 mm layers = 8 layers.
	if res.Quality.LayerCount != 8 {
		t.Errorf("LayerCount = %d, want 8", res.Quality.LayerCount)
	}
	// 20 mm box minus one extrusion width.
	if math.Abs(res.Quality.FootprintW-19.55) > 0.2 {
		t.Errorf("FootprintW = %v, want ≈19.55", res.Quality.FootprintW)
	}
	// A clean print shows no meaningful layer shift.
	if res.Quality.MaxLayerShift > 0.2 {
		t.Errorf("MaxLayerShift = %v on a clean print", res.Quality.MaxLayerShift)
	}
	// The hotend regulated near 210 and never ran away.
	if res.PeakHotendTemp < 208 || res.PeakHotendTemp > 225 {
		t.Errorf("PeakHotendTemp = %v", res.PeakHotendTemp)
	}
	if res.HotendExceededSafe {
		t.Error("clean print exceeded thermal spec")
	}
	// The part fan ran at full speed after layer 1.
	if res.PeakFanDuty < 0.9 {
		t.Errorf("PeakFanDuty = %v", res.PeakFanDuty)
	}
	// Capture exists, is non-trivial, and ends settled.
	if res.Recording == nil || res.Recording.Len() < 100 {
		t.Fatalf("capture too small: %v", res.Recording)
	}
	final, _ := res.Recording.Final()
	if final.E <= 0 {
		t.Errorf("final E count = %d", final.E)
	}
	// No steps were lost on a clean run.
	for a, lost := range res.StepsLost {
		if lost != 0 {
			t.Errorf("StepsLost[%v] = %d on clean run", a, lost)
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() *Result {
		tb, err := NewTestbed(WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := tb.Run(context.Background(), mustTestPart(t))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration {
		t.Errorf("durations differ: %v vs %v", a.Duration, b.Duration)
	}
	if a.Recording.Len() != b.Recording.Len() {
		t.Fatalf("capture lengths differ: %d vs %d", a.Recording.Len(), b.Recording.Len())
	}
	for i := range a.Recording.Transactions {
		if a.Recording.Transactions[i] != b.Recording.Transactions[i] {
			t.Fatalf("transaction %d differs", i)
		}
	}
}

func TestWithoutMITMMatchesGeometry(t *testing.T) {
	prog := mustTestPart(t)
	mitm, err := NewTestbed(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	resM, err := mitm.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewTestbed(WithSeed(3), WithoutMITM())
	if err != nil {
		t.Fatal(err)
	}
	resD, err := direct.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if resD.Recording != nil {
		t.Error("direct stack produced a capture")
	}
	diff := resM.Part.Compare(resD.Part, 1.0)
	if math.Abs(diff.FilamentRatio-1) > 0.001 {
		t.Errorf("MITM changed filament: ratio %v", diff.FilamentRatio)
	}
	if diff.MaxCentroidShift > 0.01 {
		t.Errorf("MITM shifted geometry by %v mm", diff.MaxCentroidShift)
	}
}

// TestTrojanRequiresMITM: a jumpered (WithoutMITM) rig has no board to
// arm trojans on or tap — building one with either must be a
// configuration error, never a rig that silently drops them. Option
// order must not matter.
func TestTrojanRequiresMITM(t *testing.T) {
	tr := trojan.NewT7ThermalRunaway(trojan.T7Params{})
	for _, opts := range [][]Option{
		{WithoutMITM(), WithTrojan(tr)},
		{WithTrojan(tr), WithoutMITM()},
	} {
		tb, err := NewTestbed(opts...)
		if err == nil {
			t.Fatal("trojan accepted on direct-wired stack")
		}
		if tb != nil {
			t.Error("failed construction returned a testbed")
		}
		if !strings.Contains(err.Error(), "config error") {
			t.Errorf("error does not read as a configuration error: %v", err)
		}
	}
}

// TestTapSideRequiresMITM: the monitoring tap lives on the board, so
// placing it on a jumpered rig is the same class of configuration error.
func TestTapSideRequiresMITM(t *testing.T) {
	_, err := NewTestbed(WithoutMITM(), WithTapSide(fpga.TapRAMPS))
	if err == nil || !strings.Contains(err.Error(), "config error") {
		t.Fatalf("tap side accepted on direct-wired stack: %v", err)
	}
}

// TestDualTapRun prints end to end with both buses tapped: the two
// captures must agree on a clean print (modulo nothing — same counters,
// same windows), and the per-side recordings surface on the Result.
func TestDualTapRun(t *testing.T) {
	tb, err := NewTestbed(WithSeed(3), WithTapSide(fpga.TapDual))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), mustTestPart(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("dual-tap print halted: %v", res.HaltError)
	}
	if res.ArduinoRecording == nil || res.RAMPSRecording == nil {
		t.Fatal("dual tap missing a per-side recording")
	}
	if res.Recording != res.ArduinoRecording {
		t.Error("primary recording is not the Arduino-side capture")
	}
	a, r := res.ArduinoRecording, res.RAMPSRecording
	if a.Len() == 0 || a.Len() != r.Len() {
		t.Fatalf("capture lengths: arduino %d, ramps %d", a.Len(), r.Len())
	}
	for i := range a.Transactions {
		if a.Transactions[i] != r.Transactions[i] {
			t.Fatalf("clean print: taps disagree at window %d: %+v vs %+v",
				i, a.Transactions[i], r.Transactions[i])
		}
	}
}

func TestRunTimeout(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	// A dwell longer than the budget.
	prog, err := gcode.ParseString("G4 S100\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = tb.Run(context.Background(), prog, WithLimit(5*sim.Second))
	var timeout *ErrTimeout
	if !errors.As(err, &timeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "did not finish") {
		t.Errorf("timeout message: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	tb, err := NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(context.Background(), nil, WithLimit(0)); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := tb.Run(context.Background(), nil, WithLimit(sim.Second)); err == nil {
		t.Error("empty program accepted")
	}
}

func TestWithStartPosition(t *testing.T) {
	tb, err := NewTestbed(WithStartPosition(80, 70, 12))
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Plant.Position(signal.AxisX); got != 80 {
		t.Errorf("X start = %v", got)
	}
	if got := tb.Plant.Position(signal.AxisZ); got != 12 {
		t.Errorf("Z start = %v", got)
	}
}

func TestStartPositionDoesNotChangeCapture(t *testing.T) {
	// The paper: "As the number of steps to home is determined by the
	// arbitrary position of the print head at the start of the print,
	// capturing this data was deemed unnecessary" — counters reset at
	// homing, so two prints from different park positions must produce
	// identical captures (same seed).
	prog := mustTestPart(t)
	run := func(x, y, z float64) *Result {
		tb, err := NewTestbed(WithSeed(11), WithStartPosition(x, y, z))
		if err != nil {
			t.Fatal(err)
		}
		res, err := tb.Run(context.Background(), prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(55, 40, 8)
	b := run(150, 120, 30)
	// Trailing settled windows may differ in count (the session stop time
	// is not synchronized to the capture), but every synchronized window
	// and the final counts must match exactly.
	n := a.Recording.Len()
	if b.Recording.Len() < n {
		n = b.Recording.Len()
	}
	if n < 100 {
		t.Fatalf("captures too short: %d", n)
	}
	for i := 0; i < n; i++ {
		if a.Recording.Transactions[i] != b.Recording.Transactions[i] {
			t.Fatalf("transaction %d differs between park positions", i)
		}
	}
	fa, _ := a.Recording.Final()
	fb, _ := b.Recording.Final()
	fa.Index, fb.Index = 0, 0
	if fa != fb {
		t.Errorf("final counts differ: %+v vs %+v", fa, fb)
	}
}

func TestWithConfigModifiers(t *testing.T) {
	tb, err := NewTestbed(
		WithFirmwareConfig(func(c *firmware.Config) { c.DefaultFeedrate = 999 }),
		WithPlantConfig(func(c *printer.Config) { c.Ambient = 30 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Plant.HotendTemp(); math.Abs(got-25) > 1e-9 {
		// InitialTemp still 25; ambient only affects cooling floor.
		t.Errorf("hotend initial = %v", got)
	}
}
