package offramps

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"offramps/internal/capture"
	"offramps/internal/detect"
)

// goldenResultForTest simulates one golden print and returns its result.
func goldenResultForTest(t *testing.T, mode CaptureMode) *Result {
	t.Helper()
	prog := mustTestPart(t)
	scens := []Scenario{{Name: "golden", Program: prog, Seed: 5}}
	results, err := Campaign{Workers: 1, CaptureMode: mode}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(results); err != nil {
		t.Fatal(err)
	}
	return results[0].Result
}

// TestGoldenCodecRoundTrip: encode→decode over a real simulated golden is
// indistinguishable from the original — reflect.DeepEqual down to the
// unexported fingerprint state, in both capture modes.
func TestGoldenCodecRoundTrip(t *testing.T) {
	for _, mode := range []CaptureMode{CaptureFull, CaptureFingerprint} {
		t.Run(mode.String(), func(t *testing.T) {
			res := goldenResultForTest(t, mode)
			enc, err := encodeGoldenResult(res)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := decodeGoldenResult(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, dec) {
				t.Errorf("decoded golden differs from original:\n orig %+v\n dec  %+v", res, dec)
			}
			// Encoding is deterministic: same result, same bytes.
			enc2, err := encodeGoldenResult(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(enc, enc2) {
				t.Error("re-encoding the decoded result produced different bytes")
			}
		})
	}
}

// TestGoldenCodecPreservesAliasing: when a per-side view shares the
// primary recording/fingerprint object, the decoded result must share it
// too — consumers compare these by pointer.
func TestGoldenCodecPreservesAliasing(t *testing.T) {
	res := goldenResultForTest(t, CaptureFull)
	enc, err := encodeGoldenResult(res)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeGoldenResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if (res.ArduinoRecording == res.Recording) != (dec.ArduinoRecording == dec.Recording) {
		t.Error("arduino recording aliasing not preserved")
	}
	if (res.RAMPSRecording == res.Recording) != (dec.RAMPSRecording == dec.Recording) {
		t.Error("ramps recording aliasing not preserved")
	}
	if (res.ArduinoFingerprint == res.Fingerprint) != (dec.ArduinoFingerprint == dec.Fingerprint) {
		t.Error("arduino fingerprint aliasing not preserved")
	}
	if (res.RAMPSFingerprint == res.Fingerprint) != (dec.RAMPSFingerprint == dec.Fingerprint) {
		t.Error("ramps fingerprint aliasing not preserved")
	}
}

// TestGoldenCodecFingerprintStaysLive: a decoded fingerprint must keep
// accepting Adds with correct delta accounting (the unexported previous-
// window counters are rehydrated, not zeroed).
func TestGoldenCodecFingerprintStaysLive(t *testing.T) {
	res := goldenResultForTest(t, CaptureFingerprint)
	enc, err := encodeGoldenResult(res)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeGoldenResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	live, decoded := *res.Fingerprint, *dec.Fingerprint
	next := capture.Transaction{Index: uint32(live.Windows), X: 12345, Y: -7, Z: 99, E: 100000}
	live.Add(next)
	decoded.Add(next)
	if !live.Equal(&decoded) {
		t.Errorf("decoded fingerprint diverged after Add:\n live %v\n dec  %v", &live, &decoded)
	}
	if live.Axes != decoded.Axes {
		t.Errorf("axis summaries diverged after Add: %v vs %v", live.Axes, decoded.Axes)
	}
}

// TestGoldenCodecRejectsNonGolden: shapes the cache never memoizes —
// halts, aborts, detections — refuse to encode rather than persisting a
// lie.
func TestGoldenCodecRejectsNonGolden(t *testing.T) {
	cases := map[string]*Result{
		"nil":         nil,
		"halt-error":  {HaltError: fmt.Errorf("boom")},
		"aborted":     {Aborted: true},
		"aborted-at":  {AbortedAt: 1},
		"trip-reason": {TripReason: "thermal"},
		"detections":  {Detections: []*detect.Report{{}}},
		"trojan-flag": {TrojanLikely: true},
	}
	for name, res := range cases {
		if _, err := encodeGoldenResult(res); err == nil {
			t.Errorf("%s: non-golden result encoded without error", name)
		}
	}
}

// TestGoldenCodecRejectsMalformed: truncation prefixes, trailing
// garbage, and a foreign version must decode to an error, never a
// half-filled result. Every prefix of the fixed-width header region is
// tried; the long digest/deposit tail is sampled with a prime stride so
// the quadratic sweep stays fast under -race.
func TestGoldenCodecRejectsMalformed(t *testing.T) {
	res := goldenResultForTest(t, CaptureFingerprint)
	enc, err := encodeGoldenResult(res)
	if err != nil {
		t.Fatal(err)
	}
	cuts := make([]int, 0, 2048)
	for i := 0; i < len(enc) && i < 1024; i++ {
		cuts = append(cuts, i)
	}
	for i := 1024; i < len(enc); i += 257 {
		cuts = append(cuts, i)
	}
	for i := len(enc) - 64; i < len(enc); i++ {
		if i >= 1024 {
			cuts = append(cuts, i)
		}
	}
	for _, i := range cuts {
		if _, err := decodeGoldenResult(enc[:i]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", i, len(enc))
		}
	}
	if _, err := decodeGoldenResult(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing byte decoded without error")
	}
	bad := append([]byte{}, enc...)
	bad[0] ^= 0xff // version word
	if _, err := decodeGoldenResult(bad); err == nil {
		t.Error("foreign codec version decoded without error")
	}
}
