package offramps

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/fpga"
	"offramps/internal/gcode"
	"offramps/internal/sim"
)

// Scenario is one cell of a campaign's (program × trojan × seed ×
// detector) grid: a complete, self-contained description of one simulated
// print. Mutable collaborators (trojans, detectors) are specified as
// factories so a scenario can be run any number of times — and on any
// worker — with identical results.
type Scenario struct {
	// Name labels the scenario in results ("T3", "drift-2", ...).
	Name string
	// Program is the G-code to print.
	Program gcode.Program
	// Seed is the time-noise seed, used verbatim — unless the campaign
	// sets a non-zero BaseSeed, in which case a zero Seed is derived
	// deterministically from BaseSeed and the scenario's position.
	Seed uint64
	// Trojan, when non-nil, builds a fresh trojan for the run; it receives
	// the scenario's effective seed so randomized trojans stay
	// reproducible.
	Trojan func(seed uint64) fpga.Trojan
	// Detector, when non-nil, builds a fresh live detector attached to the
	// run under Policy.
	Detector func() (detect.Detector, error)
	// Policy applies to the Detector (FlagOnly or AbortOnTrip).
	Policy TripPolicy
	// Options are extra testbed construction options (settle time, plant
	// config, ...), applied after the campaign's own seed/trojan options.
	Options []Option
	// RunOptions are extra run options, applied after the campaign's own
	// limit/detector options.
	RunOptions []RunOption
	// Prepare, when non-nil, instruments the freshly built testbed before
	// the run starts (signal probes, recorders, ...).
	Prepare func(*Testbed) error
}

// ScenarioResult pairs one scenario with its outcome.
type ScenarioResult struct {
	// Name and Seed echo the scenario (Seed is the effective seed).
	Name string
	Seed uint64
	// Result is the run's outcome (nil when Err is set).
	Result *Result
	// Err is the scenario's failure, if any. One scenario failing does not
	// stop the rest of the campaign.
	Err error
}

// Campaign fans scenarios across a worker pool. Each scenario gets its
// own testbed, deterministic seeding, and an independently constructed
// trojan and detector, so results are bit-identical regardless of worker
// count or scheduling order — the concurrency is free speedup, not a
// source of nondeterminism.
type Campaign struct {
	// Workers is the pool size; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Budget is the per-scenario simulated-time limit; 0 means
	// DefaultRunBudget.
	Budget sim.Time
	// BaseSeed, when non-zero, seeds scenarios whose own Seed is zero:
	// scenario i gets BaseSeed + i·31 + 1. When BaseSeed is zero, every
	// scenario's Seed is used verbatim (including zero), so experiment
	// suites that pair same-seed runs stay paired for any caller seed.
	BaseSeed uint64
}

// Run executes every scenario and returns the results in scenario order.
// Per-scenario failures land in the corresponding ScenarioResult.Err; Run
// itself errors only when the context is cancelled (already-finished
// results are still returned).
func (c Campaign) Run(ctx context.Context, scenarios []Scenario) ([]ScenarioResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	results := make([]ScenarioResult, len(scenarios))
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i] = c.runScenario(ctx, i, scenarios[i])
			}
		}()
	}
feed:
	for i := range scenarios {
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("offramps: campaign cancelled: %w", err)
	}
	return results, nil
}

// runScenario builds and runs one scenario end to end.
func (c Campaign) runScenario(ctx context.Context, i int, s Scenario) ScenarioResult {
	seed := s.Seed
	if seed == 0 && c.BaseSeed != 0 {
		seed = c.BaseSeed + uint64(i)*31 + 1
	}
	out := ScenarioResult{Name: s.Name, Seed: seed}

	opts := []Option{WithSeed(seed)}
	if s.Trojan != nil {
		tr := s.Trojan(seed)
		if tr == nil {
			out.Err = fmt.Errorf("offramps: scenario %q: trojan factory returned nil", s.Name)
			return out
		}
		opts = append(opts, WithTrojan(tr))
	}
	opts = append(opts, s.Options...)
	tb, err := NewTestbed(opts...)
	if err != nil {
		out.Err = fmt.Errorf("offramps: scenario %q: %w", s.Name, err)
		return out
	}
	if s.Prepare != nil {
		if err := s.Prepare(tb); err != nil {
			out.Err = fmt.Errorf("offramps: scenario %q: prepare: %w", s.Name, err)
			return out
		}
	}

	budget := c.Budget
	if budget == 0 {
		budget = DefaultRunBudget
	}
	ropts := []RunOption{WithLimit(budget)}
	if s.Detector != nil {
		d, err := s.Detector()
		if err != nil {
			out.Err = fmt.Errorf("offramps: scenario %q: detector: %w", s.Name, err)
			return out
		}
		ropts = append(ropts, WithDetector(d, s.Policy))
	}
	ropts = append(ropts, s.RunOptions...)

	res, err := tb.Run(ctx, s.Program, ropts...)
	if err != nil {
		out.Err = fmt.Errorf("offramps: scenario %q: %w", s.Name, err)
		return out
	}
	out.Result = res
	return out
}

// firstScenarioErr returns the first per-scenario failure, or nil.
func firstScenarioErr(results []ScenarioResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// scenarioCapture extracts a scenario's non-empty recording or explains
// why it cannot.
func scenarioCapture(r ScenarioResult) (*capture.Recording, error) {
	if r.Err != nil {
		return nil, r.Err
	}
	if r.Result == nil || r.Result.Recording == nil || r.Result.Recording.Len() == 0 {
		return nil, fmt.Errorf("offramps: scenario %q produced no capture", r.Name)
	}
	return r.Result.Recording, nil
}
