package offramps

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/firmware"
	"offramps/internal/fpga"
	"offramps/internal/gcode"
	"offramps/internal/sim"
)

// Scenario is one cell of a campaign's (program × trojan × seed ×
// detector) grid: a complete, self-contained description of one simulated
// print. Mutable collaborators (trojans, detectors) are specified as
// factories so a scenario can be run any number of times — and on any
// worker — with identical results.
type Scenario struct {
	// Name labels the scenario in results ("T3", "drift-2", ...).
	Name string
	// Program is the G-code to print.
	Program gcode.Program
	// Seed is the time-noise seed, used verbatim — unless the campaign
	// sets a non-zero BaseSeed, in which case a zero Seed is derived
	// deterministically from BaseSeed and the scenario's position.
	Seed uint64
	// Trojan, when non-nil, builds a fresh trojan for the run; it receives
	// the scenario's effective seed so randomized trojans stay
	// reproducible.
	Trojan func(seed uint64) fpga.Trojan
	// Detector, when non-nil, builds a fresh live detector attached to the
	// run under Policy.
	Detector func() (detect.Detector, error)
	// Policy applies to the Detector (FlagOnly or AbortOnTrip).
	Policy TripPolicy
	// DetectorBind places the Detector's tap binding; the zero value,
	// BindPrimary, feeds it from the board's primary tap — the paper's
	// rig and the behaviour of every pre-binding scenario.
	DetectorBind TapBinding
	// Options are extra testbed construction options (settle time, plant
	// config, ...), applied after the campaign's own seed/trojan options.
	Options []Option
	// RunOptions are extra run options, applied after the campaign's own
	// limit/detector options.
	RunOptions []RunOption
	// Prepare, when non-nil, instruments the freshly built testbed before
	// the run starts (signal probes, recorders, ...).
	Prepare func(*Testbed) error
}

// ScenarioResult pairs one scenario with its outcome.
type ScenarioResult struct {
	// Name and Seed echo the scenario (Seed is the effective seed).
	Name string
	Seed uint64
	// Result is the run's outcome (nil when Err is set).
	Result *Result
	// Err is the scenario's failure, if any. One scenario failing does not
	// stop the rest of the campaign.
	Err error
}

// Campaign fans scenarios across a worker pool. Each scenario gets its
// own testbed, deterministic seeding, and an independently constructed
// trojan and detector, so results are bit-identical regardless of worker
// count or scheduling order — the concurrency is free speedup, not a
// source of nondeterminism.
type Campaign struct {
	// Workers is the pool size; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Budget is the per-scenario simulated-time limit; 0 means
	// DefaultRunBudget.
	Budget sim.Time
	// BaseSeed, when non-zero, seeds scenarios whose own Seed is zero:
	// scenario i gets BaseSeed + i·31 + 1. When BaseSeed is zero, every
	// scenario's Seed is used verbatim (including zero), so experiment
	// suites that pair same-seed runs stay paired for any caller seed.
	BaseSeed uint64
	// Cache, when non-nil, memoizes golden (trojan-free, unmodified)
	// scenario results by (program hash, seed, budget) so repeated golden
	// prints across campaigns simulate exactly once. Determinism makes a
	// hit bit-identical to a fresh run. Scenarios with trojans, detectors,
	// Prepare hooks, or any extra options are never cached.
	Cache *GoldenCache
	// Sinks receive each ScenarioResult as it completes (completion
	// order, Emit calls serialized across workers), so huge campaigns
	// stream instead of buffering. A sink error does not stop the
	// campaign; the first one is returned (as a *SinkError) after every
	// scenario finished. The campaign never closes a sink — one sink
	// commonly spans several Run calls (a suite's waves, a multi-suite
	// sweep), so the owner must call Close after the last campaign or
	// buffered sinks (e.g. CSVSink) lose their tail.
	Sinks []ResultSink
	// CaptureMode selects full-trace or fingerprint-only capture for
	// every run (default CaptureFull). In fingerprint mode no scenario
	// materializes a Recording, and same-(program, seed, budget)
	// scenarios that differ only in their FlagOnly detector are fused
	// into one simulation observing all the detectors at once — the N-
	// detectors-per-print sweep costs one print instead of N.
	CaptureMode CaptureMode
}

// planEntry lazily compiles one program's shared move plan. Compilation
// failures are swallowed — the member runs fall back to the live
// interpreter, which accepts anything the planner would reject.
type planEntry struct {
	once sync.Once
	c    *firmware.Compiled
}

func (pe *planEntry) compiled(prog gcode.Program) *firmware.Compiled {
	pe.once.Do(func() { pe.c, _ = firmware.Compile(prog, firmware.DefaultConfig()) })
	return pe.c
}

// planEligible reports whether a scenario may run from a plan compiled
// under the default firmware configuration: any extra Options could
// carry WithFirmwareConfig, whose effect on planning is opaque, so only
// option-free scenarios share plans. Seed and time noise never affect
// planning (see firmware.Compile).
func planEligible(s *Scenario) bool { return len(s.Options) == 0 }

// fusible reports whether a scenario can join a fused fingerprint-mode
// run: the simulation must be fully determined by (program, seed,
// budget) — no trojans, hooks, or opaque options — and the detector
// must be a passive FlagOnly observer of the primary/Arduino feed, so
// attaching N of them to one print is observationally identical to N
// separate prints.
func fusible(s *Scenario) bool {
	return s.Trojan == nil && s.Prepare == nil &&
		len(s.Options) == 0 && len(s.RunOptions) == 0 &&
		s.Detector != nil && s.Policy == FlagOnly &&
		(s.DetectorBind == BindPrimary || s.DetectorBind == BindArduino)
}

// fuseKey identifies one shared simulation of a fused unit.
type fuseKey struct {
	program [sha256.Size]byte
	seed    uint64
	bind    TapBinding
}

// Run executes every scenario and returns the results in scenario order.
// Per-scenario failures land in the corresponding ScenarioResult.Err; Run
// itself errors only when the context is cancelled (already-finished
// results are still returned).
//
// Same-program scenarios share one compiled move plan (parse/plan cost
// is paid once per distinct program), every worker reuses a pooled
// testbed core across its runs, and in fingerprint mode scenarios that
// differ only in their detector are fused into shared simulations. All
// three are pure mechanics: results are bit-identical to the naive
// one-testbed-per-scenario execution.
func (c Campaign) Run(ctx context.Context, scenarios []Scenario) ([]ScenarioResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}

	budget := c.Budget
	if budget == 0 {
		budget = DefaultRunBudget
	}

	// Precompute effective seeds, shared-plan groups, and — in
	// fingerprint mode — fusion units. A unit is one worker task: a
	// single scenario, or several fused onto one simulation.
	effSeed := make([]uint64, len(scenarios))
	plans := make(map[[sha256.Size]byte]*planEntry)
	planOf := make([]*planEntry, len(scenarios))
	hashes := make([][sha256.Size]byte, len(scenarios))
	hashed := make([]bool, len(scenarios))
	hashOf := func(i int) [sha256.Size]byte {
		if !hashed[i] {
			hashes[i] = hashProgram(scenarios[i].Program)
			hashed[i] = true
		}
		return hashes[i]
	}
	for i := range scenarios {
		effSeed[i] = scenarios[i].Seed
		if effSeed[i] == 0 && c.BaseSeed != 0 {
			effSeed[i] = c.BaseSeed + uint64(i)*31 + 1
		}
		if planEligible(&scenarios[i]) {
			h := hashOf(i)
			pe, ok := plans[h]
			if !ok {
				pe = &planEntry{}
				plans[h] = pe
			}
			planOf[i] = pe
		}
	}
	var units [][]int
	if c.CaptureMode == CaptureFingerprint {
		fused := make(map[fuseKey]int) // key → index into units
		for i := range scenarios {
			if !fusible(&scenarios[i]) {
				units = append(units, []int{i})
				continue
			}
			key := fuseKey{program: hashOf(i), seed: effSeed[i], bind: scenarios[i].DetectorBind}
			if u, ok := fused[key]; ok {
				units[u] = append(units[u], i)
			} else {
				fused[key] = len(units)
				units = append(units, []int{i})
			}
		}
	} else {
		units = make([][]int, len(scenarios))
		for i := range scenarios {
			units[i] = []int{i}
		}
	}

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	results := make([]ScenarioResult, len(scenarios))
	var sinkMu sync.Mutex
	var sinkErr error
	emit := func(r ScenarioResult) {
		if len(c.Sinks) == 0 {
			return
		}
		sinkMu.Lock()
		defer sinkMu.Unlock()
		for _, s := range c.Sinks {
			if err := s.Emit(r); err != nil && sinkErr == nil {
				sinkErr = &SinkError{Err: err}
			}
		}
	}
	unitCh := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			core := acquireCore()
			defer releaseCore(core)
			for unit := range unitCh {
				if len(unit) == 1 {
					i := unit[0]
					results[i] = c.runScenario(ctx, scenarios[i], effSeed[i], budget, planOf[i], core)
					emit(results[i])
					continue
				}
				for i, r := range c.runFused(ctx, scenarios, unit, effSeed[unit[0]], budget, planOf[unit[0]], core) {
					results[unit[i]] = r
					emit(r)
				}
			}
		}()
	}
feed:
	for _, unit := range units {
		// Checked before each handoff: a blocked select chooses randomly
		// when both a worker and Done are ready, so without this guard a
		// cancelled campaign could keep feeding the pool.
		if ctx.Err() != nil {
			break
		}
		select {
		case unitCh <- unit:
		case <-ctx.Done():
			break feed
		}
	}
	close(unitCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// A sink failure observed before the cancellation must still
		// surface — callers distinguish *SinkError from a run failure.
		return results, errors.Join(fmt.Errorf("offramps: campaign cancelled: %w", err), sinkErr)
	}
	return results, sinkErr
}

// runScenario builds and runs one scenario end to end, consulting the
// golden cache for memoizable scenarios.
func (c Campaign) runScenario(ctx context.Context, s Scenario, seed uint64, budget sim.Time, plan *planEntry, core *TestbedCore) ScenarioResult {
	out := ScenarioResult{Name: s.Name, Seed: seed}

	var res *Result
	var err error
	if c.Cache != nil && s.goldenCacheable() {
		key := goldenKey{program: hashProgram(s.Program), seed: seed, budget: budget, mode: c.CaptureMode}
		res, err = c.Cache.run(key, func() (*Result, error) {
			return c.runFresh(ctx, s, seed, budget, plan, core)
		})
	} else {
		res, err = c.runFresh(ctx, s, seed, budget, plan, core)
	}
	if err != nil {
		out.Err = fmt.Errorf("offramps: scenario %q: %w", s.Name, err)
		return out
	}
	out.Result = res
	return out
}

// runFresh builds a testbed for the scenario and simulates it.
func (c Campaign) runFresh(ctx context.Context, s Scenario, seed uint64, budget sim.Time, plan *planEntry, core *TestbedCore) (*Result, error) {
	opts := []Option{WithSeed(seed)}
	if core != nil {
		opts = append(opts, WithCore(core))
	}
	if s.Trojan != nil {
		tr := s.Trojan(seed)
		if tr == nil {
			return nil, fmt.Errorf("trojan factory returned nil")
		}
		opts = append(opts, WithTrojan(tr))
	}
	opts = append(opts, s.Options...)
	tb, err := NewTestbed(opts...)
	if err != nil {
		return nil, err
	}
	if s.Prepare != nil {
		if err := s.Prepare(tb); err != nil {
			return nil, fmt.Errorf("prepare: %w", err)
		}
	}

	ropts := []RunOption{WithLimit(budget), WithCaptureMode(c.CaptureMode)}
	if plan != nil {
		if compiled := plan.compiled(s.Program); compiled != nil {
			ropts = append(ropts, withCompiled(compiled))
		}
	}
	if s.Detector != nil {
		d, err := s.Detector()
		if err != nil {
			return nil, fmt.Errorf("detector: %w", err)
		}
		ropts = append(ropts, WithDetectorAt(s.DetectorBind, d, s.Policy))
	}
	ropts = append(ropts, s.RunOptions...)

	return tb.Run(ctx, s.Program, ropts...)
}

// runFused executes one fused unit: a single simulation of the unit's
// shared (program, seed, budget) observed by every member's detector at
// once. Member k's result is the shared outcome narrowed to its own
// detector's report. Fusion is only attempted for fusible scenarios
// (passive FlagOnly detectors on the same feed), so the stream each
// detector observes — and hence its verdict — is identical to a solo
// run; if the fused simulation fails for any reason, every member falls
// back to an independent solo run so error semantics stay per-scenario.
func (c Campaign) runFused(ctx context.Context, scenarios []Scenario, unit []int, seed uint64, budget sim.Time, plan *planEntry, core *TestbedCore) []ScenarioResult {
	out := make([]ScenarioResult, len(unit))
	solo := func() []ScenarioResult {
		for k, i := range unit {
			out[k] = c.runScenario(ctx, scenarios[i], seed, budget, plan, core)
		}
		return out
	}

	// Build every member's detector first: a factory failure is that
	// member's own error and must not poison the shared run.
	detectors := make([]detect.Detector, len(unit))
	attached := make([]int, 0, len(unit)) // unit positions with a live detector
	for k, i := range unit {
		s := &scenarios[i]
		out[k] = ScenarioResult{Name: s.Name, Seed: seed}
		d, err := s.Detector()
		if err != nil {
			out[k].Err = fmt.Errorf("offramps: scenario %q: detector: %w", s.Name, err)
			continue
		}
		detectors[k] = d
		attached = append(attached, k)
	}
	if len(attached) == 0 {
		return out
	}

	opts := []Option{WithSeed(seed)}
	if core != nil {
		opts = append(opts, WithCore(core))
	}
	tb, err := NewTestbed(opts...)
	if err != nil {
		return solo()
	}
	ropts := []RunOption{WithLimit(budget), WithCaptureMode(CaptureFingerprint)}
	if plan != nil {
		if compiled := plan.compiled(scenarios[unit[0]].Program); compiled != nil {
			ropts = append(ropts, withCompiled(compiled))
		}
	}
	for _, k := range attached {
		i := unit[k]
		ropts = append(ropts, WithDetectorAt(scenarios[i].DetectorBind, detectors[k], scenarios[i].Policy))
	}
	res, err := tb.Run(ctx, scenarios[unit[0]].Program, ropts...)
	if err != nil {
		return solo()
	}
	for slot, k := range attached {
		rep := res.Detections[slot]
		narrowed := *res
		narrowed.Detections = []*detect.Report{rep}
		narrowed.TrojanLikely = rep.TrojanLikely
		out[k].Result = &narrowed
	}
	return out
}

// firstScenarioErr returns the first per-scenario failure, or nil.
func firstScenarioErr(results []ScenarioResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// scenarioCapture extracts a scenario's non-empty recording or explains
// why it cannot.
func scenarioCapture(r ScenarioResult) (*capture.Recording, error) {
	if r.Err != nil {
		return nil, r.Err
	}
	if r.Result == nil || r.Result.Recording == nil || r.Result.Recording.Len() == 0 {
		return nil, fmt.Errorf("offramps: scenario %q produced no capture", r.Name)
	}
	return r.Result.Recording, nil
}
