package offramps

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/fpga"
	"offramps/internal/gcode"
	"offramps/internal/sim"
)

// Scenario is one cell of a campaign's (program × trojan × seed ×
// detector) grid: a complete, self-contained description of one simulated
// print. Mutable collaborators (trojans, detectors) are specified as
// factories so a scenario can be run any number of times — and on any
// worker — with identical results.
type Scenario struct {
	// Name labels the scenario in results ("T3", "drift-2", ...).
	Name string
	// Program is the G-code to print.
	Program gcode.Program
	// Seed is the time-noise seed, used verbatim — unless the campaign
	// sets a non-zero BaseSeed, in which case a zero Seed is derived
	// deterministically from BaseSeed and the scenario's position.
	Seed uint64
	// Trojan, when non-nil, builds a fresh trojan for the run; it receives
	// the scenario's effective seed so randomized trojans stay
	// reproducible.
	Trojan func(seed uint64) fpga.Trojan
	// Detector, when non-nil, builds a fresh live detector attached to the
	// run under Policy.
	Detector func() (detect.Detector, error)
	// Policy applies to the Detector (FlagOnly or AbortOnTrip).
	Policy TripPolicy
	// DetectorBind places the Detector's tap binding; the zero value,
	// BindPrimary, feeds it from the board's primary tap — the paper's
	// rig and the behaviour of every pre-binding scenario.
	DetectorBind TapBinding
	// Options are extra testbed construction options (settle time, plant
	// config, ...), applied after the campaign's own seed/trojan options.
	Options []Option
	// RunOptions are extra run options, applied after the campaign's own
	// limit/detector options.
	RunOptions []RunOption
	// Prepare, when non-nil, instruments the freshly built testbed before
	// the run starts (signal probes, recorders, ...).
	Prepare func(*Testbed) error
}

// ScenarioResult pairs one scenario with its outcome.
type ScenarioResult struct {
	// Name and Seed echo the scenario (Seed is the effective seed).
	Name string
	Seed uint64
	// Result is the run's outcome (nil when Err is set).
	Result *Result
	// Err is the scenario's failure, if any. One scenario failing does not
	// stop the rest of the campaign.
	Err error
}

// Campaign fans scenarios across a worker pool. Each scenario gets its
// own testbed, deterministic seeding, and an independently constructed
// trojan and detector, so results are bit-identical regardless of worker
// count or scheduling order — the concurrency is free speedup, not a
// source of nondeterminism.
type Campaign struct {
	// Workers is the pool size; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Budget is the per-scenario simulated-time limit; 0 means
	// DefaultRunBudget.
	Budget sim.Time
	// BaseSeed, when non-zero, seeds scenarios whose own Seed is zero:
	// scenario i gets BaseSeed + i·31 + 1. When BaseSeed is zero, every
	// scenario's Seed is used verbatim (including zero), so experiment
	// suites that pair same-seed runs stay paired for any caller seed.
	BaseSeed uint64
	// Cache, when non-nil, memoizes golden (trojan-free, unmodified)
	// scenario results by (program hash, seed, budget) so repeated golden
	// prints across campaigns simulate exactly once. Determinism makes a
	// hit bit-identical to a fresh run. Scenarios with trojans, detectors,
	// Prepare hooks, or any extra options are never cached.
	Cache *GoldenCache
	// Sinks receive each ScenarioResult as it completes (completion
	// order, Emit calls serialized across workers), so huge campaigns
	// stream instead of buffering. A sink error does not stop the
	// campaign; the first one is returned (as a *SinkError) after every
	// scenario finished. The campaign never closes a sink — one sink
	// commonly spans several Run calls (a suite's waves, a multi-suite
	// sweep), so the owner must call Close after the last campaign or
	// buffered sinks (e.g. CSVSink) lose their tail.
	Sinks []ResultSink
}

// Run executes every scenario and returns the results in scenario order.
// Per-scenario failures land in the corresponding ScenarioResult.Err; Run
// itself errors only when the context is cancelled (already-finished
// results are still returned).
func (c Campaign) Run(ctx context.Context, scenarios []Scenario) ([]ScenarioResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	results := make([]ScenarioResult, len(scenarios))
	var sinkMu sync.Mutex
	var sinkErr error
	emit := func(r ScenarioResult) {
		if len(c.Sinks) == 0 {
			return
		}
		sinkMu.Lock()
		defer sinkMu.Unlock()
		for _, s := range c.Sinks {
			if err := s.Emit(r); err != nil && sinkErr == nil {
				sinkErr = &SinkError{Err: err}
			}
		}
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i] = c.runScenario(ctx, i, scenarios[i])
				emit(results[i])
			}
		}()
	}
feed:
	for i := range scenarios {
		// Checked before each handoff: a blocked select chooses randomly
		// when both a worker and Done are ready, so without this guard a
		// cancelled campaign could keep feeding the pool.
		if ctx.Err() != nil {
			break
		}
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("offramps: campaign cancelled: %w", err)
	}
	return results, sinkErr
}

// runScenario builds and runs one scenario end to end, consulting the
// golden cache for memoizable scenarios.
func (c Campaign) runScenario(ctx context.Context, i int, s Scenario) ScenarioResult {
	seed := s.Seed
	if seed == 0 && c.BaseSeed != 0 {
		seed = c.BaseSeed + uint64(i)*31 + 1
	}
	out := ScenarioResult{Name: s.Name, Seed: seed}

	budget := c.Budget
	if budget == 0 {
		budget = DefaultRunBudget
	}

	var res *Result
	var err error
	if c.Cache != nil && s.goldenCacheable() {
		key := goldenKey{program: hashProgram(s.Program), seed: seed, budget: budget}
		res, err = c.Cache.run(key, func() (*Result, error) {
			return c.runFresh(ctx, s, seed, budget)
		})
	} else {
		res, err = c.runFresh(ctx, s, seed, budget)
	}
	if err != nil {
		out.Err = fmt.Errorf("offramps: scenario %q: %w", s.Name, err)
		return out
	}
	out.Result = res
	return out
}

// runFresh builds a testbed for the scenario and simulates it.
func (c Campaign) runFresh(ctx context.Context, s Scenario, seed uint64, budget sim.Time) (*Result, error) {
	opts := []Option{WithSeed(seed)}
	if s.Trojan != nil {
		tr := s.Trojan(seed)
		if tr == nil {
			return nil, fmt.Errorf("trojan factory returned nil")
		}
		opts = append(opts, WithTrojan(tr))
	}
	opts = append(opts, s.Options...)
	tb, err := NewTestbed(opts...)
	if err != nil {
		return nil, err
	}
	if s.Prepare != nil {
		if err := s.Prepare(tb); err != nil {
			return nil, fmt.Errorf("prepare: %w", err)
		}
	}

	ropts := []RunOption{WithLimit(budget)}
	if s.Detector != nil {
		d, err := s.Detector()
		if err != nil {
			return nil, fmt.Errorf("detector: %w", err)
		}
		ropts = append(ropts, WithDetectorAt(s.DetectorBind, d, s.Policy))
	}
	ropts = append(ropts, s.RunOptions...)

	return tb.Run(ctx, s.Program, ropts...)
}

// firstScenarioErr returns the first per-scenario failure, or nil.
func firstScenarioErr(results []ScenarioResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// scenarioCapture extracts a scenario's non-empty recording or explains
// why it cannot.
func scenarioCapture(r ScenarioResult) (*capture.Recording, error) {
	if r.Err != nil {
		return nil, r.Err
	}
	if r.Result == nil || r.Result.Recording == nil || r.Result.Recording.Len() == 0 {
		return nil, fmt.Errorf("offramps: scenario %q produced no capture", r.Name)
	}
	return r.Result.Recording, nil
}
