#!/usr/bin/env bash
# bench.sh runs the key perf benchmarks (GoldenPrint, Campaign,
# CampaignWide, MonitorObserve, plus the engine microbenchmarks) and
# writes their results to BENCH_<label>.json so the perf trajectory is
# tracked across PRs. The label defaults to the repo's commit count.
#
# Each benchmark runs `-count 5`; benchjson collapses the repetitions to
# per-metric medians (the archived JSON notes "runs": 5), so one noisy
# run on a shared box cannot skew the trajectory.
#
# Usage: scripts/bench.sh [label] [benchtime]
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-list --count HEAD 2>/dev/null || echo dev)}"
benchtime="${2:-2x}"
out="BENCH_${label}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run NONE \
  -bench 'BenchmarkGoldenPrint$|BenchmarkCampaign$|BenchmarkCampaignWide$|BenchmarkMonitorObserve$' \
  -benchtime "$benchtime" -count 5 . | tee "$tmp"
go test -run NONE \
  -bench 'BenchmarkEngineSchedule$|BenchmarkEngineScheduleEdge$|BenchmarkEngineTicker$|BenchmarkEngineMixedHorizon$' \
  -benchtime 100x -count 5 ./internal/sim | tee -a "$tmp"

go run ./cmd/benchjson < "$tmp" > "$out"
echo "wrote $out"
