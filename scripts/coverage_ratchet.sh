#!/usr/bin/env bash
# coverage_ratchet.sh — self-ratcheting coverage baseline.
#
#   coverage_ratchet.sh check  <coverage.out> <baseline.txt> [tolerance-pt]
#   coverage_ratchet.sh update <coverage.out> <baseline.txt>
#
# `check` compares the profile's total statement coverage against the
# recorded baseline and fails when it dropped by more than the tolerance
# (default 0.2pt) — a ratchet, not a fixed floor: the baseline follows
# main upward automatically instead of needing a manual bump.
# `update` rewrites the baseline file to the current total when (and only
# when) coverage rose, printing "updated" or "unchanged" so CI knows
# whether to commit; the ratchet never lowers the baseline.
set -euo pipefail

mode="${1:?usage: coverage_ratchet.sh check|update coverage.out baseline.txt [tolerance]}"
profile="${2:?missing coverage profile}"
baseline_file="${3:?missing baseline file}"
tolerance="${4:-0.2}"

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/,"",$3); print $3}')
if [ -z "$total" ]; then
  echo "coverage_ratchet: no total in $profile" >&2
  exit 1
fi

baseline="0"
if [ -f "$baseline_file" ]; then
  baseline=$(tr -d '[:space:]' < "$baseline_file")
fi

case "$mode" in
check)
  echo "total statement coverage: ${total}% (baseline: ${baseline}%, tolerance: ${tolerance}pt)"
  awk -v t="$total" -v base="$baseline" -v tol="$tolerance" 'BEGIN {
    if (t+0 < base+0 - tol+0) {
      printf "coverage %.1f%% dropped more than %.1fpt below the %.1f%% baseline\n", t, tol, base
      exit 1
    }
  }'
  ;;
update)
  higher=$(awk -v t="$total" -v base="$baseline" 'BEGIN { print (t+0 > base+0) ? 1 : 0 }')
  if [ "$higher" = "1" ]; then
    printf '%s\n' "$total" > "$baseline_file"
    echo "updated: baseline ${baseline}% -> ${total}%"
  else
    echo "unchanged: baseline ${baseline}% (current ${total}%)"
  fi
  ;;
*)
  echo "coverage_ratchet: unknown mode $mode (want check or update)" >&2
  exit 2
  ;;
esac
