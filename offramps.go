// This file wires the simulated testbed together; the package
// documentation lives in doc.go.
package offramps

import (
	"fmt"

	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/firmware"
	"offramps/internal/fpga"
	"offramps/internal/gcode"
	"offramps/internal/printer"
	"offramps/internal/signal"
	"offramps/internal/sim"
	"offramps/internal/slicer"
)

// Testbed is one complete simulated rig: firmware on the Arduino-side
// bus, the OFFRAMPS board in the middle (unless disabled), and the
// physical plant on the RAMPS-side bus.
type Testbed struct {
	Engine   *sim.Engine
	Arduino  *signal.Bus
	RAMPS    *signal.Bus
	Board    *fpga.Board // nil when the MITM is bypassed with jumpers
	Plant    *printer.Plant
	Firmware *firmware.Firmware

	opts options
}

// options collects testbed construction parameters.
type options struct {
	seed        uint64
	timeNoise   sim.Time
	mitm        bool
	tap         fpga.TapSide
	tapSet      bool
	propDelay   sim.Time
	exportEvery sim.Time
	settle      sim.Time
	trojans     []fpga.Trojan
	startPos    map[signal.Axis]float64
	firmwareMod func(*firmware.Config)
	plantMod    func(*printer.Config)
	core        *TestbedCore
}

func defaultOptions() options {
	return options{
		seed:        1,
		timeNoise:   200 * sim.Microsecond,
		mitm:        true,
		tap:         fpga.TapArduino,
		propDelay:   13 * sim.Nanosecond,
		exportEvery: 100 * sim.Millisecond,
		settle:      2 * sim.Second,
	}
}

// validate rejects option combinations that would silently build a rig
// other than the one the caller described.
func (o *options) validate() error {
	if !o.mitm {
		if len(o.trojans) > 0 {
			return fmt.Errorf("offramps: config error: trojans require the MITM path (remove WithoutMITM)")
		}
		if o.tapSet {
			return fmt.Errorf("offramps: config error: WithTapSide requires the MITM path (the tap lives on the board; remove WithoutMITM)")
		}
	}
	return nil
}

// Option configures a Testbed.
type Option func(*options)

// WithSeed sets the time-noise seed. Two testbeds with the same seed and
// program produce bit-identical captures; different seeds model separate
// physical print runs.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithTimeNoise sets the execution-time jitter magnitude (0 disables).
func WithTimeNoise(d sim.Time) Option { return func(o *options) { o.timeNoise = d } }

// WithoutMITM wires the Arduino bus directly to the RAMPS bus — the
// paper's Figure 3a jumper configuration. No capture or trojans.
func WithoutMITM() Option { return func(o *options) { o.mitm = false } }

// WithTapSide places the board's monitoring tap: the paper's Arduino-side
// input tap (default), the RAMPS-side output tap, or both. The tap point
// decides what the capture can see — a RAMPS-side tap observes the FPGA's
// output and therefore *does* record board-injected trojans, turning the
// paper's §V-D co-location limitation into a scenario axis.
func WithTapSide(side fpga.TapSide) Option {
	return func(o *options) { o.tap = side; o.tapSet = true }
}

// WithPropagationDelay overrides the FPGA through-path delay (the paper
// measured ≤ 12.923 ns; the overhead experiment sweeps this).
func WithPropagationDelay(d sim.Time) Option { return func(o *options) { o.propDelay = d } }

// WithExportPeriod overrides the capture window (paper: 0.1 s).
func WithExportPeriod(d sim.Time) Option { return func(o *options) { o.exportEvery = d } }

// WithSettle sets how long the simulation keeps running after the
// firmware finishes or halts — needed to observe post-kill physics such
// as trojan T7's runaway heating.
func WithSettle(d sim.Time) Option { return func(o *options) { o.settle = d } }

// WithTrojan installs a trojan on the OFFRAMPS board.
func WithTrojan(t fpga.Trojan) Option { return func(o *options) { o.trojans = append(o.trojans, t) } }

// WithStartPosition sets the carriage's arbitrary power-on position.
func WithStartPosition(x, y, z float64) Option {
	return func(o *options) {
		o.startPos = map[signal.Axis]float64{
			signal.AxisX: x, signal.AxisY: y, signal.AxisZ: z,
		}
	}
}

// WithFirmwareConfig applies mod to the firmware configuration.
func WithFirmwareConfig(mod func(*firmware.Config)) Option {
	return func(o *options) { o.firmwareMod = mod }
}

// WithPlantConfig applies mod to the plant configuration.
func WithPlantConfig(mod func(*printer.Config)) Option {
	return func(o *options) { o.plantMod = mod }
}

// NewTestbed assembles a rig.
func NewTestbed(opts ...Option) (*Testbed, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	var engine *sim.Engine
	if o.core != nil {
		engine = o.core.engine
		engine.Reset()
	} else {
		engine = sim.NewEngine()
	}
	arduino := signal.NewBus(engine)
	ramps := signal.NewBus(engine)

	tb := &Testbed{Engine: engine, Arduino: arduino, RAMPS: ramps, opts: o}

	if o.mitm {
		bcfg := fpga.DefaultConfig()
		bcfg.PropagationDelay = o.propDelay
		bcfg.ExportPeriod = o.exportEvery
		bcfg.Tap = o.tap
		board, err := fpga.NewBoard(engine, arduino, ramps, bcfg)
		if err != nil {
			return nil, fmt.Errorf("offramps: building board: %w", err)
		}
		for _, t := range o.trojans {
			if err := board.InstallTrojan(t); err != nil {
				return nil, fmt.Errorf("offramps: %w", err)
			}
		}
		if o.core != nil {
			if bufs := o.core.takeRecBufs(); len(bufs) > 0 {
				board.DonateScratch(bufs)
			}
		}
		tb.Board = board
	} else {
		arduino.ConnectAll(ramps, 0)
	}

	pcfg := printer.DefaultConfig()
	if o.startPos != nil {
		pcfg.StartPos = o.startPos
	}
	if o.core != nil {
		pcfg.DepositBuffer = o.core.takeDeposits()
	}
	if o.plantMod != nil {
		o.plantMod(&pcfg)
	}
	plant, err := printer.NewPlant(engine, ramps, pcfg)
	if err != nil {
		return nil, fmt.Errorf("offramps: building plant: %w", err)
	}
	tb.Plant = plant

	fcfg := firmware.DefaultConfig()
	fcfg.Seed = o.seed
	fcfg.TimeNoise = o.timeNoise
	if o.core != nil {
		fcfg.Trains = o.core.trains
	}
	if o.firmwareMod != nil {
		o.firmwareMod(&fcfg)
	}
	fw, err := firmware.New(engine, arduino, fcfg)
	if err != nil {
		return nil, fmt.Errorf("offramps: building firmware: %w", err)
	}
	tb.Firmware = fw
	return tb, nil
}

// Result summarizes one simulated print.
type Result struct {
	// Completed is true when the whole program executed; false when the
	// firmware killed itself (thermal protection) or a live detector
	// aborted the run.
	Completed bool
	// HaltError is the firmware's kill reason, if any.
	HaltError error
	// Duration is the simulated wall-clock length of the print.
	Duration sim.Time
	// Recording is the OFFRAMPS capture from the board's primary tap
	// (nil without the MITM): the Arduino-side tap when it exists — the
	// paper's configuration — else the RAMPS-side tap.
	Recording *capture.Recording
	// ArduinoRecording and RAMPSRecording are the per-side captures; each
	// is nil when that bus is not tapped (see WithTapSide). Under the
	// default Arduino-only tap, ArduinoRecording aliases Recording.
	ArduinoRecording *capture.Recording
	RAMPSRecording   *capture.Recording
	// Fingerprint is the rolling per-window digest of the primary tap's
	// capture, maintained in both capture modes — in fingerprint mode it
	// is the only capture artifact (the Recording fields are nil).
	Fingerprint *capture.Fingerprint
	// ArduinoFingerprint and RAMPSFingerprint are the per-side
	// fingerprints; each is nil when that bus is not tapped.
	ArduinoFingerprint *capture.Fingerprint
	RAMPSFingerprint   *capture.Fingerprint
	// Quality summarizes the deposited part.
	Quality printer.Quality
	// Part is the raw deposited part, kept for deeper comparisons than
	// the Quality summary (e.g. layer-by-layer diffs against a golden).
	Part *printer.Part
	// PeakHotendTemp is the hotend's thermal high-water mark, °C.
	PeakHotendTemp float64
	// PeakBedTemp is the heated bed's thermal high-water mark, °C.
	PeakBedTemp float64
	// HotendExceededSafe is true when the hotend passed its safe working
	// limit at any point (trojan T7's destructive signature).
	HotendExceededSafe bool
	// FanDutyAtEnd is the plant-side smoothed fan duty when the run ended.
	FanDutyAtEnd float64
	// PeakFanDuty is the best cooling the part ever received — near 1.0
	// on a healthy print, near 0 under trojan T9.
	PeakFanDuty float64
	// StepsLost counts driver steps discarded while EN was deasserted
	// (trojan T8's signature), per axis.
	StepsLost map[signal.Axis]uint64

	// Aborted is true when a live detector attached with AbortOnTrip
	// tripped and the session halted the print early ("enabling a user to
	// halt a print as soon as a Trojan is suspected", paper §V-C).
	Aborted bool
	// AbortedAt is the simulation time of the abort (zero otherwise).
	AbortedAt sim.Time
	// TripReason describes the observation that tripped the aborting
	// detector ("" when no abort occurred).
	TripReason string
	// Detections holds one finalized report per detector attached with
	// WithDetector, in attachment order (empty when none were attached).
	Detections []*detect.Report
	// TrojanLikely is the OR of the attached detectors' verdicts.
	TrojanLikely bool
}

// ErrTimeout reports that a run exceeded its simulation-time budget.
type ErrTimeout struct {
	Limit sim.Time
}

func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("offramps: print did not finish within %v of simulated time", e.Limit)
}

// TestPart returns the sliced G-code of the standard experiment workload:
// a small calibration box, the simulated equivalent of the paper's test
// prints photographed on quarter-inch graph paper. The box is sized so a
// print comfortably exceeds 100 printing moves — Table II's stealthiest
// relocation trojan fires only once per hundred moves.
func TestPart() (gcode.Program, error) {
	return TestPartWithFlow(1.0)
}

// TestPartWithFlow slices the standard box with a modified flow
// multiplier (used by the ablation benches).
func TestPartWithFlow(flow float64) (gcode.Program, error) {
	box, err := slicer.NewBox(20, 20, 1.6)
	if err != nil {
		return nil, err
	}
	cfg := slicer.DefaultConfig()
	cfg.FlowMultiplier = flow
	return slicer.Slice(box, cfg)
}
