package offramps

import (
	"context"
	"fmt"
	"strings"

	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/flaw3d"
	"offramps/internal/gcode"
	"offramps/internal/printer"
	"offramps/internal/signal"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

// ExperimentOption tunes how the experiment entry points run their
// campaigns.
type ExperimentOption func(*Campaign)

// WithWorkers sets the campaign worker-pool size (default: GOMAXPROCS).
func WithWorkers(n int) ExperimentOption {
	return func(c *Campaign) { c.Workers = n }
}

// WithGoldenCache overrides the golden-capture cache the experiment's
// campaign uses (nil disables caching, e.g. for fresh-vs-cached
// verification runs).
func WithGoldenCache(gc *GoldenCache) ExperimentOption {
	return func(c *Campaign) { c.Cache = gc }
}

// experimentGoldenCache memoizes golden prints across the experiment entry
// points: TableI, TableII, Figure4, and Drift all print the standard test
// part, with overlapping (program, seed) pairs, so one process-wide cache
// lets `experiments -all` simulate each golden exactly once.
var experimentGoldenCache = NewGoldenCache()

// newCampaign builds the experiment suite's standard campaign.
func newCampaign(opts []ExperimentOption) Campaign {
	c := Campaign{Budget: DefaultRunBudget, Cache: experimentGoldenCache}
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// ---------------------------------------------------------------------------
// Table I — the nine-trojan suite

// TableIRow is one evaluated trojan.
type TableIRow struct {
	ID       string
	Kind     string // PM / DoS / D
	Scenario string
	Effect   string // the paper's described effect
	// Measured outcome.
	Result   *Result
	Diff     printer.Diff // part vs golden (zero value for DoS/D trojans)
	Observed bool         // did the measured outcome match the effect?
	Measured string       // one-line measured summary
}

// TableIReport is the full Table I reproduction.
type TableIReport struct {
	Golden *Result
	Rows   []TableIRow
}

// Format renders the table.
func (r *TableIReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I — Trojans evaluated using OFFRAMPS (golden: %s)\n", r.Golden.Quality)
	fmt.Fprintf(&sb, "%-4s %-4s %-18s %-10s %s\n", "ID", "Type", "Scenario", "Observed", "Measured effect")
	for _, row := range r.Rows {
		obs := "no"
		if row.Observed {
			obs = "YES"
		}
		fmt.Fprintf(&sb, "%-4s %-4s %-18s %-10s %s\n", row.ID, row.Kind, row.Scenario, obs, row.Measured)
	}
	return sb.String()
}

// paperEffects maps trojan IDs to Table I's effect descriptions.
var paperEffects = map[string]string{
	"T1": "Randomly changes steps from X or Y axis during print",
	"T2": "Constant over / under extrusion per print",
	"T3": "Increases or decreases filament retraction during Y steps",
	"T4": "Small shift along X and Y axis on random Z layer increments",
	"T5": "Layer delamination via Z-layer shift",
	"T6": "Denial of service via disabling D8/D10 heating element power",
	"T7": "Forcing thermal runaway and permanently enabling heating elements",
	"T8": "Arbitrarily deactivating stepper motors via EN signals",
	"T9": "Arbitrarily reducing part fan speed mid-print",
}

// TableISpecs returns the declarative Table I scenario grid: the clean
// T0 print plus one scenario per registered Table I trojan, every seed a
// zero delta from the base (the paper pairs all ten prints on one seed).
func TableISpecs() []ScenarioSpec {
	specs := []ScenarioSpec{{Name: "T0"}}
	for _, id := range trojan.SuiteIDs {
		s := ScenarioSpec{Name: id, Trojan: &TrojanSpec{Name: id}}
		if id == "T7" {
			// Observe the post-kill physics: the clamp keeps heating
			// after the firmware panics.
			s.Settle = 60 * sim.Second
		}
		specs = append(specs, s)
	}
	return specs
}

// TableI reproduces the paper's Table I: print the test part once clean
// (T0, FPGA in bypass) and once under each trojan — all fanned across the
// campaign worker pool — and verify each trojan's physical effect on the
// part or machine. The scenario grid comes from TableISpecs through the
// spec compiler.
func TableI(seed uint64, opts ...ExperimentOption) (*TableIReport, error) {
	suite := trojan.Suite(seed)
	scens, err := CompileSpecs(SpecContext{BaseSeed: seed}, TableISpecs())
	if err != nil {
		return nil, err
	}
	results, err := newCampaign(opts).Run(context.Background(), scens)
	if err != nil {
		return nil, err
	}
	if err := firstScenarioErr(results); err != nil {
		return nil, err
	}
	golden := results[0].Result
	if !golden.Completed {
		return nil, fmt.Errorf("offramps: golden print halted: %w", golden.HaltError)
	}

	report := &TableIReport{Golden: golden}
	for i, tr := range suite {
		res := results[i+1].Result
		row := TableIRow{
			ID:       tr.ID(),
			Kind:     tr.Kind().String(),
			Scenario: tr.Scenario(),
			Effect:   paperEffects[tr.ID()],
			Result:   res,
		}
		row.Diff = res.Part.Compare(golden.Part, 1.0)
		row.Observed, row.Measured = judgeTrojan(tr.ID(), golden, res, row.Diff)
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// judgeTrojan decides whether the trojan's Table I effect materialized.
func judgeTrojan(id string, golden, res *Result, diff printer.Diff) (bool, string) {
	switch id {
	case "T1":
		ok := diff.MaxCentroidShift > 0.25
		return ok, fmt.Sprintf("max layer centroid shift %.2f mm vs golden", diff.MaxCentroidShift)
	case "T2":
		ok := diff.FilamentRatio > 0.40 && diff.FilamentRatio < 0.60
		return ok, fmt.Sprintf("filament ratio %.2f (target 0.50)", diff.FilamentRatio)
	case "T3":
		ok := diff.FilamentRatio > 1.01
		return ok, fmt.Sprintf("filament ratio %.3f (over-extrusion)", diff.FilamentRatio)
	case "T4":
		ok := diff.MaxCentroidShift > 0.1
		return ok, fmt.Sprintf("max layer centroid shift %.2f mm", diff.MaxCentroidShift)
	case "T5":
		ok := res.Quality.MaxZGap > golden.Quality.MaxZGap*1.5
		return ok, fmt.Sprintf("max Z gap %.2f mm (golden %.2f)", res.Quality.MaxZGap, golden.Quality.MaxZGap)
	case "T6":
		ok := !res.Completed && res.HaltError != nil &&
			strings.Contains(res.HaltError.Error(), "thermal")
		return ok, fmt.Sprintf("firmware halted: %v", res.HaltError)
	case "T7":
		ok := res.HotendExceededSafe
		return ok, fmt.Sprintf("hotend peaked at %.0f°C (safe limit 260), firmware kill bypassed", res.PeakHotendTemp)
	case "T8":
		lost := uint64(0)
		for _, a := range signal.Axes {
			lost += res.StepsLost[a]
		}
		ok := lost > 0 && diff.MaxCentroidShift > 0.25
		return ok, fmt.Sprintf("%d steps lost, centroid shift %.2f mm", lost, diff.MaxCentroidShift)
	case "T9":
		ok := res.PeakFanDuty < golden.PeakFanDuty*0.5
		return ok, fmt.Sprintf("peak fan duty %.2f (golden %.2f)", res.PeakFanDuty, golden.PeakFanDuty)
	default:
		return false, "unknown trojan"
	}
}

// ---------------------------------------------------------------------------
// Table II — Flaw3D trojan detection

// TableIIRow is one evaluated Flaw3D test case.
type TableIIRow struct {
	Case     flaw3d.TestCase
	Report   detect.Report
	Detected bool
}

// TableIIReport is the full Table II reproduction, plus a clean control
// print that must NOT be flagged (the margin's false-positive check).
type TableIIReport struct {
	Rows               []TableIIRow
	CleanControl       detect.Report
	CleanFalsePositive bool
}

// Format renders the table.
func (r *TableIIReport) Format() string {
	var sb strings.Builder
	fmt.Fprintln(&sb, "Table II — Flaw3D Trojans")
	fmt.Fprintf(&sb, "%-6s %-12s %-10s %-9s %s\n", "Case", "Type", "Value", "Detected", "(mismatches, largest %)")
	for _, row := range r.Rows {
		det := "✗"
		if row.Detected {
			det = "✓"
		}
		fmt.Fprintf(&sb, "%-6d %-12s %-10v %-9s (%d, %.2f%%)\n",
			row.Case.Num, row.Case.Type, row.Case.Value, det,
			row.Report.NumMismatches, row.Report.LargestPercent)
	}
	fp := "no false positive"
	if r.CleanFalsePositive {
		fp = "FALSE POSITIVE"
	}
	fmt.Fprintf(&sb, "clean control: %s (%d mismatches, largest %.2f%%)\n",
		fp, r.CleanControl.NumMismatches, r.CleanControl.LargestPercent)
	return sb.String()
}

// captureRun prints prog on a fresh testbed and returns its capture — the
// single-print convenience used by benches and extension tests.
func captureRun(prog gcode.Program, seed uint64) (*capture.Recording, error) {
	tb, err := NewTestbed(WithSeed(seed))
	if err != nil {
		return nil, err
	}
	res, err := tb.Run(context.Background(), prog)
	if err != nil {
		return nil, err
	}
	if res.Recording == nil || res.Recording.Len() == 0 {
		return nil, fmt.Errorf("offramps: print produced no capture")
	}
	return res.Recording, nil
}

// TableIISuite returns the paper's Table II as a declarative suite: the
// golden print, the eight Flaw3D-tampered prints on offset seeds
// (modelling physically separate runs of the same job), a clean control
// on its own seed, and one golden comparison per suspect.
func TableIISuite(seed uint64) *SuiteSpec {
	s := &SuiteSpec{
		Name:      "table2",
		BaseSeed:  seed,
		Scenarios: []ScenarioSpec{{Name: "golden"}},
	}
	for i, tc := range flaw3d.TableII() {
		name := fmt.Sprintf("flaw3d-%d", tc.Num)
		s.Scenarios = append(s.Scenarios, ScenarioSpec{
			Name:      name,
			Program:   ProgramSpec{Flaw3D: tc.Num},
			SeedDelta: uint64(i) + 100,
		})
		s.Compare = append(s.Compare, CompareSpec{Golden: "golden", Suspect: name})
	}
	s.Scenarios = append(s.Scenarios, ScenarioSpec{Name: "clean-control", SeedDelta: 999})
	// Clean control: same G-code, different seed — must pass.
	s.Compare = append(s.Compare, CompareSpec{Golden: "golden", Suspect: "clean-control"})
	return s
}

// TableII reproduces the paper's Table II: emulate the eight Flaw3D
// trojans by tampering the G-code (as the paper's Python script does),
// print each on the OFFRAMPS testbed in parallel, capture the pulse
// profiles, and replay each through the golden detector. The whole
// experiment — prints and comparisons — executes the declarative
// TableIISuite.
func TableII(seed uint64, opts ...ExperimentOption) (*TableIIReport, error) {
	rep, err := newCampaign(opts).RunSuite(context.Background(), TableIISuite(seed))
	if err != nil {
		return nil, err
	}
	if err := firstScenarioErr(rep.Results); err != nil {
		return nil, err
	}

	report := &TableIIReport{}
	cases := flaw3d.TableII()
	for i, cmp := range rep.Comparisons {
		if cmp.Err != nil {
			return nil, fmt.Errorf("offramps: compare %s vs %s: %w", cmp.Golden, cmp.Suspect, cmp.Err)
		}
		if i < len(cases) {
			report.Rows = append(report.Rows, TableIIRow{
				Case: cases[i], Report: *cmp.Report, Detected: cmp.Report.TrojanLikely,
			})
		} else {
			report.CleanControl = *cmp.Report
			report.CleanFalsePositive = cmp.Report.TrojanLikely
		}
	}
	return report, nil
}

// ---------------------------------------------------------------------------
// Figure 4 — detection output excerpt

// Figure4Report reproduces the paper's Figure 4: excerpts of the golden
// and trojaned transaction streams around the first divergence, plus the
// detection tool's output.
type Figure4Report struct {
	ExcerptStart  uint32
	GoldenExcerpt []capture.Transaction
	TrojanExcerpt []capture.Transaction
	Report        detect.Report
}

// Format renders the three panes of Figure 4.
func (r *Figure4Report) Format() string {
	var sb strings.Builder
	pane := func(title string, txs []capture.Transaction) {
		fmt.Fprintf(&sb, "%s\n", title)
		fmt.Fprintln(&sb, "Index, X, Y, Z, E")
		for _, t := range txs {
			fmt.Fprintf(&sb, "%d, %d, %d, %d, %d\n", t.Index, t.X, t.Y, t.Z, t.E)
		}
		fmt.Fprintln(&sb)
	}
	pane("(a) Selection of transactions from the golden reference.", r.GoldenExcerpt)
	pane("(b) Selection of transactions from Flaw3D Trojan print.", r.TrojanExcerpt)
	fmt.Fprintln(&sb, "(c) Output of the Trojan detection tool:")
	sb.WriteString(r.Report.Format())
	return sb.String()
}

// Figure4Suite returns the paper's Figure 4 workload as a declarative
// suite: a golden print, a Flaw3D relocation print (Table II test case 7,
// the paper's "relocates material every 20 movements"), and their golden
// comparison.
func Figure4Suite(seed uint64) *SuiteSpec {
	return &SuiteSpec{
		Name:     "figure4",
		BaseSeed: seed,
		Scenarios: []ScenarioSpec{
			{Name: "golden"},
			{Name: "relocation", Program: ProgramSpec{Flaw3D: 7}, SeedDelta: 107},
		},
		Compare: []CompareSpec{{Golden: "golden", Suspect: "relocation"}},
	}
}

// Figure4 reproduces the paper's Figure 4 using the same trojan the paper
// shows, by executing the declarative Figure4Suite.
func Figure4(seed uint64, opts ...ExperimentOption) (*Figure4Report, error) {
	srep, err := newCampaign(opts).RunSuite(context.Background(), Figure4Suite(seed))
	if err != nil {
		return nil, err
	}
	golden, err := scenarioCapture(srep.Results[0])
	if err != nil {
		return nil, err
	}
	suspect, err := scenarioCapture(srep.Results[1])
	if err != nil {
		return nil, err
	}
	cmp := srep.Comparisons[0]
	if cmp.Err != nil {
		return nil, cmp.Err
	}
	rep := *cmp.Report

	out := &Figure4Report{Report: rep}
	// Excerpt 6 transactions around the first mismatch, like the paper.
	start := 0
	if len(rep.Mismatches) > 0 {
		start = int(rep.Mismatches[0].Index) - 2
		if start < 0 {
			start = 0
		}
	}
	out.ExcerptStart = uint32(start)
	for i := start; i < start+6 && i < golden.Len() && i < suspect.Len(); i++ {
		out.GoldenExcerpt = append(out.GoldenExcerpt, golden.Transactions[i])
		out.TrojanExcerpt = append(out.TrojanExcerpt, suspect.Transactions[i])
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Overhead — §V-B (propagation delay, signal envelope, no quality impact)

// OverheadReport reproduces the paper's monitoring-overhead analysis.
type OverheadReport struct {
	// MaxPropagation is the largest Arduino→RAMPS edge latency measured
	// across all control pins during a live print (paper: 12.923 ns).
	MaxPropagation sim.Time
	// SlowestPin is the pin on which it occurred.
	SlowestPin string
	// LineStats summarizes every STEP line's envelope (paper: < 20 kHz,
	// ≥ 1 µs pulses).
	LineStats []signal.Stats
	// MaxStepFrequency across all step lines, Hz.
	MaxStepFrequency float64
	// MinPulseWidth across all step lines.
	MinPulseWidth sim.Time
	// Quality with the MITM inline vs with jumpers in direct mode.
	QualityMITM   printer.Quality
	QualityDirect printer.Quality
	// FilamentRatio MITM/direct — 1.0 means no print impact.
	FilamentRatio float64
}

// Format renders the overhead report.
func (r *OverheadReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Monitoring overhead (§V-B)\n")
	fmt.Fprintf(&sb, "max propagation delay: %v on %s (paper: 12.923 ns on Y_DIR)\n", r.MaxPropagation, r.SlowestPin)
	fmt.Fprintf(&sb, "max step frequency: %.1f Hz (paper envelope: < 20 kHz)\n", r.MaxStepFrequency)
	fmt.Fprintf(&sb, "min pulse width: %v (paper envelope: ≥ 1 µs)\n", r.MinPulseWidth)
	fmt.Fprintf(&sb, "quality with MITM:   %s\n", r.QualityMITM)
	fmt.Fprintf(&sb, "quality direct:      %s\n", r.QualityDirect)
	fmt.Fprintf(&sb, "filament ratio MITM/direct: %.4f\n", r.FilamentRatio)
	for _, s := range r.LineStats {
		fmt.Fprintf(&sb, "  %s\n", s)
	}
	return sb.String()
}

// OverheadSpecs returns the §V-B scenario pair: the same part printed
// with the MITM inline and with jumpers in direct mode. The latency
// probes the experiment adds to the MITM print are instrumentation, not
// topology, so they attach as a Prepare hook after compilation — the one
// part of this experiment a spec cannot carry.
func OverheadSpecs() []ScenarioSpec {
	direct := false
	return []ScenarioSpec{
		{Name: "mitm"},
		{Name: "direct", MITM: &direct},
	}
}

// Overhead reproduces §V-B: measure the MITM's propagation delay and the
// control-signal envelope during a real print, and show the detection
// hardware has no effect on print quality by printing the same part with
// and without the MITM inline — the two rigs run as parallel campaign
// scenarios compiled from OverheadSpecs.
func Overhead(seed uint64, opts ...ExperimentOption) (*OverheadReport, error) {
	scens, err := CompileSpecs(SpecContext{BaseSeed: seed}, OverheadSpecs())
	if err != nil {
		return nil, err
	}

	// Instrumentation owned by the MITM scenario: a step-line recorder
	// plus latency probes that timestamp each Arduino-side edge and match
	// it to the next RAMPS-side edge on the same pin.
	report := &OverheadReport{}
	var recorder *signal.Recorder
	instrument := func(tb *Testbed) error {
		stepPins := []string{signal.PinXStep, signal.PinYStep, signal.PinZStep, signal.PinEStep}
		recorder = signal.NewRecorder(tb.Arduino, stepPins...)
		for _, pin := range signal.ControlPins {
			pin := pin
			var pendingAt sim.Time = -1
			tb.Arduino.Line(pin).Watch(func(at sim.Time, _ signal.Level) {
				pendingAt = at
			})
			tb.RAMPS.Line(pin).Watch(func(at sim.Time, _ signal.Level) {
				if pendingAt < 0 {
					return
				}
				delay := at - pendingAt
				pendingAt = -1
				if delay > report.MaxPropagation {
					report.MaxPropagation = delay
					report.SlowestPin = pin
				}
			})
		}
		return nil
	}

	scens[0].Prepare = instrument
	results, err := newCampaign(opts).Run(context.Background(), scens)
	if err != nil {
		return nil, err
	}
	if err := firstScenarioErr(results); err != nil {
		return nil, err
	}
	resMITM, resDirect := results[0].Result, results[1].Result

	report.QualityMITM = resMITM.Quality
	report.LineStats = recorder.AllStats()
	for _, s := range report.LineStats {
		if s.MaxFrequency > report.MaxStepFrequency {
			report.MaxStepFrequency = s.MaxFrequency
		}
		if s.MinPulseWidth > 0 && (report.MinPulseWidth == 0 || s.MinPulseWidth < report.MinPulseWidth) {
			report.MinPulseWidth = s.MinPulseWidth
		}
	}
	report.QualityDirect = resDirect.Quality
	if resDirect.Quality.TotalFilament > 0 {
		report.FilamentRatio = resMITM.Quality.TotalFilament / resDirect.Quality.TotalFilament
	}
	return report, nil
}

// ---------------------------------------------------------------------------
// Drift — §V-C (time noise stays under the 5 % margin)

// DriftReport reproduces the paper's time-noise analysis: repeated known-
// good prints of the same job drift, but never past the 5 % margin, and
// their final counts agree exactly.
type DriftReport struct {
	Runs int
	// MaxDriftPercent is the worst per-window divergence across all pairs
	// among substantial windows (golden count ≥ detect.SubstantialCount)
	// — the regime in which the paper states its 5 % bound.
	MaxDriftPercent float64
	// MaxDriftRaw includes the first few tiny-count windows after capture
	// start, where ±1 step is a double-digit relative swing (tolerated by
	// the detector's absolute guard).
	MaxDriftRaw      float64
	FinalCountsEqual bool
	FalsePositives   int // detector verdicts against known-good prints
}

// Format renders the drift report.
func (r *DriftReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Time-noise drift (§V-C): %d known-good prints\n", r.Runs)
	fmt.Fprintf(&sb, "max per-window drift: %.2f%% on substantial counts (margin: 5%%); %.2f%% raw incl. startup windows\n",
		r.MaxDriftPercent, r.MaxDriftRaw)
	fmt.Fprintf(&sb, "final counts equal: %v (0%% margin check)\n", r.FinalCountsEqual)
	fmt.Fprintf(&sb, "detector false positives: %d\n", r.FalsePositives)
	return sb.String()
}

// ---------------------------------------------------------------------------
// TapSides — the §V-D co-location limitation as a scenario axis

// TapSideReport demonstrates the paper's §V-D discussion ("both the
// attacks and defense would be co-located in the same FPGA") as a
// measurable topology experiment: the same board-injected trojan print,
// captured simultaneously at both tap points, detected only where the tap
// can see it.
//
// The trojan under test is T2 (extruder pulse masking) deliberately: the
// extruder is the one axis with no endstop, so nothing couples the
// plant's tampered physical state back into the firmware's commanded
// steps and the Arduino-side capture stays bit-identical to the golden
// for every seed. X/Y injection trojans (T1/T4) leak into the Arduino
// capture through the end-of-print G28 X park — a closed-loop homing
// whose commanded step count depends on the physically shifted carriage
// — which is physical attestation, not capture-side detection.
type TapSideReport struct {
	// TrojanID is the board-injected trojan under test.
	TrojanID string
	// ArduinoReport compares the golden capture against the trojaned
	// print's Arduino-side (input-tap) capture — the paper's rig.
	ArduinoReport detect.Report
	// RAMPSReport compares the golden capture against the trojaned
	// print's RAMPS-side (output-tap) capture.
	RAMPSReport detect.Report
	// ArduinoDetected / RAMPSDetected are the two verdicts; the paper's
	// limitation is precisely ArduinoDetected == false.
	ArduinoDetected bool
	RAMPSDetected   bool
	// Diff measures the physical damage the Arduino-side tap failed to
	// see (trojaned part vs golden part); under T2 the signature is the
	// halved filament ratio.
	Diff printer.Diff
}

// Format renders the tap-side comparison.
func (r *TapSideReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tap-side topology (§V-D): board-injected %s under golden detection\n", r.TrojanID)
	verdict := func(detected bool) string {
		if detected {
			return "TROJAN LIKELY"
		}
		return "no trojan suspected"
	}
	fmt.Fprintf(&sb, "arduino-side tap (paper rig): %s (%d mismatches, %d final) — blind to its own board\n",
		verdict(r.ArduinoDetected), r.ArduinoReport.NumMismatches, len(r.ArduinoReport.Final))
	fmt.Fprintf(&sb, "ramps-side tap:               %s (%d mismatches, %d final, largest %.2f%%)\n",
		verdict(r.RAMPSDetected), r.RAMPSReport.NumMismatches, len(r.RAMPSReport.Final), r.RAMPSReport.LargestPercent)
	fmt.Fprintf(&sb, "physical damage missed by the arduino tap: filament ratio %.2f vs golden\n",
		r.Diff.FilamentRatio)
	return sb.String()
}

// TapSidesSuite returns the tap-placement experiment as a declarative
// suite: a golden print, the same print with trojan T2 masking extruder
// pulses on the board itself and both buses tapped, and one golden
// comparison per tap side of the trojaned capture.
func TapSidesSuite(seed uint64) *SuiteSpec {
	return &SuiteSpec{
		Name:     "tapsides",
		BaseSeed: seed,
		Scenarios: []ScenarioSpec{
			{Name: "golden"},
			{Name: "trojaned", Trojan: &TrojanSpec{Name: "T2"}, Tap: "dual"},
		},
		Compare: []CompareSpec{
			{Golden: "golden", Suspect: "trojaned", SuspectTap: "arduino"},
			{Golden: "golden", Suspect: "trojaned", SuspectTap: "ramps"},
		},
	}
}

// TapSides runs the declarative TapSidesSuite: the golden detector misses
// a board-injected trojan when the capture taps the FPGA's input (the
// co-location blind spot the paper reproduces faithfully), and catches
// the very same print when the capture taps the FPGA's output.
func TapSides(seed uint64, opts ...ExperimentOption) (*TapSideReport, error) {
	srep, err := newCampaign(opts).RunSuite(context.Background(), TapSidesSuite(seed))
	if err != nil {
		return nil, err
	}
	if err := firstScenarioErr(srep.Results); err != nil {
		return nil, err
	}
	for _, cmp := range srep.Comparisons {
		if cmp.Err != nil {
			return nil, fmt.Errorf("offramps: compare %s vs %s: %w", cmp.Golden, cmp.Suspect, cmp.Err)
		}
	}
	golden, trojaned := srep.Results[0].Result, srep.Results[1].Result
	report := &TapSideReport{
		TrojanID:        "T2",
		ArduinoReport:   *srep.Comparisons[0].Report,
		RAMPSReport:     *srep.Comparisons[1].Report,
		ArduinoDetected: srep.Comparisons[0].Report.TrojanLikely,
		RAMPSDetected:   srep.Comparisons[1].Report.TrojanLikely,
		Diff:            trojaned.Part.Compare(golden.Part, 1.0),
	}
	return report, nil
}

// ---------------------------------------------------------------------------
// SelfAttest — dual-tap board self-attestation (the §V-D limitation
// inverted into a golden-free defense)

// SelfAttestReport demonstrates board self-attestation: the attestation
// detector diffs the two simultaneous captures of ONE dual-tap print —
// the Arduino-side view of what the firmware commanded and the RAMPS-
// side view of what the printer received — so a board-resident trojan is
// caught in a single simulation with no golden reference and no second
// run. The same run's Arduino-side capture, checked the paper's way
// against a golden print, stays clean: the §V-D co-location blind spot
// and its defeat, measured on one and the same print.
type SelfAttestReport struct {
	// TrojanID is the board-resident trojan under test.
	TrojanID string
	// Attestation is the dual-tap attestation verdict on the trojaned
	// print — one simulation, no golden reference.
	Attestation detect.Report
	// CleanControl is the same attestation on a clean dual-tap print:
	// the false-positive check (window-boundary skew between the two
	// taps must stay under the attestation margin).
	CleanControl detect.Report
	// ArduinoView compares the trojaned run's own Arduino-side capture
	// against a separate golden print — the paper's rig, blind to the
	// board it rides on.
	ArduinoView detect.Report
	// Detected / CleanFalsePositive / ArduinoDetected are the three
	// verdicts; the experiment's claim is (true, false, false).
	Detected           bool
	CleanFalsePositive bool
	ArduinoDetected    bool
	// Diff is the physical damage the attestation caught and the
	// Arduino-only rig missed (trojaned part vs golden part).
	Diff printer.Diff
}

// Format renders the self-attestation report.
func (r *SelfAttestReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Board self-attestation: board-run %s under a dual tap\n", r.TrojanID)
	verdict := func(detected bool) string {
		if detected {
			return "TROJAN LIKELY"
		}
		return "no trojan suspected"
	}
	fmt.Fprintf(&sb, "attestation (single print, no golden): %s (%d mismatches, %d final, largest %.2f%%)\n",
		verdict(r.Detected), r.Attestation.NumMismatches, len(r.Attestation.Final), r.Attestation.LargestPercent)
	fmt.Fprintf(&sb, "attestation on a clean print:          %s (%d pairs compared)\n",
		verdict(r.CleanFalsePositive), r.CleanControl.NumCompared)
	fmt.Fprintf(&sb, "same run, arduino tap vs golden (paper rig): %s (%d mismatches, %d final) — blind to its own board\n",
		verdict(r.ArduinoDetected), r.ArduinoView.NumMismatches, len(r.ArduinoView.Final))
	fmt.Fprintf(&sb, "physical damage attested with no reference: filament ratio %.2f vs golden\n",
		r.Diff.FilamentRatio)
	return sb.String()
}

// SelfAttestSuite returns the board self-attestation experiment as a
// declarative suite: a dual-tap board-T2 print carrying the attestation
// detector, a clean dual-tap attestation control, and a golden print
// used only for the contrast — the paper's golden comparison of the very
// same trojaned run's Arduino-side capture, which must stay clean.
func SelfAttestSuite(seed uint64) *SuiteSpec {
	return &SuiteSpec{
		Name:     "selfattest",
		BaseSeed: seed,
		Scenarios: []ScenarioSpec{
			{
				Name:     "attested",
				Trojan:   &TrojanSpec{Name: "T2"},
				Tap:      "dual",
				Detector: &DetectorSpec{Name: "attestation", Tap: "dual"},
			},
			{
				Name:     "clean-attested",
				Tap:      "dual",
				Detector: &DetectorSpec{Name: "attestation", Tap: "dual"},
			},
			{Name: "golden"},
		},
		Compare: []CompareSpec{
			// The trojaned run's own upstream capture through the paper's
			// two-print workflow: provably clean (§V-D).
			{Golden: "golden", Suspect: "attested", SuspectTap: "arduino"},
		},
	}
}

// SelfAttest runs the declarative SelfAttestSuite: a board-run T2 is
// detected by dual-tap self-attestation in a single print with no golden
// capture, while the paper's Arduino-side workflow reports the same
// print clean.
func SelfAttest(seed uint64, opts ...ExperimentOption) (*SelfAttestReport, error) {
	srep, err := newCampaign(opts).RunSuite(context.Background(), SelfAttestSuite(seed))
	if err != nil {
		return nil, err
	}
	if err := firstScenarioErr(srep.Results); err != nil {
		return nil, err
	}
	attested, clean, golden := srep.Results[0].Result, srep.Results[1].Result, srep.Results[2].Result
	if len(attested.Detections) != 1 || len(clean.Detections) != 1 {
		return nil, fmt.Errorf("offramps: selfattest: attestation reports missing")
	}
	cmp := srep.Comparisons[0]
	if cmp.Err != nil {
		return nil, fmt.Errorf("offramps: compare %s vs %s: %w", cmp.Golden, cmp.Suspect, cmp.Err)
	}
	return &SelfAttestReport{
		TrojanID:           "T2",
		Attestation:        *attested.Detections[0],
		CleanControl:       *clean.Detections[0],
		ArduinoView:        *cmp.Report,
		Detected:           attested.Detections[0].TrojanLikely,
		CleanFalsePositive: clean.Detections[0].TrojanLikely,
		ArduinoDetected:    cmp.Report.TrojanLikely,
		Diff:               attested.Part.Compare(golden.Part, 1.0),
	}, nil
}

// DriftSuite returns the §V-C workload as a declarative suite: `runs`
// known-good prints of the same job on stepped seeds, compared pairwise.
func DriftSuite(seed uint64, runs int) *SuiteSpec {
	s := &SuiteSpec{Name: "drift", BaseSeed: seed}
	for i := 0; i < runs; i++ {
		s.Scenarios = append(s.Scenarios, ScenarioSpec{
			Name:      fmt.Sprintf("drift-%d", i),
			SeedDelta: uint64(i) * 31,
		})
	}
	for i := 0; i < runs; i++ {
		for j := i + 1; j < runs; j++ {
			s.Compare = append(s.Compare, CompareSpec{
				Golden:  fmt.Sprintf("drift-%d", i),
				Suspect: fmt.Sprintf("drift-%d", j),
			})
		}
	}
	return s
}

// Drift runs the same job `runs` times with different time-noise seeds —
// one campaign scenario per print — and measures the worst per-window
// divergence, the quantity the paper bounds at 5 % ("This drift was,
// however, always less than a 5 % difference in our testing"). Prints and
// pairwise comparisons both execute the declarative DriftSuite.
func Drift(seed uint64, runs int, opts ...ExperimentOption) (*DriftReport, error) {
	if runs < 2 {
		return nil, fmt.Errorf("offramps: drift needs at least 2 runs, got %d", runs)
	}
	srep, err := newCampaign(opts).RunSuite(context.Background(), DriftSuite(seed, runs))
	if err != nil {
		return nil, err
	}
	for i, r := range srep.Results {
		if _, err := scenarioCapture(r); err != nil {
			return nil, fmt.Errorf("offramps: drift run %d: %w", i, err)
		}
	}
	report := &DriftReport{Runs: runs, FinalCountsEqual: true}
	for _, cmp := range srep.Comparisons {
		if cmp.Err != nil {
			return nil, cmp.Err
		}
		rep := cmp.Report
		if rep.LargestSubstantial > report.MaxDriftPercent {
			report.MaxDriftPercent = rep.LargestSubstantial
		}
		if rep.LargestPercent > report.MaxDriftRaw {
			report.MaxDriftRaw = rep.LargestPercent
		}
		if len(rep.Final) > 0 {
			report.FinalCountsEqual = false
		}
		if rep.TrojanLikely {
			report.FalsePositives++
		}
	}
	return report, nil
}
