package offramps

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// sinkScenarios builds a small campaign input: three clean prints on
// distinct seeds.
func sinkScenarios(t *testing.T) []Scenario {
	t.Helper()
	prog, err := TestPart()
	if err != nil {
		t.Fatal(err)
	}
	var out []Scenario
	for i := 0; i < 3; i++ {
		out = append(out, Scenario{Name: fmt.Sprintf("s%d", i), Program: prog, Seed: uint64(i) + 1})
	}
	return out
}

// TestCampaignStreamsToSinks: every completed scenario reaches every
// sink exactly once, regardless of completion order.
func TestCampaignStreamsToSinks(t *testing.T) {
	var jsonl, csvBuf, prog strings.Builder
	jl := NewJSONLSink(&jsonl)
	jl.Label = "stream-test"
	cs := NewCSVSink(&csvBuf)
	ps := &ProgressSink{W: &prog, Total: 3}
	c := Campaign{Workers: 2, Sinks: []ResultSink{jl, cs, ps}}

	results, err := c.Run(context.Background(), sinkScenarios(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Sinks {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}

	// JSONL: one self-describing row per scenario, any order.
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl rows = %d:\n%s", len(lines), jsonl.String())
	}
	names := map[string]bool{}
	for _, l := range lines {
		var row struct {
			Suite  string `json:"suite"`
			Name   string `json:"name"`
			Seed   uint64 `json:"seed"`
			Result struct {
				Completed bool
			} `json:"result"`
		}
		if err := json.Unmarshal([]byte(l), &row); err != nil {
			t.Fatalf("bad jsonl row %q: %v", l, err)
		}
		if row.Suite != "stream-test" || row.Seed == 0 || !row.Result.Completed {
			t.Errorf("row %+v", row)
		}
		names[row.Name] = true
	}
	if len(names) != 3 {
		t.Errorf("jsonl names = %v", names)
	}

	// CSV: header + 3 records under the shared schema.
	recs, err := csv.NewReader(strings.NewReader(csvBuf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("csv records = %d", len(recs))
	}
	if got, want := strings.Join(recs[0], ","), strings.Join(ScenarioCSVHeader, ","); got != want {
		t.Errorf("csv header = %q", got)
	}
	for _, rec := range recs[1:] {
		if rec[0] != "scenario" || rec[1] != "" || rec[6] != "true" {
			t.Errorf("csv record %v", rec)
		}
	}

	// Progress: [i/3] framing on each of the three lines.
	plines := strings.Split(strings.TrimSpace(prog.String()), "\n")
	if len(plines) != 3 {
		t.Fatalf("progress lines = %d:\n%s", len(plines), prog.String())
	}
	for i, l := range plines {
		if !strings.HasPrefix(l, fmt.Sprintf("[%d/3] ", i+1)) {
			t.Errorf("progress line %d = %q", i, l)
		}
	}
}

// failSink fails on the second emit.
type failSink struct{ n int }

func (s *failSink) Emit(ScenarioResult) error {
	s.n++
	if s.n == 2 {
		return errors.New("disk full")
	}
	return nil
}
func (s *failSink) Close() error { return nil }

// TestCampaignSinkError: a failing sink surfaces its error from Run —
// after every scenario still completed.
func TestCampaignSinkError(t *testing.T) {
	c := Campaign{Workers: 2, Sinks: []ResultSink{&failSink{}}}
	results, err := c.Run(context.Background(), sinkScenarios(t))
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want the sink failure", err)
	}
	for _, r := range results {
		if r.Err != nil || r.Result == nil {
			t.Errorf("scenario %s did not complete: %+v", r.Name, r)
		}
	}
}

// TestSinkErrorRows: error results render as self-describing rows, not
// panics, in every sink.
func TestSinkErrorRows(t *testing.T) {
	r := ScenarioResult{Name: "boom", Seed: 7, Err: errors.New("factory failed")}
	var jsonl strings.Builder
	if err := NewJSONLSink(&jsonl).Emit(r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"error":"factory failed"`) {
		t.Errorf("jsonl error row = %s", jsonl.String())
	}
	row := ScenarioCSVRow("s", r)
	if row[len(row)-1] != "factory failed" {
		t.Errorf("csv error row = %v", row)
	}
	var prog strings.Builder
	ps := &ProgressSink{W: &prog}
	if err := ps.Emit(r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "error: factory failed") || !strings.Contains(prog.String(), "[1/?]") {
		t.Errorf("progress error row = %q", prog.String())
	}
}

// TestSuiteContinuesOnSinkError: a sink failure must not abort the
// suite — later waves and comparisons still run, the report is
// complete, and the typed SinkError surfaces at the end.
func TestSuiteContinuesOnSinkError(t *testing.T) {
	suite := &SuiteSpec{
		Name:     "sinkfail",
		BaseSeed: 1,
		Scenarios: []ScenarioSpec{
			{Name: "golden"},
			{Name: "suspect", SeedDelta: 5,
				Detector: &DetectorSpec{Name: "golden-monitor", Golden: "golden"}},
		},
		Compare: []CompareSpec{{Golden: "golden", Suspect: "suspect"}},
	}
	c := Campaign{Sinks: []ResultSink{&failSink{}}}
	rep, err := c.RunSuite(context.Background(), suite)
	var se *SinkError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a *SinkError", err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2 (second wave must still run)", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Err != nil || r.Result == nil {
			t.Errorf("scenario %s incomplete: %+v", r.Name, r)
		}
	}
	if len(rep.Comparisons) != 1 || rep.Comparisons[0].Err != nil {
		t.Errorf("comparisons did not run: %+v", rep.Comparisons)
	}
}
