package offramps

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"offramps/internal/detect"
)

// sinkScenarios builds a small campaign input: three clean prints on
// distinct seeds.
func sinkScenarios(t *testing.T) []Scenario {
	t.Helper()
	prog, err := TestPart()
	if err != nil {
		t.Fatal(err)
	}
	var out []Scenario
	for i := 0; i < 3; i++ {
		out = append(out, Scenario{Name: fmt.Sprintf("s%d", i), Program: prog, Seed: uint64(i) + 1})
	}
	return out
}

// TestCampaignStreamsToSinks: every completed scenario reaches every
// sink exactly once, regardless of completion order.
func TestCampaignStreamsToSinks(t *testing.T) {
	var jsonl, csvBuf, prog strings.Builder
	jl := NewJSONLSink(&jsonl)
	jl.Label = "stream-test"
	cs := NewCSVSink(&csvBuf)
	ps := &ProgressSink{W: &prog, Total: 3}
	c := Campaign{Workers: 2, Sinks: []ResultSink{jl, cs, ps}}

	results, err := c.Run(context.Background(), sinkScenarios(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Sinks {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}

	// JSONL: one self-describing row per scenario, any order.
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl rows = %d:\n%s", len(lines), jsonl.String())
	}
	names := map[string]bool{}
	for _, l := range lines {
		var row struct {
			Suite  string `json:"suite"`
			Name   string `json:"name"`
			Seed   uint64 `json:"seed"`
			Result struct {
				Completed bool
			} `json:"result"`
		}
		if err := json.Unmarshal([]byte(l), &row); err != nil {
			t.Fatalf("bad jsonl row %q: %v", l, err)
		}
		if row.Suite != "stream-test" || row.Seed == 0 || !row.Result.Completed {
			t.Errorf("row %+v", row)
		}
		names[row.Name] = true
	}
	if len(names) != 3 {
		t.Errorf("jsonl names = %v", names)
	}

	// CSV: header + 3 records under the shared schema.
	recs, err := csv.NewReader(strings.NewReader(csvBuf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("csv records = %d", len(recs))
	}
	if got, want := strings.Join(recs[0], ","), strings.Join(ScenarioCSVHeader, ","); got != want {
		t.Errorf("csv header = %q", got)
	}
	for _, rec := range recs[1:] {
		if rec[0] != "scenario" || rec[1] != "" || rec[6] != "true" {
			t.Errorf("csv record %v", rec)
		}
	}

	// Progress: [i/3] framing on each of the three lines.
	plines := strings.Split(strings.TrimSpace(prog.String()), "\n")
	if len(plines) != 3 {
		t.Fatalf("progress lines = %d:\n%s", len(plines), prog.String())
	}
	for i, l := range plines {
		if !strings.HasPrefix(l, fmt.Sprintf("[%d/3] ", i+1)) {
			t.Errorf("progress line %d = %q", i, l)
		}
	}
}

// failSink fails on the second emit.
type failSink struct{ n int }

func (s *failSink) Emit(ScenarioResult) error {
	s.n++
	if s.n == 2 {
		return errors.New("disk full")
	}
	return nil
}
func (s *failSink) Close() error { return nil }

// TestCampaignSinkError: a failing sink surfaces its error from Run —
// after every scenario still completed.
func TestCampaignSinkError(t *testing.T) {
	c := Campaign{Workers: 2, Sinks: []ResultSink{&failSink{}}}
	results, err := c.Run(context.Background(), sinkScenarios(t))
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want the sink failure", err)
	}
	for _, r := range results {
		if r.Err != nil || r.Result == nil {
			t.Errorf("scenario %s did not complete: %+v", r.Name, r)
		}
	}
}

// TestSinkErrorRows: error results render as self-describing rows, not
// panics, in every sink.
func TestSinkErrorRows(t *testing.T) {
	r := ScenarioResult{Name: "boom", Seed: 7, Err: errors.New("factory failed")}
	var jsonl strings.Builder
	if err := NewJSONLSink(&jsonl).Emit(r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"error":"factory failed"`) {
		t.Errorf("jsonl error row = %s", jsonl.String())
	}
	row := ScenarioCSVRow("s", r)
	if row[len(row)-1] != "factory failed" {
		t.Errorf("csv error row = %v", row)
	}
	var prog strings.Builder
	ps := &ProgressSink{W: &prog}
	if err := ps.Emit(r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "error: factory failed") || !strings.Contains(prog.String(), "[1/?]") {
		t.Errorf("progress error row = %q", prog.String())
	}
}

// TestSuiteContinuesOnSinkError: a sink failure must not abort the
// suite — later waves and comparisons still run, the report is
// complete, and the typed SinkError surfaces at the end.
func TestSuiteContinuesOnSinkError(t *testing.T) {
	suite := &SuiteSpec{
		Name:     "sinkfail",
		BaseSeed: 1,
		Scenarios: []ScenarioSpec{
			{Name: "golden"},
			{Name: "suspect", SeedDelta: 5,
				Detector: &DetectorSpec{Name: "golden-monitor", Golden: "golden"}},
		},
		Compare: []CompareSpec{{Golden: "golden", Suspect: "suspect"}},
	}
	c := Campaign{Sinks: []ResultSink{&failSink{}}}
	rep, err := c.RunSuite(context.Background(), suite)
	var se *SinkError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a *SinkError", err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2 (second wave must still run)", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Err != nil || r.Result == nil {
			t.Errorf("scenario %s incomplete: %+v", r.Name, r)
		}
	}
	if len(rep.Comparisons) != 1 || rep.Comparisons[0].Err != nil {
		t.Errorf("comparisons did not run: %+v", rep.Comparisons)
	}
}

// resumeSuite is the fixture for stream/resume tests: four scenarios
// with distinct effective seeds and one comparison.
func resumeSuite() *SuiteSpec {
	return &SuiteSpec{
		Name:     "rs",
		BaseSeed: 10,
		Scenarios: []ScenarioSpec{
			{Name: "g"},
			{Name: "a", SeedDelta: 1},
			{Name: "b", SeedDelta: 2},
			{Name: "c", SeedDelta: 3},
		},
		Compare: []CompareSpec{{Golden: "g", Suspect: "a"}},
	}
}

// resumeStream renders JSONL rows for the named scenarios (and the
// comparison, when asked) exactly as JSONLSink writes them.
func resumeStream(t *testing.T, names []string, withCompare bool) string {
	t.Helper()
	s := resumeSuite()
	var buf strings.Builder
	sink := NewJSONLSink(&buf)
	sink.Label = s.Name
	for _, name := range names {
		sc, ok := s.FindScenario(name)
		if !ok {
			t.Fatalf("fixture scenario %q missing", name)
		}
		if err := sink.Emit(ScenarioResult{Name: name, Seed: sc.EffectiveSeed(s.BaseSeed)}); err != nil {
			t.Fatal(err)
		}
	}
	if withCompare {
		if err := sink.EmitCompare(CompareResult{Golden: "g", Suspect: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestResumeIndexComplement: a stream covering a strict subset — with a
// torn trailing line on top — must yield exactly the complement, in
// canonical suite order, as the scenarios still to run.
func TestResumeIndexComplement(t *testing.T) {
	stream := resumeStream(t, []string{"c", "g"}, true) + `{"suite":"rs","name":"b","se`
	ix, err := ReadResumeIndex(strings.NewReader(stream), "rs")
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Torn {
		t.Error("torn trailing line not reported")
	}
	s := resumeSuite()
	if err := ix.Validate(s); err != nil {
		t.Fatal(err)
	}
	got := ix.Missing(s)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Missing = %v, want [a b]", got)
	}
	if len(ix.Compares) != 1 {
		t.Errorf("compares recovered = %d, want 1", len(ix.Compares))
	}
}

// TestResumeIndexComplete: a stream covering every scenario seeds an
// empty queue.
func TestResumeIndexComplete(t *testing.T) {
	stream := resumeStream(t, []string{"g", "a", "b", "c"}, true)
	ix, err := ReadResumeIndex(strings.NewReader(stream), "rs")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Torn {
		t.Error("intact stream reported torn")
	}
	if got := ix.Missing(resumeSuite()); len(got) != 0 {
		t.Errorf("Missing = %v, want none", got)
	}
}

// TestResumeIndexRejectsMidstreamCorruption: a malformed line is only
// tolerable as the stream's tail; followed by more rows it is
// corruption, not a crash artifact.
func TestResumeIndexRejectsMidstreamCorruption(t *testing.T) {
	rows := strings.SplitAfter(resumeStream(t, []string{"g", "a"}, false), "\n")
	stream := rows[0] + "{torn garbage\n" + rows[1]
	if _, err := ReadResumeIndex(strings.NewReader(stream), "rs"); err == nil ||
		!strings.Contains(err.Error(), "not the stream's tail") {
		t.Errorf("midstream corruption accepted: %v", err)
	}
}

// TestResumeIndexFirstWinsAndForeignSuites: duplicate rows keep the
// first occurrence; rows labelled with another suite are skipped.
func TestResumeIndexFirstWinsAndForeignSuites(t *testing.T) {
	stream := resumeStream(t, []string{"g", "g"}, false) +
		`{"suite":"other","name":"x","seed":1,"result":null}` + "\n"
	ix, err := ReadResumeIndex(strings.NewReader(stream), "rs")
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Scenarios) != 1 {
		t.Errorf("scenarios = %d, want 1 (dup dropped, foreign suite skipped)", len(ix.Scenarios))
	}
}

// TestResumeIndexValidateDrift: rows from a different base seed or an
// edited suite must be refused — resuming from them would stitch a lie.
func TestResumeIndexValidateDrift(t *testing.T) {
	s := resumeSuite()
	var buf strings.Builder
	sink := NewJSONLSink(&buf)
	sink.Label = "rs"
	if err := sink.Emit(ScenarioResult{Name: "a", Seed: 999}); err != nil {
		t.Fatal(err)
	}
	ix, err := ReadResumeIndex(strings.NewReader(buf.String()), "rs")
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(s); err == nil || !strings.Contains(err.Error(), "different base seed") {
		t.Errorf("seed drift accepted: %v", err)
	}

	stream := resumeStream(t, nil, false) + `{"suite":"rs","name":"zzz","seed":1,"result":null}` + "\n"
	ix, err = ReadResumeIndex(strings.NewReader(stream), "rs")
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(s); err == nil || !strings.Contains(err.Error(), "stale stream") {
		t.Errorf("unknown scenario accepted: %v", err)
	}
}

// TestParseStreamRowRoundTrip: a scenario row parsed from the stream
// reconstructs byte-for-byte the report row ScenarioResult marshals to,
// and a comparison row carries its object verbatim — the foundation of
// every byte-identity guarantee downstream.
func TestParseStreamRowRoundTrip(t *testing.T) {
	res := ScenarioResult{Name: "a", Seed: 11, Err: errors.New("boom")}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	sink := NewJSONLSink(&buf)
	sink.Label = "rs"
	if err := sink.Emit(res); err != nil {
		t.Fatal(err)
	}
	row, err := ParseStreamRow([]byte(strings.TrimSpace(buf.String())))
	if err != nil {
		t.Fatal(err)
	}
	if string(row.Report) != string(want) {
		t.Errorf("reconstructed row = %s, want %s", row.Report, want)
	}

	buf.Reset()
	cmp := CompareResult{Golden: "g", Suspect: "a", SuspectTap: "ramps"}
	cmpWant, err := json.Marshal(cmp)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.EmitCompare(cmp); err != nil {
		t.Fatal(err)
	}
	crow, err := ParseStreamRow([]byte(strings.TrimSpace(buf.String())))
	if err != nil {
		t.Fatal(err)
	}
	if crow.Key != CompareKey("g", "", "a", "ramps") {
		t.Errorf("compare key = %q", crow.Key)
	}
	if string(crow.Report) != string(cmpWant) {
		t.Errorf("compare row = %s, want %s", crow.Report, cmpWant)
	}
}

// TestProgressSinkCacheStats: with a cache attached, every progress line
// reports live hit/miss counts.
func TestProgressSinkCacheStats(t *testing.T) {
	cache := NewGoldenCache()
	var out strings.Builder
	ps := &ProgressSink{W: &out, Total: 2, Cache: cache}
	if err := ps.Emit(ScenarioResult{Name: "a", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cache 0 hit / 0 miss") {
		t.Errorf("progress line lacks cache stats: %q", out.String())
	}
}

// TestScenarioVerdict tables every verdict state. The detector-free
// placeholder ("-") applies only when nothing flagged the run: a
// TrojanLikely result must surface TROJAN LIKELY even with an empty
// Detections slice (e.g. a result narrowed or synthesized elsewhere).
func TestScenarioVerdict(t *testing.T) {
	flagged := []*detect.Report{{TrojanLikely: true}}
	quiet := []*detect.Report{{}}
	cases := []struct {
		name string
		r    ScenarioResult
		want string
	}{
		{"error", ScenarioResult{Err: errors.New("boom")}, "error: boom"},
		{"not-run", ScenarioResult{}, "not run"},
		{"no-detector", ScenarioResult{Result: &Result{}}, "-"},
		{"clean", ScenarioResult{Result: &Result{Detections: quiet}}, "clean"},
		{"trojan", ScenarioResult{Result: &Result{Detections: flagged, TrojanLikely: true}}, "TROJAN LIKELY"},
		{"trojan-empty-reports", ScenarioResult{Result: &Result{TrojanLikely: true}}, "TROJAN LIKELY"},
		{"aborted-no-detector", ScenarioResult{Result: &Result{Aborted: true}}, "- (aborted)"},
		{"aborted-clean", ScenarioResult{Result: &Result{Detections: quiet, Aborted: true}}, "clean (aborted)"},
		{"aborted-trojan", ScenarioResult{Result: &Result{Detections: flagged, TrojanLikely: true, Aborted: true}}, "TROJAN LIKELY (aborted)"},
	}
	for _, c := range cases {
		if got := scenarioVerdict(c.r); got != c.want {
			t.Errorf("%s: verdict = %q, want %q", c.name, got, c.want)
		}
	}
}

// TestCampaignCancelKeepsSinkError: a sink failure observed before the
// context is cancelled must survive the cancel return path — callers
// match *SinkError to tell "results incomplete on disk" from a mere
// early stop.
func TestCampaignCancelKeepsSinkError(t *testing.T) {
	prog, err := TestPart()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	scens := []Scenario{
		{Name: "a", Program: prog, Seed: 1, Prepare: func(*Testbed) error {
			cancel()
			return nil
		}},
		{Name: "b", Program: prog, Seed: 2},
	}
	_, err = Campaign{Workers: 1, Sinks: []ResultSink{alwaysFailSink{}}}.Run(ctx, scens)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	var se *SinkError
	if !errors.As(err, &se) {
		t.Errorf("sink failure dropped on the cancel path: %v", err)
	}
}

type alwaysFailSink struct{}

func (alwaysFailSink) Emit(ScenarioResult) error { return errors.New("disk full") }
func (alwaysFailSink) Close() error              { return nil }
