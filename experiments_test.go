package offramps

import (
	"context"
	"strings"
	"testing"

	"offramps/internal/capture"
)

// These tests are the repository's headline assertions: every table and
// figure of the paper's evaluation must reproduce. They are slower than
// unit tests (each runs multiple full simulated prints) but still finish
// in seconds apiece.

func TestTableIReproduces(t *testing.T) {
	rep, err := TableI(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 9 {
		t.Fatalf("Table I has %d rows, want 9", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if !row.Observed {
			t.Errorf("%s (%s) effect not observed: %s", row.ID, row.Scenario, row.Measured)
		}
	}

	// Spot-check the paper's specific claims.
	byID := make(map[string]TableIRow, len(rep.Rows))
	for _, row := range rep.Rows {
		byID[row.ID] = row
	}
	// T2: "reducing the flow and amount of material extruded by 50%".
	if r := byID["T2"]; r.Diff.FilamentRatio < 0.45 || r.Diff.FilamentRatio > 0.55 {
		t.Errorf("T2 filament ratio = %v, want ≈0.5", r.Diff.FilamentRatio)
	}
	// T6: DoS — the print must NOT complete.
	if r := byID["T6"]; r.Result.Completed {
		t.Error("T6 print completed despite heater DoS")
	}
	// T7: destructive — past working spec while the golden never was.
	if r := byID["T7"]; !r.Result.HotendExceededSafe {
		t.Error("T7 did not exceed thermal spec")
	}
	if rep.Golden.HotendExceededSafe {
		t.Error("golden print exceeded thermal spec")
	}
	// T7: "the temperature of the hot-end was observed to rise extremely
	// fast, passing the intended temperature within a few seconds" —
	// the peak must be far above the 210 °C setpoint.
	if r := byID["T7"]; r.Result.PeakHotendTemp < 280 {
		t.Errorf("T7 peak = %v °C, want well past 260", r.Result.PeakHotendTemp)
	}
	// Kinds match Table I.
	wantKinds := map[string]string{
		"T1": "PM", "T2": "PM", "T3": "PM", "T4": "PM", "T5": "PM",
		"T6": "DoS", "T7": "D", "T8": "DoS", "T9": "PM",
	}
	for id, kind := range wantKinds {
		if byID[id].Kind != kind {
			t.Errorf("%s kind = %s, want %s", id, byID[id].Kind, kind)
		}
	}
	if !strings.Contains(rep.Format(), "T7") {
		t.Error("Format() missing rows")
	}
}

func TestTableIIReproduces(t *testing.T) {
	rep, err := TableII(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("Table II has %d rows, want 8", len(rep.Rows))
	}
	// The paper's result: every test case detected.
	for _, row := range rep.Rows {
		if !row.Detected {
			t.Errorf("case %d (%s %v) not detected", row.Case.Num, row.Case.Type, row.Case.Value)
		}
	}
	// And the margin must not flag a clean print.
	if rep.CleanFalsePositive {
		t.Errorf("clean control flagged: %s", rep.CleanControl.Format())
	}
	// The stealthiest reduction (0.98) must be caught by the final
	// 0%-margin check, not the windowed margin — the paper's exact
	// narrative for why the final check exists.
	stealthy := rep.Rows[3]
	if stealthy.Case.Value != 0.98 {
		t.Fatalf("row 4 is %v", stealthy.Case)
	}
	if stealthy.Report.NumMismatches != 0 {
		t.Logf("note: 0.98 reduction produced %d window mismatches (still valid)", stealthy.Report.NumMismatches)
	}
	if len(stealthy.Report.Final) == 0 {
		t.Error("0.98 reduction not caught by the final count check")
	}
	if !strings.Contains(rep.Format(), "clean control") {
		t.Error("Format() missing control row")
	}
}

func TestFigure4Reproduces(t *testing.T) {
	rep, err := Figure4(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Report.TrojanLikely {
		t.Fatal("Figure 4 trojan not detected")
	}
	if len(rep.GoldenExcerpt) == 0 || len(rep.GoldenExcerpt) != len(rep.TrojanExcerpt) {
		t.Fatalf("excerpt sizes: %d vs %d", len(rep.GoldenExcerpt), len(rep.TrojanExcerpt))
	}
	// The excerpts must actually diverge.
	diverges := false
	for i := range rep.GoldenExcerpt {
		if rep.GoldenExcerpt[i] != rep.TrojanExcerpt[i] {
			diverges = true
			break
		}
	}
	if !diverges {
		t.Error("excerpts identical")
	}
	out := rep.Format()
	for _, want := range []string{
		"golden reference",
		"Flaw3D Trojan print",
		"Index, X, Y, Z, E",
		"Largest percent difference found:",
		"Trojan likely!",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q", want)
		}
	}
}

func TestOverheadReproduces(t *testing.T) {
	rep, err := Overhead(1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: max propagation 12.923 ns; our model rounds to 13 ns. Any
	// value in the same order validates the claim that the delay is
	// negligible next to 1 µs pulses.
	if rep.MaxPropagation <= 0 || rep.MaxPropagation > 100 {
		t.Errorf("MaxPropagation = %v", rep.MaxPropagation)
	}
	// Paper envelope: < 20 kHz, ≥ 1 µs.
	if rep.MaxStepFrequency >= 20_000 {
		t.Errorf("MaxStepFrequency = %v, want < 20 kHz", rep.MaxStepFrequency)
	}
	if rep.MinPulseWidth < 1000 {
		t.Errorf("MinPulseWidth = %v, want ≥ 1 µs", rep.MinPulseWidth)
	}
	// "We found no effect on print quality while running our detection
	// hardware."
	if rep.FilamentRatio < 0.999 || rep.FilamentRatio > 1.001 {
		t.Errorf("FilamentRatio = %v, want 1.0", rep.FilamentRatio)
	}
	if len(rep.LineStats) != 4 {
		t.Errorf("LineStats = %d entries, want 4 step lines", len(rep.LineStats))
	}
	if !strings.Contains(rep.Format(), "propagation") {
		t.Error("Format() incomplete")
	}
}

func TestDriftReproduces(t *testing.T) {
	rep, err := Drift(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's bound: "always less than a 5% difference" — asserted on
	// substantial windows, the paper's count regime.
	if rep.MaxDriftPercent >= 5 {
		t.Fatalf("substantial drift = %v%%, exceeds the paper's 5%% bound", rep.MaxDriftPercent)
	}
	if rep.MaxDriftRaw >= 100 {
		t.Fatalf("raw drift = %v%% — captures misaligned", rep.MaxDriftRaw)
	}
	if rep.FalsePositives != 0 {
		t.Errorf("%d false positives across %d known-good prints", rep.FalsePositives, rep.Runs)
	}
	if !rep.FinalCountsEqual {
		t.Error("final counts differ between known-good prints")
	}
	if !strings.Contains(rep.Format(), "5%") {
		t.Error("Format() incomplete")
	}
}

func TestDriftValidation(t *testing.T) {
	if _, err := Drift(1, 1); err == nil {
		t.Error("Drift with 1 run accepted")
	}
}

// TestTapSidesReproduces is the §V-D co-location claim, both directions:
// the paper's Arduino-side tap is provably blind to a trojan its own
// board runs, and moving the tap to the RAMPS side catches the very same
// print — so the limitation is topology, not detection. Two seeds guard
// against the result holding by coincidence (the extruder has no endstop,
// so no seed can couple the tampered physics back into the Arduino
// capture; see TapSideReport).
func TestTapSidesReproduces(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		rep, err := TapSides(seed)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ArduinoDetected {
			t.Errorf("seed %d: arduino-side tap detected the board's own trojan — §V-D says it cannot", seed)
		}
		if rep.ArduinoReport.NumMismatches != 0 || len(rep.ArduinoReport.Final) != 0 {
			t.Errorf("seed %d: arduino-side capture diverged from golden: %d mismatches, %d final",
				seed, rep.ArduinoReport.NumMismatches, len(rep.ArduinoReport.Final))
		}
		if !rep.RAMPSDetected {
			t.Errorf("seed %d: ramps-side tap missed the board-injected trojan", seed)
		}
		// The undetected (arduino-side) print still carries real physical
		// damage — that is what makes the blind spot matter. T2's
		// signature is the halved flow.
		if rep.Diff.FilamentRatio < 0.40 || rep.Diff.FilamentRatio > 0.60 {
			t.Errorf("seed %d: trojaned filament ratio = %v, want ≈0.5", seed, rep.Diff.FilamentRatio)
		}
		out := rep.Format()
		for _, want := range []string{"arduino-side tap", "ramps-side tap", "TROJAN LIKELY"} {
			if !strings.Contains(out, want) {
				t.Errorf("Format() missing %q", want)
			}
		}
	}
}

// TestSelfAttestReproduces checks the tentpole claim on the default
// seed: a dual-tap print detects a board-run T2 through self-attestation
// alone — no golden print, one simulation — while the very same run's
// Arduino-side capture passes the paper's golden workflow, and a clean
// dual-tap print is not false-positived.
func TestSelfAttestReproduces(t *testing.T) {
	rep, err := SelfAttest(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Error("dual-tap attestation missed the board-run trojan")
	}
	if rep.Attestation.NumCompared == 0 {
		t.Error("attestation compared no pairs")
	}
	if rep.CleanFalsePositive {
		t.Errorf("clean dual-tap print failed attestation:\n%s", rep.CleanControl.Format())
	}
	if rep.ArduinoDetected {
		t.Error("the trojaned run's arduino-side capture was flagged — §V-D says the paper's rig cannot see it")
	}
	out := rep.Format()
	for _, want := range []string{"no golden", "TROJAN LIKELY", "blind to its own board"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

// TestSelfAttestSeedSweep is the seed-robustness regression: the
// attestation verdict and the §V-D asymmetry must hold for seeds 1–10,
// not just the seeds spot-checked when the experiments were built. The
// extruder has no endstop, so no feedback path exists for any seed to
// couple the board's tampering back into the Arduino-side capture; this
// sweep guards that argument against future physics changes.
func TestSelfAttestSeedSweep(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		rep, err := SelfAttest(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Detected {
			t.Errorf("seed %d: attestation missed the board-run trojan", seed)
		}
		if rep.CleanFalsePositive {
			t.Errorf("seed %d: clean dual-tap print failed attestation (%d mismatches, largest %.2f%%)",
				seed, rep.CleanControl.NumMismatches, rep.CleanControl.LargestPercent)
		}
		if rep.ArduinoDetected {
			t.Errorf("seed %d: arduino-side capture flagged — the §V-D asymmetry broke", seed)
		}
		if rep.Diff.FilamentRatio < 0.40 || rep.Diff.FilamentRatio > 0.60 {
			t.Errorf("seed %d: trojaned filament ratio = %v, want ≈0.5", seed, rep.Diff.FilamentRatio)
		}
	}
}

func TestCaptureCSVRoundTripThroughRun(t *testing.T) {
	tb, err := NewTestbed(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := TestPart()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Recording.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := capture.ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Recording.Len() {
		t.Errorf("CSV round trip: %d vs %d transactions", back.Len(), res.Recording.Len())
	}
}
