package offramps

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzReadResumeIndex hammers the resume reader with arbitrary streams.
// The contract under fuzzing: never panic, and on a nil error return an
// index whose rows are valid first-wins JSON — re-reading the same
// stream must reproduce it exactly, and replaying a clean stream after
// itself must change nothing but the duplicate count.
func FuzzReadResumeIndex(f *testing.F) {
	scen := `{"suite":"s","name":"a","seed":11,"result":{"steps":3}}`
	scen2 := `{"suite":"s","name":"g","seed":1,"result":{"steps":3}}`
	errRow := `{"suite":"s","name":"b","seed":12,"error":"sim exploded"}`
	cmp := `{"suite":"s","compare":{"golden":"g","goldenTap":"","suspect":"a","suspectTap":"","match":true}}`
	f.Add(scen + "\n" + cmp + "\n" + scen2 + "\n")
	f.Add(scen + "\n" + scen + "\n" + cmp + "\n" + cmp + "\n") // duplicates
	f.Add(scen + "\n" + errRow + "\n")
	f.Add(scen + "\n" + scen2[:20]) // torn tail
	f.Add("garbage\n" + scen + "\n")
	f.Add(scen + "\n\n\n" + cmp + "\n") // interleaved blank lines
	f.Add(`{"suite":"other","name":"x","seed":5}` + "\n" + scen + "\n")
	f.Add("")
	f.Add("\x00\xff\xfe")
	f.Add(`{"name":""}` + "\n")
	f.Add(`{"compare":{}}` + "\n")

	f.Fuzz(func(t *testing.T, stream string) {
		ix, err := ReadResumeIndex(strings.NewReader(stream), "")
		if err != nil {
			return // rejecting a corrupt stream is a valid outcome
		}
		if ix.Dups < 0 {
			t.Fatalf("Dups = %d", ix.Dups)
		}
		for name, raw := range ix.Scenarios {
			if name == "" {
				t.Fatal("index holds a scenario row with an empty name")
			}
			if !json.Valid(raw) {
				t.Fatalf("scenario %q row is not valid JSON: %s", name, raw)
			}
			if _, ok := ix.Seeds[name]; !ok {
				t.Fatalf("scenario %q has a row but no seed", name)
			}
		}
		for key, raw := range ix.Compares {
			if key == "" {
				t.Fatal("index holds a comparison row with an empty key")
			}
			if !json.Valid(raw) {
				t.Fatalf("comparison %q row is not valid JSON: %s", key, raw)
			}
		}

		// Determinism: the same bytes index identically.
		again, err := ReadResumeIndex(strings.NewReader(stream), "")
		if err != nil {
			t.Fatalf("second read errored: %v", err)
		}
		if again.Torn != ix.Torn || again.Dups != ix.Dups ||
			len(again.Scenarios) != len(ix.Scenarios) || len(again.Compares) != len(ix.Compares) {
			t.Fatalf("re-read diverged: %+v vs %+v", again, ix)
		}

		// First wins: replaying a clean (untorn) stream after itself may
		// only add duplicates, never change or grow the indexed rows.
		if !ix.Torn {
			replay, err := ReadResumeIndex(strings.NewReader(stream+"\n"+stream), "")
			if err != nil {
				t.Fatalf("replayed stream errored: %v", err)
			}
			if len(replay.Scenarios) != len(ix.Scenarios) || len(replay.Compares) != len(ix.Compares) {
				t.Fatalf("replay grew the index: %d/%d rows, want %d/%d",
					len(replay.Scenarios), len(replay.Compares), len(ix.Scenarios), len(ix.Compares))
			}
			for name, raw := range ix.Scenarios {
				if !bytes.Equal(replay.Scenarios[name], raw) {
					t.Fatalf("replay rewrote scenario %q — first-wins violated", name)
				}
			}
			for key, raw := range ix.Compares {
				if !bytes.Equal(replay.Compares[key], raw) {
					t.Fatalf("replay rewrote comparison %q — first-wins violated", key)
				}
			}
		}
	})
}
