package offramps

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"offramps/internal/capture"
)

// TestCommittedSpecsCompile pushes every committed spec file — suite
// specs and grid_*.json sweeps alike — through the full spec compiler,
// so example drift (a renamed trojan, a retired detector param, a stale
// field) fails in CI instead of at a reader's terminal. The CI
// spec-validation job runs exactly this test.
func TestCommittedSpecsCompile(t *testing.T) {
	dir := filepath.Join("examples", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		found++
		path := filepath.Join(dir, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			var suite *SuiteSpec
			if strings.HasPrefix(e.Name(), "grid_") {
				g, err := LoadGridSpec(path)
				if err != nil {
					t.Fatal(err)
				}
				if suite, err = g.Expand(); err != nil {
					t.Fatal(err)
				}
			} else {
				var err error
				if suite, err = LoadSuiteSpec(path); err != nil {
					t.Fatal(err)
				}
			}
			base := suite.BaseSeed
			if base == 0 {
				base = 1
			}
			ctx := SpecContext{
				BaseSeed: base,
				Dir:      dir,
				Goldens:  func(string) *capture.Recording { return nil },
			}
			if _, err := CompileSpecs(ctx, suite.Scenarios); err != nil {
				t.Fatalf("spec does not compile: %v", err)
			}
		})
	}
	if found == 0 {
		t.Fatal("no committed spec files found")
	}
}
