package trojan

import (
	"encoding/json"
	"fmt"

	"offramps/internal/fpga"
	"offramps/internal/registry"
	"offramps/internal/sim"
)

// Factory builds a fresh trojan from serialized parameters. params is the
// spec file's raw JSON (nil or empty means "use the Table I defaults");
// seed feeds trojans that make random choices, so randomized trojans stay
// reproducible across campaign workers.
type Factory func(params json.RawMessage, seed uint64) (fpga.Trojan, error)

var table = registry.Table[Factory]{Kind: "trojan"}

// Register adds a named trojan factory to the registry. Scenario specs
// reference trojans by these names. Registering a nil factory, an empty
// name, or a duplicate name panics: the registry is assembled at init
// time and a collision is a programming error.
func Register(name string, f Factory) {
	if f == nil {
		panic("trojan: Register with nil factory")
	}
	table.Register(name, f)
}

// Build constructs a fresh trojan by registry name.
func Build(name string, params json.RawMessage, seed uint64) (fpga.Trojan, error) {
	f, err := table.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("trojan: %w", err)
	}
	t, err := f(params, seed)
	if err != nil {
		return nil, fmt.Errorf("trojan: building %q: %w", name, err)
	}
	if t == nil {
		return nil, fmt.Errorf("trojan: factory %q returned nil", name)
	}
	return t, nil
}

// Names lists the registered trojan names, sorted.
func Names() []string { return table.Names() }

// The nine Table I trojans register under their paper IDs with the exact
// Suite defaults, so a spec naming "T3" with no params reproduces the
// Table I run bit-for-bit. Params JSON overrides individual fields, e.g.
// {"name": "T2", "params": {"keepRatio": 0.75}}.
func init() {
	Register("T1", func(p json.RawMessage, seed uint64) (fpga.Trojan, error) {
		params := T1Params{Period: 10 * sim.Second, Steps: 40, Seed: seed}
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		return NewT1AxisShift(params), nil
	})
	Register("T2", func(p json.RawMessage, _ uint64) (fpga.Trojan, error) {
		params := T2Params{KeepRatio: 0.5}
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		return NewT2ExtrusionReduction(params), nil
	})
	Register("T3", func(p json.RawMessage, _ uint64) (fpga.Trojan, error) {
		params := T3Params{Mode: OverExtrude, EveryNYSteps: 12}
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		return NewT3RetractionTamper(params), nil
	})
	Register("T4", func(p json.RawMessage, seed uint64) (fpga.Trojan, error) {
		params := T4Params{LayerPeriodMin: 1, LayerPeriodMax: 3, Steps: 24, Seed: seed}
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		return NewT4ZWobble(params), nil
	})
	Register("T5", func(p json.RawMessage, _ uint64) (fpga.Trojan, error) {
		params := T5Params{TriggerLayer: 3, ExtraSteps: 240}
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		return NewT5ZShift(params), nil
	})
	Register("T6", func(p json.RawMessage, _ uint64) (fpga.Trojan, error) {
		params := T6Params{Delay: 30 * sim.Second, Bed: true, Hotend: true}
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		return NewT6HeaterDoS(params), nil
	})
	Register("T7", func(p json.RawMessage, _ uint64) (fpga.Trojan, error) {
		params := T7Params{Delay: 30 * sim.Second}
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		return NewT7ThermalRunaway(params), nil
	})
	Register("T8", func(p json.RawMessage, _ uint64) (fpga.Trojan, error) {
		params := T8Params{Delay: 5 * sim.Second, OnTime: 2 * sim.Second, OffTime: 8 * sim.Second}
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		return NewT8StepperDoS(params), nil
	})
	Register("T9", func(p json.RawMessage, _ uint64) (fpga.Trojan, error) {
		params := T9Params{Delay: 5 * sim.Second, ForceOff: true}
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		return NewT9FanTamper(params), nil
	})
}
