package trojan

import (
	"encoding/json"
	"reflect"
	"testing"

	"offramps/internal/sim"
)

func TestRegistryCoversSuite(t *testing.T) {
	if got := Names(); !reflect.DeepEqual(got, SuiteIDs) {
		t.Errorf("registered trojans = %v, want %v", got, SuiteIDs)
	}
	suite := Suite(7)
	for i, id := range SuiteIDs {
		if suite[i].ID() != id {
			t.Errorf("Suite[%d].ID = %s, want %s", i, suite[i].ID(), id)
		}
	}
}

func TestBuildDefaultsMatchSuite(t *testing.T) {
	// A registry build with nil params must equal the Suite member
	// field-for-field (same seed included).
	suite := Suite(42)
	for i, id := range SuiteIDs {
		built, err := Build(id, nil, 42)
		if err != nil {
			t.Fatalf("Build(%s): %v", id, err)
		}
		if !reflect.DeepEqual(built, suite[i]) {
			t.Errorf("Build(%s, nil, 42) != Suite(42)[%d]:\n  %#v\nvs\n  %#v", id, i, built, suite[i])
		}
	}
}

func TestBuildAppliesParamOverrides(t *testing.T) {
	raw := json.RawMessage(`{"keepRatio": 0.75}`)
	tr, err := Build("T2", raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, ok := tr.(*T2ExtrusionReduction)
	if !ok {
		t.Fatalf("T2 build returned %T", tr)
	}
	if t2.p.KeepRatio != 0.75 {
		t.Errorf("KeepRatio = %v, want 0.75", t2.p.KeepRatio)
	}

	// Durations parse from Go duration strings via sim.Time.
	tr, err = Build("T1", json.RawMessage(`{"period": "2s", "steps": 8}`), 1)
	if err != nil {
		t.Fatal(err)
	}
	t1 := tr.(*T1AxisShift)
	if t1.p.Period != 2*sim.Second || t1.p.Steps != 8 {
		t.Errorf("T1 params = %+v", t1.p)
	}
	// Seed defaults to the build seed when not overridden.
	if t1.p.Seed != 1 {
		t.Errorf("T1 seed = %d, want 1", t1.p.Seed)
	}
}

func TestBuildRejectsUnknowns(t *testing.T) {
	if _, err := Build("T99", nil, 1); err == nil {
		t.Error("unknown trojan name accepted")
	}
	if _, err := Build("T2", json.RawMessage(`{"kepRatio": 0.75}`), 1); err == nil {
		t.Error("unknown param field accepted")
	}
	if _, err := Build("T2", json.RawMessage(`{"keepRatio": 7}`), 1); err != nil {
		// Params validate at Arm time, not Build time.
		t.Errorf("out-of-range param rejected at build: %v", err)
	}
}
