package trojan

import (
	"fmt"

	"offramps/internal/fpga"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// ---------------------------------------------------------------------------
// T1 — arbitrary X/Y shift ("Loose Belt")

// T1Params configures the T1 axis-shift trojan.
type T1Params struct {
	Period sim.Time // interval between injections (paper: every ten seconds)
	Steps  int      // extra steps injected per event
	Seed   uint64   // axis selection randomness
}

// T1AxisShift implements Table I T1: "Randomly changes steps from X or Y
// axis during print" by injecting stepper pulses between the original
// control pulses, causing longer travel motions without extra print time.
type T1AxisShift struct {
	p   T1Params
	rng *sim.Rand

	genX, genY *fpga.PulseGenerator
	stop       func()
}

// NewT1AxisShift builds the trojan.
func NewT1AxisShift(p T1Params) *T1AxisShift {
	return &T1AxisShift{p: p, rng: sim.NewRand(p.Seed)}
}

// ID implements fpga.Trojan.
func (t *T1AxisShift) ID() string { return "T1" }

// Description implements fpga.Trojan.
func (t *T1AxisShift) Description() string {
	return fmt.Sprintf("randomly shifts X or Y by %d steps every %v (loose belt)", t.p.Steps, t.p.Period)
}

// Kind implements Info.
func (t *T1AxisShift) Kind() Kind { return PartModification }

// Scenario implements Info.
func (t *T1AxisShift) Scenario() string { return "Loose Belt" }

// Arm implements fpga.Trojan: after homing, every Period, burst extra
// pulses on a randomly chosen axis.
func (t *T1AxisShift) Arm(b *fpga.Board) error {
	if t.p.Period <= 0 || t.p.Steps <= 0 {
		return fmt.Errorf("trojan T1: Period and Steps must be positive")
	}
	var err error
	t.genX, err = fpga.NewPulseGenerator(b.Path(signal.PinXStep), injectionFrequency, injectionPulseWidth)
	if err != nil {
		return err
	}
	t.genY, err = fpga.NewPulseGenerator(b.Path(signal.PinYStep), injectionFrequency, injectionPulseWidth)
	if err != nil {
		return err
	}
	b.OnHomed(func(sim.Time) {
		t.stop = b.Engine().Ticker(t.p.Period, func(sim.Time) {
			gen := t.genX
			if t.rng.Bool(0.5) {
				gen = t.genY
			}
			// Skip a beat if the previous burst is still draining.
			_ = gen.Burst(t.p.Steps, nil)
		})
	})
	return nil
}

// ---------------------------------------------------------------------------
// T2 — constant over/under extrusion ("Incorrect Slicing")

// T2Params configures the T2 extrusion-reduction trojan.
type T2Params struct {
	// KeepRatio is the fraction of forward extruder steps allowed
	// through. 0.5 reproduces the paper's "masking half of extruder
	// stepper motor pulses... reducing the flow and amount of material
	// extruded by 50%. This implements reduction Trojans from Flaw3D."
	KeepRatio float64
}

// T2ExtrusionReduction implements Table I T2.
type T2ExtrusionReduction struct {
	p   T2Params
	acc float64
	// debt counts retraction steps not yet recovered. Recovery pulses
	// pass 1:1 — masking them would accumulate unbounded retraction and
	// starve the nozzle entirely instead of halving the flow.
	debt    int64
	dropped uint64
}

// NewT2ExtrusionReduction builds the trojan.
func NewT2ExtrusionReduction(p T2Params) *T2ExtrusionReduction {
	return &T2ExtrusionReduction{p: p}
}

// ID implements fpga.Trojan.
func (t *T2ExtrusionReduction) ID() string { return "T2" }

// Description implements fpga.Trojan.
func (t *T2ExtrusionReduction) Description() string {
	return fmt.Sprintf("masks extruder steps to %.0f%% flow (Flaw3D-style reduction)", t.p.KeepRatio*100)
}

// Kind implements Info.
func (t *T2ExtrusionReduction) Kind() Kind { return PartModification }

// Scenario implements Info.
func (t *T2ExtrusionReduction) Scenario() string { return "Incorrect Slicing" }

// Dropped reports how many extruder pulses were masked.
func (t *T2ExtrusionReduction) Dropped() uint64 { return t.dropped }

// Arm implements fpga.Trojan: an edge filter on E_STEP that passes
// KeepRatio of forward pulses. Retraction pulses (DIR negative) pass
// untouched so travel behaviour stays plausible.
func (t *T2ExtrusionReduction) Arm(b *fpga.Board) error {
	if t.p.KeepRatio <= 0 || t.p.KeepRatio > 1 {
		return fmt.Errorf("trojan T2: KeepRatio must be in (0,1], got %v", t.p.KeepRatio)
	}
	dir := b.Path(signal.PinEDir).Source()
	b.Path(signal.PinEStep).AddFilter(func(_ sim.Time, level signal.Level) bool {
		if level != signal.High {
			return true // falling edges always pass (idempotent at dst)
		}
		if dir.Level() == signal.High {
			t.debt++
			return true // retraction untouched
		}
		if t.debt > 0 {
			t.debt--
			return true // recovery untouched
		}
		t.acc += t.p.KeepRatio
		if t.acc >= 1 {
			t.acc--
			return true
		}
		t.dropped++
		return false
	})
	return nil
}

// ---------------------------------------------------------------------------
// T3 — retraction tamper during Y motion ("Incorrect Slicing")

// T3Mode selects over- or under-extrusion behaviour.
type T3Mode int

// T3 modes: inject extra extruder pulses (over) or mask real ones (under).
const (
	OverExtrude T3Mode = iota + 1
	UnderExtrude
)

// T3Params configures the T3 retraction-tamper trojan.
type T3Params struct {
	Mode T3Mode
	// EveryNYSteps fires one E-step modification per N Y-axis steps.
	EveryNYSteps int
}

// T3RetractionTamper implements Table I T3: "Increases or decreases
// filament retraction during Y steps", mimicking improper slicer
// retraction settings.
type T3RetractionTamper struct {
	p        T3Params
	yCount   int
	pending  int // under-extrude: E pulses still to mask
	gen      *fpga.PulseGenerator
	injected uint64
	masked   uint64
}

// NewT3RetractionTamper builds the trojan.
func NewT3RetractionTamper(p T3Params) *T3RetractionTamper {
	return &T3RetractionTamper{p: p}
}

// ID implements fpga.Trojan.
func (t *T3RetractionTamper) ID() string { return "T3" }

// Description implements fpga.Trojan.
func (t *T3RetractionTamper) Description() string {
	mode := "over"
	if t.p.Mode == UnderExtrude {
		mode = "under"
	}
	return fmt.Sprintf("%s-extrudes during Y motion (1 E-step per %d Y-steps)", mode, t.p.EveryNYSteps)
}

// Kind implements Info.
func (t *T3RetractionTamper) Kind() Kind { return PartModification }

// Scenario implements Info.
func (t *T3RetractionTamper) Scenario() string { return "Incorrect Slicing" }

// Injected reports extra E pulses injected (over mode).
func (t *T3RetractionTamper) Injected() uint64 { return t.injected }

// Masked reports E pulses masked (under mode).
func (t *T3RetractionTamper) Masked() uint64 { return t.masked }

// Arm implements fpga.Trojan.
func (t *T3RetractionTamper) Arm(b *fpga.Board) error {
	if t.p.EveryNYSteps <= 0 {
		return fmt.Errorf("trojan T3: EveryNYSteps must be positive")
	}
	if t.p.Mode != OverExtrude && t.p.Mode != UnderExtrude {
		return fmt.Errorf("trojan T3: invalid mode %d", t.p.Mode)
	}
	var err error
	t.gen, err = fpga.NewPulseGenerator(b.Path(signal.PinEStep), injectionFrequency, injectionPulseWidth)
	if err != nil {
		return err
	}
	yDet := fpga.NewEdgeDetector(b.Path(signal.PinYStep).Source())
	yDet.OnRising(func(at sim.Time) {
		t.yCount++
		if t.yCount < t.p.EveryNYSteps {
			return
		}
		t.yCount = 0
		switch t.p.Mode {
		case OverExtrude:
			if !t.gen.Running() {
				t.injected++
				_ = t.gen.Burst(1, nil)
			}
		case UnderExtrude:
			t.pending++
		}
	})
	if t.p.Mode == UnderExtrude {
		eDir := b.Path(signal.PinEDir).Source()
		b.Path(signal.PinEStep).AddFilter(func(_ sim.Time, level signal.Level) bool {
			if level != signal.High || t.pending == 0 || eDir.Level() == signal.High {
				return true
			}
			t.pending--
			t.masked++
			return false
		})
	}
	return nil
}

// ---------------------------------------------------------------------------
// T4 — Z-wobble ("Z-Wobble")

// T4Params configures the T4 Z-wobble trojan.
type T4Params struct {
	// A shift fires after a random number of layers uniform in
	// [LayerPeriodMin, LayerPeriodMax].
	LayerPeriodMin, LayerPeriodMax int
	Steps                          int // X/Y steps injected per event
	Seed                           uint64
}

// T4ZWobble implements Table I T4: "Small shift along X and Y axis on
// random Z layer increments", emulating a non-rigid Z frame.
type T4ZWobble struct {
	p   T4Params
	rng *sim.Rand

	zSteps         int
	zStepsPerLayer int
	layersSeen     int
	nextTrigger    int
	genX, genY     *fpga.PulseGenerator
	events         uint64
}

// NewT4ZWobble builds the trojan.
func NewT4ZWobble(p T4Params) *T4ZWobble {
	return &T4ZWobble{p: p, rng: sim.NewRand(p.Seed)}
}

// ID implements fpga.Trojan.
func (t *T4ZWobble) ID() string { return "T4" }

// Description implements fpga.Trojan.
func (t *T4ZWobble) Description() string {
	return fmt.Sprintf("injects %d-step X/Y wobble on random layer increments", t.p.Steps)
}

// Kind implements Info.
func (t *T4ZWobble) Kind() Kind { return PartModification }

// Scenario implements Info.
func (t *T4ZWobble) Scenario() string { return "Z-Wobble" }

// Events reports how many wobble bursts fired.
func (t *T4ZWobble) Events() uint64 { return t.events }

// Arm implements fpga.Trojan. Layer boundaries are inferred from Z_STEP
// activity: a standard 0.2 mm layer at 400 steps/mm is 80 Z steps.
func (t *T4ZWobble) Arm(b *fpga.Board) error {
	if t.p.Steps <= 0 || t.p.LayerPeriodMin <= 0 || t.p.LayerPeriodMax < t.p.LayerPeriodMin {
		return fmt.Errorf("trojan T4: invalid params %+v", t.p)
	}
	t.zStepsPerLayer = 80
	t.nextTrigger = t.drawPeriod()
	var err error
	t.genX, err = fpga.NewPulseGenerator(b.Path(signal.PinXStep), injectionFrequency, injectionPulseWidth)
	if err != nil {
		return err
	}
	t.genY, err = fpga.NewPulseGenerator(b.Path(signal.PinYStep), injectionFrequency, injectionPulseWidth)
	if err != nil {
		return err
	}
	zDir := b.Path(signal.PinZDir).Source()
	zDet := fpga.NewEdgeDetector(b.Path(signal.PinZStep).Source())
	zDet.OnRising(func(sim.Time) {
		if !b.Homing().Homed() || zDir.Level() == signal.High {
			return // ignore pre-homing and downward motion
		}
		t.zSteps++
		if t.zSteps < t.zStepsPerLayer {
			return
		}
		t.zSteps = 0
		t.layersSeen++
		if t.layersSeen < t.nextTrigger {
			return
		}
		t.layersSeen = 0
		t.nextTrigger = t.drawPeriod()
		t.events++
		_ = t.genX.Burst(t.p.Steps, nil)
		_ = t.genY.Burst(t.p.Steps, nil)
	})
	return nil
}

func (t *T4ZWobble) drawPeriod() int {
	span := t.p.LayerPeriodMax - t.p.LayerPeriodMin + 1
	return t.p.LayerPeriodMin + t.rng.Intn(span)
}

// ---------------------------------------------------------------------------
// T5 — Z-shift / layer delamination ("Incorrect Slicing")

// T5Params configures the T5 Z-shift trojan.
type T5Params struct {
	TriggerLayer int // fire after this many layer boundaries (0 = at homing)
	ExtraSteps   int // Z steps injected (positive = lift = weak adhesion)
}

// T5ZShift implements Table I T5: "Layer delamination via Z-layer shift" —
// an arbitrarily-sized Z shift causing poor layer adhesion, or build-plate
// adhesion failure when fired at the start of the print.
type T5ZShift struct {
	p      T5Params
	zSteps int
	layers int
	fired  bool
	gen    *fpga.PulseGenerator
}

// NewT5ZShift builds the trojan.
func NewT5ZShift(p T5Params) *T5ZShift {
	return &T5ZShift{p: p}
}

// ID implements fpga.Trojan.
func (t *T5ZShift) ID() string { return "T5" }

// Description implements fpga.Trojan.
func (t *T5ZShift) Description() string {
	return fmt.Sprintf("injects %d Z steps at layer %d (delamination)", t.p.ExtraSteps, t.p.TriggerLayer)
}

// Kind implements Info.
func (t *T5ZShift) Kind() Kind { return PartModification }

// Scenario implements Info.
func (t *T5ZShift) Scenario() string { return "Incorrect Slicing" }

// Fired reports whether the shift has been injected.
func (t *T5ZShift) Fired() bool { return t.fired }

// Arm implements fpga.Trojan.
func (t *T5ZShift) Arm(b *fpga.Board) error {
	if t.p.ExtraSteps <= 0 {
		return fmt.Errorf("trojan T5: ExtraSteps must be positive")
	}
	var err error
	t.gen, err = fpga.NewPulseGenerator(b.Path(signal.PinZStep), injectionFrequency, injectionPulseWidth)
	if err != nil {
		return err
	}
	fire := func() {
		if t.fired {
			return
		}
		t.fired = true
		_ = t.gen.Burst(t.p.ExtraSteps, nil)
	}
	if t.p.TriggerLayer <= 0 {
		b.OnHomed(func(sim.Time) { fire() })
		return nil
	}
	zDir := b.Path(signal.PinZDir).Source()
	zDet := fpga.NewEdgeDetector(b.Path(signal.PinZStep).Source())
	const zStepsPerLayer = 80
	zDet.OnRising(func(sim.Time) {
		if t.fired || !b.Homing().Homed() || zDir.Level() == signal.High {
			return
		}
		t.zSteps++
		if t.zSteps < zStepsPerLayer {
			return
		}
		t.zSteps = 0
		t.layers++
		if t.layers >= t.p.TriggerLayer {
			fire()
		}
	})
	return nil
}
