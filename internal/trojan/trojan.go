// Package trojan implements the nine-attack suite of the paper's Table I
// as pluggable payloads for the OFFRAMPS FPGA. Each trojan composes the
// board's datapath primitives (filter, force, inject) exactly as the
// paper's VHDL Trojan Control Module multiplexes modified signals over
// the originals (§IV-B).
//
// Classification follows Table I: PM (part modification), DoS (denial of
// service), D (destructive).
package trojan

import (
	"fmt"

	"offramps/internal/fpga"
	"offramps/internal/sim"
)

// Kind classifies a trojan per Table I.
type Kind int

// Table I trojan classes.
const (
	PartModification Kind = iota + 1
	DenialOfService
	Destructive
)

// String returns the Table I abbreviation.
func (k Kind) String() string {
	switch k {
	case PartModification:
		return "PM"
	case DenialOfService:
		return "DoS"
	case Destructive:
		return "D"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Info extends the fpga.Trojan interface with Table I metadata.
type Info interface {
	fpga.Trojan
	Kind() Kind
	Scenario() string // the benign failure the trojan impersonates
}

// SuiteIDs lists the Table I trojan registry names in paper order.
var SuiteIDs = []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"}

// Suite returns all nine trojans with the parameters used for the Table I
// experiment, in order T1..T9. seed feeds the trojans that make random
// choices (T1's axis selection, T4's layer selection). The trojans come
// from the registry with default params, so Suite and a spec file naming
// "T1".."T9" can never drift apart.
func Suite(seed uint64) []Info {
	out := make([]Info, 0, len(SuiteIDs))
	for _, id := range SuiteIDs {
		t, err := Build(id, nil, seed)
		if err != nil {
			// The registry entries are static and their default params are
			// compile-time constants; a failure here is a programming bug.
			panic("trojan: Suite: " + err.Error())
		}
		out = append(out, t.(Info))
	}
	return out
}

// injectionPulseWidth matches the firmware's own step pulse width so the
// A4988 model registers injected pulses identically to real ones.
const injectionPulseWidth = 2 * sim.Microsecond

// injectionFrequency is the rate at which trojan bursts inject extra step
// pulses. 4 kHz sits inside the envelope of real step traffic, "in
// between the original control pulses" (§IV-C T1).
const injectionFrequency = 4000.0
