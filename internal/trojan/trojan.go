// Package trojan implements the nine-attack suite of the paper's Table I
// as pluggable payloads for the OFFRAMPS FPGA. Each trojan composes the
// board's datapath primitives (filter, force, inject) exactly as the
// paper's VHDL Trojan Control Module multiplexes modified signals over
// the originals (§IV-B).
//
// Classification follows Table I: PM (part modification), DoS (denial of
// service), D (destructive).
package trojan

import (
	"fmt"

	"offramps/internal/fpga"
	"offramps/internal/sim"
)

// Kind classifies a trojan per Table I.
type Kind int

// Table I trojan classes.
const (
	PartModification Kind = iota + 1
	DenialOfService
	Destructive
)

// String returns the Table I abbreviation.
func (k Kind) String() string {
	switch k {
	case PartModification:
		return "PM"
	case DenialOfService:
		return "DoS"
	case Destructive:
		return "D"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Info extends the fpga.Trojan interface with Table I metadata.
type Info interface {
	fpga.Trojan
	Kind() Kind
	Scenario() string // the benign failure the trojan impersonates
}

// Suite returns all nine trojans with the parameters used for the Table I
// experiment, in order T1..T9. seed feeds the trojans that make random
// choices (T1's axis selection, T4's layer selection).
func Suite(seed uint64) []Info {
	return []Info{
		NewT1AxisShift(T1Params{Period: 10 * sim.Second, Steps: 40, Seed: seed}),
		NewT2ExtrusionReduction(T2Params{KeepRatio: 0.5}),
		NewT3RetractionTamper(T3Params{Mode: OverExtrude, EveryNYSteps: 12}),
		NewT4ZWobble(T4Params{LayerPeriodMin: 1, LayerPeriodMax: 3, Steps: 24, Seed: seed}),
		NewT5ZShift(T5Params{TriggerLayer: 3, ExtraSteps: 240}),
		NewT6HeaterDoS(T6Params{Delay: 30 * sim.Second, Bed: true, Hotend: true}),
		NewT7ThermalRunaway(T7Params{Delay: 30 * sim.Second}),
		NewT8StepperDoS(T8Params{Delay: 5 * sim.Second, OnTime: 2 * sim.Second, OffTime: 8 * sim.Second}),
		NewT9FanTamper(T9Params{Delay: 5 * sim.Second, ForceOff: true}),
	}
}

// injectionPulseWidth matches the firmware's own step pulse width so the
// A4988 model registers injected pulses identically to real ones.
const injectionPulseWidth = 2 * sim.Microsecond

// injectionFrequency is the rate at which trojan bursts inject extra step
// pulses. 4 kHz sits inside the envelope of real step traffic, "in
// between the original control pulses" (§IV-C T1).
const injectionFrequency = 4000.0
