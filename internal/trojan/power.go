package trojan

import (
	"fmt"

	"offramps/internal/fpga"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// ---------------------------------------------------------------------------
// T6 — heater denial of service ("Hardware Failure")

// T6Params configures the T6 heater-DoS trojan.
type T6Params struct {
	Delay  sim.Time // time after arming before the heaters are cut
	Hotend bool     // cut D10
	Bed    bool     // cut D8
}

// T6HeaterDoS implements Table I T6: "Denial of service via disabling
// D8/D10 heating element power". With the MOSFET gates clamped low the
// elements can never reach temperature; Marlin's thermal watch trips and
// the firmware "enters an error state and ends the print prematurely".
type T6HeaterDoS struct {
	p     T6Params
	fired bool
}

// NewT6HeaterDoS builds the trojan.
func NewT6HeaterDoS(p T6Params) *T6HeaterDoS {
	return &T6HeaterDoS{p: p}
}

// ID implements fpga.Trojan.
func (t *T6HeaterDoS) ID() string { return "T6" }

// Description implements fpga.Trojan.
func (t *T6HeaterDoS) Description() string {
	return fmt.Sprintf("cuts heater power (hotend=%v bed=%v) after %v", t.p.Hotend, t.p.Bed, t.p.Delay)
}

// Kind implements Info.
func (t *T6HeaterDoS) Kind() Kind { return DenialOfService }

// Scenario implements Info.
func (t *T6HeaterDoS) Scenario() string { return "Hardware Failure" }

// Fired reports whether the cut has engaged.
func (t *T6HeaterDoS) Fired() bool { return t.fired }

// Arm implements fpga.Trojan.
func (t *T6HeaterDoS) Arm(b *fpga.Board) error {
	if !t.p.Hotend && !t.p.Bed {
		return fmt.Errorf("trojan T6: at least one heater must be targeted")
	}
	if t.p.Delay < 0 {
		return fmt.Errorf("trojan T6: Delay must be non-negative")
	}
	b.Engine().After(t.p.Delay, func() {
		t.fired = true
		if t.p.Hotend {
			b.Path(signal.PinHotend).Force(signal.Low)
		}
		if t.p.Bed {
			b.Path(signal.PinBed).Force(signal.Low)
		}
	})
	return nil
}

// ---------------------------------------------------------------------------
// T7 — forced thermal runaway ("Hardware Failure", destructive)

// T7Params configures the T7 thermal-runaway trojan.
type T7Params struct {
	Delay sim.Time // time after arming before the gate is clamped high
}

// T7ThermalRunaway implements Table I T7: the inverse of T6 — the hotend
// MOSFET gate is clamped high at 100 % duty, "bypassing all thermal
// control and fail-safes from the firmware, heating the element past the
// working specification". The firmware's MAXTEMP panic fires but its kill
// only drops the Arduino-side pin; the clamp on the RAMPS side keeps
// conducting — the paper's purely destructive attack.
type T7ThermalRunaway struct {
	p     T7Params
	fired bool
}

// NewT7ThermalRunaway builds the trojan.
func NewT7ThermalRunaway(p T7Params) *T7ThermalRunaway {
	return &T7ThermalRunaway{p: p}
}

// ID implements fpga.Trojan.
func (t *T7ThermalRunaway) ID() string { return "T7" }

// Description implements fpga.Trojan.
func (t *T7ThermalRunaway) Description() string {
	return fmt.Sprintf("clamps hotend MOSFET at 100%% duty after %v, ignoring firmware failsafes", t.p.Delay)
}

// Kind implements Info.
func (t *T7ThermalRunaway) Kind() Kind { return Destructive }

// Scenario implements Info.
func (t *T7ThermalRunaway) Scenario() string { return "Hardware Failure" }

// Fired reports whether the clamp has engaged.
func (t *T7ThermalRunaway) Fired() bool { return t.fired }

// Arm implements fpga.Trojan.
func (t *T7ThermalRunaway) Arm(b *fpga.Board) error {
	if t.p.Delay < 0 {
		return fmt.Errorf("trojan T7: Delay must be non-negative")
	}
	b.Engine().After(t.p.Delay, func() {
		t.fired = true
		b.Path(signal.PinHotend).Force(signal.High)
	})
	return nil
}

// ---------------------------------------------------------------------------
// T8 — stepper driver dropout ("Hardware Failure")

// T8Params configures the T8 stepper-DoS trojan.
type T8Params struct {
	Delay   sim.Time      // first dropout after arming
	OnTime  sim.Time      // how long the drivers stay disabled
	OffTime sim.Time      // gap between dropouts
	Axes    []signal.Axis // targets; nil = all motion axes + extruder
}

// T8StepperDoS implements Table I T8: "Arbitrarily deactivating stepper
// motors via EN signals". While EN is forced high the A4988 freewheels;
// commanded steps are silently lost and the print fails.
type T8StepperDoS struct {
	p        T8Params
	dropouts uint64
}

// NewT8StepperDoS builds the trojan.
func NewT8StepperDoS(p T8Params) *T8StepperDoS {
	return &T8StepperDoS{p: p}
}

// ID implements fpga.Trojan.
func (t *T8StepperDoS) ID() string { return "T8" }

// Description implements fpga.Trojan.
func (t *T8StepperDoS) Description() string {
	return fmt.Sprintf("disables stepper EN for %v every %v", t.p.OnTime, t.p.OnTime+t.p.OffTime)
}

// Kind implements Info.
func (t *T8StepperDoS) Kind() Kind { return DenialOfService }

// Scenario implements Info.
func (t *T8StepperDoS) Scenario() string { return "Hardware Failure" }

// Dropouts reports how many disable windows have fired.
func (t *T8StepperDoS) Dropouts() uint64 { return t.dropouts }

// Arm implements fpga.Trojan.
func (t *T8StepperDoS) Arm(b *fpga.Board) error {
	if t.p.OnTime <= 0 || t.p.OffTime <= 0 || t.p.Delay < 0 {
		return fmt.Errorf("trojan T8: Delay/OnTime/OffTime must be positive")
	}
	axes := t.p.Axes
	if len(axes) == 0 {
		axes = signal.Axes
	}
	var cycle func()
	cycle = func() {
		t.dropouts++
		for _, a := range axes {
			b.Path(a.EnablePin()).Force(signal.High) // A4988: high = disabled
		}
		b.Engine().After(t.p.OnTime, func() {
			for _, a := range axes {
				b.Path(a.EnablePin()).Release()
			}
			b.Engine().After(t.p.OffTime, cycle)
		})
	}
	b.OnHomed(func(sim.Time) {
		b.Engine().After(t.p.Delay, cycle)
	})
	return nil
}

// ---------------------------------------------------------------------------
// T9 — part-fan tamper ("Hardware Failure")

// T9Params configures the T9 fan trojan.
type T9Params struct {
	Delay sim.Time // engage after this much time past homing
	// ForceOff clamps the fan off entirely; otherwise every other PWM
	// on-window is masked, roughly halving the delivered duty.
	ForceOff bool
}

// T9FanTamper implements Table I T9: "Arbitrarily reducing part fan speed
// mid-print", causing under-cooling and degraded part quality.
type T9FanTamper struct {
	p         T9Params
	fired     bool
	dropPhase bool
	masked    uint64
}

// NewT9FanTamper builds the trojan.
func NewT9FanTamper(p T9Params) *T9FanTamper {
	return &T9FanTamper{p: p}
}

// ID implements fpga.Trojan.
func (t *T9FanTamper) ID() string { return "T9" }

// Description implements fpga.Trojan.
func (t *T9FanTamper) Description() string {
	if t.p.ForceOff {
		return fmt.Sprintf("forces part fan off %v after homing", t.p.Delay)
	}
	return fmt.Sprintf("halves part fan duty %v after homing", t.p.Delay)
}

// Kind implements Info.
func (t *T9FanTamper) Kind() Kind { return PartModification }

// Scenario implements Info.
func (t *T9FanTamper) Scenario() string { return "Hardware Failure" }

// Fired reports whether the tamper engaged.
func (t *T9FanTamper) Fired() bool { return t.fired }

// Arm implements fpga.Trojan.
func (t *T9FanTamper) Arm(b *fpga.Board) error {
	if t.p.Delay < 0 {
		return fmt.Errorf("trojan T9: Delay must be non-negative")
	}
	path := b.Path(signal.PinFan)
	if !t.p.ForceOff {
		// Masking filter, inert until fired: drops alternate on-windows.
		path.AddFilter(func(_ sim.Time, level signal.Level) bool {
			if !t.fired || level != signal.High {
				return true
			}
			t.dropPhase = !t.dropPhase
			if t.dropPhase {
				t.masked++
				return false
			}
			return true
		})
	}
	b.OnHomed(func(sim.Time) {
		b.Engine().After(t.p.Delay, func() {
			t.fired = true
			if t.p.ForceOff {
				path.Force(signal.Low)
			}
		})
	})
	return nil
}
