package trojan

import (
	"testing"

	"offramps/internal/fpga"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// rig builds two buses joined by an OFFRAMPS board.
func rig(t *testing.T) (*sim.Engine, *signal.Bus, *signal.Bus, *fpga.Board) {
	t.Helper()
	e := sim.NewEngine()
	arduino := signal.NewBus(e)
	ramps := signal.NewBus(e)
	b, err := fpga.NewBoard(e, arduino, ramps, fpga.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, arduino, ramps, b
}

// fakeHoming drives a full double-tap homing pattern so trojans gated on
// homing detection arm themselves.
func fakeHoming(e *sim.Engine, ramps *signal.Bus) {
	at := 10 * sim.Millisecond
	for _, a := range []signal.Axis{signal.AxisX, signal.AxisY, signal.AxisZ} {
		line := ramps.MinEndstop(a)
		for i := 0; i < 2; i++ {
			func(at sim.Time) {
				e.Schedule(at, func() { line.Set(signal.High) })
				e.Schedule(at+5*sim.Millisecond, func() { line.Set(signal.Low) })
			}(at)
			at += 20 * sim.Millisecond
		}
	}
}

// pulseSource drives n pulses on an Arduino-side line.
func pulseSource(e *sim.Engine, line *signal.Line, start, period sim.Time, n int) {
	for i := 0; i < n; i++ {
		at := start + sim.Time(i)*period
		e.Schedule(at, func() { line.Set(signal.High) })
		e.Schedule(at+2*sim.Microsecond, func() { line.Set(signal.Low) })
	}
}

func TestT1InjectsShiftsAfterHoming(t *testing.T) {
	e, _, ramps, b := rig(t)
	tr := NewT1AxisShift(T1Params{Period: 10 * sim.Second, Steps: 40, Seed: 3})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	xTrace := signal.NewTrace(ramps.Step(signal.AxisX))
	yTrace := signal.NewTrace(ramps.Step(signal.AxisY))
	fakeHoming(e, ramps)
	if err := e.Run(25 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Two periods elapsed → two bursts of 40 steps, each on X or Y.
	total := xTrace.RisingEdges() + yTrace.RisingEdges()
	if total != 80 {
		t.Errorf("injected %d steps, want 80", total)
	}
}

func TestT1IdleBeforeHoming(t *testing.T) {
	e, _, ramps, b := rig(t)
	if err := b.InstallTrojan(NewT1AxisShift(T1Params{Period: sim.Second, Steps: 10, Seed: 1})); err != nil {
		t.Fatal(err)
	}
	xTrace := signal.NewTrace(ramps.Step(signal.AxisX))
	yTrace := signal.NewTrace(ramps.Step(signal.AxisY))
	if err := e.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if xTrace.Len()+yTrace.Len() != 0 {
		t.Error("T1 injected before homing")
	}
}

func TestT1Validation(t *testing.T) {
	_, _, _, b := rig(t)
	if err := b.InstallTrojan(NewT1AxisShift(T1Params{Period: 0, Steps: 10})); err == nil {
		t.Error("zero period accepted")
	}
}

func TestT2MasksHalfOfForwardSteps(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT2ExtrusionReduction(T2Params{KeepRatio: 0.5})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	out := signal.NewTrace(ramps.Step(signal.AxisE))
	arduino.Dir(signal.AxisE).Set(signal.Low) // forward
	pulseSource(e, arduino.Step(signal.AxisE), sim.Millisecond, 100*sim.Microsecond, 100)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := out.RisingEdges(); got != 50 {
		t.Errorf("passed %d of 100 steps, want 50", got)
	}
	if tr.Dropped() != 50 {
		t.Errorf("Dropped() = %d", tr.Dropped())
	}
}

func TestT2PassesRetractionAndRecovery(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	if err := b.InstallTrojan(NewT2ExtrusionReduction(T2Params{KeepRatio: 0.5})); err != nil {
		t.Fatal(err)
	}
	out := signal.NewTrace(ramps.Step(signal.AxisE))
	// Retract 20 steps.
	arduino.Dir(signal.AxisE).Set(signal.High)
	pulseSource(e, arduino.Step(signal.AxisE), sim.Millisecond, 100*sim.Microsecond, 20)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Recover 20 steps forward: all must pass (debt).
	arduino.Dir(signal.AxisE).Set(signal.Low)
	pulseSource(e, arduino.Step(signal.AxisE), e.Now()+sim.Millisecond, 100*sim.Microsecond, 20)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := out.RisingEdges(); got != 40 {
		t.Errorf("retract+recover passed %d steps, want all 40", got)
	}
}

func TestT2Validation(t *testing.T) {
	_, _, _, b := rig(t)
	if err := b.InstallTrojan(NewT2ExtrusionReduction(T2Params{KeepRatio: 0})); err == nil {
		t.Error("KeepRatio 0 accepted")
	}
	_, _, _, b2 := rig(t)
	if err := b2.InstallTrojan(NewT2ExtrusionReduction(T2Params{KeepRatio: 1.5})); err == nil {
		t.Error("KeepRatio 1.5 accepted")
	}
}

func TestT3OverExtrudeInjectsDuringYMotion(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT3RetractionTamper(T3Params{Mode: OverExtrude, EveryNYSteps: 10})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	eTrace := signal.NewTrace(ramps.Step(signal.AxisE))
	pulseSource(e, arduino.Step(signal.AxisY), sim.Millisecond, 200*sim.Microsecond, 100)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := eTrace.RisingEdges(); got != 10 {
		t.Errorf("injected %d E pulses for 100 Y steps, want 10", got)
	}
	if tr.Injected() != 10 {
		t.Errorf("Injected() = %d", tr.Injected())
	}
}

func TestT3UnderExtrudeMasksAfterYSteps(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT3RetractionTamper(T3Params{Mode: UnderExtrude, EveryNYSteps: 5})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	eTrace := signal.NewTrace(ramps.Step(signal.AxisE))
	arduino.Dir(signal.AxisE).Set(signal.Low)
	// Interleave: 25 Y steps (5 mask credits), then 20 E steps.
	pulseSource(e, arduino.Step(signal.AxisY), sim.Millisecond, 100*sim.Microsecond, 25)
	pulseSource(e, arduino.Step(signal.AxisE), 10*sim.Millisecond, 100*sim.Microsecond, 20)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := eTrace.RisingEdges(); got != 15 {
		t.Errorf("passed %d of 20 E steps, want 15 (5 masked)", got)
	}
	if tr.Masked() != 5 {
		t.Errorf("Masked() = %d", tr.Masked())
	}
}

func TestT3Validation(t *testing.T) {
	_, _, _, b := rig(t)
	if err := b.InstallTrojan(NewT3RetractionTamper(T3Params{Mode: OverExtrude, EveryNYSteps: 0})); err == nil {
		t.Error("zero interval accepted")
	}
	_, _, _, b2 := rig(t)
	if err := b2.InstallTrojan(NewT3RetractionTamper(T3Params{Mode: 0, EveryNYSteps: 5})); err == nil {
		t.Error("invalid mode accepted")
	}
}

// driveZLayers emits layers×80 upward Z steps after homing.
func driveZLayers(e *sim.Engine, arduino *signal.Bus, start sim.Time, layers int) {
	arduino.Dir(signal.AxisZ).Set(signal.Low)
	pulseSource(e, arduino.Step(signal.AxisZ), start, 500*sim.Microsecond, layers*80)
}

func TestT4FiresOnLayerBoundaries(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT4ZWobble(T4Params{LayerPeriodMin: 2, LayerPeriodMax: 2, Steps: 24, Seed: 5})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	xTrace := signal.NewTrace(ramps.Step(signal.AxisX))
	fakeHoming(e, ramps)
	driveZLayers(e, arduino, sim.Second, 6) // 6 layers, period 2 → 3 events
	// Bounded run: the board's capture exporter ticks forever once it has
	// seen homing plus a step edge, so RunUntilIdle would never return.
	if err := e.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 3 {
		t.Errorf("Events() = %d, want 3", tr.Events())
	}
	if got := xTrace.RisingEdges(); got != 3*24 {
		t.Errorf("X injections = %d, want 72", got)
	}
}

func TestT4IgnoresPreHomingZ(t *testing.T) {
	e, arduino, _, b := rig(t)
	tr := NewT4ZWobble(T4Params{LayerPeriodMin: 1, LayerPeriodMax: 1, Steps: 8, Seed: 5})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	driveZLayers(e, arduino, sim.Millisecond, 4)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 0 {
		t.Error("T4 fired before homing")
	}
}

func TestT4Validation(t *testing.T) {
	_, _, _, b := rig(t)
	if err := b.InstallTrojan(NewT4ZWobble(T4Params{LayerPeriodMin: 3, LayerPeriodMax: 1, Steps: 8})); err == nil {
		t.Error("inverted layer period accepted")
	}
}

func TestT5FiresAtTriggerLayer(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT5ZShift(T5Params{TriggerLayer: 2, ExtraSteps: 100})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	zOut := signal.NewTrace(ramps.Step(signal.AxisZ))
	fakeHoming(e, ramps)
	driveZLayers(e, arduino, sim.Second, 3)
	// Bounded run: see TestT4FiresOnLayerBoundaries.
	if err := e.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !tr.Fired() {
		t.Fatal("T5 did not fire")
	}
	// Output = 240 forwarded source steps + 100 injected.
	if got := zOut.RisingEdges(); got != 240+100 {
		t.Errorf("Z output pulses = %d, want 340", got)
	}
}

func TestT5AtHomingWhenTriggerZero(t *testing.T) {
	e, _, ramps, b := rig(t)
	tr := NewT5ZShift(T5Params{TriggerLayer: 0, ExtraSteps: 50})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	zOut := signal.NewTrace(ramps.Step(signal.AxisZ))
	fakeHoming(e, ramps)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !tr.Fired() || zOut.RisingEdges() != 50 {
		t.Errorf("fired=%v pulses=%d", tr.Fired(), zOut.RisingEdges())
	}
}

func TestT6ForcesHeatersLow(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT6HeaterDoS(T6Params{Delay: sim.Second, Hotend: true, Bed: true})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	arduino.Line(signal.PinHotend).Set(signal.High)
	arduino.Line(signal.PinBed).Set(signal.High)
	if err := e.Run(500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ramps.Line(signal.PinHotend).Level() != signal.High {
		t.Fatal("heater not forwarded before trigger")
	}
	if err := e.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !tr.Fired() {
		t.Fatal("T6 did not fire")
	}
	if ramps.Line(signal.PinHotend).Level() != signal.Low || ramps.Line(signal.PinBed).Level() != signal.Low {
		t.Error("heater outputs not clamped low")
	}
	// Firmware keeps trying: edges must be swallowed.
	arduino.Line(signal.PinHotend).Set(signal.Low)
	arduino.Line(signal.PinHotend).Set(signal.High)
	if err := e.Run(e.Now() + sim.Second); err != nil {
		t.Fatal(err)
	}
	if ramps.Line(signal.PinHotend).Level() != signal.Low {
		t.Error("clamp leaked a firmware edge")
	}
}

func TestT6Validation(t *testing.T) {
	_, _, _, b := rig(t)
	if err := b.InstallTrojan(NewT6HeaterDoS(T6Params{Delay: sim.Second})); err == nil {
		t.Error("no-target T6 accepted")
	}
}

func TestT7ForcesHotendHighDespiteFirmware(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT7ThermalRunaway(T7Params{Delay: sim.Second})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !tr.Fired() {
		t.Fatal("T7 did not fire")
	}
	if ramps.Line(signal.PinHotend).Level() != signal.High {
		t.Fatal("hotend not clamped high")
	}
	// The firmware's kill drives its pin low — the clamp must hold.
	arduino.Line(signal.PinHotend).Set(signal.Low)
	if err := e.Run(e.Now() + sim.Second); err != nil {
		t.Fatal(err)
	}
	if ramps.Line(signal.PinHotend).Level() != signal.High {
		t.Error("firmware kill defeated the clamp (paper says it must not)")
	}
}

func TestT8CyclesEnableLines(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT8StepperDoS(T8Params{
		Delay: sim.Second, OnTime: sim.Second, OffTime: 2 * sim.Second,
		Axes: []signal.Axis{signal.AxisX},
	})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	arduino.Enable(signal.AxisX).Set(signal.Low) // firmware enables motors
	fakeHoming(e, ramps)

	// Homing completes ≈ 0.3 s; first dropout at ≈1.3 s, lasting 1 s.
	if err := e.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if ramps.Enable(signal.AxisX).Level() != signal.High {
		t.Error("EN not forced high during dropout window")
	}
	if err := e.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if ramps.Enable(signal.AxisX).Level() != signal.Low {
		t.Error("EN not released after dropout window")
	}
	if tr.Dropouts() == 0 {
		t.Error("no dropouts recorded")
	}
}

func TestT8Validation(t *testing.T) {
	_, _, _, b := rig(t)
	if err := b.InstallTrojan(NewT8StepperDoS(T8Params{OnTime: 0, OffTime: sim.Second})); err == nil {
		t.Error("zero OnTime accepted")
	}
}

func TestT9ForceOff(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT9FanTamper(T9Params{Delay: sim.Second, ForceOff: true})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	arduino.Line(signal.PinFan).Set(signal.High)
	fakeHoming(e, ramps)
	if err := e.Run(300 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ramps.Line(signal.PinFan).Level() != signal.High {
		t.Fatal("fan not forwarded before trigger")
	}
	if err := e.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !tr.Fired() || ramps.Line(signal.PinFan).Level() != signal.Low {
		t.Error("fan not forced off")
	}
}

func TestT9DutyScaling(t *testing.T) {
	e, arduino, ramps, b := rig(t)
	tr := NewT9FanTamper(T9Params{Delay: 0, ForceOff: false})
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	out := signal.NewTrace(ramps.Line(signal.PinFan))
	fakeHoming(e, ramps)
	// 20 PWM on-windows after the trojan fires.
	pulseSource(e, arduino.Line(signal.PinFan), 2*sim.Second, 20*sim.Millisecond, 20)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := out.RisingEdges(); got != 10 {
		t.Errorf("fan on-windows passed = %d, want 10 (half masked)", got)
	}
}

func TestSuiteCompleteness(t *testing.T) {
	suite := Suite(1)
	if len(suite) != 9 {
		t.Fatalf("Suite has %d trojans, want 9", len(suite))
	}
	seen := make(map[string]bool)
	for i, tr := range suite {
		want := "T" + string(rune('1'+i))
		if tr.ID() != want {
			t.Errorf("suite[%d].ID() = %s, want %s", i, tr.ID(), want)
		}
		if seen[tr.ID()] {
			t.Errorf("duplicate ID %s", tr.ID())
		}
		seen[tr.ID()] = true
		if tr.Description() == "" || tr.Scenario() == "" {
			t.Errorf("%s missing metadata", tr.ID())
		}
		if tr.Kind().String() == "" {
			t.Errorf("%s missing kind", tr.ID())
		}
	}
}

func TestKindString(t *testing.T) {
	if PartModification.String() != "PM" || DenialOfService.String() != "DoS" || Destructive.String() != "D" {
		t.Error("Kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}
