// Package goldenstore is the persistent tier of the layered golden
// repository (DESIGN.md §13): an on-disk, content-addressed store of
// encoded golden results keyed by (program hash, seed, budget, capture
// mode), sitting below the in-memory LRU of offramps.GoldenCache and
// behind a Bloom existence filter, modeled on the cache → bloom → store
// lookup pipeline of the rr-dns blocklist repository (SNIPPETS.md).
//
// The store never trusts its own bytes: every entry carries a magic,
// format version, its full key, and a SHA-256 payload checksum, and any
// mismatch — torn file, bit rot, stale format, hash collision — is a
// miss, never an error. Writes are crash-safe (temp file + fsync +
// rename into place, the journal pattern from internal/farm), so a
// reader observes an entry either completely or not at all. Payloads are
// opaque here; the Result codec (and its own version) lives with the
// Result type in the root package.
//
// Layout on disk:
//
//	dir/CURRENT        active generation name ("g000001\n"), swapped atomically
//	dir/g000001/<key>.golden
//
// Rebuild writes a filtered copy of every entry into the next
// generation and atomically repoints CURRENT, so compaction is a single
// visible switch: concurrent readers see the old generation or the new
// one, never a mix. `suite -golden-store-gc` drives Rebuild with the
// keep set of keys the run actually consulted, garbage-collecting
// entries stranded by old specs, seeds, or codec versions.
package goldenstore
