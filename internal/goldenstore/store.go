// This file implements the store itself; the package documentation
// lives in doc.go.
package goldenstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FormatVersion is the store's on-disk entry framing version. It covers
// the header layout only; the payload codec versions itself.
const FormatVersion = 1

// Key content-addresses one golden run. It mirrors the in-memory
// cache's key: the program's content hash, the time-noise seed, the run
// budget, and the capture mode (full-trace and fingerprint-only results
// are different shapes and must never satisfy each other's lookups).
type Key struct {
	Program [32]byte
	Seed    uint64
	Budget  int64
	Mode    uint8
}

const keyLen = 32 + 8 + 8 + 1

// bytes is the key's canonical binary form — the unit the Bloom filter
// hashes and the entry header embeds.
func (k Key) bytes() []byte {
	b := make([]byte, keyLen)
	copy(b, k.Program[:])
	binary.LittleEndian.PutUint64(b[32:], k.Seed)
	binary.LittleEndian.PutUint64(b[40:], uint64(k.Budget))
	b[48] = k.Mode
	return b
}

// filename is the key's content-addressed file name: readable, exact,
// and collision-free (the full 256-bit program hash is spelled out).
func (k Key) filename() string {
	return fmt.Sprintf("%064x-%016x-%016x-%02x.golden", k.Program, k.Seed, uint64(k.Budget), k.Mode)
}

// parseFilename inverts filename; ok is false for foreign files.
func parseFilename(name string) (Key, bool) {
	const want = 64 + 1 + 16 + 1 + 16 + 1 + 2 + len(".golden")
	if len(name) != want || !strings.HasSuffix(name, ".golden") {
		return Key{}, false
	}
	var k Key
	if _, err := hex.Decode(k.Program[:], []byte(name[:64])); err != nil {
		return Key{}, false
	}
	seed, err1 := strconv.ParseUint(name[65:81], 16, 64)
	budget, err2 := strconv.ParseUint(name[82:98], 16, 64)
	mode, err3 := strconv.ParseUint(name[99:101], 16, 8)
	if err1 != nil || err2 != nil || err3 != nil || name[64] != '-' || name[81] != '-' || name[98] != '-' {
		return Key{}, false
	}
	k.Seed, k.Budget, k.Mode = seed, int64(budget), uint8(mode)
	return k, true
}

// Stats counts the store's traffic since Open.
type Stats struct {
	// Hits is entries served (header, key, and checksum all verified).
	Hits uint64
	// Misses is lookups that found nothing servable; FilterSkips of
	// them never touched the disk (Bloom-negative), and Corrupt of them
	// found a file but rejected it (torn, stale, or checksum-bad —
	// still a miss, by policy).
	Misses      uint64
	FilterSkips uint64
	Corrupt     uint64
	// Puts is entries written.
	Puts uint64
}

// Store is the persistent golden tier. All methods are safe for
// concurrent use; several processes may share one directory (writers
// land entries atomically, and identical keys hold identical bytes
// because simulation is deterministic, so last-write-wins is sound).
//
// The Bloom filter snapshots the directory at Open and tracks this
// process's own Puts; entries written by *other* processes afterwards
// are invisible until Refresh or reopen — a stale negative only costs a
// re-simulation, never a wrong result.
type Store struct {
	dir string

	mu     sync.RWMutex
	gen    string // active generation directory (absolute)
	filter *bloom
	count  int
	cap    uint64 // filter's sized capacity, for regrow decisions
	stats  Stats
}

// Open opens (creating if needed) the store rooted at dir, loads the
// active generation's key set, and sizes the existence filter for it.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("goldenstore: %w", err)
	}
	s := &Store{dir: dir}
	gen, err := s.currentGen()
	if err != nil {
		return nil, err
	}
	s.gen = gen
	if err := s.rescanLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// currentGen resolves (initializing if absent) the active generation.
func (s *Store) currentGen() (string, error) {
	cur := filepath.Join(s.dir, "CURRENT")
	raw, err := os.ReadFile(cur)
	name := strings.TrimSpace(string(raw))
	if err != nil || name == "" || strings.Contains(name, "/") || strings.Contains(name, "..") {
		name = "g000001"
		if werr := writeFileAtomic(cur, []byte(name+"\n")); werr != nil {
			return "", fmt.Errorf("goldenstore: init CURRENT: %w", werr)
		}
	}
	gen := filepath.Join(s.dir, name)
	if err := os.MkdirAll(gen, 0o755); err != nil {
		return "", fmt.Errorf("goldenstore: %w", err)
	}
	return gen, nil
}

// scanKeys lists the keys present in a generation directory.
func scanKeys(gen string) ([]Key, error) {
	ents, err := os.ReadDir(gen)
	if err != nil {
		return nil, fmt.Errorf("goldenstore: scan: %w", err)
	}
	var keys []Key
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if k, ok := parseFilename(e.Name()); ok {
			keys = append(keys, k)
		}
	}
	return keys, nil
}

// rescanLocked rebuilds the existence filter from the directory. Callers
// hold s.mu (or are single-threaded in Open).
func (s *Store) rescanLocked() error {
	keys, err := scanKeys(s.gen)
	if err != nil {
		return err
	}
	capacity := uint64(len(keys))*2 + 1024
	f := newBloom(capacity, 0.01)
	for _, k := range keys {
		f.add(k.bytes())
	}
	s.filter, s.count, s.cap = f, len(keys), capacity
	return nil
}

// Refresh rescans the directory, picking up entries other processes
// wrote since Open (or the last Refresh).
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rescanLocked()
}

// Len reports the number of entries known to this process's snapshot.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// StatsSnapshot returns the traffic counters so far.
func (s *Store) StatsSnapshot() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the store. No descriptors are held between calls, so
// this is bookkeeping symmetry, kept so callers can treat the store
// like any other resource.
func (s *Store) Close() error { return nil }

// Get returns the payload stored under k, or ok=false on any kind of
// absence: filter-negative, no file, torn file, stale format, key
// mismatch, checksum failure. Absence is never an error — the caller's
// fallback is a fresh simulation, which is always correct.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.RLock()
	gen := s.gen
	maybe := s.filter.mightContain(k.bytes())
	s.mu.RUnlock()
	if !maybe {
		s.mu.Lock()
		s.stats.Misses++
		s.stats.FilterSkips++
		s.mu.Unlock()
		return nil, false
	}
	payload, err := readEntry(filepath.Join(gen, k.filename()), k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.stats.Misses++
		if !os.IsNotExist(err) {
			s.stats.Corrupt++
		}
		return nil, false
	}
	s.stats.Hits++
	return payload, true
}

// Put stores payload under k, atomically (temp + fsync + rename): a
// concurrent reader in any process sees the full entry or none.
// Overwriting an existing entry is permitted — determinism guarantees
// the bytes match.
func (s *Store) Put(k Key, payload []byte) error {
	s.mu.RLock()
	gen := s.gen
	s.mu.RUnlock()
	if err := writeEntry(gen, k, payload); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.filter.add(k.bytes())
	s.count++
	s.stats.Puts++
	// Regrow the filter before saturation lifts its false-positive rate;
	// a rescan also folds in any concurrent writers' entries.
	if uint64(s.count) > s.cap {
		if err := s.rescanLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Keys lists every entry in the active generation, sorted by file name
// (deterministic for tests and tooling). It reads the directory, not
// the filter, so it also sees other processes' writes.
func (s *Store) Keys() ([]Key, error) {
	s.mu.RLock()
	gen := s.gen
	s.mu.RUnlock()
	keys, err := scanKeys(gen)
	if err != nil {
		return nil, err
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].filename() < keys[j].filename() })
	return keys, nil
}

// Rebuild rewrites the whole store as one atomic operation: every
// servable entry for which keep returns true (nil keeps everything) is
// copied into the next generation, CURRENT is swapped with a durable
// rename, and the old generation is removed. Unservable (corrupt,
// stale) entries are dropped — rebuild doubles as compaction and
// format-version garbage collection. Readers concurrently holding the
// store see a consistent generation throughout; other processes holding
// the *old* generation open degrade to misses after the removal, which
// re-simulates — never lies.
func (s *Store) Rebuild(keep func(Key, []byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	oldGen := s.gen
	n, err := strconv.Atoi(strings.TrimPrefix(filepath.Base(oldGen), "g"))
	if err != nil {
		return fmt.Errorf("goldenstore: rebuild: bad generation %q", filepath.Base(oldGen))
	}
	newName := fmt.Sprintf("g%06d", n+1)
	newGen := filepath.Join(s.dir, newName)
	if err := os.RemoveAll(newGen); err != nil {
		return fmt.Errorf("goldenstore: rebuild: %w", err)
	}
	if err := os.MkdirAll(newGen, 0o755); err != nil {
		return fmt.Errorf("goldenstore: rebuild: %w", err)
	}

	keys, err := scanKeys(oldGen)
	if err != nil {
		return err
	}
	for _, k := range keys {
		payload, rerr := readEntry(filepath.Join(oldGen, k.filename()), k)
		if rerr != nil {
			continue // corrupt or stale: compacted away
		}
		if keep != nil && !keep(k, payload) {
			continue
		}
		if err := writeEntry(newGen, k, payload); err != nil {
			return err
		}
	}
	syncDir(newGen)

	// The swap: one atomic CURRENT rewrite makes the new generation the
	// store. Everything before it is invisible; everything after it is
	// cleanup.
	if err := writeFileAtomic(filepath.Join(s.dir, "CURRENT"), []byte(newName+"\n")); err != nil {
		return fmt.Errorf("goldenstore: rebuild: swap: %w", err)
	}
	s.gen = newGen
	if err := s.rescanLocked(); err != nil {
		return err
	}
	if err := os.RemoveAll(oldGen); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("goldenstore: rebuild: drop old generation: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Entry framing

var magic = [4]byte{'O', 'F', 'G', 'S'}

const headerLen = 4 + 2 + keyLen + 8 // magic, version, key, payload length

// writeEntry lands one entry crash-safely in gen.
func writeEntry(gen string, k Key, payload []byte) error {
	blob := make([]byte, 0, headerLen+len(payload)+sha256.Size)
	blob = append(blob, magic[:]...)
	blob = binary.LittleEndian.AppendUint16(blob, FormatVersion)
	blob = append(blob, k.bytes()...)
	blob = binary.LittleEndian.AppendUint64(blob, uint64(len(payload)))
	blob = append(blob, payload...)
	sum := sha256.Sum256(payload)
	blob = append(blob, sum[:]...)

	tmp, err := os.CreateTemp(gen, ".put-*")
	if err != nil {
		return fmt.Errorf("goldenstore: put: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("goldenstore: put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("goldenstore: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("goldenstore: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(gen, k.filename())); err != nil {
		return fmt.Errorf("goldenstore: put: %w", err)
	}
	syncDir(gen)
	return nil
}

// readEntry loads and verifies one entry. Every failure mode returns an
// error the caller maps to a miss; fs.ErrNotExist distinguishes plain
// absence from corruption for the stats.
func readEntry(path string, k Key) ([]byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(blob) < headerLen+sha256.Size {
		return nil, fmt.Errorf("goldenstore: entry truncated")
	}
	if [4]byte(blob[:4]) != magic {
		return nil, fmt.Errorf("goldenstore: bad magic")
	}
	if v := binary.LittleEndian.Uint16(blob[4:6]); v != FormatVersion {
		return nil, fmt.Errorf("goldenstore: stale format version %d", v)
	}
	if string(blob[6:6+keyLen]) != string(k.bytes()) {
		return nil, fmt.Errorf("goldenstore: entry key mismatch")
	}
	plen := binary.LittleEndian.Uint64(blob[6+keyLen : headerLen])
	if uint64(len(blob)) != headerLen+plen+sha256.Size {
		return nil, fmt.Errorf("goldenstore: entry length mismatch")
	}
	payload := blob[headerLen : headerLen+plen]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(blob[headerLen+plen:]) {
		return nil, fmt.Errorf("goldenstore: checksum mismatch")
	}
	return payload, nil
}

// writeFileAtomic lands content at path via temp + fsync + rename +
// directory fsync — the journal pattern from internal/farm.
func writeFileAtomic(path string, content []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir makes a rename durable. Directory fsync is unsupported on
// some filesystems; the rename already happened, so failure is advice.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
