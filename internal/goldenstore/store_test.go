package goldenstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(b byte) Key {
	var k Key
	k.Program[0] = b
	k.Seed = uint64(b) + 7
	k.Budget = int64(b) * 1000
	k.Mode = b % 2
	return k
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store served an entry")
	}
	payload := []byte("golden payload bytes")
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload, true", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	st := s.StatsSnapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

func TestStoreReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for b := byte(1); b <= 5; b++ {
		if err := s1.Put(testKey(b), []byte{b, b, b}); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh process: a new Store over the same directory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", s2.Len())
	}
	for b := byte(1); b <= 5; b++ {
		got, ok := s2.Get(testKey(b))
		if !ok || !bytes.Equal(got, []byte{b, b, b}) {
			t.Fatalf("reopened Get(%d) = %q, %v", b, got, ok)
		}
	}
	if st := s2.StatsSnapshot(); st.FilterSkips != 0 {
		t.Errorf("reopened store skipped real entries: %+v", st)
	}
}

func TestStoreKeyEncodingInverts(t *testing.T) {
	for b := byte(0); b < 8; b++ {
		k := testKey(b)
		got, ok := parseFilename(k.filename())
		if !ok || got != k {
			t.Fatalf("parseFilename(%q) = %+v, %v; want original key", k.filename(), got, ok)
		}
	}
	if _, ok := parseFilename("garbage.golden"); ok {
		t.Error("foreign file parsed as a key")
	}
}

// TestStoreCorruptEntryIsMiss covers the corruption policy: flipped
// payload bytes, truncation, a stale format version, and a wrong key
// under the right filename all read as misses — never errors — and a
// rewrite heals the entry.
func TestStoreCorruptEntryIsMiss(t *testing.T) {
	k := testKey(3)
	payload := []byte("the one true golden")
	corruptions := map[string]func([]byte) []byte{
		"flipped-payload-byte": func(b []byte) []byte {
			b[headerLen] ^= 0xff
			return b
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"stale-format-version": func(b []byte) []byte {
			b[4] = 0xfe
			return b
		},
		"bad-magic": func(b []byte) []byte {
			b[0] = 'X'
			return b
		},
		"empty": func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(k, payload); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(s.gen, k.filename())
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(blob), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(k); ok {
				t.Fatalf("corrupt entry served: %q", got)
			}
			if st := s.StatsSnapshot(); st.Corrupt != 1 {
				t.Errorf("corruption not counted: %+v", st)
			}
			// The healing path: a fresh Put overwrites and serves again.
			if err := s.Put(k, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(k); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("healed entry not served: %q, %v", got, ok)
			}
		})
	}
}

func TestStoreWrongKeyUnderFilename(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := testKey(1), testKey(2)
	if err := s.Put(a, []byte("A")); err != nil {
		t.Fatal(err)
	}
	// Copy a's entry onto b's filename: the embedded key must reject it.
	blob, err := os.ReadFile(filepath.Join(s.gen, a.filename()))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.gen, b.filename()), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s.Refresh()
	if _, ok := s.Get(b); ok {
		t.Fatal("entry with mismatched embedded key was served")
	}
}

// TestStoreConcurrentReadersAndWriters exercises the store under -race:
// many goroutines reading and writing overlapping keys must never see a
// torn or foreign payload.
func TestStoreConcurrentReadersAndWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	payload := func(b byte) []byte {
		return bytes.Repeat([]byte{b}, 256)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b := byte((g + i) % keys)
				if g%2 == 0 {
					if err := s.Put(testKey(b), payload(b)); err != nil {
						t.Error(err)
						return
					}
				}
				if got, ok := s.Get(testKey(b)); ok && !bytes.Equal(got, payload(b)) {
					t.Errorf("key %d served foreign payload", b)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStoreRebuildAtomic: rebuild drops filtered and corrupt entries,
// survivors keep serving, the generation advances, and reopening sees
// exactly the rebuilt set.
func TestStoreRebuildAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for b := byte(1); b <= 6; b++ {
		if err := s.Put(testKey(b), []byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt entry 6 in place; rebuild must compact it away.
	path := filepath.Join(s.gen, testKey(6).filename())
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Keep even keys only.
	if err := s.Rebuild(func(k Key, _ []byte) bool { return k.Program[0]%2 == 0 }); err != nil {
		t.Fatal(err)
	}
	if got := filepath.Base(s.gen); got != "g000002" {
		t.Errorf("generation = %s, want g000002", got)
	}
	wantLive := map[byte]bool{2: true, 4: true}
	for b := byte(1); b <= 6; b++ {
		_, ok := s.Get(testKey(b))
		if ok != wantLive[b] {
			t.Errorf("after rebuild, key %d present=%v, want %v", b, ok, wantLive[b])
		}
	}
	// CURRENT points at the new generation for fresh processes too.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Errorf("reopened Len = %d, want 2", s2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "g000001")); !os.IsNotExist(err) {
		t.Errorf("old generation not removed: %v", err)
	}
}

// TestStoreRebuildUnderReaders: readers racing a rebuild always get
// either the old or the new truth for every key, never an error or a
// foreign payload.
func TestStoreRebuildUnderReaders(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 6
	for b := byte(0); b < keys; b++ {
		if err := s.Put(testKey(b), []byte{b, b}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for b := byte(0); b < keys; b++ {
					if got, ok := s.Get(testKey(b)); ok && !bytes.Equal(got, []byte{b, b}) {
						t.Errorf("key %d served foreign payload %q", b, got)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if err := s.Rebuild(nil); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	if s.Len() != keys {
		t.Errorf("Len = %d after identity rebuilds, want %d", s.Len(), keys)
	}
}

// TestStoreFilterRegrows: Puts past the filter's sized capacity trigger
// a rescan-and-regrow, keeping lookups exact for everything written.
func TestStoreFilterRegrows(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.filter, s.cap = newBloom(4, 0.01), 4 // shrink to force regrowth
	s.mu.Unlock()
	for i := 0; i < 32; i++ {
		k := testKey(byte(i))
		k.Seed = uint64(i) * 977
		if err := s.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		k := testKey(byte(i))
		k.Seed = uint64(i) * 977
		if got, ok := s.Get(k); !ok || !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("entry %d lost after regrow", i)
		}
	}
}

func TestBloomBasics(t *testing.T) {
	bf := newBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		bf.add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !bf.mightContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative on key-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if bf.mightContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	// 1% target; 3% tolerance keeps the assertion robust.
	if fp > 300 {
		t.Errorf("false-positive rate too high: %d/10000", fp)
	}
}
