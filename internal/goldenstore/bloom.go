package goldenstore

import "math"

// bloom is a fixed-size Bloom filter used as the store's cheap existence
// pre-check: a negative answer skips the disk entirely, a positive answer
// is advisory and falls through to the authoritative file read (whose
// failure is just a miss). Sizing follows the standard formulas
// m = -n·ln(p)/ln(2)² and k = (m/n)·ln(2); membership uses double
// hashing (g_i = h1 + i·h2) over two independent FNV-1a streams, so no
// external hash dependency is needed.
//
// The filter is not safe for concurrent mutation; the Store serializes
// add under its own lock, and test-vs-add races are benign there because
// a stale negative only costs a re-simulation, never a wrong result.
type bloom struct {
	bits []uint64
	m    uint64 // filter size in bits
	k    int    // hash count
}

// newBloom sizes a filter for the expected entry count at the target
// false-positive rate. capacity is clamped to at least 1.
func newBloom(capacity uint64, fpRate float64) *bloom {
	if capacity == 0 {
		capacity = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	ln2 := math.Ln2
	m := uint64(math.Ceil(-float64(capacity) * math.Log(fpRate) / (ln2 * ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(capacity) * ln2))
	if k < 1 {
		k = 1
	}
	return &bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashPair derives the two double-hashing streams from one pass over the
// key: h1 is plain FNV-1a, h2 is FNV-1a over the same bytes from a
// distinct offset basis, forced odd so it generates the full residue
// ring for any power-of-two-free modulus.
func hashPair(key []byte) (h1, h2 uint64) {
	h1 = fnvOffset64
	h2 = fnvOffset64 ^ 0x9e3779b97f4a7c15
	for _, b := range key {
		h1 = (h1 ^ uint64(b)) * fnvPrime64
		h2 = (h2 ^ uint64(b)) * fnvPrime64
	}
	return h1, h2 | 1
}

// add inserts a key.
func (bf *bloom) add(key []byte) {
	h1, h2 := hashPair(key)
	for i := 0; i < bf.k; i++ {
		bit := (h1 + uint64(i)*h2) % bf.m
		bf.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mightContain reports whether the key may be present. False means
// definitely absent (among the keys added to this filter).
func (bf *bloom) mightContain(key []byte) bool {
	h1, h2 := hashPair(key)
	for i := 0; i < bf.k; i++ {
		bit := (h1 + uint64(i)*h2) % bf.m
		if bf.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
