// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond resolution. It is the time base underneath every other
// substrate in this repository: the firmware twin schedules step pulses on
// it, the FPGA model registers edge callbacks through it, and the printer
// plant integrates its thermal model on periodic ticks.
//
// The engine is intentionally single-threaded: events execute in strictly
// increasing (Time, sequence) order, so a simulation with a fixed seed is
// bit-for-bit reproducible. Reproducibility is what makes the paper's
// golden-model detection methodology testable — a "golden print" must be
// re-runnable.
package sim

import (
	"encoding/json"
	"fmt"
	"time"
)

// Time is a simulation timestamp in nanoseconds since the start of the
// simulation. The paper's FPGA runs at 100 MHz (10 ns period); a 1 ns
// timeline strictly contains every event the hardware could observe.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts t to a time.Duration for reporting.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t in floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t in floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the timestamp using Go duration notation.
func (t Time) String() string {
	if t < 0 {
		return fmt.Sprintf("-%v", time.Duration(-t))
	}
	return time.Duration(t).String()
}

// FromDuration converts a wall-clock duration to simulation Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts floating-point seconds to simulation Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// MarshalJSON encodes the timestamp as a Go duration string ("2m4.5s"),
// the form scenario spec files use.
func (t Time) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON accepts either a Go duration string ("10s", "1h30m",
// "200us") or a bare integer nanosecond count.
func (t *Time) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		d, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("sim: bad duration %q: %w", s, err)
		}
		*t = FromDuration(d)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("sim: Time must be a duration string or nanosecond count, got %s", data)
	}
	*t = Time(ns)
	return nil
}
