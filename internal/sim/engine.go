package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before reaching its target time.
var ErrStopped = errors.New("sim: engine stopped")

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so execution order is deterministic (FIFO within an
// instant).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator. The zero value is
// ready to use.
type Engine struct {
	queue   eventHeap
	now     Time
	seq     uint64
	stopped bool
	// executed counts events run since creation; useful for progress
	// reporting and for benchmarks that want simulated-events/op.
	executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed reports the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (before Now) is a programming error and panics: silently reordering
// events would destroy the determinism every experiment relies on.
func (e *Engine) Schedule(at Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil func")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After enqueues fn to run d nanoseconds after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: After with negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
// Pending events remain queued; a subsequent Run resumes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty or the next event
// lies beyond until. The clock is left at min(until, time of last event).
// It returns ErrStopped if Stop was called during execution.
func (e *Engine) Run(until Time) error {
	e.stopped = false
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			e.now = until
			return nil
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.executed++
		next.fn()
		if e.stopped {
			return ErrStopped
		}
	}
	if until > e.now {
		e.now = until
	}
	return nil
}

// RunUntilIdle executes every pending event (including events scheduled by
// other events) with no time bound. It returns ErrStopped if Stop was
// called. Use with care: a periodic task keeps the queue permanently non-empty; prefer
// Run with an explicit horizon for full-system simulations.
func (e *Engine) RunUntilIdle() error {
	e.stopped = false
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*event)
		e.now = next.at
		e.executed++
		next.fn()
		if e.stopped {
			return ErrStopped
		}
	}
	return nil
}

// Ticker invokes fn every period, starting at Now+period, until the
// returned cancel function is called. fn receives the tick time. Periodic
// work (PID loops, UART export windows, thermal integration) is built on
// Ticker.
func (e *Engine) Ticker(period Time, fn func(Time)) (cancel func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Ticker with non-positive period %v", period))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		if stopped { // fn may cancel its own ticker
			return
		}
		e.After(period, tick)
	}
	e.After(period, tick)
	return func() { stopped = true }
}
