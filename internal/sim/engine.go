package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before reaching its target time.
var ErrStopped = errors.New("sim: engine stopped")

// EdgeTarget is a prebound callback for the engine's allocation-free
// scheduling fast path. Hot-path schedulers (signal edges, step trains)
// implement it once and pass a small argument per event instead of
// allocating a fresh closure: the interface value holds a pointer that is
// already live, so ScheduleEdge never heap-allocates.
type EdgeTarget interface {
	// FireEdge runs the scheduled work. arg is the small payload given to
	// ScheduleEdge (a signal level, a pulse phase, ...).
	FireEdge(arg uint64)
}

// event is a scheduled callback, stored by value: the queue tiers hold
// []event slices, so steady-state scheduling performs zero allocations.
// Exactly one of fn and tgt is set. seq breaks ties between events
// scheduled for the same instant so execution order is deterministic
// (FIFO within an instant).
type event struct {
	at  Time
	seq uint64
	fn  func()
	tgt EdgeTarget
	arg uint64
}

// call runs the event's payload.
func (ev *event) call() {
	if ev.fn != nil {
		ev.fn()
		return
	}
	ev.tgt.FireEdge(ev.arg)
}

// eventLess orders events by (at, seq) — the engine's total execution
// order. seq is unique, so the order is strict.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Timing-wheel geometry. The wheel is the near tier of the two-tier
// scheduler: one slot covers 2^wheelShift ns, and the whole wheel spans
// slot*count ahead of the drain window. The dominant short fixed delays of
// a print — FPGA propagation (13 ns), STEP pulse widths (2 µs), UART bit
// times (8.7 µs), step periods (≥ 50 µs at the 20 kHz envelope) — all land
// in the wheel; long periodics (PWM windows, control ticks, capture
// exports) overflow into the far-tier heap and are promoted into the wheel
// when their window comes due.
const (
	wheelShift = 13 // 8.192 µs per slot
	wheelSlots = 256
	wheelSlot  = Time(1) << wheelShift
	wheelSpan  = wheelSlot * wheelSlots
	wheelMask  = wheelSlots - 1
)

// slotOf maps an absolute timestamp to its wheel slot. The mapping is
// absolute (no cursor offset), so a slot is valid for exactly one window
// per rotation.
func slotOf(at Time) int { return int(at>>wheelShift) & wheelMask }

// Engine is a deterministic discrete-event simulator. The zero value is
// ready to use.
//
// Internally the pending set is split across two tiers that together
// implement one total (time, sequence) order:
//
//   - a hierarchical timing wheel (near tier) holding events less than
//     wheelSpan ahead, appended to unsorted slots and drained in exact
//     (at, seq) order window by window;
//   - a hand-rolled 4-ary min-heap of value events (far tier) holding
//     everything beyond the wheel horizon, promoted into the wheel as its
//     windows come due.
//
// Both tiers store events by value and reuse their backing storage, so
// scheduling allocates only when a slice grows.
type Engine struct {
	now     Time
	seq     uint64
	stopped bool
	// executed counts events run since creation; useful for progress
	// reporting and for benchmarks that want simulated-events/op.
	executed uint64
	pending  int

	// base is the start (aligned to wheelSlot) of the wheel window
	// currently being drained. Events at < base+wheelSpan live in slots;
	// later events live in the heap.
	base       Time
	slots      [wheelSlots][]event
	wheelCount int

	heap []event
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Reset returns the engine to the state NewEngine would produce while
// retaining the backing storage of its wheel slots and far-tier heap —
// the point of pooling an engine across runs. Every queued event's
// callback reference is released (a reset engine pins nothing from the
// previous run), the clock returns to zero, and the sequence counter
// restarts, so a run on a reset engine is bit-identical to a run on a
// fresh one.
func (e *Engine) Reset() {
	for s := range e.slots {
		slot := e.slots[s]
		for i := range slot {
			slot[i] = event{} // release fn/tgt references
		}
		e.slots[s] = slot[:0]
	}
	for i := range e.heap {
		e.heap[i] = event{}
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.executed = 0
	e.pending = 0
	e.base = 0
	e.wheelCount = 0
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed reports the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.pending }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (before Now) is a programming error and panics: silently reordering
// events would destroy the determinism every experiment relies on.
func (e *Engine) Schedule(at Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil func")
	}
	e.enqueue(event{at: at, fn: fn})
}

// After enqueues fn to run d nanoseconds after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: After with negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// ScheduleEdge enqueues tgt.FireEdge(arg) to run at absolute time at.
// This is the allocation-free fast path: no closure is created, and the
// event is stored by value. Ordering is identical to Schedule — one seq
// counter covers both paths.
func (e *Engine) ScheduleEdge(at Time, tgt EdgeTarget, arg uint64) {
	if tgt == nil {
		panic("sim: ScheduleEdge with nil target")
	}
	e.enqueue(event{at: at, tgt: tgt, arg: arg})
}

// AfterEdge enqueues tgt.FireEdge(arg) to run d nanoseconds after the
// current time, via the allocation-free fast path.
func (e *Engine) AfterEdge(d Time, tgt EdgeTarget, arg uint64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: AfterEdge with negative delay %v", d))
	}
	e.ScheduleEdge(e.now+d, tgt, arg)
}

// enqueue stamps the event's sequence number and routes it to the wheel
// or the heap.
func (e *Engine) enqueue(ev event) {
	if ev.at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", ev.at, e.now))
	}
	e.seq++
	ev.seq = e.seq
	e.pending++
	if ev.at < e.base+wheelSpan {
		s := slotOf(ev.at)
		e.slots[s] = append(e.slots[s], ev)
		e.wheelCount++
		return
	}
	e.heapPush(ev)
}

// Stop halts the run loop after the currently executing event returns.
// Pending events remain queued; a subsequent Run resumes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty or the next event
// lies beyond until. The clock is left at min(until, time of last event).
// It returns ErrStopped if Stop was called during execution.
func (e *Engine) Run(until Time) error {
	if err := e.run(until); err != nil {
		return err
	}
	if until > e.now {
		e.now = until
	}
	return nil
}

// RunUntilIdle executes every pending event (including events scheduled by
// other events) with no time bound. It returns ErrStopped if Stop was
// called. Use with care: a periodic task keeps the queue permanently non-empty; prefer
// Run with an explicit horizon for full-system simulations.
func (e *Engine) RunUntilIdle() error { return e.run(math.MaxInt64) }

// run is the drain loop shared by Run and RunUntilIdle. It executes every
// event with at ≤ until in strict (at, seq) order and leaves the clock at
// the last executed event (the callers decide whether to advance further).
func (e *Engine) run(until Time) error {
	e.stopped = false
	for e.pending > 0 {
		if e.wheelCount == 0 {
			// The wheel is empty: jump the window straight to the heap's
			// earliest event instead of rotating through empty slots.
			top := e.heap[0].at
			if top > until {
				return nil
			}
			e.base = top &^ (wheelSlot - 1)
		}
		// Promote far-tier events due in this window.
		for len(e.heap) > 0 && e.heap[0].at < e.base+wheelSlot {
			ev := e.heapPop()
			s := slotOf(ev.at)
			e.slots[s] = append(e.slots[s], ev)
			e.wheelCount++
		}
		// Drain the current window in (at, seq) order. The slot is
		// unsorted and may grow while events execute (short-delay
		// reschedules land back in the same window), so each step scans
		// for the minimum remaining event.
		slot := &e.slots[slotOf(e.base)]
		for len(*slot) > 0 {
			s := *slot
			min := 0
			for i := 1; i < len(s); i++ {
				if eventLess(s[i], s[min]) {
					min = i
				}
			}
			ev := s[min]
			if ev.at > until {
				return nil
			}
			last := len(s) - 1
			s[min] = s[last]
			s[last] = event{} // release fn/tgt references
			*slot = s[:last]
			e.wheelCount--
			e.pending--
			e.now = ev.at
			e.executed++
			ev.call()
			if e.stopped {
				return ErrStopped
			}
			slot = &e.slots[slotOf(e.base)]
		}
		if e.pending == 0 {
			break
		}
		// Every remaining event lies at or beyond the next window.
		if e.base+wheelSlot > until {
			return nil
		}
		e.base += wheelSlot
	}
	return nil
}

// heapPush inserts ev into the far-tier 4-ary min-heap.
func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// heapPop removes and returns the minimum event of the far tier.
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release fn/tgt references
	h = h[:last]
	i := 0
	for {
		first := i*4 + 1
		if first >= len(h) {
			break
		}
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		min := first
		for c := first + 1; c < end; c++ {
			if eventLess(h[c], h[min]) {
				min = c
			}
		}
		if !eventLess(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	e.heap = h
	return top
}

// Ticker invokes fn every period, starting at Now+period, until the
// returned cancel function is called. fn receives the tick time. Periodic
// work (PID loops, UART export windows, thermal integration) is built on
// Ticker.
func (e *Engine) Ticker(period Time, fn func(Time)) (cancel func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Ticker with non-positive period %v", period))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		if stopped { // fn may cancel its own ticker
			return
		}
		e.After(period, tick)
	}
	e.After(period, tick)
	return func() { stopped = true }
}
