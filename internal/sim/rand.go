package sim

// Rand is a small, fast, deterministic pseudo-random generator (splitmix64)
// used to model "time noise" — the asynchronous execution-time variation of
// a real printer (paper Section V-C, citing Liang et al. ICDCS'21). The
// standard library's math/rand would also work, but a self-contained
// generator keeps the jitter stream stable across Go releases, which
// matters because golden captures are committed as test fixtures.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds produce
// independent-looking streams; the zero seed is valid.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Jitter returns a value in [-magnitude, +magnitude], used to perturb event
// scheduling to emulate asynchronous hardware timing.
func (r *Rand) Jitter(magnitude Time) Time {
	if magnitude <= 0 {
		return 0
	}
	span := int64(2*magnitude + 1)
	return Time(r.Int63n(span)) - magnitude
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }
