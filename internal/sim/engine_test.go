package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(50, func() { got = append(got, i) })
	}
	if err := e.Run(50); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order = %v, want ascending", got)
		}
	}
}

func TestEngineRunStopsAtHorizon(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(200, func() { ran = true })
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("event beyond horizon ran")
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
	if err := e.Run(300); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("event did not run after horizon extended")
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.After(10, recurse)
		}
	}
	e.Schedule(0, recurse)
	if err := e.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
	if e.Executed() != 5 {
		t.Errorf("Executed() = %d, want 5", e.Executed())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("Schedule in the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEngineScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(10, func() { count++; e.Stop() })
	e.Schedule(20, func() { count++ })
	err := e.Run(100)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1 (second event must stay queued)", count)
	}
	if err := e.Run(100); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if count != 2 {
		t.Errorf("count after resume = %d, want 2", count)
	}
}

func TestEngineRunUntilIdle(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(10, func() {
		n++
		e.After(5, func() { n++ })
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if n != 2 {
		t.Errorf("n = %d, want 2", n)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	cancel := e.Ticker(100, func(now Time) { ticks = append(ticks, now) })
	if err := e.Run(450); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ticks) != 4 {
		t.Fatalf("got %d ticks, want 4: %v", len(ticks), ticks)
	}
	for i, at := range ticks {
		if want := Time(100 * (i + 1)); at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
	cancel()
	if err := e.Run(10_000); err != nil {
		t.Fatalf("Run after cancel: %v", err)
	}
	if len(ticks) != 4 {
		t.Errorf("ticker fired after cancel: %d ticks", len(ticks))
	}
}

func TestTickerCancelFromWithinCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var cancel func()
	cancel = e.Ticker(10, func(Time) {
		n++
		if n == 3 {
			cancel()
		}
	})
	if err := e.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
}

func TestTimeConversions(t *testing.T) {
	if got := FromDuration(1500 * time.Microsecond); got != 1500*Microsecond {
		t.Errorf("FromDuration = %v", got)
	}
	if got := FromSeconds(2.5); got != 2500*Millisecond {
		t.Errorf("FromSeconds = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v", got)
	}
	if got := (3 * Millisecond).Milliseconds(); got != 3.0 {
		t.Errorf("Milliseconds() = %v", got)
	}
	if got := Time(-5 * int64(Second)).String(); got != "-5s" {
		t.Errorf("negative String() = %q", got)
	}
	if got := (1500 * Millisecond).String(); got != "1.5s" {
		t.Errorf("String() = %q", got)
	}
}

// Property: for any batch of events with arbitrary non-negative offsets,
// the engine executes them in non-decreasing time order and ends with an
// empty queue.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var executed []Time
		for _, off := range offsets {
			at := Time(off)
			e.Schedule(at, func() { executed = append(executed, at) })
		}
		if err := e.RunUntilIdle(); err != nil {
			return false
		}
		if len(executed) != len(offsets) {
			return false
		}
		for i := 1; i < len(executed); i++ {
			if executed[i] < executed[i-1] {
				return false
			}
		}
		return e.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

// Property: Jitter stays within the requested magnitude.
func TestRandJitterBoundsProperty(t *testing.T) {
	r := NewRand(99)
	f := func(mag uint16) bool {
		m := Time(mag)
		j := r.Jitter(m)
		return j >= -m && j <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRandJitterZeroMagnitude(t *testing.T) {
	r := NewRand(1)
	if got := r.Jitter(0); got != 0 {
		t.Errorf("Jitter(0) = %v, want 0", got)
	}
}

func TestRandIntnUniformish(t *testing.T) {
	r := NewRand(5)
	buckets := make([]int, 10)
	const draws = 100_000
	for i := 0; i < draws; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < draws/10-draws/50 || c > draws/10+draws/50 {
			t.Errorf("bucket %d count %d deviates too far from %d", i, c, draws/10)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j), func() {})
		}
		if err := e.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}
