package sim

import (
	"math/rand"
	"testing"
)

// TestEngineSameInstantFIFOAcrossTiers proves FIFO-within-instant holds
// when events for the same instant arrive through different tiers: some
// scheduled far ahead (heap, promoted into the wheel when due) and some
// scheduled late (directly into the wheel). Execution must follow
// scheduling order regardless of which tier held each event.
func TestEngineSameInstantFIFOAcrossTiers(t *testing.T) {
	e := NewEngine()
	const T = wheelSpan + 4*wheelSlot + 17
	var got []int
	// Far tier: beyond the wheel horizon at schedule time.
	e.Schedule(T, func() { got = append(got, 0) })
	e.Schedule(T, func() { got = append(got, 1) })
	// An event just before T schedules more work for the exact same
	// instant; by then T is inside the wheel window, so these take the
	// near tier.
	e.Schedule(T-1, func() {
		e.Schedule(T, func() { got = append(got, 2) })
		e.Schedule(T, func() { got = append(got, 3) })
	})
	if err := e.Run(T); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cross-tier same-instant order = %v, want %v", got, want)
		}
	}
}

// TestEngineSameInstantFIFOEdgePath proves the closure path and the
// allocation-free edge path share one sequence counter: interleaved
// Schedule and ScheduleEdge calls for one instant run in call order.
type orderRecorder struct{ got *[]int }

func (r *orderRecorder) FireEdge(arg uint64) { *r.got = append(*r.got, int(arg)) }

func TestEngineSameInstantFIFOEdgePath(t *testing.T) {
	e := NewEngine()
	var got []int
	rec := &orderRecorder{got: &got}
	e.Schedule(100, func() { got = append(got, 0) })
	e.ScheduleEdge(100, rec, 1)
	e.Schedule(100, func() { got = append(got, 2) })
	e.ScheduleEdge(100, rec, 3)
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed-path same-instant order = %v, want ascending", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("executed %d events, want 4", len(got))
	}
}

// TestEngineStopResumeMidWheel stops the engine between events that share
// a wheel window (and partly share an instant) and checks the remainder
// stays queued and resumes in exactly the original order.
func TestEngineStopResumeMidWheel(t *testing.T) {
	e := NewEngine()
	var got []int
	add := func(id int) func() { return func() { got = append(got, id) } }
	const T = 3 * wheelSlot / 2 // mid-wheel, not slot-aligned
	e.Schedule(T, add(0))
	e.Schedule(T, func() { got = append(got, 1); e.Stop() })
	e.Schedule(T, add(2))
	e.Schedule(T+1, add(3))
	e.Schedule(T+wheelSlot, add(4)) // next window of the same wheel

	if err := e.Run(T + 2*wheelSlot); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if len(got) != 2 {
		t.Fatalf("executed %v before stop, want [0 1]", got)
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d after stop, want 3", e.Pending())
	}
	if err := e.Run(T + 2*wheelSlot); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("resumed order = %v, want %v", got, want)
		}
	}
}

// refEngine is the pre-rework scheduler semantics distilled to their
// definition: execute pending events in strictly increasing (at, seq)
// order, where seq is assignment order. The differential test replays an
// identical randomized workload through refEngine and Engine and demands
// identical execution order, proving the two-tier scheduler preserves the
// old ordering exactly.
type refEngine struct {
	now     Time
	seq     uint64
	pending []refEvent
}

type refEvent struct {
	at  Time
	seq uint64
	id  int
}

func (r *refEngine) schedule(at Time, id int) {
	r.seq++
	r.pending = append(r.pending, refEvent{at: at, seq: r.seq, id: id})
}

func (r *refEngine) run(spawn func(id int, now Time, schedule func(d Time, id int))) []int {
	var order []int
	for len(r.pending) > 0 {
		min := 0
		for i := 1; i < len(r.pending); i++ {
			p, q := r.pending[i], r.pending[min]
			if p.at < q.at || (p.at == q.at && p.seq < q.seq) {
				min = i
			}
		}
		ev := r.pending[min]
		r.pending[min] = r.pending[len(r.pending)-1]
		r.pending = r.pending[:len(r.pending)-1]
		r.now = ev.at
		order = append(order, ev.id)
		spawn(ev.id, r.now, func(d Time, id int) { r.schedule(r.now+d, id) })
	}
	return order
}

// workload is a deterministic random event tree: node i, when executed,
// schedules its children at fixed relative delays. Delays mix the wheel's
// sweet spot (sub-slot, multi-slot) with far-horizon heap delays and
// plenty of zero/equal delays to force same-instant ties.
type workloadNode struct {
	children []struct {
		delay Time
		id    int
	}
}

func buildWorkload(rng *rand.Rand, n int) []workloadNode {
	delays := []Time{
		0, 1, 13, 100, // same-instant and sub-slot
		2000, 2000, 8192, 8193, // slot-boundary neighbours
		50_000, 50_000, 150_000, // multi-slot
		wheelSpan - 1, wheelSpan, wheelSpan + 1, // horizon boundary
		10_000_000, 100_000_000, // deep heap
	}
	nodes := make([]workloadNode, n)
	next := 1
	for i := 0; i < n && next < n; i++ {
		kids := rng.Intn(4)
		for k := 0; k < kids && next < n; k++ {
			d := delays[rng.Intn(len(delays))]
			nodes[i].children = append(nodes[i].children, struct {
				delay Time
				id    int
			}{d, next})
			next++
		}
	}
	return nodes
}

func TestEngineDifferentialOrderingVsReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		nodes := buildWorkload(rng, 600)

		// Reference run.
		ref := &refEngine{}
		ref.schedule(0, 0)
		refOrder := ref.run(func(id int, _ Time, schedule func(Time, int)) {
			for _, c := range nodes[id].children {
				schedule(c.delay, c.id)
			}
		})

		// Engine run, alternating closure and edge paths to cover both.
		e := NewEngine()
		var order []int
		var exec func(id int)
		sink := &workloadSink{}
		sink.fire = func(id int) { exec(id) }
		exec = func(id int) {
			order = append(order, id)
			for _, c := range nodes[id].children {
				c := c
				if c.id%2 == 0 {
					e.After(c.delay, func() { exec(c.id) })
				} else {
					e.AfterEdge(c.delay, sink, uint64(c.id))
				}
			}
		}
		e.Schedule(0, func() { exec(0) })
		if err := e.RunUntilIdle(); err != nil {
			t.Fatalf("seed %d: RunUntilIdle: %v", seed, err)
		}

		if len(order) != len(refOrder) {
			t.Fatalf("seed %d: executed %d events, reference executed %d", seed, len(order), len(refOrder))
		}
		for i := range refOrder {
			if order[i] != refOrder[i] {
				t.Fatalf("seed %d: execution order diverges at %d: engine %d, reference %d",
					seed, i, order[i], refOrder[i])
			}
		}
	}
}

type workloadSink struct{ fire func(id int) }

func (s *workloadSink) FireEdge(arg uint64) { s.fire(int(arg)) }

// TestEngineEdgePathValidation mirrors the closure path's contract checks.
func TestEngineEdgePathValidation(t *testing.T) {
	e := NewEngine()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleEdge(nil target) did not panic")
			}
		}()
		e.ScheduleEdge(0, nil, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AfterEdge with negative delay did not panic")
			}
		}()
		e.AfterEdge(-1, &workloadSink{fire: func(int) {}}, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleEdge in the past did not panic")
			}
		}()
		e.Schedule(100, func() {})
		if err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		e.ScheduleEdge(50, &workloadSink{fire: func(int) {}}, 0)
	}()
}

// BenchmarkEngineSchedule measures the raw schedule/execute cycle on a
// near-horizon workload — the wheel's fast path.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j)*50, func() {})
		}
		if err := e.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScheduleEdge measures the allocation-free fast path.
func BenchmarkEngineScheduleEdge(b *testing.B) {
	sink := &workloadSink{fire: func(int) {}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.ScheduleEdge(Time(j)*50, sink, 0)
		}
		if err := e.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTicker measures periodic work (the control-loop shape).
func BenchmarkEngineTicker(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		cancel := e.Ticker(100*Microsecond, func(Time) {})
		if err := e.Run(100 * Millisecond); err != nil {
			b.Fatal(err)
		}
		cancel()
	}
}

// BenchmarkEngineMixedHorizon measures the realistic print shape: dense
// near-horizon pulse edges riding on sparse far-horizon periodics, which
// exercises wheel/heap promotion.
func BenchmarkEngineMixedHorizon(b *testing.B) {
	sink := &workloadSink{fire: func(int) {}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		// Far tier: periodic exports every 100 ms over 1 s.
		for j := Time(1); j <= 10; j++ {
			e.Schedule(j*100*Millisecond, func() {})
		}
		// Near tier: a self-rescheduling 20 kHz pulse train with 2 µs
		// falling edges, like a STEP line at the paper's envelope.
		var rise func()
		n := 0
		rise = func() {
			n++
			e.AfterEdge(2*Microsecond, sink, 0)
			if n < 20_000 {
				e.After(50*Microsecond, rise)
			}
		}
		e.Schedule(0, rise)
		if err := e.Run(1100 * Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}
