package printer

import (
	"fmt"
	"math"
	"sort"
)

// Deposit is one quantum of extruded material: the filament length pushed
// out by a single extruder microstep, tagged with the nozzle position at
// the moment it happened.
type Deposit struct {
	X, Y, Z  float64 // nozzle position, mm (bed frame)
	Filament float64 // filament length deposited, mm
}

// Part accumulates deposits during a print and reconstructs printed-part
// geometry from them: per-layer extents, centroids, and material totals.
// It is the simulated stand-in for the photographs on graph paper in the
// paper's Table I — instead of eyeballing a shifted print, the experiments
// measure the shift.
type Part struct {
	deposits []Deposit
	// layerQuantum buckets Z values into layers; half a typical layer
	// height tolerates Z jitter without merging adjacent layers.
	layerQuantum float64
}

// NewPart returns an empty part with the given Z bucketing quantum
// (typically the layer height).
func NewPart(layerQuantum float64) *Part {
	if layerQuantum <= 0 {
		layerQuantum = 0.2
	}
	return &Part{layerQuantum: layerQuantum}
}

// Add records a deposit.
func (p *Part) Add(d Deposit) { p.deposits = append(p.deposits, d) }

// LayerQuantum returns the Z bucketing quantum, so a serialized part can
// be reconstructed with NewPart(LayerQuantum()) + Add and behave
// identically to the original.
func (p *Part) LayerQuantum() float64 { return p.layerQuantum }

// Deposits returns the raw ledger (borrowed, do not modify).
func (p *Part) Deposits() []Deposit { return p.deposits }

// ReclaimDeposits severs the deposit ledger from the part and returns
// it for buffer recycling; the part is left empty. Only call on a part
// nothing will read again.
func (p *Part) ReclaimDeposits() []Deposit {
	d := p.deposits
	p.deposits = nil
	return d
}

// TotalFilament returns the total filament length deposited, mm.
func (p *Part) TotalFilament() float64 {
	sum := 0.0
	for _, d := range p.deposits {
		sum += d.Filament
	}
	return sum
}

// Layer summarizes the material deposited at one Z level.
type Layer struct {
	Z          float64 // representative Z, mm
	Filament   float64 // filament deposited in the layer, mm
	CentroidX  float64 // filament-weighted centroid
	CentroidY  float64
	MinX, MaxX float64
	MinY, MaxY float64
}

// Width returns the layer's X extent.
func (l Layer) Width() float64 { return l.MaxX - l.MinX }

// Depth returns the layer's Y extent.
func (l Layer) Depth() float64 { return l.MaxY - l.MinY }

// Layers groups deposits into Z buckets and summarizes each, sorted by Z.
func (p *Part) Layers() []Layer {
	if len(p.deposits) == 0 {
		return nil
	}
	type acc struct {
		fil, sx, sy            float64
		minX, maxX, minY, maxY float64
		sz                     float64
		n                      int
	}
	buckets := make(map[int64]*acc)
	for _, d := range p.deposits {
		key := int64(math.Round(d.Z / p.layerQuantum))
		a, ok := buckets[key]
		if !ok {
			a = &acc{minX: d.X, maxX: d.X, minY: d.Y, maxY: d.Y}
			buckets[key] = a
		}
		a.fil += d.Filament
		a.sx += d.X * d.Filament
		a.sy += d.Y * d.Filament
		a.sz += d.Z
		a.n++
		a.minX = math.Min(a.minX, d.X)
		a.maxX = math.Max(a.maxX, d.X)
		a.minY = math.Min(a.minY, d.Y)
		a.maxY = math.Max(a.maxY, d.Y)
	}
	keys := make([]int64, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	layers := make([]Layer, 0, len(keys))
	for _, k := range keys {
		a := buckets[k]
		l := Layer{
			Z:        a.sz / float64(a.n),
			Filament: a.fil,
			MinX:     a.minX, MaxX: a.maxX,
			MinY: a.minY, MaxY: a.maxY,
		}
		if a.fil > 0 {
			l.CentroidX = a.sx / a.fil
			l.CentroidY = a.sy / a.fil
		}
		layers = append(layers, l)
	}
	return layers
}

// Quality summarizes the geometric health of a printed part.
type Quality struct {
	TotalFilament float64 // mm of filament deposited
	LayerCount    int
	MaxLayerShift float64 // largest XY centroid jump between consecutive layers, mm
	MaxZGap       float64 // largest Z gap between consecutive layers, mm
	FootprintW    float64 // X extent of the densest layer, mm
	FootprintD    float64 // Y extent of the densest layer, mm
}

// String renders a one-line summary.
func (q Quality) String() string {
	return fmt.Sprintf("%d layers, %.1f mm filament, max layer shift %.3f mm, max Z gap %.3f mm, footprint %.2f×%.2f mm",
		q.LayerCount, q.TotalFilament, q.MaxLayerShift, q.MaxZGap, q.FootprintW, q.FootprintD)
}

// Filter returns a new Part containing only deposits for which keep
// returns true. The Z bucketing quantum is preserved.
func (p *Part) Filter(keep func(Deposit) bool) *Part {
	out := NewPart(p.layerQuantum)
	for _, d := range p.deposits {
		if keep(d) {
			out.Add(d)
		}
	}
	return out
}

// FocusOnPart returns a copy of the part restricted to the region around
// the actual printed object, discarding prime lines and purge blobs. The
// region is inferred from the topmost substantial layer: prime lines live
// only at first-layer height, so the top layer's footprint (grown by a
// margin) bounds the part.
func (p *Part) FocusOnPart(minLayerFilament float64) *Part {
	layers := p.Layers()
	var top *Layer
	for i := range layers {
		if layers[i].Filament >= minLayerFilament {
			top = &layers[i]
		}
	}
	if top == nil {
		return p
	}
	margin := math.Max(top.Width(), top.Depth())*0.75 + 5
	minX, maxX := top.MinX-margin, top.MaxX+margin
	minY, maxY := top.MinY-margin, top.MaxY+margin
	return p.Filter(func(d Deposit) bool {
		return d.X >= minX && d.X <= maxX && d.Y >= minY && d.Y <= maxY
	})
}

// AssessQuality computes the part-quality summary over the part region
// (see FocusOnPart). minLayerFilament excludes skirt/prime slivers:
// layers with less material than the threshold are ignored for shift and
// gap analysis (but still counted).
func (p *Part) AssessQuality(minLayerFilament float64) Quality {
	focused := p.FocusOnPart(minLayerFilament)
	layers := focused.Layers()
	q := Quality{TotalFilament: p.TotalFilament(), LayerCount: len(layers)}
	var solid []Layer
	for _, l := range layers {
		if l.Filament >= minLayerFilament {
			solid = append(solid, l)
		}
	}
	var densest *Layer
	for i := range solid {
		if densest == nil || solid[i].Filament > densest.Filament {
			densest = &solid[i]
		}
	}
	if densest != nil {
		q.FootprintW = densest.Width()
		q.FootprintD = densest.Depth()
	}
	for i := 1; i < len(solid); i++ {
		dx := solid[i].CentroidX - solid[i-1].CentroidX
		dy := solid[i].CentroidY - solid[i-1].CentroidY
		shift := math.Hypot(dx, dy)
		if shift > q.MaxLayerShift {
			q.MaxLayerShift = shift
		}
		gap := solid[i].Z - solid[i-1].Z
		if gap > q.MaxZGap {
			q.MaxZGap = gap
		}
	}
	return q
}

// Diff compares a suspect part against a golden reference, layer by layer.
type Diff struct {
	FilamentRatio    float64 // suspect/golden total filament
	MaxCentroidShift float64 // largest per-layer centroid displacement, mm
	LayerCountDelta  int     // suspect − golden layer counts
}

// String renders a one-line summary.
func (d Diff) String() string {
	return fmt.Sprintf("filament ratio %.3f, max centroid shift %.3f mm, layer count Δ%d",
		d.FilamentRatio, d.MaxCentroidShift, d.LayerCountDelta)
}

// Compare measures how far the part diverged from golden. Layers are
// matched by index after filtering to solid layers (≥ minLayerFilament).
func (p *Part) Compare(golden *Part, minLayerFilament float64) Diff {
	var diff Diff
	gf := golden.TotalFilament()
	if gf > 0 {
		diff.FilamentRatio = p.TotalFilament() / gf
	}
	mine := solidLayers(p.Layers(), minLayerFilament)
	ref := solidLayers(golden.Layers(), minLayerFilament)
	diff.LayerCountDelta = len(mine) - len(ref)
	n := len(mine)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		shift := math.Hypot(mine[i].CentroidX-ref[i].CentroidX, mine[i].CentroidY-ref[i].CentroidY)
		if shift > diff.MaxCentroidShift {
			diff.MaxCentroidShift = shift
		}
	}
	return diff
}

func solidLayers(layers []Layer, minFilament float64) []Layer {
	out := layers[:0:0]
	for _, l := range layers {
		if l.Filament >= minFilament {
			out = append(out, l)
		}
	}
	return out
}
