// Package printer models the physical plant of the paper's test machine —
// a Prusa i3 MK3S+ driven by RAMPS: carriage kinematics from driver
// microsteps, lumped-capacitance thermodynamics for the hotend and heated
// bed, part-fan cooling, and a filament-deposition ledger from which the
// printed part is reconstructed and judged.
//
// Table I evaluates each trojan by its *physical* outcome (layer shifts,
// under-extrusion, delamination, overheating). This package is what makes
// those outcomes measurable in simulation.
package printer

import (
	"fmt"

	"offramps/internal/sim"
)

// ThermalConfig parameterizes a first-order lumped thermal model:
//
//	C·dT/dt = P·u − k·(T−T_amb) − k_fan·duty·(T−T_amb)
//
// where u ∈ {0,1} is the heater MOSFET state. First-order dynamics fit
// measured hotend/bed step responses to within a few °C, which is all the
// thermal trojans (T6/T7) need: what matters is that full duty drives the
// element far past its working range within tens of seconds, and that
// losing power drops it below target on a time constant of minutes.
type ThermalConfig struct {
	Power       float64 // heater power, W
	Capacity    float64 // heat capacity, J/K
	LossCoeff   float64 // passive loss, W/K
	FanLoss     float64 // extra loss at 100% part-fan duty, W/K
	MaxSafe     float64 // working-specification ceiling, °C
	InitialTemp float64 // starting temperature, °C
}

// HotendThermalDefaults returns an E3D-V6-class hotend: 40 W cartridge,
// reaches 210 °C from ambient in ≈70 s, unbounded equilibrium ≈390 °C —
// which is why trojan T7 (forced 100 % duty) is destructive.
func HotendThermalDefaults() ThermalConfig {
	return ThermalConfig{
		Power:       40,
		Capacity:    9,
		LossCoeff:   0.11,
		FanLoss:     0.02,
		MaxSafe:     260,
		InitialTemp: 25,
	}
}

// BedThermalDefaults returns a 24 V MK52-class bed: 220 W, reaches 60 °C
// in ≈60 s.
func BedThermalDefaults() ThermalConfig {
	return ThermalConfig{
		Power:       220,
		Capacity:    310,
		LossCoeff:   1.9,
		FanLoss:     0,
		MaxSafe:     120,
		InitialTemp: 25,
	}
}

// Validate reports the first invalid parameter, or nil.
func (c ThermalConfig) Validate() error {
	switch {
	case c.Power <= 0:
		return fmt.Errorf("printer: thermal Power must be positive, got %v", c.Power)
	case c.Capacity <= 0:
		return fmt.Errorf("printer: thermal Capacity must be positive, got %v", c.Capacity)
	case c.LossCoeff <= 0:
		return fmt.Errorf("printer: thermal LossCoeff must be positive, got %v", c.LossCoeff)
	case c.FanLoss < 0:
		return fmt.Errorf("printer: thermal FanLoss must be non-negative, got %v", c.FanLoss)
	}
	return nil
}

// TempSample is one point of a recorded temperature history.
type TempSample struct {
	At   sim.Time
	Temp float64
}

// thermalBody integrates one ThermalConfig element.
type thermalBody struct {
	cfg     ThermalConfig
	ambient float64
	temp    float64
	peak    float64
	history []TempSample
}

func newThermalBody(cfg ThermalConfig, ambient float64) *thermalBody {
	return &thermalBody{cfg: cfg, ambient: ambient, temp: cfg.InitialTemp, peak: cfg.InitialTemp}
}

// step advances the model by dt with average heater duty u in [0,1] and
// fan duty fanDuty.
func (b *thermalBody) step(at sim.Time, dt float64, u, fanDuty float64) {
	loss := b.cfg.LossCoeff + b.cfg.FanLoss*fanDuty
	dTdt := (b.cfg.Power*u - loss*(b.temp-b.ambient)) / b.cfg.Capacity
	b.temp += dTdt * dt
	if b.temp < b.ambient && dTdt < 0 {
		b.temp = b.ambient // cannot cool below ambient passively
	}
	if b.temp > b.peak {
		b.peak = b.temp
	}
	b.history = append(b.history, TempSample{At: at, Temp: b.temp})
}

// exceededSafe reports whether the element ever passed its working spec.
func (b *thermalBody) exceededSafe() bool { return b.peak > b.cfg.MaxSafe }
