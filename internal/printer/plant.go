package printer

import (
	"fmt"

	"offramps/internal/ramps"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// Config parameterizes the physical machine.
type Config struct {
	// StepsPerMM is the full microstepped resolution per axis. Defaults
	// match a RepRap-configured Marlin on RAMPS with A4988s at 1/16:
	// GT2 belts on X/Y, M5 leadscrew on Z, geared extruder.
	StepsPerMM map[signal.Axis]float64
	// TravelMax is the usable axis length in mm (X, Y, Z).
	TravelMax map[signal.Axis]float64
	// StartPos is the carriage position at power-on, mm from the MIN
	// endstops. The paper notes the steps-to-home count depends on this
	// arbitrary position — experiments can randomize it.
	StartPos map[signal.Axis]float64
	// Ambient temperature, °C.
	Ambient float64
	// Hotend and Bed thermal parameters.
	Hotend ThermalConfig
	Bed    ThermalConfig
	// ThermalTick is the integration step for the thermal models.
	ThermalTick sim.Time
	// LayerQuantum buckets deposition Z values into layers.
	LayerQuantum float64
	// FanTau is the fan inertia time constant for the duty meter.
	FanTau sim.Time
	// DepositBuffer, when non-nil, is a recycled deposit ledger (length
	// zero, capacity retained) the plant's Part records into instead of
	// growing a fresh one — donated by a pooled testbed core. Ownership
	// transfers to the Part; the donor must not reuse the slice while
	// the Part is live.
	DepositBuffer []Deposit
}

// DefaultConfig returns the simulated Prusa-on-RAMPS used throughout the
// experiments.
func DefaultConfig() Config {
	return Config{
		StepsPerMM: map[signal.Axis]float64{
			signal.AxisX: 80, signal.AxisY: 80, signal.AxisZ: 400, signal.AxisE: 96,
		},
		TravelMax: map[signal.Axis]float64{
			signal.AxisX: 250, signal.AxisY: 210, signal.AxisZ: 210,
		},
		StartPos: map[signal.Axis]float64{
			signal.AxisX: 55, signal.AxisY: 40, signal.AxisZ: 8,
		},
		Ambient:      25,
		Hotend:       HotendThermalDefaults(),
		Bed:          BedThermalDefaults(),
		ThermalTick:  100 * sim.Millisecond,
		LayerQuantum: 0.2,
		FanTau:       500 * sim.Millisecond,
	}
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	for _, a := range signal.Axes {
		if c.StepsPerMM[a] <= 0 {
			return fmt.Errorf("printer: StepsPerMM[%v] must be positive", a)
		}
	}
	for _, a := range []signal.Axis{signal.AxisX, signal.AxisY, signal.AxisZ} {
		if c.TravelMax[a] <= 0 {
			return fmt.Errorf("printer: TravelMax[%v] must be positive", a)
		}
		if c.StartPos[a] < 0 || c.StartPos[a] > c.TravelMax[a] {
			return fmt.Errorf("printer: StartPos[%v]=%v outside travel 0..%v",
				a, c.StartPos[a], c.TravelMax[a])
		}
	}
	if c.ThermalTick <= 0 {
		return fmt.Errorf("printer: ThermalTick must be positive")
	}
	if err := c.Hotend.Validate(); err != nil {
		return err
	}
	if err := c.Bed.Validate(); err != nil {
		return err
	}
	return nil
}

// axisState tracks one mechanical axis.
type axisState struct {
	posMM      float64 // carriage position, mm from MIN hard stop
	stepsPerMM float64
	min, max   float64 // clamp range, mm
	netSteps   int64   // net microsteps delivered (diagnostics)
	lostLow    uint64  // steps lost against the MIN hard stop
	lostHigh   uint64  // steps lost against the MAX hard stop
}

// Plant is the running physical machine. It attaches RAMPS actuators to
// the board-side bus and integrates motion, heat, and deposition.
type Plant struct {
	cfg    Config
	engine *sim.Engine
	bus    *signal.Bus

	axes     map[signal.Axis]*axisState
	drivers  map[signal.Axis]*ramps.Driver
	endstops map[signal.Axis]*ramps.Endstop

	hotendMosfet *ramps.Mosfet
	bedMosfet    *ramps.Mosfet
	hotendDuty   *ramps.DutyIntegrator
	bedDuty      *ramps.DutyIntegrator
	fanMeter     *ramps.DutyMeter
	thermistor   ramps.Thermistor

	hotend *thermalBody
	bed    *thermalBody

	part *Part
	// retractDebt is filament pulled back into the nozzle; positive E
	// steps pay it down before depositing again.
	retractDebt float64
	// peakFanDuty is the highest smoothed fan duty observed at a thermal
	// tick — how much cooling the part actually received at its best.
	peakFanDuty float64

	stopThermal func()
}

// NewPlant builds the machine on the RAMPS-side bus and starts its thermal
// integration ticker.
//
// The endstop trigger convention: an axis's MIN switch is pressed whenever
// the carriage sits at or below 0 mm. The hard stop is a short distance
// further; steps commanded into the hard stop are lost (the real motor
// skips), which is what makes homing idempotent.
func NewPlant(engine *sim.Engine, bus *signal.Bus, cfg Config) (*Plant, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Plant{
		cfg:        cfg,
		engine:     engine,
		bus:        bus,
		axes:       make(map[signal.Axis]*axisState, 4),
		drivers:    make(map[signal.Axis]*ramps.Driver, 4),
		endstops:   make(map[signal.Axis]*ramps.Endstop, 3),
		thermistor: ramps.StandardThermistor(),
		part:       NewPart(cfg.LayerQuantum),
	}
	if cfg.DepositBuffer != nil {
		p.part.deposits = cfg.DepositBuffer[:0]
	}

	const hardStopBelow = 0.5 // mm of crush travel below the endstop
	for _, a := range signal.Axes {
		st := &axisState{stepsPerMM: cfg.StepsPerMM[a]}
		if a == signal.AxisE {
			// Filament axis: unbounded in both directions.
			st.min, st.max = -1e12, 1e12
		} else {
			st.min, st.max = -hardStopBelow, cfg.TravelMax[a]
			st.posMM = cfg.StartPos[a]
		}
		p.axes[a] = st

		a := a
		d, err := ramps.NewDriver(bus, a, ramps.MicrostepSixteenth, func(at sim.Time, delta int) {
			p.onStep(a, at, delta)
		})
		if err != nil {
			return nil, err
		}
		p.drivers[a] = d
	}
	for _, a := range []signal.Axis{signal.AxisX, signal.AxisY, signal.AxisZ} {
		p.endstops[a] = ramps.NewEndstop(bus, a)
		p.refreshEndstop(a)
	}

	p.hotendMosfet = ramps.NewMosfet(bus, signal.PinHotend)
	p.bedMosfet = ramps.NewMosfet(bus, signal.PinBed)
	p.hotendDuty = ramps.NewDutyIntegrator(bus, signal.PinHotend)
	p.bedDuty = ramps.NewDutyIntegrator(bus, signal.PinBed)
	p.fanMeter = ramps.NewDutyMeter(bus, signal.PinFan, cfg.FanTau)
	p.hotend = newThermalBody(cfg.Hotend, cfg.Ambient)
	p.bed = newThermalBody(cfg.Bed, cfg.Ambient)

	// Publish initial thermistor readings so the firmware's first ADC
	// sample is sane, then integrate on the ticker.
	p.publishTemps()
	p.stopThermal = engine.Ticker(cfg.ThermalTick, p.thermalTick)
	return p, nil
}

// onStep applies one microstep to an axis and runs deposition.
func (p *Plant) onStep(a signal.Axis, _ sim.Time, delta int) {
	st := p.axes[a]
	moved := float64(delta) / st.stepsPerMM
	next := st.posMM + moved
	if next < st.min {
		st.lostLow++
		next = st.min
	} else if next > st.max {
		st.lostHigh++
		next = st.max
	}
	st.posMM = next
	st.netSteps += int64(delta)

	if a == signal.AxisE {
		p.deposit(moved)
	}
	p.refreshEndstop(a)
}

// deposit handles extruder motion: retraction builds debt, forward motion
// pays it down and then lays material at the current nozzle position.
func (p *Plant) deposit(filament float64) {
	if filament < 0 {
		p.retractDebt -= filament // debt grows
		return
	}
	if p.retractDebt > 0 {
		if filament <= p.retractDebt {
			p.retractDebt -= filament
			return
		}
		filament -= p.retractDebt
		p.retractDebt = 0
	}
	if filament <= 0 {
		return
	}
	p.part.Add(Deposit{
		X:        p.axes[signal.AxisX].posMM,
		Y:        p.axes[signal.AxisY].posMM,
		Z:        p.axes[signal.AxisZ].posMM,
		Filament: filament,
	})
}

// refreshEndstop drives the axis's MIN switch from the carriage position.
func (p *Plant) refreshEndstop(a signal.Axis) {
	es, ok := p.endstops[a]
	if !ok {
		return
	}
	es.SetPressed(p.axes[a].posMM <= 0)
}

// thermalTick integrates both heater bodies and refreshes the thermistor
// outputs.
func (p *Plant) thermalTick(at sim.Time) {
	dt := p.cfg.ThermalTick.Seconds()
	fan := p.fanMeter.Duty(at)
	if fan > p.peakFanDuty {
		p.peakFanDuty = fan
	}
	p.hotend.step(at, dt, p.hotendDuty.Window(at), fan)
	p.bed.step(at, dt, p.bedDuty.Window(at), 0)
	p.publishTemps()
}

func (p *Plant) publishTemps() {
	p.bus.ThermHotend.Set(p.thermistor.Voltage(p.hotend.temp))
	p.bus.ThermBed.Set(p.thermistor.Voltage(p.bed.temp))
}

// Stop cancels the thermal ticker (for tests that want the event queue to
// drain).
func (p *Plant) Stop() { p.stopThermal() }

// Position reports the carriage position of an axis in mm.
func (p *Plant) Position(a signal.Axis) float64 { return p.axes[a].posMM }

// NetSteps reports the net microsteps delivered to an axis.
func (p *Plant) NetSteps(a signal.Axis) int64 { return p.axes[a].netSteps }

// LostSteps reports steps lost against the hard stops (low, high).
func (p *Plant) LostSteps(a signal.Axis) (low, high uint64) {
	return p.axes[a].lostLow, p.axes[a].lostHigh
}

// Driver exposes the axis driver (test instrumentation).
func (p *Plant) Driver(a signal.Axis) *ramps.Driver { return p.drivers[a] }

// HotendTemp reports the current hotend temperature, °C.
func (p *Plant) HotendTemp() float64 { return p.hotend.temp }

// BedTemp reports the current bed temperature, °C.
func (p *Plant) BedTemp() float64 { return p.bed.temp }

// PeakHotendTemp reports the maximum hotend temperature reached.
func (p *Plant) PeakHotendTemp() float64 { return p.hotend.peak }

// PeakBedTemp reports the maximum bed temperature reached.
func (p *Plant) PeakBedTemp() float64 { return p.bed.peak }

// HotendExceededSafe reports whether the hotend passed its working spec —
// the T7 success criterion.
func (p *Plant) HotendExceededSafe() bool { return p.hotend.exceededSafe() }

// HotendHistory returns the recorded hotend temperature samples.
func (p *Plant) HotendHistory() []TempSample { return p.hotend.history }

// BedHistory returns the recorded bed temperature samples.
func (p *Plant) BedHistory() []TempSample { return p.bed.history }

// FanDuty reports the smoothed part-fan duty at the current time.
func (p *Plant) FanDuty() float64 { return p.fanMeter.Duty(p.engine.Now()) }

// PeakFanDuty reports the highest smoothed fan duty seen during the run.
func (p *Plant) PeakFanDuty() float64 { return p.peakFanDuty }

// Part returns the deposition ledger.
func (p *Plant) Part() *Part { return p.part }

// Thermistor returns the NTC model used for the feedback channels.
func (p *Plant) Thermistor() ramps.Thermistor { return p.thermistor }
