package printer

import (
	"math"
	"testing"

	"offramps/internal/signal"
	"offramps/internal/sim"
)

func newTestPlant(t *testing.T) (*sim.Engine, *signal.Bus, *Plant) {
	t.Helper()
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	p, err := NewPlant(e, bus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, bus, p
}

// stepAxis pulses the STEP line n times with the given DIR level.
func stepAxis(t *testing.T, e *sim.Engine, bus *signal.Bus, a signal.Axis, n int, dir signal.Level) {
	t.Helper()
	bus.Enable(a).Set(signal.Low)
	bus.Dir(a).Set(dir)
	for i := 0; i < n; i++ {
		at := e.Now() + sim.Time(i+1)*50*sim.Microsecond
		step := bus.Step(a)
		e.Schedule(at, func() { step.Set(signal.High) })
		e.Schedule(at+2*sim.Microsecond, func() { step.Set(signal.Low) })
	}
	if err := e.Run(e.Now() + sim.Time(n+2)*50*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
}

func TestPlantAxisMotion(t *testing.T) {
	e, bus, p := newTestPlant(t)
	start := p.Position(signal.AxisX)
	stepAxis(t, e, bus, signal.AxisX, 160, signal.Low) // 160 steps = 2 mm at 80/mm
	if got := p.Position(signal.AxisX); math.Abs(got-(start+2)) > 1e-9 {
		t.Errorf("X = %v, want %v", got, start+2)
	}
	stepAxis(t, e, bus, signal.AxisX, 80, signal.High) // back 1 mm
	if got := p.Position(signal.AxisX); math.Abs(got-(start+1)) > 1e-9 {
		t.Errorf("X after reverse = %v, want %v", got, start+1)
	}
	if p.NetSteps(signal.AxisX) != 80 {
		t.Errorf("NetSteps = %d, want 80", p.NetSteps(signal.AxisX))
	}
}

func TestPlantEndstopTriggersAtZero(t *testing.T) {
	e, bus, p := newTestPlant(t)
	cfg := DefaultConfig()
	startSteps := int(cfg.StartPos[signal.AxisX] * cfg.StepsPerMM[signal.AxisX])
	if bus.MinEndstop(signal.AxisX).Level() != signal.Low {
		t.Fatal("endstop pressed at start position")
	}
	stepAxis(t, e, bus, signal.AxisX, startSteps, signal.High)
	if got := p.Position(signal.AxisX); math.Abs(got) > 1e-9 {
		t.Errorf("X = %v, want 0", got)
	}
	if bus.MinEndstop(signal.AxisX).Level() != signal.High {
		t.Error("endstop not pressed at 0")
	}
	// Back off: endstop releases.
	stepAxis(t, e, bus, signal.AxisX, 100, signal.Low)
	if bus.MinEndstop(signal.AxisX).Level() != signal.Low {
		t.Error("endstop not released after backing off")
	}
}

func TestPlantHardStopLosesSteps(t *testing.T) {
	e, bus, p := newTestPlant(t)
	cfg := DefaultConfig()
	startSteps := int(cfg.StartPos[signal.AxisX] * cfg.StepsPerMM[signal.AxisX])
	// Drive well past the hard stop.
	stepAxis(t, e, bus, signal.AxisX, startSteps+200, signal.High)
	if got := p.Position(signal.AxisX); got != -0.5 {
		t.Errorf("X = %v, want clamped at -0.5", got)
	}
	low, _ := p.LostSteps(signal.AxisX)
	if low == 0 {
		t.Error("no steps lost against the hard stop")
	}
	// Recovery: stepping positive still works.
	stepAxis(t, e, bus, signal.AxisX, 80, signal.Low)
	if got := p.Position(signal.AxisX); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("X after recovery = %v, want 0.5", got)
	}
}

func TestPlantDepositionDuringExtrusion(t *testing.T) {
	e, bus, p := newTestPlant(t)
	stepAxis(t, e, bus, signal.AxisE, 96, signal.Low) // 1 mm of filament
	got := p.Part().TotalFilament()
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("deposited %v mm, want 1", got)
	}
	d := p.Part().Deposits()[0]
	cfg := DefaultConfig()
	if d.X != cfg.StartPos[signal.AxisX] || d.Z != cfg.StartPos[signal.AxisZ] {
		t.Errorf("deposit at %+v, want start position", d)
	}
}

func TestPlantRetractionDebt(t *testing.T) {
	e, bus, p := newTestPlant(t)
	// Retract 0.5 mm: no deposition.
	stepAxis(t, e, bus, signal.AxisE, 48, signal.High)
	if p.Part().TotalFilament() != 0 {
		t.Fatal("retraction deposited material")
	}
	// Unretract 0.5 mm: pays the debt, still no deposition.
	stepAxis(t, e, bus, signal.AxisE, 48, signal.Low)
	if p.Part().TotalFilament() != 0 {
		t.Fatalf("unretract deposited %v mm", p.Part().TotalFilament())
	}
	// Further extrusion deposits.
	stepAxis(t, e, bus, signal.AxisE, 96, signal.Low)
	if got := p.Part().TotalFilament(); math.Abs(got-1) > 1e-9 {
		t.Errorf("post-debt deposit = %v, want 1", got)
	}
}

func TestPlantHeaterDynamics(t *testing.T) {
	e, bus, p := newTestPlant(t)
	if math.Abs(p.HotendTemp()-25) > 1e-9 {
		t.Fatalf("initial temp %v", p.HotendTemp())
	}
	bus.Line(signal.PinHotend).Set(signal.High)
	if err := e.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	after60 := p.HotendTemp()
	if after60 < 150 || after60 > 280 {
		t.Errorf("hotend after 60 s full power = %v°C, want mid-heatup", after60)
	}
	bus.Line(signal.PinHotend).Set(signal.Low)
	if err := e.Run(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if p.HotendTemp() >= after60 {
		t.Error("hotend did not cool after power off")
	}
	if p.PeakHotendTemp() < after60 {
		t.Error("peak tracking broken")
	}
}

func TestPlantHeaterRunawayExceedsSafe(t *testing.T) {
	e, bus, p := newTestPlant(t)
	bus.Line(signal.PinHotend).Set(signal.High)
	if err := e.Run(200 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !p.HotendExceededSafe() {
		t.Errorf("hotend at %v°C never exceeded safe %v°C under forced duty",
			p.HotendTemp(), DefaultConfig().Hotend.MaxSafe)
	}
}

func TestPlantThermistorFeedback(t *testing.T) {
	e, bus, p := newTestPlant(t)
	v0 := bus.ThermHotend.Value()
	if v0 <= 0 || v0 >= 5 {
		t.Fatalf("initial thermistor voltage %v", v0)
	}
	back := p.Thermistor().Temperature(v0)
	if math.Abs(back-25) > 0.5 {
		t.Errorf("initial reading decodes to %v°C, want 25", back)
	}
	bus.Line(signal.PinHotend).Set(signal.High)
	if err := e.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	hot := p.Thermistor().Temperature(bus.ThermHotend.Value())
	if math.Abs(hot-p.HotendTemp()) > 1 {
		t.Errorf("thermistor decodes %v, plant at %v", hot, p.HotendTemp())
	}
}

func TestPlantFanCoolingEffect(t *testing.T) {
	// With the fan on, equilibrium temperature under constant power must
	// be lower.
	e1, bus1, p1 := newTestPlant(t)
	bus1.Line(signal.PinHotend).Set(signal.High)
	if err := e1.Run(300 * sim.Second); err != nil {
		t.Fatal(err)
	}

	e2, bus2, p2 := newTestPlant(t)
	bus2.Line(signal.PinHotend).Set(signal.High)
	bus2.Line(signal.PinFan).Set(signal.High)
	if err := e2.Run(300 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if p2.HotendTemp() >= p1.HotendTemp() {
		t.Errorf("fan-cooled %v >= uncooled %v", p2.HotendTemp(), p1.HotendTemp())
	}
	if p2.FanDuty() < 0.95 {
		t.Errorf("fan duty = %v, want ≈1", p2.FanDuty())
	}
}

func TestPlantBedHeating(t *testing.T) {
	e, bus, p := newTestPlant(t)
	bus.Line(signal.PinBed).Set(signal.High)
	if err := e.Run(90 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if p.BedTemp() < 55 {
		t.Errorf("bed after 90 s = %v°C, want ≥55", p.BedTemp())
	}
	if p.PeakBedTemp() < p.BedTemp()-1 {
		t.Error("bed peak tracking broken")
	}
	if len(p.BedHistory()) == 0 || len(p.HotendHistory()) == 0 {
		t.Error("temperature history not recorded")
	}
}

func TestPlantConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	bad := DefaultConfig()
	bad.StepsPerMM[signal.AxisX] = 0
	if _, err := NewPlant(e, bus, bad); err == nil {
		t.Error("zero steps/mm accepted")
	}
	bad = DefaultConfig()
	bad.StartPos[signal.AxisY] = 9999
	if _, err := NewPlant(e, bus, bad); err == nil {
		t.Error("start position beyond travel accepted")
	}
	bad = DefaultConfig()
	bad.Hotend.Capacity = 0
	if _, err := NewPlant(e, bus, bad); err == nil {
		t.Error("zero thermal capacity accepted")
	}
	bad = DefaultConfig()
	bad.ThermalTick = 0
	if _, err := NewPlant(e, bus, bad); err == nil {
		t.Error("zero thermal tick accepted")
	}
}

func TestThermalConfigValidate(t *testing.T) {
	good := HotendThermalDefaults()
	if err := good.Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := good
	bad.Power = -1
	if bad.Validate() == nil {
		t.Error("negative power accepted")
	}
	bad = good
	bad.LossCoeff = 0
	if bad.Validate() == nil {
		t.Error("zero loss accepted")
	}
	bad = good
	bad.FanLoss = -1
	if bad.Validate() == nil {
		t.Error("negative fan loss accepted")
	}
}
