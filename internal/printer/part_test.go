package printer

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// depositLayer adds a square ring of deposits at z with the given centre
// offset, total filament fil.
func depositLayer(p *Part, z, cx, cy, size, fil float64) {
	const n = 40
	per := fil / n
	for i := 0; i < n; i++ {
		frac := float64(i) / n * 4
		var x, y float64
		switch {
		case frac < 1:
			x, y = -size/2+size*frac, -size/2
		case frac < 2:
			x, y = size/2, -size/2+size*(frac-1)
		case frac < 3:
			x, y = size/2-size*(frac-2), size/2
		default:
			x, y = -size/2, size/2-size*(frac-3)
		}
		p.Add(Deposit{X: cx + x, Y: cy + y, Z: z, Filament: per})
	}
}

func TestPartLayersGrouping(t *testing.T) {
	p := NewPart(0.2)
	depositLayer(p, 0.2, 0, 0, 10, 5)
	depositLayer(p, 0.4, 0, 0, 10, 5)
	depositLayer(p, 0.6, 0, 0, 10, 5)
	layers := p.Layers()
	if len(layers) != 3 {
		t.Fatalf("got %d layers, want 3", len(layers))
	}
	for i, l := range layers {
		if math.Abs(l.Filament-5) > 1e-9 {
			t.Errorf("layer %d filament %v", i, l.Filament)
		}
		if math.Abs(l.CentroidX) > 1e-9 || math.Abs(l.CentroidY) > 1e-9 {
			t.Errorf("layer %d centroid (%v,%v), want origin", i, l.CentroidX, l.CentroidY)
		}
		if math.Abs(l.Width()-10) > 1e-9 || math.Abs(l.Depth()-10) > 1e-9 {
			t.Errorf("layer %d extent %vx%v", i, l.Width(), l.Depth())
		}
	}
	if p.TotalFilament() != 15 {
		t.Errorf("TotalFilament = %v", p.TotalFilament())
	}
}

func TestPartEmptyLayers(t *testing.T) {
	p := NewPart(0.2)
	if p.Layers() != nil {
		t.Error("empty part has layers")
	}
	if q := p.AssessQuality(0.1); q.LayerCount != 0 || q.TotalFilament != 0 {
		t.Errorf("empty quality = %+v", q)
	}
}

func TestPartQualityDetectsLayerShift(t *testing.T) {
	clean := NewPart(0.2)
	for i := 0; i < 5; i++ {
		depositLayer(clean, 0.2*float64(i+1), 0, 0, 10, 5)
	}
	q := clean.AssessQuality(0.5)
	if q.MaxLayerShift > 0.001 {
		t.Errorf("clean part shift = %v", q.MaxLayerShift)
	}

	shifted := NewPart(0.2)
	for i := 0; i < 5; i++ {
		cx := 0.0
		if i >= 3 {
			cx = 2.0 // layers 3+ shifted 2 mm in X — a T4-style wobble
		}
		depositLayer(shifted, 0.2*float64(i+1), cx, 0, 10, 5)
	}
	q = shifted.AssessQuality(0.5)
	if math.Abs(q.MaxLayerShift-2) > 1e-6 {
		t.Errorf("shifted part MaxLayerShift = %v, want 2", q.MaxLayerShift)
	}
}

func TestPartQualityDetectsZGap(t *testing.T) {
	p := NewPart(0.2)
	depositLayer(p, 0.2, 0, 0, 10, 5)
	depositLayer(p, 0.4, 0, 0, 10, 5)
	depositLayer(p, 1.4, 0, 0, 10, 5) // 1 mm gap — T5 delamination
	q := p.AssessQuality(0.5)
	if math.Abs(q.MaxZGap-1.0) > 1e-6 {
		t.Errorf("MaxZGap = %v, want 1.0", q.MaxZGap)
	}
}

func TestPartQualityIgnoresSlivers(t *testing.T) {
	p := NewPart(0.2)
	depositLayer(p, 0.2, 0, 0, 10, 5)
	depositLayer(p, 0.4, 50, 50, 1, 0.01) // prime-line sliver far away
	q := p.AssessQuality(0.5)
	if q.MaxLayerShift != 0 {
		t.Errorf("sliver affected shift: %v", q.MaxLayerShift)
	}
	// The far-away sliver is outside the part region entirely.
	if q.LayerCount != 1 {
		t.Errorf("LayerCount = %d, want 1 (sliver excluded from part region)", q.LayerCount)
	}
}

func TestPartCompare(t *testing.T) {
	golden := NewPart(0.2)
	suspect := NewPart(0.2)
	for i := 0; i < 4; i++ {
		z := 0.2 * float64(i+1)
		depositLayer(golden, z, 0, 0, 10, 5)
		depositLayer(suspect, z, 0.5, 0, 10, 2.5) // half flow, 0.5 mm off
	}
	d := suspect.Compare(golden, 0.5)
	if math.Abs(d.FilamentRatio-0.5) > 1e-9 {
		t.Errorf("FilamentRatio = %v, want 0.5", d.FilamentRatio)
	}
	if math.Abs(d.MaxCentroidShift-0.5) > 1e-9 {
		t.Errorf("MaxCentroidShift = %v, want 0.5", d.MaxCentroidShift)
	}
	if d.LayerCountDelta != 0 {
		t.Errorf("LayerCountDelta = %d", d.LayerCountDelta)
	}
	if !strings.Contains(d.String(), "filament ratio") {
		t.Errorf("Diff.String() = %q", d.String())
	}
}

func TestPartCompareLayerCountDelta(t *testing.T) {
	golden := NewPart(0.2)
	suspect := NewPart(0.2)
	for i := 0; i < 4; i++ {
		depositLayer(golden, 0.2*float64(i+1), 0, 0, 10, 5)
	}
	for i := 0; i < 2; i++ {
		depositLayer(suspect, 0.2*float64(i+1), 0, 0, 10, 5)
	}
	d := suspect.Compare(golden, 0.5)
	if d.LayerCountDelta != -2 {
		t.Errorf("LayerCountDelta = %d, want -2", d.LayerCountDelta)
	}
}

func TestPartQualityString(t *testing.T) {
	p := NewPart(0.2)
	depositLayer(p, 0.2, 0, 0, 10, 5)
	s := p.AssessQuality(0.5).String()
	if !strings.Contains(s, "layers") || !strings.Contains(s, "filament") {
		t.Errorf("Quality.String() = %q", s)
	}
}

func TestNewPartZeroQuantumDefaults(t *testing.T) {
	p := NewPart(0)
	if p.layerQuantum != 0.2 {
		t.Errorf("layerQuantum = %v, want default 0.2", p.layerQuantum)
	}
}

// Property: total filament equals the sum over layers, for arbitrary
// deposits.
func TestPartFilamentConservationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		p := NewPart(0.2)
		var want float64
		for i, r := range raw {
			fil := float64(r%1000) / 1000
			want += fil
			p.Add(Deposit{
				X: float64(i % 30), Y: float64(i % 17), Z: 0.2 * float64(i%10),
				Filament: fil,
			})
		}
		var got float64
		for _, l := range p.Layers() {
			got += l.Filament
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
