package farm

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"
)

// TestHeartbeatInterval pins the clamp. The old formula, max(TTL/3, 1s),
// let the floor exceed the whole TTL: a 1.2s lease heartbeat every 1s,
// one hiccup from expiry, and anything under 1s was dead on arrival.
func TestHeartbeatInterval(t *testing.T) {
	for _, tc := range []struct{ ttl, want time.Duration }{
		{0, time.Second},
		{-time.Second, time.Second},
		{30 * time.Second, 10 * time.Second},
		{3 * time.Second, time.Second},
		{1200 * time.Millisecond, 400 * time.Millisecond}, // old clamp: 1s — most of the TTL
		{150 * time.Millisecond, 50 * time.Millisecond},
		{120 * time.Millisecond, 50 * time.Millisecond}, // floor engages…
		{60 * time.Millisecond, 30 * time.Millisecond},  // …but never past TTL/2
	} {
		if got := HeartbeatInterval(tc.ttl); got != tc.want {
			t.Errorf("HeartbeatInterval(%v) = %v, want %v", tc.ttl, got, tc.want)
		}
	}
	for _, ttl := range []time.Duration{time.Millisecond, 50 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second, time.Minute} {
		if got := HeartbeatInterval(ttl); got > ttl/2 {
			t.Errorf("HeartbeatInterval(%v) = %v exceeds half the TTL — a single missed beat loses the lease", ttl, got)
		}
	}
}

// TestFarmShortTTLSweep is the end-to-end regression: under a TTL
// below the old 1s heartbeat floor, a healthy worker must keep every
// lease alive. The old max(TTL/3, 1s) cadence would fire its first
// beat after this 900ms window had already closed on any scenario
// running longer than the TTL (which -race guarantees); the fixed
// clamp beats every 300ms. MaxStrikes of 1 turns any silent expiry
// into a quarantine, so the sweep finishing cleanly proves the cadence
// beat the window every time.
func TestFarmShortTTLSweep(t *testing.T) {
	want := localDoc(t, loadFarmSuite(t, 1))
	co, err := NewCoordinator(loadFarmSuite(t, 1), Config{TTL: 900 * time.Millisecond, MaxStrikes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	runWorkers(t, co, srv.URL, 2)
	if qs := co.Quarantined(); len(qs) != 0 {
		t.Fatalf("healthy workers lost leases under a short TTL: %+v", qs)
	}
	if got := stitchDoc(t, co); !bytes.Equal(got, want) {
		t.Error("short-TTL sweep differs from the local run")
	}
}
