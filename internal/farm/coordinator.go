package farm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"offramps"
	"offramps/internal/farm/faults"
	"offramps/internal/sched"
)

// Config tunes a coordinator. The zero value is usable: 30s TTL, no
// journal, no quarantine, OS-managed journal flushing.
type Config struct {
	// TTL is the per-lease heartbeat window (0 = 30s).
	TTL time.Duration
	// Journal, when non-empty, persists (and resumes) the sweep.
	Journal string
	// SyncEvery fsyncs the journal after every Nth accepted completion
	// (1 = every completion; ≤ 0 = leave flushing to the OS).
	SyncEvery int
	// MaxStrikes quarantines a scenario once this many of its leases
	// expired or failed (≤ 0 = never quarantine).
	MaxStrikes int
	// Clock is the time source for lease expiry (nil = faults.Wall{});
	// injectable so chaos runs control when leases die.
	Clock faults.Clock
	// Progressive, when non-nil, feeds the lease queue from the
	// progressive scheduler instead of naive suite order: scenarios are
	// dealt in rounds (coverage, then boundary-first refinement) and
	// retired scenarios become journaled skip rows. The queue is
	// reordered, never re-keyed, so journals, resume, quarantine, and
	// stitching work unchanged — but a resumed sweep must be given the
	// same Progressive settings it started with, or the re-derived
	// schedule will not match the journal.
	Progressive *Progressive
}

// Progressive configures scheduler-fed execution: the grid layout
// (from offramps.GridSpec.ExpandLayout) and the budget / early-stop
// knobs.
type Progressive struct {
	Layout *sched.Grid
	Sched  sched.Config
}

func (cfg Config) ttl() time.Duration {
	if cfg.TTL > 0 {
		return cfg.TTL
	}
	return 30 * time.Second
}

func (cfg Config) clock() faults.Clock {
	if cfg.Clock != nil {
		return cfg.Clock
	}
	return faults.Wall{}
}

// Coordinator owns one sweep: the expanded suite, the lease queue over
// its scenario names, the collected raw rows, and (optionally) a JSONL
// journal that makes the sweep resumable. It is deliberately
// simulation-free — all printing happens in workers — so a coordinator
// for a million-scenario sweep is a queue of names and a file of rows.
//
// Resumability: every accepted completion appends its rows to the
// journal (comparisons first, then the scenario row) before the worker
// sees the ack, fsynced on the configured cadence. A restarted
// coordinator reads the journal back through the resume index —
// tolerating the torn trailing line a crash leaves — compacts the file
// (atomically, temp-file + rename) if the crash left a torn tail or
// duplicate rows, and enqueues only the complement, so the sweep
// continues instead of restarting. The journal is the same row format
// `suite -jsonl` writes, so `suite -merge` can also stitch it directly.
//
// Degradation: a scenario failed or abandoned by MaxStrikes distinct
// leases is quarantined — parked, surfaced in /v1/status, and reported
// as an error row in the stitched report — instead of being re-dealt
// forever. Drain mode (SIGTERM in cmd/coordinator) stops dealing work
// while honouring in-flight heartbeats and completions, then flushes
// and closes the journal so the sweep resumes cleanly elsewhere.
type Coordinator struct {
	Suite *offramps.SuiteSpec
	// Progress, when non-nil, receives one line per accepted completion.
	Progress io.Writer

	suiteJSON []byte
	queue     *Queue
	journal   *Journal

	mu        sync.Mutex
	scenarios map[string]json.RawMessage
	compares  map[string]json.RawMessage
	resumed   int
	accepted  int
	compacted int

	// Progressive state (all under mu; nil sched = naive order). The
	// scheduler itself is single-threaded — accept, quarantine, and
	// construction-time resume all advance it under mu.
	sched       *sched.Scheduler
	outstanding map[string]bool
	schedErr    error

	doneOnce sync.Once
	done     chan struct{}
}

// NewCoordinator builds the coordinator for a validated suite.
func NewCoordinator(suite *offramps.SuiteSpec, cfg Config) (*Coordinator, error) {
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	suiteJSON, err := json.Marshal(suite)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		Suite:     suite,
		suiteJSON: suiteJSON,
		queue:     NewQueue(suite.ScenarioNames(), cfg.ttl()),
		scenarios: make(map[string]json.RawMessage),
		compares:  make(map[string]json.RawMessage),
		done:      make(chan struct{}),
	}
	clock := cfg.clock()
	c.queue.Now = clock.Now
	c.queue.MaxStrikes = cfg.MaxStrikes
	c.queue.OnQuarantine = c.onQuarantine
	if cfg.Progressive != nil {
		if err := offramps.ValidateProgressive(suite, cfg.Progressive.Layout); err != nil {
			return nil, err
		}
		s, err := sched.New(cfg.Progressive.Layout, cfg.Progressive.Sched)
		if err != nil {
			return nil, err
		}
		c.sched = s
		c.outstanding = make(map[string]bool)
		// The naive-seeded queue is held; rounds are Released as the
		// scheduler deals them.
		c.queue.Hold()
	}

	if cfg.Journal != "" {
		if f, err := os.Open(cfg.Journal); err == nil {
			ix, rerr := offramps.ReadResumeIndex(f, suite.Name)
			f.Close()
			if rerr != nil {
				return nil, fmt.Errorf("farm: journal %s: %w", cfg.Journal, rerr)
			}
			if err := ix.Validate(suite); err != nil {
				return nil, fmt.Errorf("farm: journal %s: %w", cfg.Journal, err)
			}
			// A torn tail or duplicate rows mean the file carries dead
			// weight (and appending after a torn line would corrupt it):
			// compact first-wins before reopening for append.
			if ix.Torn || ix.Dups > 0 {
				dropped, cerr := CompactJournal(cfg.Journal)
				if cerr != nil {
					return nil, cerr
				}
				c.compacted = dropped
			}
			for name, raw := range ix.Scenarios {
				c.scenarios[name] = raw
				c.queue.MarkDone(name)
			}
			for key, raw := range ix.Compares {
				c.compares[key] = raw
			}
			c.resumed = len(ix.Scenarios)
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("farm: journal: %w", err)
		}
		j, err := OpenJournal(cfg.Journal, cfg.SyncEvery)
		if err != nil {
			return nil, err
		}
		c.journal = j
	}
	// Replay the schedule against whatever the journal already proved:
	// resumed rows observe instantly, re-derived retirements are no-ops
	// when already journaled, and the first round with genuinely open
	// work lands in the queue.
	c.mu.Lock()
	c.advanceLocked()
	err = c.schedErr
	c.mu.Unlock()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("farm: progressive schedule: %w", err)
	}
	if c.queue.Done() {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return c, nil
}

// onQuarantine reacts to scenarios the queue parked: a progressive
// sweep observes them as Errored so the schedule advances past them
// (a completion later rescuing the scenario is still accepted and
// journaled — only the scheduling signal was pessimistic), and any
// coordinator checks for settlement.
func (c *Coordinator) onQuarantine() {
	if c.sched != nil {
		c.mu.Lock()
		for _, q := range c.queue.Quarantined() {
			if !c.outstanding[q.Scenario] {
				continue
			}
			delete(c.outstanding, q.Scenario)
			if err := c.sched.Observe(q.Scenario, sched.Errored); err != nil && c.schedErr == nil {
				c.schedErr = err
			}
		}
		if len(c.outstanding) == 0 {
			c.advanceLocked()
		}
		c.mu.Unlock()
	}
	if c.queue.Done() {
		c.doneOnce.Do(func() { close(c.done) })
	}
}

// advanceLocked drives the scheduler until a round has open work in the
// queue or the sweep is decided. Rounds fully covered by stored rows
// (a resumed journal) observe and roll forward immediately; freshly
// decided retirements synthesize their skip rows on the spot. Callers
// hold c.mu.
func (c *Coordinator) advanceLocked() {
	if c.sched == nil || c.schedErr != nil {
		return
	}
	for len(c.outstanding) == 0 {
		round, err := c.sched.NextRound()
		if err != nil {
			c.schedErr = err
			return
		}
		for _, sk := range c.sched.TakeRetired() {
			if err := c.retireLocked(sk); err != nil {
				c.schedErr = err
				return
			}
		}
		if len(round) == 0 {
			return
		}
		var release []string
		for _, name := range round {
			if raw, ok := c.scenarios[name]; ok {
				if err := c.sched.Observe(name, c.rowVerdictLocked(name, raw)); err != nil {
					c.schedErr = err
					return
				}
				continue
			}
			c.outstanding[name] = true
			release = append(release, name)
		}
		if len(release) > 0 {
			c.queue.Release(release...)
			return
		}
	}
}

// retireLocked synthesizes one retired scenario's rows: skip-error
// comparisons for every comparison it was the suspect of (goldens are
// extras by ValidateProgressive, so only the suspect side can be
// skipped), then the skip scenario row — journaled in that order, the
// same comparisons-before-row invariant accept keeps. Already-stored
// rows (a resumed journal re-deriving the same retirement) are left
// untouched. Callers hold c.mu.
func (c *Coordinator) retireLocked(sk sched.Skip) error {
	if _, ok := c.scenarios[sk.Name]; ok {
		c.queue.MarkDone(sk.Name)
		return nil
	}
	sc, ok := c.Suite.FindScenario(sk.Name)
	if !ok {
		return fmt.Errorf("retired scenario %q is not in the suite", sk.Name)
	}
	var buf bytes.Buffer
	sink := offramps.NewJSONLSink(&buf)
	sink.Label = c.Suite.Name
	for _, cmp := range c.Suite.Compare {
		if cmp.Suspect != sk.Name {
			continue
		}
		key := offramps.CompareKey(cmp.Golden, cmp.GoldenTap, cmp.Suspect, cmp.SuspectTap)
		if _, dup := c.compares[key]; dup {
			continue
		}
		buf.Reset()
		if err := sink.EmitCompare(offramps.CompareResult{
			Golden:     cmp.Golden,
			Suspect:    cmp.Suspect,
			GoldenTap:  cmp.GoldenTap,
			SuspectTap: cmp.SuspectTap,
			Error:      offramps.SkipMessage(sk.Reason),
		}); err != nil {
			return err
		}
		raw := json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		p, err := offramps.ParseStreamRow(raw)
		if err != nil {
			return err
		}
		if err := c.journalRow(raw); err != nil {
			return err
		}
		c.compares[key] = p.Report
	}
	buf.Reset()
	if err := sink.Emit(offramps.ScenarioResult{
		Name: sk.Name,
		Seed: sc.EffectiveSeed(c.Suite.BaseSeed),
		Err:  errors.New(offramps.SkipMessage(sk.Reason)),
	}); err != nil {
		return err
	}
	raw := json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	p, err := offramps.ParseStreamRow(raw)
	if err != nil {
		return err
	}
	if err := c.journalRow(raw); err != nil {
		return err
	}
	if c.journal != nil {
		if err := c.journal.Commit(); err != nil {
			return err
		}
	}
	c.scenarios[sk.Name] = p.Report
	c.queue.MarkDone(sk.Name)
	if c.Progress != nil {
		_, _, done, _, total := c.queue.Counts()
		fmt.Fprintf(c.Progress, "[%d/%d] %s — %s\n", done, total, sk.Name, offramps.SkipMessage(sk.Reason))
	}
	return nil
}

// rowVerdictLocked derives the scheduler verdict from a stored
// report-shaped scenario row — the raw-row twin of the root package's
// in-memory rule: an error row is Errored; a live detection decides by
// TrojanLikely; otherwise the scenario's first stored comparison (spec
// order) decides; otherwise the result's own TrojanLikely flag;
// otherwise Unknown. Callers hold c.mu.
func (c *Coordinator) rowVerdictLocked(name string, raw json.RawMessage) sched.Verdict {
	var head struct {
		Err    string
		Result *struct {
			Detections   []json.RawMessage
			TrojanLikely bool
		}
	}
	if err := json.Unmarshal(raw, &head); err != nil || head.Err != "" || head.Result == nil {
		return sched.Errored
	}
	if len(head.Result.Detections) > 0 {
		if head.Result.TrojanLikely {
			return sched.Trojan
		}
		return sched.Clean
	}
	for _, cmp := range c.Suite.Compare {
		if cmp.Suspect != name {
			continue
		}
		key := offramps.CompareKey(cmp.Golden, cmp.GoldenTap, cmp.Suspect, cmp.SuspectTap)
		craw, ok := c.compares[key]
		if !ok {
			continue
		}
		var chead struct {
			Error  string                       `json:"error"`
			Report *struct{ TrojanLikely bool } `json:"report"`
		}
		if err := json.Unmarshal(craw, &chead); err != nil || chead.Error != "" || chead.Report == nil {
			return sched.Errored
		}
		if chead.Report.TrojanLikely {
			return sched.Trojan
		}
		return sched.Clean
	}
	if head.Result.TrojanLikely {
		return sched.Trojan
	}
	return sched.Unknown
}

// SweepStats reports the progressive scheduler's statistics; ok is
// false for a naive-order coordinator.
func (c *Coordinator) SweepStats() (st offramps.SweepStats, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sched == nil {
		return offramps.SweepStats{}, false
	}
	return offramps.SweepStats{Stats: c.sched.Stats()}, true
}

// Resumed reports how many scenarios the journal already covered.
func (c *Coordinator) Resumed() int { return c.resumed }

// Compacted reports how many dead journal lines the resume compaction
// dropped (0 when the journal was clean).
func (c *Coordinator) Compacted() int { return c.compacted }

// Counts snapshots the queue.
func (c *Coordinator) Counts() (pending, leased, done, quarantined, total int) {
	return c.queue.Counts()
}

// Quarantined snapshots the parked scenarios.
func (c *Coordinator) Quarantined() []QuarantinedScenario { return c.queue.Quarantined() }

// Done is closed once every scenario has completed or been quarantined.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Drain stops dealing leases (workers see "drain" and exit) while
// in-flight heartbeats and completions keep working. Pair with Close
// once Counts reports no leases outstanding.
func (c *Coordinator) Drain() { c.queue.Drain() }

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	s := &Server{
		Suite:      c.suiteJSON,
		SuiteName:  c.Suite.Name,
		Queue:      c.queue,
		OnComplete: c.accept,
	}
	return s.Handler()
}

// accept records one first-accepted completion: validate the rows
// against the suite, journal them (comparisons first — the resume
// invariant is "scenario row present ⇒ its comparisons present"), and
// store them for the final stitch. An error here un-acks the completion
// (the server reopens the scenario).
func (c *Coordinator) accept(scenario string, compares []json.RawMessage, row json.RawMessage) error {
	sc, ok := c.Suite.FindScenario(scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	parsed, err := offramps.ParseStreamRow(row)
	if err != nil {
		return err
	}
	if parsed.Name != scenario {
		return fmt.Errorf("row names scenario %q, lease was for %q", parsed.Name, scenario)
	}
	if parsed.Suite != c.Suite.Name {
		return fmt.Errorf("row is labelled suite %q, not %q", parsed.Suite, c.Suite.Name)
	}
	if want := sc.EffectiveSeed(c.Suite.BaseSeed); parsed.Seed != want {
		return fmt.Errorf("scenario %q ran seed %d, want %d (worker on a different base seed?)", scenario, parsed.Seed, want)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, raw := range compares {
		p, err := offramps.ParseStreamRow(raw)
		if err != nil {
			return err
		}
		if p.Key == "" {
			return fmt.Errorf("scenario row %q sent among the comparisons", p.Name)
		}
		if _, dup := c.compares[p.Key]; dup {
			continue // a re-run's repeat of an already-journaled comparison
		}
		if err := c.journalRow(raw); err != nil {
			return err
		}
		c.compares[p.Key] = p.Report
	}
	if err := c.journalRow(row); err != nil {
		return err
	}
	if c.journal != nil {
		if err := c.journal.Commit(); err != nil {
			return err
		}
	}
	c.scenarios[scenario] = parsed.Report
	c.accepted++
	if c.sched != nil && c.outstanding[scenario] {
		delete(c.outstanding, scenario)
		if err := c.sched.Observe(scenario, c.rowVerdictLocked(scenario, parsed.Report)); err != nil && c.schedErr == nil {
			c.schedErr = err
		}
		if len(c.outstanding) == 0 {
			c.advanceLocked()
		}
	}

	if c.Progress != nil {
		_, _, done, _, total := c.queue.Counts()
		fmt.Fprintf(c.Progress, "[%d/%d] %s\n", done, total, scenario)
	}
	if c.queue.Done() {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return nil
}

// journalRow appends one raw JSONL line.
func (c *Coordinator) journalRow(raw json.RawMessage) error {
	if c.journal == nil {
		return nil
	}
	return c.journal.Append(raw)
}

// Report stitches the collected rows into the canonical suite report —
// byte-identical to an uninterrupted single-process run. Quarantined
// scenarios appear as error rows (and their comparisons as error
// comparisons), so a degraded sweep still reports — loudly — instead of
// refusing to.
func (c *Coordinator) Report() (*offramps.RawSuiteReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.schedErr != nil {
		return nil, fmt.Errorf("farm: progressive schedule: %w", c.schedErr)
	}
	parked := c.queue.Quarantined()
	if len(parked) == 0 {
		return offramps.StitchReport(c.Suite, c.scenarios, c.compares)
	}

	scenarios := make(map[string]json.RawMessage, len(c.scenarios))
	for k, v := range c.scenarios {
		scenarios[k] = v
	}
	compares := make(map[string]json.RawMessage, len(c.compares))
	for k, v := range c.compares {
		compares[k] = v
	}
	quarantined := make(map[string]bool, len(parked))
	for _, q := range parked {
		quarantined[q.Scenario] = true
		if _, ok := scenarios[q.Scenario]; ok {
			continue
		}
		sc, ok := c.Suite.FindScenario(q.Scenario)
		if !ok {
			return nil, fmt.Errorf("farm: quarantined scenario %q is not in the suite", q.Scenario)
		}
		row, err := json.Marshal(offramps.ScenarioResult{
			Name: q.Scenario,
			Seed: sc.EffectiveSeed(c.Suite.BaseSeed),
			Err:  errors.New(quarantineMessage(q)),
		})
		if err != nil {
			return nil, err
		}
		scenarios[q.Scenario] = row
	}
	for _, cmp := range c.Suite.Compare {
		key := offramps.CompareKey(cmp.Golden, cmp.GoldenTap, cmp.Suspect, cmp.SuspectTap)
		if _, ok := compares[key]; ok {
			continue
		}
		if !quarantined[cmp.Golden] && !quarantined[cmp.Suspect] {
			continue
		}
		row, err := json.Marshal(offramps.CompareResult{
			Golden:     cmp.Golden,
			Suspect:    cmp.Suspect,
			GoldenTap:  cmp.GoldenTap,
			SuspectTap: cmp.SuspectTap,
			Error:      "farm: scenario quarantined; comparison never ran",
		})
		if err != nil {
			return nil, err
		}
		compares[key] = row
	}
	return offramps.StitchReport(c.Suite, scenarios, compares)
}

// quarantineMessage is the error a parked scenario reports.
func quarantineMessage(q QuarantinedScenario) string {
	return fmt.Sprintf("farm: quarantined after %d failed leases (last: %s)", q.Strikes, q.Reason)
}

// Close flushes and releases the journal. It takes the accept path's
// lock, so a completion mid-record finishes before the file goes away.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	j := c.journal
	c.journal = nil
	return j.Close()
}
