package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"offramps"
)

// Coordinator owns one sweep: the expanded suite, the lease queue over
// its scenario names, the collected raw rows, and (optionally) a JSONL
// journal that makes the sweep resumable. It is deliberately
// simulation-free — all printing happens in workers — so a coordinator
// for a million-scenario sweep is a queue of names and a file of rows.
//
// Resumability: every accepted completion appends its rows to the
// journal (comparisons first, then the scenario row) before the worker
// sees the ack. A restarted coordinator reads the journal back through
// the resume index — tolerating the torn trailing line a crash leaves —
// and enqueues only the complement, so the sweep continues instead of
// restarting. The journal is the same row format `suite -jsonl` writes,
// so `suite -merge` can also stitch it directly.
type Coordinator struct {
	Suite *offramps.SuiteSpec
	// Progress, when non-nil, receives one line per accepted completion.
	Progress io.Writer

	suiteJSON []byte
	queue     *Queue
	journal   *os.File

	mu        sync.Mutex
	scenarios map[string]json.RawMessage
	compares  map[string]json.RawMessage
	resumed   int
	accepted  int

	doneOnce sync.Once
	done     chan struct{}
}

// NewCoordinator builds the coordinator for a validated suite. ttl is
// the per-lease heartbeat window. journalPath, when non-empty, persists
// (and resumes) the sweep; an existing journal seeds the done set after
// validating that its rows belong to this suite and base seed.
func NewCoordinator(suite *offramps.SuiteSpec, ttl time.Duration, journalPath string) (*Coordinator, error) {
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	suiteJSON, err := json.Marshal(suite)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		Suite:     suite,
		suiteJSON: suiteJSON,
		queue:     NewQueue(suite.ScenarioNames(), ttl),
		scenarios: make(map[string]json.RawMessage),
		compares:  make(map[string]json.RawMessage),
		done:      make(chan struct{}),
	}

	if journalPath != "" {
		if f, err := os.Open(journalPath); err == nil {
			ix, rerr := offramps.ReadResumeIndex(f, suite.Name)
			f.Close()
			if rerr != nil {
				return nil, fmt.Errorf("farm: journal %s: %w", journalPath, rerr)
			}
			if err := ix.Validate(suite); err != nil {
				return nil, fmt.Errorf("farm: journal %s: %w", journalPath, err)
			}
			for name, raw := range ix.Scenarios {
				c.scenarios[name] = raw
				c.queue.MarkDone(name)
			}
			for key, raw := range ix.Compares {
				c.compares[key] = raw
			}
			c.resumed = len(ix.Scenarios)
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("farm: journal: %w", err)
		}
		f, err := os.OpenFile(journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("farm: journal: %w", err)
		}
		c.journal = f
	}
	if c.queue.Done() {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return c, nil
}

// Resumed reports how many scenarios the journal already covered.
func (c *Coordinator) Resumed() int { return c.resumed }

// Counts snapshots the queue.
func (c *Coordinator) Counts() (pending, leased, done, total int) { return c.queue.Counts() }

// Done is closed once every scenario has completed.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	s := &Server{
		Suite:      c.suiteJSON,
		SuiteName:  c.Suite.Name,
		Queue:      c.queue,
		OnComplete: c.accept,
	}
	return s.Handler()
}

// accept records one first-accepted completion: validate the rows
// against the suite, journal them (comparisons first — the resume
// invariant is "scenario row present ⇒ its comparisons present"), and
// store them for the final stitch. An error here un-acks the completion
// (the server reopens the scenario).
func (c *Coordinator) accept(scenario string, compares []json.RawMessage, row json.RawMessage) error {
	sc, ok := c.Suite.FindScenario(scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	parsed, err := offramps.ParseStreamRow(row)
	if err != nil {
		return err
	}
	if parsed.Name != scenario {
		return fmt.Errorf("row names scenario %q, lease was for %q", parsed.Name, scenario)
	}
	if parsed.Suite != c.Suite.Name {
		return fmt.Errorf("row is labelled suite %q, not %q", parsed.Suite, c.Suite.Name)
	}
	if want := sc.EffectiveSeed(c.Suite.BaseSeed); parsed.Seed != want {
		return fmt.Errorf("scenario %q ran seed %d, want %d (worker on a different base seed?)", scenario, parsed.Seed, want)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, raw := range compares {
		p, err := offramps.ParseStreamRow(raw)
		if err != nil {
			return err
		}
		if p.Key == "" {
			return fmt.Errorf("scenario row %q sent among the comparisons", p.Name)
		}
		if _, dup := c.compares[p.Key]; dup {
			continue // a re-run's repeat of an already-journaled comparison
		}
		if err := c.journalRow(raw); err != nil {
			return err
		}
		c.compares[p.Key] = p.Report
	}
	if err := c.journalRow(row); err != nil {
		return err
	}
	c.scenarios[scenario] = parsed.Report
	c.accepted++

	if c.Progress != nil {
		_, _, done, total := c.queue.Counts()
		fmt.Fprintf(c.Progress, "[%d/%d] %s\n", done, total, scenario)
	}
	if c.queue.Done() {
		c.doneOnce.Do(func() { close(c.done) })
	}
	return nil
}

// journalRow appends one raw JSONL line.
func (c *Coordinator) journalRow(raw json.RawMessage) error {
	if c.journal == nil {
		return nil
	}
	if _, err := c.journal.Write(append(append([]byte(nil), raw...), '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Report stitches the collected rows into the canonical suite report —
// byte-identical to an uninterrupted single-process run.
func (c *Coordinator) Report() (*offramps.RawSuiteReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return offramps.StitchReport(c.Suite, c.scenarios, c.compares)
}

// Close releases the journal.
func (c *Coordinator) Close() error {
	if c.journal == nil {
		return nil
	}
	return c.journal.Close()
}
