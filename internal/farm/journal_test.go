package farm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalRows() []string {
	return []string{
		`{"suite":"s","compare":{"golden":"g","goldenTap":"","suspect":"a","suspectTap":"","match":true}}`,
		`{"suite":"s","name":"a","seed":11,"result":{"steps":3}}`,
		`{"suite":"s","name":"g","seed":1,"result":{"steps":3}}`,
	}
}

func writeJournal(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompactJournalNoopWhenClean(t *testing.T) {
	rows := journalRows()
	path := writeJournal(t, rows[0]+"\n", rows[1]+"\n", rows[2]+"\n")
	before, _ := os.Stat(path)
	dropped, err := CompactJournal(path)
	if err != nil || dropped != 0 {
		t.Fatalf("CompactJournal(clean) = %d, %v", dropped, err)
	}
	after, _ := os.Stat(path)
	if before.ModTime() != after.ModTime() || before.Size() != after.Size() {
		t.Error("clean journal was rewritten")
	}
}

func TestCompactJournalDropsDupsAndTornTail(t *testing.T) {
	rows := journalRows()
	path := writeJournal(t,
		rows[0]+"\n",
		rows[1]+"\n",
		rows[0]+"\n", // duplicate comparison
		rows[2]+"\n",
		rows[1]+"\n", // duplicate scenario row
		rows[2][:13], // torn tail, no newline
	)
	dropped, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3 (two duplicates + the torn tail)", dropped)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Survivors keep their original order and exact bytes.
	want := rows[0] + "\n" + rows[1] + "\n" + rows[2] + "\n"
	if string(data) != want {
		t.Errorf("compacted journal:\n%s\nwant:\n%s", data, want)
	}
}

func TestCompactJournalRejectsMidStreamCorruption(t *testing.T) {
	rows := journalRows()
	path := writeJournal(t, rows[0]+"\n", "garbage that is not json\n", rows[1]+"\n")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompactJournal(path); err == nil || !strings.Contains(err.Error(), "not the journal's tail") {
		t.Fatalf("CompactJournal(corrupt middle) err = %v, want a tail-position error", err)
	}
	// The journal is untouched on a refused compaction.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("refused compaction modified the journal")
	}
}

func TestJournalAppendCommitClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, 2) // fsync every 2nd commit
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range journalRows() {
		if err := j.Append(json.RawMessage(row)); err != nil {
			t.Fatal(err)
		}
		if err := j.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(data), strings.Join(journalRows(), "\n")+"\n"; got != want {
		t.Errorf("journal:\n%s\nwant:\n%s", got, want)
	}

	// Reopening appends, never truncates.
	j2, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(json.RawMessage(journalRows()[0])); err != nil {
		t.Fatal(err)
	}
	if err := j2.Commit(); err != nil { // syncEvery 0: Commit is a no-op
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(string(data)), "\n")); got != 4 {
		t.Errorf("reopened journal has %d rows, want 4", got)
	}
}
