package faults

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffEnvelope(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second}
	// Without jitter, Delay returns the envelope itself: doubling from
	// Base, capped at Cap, and immune to shift overflow.
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{4, 1600 * time.Millisecond},
		{5, 2 * time.Second},
		{63, 2 * time.Second},
		{1000, 2 * time.Second},
	} {
		if got := b.Delay(tc.attempt, nil); got != tc.want {
			t.Errorf("Delay(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
}

func TestBackoffFullJitterBoundsAndDeterminism(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second}
	a, c := NewRand(42), NewRand(42)
	other := NewRand(43)
	same, diff := true, false
	for attempt := 0; attempt < 20; attempt++ {
		ceil := b.Delay(attempt, nil)
		da, dc, do := b.Delay(attempt, a), b.Delay(attempt, c), b.Delay(attempt, other)
		if da < 0 || da > ceil {
			t.Fatalf("attempt %d: jittered delay %v outside [0, %v]", attempt, da, ceil)
		}
		if da != dc {
			same = false
		}
		if da != do {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different delay streams")
	}
	if !diff {
		t.Error("different seeds produced identical delay streams (jitter suspiciously absent)")
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if got := b.MaxAttempts(); got != 10 {
		t.Errorf("MaxAttempts() = %d, want 10", got)
	}
	if got := b.Delay(0, nil); got != 100*time.Millisecond {
		t.Errorf("Delay(0) = %v, want 100ms", got)
	}
	if got := b.Delay(100, nil); got != 5*time.Second {
		t.Errorf("Delay(100) = %v, want the 5s default cap", got)
	}
}

func TestFakeClockSleepAndTimeout(t *testing.T) {
	clk := NewFakeClock()
	done := make(chan error, 1)
	go func() { done <- clk.Sleep(context.Background(), time.Minute) }()
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	case <-time.After(10 * time.Millisecond):
	}
	clk.Advance(time.Minute)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Sleep: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Sleep never woke after Advance")
	}

	ctx, cancel := clk.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if ctx.Err() != nil {
		t.Fatal("timeout fired before its deadline")
	}
	clk.Advance(31 * time.Second)
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("timeout context never fired")
	}

	// A cancelled context unblocks a pending Sleep.
	sctx, scancel := context.WithCancel(context.Background())
	go func() { done <- clk.Sleep(sctx, time.Hour) }()
	scancel()
	if err := <-done; err == nil {
		t.Fatal("Sleep on a cancelled context returned nil")
	}
}

func TestSeedFromStringStable(t *testing.T) {
	if SeedFromString("w1") != SeedFromString("w1") {
		t.Error("SeedFromString is not stable")
	}
	if SeedFromString("w1") == SeedFromString("w2") {
		t.Error("distinct names hashed to the same seed")
	}
}

// chaosServer counts deliveries and echoes a fixed JSON body.
func chaosServer(t *testing.T, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func TestTransportScriptedFaults(t *testing.T) {
	srv, hits := chaosServer(t, `{"ok":true}`)

	t.Run("drop", func(t *testing.T) {
		before := hits.Load()
		tr := NewTransport(1, Rule{Kind: Drop})
		cl := &http.Client{Transport: tr}
		if _, err := cl.Get(srv.URL + "/x"); err == nil {
			t.Fatal("dropped request returned no error")
		}
		if hits.Load() != before {
			t.Error("dropped request reached the server")
		}
		if tr.Injected()[Drop] != 1 {
			t.Errorf("Injected() = %v, want one drop", tr.Injected())
		}
	})

	t.Run("err500", func(t *testing.T) {
		before := hits.Load()
		cl := &http.Client{Transport: NewTransport(1, Rule{Kind: Err500})}
		resp, err := cl.Get(srv.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("status = %d, want 500", resp.StatusCode)
		}
		if hits.Load() != before {
			t.Error("5xx-faulted request reached the server")
		}
	})

	t.Run("truncate", func(t *testing.T) {
		cl := &http.Client{Transport: NewTransport(1, Rule{Kind: Truncate})}
		resp, err := cl.Get(srv.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if want := len(`{"ok":true}`) / 2; len(body) != want {
			t.Errorf("truncated body is %d bytes, want %d", len(body), want)
		}
	})

	t.Run("duplicate", func(t *testing.T) {
		before := hits.Load()
		cl := &http.Client{Transport: NewTransport(1, Rule{Kind: Duplicate})}
		resp, err := cl.Post(srv.URL+"/x", "application/json", strings.NewReader(`{"n":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if got := hits.Load() - before; got != 2 {
			t.Errorf("duplicate delivered %d times, want 2", got)
		}
	})

	t.Run("delay", func(t *testing.T) {
		cl := &http.Client{Transport: NewTransport(1, Rule{Kind: Delay, Delay: 30 * time.Millisecond})}
		start := time.Now()
		resp, err := cl.Get(srv.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d := time.Since(start); d < 30*time.Millisecond {
			t.Errorf("delayed request returned after %v, want ≥ 30ms", d)
		}
	})
}

func TestTransportRuleMatching(t *testing.T) {
	srv, hits := chaosServer(t, `{}`)
	tr := NewTransport(1,
		Rule{Path: "/only", Kind: Drop},
		Rule{Body: `"scenario":"poison"`, Kind: Err500},
	)
	cl := &http.Client{Transport: tr}

	// Wrong path, wrong body: both rules pass the request through.
	resp, err := cl.Post(srv.URL+"/other", "application/json", strings.NewReader(`{"scenario":"fine"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("clean request did not reach the server (hits=%d)", hits.Load())
	}

	if _, err := cl.Get(srv.URL + "/only"); err == nil {
		t.Error("path-matched drop rule did not fire")
	}
	resp, err = cl.Post(srv.URL+"/other", "application/json", strings.NewReader(`{"scenario":"poison"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("body-matched rule returned %d, want 500", resp.StatusCode)
	}
}

func TestTransportMaxAndSeededDeterminism(t *testing.T) {
	srv, _ := chaosServer(t, `{}`)

	// Max bounds the firings.
	tr := NewTransport(1, Rule{Kind: Drop, Max: 2})
	cl := &http.Client{Transport: tr}
	fails := 0
	for i := 0; i < 5; i++ {
		resp, err := cl.Get(srv.URL)
		if err != nil {
			fails++
			continue
		}
		resp.Body.Close()
	}
	if fails != 2 {
		t.Errorf("Max=2 rule fired %d times", fails)
	}

	// The same seed yields the same fault schedule for the same request
	// sequence; the marginal rate roughly follows P.
	schedule := func(seed uint64) []bool {
		tr := NewTransport(seed, Rule{Kind: Drop, P: 0.5})
		cl := &http.Client{Transport: tr}
		var out []bool
		for i := 0; i < 40; i++ {
			resp, err := cl.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	drops := 0
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
		if a[i] {
			drops++
		}
	}
	if !same {
		t.Error("same seed produced different fault schedules")
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
	if drops < 8 || drops > 32 {
		t.Errorf("P=0.5 dropped %d/40 — schedule is not probabilistic", drops)
	}
}
