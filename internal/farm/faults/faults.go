// Package faults is the farm's deterministic chaos layer: an injectable
// clock, a capped exponential backoff with full jitter, and a seeded,
// scriptable http.RoundTripper that injects transport faults (drops,
// delays, 5xx, response truncation, duplicate delivery).
//
// Everything here is deterministic by construction — a seed fixes the
// fault schedule, a fake clock fixes time — so a chaos run that breaks
// the farm is reproducible by replaying the same seed, not by hoping
// the same race recurs. The production side of the package (Wall,
// Backoff) is what the worker and client run in real deployments; the
// injection side (Transport, FakeClock) exists so the e2e suite can
// drive the same production code through scripted failure schedules.
package faults

import (
	"context"
	"hash/fnv"
	"math/rand/v2"
	"sync"
	"time"
)

// Clock abstracts the time operations the farm performs, so chaos tests
// can pin them. Wall is the production implementation.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done (returning ctx's error).
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives a context that is cancelled once d elapses on
	// this clock.
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// Wall is the real-time Clock.
type Wall struct{}

// Now returns time.Now().
func (Wall) Now() time.Time { return time.Now() }

// Sleep waits on a real timer.
func (Wall) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// WithTimeout is context.WithTimeout.
func (Wall) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d)
}

// FakeClock is a manually advanced Clock for deterministic tests: time
// moves only when Advance is called, and sleepers/timeouts fire exactly
// at their deadlines. The zero value is not usable; call NewFakeClock.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	fire     func() // called once, with the clock's lock NOT held
}

// NewFakeClock starts a fake clock at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000, 0)}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward, firing every sleeper and timeout
// whose deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []*fakeWaiter
	var keep []*fakeWaiter
	for _, w := range c.waiters {
		if !c.now.Before(w.deadline) {
			due = append(due, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	c.mu.Unlock()
	for _, w := range due {
		w.fire()
	}
}

// Sleep blocks until Advance moves the clock past the deadline or ctx
// is done.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	ch := make(chan struct{})
	var once sync.Once
	c.mu.Lock()
	c.waiters = append(c.waiters, &fakeWaiter{
		deadline: c.now.Add(d),
		fire:     func() { once.Do(func() { close(ch) }) },
	})
	c.mu.Unlock()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-ch:
		return nil
	}
}

// WithTimeout derives a context cancelled when the fake clock passes
// the deadline (or the returned cancel runs).
func (c *FakeClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	tctx, cancel := context.WithCancel(ctx)
	c.mu.Lock()
	c.waiters = append(c.waiters, &fakeWaiter{deadline: c.now.Add(d), fire: cancel})
	c.mu.Unlock()
	return tctx, cancel
}

// Backoff is a capped exponential backoff with full jitter (the delay
// before attempt n is uniform in [0, min(Cap, Base·2ⁿ)]), the policy
// that replaces the worker's old fixed-interval retry loops: retries
// from a fleet of workers spread out instead of stampeding a recovering
// coordinator in lockstep.
type Backoff struct {
	// Base scales the first delay (0 = 100ms).
	Base time.Duration
	// Cap bounds every delay (0 = 5s).
	Cap time.Duration
	// Attempts bounds the total tries of one operation (0 = 10).
	Attempts int
}

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 100 * time.Millisecond
}

func (b Backoff) cap() time.Duration {
	if b.Cap > 0 {
		return b.Cap
	}
	return 5 * time.Second
}

// MaxAttempts returns the configured attempt bound.
func (b Backoff) MaxAttempts() int {
	if b.Attempts > 0 {
		return b.Attempts
	}
	return 10
}

// Delay returns the wait before retry attempt (0-based: Delay(0) is the
// wait after the first failure), drawn from rng for full jitter. A nil
// rng degrades to the deterministic envelope (no jitter).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	ceil := b.cap()
	// Base<<attempt with shift-overflow protection: past 62 bits (or
	// whenever the doubling passes the cap) the envelope is just Cap.
	if attempt < 62 {
		if d := b.base() << uint(attempt); d < ceil {
			ceil = d
		}
	}
	if rng == nil {
		return ceil
	}
	return time.Duration(rng.Int64N(int64(ceil) + 1))
}

// NewRand returns a deterministic jitter source for seed.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
}

// SeedFromString derives a stable seed from a name (FNV-1a), so a
// worker's jitter stream is reproducible from its name alone.
func SeedFromString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
