package faults

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the transport faults the harness can inject.
type Kind int

const (
	// None delivers the request untouched.
	None Kind = iota
	// Drop returns a transport error; the server never sees the request.
	Drop
	// Delay delivers the request after Rule.Delay.
	Delay
	// Err500 returns a synthetic 500; the server never sees the request.
	Err500
	// Truncate delivers the request but returns only the first half of
	// the response body — a torn read mid-stream.
	Truncate
	// Duplicate delivers the request twice and returns the second
	// response — at-least-once delivery, the fault completion dedupe
	// exists for.
	Duplicate
)

// String names a fault kind for logs and counters.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Err500:
		return "err500"
	case Truncate:
		return "truncate"
	case Duplicate:
		return "duplicate"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule scripts one fault over matching requests. Rules are evaluated in
// order; the first matching rule whose probability draw passes fires.
type Rule struct {
	// Path restricts the rule to one URL path ("" = any).
	Path string
	// Body restricts the rule to requests whose body contains this
	// substring ("" = any) — e.g. `"scenario":"x"` targets one
	// scenario's completions.
	Body string
	// Kind is the fault to inject.
	Kind Kind
	// Delay is the injected latency for Kind Delay.
	Delay time.Duration
	// P is the per-request firing probability; 0 means always fire.
	P float64
	// Max bounds how many times the rule fires (0 = unlimited).
	Max int
}

// Transport is a seeded fault-injecting http.RoundTripper: every
// request is matched against the script and the chosen fault is
// applied. All probabilistic draws come from one seeded PCG stream
// behind a mutex, so a single-goroutine request sequence is exactly
// reproducible by seed, and a concurrent one draws from a fixed stream
// (the interleaving may vary; the marginal schedule does not).
type Transport struct {
	// Inner performs real deliveries (nil = http.DefaultTransport).
	Inner http.RoundTripper
	// Clock times injected delays (nil = Wall{}).
	Clock Clock

	mu    sync.Mutex
	rng   interface{ Float64() float64 }
	rules []Rule
	fired map[int]int  // rule index → times fired
	count map[Kind]int // injected fault → count
}

// NewTransport builds a seeded transport over a fault script.
func NewTransport(seed uint64, rules ...Rule) *Transport {
	return &Transport{
		rng:   NewRand(seed),
		rules: rules,
		fired: make(map[int]int),
		count: make(map[Kind]int),
	}
}

// Injected snapshots how many faults of each kind have fired — chaos
// tests assert the schedule actually exercised something.
func (t *Transport) Injected() map[Kind]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[Kind]int, len(t.count))
	for k, n := range t.count {
		out[k] = n
	}
	return out
}

func (t *Transport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

func (t *Transport) clock() Clock {
	if t.Clock != nil {
		return t.Clock
	}
	return Wall{}
}

// decide picks the fault for one request. The body is already buffered.
func (t *Transport) decide(path string, body []byte) Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.rules {
		if r.Path != "" && r.Path != path {
			continue
		}
		if r.Body != "" && !bytes.Contains(body, []byte(r.Body)) {
			continue
		}
		if r.Max > 0 && t.fired[i] >= r.Max {
			continue
		}
		// The draw happens for every probabilistic candidate — even ones
		// that do not fire — so the stream's consumption is a function of
		// the request sequence alone.
		if r.P > 0 && t.rng.Float64() >= r.P {
			continue
		}
		t.fired[i]++
		t.count[r.Kind]++
		return r
	}
	return Rule{Kind: None}
}

// RoundTrip applies the scripted fault to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	rule := t.decide(req.URL.Path, body)

	deliver := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if req.Body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return t.inner().RoundTrip(r)
	}

	switch rule.Kind {
	case Drop:
		return nil, fmt.Errorf("faults: injected drop of %s", req.URL.Path)
	case Err500:
		return &http.Response{
			Status:     "500 Internal Server Error",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("faults: injected 500")),
			Request: req,
		}, nil
	case Delay:
		if err := t.clock().Sleep(req.Context(), rule.Delay); err != nil {
			return nil, err
		}
		return deliver()
	case Truncate:
		resp, err := deliver()
		if err != nil {
			return resp, err
		}
		full, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := full[:len(full)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		return resp, nil
	case Duplicate:
		first, err := deliver()
		if err == nil {
			// The first delivery happened; its response is discarded, as
			// if the network ate the ack and the client resent.
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		return deliver()
	default:
		return deliver()
	}
}
