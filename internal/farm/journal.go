package farm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"offramps"
)

// Journal is the coordinator's durable row store: an append-only JSONL
// file with an explicit durability policy. Writes happen per row;
// fsync happens per completion *unit* (a scenario row plus its
// comparisons) on a configurable cadence, so callers choose their spot
// on the durability/throughput line instead of inheriting whatever the
// page cache felt like.
type Journal struct {
	path      string
	f         *os.File
	syncEvery int // fsync after every Nth committed unit; ≤0 = OS-managed
	sinceSync int
}

// OpenJournal opens (creating if needed) an append-only journal.
// syncEvery > 0 fsyncs after every Nth committed completion; ≤ 0 leaves
// flushing to the OS (the pre-hardening behavior).
func OpenJournal(path string, syncEvery int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: journal: %w", err)
	}
	return &Journal{path: path, f: f, syncEvery: syncEvery}, nil
}

// Append writes one raw JSONL line.
func (j *Journal) Append(raw json.RawMessage) error {
	if _, err := j.f.Write(append(append([]byte(nil), raw...), '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Commit marks the end of one completion unit and fsyncs if the cadence
// says so.
func (j *Journal) Commit() error {
	if j.syncEvery <= 0 {
		return nil
	}
	j.sinceSync++
	if j.sinceSync < j.syncEvery {
		return nil
	}
	j.sinceSync = 0
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal sync: %w", err)
	}
	return nil
}

// Close flushes and releases the journal.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if j.syncEvery > 0 {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("journal sync: %w", err)
		}
	}
	return f.Close()
}

// CompactJournal rewrites a journal first-wins: duplicate rows (the
// deterministic repeats of re-run leases) are dropped, a torn trailing
// line is cut, and every surviving line keeps its original order and
// bytes — so the resume invariant ("scenario row present ⇒ its
// comparisons present") survives compaction untouched. The rewrite is
// atomic: temp file in the same directory, fsync, rename over the
// original, directory fsync. Returns the number of lines dropped.
//
// A malformed line anywhere but the tail is corruption, same rule as
// ReadResumeIndex, and aborts the compaction with the journal intact.
func CompactJournal(path string) (dropped int, err error) {
	in, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("farm: compact: %w", err)
	}
	defer in.Close()

	var kept []string
	seen := make(map[string]bool)
	tornLine := 0
	br := bufio.NewReader(in)
	for lineNo := 1; ; lineNo++ {
		line, rerr := br.ReadString('\n')
		text := strings.TrimSpace(line)
		if text != "" {
			if tornLine != 0 {
				return 0, fmt.Errorf("farm: compact: line %d: malformed row is not the journal's tail", tornLine)
			}
			row, perr := offramps.ParseStreamRow([]byte(text))
			switch {
			case perr != nil:
				tornLine = lineNo
				dropped++
			default:
				key := row.Suite + "\x00" + row.Name + "\x00" + row.Key
				if seen[key] {
					dropped++
				} else {
					seen[key] = true
					kept = append(kept, text)
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return 0, fmt.Errorf("farm: compact: %w", rerr)
		}
	}
	if dropped == 0 {
		return 0, nil
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".compact-*")
	if err != nil {
		return 0, fmt.Errorf("farm: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	for _, line := range kept {
		if _, err := tmp.WriteString(line + "\n"); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("farm: compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("farm: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("farm: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("farm: compact: %w", err)
	}
	// Make the rename itself durable. Directory fsync can fail on some
	// filesystems; the rename already happened, so treat that as advice.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return dropped, nil
}
