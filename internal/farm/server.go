package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// maxBodyBytes bounds request bodies; completion rows are summary rows
// (no captures), so even a comparison-heavy scenario stays far under
// this.
const maxBodyBytes = 16 << 20

// Server is the coordinator's HTTP face: it serves the suite document,
// brokers leases and heartbeats through the queue, and hands accepted
// completions to the coordinator's row store. It holds no state of its
// own — kill the process, restart it, and the journal plus queue
// rebuild the sweep.
type Server struct {
	// Suite is the canonical suite JSON served to workers.
	Suite []byte
	// SuiteName labels the status endpoint.
	SuiteName string
	// Queue brokers leases.
	Queue *Queue
	// OnComplete receives each first-accepted completion (comparison
	// rows then the scenario row, journal order). Calls are serialized
	// by the queue accept path running under the server's handler; an
	// error fails the request and leaves the scenario incomplete so the
	// worker (or its lease expiry) retries.
	OnComplete func(scenario string, compares []json.RawMessage, row json.RawMessage) error
}

// Handler routes the farm protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathSuite, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.Suite)
	})
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decode(w, r, &req) {
			return
		}
		reply(w, s.Queue.Lease(req.Worker))
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		reply(w, HeartbeatReply{OK: s.Queue.Heartbeat(req.Token)})
	})
	mux.HandleFunc("POST "+PathComplete, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(w, r, &req) {
			return
		}
		if req.Scenario == "" || len(req.Row) == 0 {
			http.Error(w, "completion needs a scenario and its row", http.StatusBadRequest)
			return
		}
		s.complete(w, req)
	})
	mux.HandleFunc("POST "+PathFail, func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !decode(w, r, &req) {
			return
		}
		if req.Scenario == "" {
			http.Error(w, "failure report needs a scenario", http.StatusBadRequest)
			return
		}
		reply(w, FailReply{Status: s.Queue.Fail(req.Token, req.Scenario, req.Error)})
	})
	mux.HandleFunc("GET "+PathStatus, func(w http.ResponseWriter, r *http.Request) {
		pending, leased, done, _, total := s.Queue.Counts()
		reply(w, StatusReply{
			Suite:       s.SuiteName,
			Pending:     pending,
			Leased:      leased,
			Done:        done,
			Total:       total,
			Draining:    s.Queue.Draining(),
			Quarantined: s.Queue.Quarantined(),
		})
	})
	return mux
}

// completeMu in the coordinator serializes the store; here we only
// order accept-then-store so an acked completion is durably recorded.
func (s *Server) complete(w http.ResponseWriter, req CompleteRequest) {
	status := s.Queue.Complete(req.Token, req.Scenario)
	if status == CompleteAccepted && s.OnComplete != nil {
		if err := s.OnComplete(req.Scenario, req.Compares, req.Row); err != nil {
			// Recording failed: the ack must not outlive the record.
			// Re-open the scenario so the sweep cannot silently lose it.
			s.Queue.Reopen(req.Scenario)
			http.Error(w, fmt.Sprintf("recording completion: %v", err), http.StatusInternalServerError)
			return
		}
	}
	reply(w, CompleteReply{Status: status})
}

// decode reads a bounded JSON body; a false return means the response
// is already written.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, dst)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
