package farm

import (
	"testing"
	"time"
)

// fakeClock advances only when told, making lease expiry deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockQueue(names []string, ttl time.Duration) (*Queue, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := NewQueue(names, ttl)
	q.Now = clk.now
	return q, clk
}

func TestQueueLeaseOrderFIFO(t *testing.T) {
	q, _ := newClockQueue([]string{"a", "b", "c"}, time.Minute)
	for _, want := range []string{"a", "b", "c"} {
		r := q.Lease("w")
		if r.Status != StatusLease || r.Scenario != want {
			t.Fatalf("lease = %+v, want scenario %q", r, want)
		}
	}
	if r := q.Lease("w"); r.Status != StatusWait {
		t.Fatalf("lease with all in flight = %+v, want wait", r)
	}
}

func TestQueueExpiryRequeuesAtFront(t *testing.T) {
	q, clk := newClockQueue([]string{"a", "b", "c"}, time.Minute)
	la := q.Lease("w1")
	lb := q.Lease("w2")
	clk.advance(2 * time.Minute) // both leases expire

	// Expired scenarios return to the front in grant order: a, b, then c.
	for _, want := range []string{"a", "b", "c"} {
		r := q.Lease("w3")
		if r.Scenario != want {
			t.Fatalf("post-expiry lease = %q, want %q", r.Scenario, want)
		}
	}
	// The dead leases' tokens no longer heartbeat.
	if q.Heartbeat(la.Token) || q.Heartbeat(lb.Token) {
		t.Error("expired lease still heartbeats")
	}
}

func TestQueueHeartbeatExtends(t *testing.T) {
	q, clk := newClockQueue([]string{"a"}, time.Minute)
	l := q.Lease("w")
	clk.advance(45 * time.Second)
	if !q.Heartbeat(l.Token) {
		t.Fatal("live lease refused heartbeat")
	}
	clk.advance(45 * time.Second) // 90s total, but extended at 45s
	if !q.Heartbeat(l.Token) {
		t.Fatal("extended lease expired anyway")
	}
	clk.advance(2 * time.Minute)
	if q.Heartbeat(l.Token) {
		t.Fatal("expired lease accepted heartbeat")
	}
}

func TestQueueCompleteDedupes(t *testing.T) {
	q, clk := newClockQueue([]string{"a"}, time.Minute)
	l1 := q.Lease("w1")
	clk.advance(2 * time.Minute)
	l2 := q.Lease("w2") // re-lease after expiry
	if l2.Scenario != "a" {
		t.Fatalf("re-lease = %q, want a", l2.Scenario)
	}

	// The expired lease finishes anyway: first completion wins.
	if got := q.Complete(l1.Token, "a"); got != CompleteAccepted {
		t.Fatalf("first completion = %q, want accepted", got)
	}
	if got := q.Complete(l2.Token, "a"); got != CompleteDuplicate {
		t.Fatalf("second completion = %q, want duplicate", got)
	}
	if got := q.Complete("L99", "nope"); got != CompleteUnknown {
		t.Fatalf("unknown scenario completion = %q, want unknown", got)
	}
	if !q.Done() {
		t.Error("queue not done after its only scenario completed")
	}
	if r := q.Lease("w3"); r.Status != StatusDone {
		t.Errorf("lease after done = %+v, want done", r)
	}
}

func TestQueueMarkDoneSeedsResume(t *testing.T) {
	q, _ := newClockQueue([]string{"a", "b", "c"}, time.Minute)
	if !q.MarkDone("b") {
		t.Fatal("MarkDone(b) = false")
	}
	if q.MarkDone("b") {
		t.Fatal("second MarkDone(b) = true")
	}
	if q.MarkDone("zzz") {
		t.Fatal("MarkDone of unknown scenario = true")
	}
	var got []string
	for i := 0; i < 2; i++ {
		got = append(got, q.Lease("w").Scenario)
	}
	if got[0] != "a" || got[1] != "c" {
		t.Errorf("resumed queue leased %v, want [a c]", got)
	}
}

func TestQueueReopen(t *testing.T) {
	q, _ := newClockQueue([]string{"a", "b"}, time.Minute)
	l := q.Lease("w")
	if got := q.Complete(l.Token, "a"); got != CompleteAccepted {
		t.Fatal(got)
	}
	q.Reopen("a")
	if q.Done() {
		t.Fatal("queue done after reopen")
	}
	// Reopened work comes back at the front, ahead of b.
	if r := q.Lease("w"); r.Scenario != "a" {
		t.Errorf("post-reopen lease = %q, want a", r.Scenario)
	}
}
