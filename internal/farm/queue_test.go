package farm

import (
	"strings"
	"testing"
	"time"
)

// fakeClock advances only when told, making lease expiry deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockQueue(names []string, ttl time.Duration) (*Queue, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := NewQueue(names, ttl)
	q.Now = clk.now
	return q, clk
}

func TestQueueLeaseOrderFIFO(t *testing.T) {
	q, _ := newClockQueue([]string{"a", "b", "c"}, time.Minute)
	for _, want := range []string{"a", "b", "c"} {
		r := q.Lease("w")
		if r.Status != StatusLease || r.Scenario != want {
			t.Fatalf("lease = %+v, want scenario %q", r, want)
		}
	}
	if r := q.Lease("w"); r.Status != StatusWait {
		t.Fatalf("lease with all in flight = %+v, want wait", r)
	}
}

func TestQueueExpiryRequeuesAtFront(t *testing.T) {
	q, clk := newClockQueue([]string{"a", "b", "c"}, time.Minute)
	la := q.Lease("w1")
	lb := q.Lease("w2")
	clk.advance(2 * time.Minute) // both leases expire

	// Expired scenarios return to the front in grant order: a, b, then c.
	for _, want := range []string{"a", "b", "c"} {
		r := q.Lease("w3")
		if r.Scenario != want {
			t.Fatalf("post-expiry lease = %q, want %q", r.Scenario, want)
		}
	}
	// The dead leases' tokens no longer heartbeat.
	if q.Heartbeat(la.Token) || q.Heartbeat(lb.Token) {
		t.Error("expired lease still heartbeats")
	}
}

func TestQueueHeartbeatExtends(t *testing.T) {
	q, clk := newClockQueue([]string{"a"}, time.Minute)
	l := q.Lease("w")
	clk.advance(45 * time.Second)
	if !q.Heartbeat(l.Token) {
		t.Fatal("live lease refused heartbeat")
	}
	clk.advance(45 * time.Second) // 90s total, but extended at 45s
	if !q.Heartbeat(l.Token) {
		t.Fatal("extended lease expired anyway")
	}
	clk.advance(2 * time.Minute)
	if q.Heartbeat(l.Token) {
		t.Fatal("expired lease accepted heartbeat")
	}
}

func TestQueueCompleteDedupes(t *testing.T) {
	q, clk := newClockQueue([]string{"a"}, time.Minute)
	l1 := q.Lease("w1")
	clk.advance(2 * time.Minute)
	l2 := q.Lease("w2") // re-lease after expiry
	if l2.Scenario != "a" {
		t.Fatalf("re-lease = %q, want a", l2.Scenario)
	}

	// The expired lease finishes anyway: first completion wins.
	if got := q.Complete(l1.Token, "a"); got != CompleteAccepted {
		t.Fatalf("first completion = %q, want accepted", got)
	}
	if got := q.Complete(l2.Token, "a"); got != CompleteDuplicate {
		t.Fatalf("second completion = %q, want duplicate", got)
	}
	if got := q.Complete("L99", "nope"); got != CompleteUnknown {
		t.Fatalf("unknown scenario completion = %q, want unknown", got)
	}
	if !q.Done() {
		t.Error("queue not done after its only scenario completed")
	}
	if r := q.Lease("w3"); r.Status != StatusDone {
		t.Errorf("lease after done = %+v, want done", r)
	}
}

func TestQueueMarkDoneSeedsResume(t *testing.T) {
	q, _ := newClockQueue([]string{"a", "b", "c"}, time.Minute)
	if !q.MarkDone("b") {
		t.Fatal("MarkDone(b) = false")
	}
	if q.MarkDone("b") {
		t.Fatal("second MarkDone(b) = true")
	}
	if q.MarkDone("zzz") {
		t.Fatal("MarkDone of unknown scenario = true")
	}
	var got []string
	for i := 0; i < 2; i++ {
		got = append(got, q.Lease("w").Scenario)
	}
	if got[0] != "a" || got[1] != "c" {
		t.Errorf("resumed queue leased %v, want [a c]", got)
	}
}

func TestQueueExpiryStrikesIntoQuarantine(t *testing.T) {
	q, clk := newClockQueue([]string{"a", "b"}, time.Minute)
	q.MaxStrikes = 2
	fired := 0
	q.OnQuarantine = func() { fired++ }

	// Burn two leases of "a" by expiry; the second strike quarantines it.
	if r := q.Lease("w"); r.Scenario != "a" {
		t.Fatalf("first lease = %q, want a", r.Scenario)
	}
	clk.advance(2 * time.Minute)
	// The next lease reaps the expired one (strike 1) and re-deals "a"
	// from the queue front.
	if r := q.Lease("w"); r.Scenario != "a" {
		t.Fatalf("post-expiry lease = %q, want a", r.Scenario)
	}
	clk.advance(2 * time.Minute)
	// Strike 2 quarantines "a"; the lease moves on to "b".
	if r := q.Lease("w"); r.Scenario != "b" {
		t.Fatalf("post-quarantine lease = %q, want b", r.Scenario)
	}
	qs := q.Quarantined()
	if len(qs) != 1 || qs[0].Scenario != "a" || qs[0].Strikes != 2 {
		t.Fatalf("Quarantined() = %+v, want a with 2 strikes", qs)
	}
	if !strings.Contains(qs[0].Reason, "expired without completing") {
		t.Errorf("reason = %q, want an expiry reason", qs[0].Reason)
	}
	if fired == 0 {
		t.Error("OnQuarantine never fired")
	}
	if _, _, _, quarantined, _ := q.Counts(); quarantined != 1 {
		t.Errorf("Counts() quarantined = %d, want 1", quarantined)
	}
}

func TestQueueFailPathQuarantinesAndSettles(t *testing.T) {
	q, _ := newClockQueue([]string{"a", "b"}, time.Minute)
	q.MaxStrikes = 2
	fired := 0
	q.OnQuarantine = func() { fired++ }

	if got := q.Fail("L99", "zzz", "x"); got != FailUnknown {
		t.Fatalf("Fail(unknown scenario) = %q", got)
	}

	// First failure strikes and requeues "a" at the *back*.
	l := q.Lease("w")
	if got := q.Fail(l.Token, "a", "compile exploded"); got != FailAccepted {
		t.Fatalf("first Fail = %q, want accepted", got)
	}
	if r := q.Lease("w"); r.Scenario != "b" {
		t.Fatalf("post-fail lease = %q, want b (failed scenario goes to the back)", r.Scenario)
	}

	// Second failure of "a" quarantines it.
	l = q.Lease("w")
	if l.Scenario != "a" {
		t.Fatalf("lease = %q, want a", l.Scenario)
	}
	if got := q.Fail(l.Token, "a", "compile exploded again"); got != FailQuarantined {
		t.Fatalf("second Fail = %q, want quarantined", got)
	}
	if fired != 1 {
		t.Errorf("OnQuarantine fired %d times, want 1", fired)
	}
	qs := q.Quarantined()
	if len(qs) != 1 || qs[0].Reason != "compile exploded again" {
		t.Fatalf("Quarantined() = %+v", qs)
	}
	// A repeat failure report for a parked scenario is idempotent.
	if got := q.Fail("L77", "a", "again"); got != FailQuarantined {
		t.Errorf("Fail on parked scenario = %q, want quarantined", got)
	}

	// b completes → the queue settles with one done + one quarantined.
	if got := q.Complete(q.byName["b"], "b"); got != CompleteAccepted {
		t.Fatalf("complete b = %q", got)
	}
	if !q.Done() {
		t.Error("queue not done with every scenario completed or quarantined")
	}
	if r := q.Lease("w"); r.Status != StatusDone {
		t.Errorf("lease on settled queue = %+v, want done", r)
	}
	if got := q.Fail("L50", "b", "late"); got != FailDuplicate {
		t.Errorf("Fail on done scenario = %q, want duplicate", got)
	}
}

func TestQueueFailDoesNotDoubleStrikeExpiredLease(t *testing.T) {
	q, clk := newClockQueue([]string{"a"}, time.Minute)
	q.MaxStrikes = 2
	l := q.Lease("w")
	clk.advance(2 * time.Minute)
	q.Lease("w2") // reap strikes the expired lease and re-deals "a"
	// The original worker's late failure report must not add a second
	// strike — its lease's strike was the reap's.
	if got := q.Fail(l.Token, "a", "late report"); got != FailAccepted {
		t.Fatalf("late Fail = %q, want accepted (no-op)", got)
	}
	if qs := q.Quarantined(); len(qs) != 0 {
		t.Fatalf("one lease produced two strikes: %+v", qs)
	}
}

func TestQueueCompleteRescuesQuarantined(t *testing.T) {
	q, _ := newClockQueue([]string{"a"}, time.Minute)
	q.MaxStrikes = 1
	l := q.Lease("w")
	if got := q.Fail(l.Token, "a", "flaky"); got != FailQuarantined {
		t.Fatalf("Fail = %q, want quarantined", got)
	}
	// A straggler's real completion beats the synthesized failure row.
	if got := q.Complete(l.Token, "a"); got != CompleteAccepted {
		t.Fatalf("Complete of quarantined scenario = %q, want accepted", got)
	}
	if qs := q.Quarantined(); len(qs) != 0 {
		t.Errorf("scenario still parked after rescue: %+v", qs)
	}
	if !q.Done() {
		t.Error("queue not done after rescue")
	}
}

func TestQueueDrainStopsLeasingOnly(t *testing.T) {
	q, _ := newClockQueue([]string{"a", "b"}, time.Minute)
	l := q.Lease("w")
	q.Drain()
	if !q.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if r := q.Lease("w2"); r.Status != StatusDrain {
		t.Fatalf("lease while draining = %+v, want drain", r)
	}
	// In-flight work still heartbeats and completes.
	if !q.Heartbeat(l.Token) {
		t.Error("heartbeat refused while draining")
	}
	if got := q.Complete(l.Token, l.Scenario); got != CompleteAccepted {
		t.Errorf("complete while draining = %q, want accepted", got)
	}
}

func TestQueueNoQuarantineWithoutMaxStrikes(t *testing.T) {
	q, clk := newClockQueue([]string{"a"}, time.Minute)
	// MaxStrikes = 0: a flaky scenario is re-dealt forever, never parked.
	for i := 0; i < 5; i++ {
		l := q.Lease("w")
		if l.Scenario != "a" {
			t.Fatalf("round %d leased %q", i, l.Scenario)
		}
		clk.advance(2 * time.Minute)
	}
	if qs := q.Quarantined(); len(qs) != 0 {
		t.Fatalf("quarantined without MaxStrikes: %+v", qs)
	}
}

func TestQueueReopen(t *testing.T) {
	q, _ := newClockQueue([]string{"a", "b"}, time.Minute)
	l := q.Lease("w")
	if got := q.Complete(l.Token, "a"); got != CompleteAccepted {
		t.Fatal(got)
	}
	q.Reopen("a")
	if q.Done() {
		t.Fatal("queue done after reopen")
	}
	// Reopened work comes back at the front, ahead of b.
	if r := q.Lease("w"); r.Scenario != "a" {
		t.Errorf("post-reopen lease = %q, want a", r.Scenario)
	}
}
