package farm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"offramps"
)

// errLeaseLost marks a run abandoned because the coordinator reported
// the lease gone — someone else owns the scenario now, so the worker
// just moves on.
var errLeaseLost = errors.New("farm: lease lost")

// Worker is the stateless side of the farm: fetch the suite once, then
// lease scenario names, recover each lease's sub-suite (owned scenario
// plus helper golden runs) via SuiteSpec.Subset, run it through the
// ordinary campaign path, and stream the rows back. All state a worker
// accumulates is its golden cache — kill it at any point and the lease
// expiry returns its scenario to the queue.
type Worker struct {
	// Client reaches the coordinator.
	Client *Client
	// Name labels this worker in lease requests (display only).
	Name string
	// Dir resolves the suite's relative program paths (usually the
	// directory the coordinator loaded the spec from).
	Dir string
	// Cache is the shared golden cache (nil = a fresh one), so helper
	// goldens simulate once per worker, not once per lease.
	Cache *offramps.GoldenCache
	// Poll is the wait between retries when the queue is momentarily
	// empty or the coordinator is unreachable (0 = 500ms).
	Poll time.Duration
	// MaxRetries bounds consecutive transport failures before the worker
	// gives up (0 = 10).
	MaxRetries int
	// Max stops the worker after completing this many scenarios (0 =
	// run until the sweep is done). Useful for drain tests.
	Max int
	// Log receives progress lines (nil = discard).
	Log io.Writer
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 500 * time.Millisecond
}

func (w *Worker) retries() int {
	if w.MaxRetries > 0 {
		return w.MaxRetries
	}
	return 10
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "worker %s: %s\n", w.Name, fmt.Sprintf(format, args...))
	}
}

// sleep waits one poll interval or until ctx is cancelled.
func (w *Worker) sleep(ctx context.Context) error {
	t := time.NewTimer(w.poll())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Run executes the worker loop until the sweep is done, Max scenarios
// have completed, or ctx is cancelled. It returns the number of
// scenarios this worker completed.
func (w *Worker) Run(ctx context.Context) (int, error) {
	cache := w.Cache
	if cache == nil {
		cache = offramps.NewGoldenCache()
	}

	var data []byte
	for attempt := 0; ; attempt++ {
		var err error
		data, err = w.Client.FetchSuite(ctx)
		if err == nil {
			break
		}
		if attempt+1 >= w.retries() {
			return 0, fmt.Errorf("fetching suite: %w", err)
		}
		w.logf("fetching suite: %v (retrying)", err)
		if serr := w.sleep(ctx); serr != nil {
			return 0, serr
		}
	}
	suite, err := offramps.ParseSuiteSpec(data, w.Dir)
	if err != nil {
		return 0, fmt.Errorf("parsing suite: %w", err)
	}
	w.logf("joined sweep %q (%d scenarios)", suite.Name, len(suite.Scenarios))

	completed := 0
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		lease, err := w.Client.Lease(ctx, w.Name)
		if err != nil {
			failures++
			if failures >= w.retries() {
				return completed, fmt.Errorf("leasing: %w", err)
			}
			if serr := w.sleep(ctx); serr != nil {
				return completed, serr
			}
			continue
		}
		failures = 0
		switch lease.Status {
		case StatusDone:
			w.logf("sweep done after %d scenarios", completed)
			return completed, nil
		case StatusWait:
			if serr := w.sleep(ctx); serr != nil {
				return completed, serr
			}
			continue
		case StatusLease:
			err := w.runOne(ctx, suite, cache, lease)
			if errors.Is(err, errLeaseLost) {
				w.logf("lease on %q lost; moving on", lease.Scenario)
				continue
			}
			if err != nil {
				return completed, err
			}
			completed++
			if w.Max > 0 && completed >= w.Max {
				w.logf("reached max of %d scenarios", w.Max)
				return completed, nil
			}
		default:
			return completed, fmt.Errorf("lease: unknown status %q", lease.Status)
		}
	}
}

// runOne runs a single leased scenario end to end: sub-suite, campaign,
// filter to owned rows, encode as JSONL, complete.
func (w *Worker) runOne(ctx context.Context, suite *offramps.SuiteSpec, cache *offramps.GoldenCache, lease *LeaseReply) error {
	sub, err := suite.Subset(lease.Scenario)
	if err != nil {
		return fmt.Errorf("lease %q: %w", lease.Scenario, err)
	}

	// Heartbeat at a third of the TTL; a reported-gone lease cancels the
	// run so the worker abandons work someone else now owns.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var lost atomic.Bool
	hbDone := make(chan struct{})
	interval := time.Duration(lease.TTLMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				ok, err := w.Client.Heartbeat(runCtx, lease.Token)
				if err == nil && !ok {
					lost.Store(true)
					cancel()
					return
				}
				// Transport errors are ignored: lease expiry on the
				// coordinator is the authority, and the completion path
				// below tolerates an expired lease anyway.
			}
		}
	}()

	w.logf("running %q (%d scenario(s) incl. goldens)", lease.Scenario, len(sub.Spec.Scenarios))
	camp := offramps.Campaign{Cache: cache}
	rep, err := camp.RunSuite(runCtx, sub.Spec)
	cancel()
	<-hbDone
	if err != nil {
		if lost.Load() {
			return errLeaseLost
		}
		return fmt.Errorf("running %q: %w", lease.Scenario, err)
	}
	rep = sub.Filter(rep)
	if len(rep.Results) != 1 {
		return fmt.Errorf("lease %q: filtered report has %d owned rows, want 1", lease.Scenario, len(rep.Results))
	}

	req := CompleteRequest{Token: lease.Token, Scenario: lease.Scenario}
	var buf bytes.Buffer
	sink := offramps.NewJSONLSink(&buf)
	sink.Label = suite.Name
	for _, cmp := range rep.Comparisons {
		buf.Reset()
		if err := sink.EmitCompare(cmp); err != nil {
			return err
		}
		req.Compares = append(req.Compares, append([]byte(nil), bytes.TrimRight(buf.Bytes(), "\n")...))
	}
	buf.Reset()
	if err := sink.Emit(rep.Results[0]); err != nil {
		return err
	}
	req.Row = append([]byte(nil), bytes.TrimRight(buf.Bytes(), "\n")...)

	for attempt := 0; ; attempt++ {
		status, err := w.Client.Complete(ctx, req)
		if err == nil {
			w.logf("completed %q: %s", lease.Scenario, status)
			return nil
		}
		if attempt+1 >= w.retries() {
			return fmt.Errorf("completing %q: %w", lease.Scenario, err)
		}
		w.logf("completing %q: %v (retrying)", lease.Scenario, err)
		if serr := w.sleep(ctx); serr != nil {
			return serr
		}
	}
}
