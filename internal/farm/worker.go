package farm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"offramps"
	"offramps/internal/farm/faults"
)

// errLeaseLost marks a run abandoned because the coordinator reported
// the lease gone — someone else owns the scenario now, so the worker
// just moves on.
var errLeaseLost = errors.New("farm: lease lost")

// errScenarioFailed marks a lease released through the fail endpoint:
// the worker moves on, but the scenario did not complete and must not
// count toward Max or the completion total.
var errScenarioFailed = errors.New("farm: scenario failed")

// HeartbeatInterval is the worker's heartbeat cadence for a lease TTL:
// TTL/3, clamped into [50ms, TTL/2]. The upper clamp matters — the old
// max(TTL/3, 1s) floor meant a TTL under ~1.5s heartbeat *slower* than
// half the window, so a worker could lose a perfectly live lease to its
// own timer. Non-positive TTLs (a coordinator that sent none) fall back
// to 1s.
func HeartbeatInterval(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return time.Second
	}
	iv := ttl / 3
	if iv < 50*time.Millisecond {
		iv = 50 * time.Millisecond
	}
	if iv > ttl/2 {
		iv = ttl / 2
	}
	return iv
}

// Worker is the stateless side of the farm: fetch the suite once, then
// lease scenario names, recover each lease's sub-suite (owned scenario
// plus helper golden runs) via SuiteSpec.Subset, run it through the
// ordinary campaign path, and stream the rows back. All state a worker
// accumulates is its golden cache — kill it at any point and the lease
// expiry returns its scenario to the queue.
//
// Transport failures retry under capped exponential backoff with full
// jitter (Backoff); a scenario the worker cannot run is reported via
// the fail endpoint (a strike toward quarantine) instead of killing the
// worker, so one poison scenario cannot take the fleet down with it.
type Worker struct {
	// Client reaches the coordinator.
	Client *Client
	// Name labels this worker in lease requests (display only).
	Name string
	// Dir resolves the suite's relative program paths (usually the
	// directory the coordinator loaded the spec from).
	Dir string
	// Cache is the shared golden cache (nil = a fresh one), so helper
	// goldens simulate once per worker, not once per lease.
	Cache *offramps.GoldenCache
	// Poll is the wait between lease polls while the queue is
	// momentarily empty (0 = 500ms).
	Poll time.Duration
	// Backoff shapes transport-failure retries (zero = defaults:
	// 100ms base, 5s cap, 10 attempts).
	Backoff faults.Backoff
	// MaxRetries overrides Backoff.Attempts when set (kept as the
	// command-line knob).
	MaxRetries int
	// Max stops the worker after completing this many scenarios (0 =
	// run until the sweep is done). Useful for drain tests.
	Max int
	// Clock is the time source (nil = faults.Wall{}); injectable so
	// chaos runs are reproducible.
	Clock faults.Clock
	// Seed fixes the retry-jitter stream (0 = derived from Name).
	Seed uint64
	// Log receives progress lines (nil = discard).
	Log io.Writer

	rng *rand.Rand
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 500 * time.Millisecond
}

func (w *Worker) attempts() int {
	if w.MaxRetries > 0 {
		return w.MaxRetries
	}
	return w.Backoff.MaxAttempts()
}

func (w *Worker) clock() faults.Clock {
	if w.Clock != nil {
		return w.Clock
	}
	return faults.Wall{}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "worker %s: %s\n", w.Name, fmt.Sprintf(format, args...))
	}
}

// retry runs op under the worker's backoff policy: up to attempts()
// tries, sleeping a full-jitter backoff between them. The last error
// wins; a context cancellation surfaces immediately.
func (w *Worker) retry(ctx context.Context, what string, op func(context.Context) error) error {
	max := w.attempts()
	for attempt := 0; ; attempt++ {
		err := op(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt+1 >= max {
			return fmt.Errorf("%s (after %d attempts): %w", what, max, err)
		}
		delay := w.Backoff.Delay(attempt, w.rng)
		w.logf("%s: %v (retry %d/%d in %v)", what, err, attempt+1, max-1, delay.Round(time.Millisecond))
		if serr := w.clock().Sleep(ctx, delay); serr != nil {
			return serr
		}
	}
}

// Run executes the worker loop until the sweep is done or draining, Max
// scenarios have completed, or ctx is cancelled. It returns the number
// of scenarios this worker completed.
func (w *Worker) Run(ctx context.Context) (int, error) {
	cache := w.Cache
	if cache == nil {
		cache = offramps.NewGoldenCache()
	}
	if w.rng == nil {
		seed := w.Seed
		if seed == 0 {
			seed = faults.SeedFromString(w.Name)
		}
		w.rng = faults.NewRand(seed)
	}

	// Fetch *and parse* under one retry umbrella: a truncated or garbled
	// body is as retryable as a refused connection.
	var suite *offramps.SuiteSpec
	err := w.retry(ctx, "fetching suite", func(ctx context.Context) error {
		data, err := w.Client.FetchSuite(ctx)
		if err != nil {
			return err
		}
		s, err := offramps.ParseSuiteSpec(data, w.Dir)
		if err != nil {
			return fmt.Errorf("parsing suite: %w", err)
		}
		suite = s
		return nil
	})
	if err != nil {
		return 0, err
	}
	w.logf("joined sweep %q (%d scenarios)", suite.Name, len(suite.Scenarios))

	completed := 0
	for {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		var lease *LeaseReply
		err := w.retry(ctx, "leasing", func(ctx context.Context) error {
			l, err := w.Client.Lease(ctx, w.Name)
			if err == nil {
				lease = l
			}
			return err
		})
		if err != nil {
			return completed, err
		}
		switch lease.Status {
		case StatusDone:
			w.logf("sweep done after %d scenarios", completed)
			return completed, nil
		case StatusDrain:
			w.logf("coordinator draining; exiting after %d scenarios", completed)
			return completed, nil
		case StatusWait:
			if serr := w.clock().Sleep(ctx, w.poll()); serr != nil {
				return completed, serr
			}
			continue
		case StatusLease:
			err := w.runOne(ctx, suite, cache, lease)
			if errors.Is(err, errLeaseLost) {
				w.logf("lease on %q lost; moving on", lease.Scenario)
				continue
			}
			if errors.Is(err, errScenarioFailed) {
				continue
			}
			if err != nil {
				return completed, err
			}
			completed++
			if w.Max > 0 && completed >= w.Max {
				w.logf("reached max of %d scenarios", w.Max)
				return completed, nil
			}
		default:
			return completed, fmt.Errorf("lease: unknown status %q", lease.Status)
		}
	}
}

// fail reports a scenario this worker could not run — best-effort: the
// coordinator's lease expiry is the fallback strike if the report never
// lands.
func (w *Worker) fail(ctx context.Context, lease *LeaseReply, cause error) {
	w.logf("failing %q: %v", lease.Scenario, cause)
	err := w.retry(ctx, fmt.Sprintf("reporting failure of %q", lease.Scenario), func(ctx context.Context) error {
		status, err := w.Client.Fail(ctx, FailRequest{
			Token:    lease.Token,
			Scenario: lease.Scenario,
			Error:    cause.Error(),
		})
		if err == nil {
			w.logf("failure of %q recorded: %s", lease.Scenario, status)
		}
		return err
	})
	if err != nil {
		w.logf("failure report for %q never landed: %v (lease expiry will strike it)", lease.Scenario, err)
	}
}

// runOne runs a single leased scenario end to end: sub-suite, campaign,
// filter to owned rows, encode as JSONL, complete. A scenario that
// cannot run is reported as failed and does not error the worker.
func (w *Worker) runOne(ctx context.Context, suite *offramps.SuiteSpec, cache *offramps.GoldenCache, lease *LeaseReply) error {
	sub, err := suite.Subset(lease.Scenario)
	if err != nil {
		w.fail(ctx, lease, fmt.Errorf("lease %q: %w", lease.Scenario, err))
		return errScenarioFailed
	}

	// Heartbeat on the clamped cadence; a reported-gone lease cancels
	// the run so the worker abandons work someone else now owns.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var lost atomic.Bool
	hbDone := make(chan struct{})
	interval := HeartbeatInterval(time.Duration(lease.TTLMillis) * time.Millisecond)
	go func() {
		defer close(hbDone)
		for {
			if err := w.clock().Sleep(runCtx, interval); err != nil {
				return
			}
			ok, err := w.Client.Heartbeat(runCtx, lease.Token)
			if err == nil && !ok {
				lost.Store(true)
				cancel()
				return
			}
			// Transport errors are ignored: lease expiry on the
			// coordinator is the authority, and the completion path
			// below tolerates an expired lease anyway.
		}
	}()

	w.logf("running %q (%d scenario(s) incl. goldens)", lease.Scenario, len(sub.Spec.Scenarios))
	camp := offramps.Campaign{Cache: cache}
	rep, runErr := camp.RunSuite(runCtx, sub.Spec)
	cancel()
	<-hbDone
	if runErr == nil {
		rep = sub.Filter(rep)
		if len(rep.Results) != 1 {
			runErr = fmt.Errorf("filtered report has %d owned rows, want 1", len(rep.Results))
		}
	}
	if runErr != nil {
		if lost.Load() {
			return errLeaseLost
		}
		if ctx.Err() != nil {
			// The worker itself is being shut down, not the scenario
			// failing: surface the cancellation.
			return fmt.Errorf("running %q: %w", lease.Scenario, runErr)
		}
		w.fail(ctx, lease, fmt.Errorf("running %q: %w", lease.Scenario, runErr))
		return errScenarioFailed
	}

	req := CompleteRequest{Token: lease.Token, Scenario: lease.Scenario}
	var buf bytes.Buffer
	sink := offramps.NewJSONLSink(&buf)
	sink.Label = suite.Name
	for _, cmp := range rep.Comparisons {
		buf.Reset()
		if err := sink.EmitCompare(cmp); err != nil {
			w.fail(ctx, lease, fmt.Errorf("encoding %q: %w", lease.Scenario, err))
			return errScenarioFailed
		}
		req.Compares = append(req.Compares, append([]byte(nil), bytes.TrimRight(buf.Bytes(), "\n")...))
	}
	buf.Reset()
	if err := sink.Emit(rep.Results[0]); err != nil {
		w.fail(ctx, lease, fmt.Errorf("encoding %q: %w", lease.Scenario, err))
		return errScenarioFailed
	}
	req.Row = append([]byte(nil), bytes.TrimRight(buf.Bytes(), "\n")...)

	err = w.retry(ctx, fmt.Sprintf("completing %q", lease.Scenario), func(ctx context.Context) error {
		status, err := w.Client.Complete(ctx, req)
		if err == nil {
			w.logf("completed %q: %s", lease.Scenario, status)
		}
		return err
	})
	if err != nil {
		if ctx.Err() != nil {
			return err
		}
		// An undeliverable completion releases the lease with a strike
		// rather than killing the worker: if the whole coordinator is down
		// the next lease call will fail too, but a poison path that only
		// rejects this scenario's rows must not take the fleet with it.
		w.fail(ctx, lease, err)
		return errScenarioFailed
	}
	return nil
}
