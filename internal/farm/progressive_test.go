package farm

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"offramps"
	"offramps/internal/sched"
)

// sweepGrid is a small multi-seed sweep with a detection boundary: the
// clean cell compares equal to the golden, the T2 cell does not, so
// both cells border each other and refinement has something to chase.
const sweepGrid = `{
  "name": "farm-sweep",
  "baseSeed": 1,
  "extra": [{"name": "golden"}],
  "axes": {
    "trojans": [{"label": "clean"}, {"name": "T2"}],
    "seeds": {"delta": true, "values": [10, 20, 30]}
  },
  "compareWith": "golden"
}`

// loadSweep expands the sweep grid fresh, returning the suite and its
// progressive layout.
func loadSweep(t *testing.T) (*offramps.SuiteSpec, *sched.Grid) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid_sweep.json")
	if err := os.WriteFile(path, []byte(sweepGrid), 0o644); err != nil {
		t.Fatal(err)
	}
	suite, layout, err := offramps.LoadSuiteOrGridLayout(path, true)
	if err != nil {
		t.Fatal(err)
	}
	return suite, layout
}

// localProgressiveDoc is the reference: a single-process progressive
// run, serialized exactly as `suite -json` writes it.
func localProgressiveDoc(t *testing.T, cfg sched.Config) []byte {
	t.Helper()
	suite, layout := loadSweep(t)
	c := offramps.Campaign{Cache: offramps.NewGoldenCache()}
	rep, _, err := c.RunSuiteProgressive(context.Background(), suite, layout, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	doc := struct {
		Suites []*offramps.SuiteReport `json:"suites"`
	}{[]*offramps.SuiteReport{rep}}
	if err := offramps.EncodeReport(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFarmProgressiveByteIdentity: a distributed progressive sweep —
// rounds dealt through the lease queue, skips synthesized by the
// coordinator — must stitch to the exact bytes of a single-process
// RunSuiteProgressive with the same budget and early-stop settings.
func TestFarmProgressiveByteIdentity(t *testing.T) {
	for _, cfg := range []sched.Config{
		{}, // unlimited: also byte-identical to the naive full run
		{Budget: 5, EarlyStopK: 2},
	} {
		want := localProgressiveDoc(t, cfg)

		suite, layout := loadSweep(t)
		journal := filepath.Join(t.TempDir(), "sweep.jsonl")
		co, err := NewCoordinator(suite, Config{
			TTL:         30 * time.Second,
			Journal:     journal,
			Progressive: &Progressive{Layout: layout, Sched: cfg},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer co.Close()
		srv := httptest.NewServer(co.Handler())
		defer srv.Close()

		runWorkers(t, co, srv.URL, 2)
		if got := stitchDoc(t, co); !bytes.Equal(got, want) {
			t.Errorf("cfg %+v: farm progressive report differs from local progressive run\nlocal: %d bytes\nfarm:  %d bytes", cfg, len(want), len(got))
		}
		if st, ok := co.SweepStats(); !ok {
			t.Error("SweepStats() not available on a progressive coordinator")
		} else if st.Covered != st.Cells {
			t.Errorf("cfg %+v: covered %d of %d cells", cfg, st.Covered, st.Cells)
		}
	}
}

// TestFarmProgressiveResume: a progressive sweep killed after a partial
// round resumes from its journal — restarted with the same Progressive
// settings — and still stitches the local progressive run's bytes.
// Resumed rows observe into the re-derived schedule instantly, and
// already-journaled skip rows are not synthesized twice.
func TestFarmProgressiveResume(t *testing.T) {
	cfg := sched.Config{Budget: 5, EarlyStopK: 2}
	want := localProgressiveDoc(t, cfg)
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.jsonl")

	// Phase 1: one worker completes two scenarios, then the coordinator
	// "dies" mid-sweep.
	suite1, layout1 := loadSweep(t)
	co1, err := NewCoordinator(suite1, Config{
		TTL:         30 * time.Second,
		Journal:     journal,
		Progressive: &Progressive{Layout: layout1, Sched: cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(co1.Handler())
	w := &Worker{Client: &Client{Base: srv1.URL}, Name: "partial", Poll: 5 * time.Millisecond, Max: 2}
	if n, err := w.Run(context.Background()); err != nil || n != 2 {
		t.Fatalf("partial worker: n=%d err=%v", n, err)
	}
	srv1.Close()
	if err := co1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh coordinator with the same Progressive settings
	// replays the journal into the schedule and workers finish the sweep.
	suite2, layout2 := loadSweep(t)
	co2, err := NewCoordinator(suite2, Config{
		TTL:         30 * time.Second,
		Journal:     journal,
		Progressive: &Progressive{Layout: layout2, Sched: cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	if co2.Resumed() == 0 {
		t.Fatal("nothing resumed from the journal")
	}
	srv2 := httptest.NewServer(co2.Handler())
	defer srv2.Close()
	runWorkers(t, co2, srv2.URL, 2)

	if got := stitchDoc(t, co2); !bytes.Equal(got, want) {
		t.Error("resumed progressive farm report differs from uninterrupted local progressive run")
	}
}

// TestQueueHoldRelease covers the round-barrier primitives the
// progressive coordinator drives the queue with.
func TestQueueHoldRelease(t *testing.T) {
	q := NewQueue([]string{"a", "b", "c"}, time.Minute)
	q.Hold()
	if r := q.Lease("w"); r.Status != StatusWait {
		t.Fatalf("held queue dealt %+v, want wait", r)
	}

	q.Release("b", "nope", "b", "a")
	r1 := q.Lease("w")
	r2 := q.Lease("w")
	if r1.Scenario != "b" || r2.Scenario != "a" {
		t.Fatalf("released order = %s, %s; want b, a", r1.Scenario, r2.Scenario)
	}
	// Releasing a leased or done scenario is a no-op.
	if st := q.Complete(r1.Token, "b"); st != CompleteAccepted {
		t.Fatalf("complete b = %s", st)
	}
	q.Release("b", "a", "c")
	if r := q.Lease("w"); r.Scenario != "c" {
		t.Fatalf("lease after re-release = %+v, want c", r)
	}
}
