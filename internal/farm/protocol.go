// This file defines the wire protocol of the coordinator's HTTP API;
// the package documentation lives in doc.go.
package farm

import "encoding/json"

// Endpoint paths of the coordinator's HTTP API (version-prefixed so the
// protocol can evolve under running fleets).
const (
	PathSuite     = "/v1/suite"
	PathLease     = "/v1/lease"
	PathHeartbeat = "/v1/heartbeat"
	PathComplete  = "/v1/complete"
	PathFail      = "/v1/fail"
	PathStatus    = "/v1/status"
)

// Lease reply statuses.
const (
	StatusLease = "lease" // a scenario is attached; run it
	StatusWait  = "wait"  // queue momentarily empty but the sweep is live; poll again
	StatusDone  = "done"  // every scenario is complete; the worker may exit
	StatusDrain = "drain" // the coordinator is draining; no new work, the worker may exit
)

// Complete reply statuses.
const (
	CompleteAccepted  = "accepted"  // first completion; rows recorded
	CompleteDuplicate = "duplicate" // already complete; rows dropped (deterministic repeat)
	CompleteUnknown   = "unknown"   // scenario is not in this sweep
)

// LeaseRequest asks for one scenario. Worker is a display name for
// status output; it does not gate anything.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseReply carries one granted lease (StatusLease) or the queue's
// state. TTLMillis is the lease's heartbeat deadline: miss it and the
// scenario returns to the queue for another worker.
type LeaseReply struct {
	Status    string `json:"status"`
	Scenario  string `json:"scenario,omitempty"`
	Token     string `json:"token,omitempty"`
	TTLMillis int64  `json:"ttlMillis,omitempty"`
}

// HeartbeatRequest extends a live lease.
type HeartbeatRequest struct {
	Token string `json:"token"`
}

// HeartbeatReply reports whether the lease is still held. A false OK
// means the lease expired (and may be running elsewhere): the worker
// should abandon the scenario.
type HeartbeatReply struct {
	OK bool `json:"ok"`
}

// CompleteRequest returns a finished scenario's rows: the JSONL
// comparison rows first, then the scenario row — journal order, so the
// coordinator can append them verbatim and the "scenario row present ⇒
// its comparisons present" resume invariant holds. Rows are raw JSONL
// lines exactly as JSONLSink writes them.
type CompleteRequest struct {
	Token    string            `json:"token"`
	Scenario string            `json:"scenario"`
	Compares []json.RawMessage `json:"compares,omitempty"`
	Row      json.RawMessage   `json:"row"`
}

// CompleteReply acknowledges a completion.
type CompleteReply struct {
	Status string `json:"status"`
}

// Fail reply statuses.
const (
	FailAccepted    = "accepted"    // strike recorded; the scenario is requeued
	FailQuarantined = "quarantined" // the strike tipped the scenario into quarantine
	FailDuplicate   = "duplicate"   // the scenario already completed; strike ignored
	FailUnknown     = "unknown"     // scenario is not in this sweep
)

// FailRequest reports a run failure: the worker could not produce the
// scenario's rows (simulation error, local crash path) and is releasing
// the lease. Each failure is a strike; a scenario failed or abandoned by
// enough distinct leases is quarantined instead of requeued forever.
type FailRequest struct {
	Token    string `json:"token"`
	Scenario string `json:"scenario"`
	Error    string `json:"error,omitempty"`
}

// FailReply acknowledges a failure report.
type FailReply struct {
	Status string `json:"status"`
}

// QuarantinedScenario is one parked scenario in the status snapshot.
type QuarantinedScenario struct {
	Scenario string `json:"scenario"`
	Strikes  int    `json:"strikes"`
	Reason   string `json:"reason,omitempty"`
}

// StatusReply is the human/status endpoint's snapshot.
type StatusReply struct {
	Suite       string                `json:"suite"`
	Pending     int                   `json:"pending"`
	Leased      int                   `json:"leased"`
	Done        int                   `json:"done"`
	Total       int                   `json:"total"`
	Draining    bool                  `json:"draining,omitempty"`
	Quarantined []QuarantinedScenario `json:"quarantined,omitempty"`
}
