// Package farm is the distributed campaign service: a small HTTP
// coordinator owning a work queue of scenario names, and stateless
// workers that lease scenarios, run them through the normal
// campaign/testbed path, and stream the resulting rows back.
//
// The design leans entirely on the determinism the rest of the stack
// already guarantees. A unit of work is a scenario *name*; the worker
// recovers everything else (the sub-suite with helper golden runs) from
// the suite spec via SuiteSpec.Subset, so a lease is a few bytes, not a
// payload. Results travel as the same JSONL rows `suite -jsonl` writes,
// the coordinator journals them verbatim, and the final report is
// stitched from raw rows — byte-identical to an uninterrupted local
// run. Leases expire on missed heartbeats and return to the queue;
// duplicate completions (an expired lease finishing anyway) are
// deterministic repeats and are dropped, first completion wins.
//
// Failure handling is graceful degradation: transport faults retry
// under jittered backoff, a scenario failed or abandoned by MaxStrikes
// distinct leases is quarantined (parked, surfaced in status, reported
// as an error row) instead of livelocking the sweep, and the journal is
// append-only with torn-tail-tolerant resume and atomic compaction
// (DESIGN.md §10–§11).
//
// With Config.Progressive set, the coordinator feeds its lease queue
// from the progressive scheduler (internal/sched) instead of naive
// suite order: scenarios are dealt in rounds — one seed per grid cell
// first, then refinement around detection-boundary cells — and
// scenarios the scheduler retires are journaled as synthesized
// "skipped (...)" rows. The queue is reordered, never re-keyed, so
// leases, journals, resume, quarantine, and stitching all work
// unchanged; a resumed progressive sweep must be restarted with the
// same Progressive settings it began with (DESIGN.md §14).
package farm
