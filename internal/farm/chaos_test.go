package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"offramps"
	"offramps/internal/farm/faults"
)

// chaosSeedOffset shifts every transport and jitter seed in the chaos
// suite, so CI can sweep fault schedules (FARM_CHAOS_SEED matrix)
// without touching the base seeds the byte-identity assertion anchors
// to. Unset or unparsable means offset 0 — the committed schedule.
func chaosSeedOffset() uint64 {
	v, err := strconv.ParseUint(os.Getenv("FARM_CHAOS_SEED"), 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// chaosRules is the scripted fault schedule for the byte-identity run:
// every fault kind the transport knows, at rates low enough that the
// worker's backoff always outlasts them. Duplicate is confined to
// idempotent paths — duplicating a lease request would grant a phantom
// lease whose scenario sits out a full TTL.
func chaosRules() []faults.Rule {
	return []faults.Rule{
		{Path: PathComplete, Kind: faults.Duplicate, P: 0.35},
		{Path: PathHeartbeat, Kind: faults.Duplicate, P: 0.35},
		{Kind: faults.Drop, P: 0.15},
		{Kind: faults.Err500, P: 0.1},
		{Kind: faults.Truncate, P: 0.1},
		{Kind: faults.Delay, Delay: 2 * time.Millisecond, P: 0.15},
	}
}

// runChaosWorker runs one worker wired through a seeded fault transport
// and reports its error (nil on a clean exit).
func runChaosWorker(url, name string, seed uint64, tr *faults.Transport) error {
	w := &Worker{
		Client:     &Client{Base: url, HTTP: &http.Client{Transport: tr}},
		Name:       name,
		Seed:       seed,
		Poll:       5 * time.Millisecond,
		Backoff:    faults.Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond},
		MaxRetries: 12,
	}
	_, err := w.Run(context.Background())
	return err
}

// TestFarmChaosByteIdentity is the acceptance gate for the fault
// hardening: a sweep that suffers a mid-scenario worker kill, a
// heartbeat blackout past the TTL, a coordinator kill, a torn journal
// tail plus a duplicated journal row, and then finishes under workers
// whose every request runs a gauntlet of drops, delays, 5xx, truncation
// and duplicate delivery — and still stitches the exact bytes of an
// uninterrupted local run.
func TestFarmChaosByteIdentity(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			want := localDoc(t, loadFarmSuite(t, seed))
			journal := filepath.Join(t.TempDir(), "sweep.jsonl")

			// Phase 1: a short-TTL coordinator takes real damage. One lease
			// is granted and abandoned (worker killed mid-scenario); one
			// worker completes a scenario with every heartbeat dropped; one
			// clean worker banks another scenario. Then the coordinator
			// "dies". Expiry runs on a fake clock: the doomed lease dies by
			// Advance, deterministically, and the live workers' leases
			// cannot expire underneath them however slowly the sims run
			// (the race detector stretches them by an order of magnitude).
			clk := faults.NewFakeClock()
			co1, err := NewCoordinator(loadFarmSuite(t, seed), Config{
				TTL: 120 * time.Millisecond, Journal: journal, SyncEvery: 1, MaxStrikes: 25,
				Clock: clk,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv1 := httptest.NewServer(co1.Handler())
			cl := &Client{Base: srv1.URL}
			doomed, err := cl.Lease(context.Background(), "doomed")
			if err != nil || doomed.Status != StatusLease {
				t.Fatalf("doomed lease: %+v err=%v", doomed, err)
			}
			// One live heartbeat, then blackout: the worker goes silent past
			// the TTL, which must kill the lease.
			if ok, err := cl.Heartbeat(context.Background(), doomed.Token); err != nil || !ok {
				t.Fatalf("live heartbeat refused: ok=%v err=%v", ok, err)
			}
			clk.Advance(130 * time.Millisecond)
			if ok, err := cl.Heartbeat(context.Background(), doomed.Token); err != nil || ok {
				t.Fatalf("blacked-out lease still alive: ok=%v err=%v", ok, err)
			}

			// A worker whose every heartbeat is dropped in flight still
			// completes its scenario — completion, not the heartbeat stream,
			// is what lands rows. (Phase 2 covers the harsher variant where
			// the lease actually expires mid-run and first-wins absorbs it.)
			blackout := faults.NewTransport(seed+chaosSeedOffset(), faults.Rule{Path: PathHeartbeat, Kind: faults.Drop})
			w := &Worker{
				Client:  &Client{Base: srv1.URL, HTTP: &http.Client{Transport: blackout}},
				Name:    "blackout",
				Poll:    5 * time.Millisecond,
				Backoff: faults.Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond},
				Max:     1,
			}
			if _, err := w.Run(context.Background()); err != nil {
				t.Fatalf("blackout worker: %v", err)
			}
			partial := &Worker{Client: &Client{Base: srv1.URL}, Name: "partial", Poll: 5 * time.Millisecond, Max: 1}
			if _, err := partial.Run(context.Background()); err != nil {
				t.Fatalf("partial worker: %v", err)
			}
			srv1.Close()
			if err := co1.Close(); err != nil {
				t.Fatal(err)
			}

			// Crash damage to the journal: a replayed (duplicate) row and a
			// torn half-written tail, both of which resume must compact away.
			data, err := os.ReadFile(journal)
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(string(data)), "\n")
			if len(lines) < 3 {
				t.Fatalf("phase 1 journaled only %d rows:\n%s", len(lines), data)
			}
			damaged := append([]byte(nil), data...)
			damaged = append(damaged, []byte(lines[0]+"\n")...) // duplicate row
			damaged = append(damaged, []byte(lines[1][:12])...) // torn tail, no newline
			if err := os.WriteFile(journal, damaged, 0o644); err != nil {
				t.Fatal(err)
			}

			// Phase 2: resume. The coordinator must compact the damage out,
			// re-queue only the missing scenarios, and finish the sweep under
			// two workers whose transport misbehaves on every path. The TTL
			// stays short because the gauntlet can eat a lease *reply* (the
			// grant happened, the worker never saw it): that scenario is
			// stuck until expiry, and expiry is the designed recovery.
			co2, err := NewCoordinator(loadFarmSuite(t, seed), Config{
				TTL: time.Second, Journal: journal, SyncEvery: 1, MaxStrikes: 25,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer co2.Close()
			if co2.Compacted() != 2 {
				t.Errorf("Compacted() = %d, want 2 (the duplicate and the torn tail)", co2.Compacted())
			}
			if co2.Resumed() != 2 {
				t.Errorf("Resumed() = %d, want 2", co2.Resumed())
			}
			srv2 := httptest.NewServer(co2.Handler())
			defer srv2.Close()

			off := chaosSeedOffset()
			transports := []*faults.Transport{
				faults.NewTransport(seed*1000+1+off, chaosRules()...),
				faults.NewTransport(seed*1000+2+off, chaosRules()...),
			}
			var wg sync.WaitGroup
			errs := make(chan error, len(transports))
			for i, tr := range transports {
				wg.Add(1)
				go func(i int, tr *faults.Transport) {
					defer wg.Done()
					if err := runChaosWorker(srv2.URL, fmt.Sprintf("chaos%d", i), seed*10+uint64(i)+off, tr); err != nil {
						errs <- fmt.Errorf("chaos worker %d: %w", i, err)
					}
				}(i, tr)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			select {
			case <-co2.Done():
			default:
				t.Fatal("chaos workers exited but the sweep is not done")
			}
			injected := 0
			for _, tr := range transports {
				for _, n := range tr.Injected() {
					injected += n
				}
			}
			if injected == 0 {
				t.Error("chaos phase injected no faults — the schedule is not exercising anything")
			}
			t.Logf("chaos phase injected %d faults", injected)

			// The acceptance bar: byte identity with the fault-free run.
			if got := stitchDoc(t, co2); !bytes.Equal(got, want) {
				t.Errorf("chaos sweep report differs from the fault-free local run\nlocal: %d bytes\nchaos: %d bytes", len(want), len(got))
			}
			if len(co2.Quarantined()) != 0 {
				t.Errorf("chaos quarantined scenarios: %+v (strikes budget too low for the schedule)", co2.Quarantined())
			}

			// And the journal came out of it clean: no torn tail, no
			// duplicate rows, full coverage.
			if err := co2.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(journal)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := offramps.ReadResumeIndex(f, "farm-grid")
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			if ix.Torn || ix.Dups != 0 {
				t.Errorf("final journal torn=%v dups=%d, want clean", ix.Torn, ix.Dups)
			}
			if missing := ix.Missing(loadFarmSuite(t, seed)); len(missing) != 0 {
				t.Errorf("final journal is missing %v", missing)
			}
		})
	}
}

// TestFarmPoisonQuarantine scripts a scenario whose completion the
// transport always rejects: the worker strikes it out via the fail
// endpoint, the coordinator quarantines it after MaxStrikes leases, the
// sweep settles (never requeueing it indefinitely), and the stitched
// report carries loud error rows for the scenario and its comparisons
// while every healthy scenario still reports real rows.
func TestFarmPoisonQuarantine(t *testing.T) {
	spec := loadFarmSuite(t, 1)
	if len(spec.Compare) == 0 {
		t.Fatal("farm grid has no comparisons; pick a different poison target")
	}
	poison := spec.Compare[0].Suspect

	co, err := NewCoordinator(spec, Config{TTL: 30 * time.Second, MaxStrikes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	// Every completion of the poison scenario — and only it — dies with
	// a 500; the fail endpoint stays reachable, so the worker's strike
	// reports land.
	tr := faults.NewTransport(1, faults.Rule{
		Path: PathComplete,
		Body: fmt.Sprintf(`"scenario":%q`, poison),
		Kind: faults.Err500,
	})
	w := &Worker{
		Client:     &Client{Base: srv.URL, HTTP: &http.Client{Transport: tr}},
		Name:       "p1",
		Poll:       2 * time.Millisecond,
		Backoff:    faults.Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond},
		MaxRetries: 3,
	}
	n, err := w.Run(context.Background())
	if err != nil {
		t.Fatalf("worker must survive a poison scenario, got: %v", err)
	}
	if want := len(spec.Scenarios) - 1; n != want {
		t.Errorf("worker completed %d scenarios, want %d (all but the poison one)", n, want)
	}
	select {
	case <-co.Done():
	default:
		t.Fatal("sweep did not settle — the poison scenario is being requeued indefinitely")
	}

	qs := co.Quarantined()
	if len(qs) != 1 || qs[0].Scenario != poison || qs[0].Strikes != 2 {
		t.Fatalf("Quarantined() = %+v, want %q with 2 strikes", qs, poison)
	}

	// The quarantine is visible on the status endpoint.
	resp, err := http.Get(srv.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	var status StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status.Quarantined) != 1 || status.Quarantined[0].Scenario != poison {
		t.Errorf("status.Quarantined = %+v, want %q", status.Quarantined, poison)
	}
	if status.Done != len(spec.Scenarios)-1 {
		t.Errorf("status.Done = %d, want %d", status.Done, len(spec.Scenarios)-1)
	}

	// The degraded report still stitches — with the poison scenario as an
	// error row, its comparisons as error comparisons, and FirstError
	// non-nil so a farmed run exits non-zero like a local one would.
	rep, err := co.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(spec.Scenarios) {
		t.Fatalf("report has %d rows, want %d", len(rep.Results), len(spec.Scenarios))
	}
	errorRows := 0
	for _, raw := range rep.Results {
		var head struct{ Name, Err string }
		if err := json.Unmarshal(raw, &head); err != nil {
			t.Fatal(err)
		}
		if head.Name == poison {
			if !strings.Contains(head.Err, "quarantined after 2 failed leases") {
				t.Errorf("poison row error = %q, want a quarantine message", head.Err)
			}
			errorRows++
		} else if head.Err != "" {
			t.Errorf("healthy scenario %q carries error %q", head.Name, head.Err)
		}
	}
	if errorRows != 1 {
		t.Errorf("report has %d poison rows, want 1", errorRows)
	}
	errorCompares := 0
	for _, raw := range rep.Comparisons {
		var head struct {
			Golden  string `json:"golden"`
			Suspect string `json:"suspect"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			t.Fatal(err)
		}
		if head.Golden == poison || head.Suspect == poison {
			if !strings.Contains(head.Error, "quarantined") {
				t.Errorf("comparison %s vs %s touching the poison scenario has error %q", head.Golden, head.Suspect, head.Error)
			}
			errorCompares++
		} else if head.Error != "" {
			t.Errorf("healthy comparison %s vs %s carries error %q", head.Golden, head.Suspect, head.Error)
		}
	}
	if errorCompares == 0 {
		t.Error("no comparison rows reflect the quarantine")
	}
	if err := rep.FirstError(); err == nil {
		t.Error("FirstError() = nil for a degraded sweep")
	} else if !strings.Contains(err.Error(), poison) {
		t.Errorf("FirstError() = %v, want it to name %q", err, poison)
	}
}

// TestFarmDrainStopsLeasing: drain mode turns lease replies into
// "drain" (workers exit cleanly) while an in-flight completion is still
// honoured, and the journal resumes the remainder.
func TestFarmDrainStopsLeasing(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	co, err := NewCoordinator(loadFarmSuite(t, 1), Config{TTL: 30 * time.Second, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())

	// One scenario lands before the drain.
	w := &Worker{Client: &Client{Base: srv.URL}, Name: "pre", Poll: 2 * time.Millisecond, Max: 1}
	if n, err := w.Run(context.Background()); err != nil || n != 1 {
		t.Fatalf("pre-drain worker: n=%d err=%v", n, err)
	}

	co.Drain()
	// A worker joining a draining coordinator exits with zero scenarios.
	w2 := &Worker{Client: &Client{Base: srv.URL}, Name: "late", Poll: 2 * time.Millisecond}
	if n, err := w2.Run(context.Background()); err != nil || n != 0 {
		t.Fatalf("post-drain worker: n=%d err=%v (want a clean zero-scenario exit)", n, err)
	}
	srv.Close()
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal resumes the undrained remainder.
	co2, err := NewCoordinator(loadFarmSuite(t, 1), Config{TTL: 30 * time.Second, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	if co2.Resumed() != 1 {
		t.Errorf("Resumed() = %d, want 1", co2.Resumed())
	}
	srv2 := httptest.NewServer(co2.Handler())
	defer srv2.Close()
	runWorkers(t, co2, srv2.URL, 2)
	want := localDoc(t, loadFarmSuite(t, 1))
	if got := stitchDoc(t, co2); !bytes.Equal(got, want) {
		t.Error("drained-then-resumed sweep differs from the local run")
	}
}
