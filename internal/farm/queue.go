package farm

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Queue is the coordinator's work queue plus lease table. Scenarios
// move pending → leased → done; a lease that misses its heartbeat
// window expires and its scenario returns to the *front* of the queue
// (a straggler's scenario is the sweep's critical path). Completion is
// keyed by scenario name, not token, so work finished under an expired
// lease still counts — exactly once, first completion wins.
type Queue struct {
	// Now is the clock (nil = time.Now); injectable for expiry tests.
	Now func() time.Time

	mu      sync.Mutex
	ttl     time.Duration
	pending []string
	leases  map[string]*lease // token → live lease
	byName  map[string]string // leased scenario → token
	done    map[string]bool
	known   map[string]bool
	total   int
	seq     uint64
}

// lease is one outstanding grant.
type lease struct {
	token    string
	scenario string
	worker   string
	seq      uint64
	deadline time.Time
}

// NewQueue builds a queue over the scenario names in their given
// (canonical) order. ttl is the heartbeat window granted to each lease.
func NewQueue(names []string, ttl time.Duration) *Queue {
	q := &Queue{
		ttl:     ttl,
		pending: append([]string(nil), names...),
		leases:  make(map[string]*lease),
		byName:  make(map[string]string),
		done:    make(map[string]bool),
		known:   make(map[string]bool, len(names)),
		total:   len(names),
	}
	for _, n := range names {
		q.known[n] = true
	}
	return q
}

// MarkDone records a scenario as already complete — how a resumed
// coordinator seeds the queue with the journal's rows. It reports
// whether the scenario was pending.
func (q *Queue) MarkDone(name string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.known[name] || q.done[name] {
		return false
	}
	q.done[name] = true
	q.removePendingLocked(name)
	return true
}

func (q *Queue) now() time.Time {
	if q.Now != nil {
		return q.Now()
	}
	return time.Now()
}

// reapLocked returns expired leases' scenarios to the queue front, in
// lease-grant order so recovery is deterministic under the map's
// iteration randomness.
func (q *Queue) reapLocked(now time.Time) {
	var expired []*lease
	for _, l := range q.leases {
		if now.After(l.deadline) {
			expired = append(expired, l)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].seq < expired[j].seq })
	names := make([]string, 0, len(expired))
	for _, l := range expired {
		delete(q.leases, l.token)
		delete(q.byName, l.scenario)
		names = append(names, l.scenario)
	}
	q.pending = append(names, q.pending...)
}

// Lease grants the next pending scenario to worker, or reports the
// queue's state (wait: all in flight; done: all complete).
func (q *Queue) Lease(worker string) LeaseReply {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	q.reapLocked(now)
	if len(q.pending) == 0 {
		if len(q.done) == q.total {
			return LeaseReply{Status: StatusDone}
		}
		return LeaseReply{Status: StatusWait}
	}
	name := q.pending[0]
	q.pending = q.pending[1:]
	q.seq++
	l := &lease{
		token:    fmt.Sprintf("L%d", q.seq),
		scenario: name,
		worker:   worker,
		seq:      q.seq,
		deadline: now.Add(q.ttl),
	}
	q.leases[l.token] = l
	q.byName[name] = l.token
	return LeaseReply{Status: StatusLease, Scenario: name, Token: l.token, TTLMillis: q.ttl.Milliseconds()}
}

// Heartbeat extends a live lease's deadline. False means the lease
// expired (or never existed) — the caller should abandon the scenario,
// which is back in the queue.
func (q *Queue) Heartbeat(token string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	l, ok := q.leases[token]
	if !ok || now.After(l.deadline) {
		return false
	}
	l.deadline = now.Add(q.ttl)
	return true
}

// Complete marks a scenario done. The token is advisory: a completion
// under an expired or superseded lease is still accepted as long as the
// scenario is not already done (determinism makes every completion of a
// scenario bit-identical, so first wins and the rest are duplicates).
func (q *Queue) Complete(token, scenario string) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.known[scenario] {
		return CompleteUnknown
	}
	if q.done[scenario] {
		return CompleteDuplicate
	}
	q.done[scenario] = true
	delete(q.leases, token)
	// The scenario may have been re-leased after this worker's lease
	// expired, or returned to pending; either way it is done now.
	if other, ok := q.byName[scenario]; ok {
		delete(q.leases, other)
		delete(q.byName, scenario)
	}
	q.removePendingLocked(scenario)
	return CompleteAccepted
}

// Reopen returns a done scenario to the queue front. The completion
// path uses it when recording an accepted completion's rows failed —
// the ack must not outlive the record, so the scenario re-runs.
func (q *Queue) Reopen(name string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.known[name] || !q.done[name] {
		return
	}
	delete(q.done, name)
	q.pending = append([]string{name}, q.pending...)
}

func (q *Queue) removePendingLocked(name string) {
	for i, n := range q.pending {
		if n == name {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return
		}
	}
}

// Done reports whether every scenario has completed.
func (q *Queue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.done) == q.total
}

// Counts snapshots the queue for status output.
func (q *Queue) Counts() (pending, leased, done, total int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending), len(q.leases), len(q.done), q.total
}
