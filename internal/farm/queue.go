package farm

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Queue is the coordinator's work queue plus lease table. Scenarios
// move pending → leased → done; a lease that misses its heartbeat
// window expires and its scenario returns to the *front* of the queue
// (a straggler's scenario is the sweep's critical path). Completion is
// keyed by scenario name, not token, so work finished under an expired
// lease still counts — exactly once, first completion wins.
//
// Every lease that ends in expiry or an explicit failure report is a
// strike against its scenario. A scenario that collects MaxStrikes
// strikes is quarantined: parked out of the queue and surfaced in
// status and the final report instead of being re-dealt forever — a
// poison scenario degrades the sweep instead of livelocking it. A
// completion for a quarantined scenario still rescues it (a straggler
// finishing real work beats a synthesized failure row).
type Queue struct {
	// Now is the clock (nil = time.Now); injectable for expiry tests.
	Now func() time.Time
	// MaxStrikes quarantines a scenario once this many of its leases
	// expired or failed (≤ 0 = never quarantine). Set before serving.
	MaxStrikes int
	// OnQuarantine, when non-nil, runs (without the queue's lock) after
	// one or more scenarios are quarantined — the coordinator's hook for
	// noticing a sweep that settled by degradation. Set before serving.
	OnQuarantine func()

	mu         sync.Mutex
	ttl        time.Duration
	draining   bool
	pending    []string
	leases     map[string]*lease // token → live lease
	byName     map[string]string // leased scenario → token
	done       map[string]bool
	known      map[string]bool
	strikes    map[string]int
	quarantine map[string]*QuarantinedScenario
	total      int
	seq        uint64
}

// lease is one outstanding grant.
type lease struct {
	token    string
	scenario string
	worker   string
	seq      uint64
	deadline time.Time
}

// NewQueue builds a queue over the scenario names in their given
// (canonical) order. ttl is the heartbeat window granted to each lease.
func NewQueue(names []string, ttl time.Duration) *Queue {
	q := &Queue{
		ttl:        ttl,
		pending:    append([]string(nil), names...),
		leases:     make(map[string]*lease),
		byName:     make(map[string]string),
		done:       make(map[string]bool),
		known:      make(map[string]bool, len(names)),
		strikes:    make(map[string]int),
		quarantine: make(map[string]*QuarantinedScenario),
		total:      len(names),
	}
	for _, n := range names {
		q.known[n] = true
	}
	return q
}

// MarkDone records a scenario as already complete — how a resumed
// coordinator seeds the queue with the journal's rows. It reports
// whether the scenario was pending.
func (q *Queue) MarkDone(name string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.known[name] || q.done[name] {
		return false
	}
	q.done[name] = true
	q.removePendingLocked(name)
	return true
}

func (q *Queue) now() time.Time {
	if q.Now != nil {
		return q.Now()
	}
	return time.Now()
}

// settledLocked reports whether every scenario is accounted for — done
// or quarantined — i.e. no further work will ever be dealt.
func (q *Queue) settledLocked() bool {
	return len(q.done)+len(q.quarantine) == q.total
}

// strikeLocked records one failed/abandoned lease against a scenario
// and reports whether the strike tipped it into quarantine. reason
// describes the terminal strike for the status output.
func (q *Queue) strikeLocked(name, reason string) bool {
	q.strikes[name]++
	if q.MaxStrikes <= 0 || q.strikes[name] < q.MaxStrikes {
		return false
	}
	q.quarantine[name] = &QuarantinedScenario{
		Scenario: name,
		Strikes:  q.strikes[name],
		Reason:   reason,
	}
	q.removePendingLocked(name)
	return true
}

// reapLocked expires overdue leases: each expiry is a strike, and the
// scenario returns to the queue front — in lease-grant order so
// recovery is deterministic under the map's iteration randomness — or
// into quarantine once it has burned MaxStrikes leases. It reports
// whether any scenario was quarantined.
func (q *Queue) reapLocked(now time.Time) bool {
	var expired []*lease
	for _, l := range q.leases {
		if now.After(l.deadline) {
			expired = append(expired, l)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].seq < expired[j].seq })
	quarantined := false
	var names []string
	for _, l := range expired {
		delete(q.leases, l.token)
		delete(q.byName, l.scenario)
		if q.strikeLocked(l.scenario, fmt.Sprintf("lease %s (worker %s) expired without completing", l.token, l.worker)) {
			quarantined = true
			continue
		}
		names = append(names, l.scenario)
	}
	q.pending = append(names, q.pending...)
	return quarantined
}

// Lease grants the next pending scenario to worker, or reports the
// queue's state (wait: all in flight; done: all complete or
// quarantined; drain: the coordinator is shutting down).
func (q *Queue) Lease(worker string) LeaseReply {
	q.mu.Lock()
	now := q.now()
	quarantined := q.reapLocked(now)
	reply := q.leaseLocked(worker, now)
	q.mu.Unlock()
	if quarantined && q.OnQuarantine != nil {
		q.OnQuarantine()
	}
	return reply
}

func (q *Queue) leaseLocked(worker string, now time.Time) LeaseReply {
	if q.draining {
		return LeaseReply{Status: StatusDrain}
	}
	if len(q.pending) == 0 {
		if q.settledLocked() {
			return LeaseReply{Status: StatusDone}
		}
		return LeaseReply{Status: StatusWait}
	}
	name := q.pending[0]
	q.pending = q.pending[1:]
	q.seq++
	l := &lease{
		token:    fmt.Sprintf("L%d", q.seq),
		scenario: name,
		worker:   worker,
		seq:      q.seq,
		deadline: now.Add(q.ttl),
	}
	q.leases[l.token] = l
	q.byName[name] = l.token
	return LeaseReply{Status: StatusLease, Scenario: name, Token: l.token, TTLMillis: q.ttl.Milliseconds()}
}

// Heartbeat extends a live lease's deadline. False means the lease
// expired (or never existed) — the caller should abandon the scenario,
// which is back in the queue. Heartbeats keep working while draining,
// so in-flight scenarios finish under a coordinator that is shutting
// down gracefully.
func (q *Queue) Heartbeat(token string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	l, ok := q.leases[token]
	if !ok || now.After(l.deadline) {
		return false
	}
	l.deadline = now.Add(q.ttl)
	return true
}

// Complete marks a scenario done. The token is advisory: a completion
// under an expired or superseded lease is still accepted as long as the
// scenario is not already done (determinism makes every completion of a
// scenario bit-identical, so first wins and the rest are duplicates). A
// completion even rescues a quarantined scenario — real rows beat a
// synthesized failure.
func (q *Queue) Complete(token, scenario string) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.known[scenario] {
		return CompleteUnknown
	}
	if q.done[scenario] {
		return CompleteDuplicate
	}
	q.done[scenario] = true
	delete(q.quarantine, scenario)
	delete(q.leases, token)
	// The scenario may have been re-leased after this worker's lease
	// expired, or returned to pending; either way it is done now.
	if other, ok := q.byName[scenario]; ok {
		delete(q.leases, other)
		delete(q.byName, scenario)
	}
	q.removePendingLocked(scenario)
	return CompleteAccepted
}

// Fail releases a lease whose scenario could not be run: a strike is
// recorded and the scenario requeued at the back (other work proceeds
// ahead of a suspect scenario), or quarantined once it has exhausted
// MaxStrikes leases. Only the scenario's live lease can strike it —
// a failure report racing its own expiry counts once, not twice.
func (q *Queue) Fail(token, scenario, reason string) string {
	q.mu.Lock()
	status := q.failLocked(token, scenario, reason)
	q.mu.Unlock()
	if status == FailQuarantined && q.OnQuarantine != nil {
		q.OnQuarantine()
	}
	return status
}

func (q *Queue) failLocked(token, scenario, reason string) string {
	if !q.known[scenario] {
		return FailUnknown
	}
	if q.done[scenario] {
		return FailDuplicate
	}
	if _, parked := q.quarantine[scenario]; parked {
		return FailQuarantined
	}
	l, ok := q.leases[token]
	if !ok || l.scenario != scenario {
		// The lease already expired (its strike is the reap's) or was
		// superseded; acknowledge without double-striking.
		return FailAccepted
	}
	delete(q.leases, token)
	delete(q.byName, scenario)
	if reason == "" {
		reason = "worker reported a run failure"
	}
	if q.strikeLocked(scenario, reason) {
		return FailQuarantined
	}
	q.pending = append(q.pending, scenario)
	return FailAccepted
}

// Hold clears the pending queue without touching leases, completions,
// or quarantine. A progressive coordinator holds the naive-seeded queue
// at construction and then Releases one scheduler round at a time: with
// nothing pending and the sweep not settled, Lease answers StatusWait —
// the natural barrier workers already poll at between rounds.
func (q *Queue) Hold() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending = nil
}

// Release appends scenarios to the back of the pending queue, in the
// given order — how a progressive coordinator deals a round. Names that
// are unknown, done, quarantined, leased, or already pending are
// skipped, so releasing is idempotent and can never duplicate work.
// The names are appended, never re-keyed: leases, completion, journal
// rows, and resume all see the same scenario names as a naive sweep.
func (q *Queue) Release(names ...string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	pending := make(map[string]bool, len(q.pending))
	for _, n := range q.pending {
		pending[n] = true
	}
	for _, name := range names {
		if !q.known[name] || q.done[name] || pending[name] {
			continue
		}
		if _, parked := q.quarantine[name]; parked {
			continue
		}
		if _, leased := q.byName[name]; leased {
			continue
		}
		q.pending = append(q.pending, name)
		pending[name] = true
	}
}

// Reopen returns a done scenario to the queue front. The completion
// path uses it when recording an accepted completion's rows failed —
// the ack must not outlive the record, so the scenario re-runs.
func (q *Queue) Reopen(name string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.known[name] || !q.done[name] {
		return
	}
	delete(q.done, name)
	q.pending = append([]string{name}, q.pending...)
}

// Drain stops dealing work: subsequent Lease calls answer StatusDrain
// (workers exit), while heartbeats and completions keep being honoured
// so in-flight scenarios land before the coordinator goes away.
func (q *Queue) Drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.draining = true
}

// Draining reports whether Drain was called.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

func (q *Queue) removePendingLocked(name string) {
	for i, n := range q.pending {
		if n == name {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return
		}
	}
}

// Done reports whether the sweep is settled: every scenario completed
// or quarantined, so no further work will ever be dealt.
func (q *Queue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.settledLocked()
}

// Quarantined snapshots the parked scenarios, sorted by name.
func (q *Queue) Quarantined() []QuarantinedScenario {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QuarantinedScenario, 0, len(q.quarantine))
	for _, rec := range q.quarantine {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scenario < out[j].Scenario })
	return out
}

// Counts snapshots the queue for status output.
func (q *Queue) Counts() (pending, leased, done, quarantined, total int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending), len(q.leases), len(q.done), len(q.quarantine), q.total
}
