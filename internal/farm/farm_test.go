package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"offramps"
	"offramps/internal/farm/faults"
)

// farmGrid is a small sweep with helper goldens and comparisons — enough
// structure that a lease's sub-suite (Subset) differs from its owned
// scenario and the final report carries comparison rows.
const farmGrid = `{
  "name": "farm-grid",
  "baseSeed": 1,
  "extra": [{"name": "golden"}],
  "axes": {
    "trojans": [{"label": "clean"}, {"name": "T2"}],
    "taps": ["arduino", "ramps"]
  },
  "seedPolicy": {"deltaStart": 10},
  "compareWith": "golden"
}`

// loadFarmSuite expands the grid fresh for each use so runs never share
// spec state.
func loadFarmSuite(t *testing.T, seed uint64) *offramps.SuiteSpec {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid_farm.json")
	if err := os.WriteFile(path, []byte(farmGrid), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := offramps.LoadSuiteOrGrid(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 0 {
		spec.BaseSeed = seed
	}
	return spec
}

// localDoc is the reference: an uninterrupted single-process run,
// serialized exactly as `suite -json` writes it.
func localDoc(t *testing.T, spec *offramps.SuiteSpec) []byte {
	t.Helper()
	c := offramps.Campaign{Cache: offramps.NewGoldenCache()}
	rep, err := c.RunSuite(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	doc := struct {
		Suites []*offramps.SuiteReport `json:"suites"`
	}{[]*offramps.SuiteReport{rep}}
	if err := offramps.EncodeReport(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runWorkers drains the coordinator with n in-process workers and waits
// for both the sweep and every worker to finish.
func runWorkers(t *testing.T, co *Coordinator, url string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Client: &Client{Base: url},
				Name:   fmt.Sprintf("w%d", i),
				Poll:   5 * time.Millisecond,
			}
			if _, err := w.Run(context.Background()); err != nil {
				errs <- fmt.Errorf("worker %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	select {
	case <-co.Done():
	default:
		t.Fatal("workers exited but the sweep is not done")
	}
}

func stitchDoc(t *testing.T, co *Coordinator) []byte {
	t.Helper()
	rep, err := co.Report()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := offramps.EncodeReport(&buf, offramps.RawReportDoc{Suites: []offramps.RawSuiteReport{*rep}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFarmByteIdentity: a two-worker distributed sweep must produce the
// exact bytes of an uninterrupted local run — for more than one base
// seed, so nothing is accidentally anchored to seed 1.
func TestFarmByteIdentity(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			want := localDoc(t, loadFarmSuite(t, seed))

			journal := filepath.Join(t.TempDir(), "sweep.jsonl")
			co, err := NewCoordinator(loadFarmSuite(t, seed), Config{TTL: 30 * time.Second, Journal: journal})
			if err != nil {
				t.Fatal(err)
			}
			defer co.Close()
			srv := httptest.NewServer(co.Handler())
			defer srv.Close()

			runWorkers(t, co, srv.URL, 2)
			if got := stitchDoc(t, co); !bytes.Equal(got, want) {
				t.Errorf("farm report differs from local run\nlocal: %d bytes\nfarm:  %d bytes", len(want), len(got))
			}

			// The journal alone re-stitches the same report: it is a
			// complete -jsonl stream of the sweep.
			f, err := os.Open(journal)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := offramps.ReadResumeIndex(f, "farm-grid")
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			spec := loadFarmSuite(t, seed)
			if missing := ix.Missing(spec); len(missing) != 0 {
				t.Errorf("journal is missing scenarios %v", missing)
			}
			rep, err := offramps.StitchReport(spec, ix.Scenarios, ix.Compares)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := offramps.EncodeReport(&buf, offramps.RawReportDoc{Suites: []offramps.RawSuiteReport{*rep}}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Error("journal-stitched report differs from local run")
			}
		})
	}
}

// TestFarmResume kills a sweep twice — a worker abandoned mid-scenario
// (lease expiry) and a coordinator restart — and the final report must
// still equal the uninterrupted local run byte for byte.
func TestFarmResume(t *testing.T) {
	want := localDoc(t, loadFarmSuite(t, 1))
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.jsonl")

	// Phase 1: a short-TTL coordinator; one lease is taken and abandoned
	// (the "worker killed mid-scenario"), one worker completes two
	// scenarios and exits, then the coordinator process "dies". Expiry
	// runs on a fake clock: the abandoned lease dies by Advance, and the
	// live worker's leases cannot expire however slowly the sims run
	// (under -race they stretch past any real-time TTL).
	clk := faults.NewFakeClock()
	co1, err := NewCoordinator(loadFarmSuite(t, 1), Config{TTL: 50 * time.Millisecond, Journal: journal, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(co1.Handler())
	cl := &Client{Base: srv1.URL}
	lease, err := cl.Lease(context.Background(), "doomed")
	if err != nil {
		t.Fatal(err)
	}
	if lease.Status != StatusLease {
		t.Fatalf("lease = %+v", lease)
	}
	clk.Advance(60 * time.Millisecond) // heartbeat window missed; scenario requeues

	w := &Worker{Client: cl, Name: "partial", Poll: 5 * time.Millisecond, Max: 2}
	if n, err := w.Run(context.Background()); err != nil || n != 2 {
		t.Fatalf("partial worker: n=%d err=%v", n, err)
	}
	srv1.Close()
	if err := co1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh coordinator resumes from the journal and two
	// workers finish the sweep.
	co2, err := NewCoordinator(loadFarmSuite(t, 1), Config{TTL: 30 * time.Second, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	if co2.Resumed() != 2 {
		t.Fatalf("Resumed() = %d, want 2", co2.Resumed())
	}
	srv2 := httptest.NewServer(co2.Handler())
	defer srv2.Close()
	runWorkers(t, co2, srv2.URL, 2)

	if got := stitchDoc(t, co2); !bytes.Equal(got, want) {
		t.Error("resumed farm report differs from uninterrupted local run")
	}
}

// TestFarmResumeTornJournal: a journal whose last line was torn by a
// crash mid-append still resumes — the torn row's scenario simply
// re-runs — and the stitched report matches the local run.
func TestFarmResumeTornJournal(t *testing.T) {
	want := localDoc(t, loadFarmSuite(t, 1))
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")

	co1, err := NewCoordinator(loadFarmSuite(t, 1), Config{TTL: 30 * time.Second, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(co1.Handler())
	runWorkers(t, co1, srv1.URL, 1)
	srv1.Close()
	if err := co1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: drop the trailing newline and half the last row.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimRight(data, "\n")
	cut := bytes.LastIndexByte(trimmed, '\n') + 1 + 10 // 10 bytes into the last row
	if err := os.WriteFile(journal, trimmed[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	co2, err := NewCoordinator(loadFarmSuite(t, 1), Config{TTL: 30 * time.Second, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	total := len(loadFarmSuite(t, 1).Scenarios)
	if co2.Resumed() >= total {
		t.Fatalf("Resumed() = %d, want < %d (torn row dropped)", co2.Resumed(), total)
	}
	srv2 := httptest.NewServer(co2.Handler())
	defer srv2.Close()
	runWorkers(t, co2, srv2.URL, 2)
	if got := stitchDoc(t, co2); !bytes.Equal(got, want) {
		t.Error("torn-journal resume differs from uninterrupted local run")
	}
}

// TestFarmDuplicateCompletion: a completion for an already-done scenario
// is acknowledged as a duplicate and its rows are dropped, not recorded
// twice.
func TestFarmDuplicateCompletion(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	spec := loadFarmSuite(t, 1)
	co, err := NewCoordinator(spec, Config{TTL: 30 * time.Second, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	runWorkers(t, co, srv.URL, 2)

	cl := &Client{Base: srv.URL}
	status, err := cl.Complete(context.Background(), CompleteRequest{
		Token:    "L9999",
		Scenario: spec.Scenarios[0].Name,
		Row:      json.RawMessage(`{"bogus": true}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != CompleteDuplicate {
		t.Fatalf("late completion = %q, want duplicate", status)
	}
	status, err = cl.Complete(context.Background(), CompleteRequest{
		Token:    "L9999",
		Scenario: "no-such-scenario",
		Row:      json.RawMessage(`{}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != CompleteUnknown {
		t.Fatalf("unknown completion = %q, want unknown", status)
	}

	// The journal carries each scenario exactly once despite the replay.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		row, err := offramps.ParseStreamRow([]byte(line))
		if err != nil {
			t.Fatalf("journal row %q: %v", line, err)
		}
		if row.Name != "" {
			counts[row.Name]++
		}
	}
	if len(counts) != len(spec.Scenarios) {
		t.Errorf("journal has %d scenarios, want %d", len(counts), len(spec.Scenarios))
	}
	for name, n := range counts {
		if n != 1 {
			t.Errorf("journal row for %q appears %d times", name, n)
		}
	}
}
