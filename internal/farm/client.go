package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the worker side of the farm protocol: a thin, retry-free
// HTTP wrapper (the worker loop owns retry policy, because only it
// knows whether a failure is worth waiting out).
type Client struct {
	// Base is the coordinator's URL, e.g. "http://127.0.0.1:7333".
	Base string
	// HTTP overrides the transport (nil = a client with a sane timeout).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

// FetchSuite downloads the canonical suite document.
func (c *Client) FetchSuite(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(PathSuite), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("farm: %s: %s: %s", PathSuite, resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

// Lease asks for one scenario.
func (c *Client) Lease(ctx context.Context, worker string) (*LeaseReply, error) {
	var out LeaseReply
	if err := c.post(ctx, PathLease, LeaseRequest{Worker: worker}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Heartbeat extends a lease; false means the lease is gone.
func (c *Client) Heartbeat(ctx context.Context, token string) (bool, error) {
	var out HeartbeatReply
	if err := c.post(ctx, PathHeartbeat, HeartbeatRequest{Token: token}, &out); err != nil {
		return false, err
	}
	return out.OK, nil
}

// Complete returns a finished scenario's rows and reports the
// coordinator's verdict (accepted, duplicate, unknown).
func (c *Client) Complete(ctx context.Context, req CompleteRequest) (string, error) {
	var out CompleteReply
	if err := c.post(ctx, PathComplete, req, &out); err != nil {
		return "", err
	}
	return out.Status, nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("farm: %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}
