package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"offramps/internal/farm/faults"
)

// Timeouts are the per-operation deadlines of the farm protocol. Small
// control-plane calls (lease, heartbeat, fail) get short windows so a
// stalled coordinator cannot wedge a heartbeat behind a slow transfer;
// bulk calls (suite fetch, completion upload) get room. Zero fields
// take the defaults.
type Timeouts struct {
	Lease     time.Duration // default 5s
	Heartbeat time.Duration // default 3s
	Fail      time.Duration // default 5s
	Complete  time.Duration // default 30s
	Suite     time.Duration // default 2m
}

func pick(d, def time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return def
}

func (t Timeouts) lease() time.Duration     { return pick(t.Lease, 5*time.Second) }
func (t Timeouts) heartbeat() time.Duration { return pick(t.Heartbeat, 3*time.Second) }
func (t Timeouts) fail() time.Duration      { return pick(t.Fail, 5*time.Second) }
func (t Timeouts) complete() time.Duration  { return pick(t.Complete, 30*time.Second) }
func (t Timeouts) suite() time.Duration     { return pick(t.Suite, 2*time.Minute) }

// Client is the worker side of the farm protocol: a thin, retry-free
// HTTP wrapper (the worker loop owns retry policy, because only it
// knows whether a failure is worth waiting out). Every call carries its
// own context deadline from Timeouts — there is deliberately no
// catch-all http.Client timeout, so one slow operation class cannot
// redefine the budget of another.
type Client struct {
	// Base is the coordinator's URL, e.g. "http://127.0.0.1:7333".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient semantics;
	// chaos tests install a faults.Transport here).
	HTTP *http.Client
	// Timeouts are the per-call deadlines (zero fields = defaults).
	Timeouts Timeouts
	// Clock issues the deadlines (nil = faults.Wall{}); injectable so
	// scripted chaos runs control when a call times out.
	Clock faults.Clock
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

func (c *Client) clock() faults.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return faults.Wall{}
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

// FetchSuite downloads the canonical suite document.
func (c *Client) FetchSuite(ctx context.Context) ([]byte, error) {
	ctx, cancel := c.clock().WithTimeout(ctx, c.Timeouts.suite())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(PathSuite), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("farm: %s: %s: %s", PathSuite, resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

// Lease asks for one scenario.
func (c *Client) Lease(ctx context.Context, worker string) (*LeaseReply, error) {
	var out LeaseReply
	if err := c.post(ctx, PathLease, c.Timeouts.lease(), LeaseRequest{Worker: worker}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Heartbeat extends a lease; false means the lease is gone.
func (c *Client) Heartbeat(ctx context.Context, token string) (bool, error) {
	var out HeartbeatReply
	if err := c.post(ctx, PathHeartbeat, c.Timeouts.heartbeat(), HeartbeatRequest{Token: token}, &out); err != nil {
		return false, err
	}
	return out.OK, nil
}

// Complete returns a finished scenario's rows and reports the
// coordinator's verdict (accepted, duplicate, unknown).
func (c *Client) Complete(ctx context.Context, req CompleteRequest) (string, error) {
	var out CompleteReply
	if err := c.post(ctx, PathComplete, c.Timeouts.complete(), req, &out); err != nil {
		return "", err
	}
	return out.Status, nil
}

// Fail reports a scenario the worker could not run, releasing the lease
// with a strike.
func (c *Client) Fail(ctx context.Context, req FailRequest) (string, error) {
	var out FailReply
	if err := c.post(ctx, PathFail, c.Timeouts.fail(), req, &out); err != nil {
		return "", err
	}
	return out.Status, nil
}

func (c *Client) post(ctx context.Context, path string, timeout time.Duration, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	ctx, cancel := c.clock().WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("farm: %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}
