// Package reconstruct rebuilds a printed part's toolpath from an OFFRAMPS
// pulse-profile capture — the "reverse-engineering printed parts from
// their control signals" direction the paper's discussion proposes (§VI:
// "expansion of both the kinds of attacks ... as well as new golden-free
// methods for detection and even reverse-engineering printed parts from
// their control signals").
//
// Because the capture is lossless (unlike the acoustic/power side channels
// of prior work, §II-B), reconstruction is near-exact at the transaction
// resolution: each 0.1 s window gives the absolute position of every axis
// in steps, so the toolpath polyline, the layer structure, the part's
// footprint, and the filament budget all fall out directly. This is both
// an IP-theft demonstration (an attacker with MITM access steals the
// design) and the basis for golden-free plausibility checks.
package reconstruct

import (
	"fmt"
	"math"
	"sort"

	"offramps/internal/capture"
)

// Calibration converts step counts back to millimetres. It must match the
// victim machine's configuration — the paper's threat model grants the
// attacker exactly this knowledge ("the attackers have prior information
// about the type of motors", §II-A).
type Calibration struct {
	XStepsPerMM float64
	YStepsPerMM float64
	ZStepsPerMM float64
	EStepsPerMM float64
}

// DefaultCalibration matches the simulated Prusa-on-RAMPS.
func DefaultCalibration() Calibration {
	return Calibration{XStepsPerMM: 80, YStepsPerMM: 80, ZStepsPerMM: 400, EStepsPerMM: 96}
}

// Validate reports the first invalid field, or nil.
func (c Calibration) Validate() error {
	if c.XStepsPerMM <= 0 || c.YStepsPerMM <= 0 || c.ZStepsPerMM <= 0 || c.EStepsPerMM <= 0 {
		return fmt.Errorf("reconstruct: steps-per-mm must all be positive: %+v", c)
	}
	return nil
}

// Waypoint is one reconstructed toolhead sample: the machine state at a
// capture-window boundary.
type Waypoint struct {
	T          float64 // seconds since capture start
	X, Y, Z    float64 // mm
	E          float64 // cumulative filament, mm
	Extruding  bool    // filament advanced during the window
	TravelOnly bool    // XY motion without extrusion
}

// Layer is one reconstructed layer of the stolen design.
type Layer struct {
	Z                      float64 // mm
	Waypoints              int     // samples in the layer
	Filament               float64 // mm of filament used in the layer
	MinX, MaxX, MinY, MaxY float64
}

// Width returns the layer's X extent.
func (l Layer) Width() float64 { return l.MaxX - l.MinX }

// Depth returns the layer's Y extent.
func (l Layer) Depth() float64 { return l.MaxY - l.MinY }

// Design is a part reconstructed from a capture.
type Design struct {
	Waypoints []Waypoint
	Layers    []Layer
	// TotalFilament is the filament consumed over the capture, mm.
	TotalFilament float64
	// PrintSeconds is the capture duration.
	PrintSeconds float64
	// Footprint of the densest layer, mm.
	FootprintW, FootprintD float64
}

// Summary renders a one-line description of the stolen design.
func (d *Design) Summary() string {
	return fmt.Sprintf("%d layers, footprint %.1f×%.1f mm, %.1f mm filament, %.0f s print",
		len(d.Layers), d.FootprintW, d.FootprintD, d.TotalFilament, d.PrintSeconds)
}

// FromCapture reconstructs the design from a recording. windowSeconds is
// the capture export period in seconds (0.1 on the paper's hardware); it
// only affects the waypoint timestamps.
func FromCapture(rec *capture.Recording, cal Calibration, windowSeconds float64) (*Design, error) {
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	if rec == nil || rec.Len() == 0 {
		return nil, fmt.Errorf("reconstruct: empty capture")
	}
	if windowSeconds <= 0 {
		return nil, fmt.Errorf("reconstruct: windowSeconds must be positive, got %v", windowSeconds)
	}

	d := &Design{Waypoints: make([]Waypoint, 0, rec.Len())}
	var prev capture.Transaction
	for i, tx := range rec.Transactions {
		wp := Waypoint{
			T: float64(tx.Index) * windowSeconds,
			X: float64(tx.X) / cal.XStepsPerMM,
			Y: float64(tx.Y) / cal.YStepsPerMM,
			Z: float64(tx.Z) / cal.ZStepsPerMM,
			E: float64(tx.E) / cal.EStepsPerMM,
		}
		if i > 0 {
			de := tx.E - prev.E
			moved := tx.X != prev.X || tx.Y != prev.Y
			wp.Extruding = de > 0
			wp.TravelOnly = moved && de <= 0
		}
		d.Waypoints = append(d.Waypoints, wp)
		prev = tx
	}
	d.PrintSeconds = float64(rec.Len()) * windowSeconds

	final := d.Waypoints[len(d.Waypoints)-1]
	first := d.Waypoints[0]
	d.TotalFilament = final.E - first.E

	d.Layers = reconstructLayers(d.Waypoints)
	// Footprint from the topmost substantial layer: prime lines and
	// purge moves live only at first-layer height, so the top of the
	// stack bounds the actual part.
	var maxFil float64
	for _, l := range d.Layers {
		if l.Filament > maxFil {
			maxFil = l.Filament
		}
	}
	for i := len(d.Layers) - 1; i >= 0; i-- {
		if d.Layers[i].Filament >= maxFil/2 {
			d.FootprintW = d.Layers[i].Width()
			d.FootprintD = d.Layers[i].Depth()
			break
		}
	}
	return d, nil
}

// reconstructLayers groups extruding waypoints by Z.
func reconstructLayers(wps []Waypoint) []Layer {
	type acc struct {
		n          int
		fil        float64
		minX, maxX float64
		minY, maxY float64
	}
	buckets := make(map[int64]*acc)
	const quantum = 0.05 // mm: finer than any layer height
	var prevE float64
	var havePrev bool
	for _, wp := range wps {
		if havePrev && wp.Extruding {
			key := int64(math.Round(wp.Z / quantum))
			a, ok := buckets[key]
			if !ok {
				a = &acc{minX: wp.X, maxX: wp.X, minY: wp.Y, maxY: wp.Y}
				buckets[key] = a
			}
			a.n++
			a.fil += wp.E - prevE
			a.minX = math.Min(a.minX, wp.X)
			a.maxX = math.Max(a.maxX, wp.X)
			a.minY = math.Min(a.minY, wp.Y)
			a.maxY = math.Max(a.maxY, wp.Y)
		}
		prevE = wp.E
		havePrev = true
	}
	keys := make([]int64, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	layers := make([]Layer, 0, len(keys))
	for _, k := range keys {
		a := buckets[k]
		layers = append(layers, Layer{
			Z:         float64(k) * quantum,
			Waypoints: a.n,
			Filament:  a.fil,
			MinX:      a.minX, MaxX: a.maxX,
			MinY: a.minY, MaxY: a.maxY,
		})
	}
	return layers
}

// RenderLayer rasterizes one reconstructed layer's waypoints into an ASCII
// grid of the given width — a terminal-friendly visual of the stolen
// geometry, one '#' per visited cell.
func (d *Design) RenderLayer(index, cols int) (string, error) {
	if index < 0 || index >= len(d.Layers) {
		return "", fmt.Errorf("reconstruct: layer %d of %d", index, len(d.Layers))
	}
	if cols < 8 {
		cols = 8
	}
	l := d.Layers[index]
	w := l.Width()
	dep := l.Depth()
	if w <= 0 || dep <= 0 {
		return "", fmt.Errorf("reconstruct: layer %d has no extent", index)
	}
	rows := int(float64(cols) * dep / w / 2) // terminal cells are ~2:1
	if rows < 4 {
		rows = 4
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = make([]byte, cols)
		for j := range grid[i] {
			grid[i][j] = '.'
		}
	}
	// Rasterize the toolpath between consecutive extruding samples: the
	// head moved in (near-)straight lines between window boundaries, so
	// segments recover the path the point samples alone would scatter.
	zKey := l.Z
	plot := func(x, y float64) {
		cx := int((x - l.MinX) / w * float64(cols-1))
		cy := int((y - l.MinY) / dep * float64(rows-1))
		if cx < 0 || cx >= cols || cy < 0 || cy >= rows {
			return
		}
		grid[rows-1-cy][cx] = '#'
	}
	var prev *Waypoint
	for i := range d.Waypoints {
		wp := &d.Waypoints[i]
		if math.Abs(wp.Z-zKey) > 0.051 {
			prev = nil
			continue
		}
		if wp.Extruding && prev != nil {
			steps := int(math.Hypot(wp.X-prev.X, wp.Y-prev.Y)/w*float64(cols)) + 1
			for s := 0; s <= steps; s++ {
				t := float64(s) / float64(steps)
				plot(prev.X+t*(wp.X-prev.X), prev.Y+t*(wp.Y-prev.Y))
			}
		}
		prev = wp
	}
	out := make([]byte, 0, rows*(cols+1))
	for _, row := range grid {
		out = append(out, row...)
		out = append(out, '\n')
	}
	return string(out), nil
}
