package reconstruct

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"offramps/internal/capture"
)

// syntheticCapture draws a square perimeter at two layers: Z=0.2 and 0.4,
// plus initial travel, at capture-window resolution.
func syntheticCapture() *capture.Recording {
	r := &capture.Recording{}
	idx := uint32(0)
	add := func(xMM, yMM, zMM, eMM float64) {
		r.Append(capture.Transaction{
			Index: idx,
			X:     int32(xMM * 80), Y: int32(yMM * 80),
			Z: int32(zMM * 400), E: int32(eMM * 96),
		})
		idx++
	}
	e := 0.0
	add(0, 0, 0, e) // at home
	for layer := 0; layer < 2; layer++ {
		z := 0.2 * float64(layer+1)
		add(100, 100, z, e) // travel to part
		// Square 100..120 on both axes; 1 mm filament per edge.
		corners := [][2]float64{{120, 100}, {120, 120}, {100, 120}, {100, 100}}
		for _, c := range corners {
			e += 1.0
			add(c[0], c[1], z, e)
		}
	}
	return r
}

func TestFromCaptureBasics(t *testing.T) {
	d, err := FromCapture(syntheticCapture(), DefaultCalibration(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Layers) != 2 {
		t.Fatalf("reconstructed %d layers, want 2", len(d.Layers))
	}
	if math.Abs(d.TotalFilament-8) > 0.05 {
		t.Errorf("TotalFilament = %v, want 8", d.TotalFilament)
	}
	for i, l := range d.Layers {
		if math.Abs(l.Width()-20) > 0.1 || math.Abs(l.Depth()-20) > 0.1 {
			t.Errorf("layer %d extent %vx%v, want 20x20", i, l.Width(), l.Depth())
		}
		if math.Abs(l.Filament-4) > 0.05 {
			t.Errorf("layer %d filament %v, want 4", i, l.Filament)
		}
	}
	if math.Abs(d.FootprintW-20) > 0.1 {
		t.Errorf("FootprintW = %v", d.FootprintW)
	}
	if !strings.Contains(d.Summary(), "2 layers") {
		t.Errorf("Summary = %q", d.Summary())
	}
	if d.PrintSeconds != float64(syntheticCapture().Len())*0.1 {
		t.Errorf("PrintSeconds = %v", d.PrintSeconds)
	}
}

func TestFromCaptureWaypointClassification(t *testing.T) {
	d, err := FromCapture(syntheticCapture(), DefaultCalibration(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Waypoint 1 (travel to part): moved, no extrusion.
	if !d.Waypoints[1].TravelOnly || d.Waypoints[1].Extruding {
		t.Errorf("waypoint 1 = %+v, want travel", d.Waypoints[1])
	}
	// Waypoint 2 (first edge): extruding.
	if !d.Waypoints[2].Extruding {
		t.Errorf("waypoint 2 = %+v, want extruding", d.Waypoints[2])
	}
}

func TestFromCaptureErrors(t *testing.T) {
	if _, err := FromCapture(nil, DefaultCalibration(), 0.1); err == nil {
		t.Error("nil capture accepted")
	}
	if _, err := FromCapture(&capture.Recording{}, DefaultCalibration(), 0.1); err == nil {
		t.Error("empty capture accepted")
	}
	if _, err := FromCapture(syntheticCapture(), Calibration{}, 0.1); err == nil {
		t.Error("zero calibration accepted")
	}
	if _, err := FromCapture(syntheticCapture(), DefaultCalibration(), 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestRenderLayer(t *testing.T) {
	d, err := FromCapture(syntheticCapture(), DefaultCalibration(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := d.RenderLayer(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(img, "#") {
		t.Errorf("render has no material:\n%s", img)
	}
	lines := strings.Split(strings.TrimRight(img, "\n"), "\n")
	if len(lines) < 4 {
		t.Errorf("render too short: %d rows", len(lines))
	}
	if _, err := d.RenderLayer(99, 20); err == nil {
		t.Error("out-of-range layer accepted")
	}
}

// Property: reconstruction inverts the calibration exactly — converting a
// waypoint back to steps reproduces the transaction.
func TestFromCaptureInversionProperty(t *testing.T) {
	cal := DefaultCalibration()
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		rec := &capture.Recording{}
		for i, v := range raw {
			rec.Append(capture.Transaction{
				Index: uint32(i),
				X:     int32(v), Y: int32(v) * 2, Z: int32(v % 1000), E: int32(i),
			})
		}
		d, err := FromCapture(rec, cal, 0.1)
		if err != nil {
			return false
		}
		for i, wp := range d.Waypoints {
			tx := rec.Transactions[i]
			if int32(math.Round(wp.X*cal.XStepsPerMM)) != tx.X {
				return false
			}
			if int32(math.Round(wp.E*cal.EStepsPerMM)) != tx.E {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
