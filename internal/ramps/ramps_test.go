package ramps

import (
	"math"
	"testing"
	"testing/quick"

	"offramps/internal/signal"
	"offramps/internal/sim"
)

func newTestDriver(t *testing.T) (*sim.Engine, *signal.Bus, *Driver, *[]int) {
	t.Helper()
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	var steps []int
	d, err := NewDriver(bus, signal.AxisX, MicrostepSixteenth, func(_ sim.Time, delta int) {
		steps = append(steps, delta)
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, bus, d, &steps
}

func TestDriverStepsOnRisingEdgeWhenEnabled(t *testing.T) {
	e, bus, d, steps := newTestDriver(t)
	// EN low = enabled (A4988 active-low).
	bus.Enable(signal.AxisX).Set(signal.Low)
	for i := 0; i < 3; i++ {
		bus.Step(signal.AxisX).Pulse(2 * sim.Microsecond)
		if err := e.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
	}
	if len(*steps) != 3 {
		t.Fatalf("got %d steps, want 3", len(*steps))
	}
	for _, s := range *steps {
		if s != 1 {
			t.Errorf("step delta %d, want +1 (DIR low)", s)
		}
	}
	if d.StepsTaken() != 3 || d.StepsLost() != 0 {
		t.Errorf("taken=%d lost=%d", d.StepsTaken(), d.StepsLost())
	}
}

func TestDriverDirectionSampledAtEdge(t *testing.T) {
	e, bus, _, steps := newTestDriver(t)
	bus.Enable(signal.AxisX).Set(signal.Low)
	bus.Dir(signal.AxisX).Set(signal.High) // negative direction
	bus.Step(signal.AxisX).Pulse(2 * sim.Microsecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	bus.Dir(signal.AxisX).Set(signal.Low)
	bus.Step(signal.AxisX).Pulse(2 * sim.Microsecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*steps) != 2 || (*steps)[0] != -1 || (*steps)[1] != 1 {
		t.Errorf("steps = %v, want [-1 1]", *steps)
	}
}

func TestDriverGatedByEnable(t *testing.T) {
	e, bus, d, steps := newTestDriver(t)
	bus.Enable(signal.AxisX).Set(signal.High) // disabled
	bus.Step(signal.AxisX).Pulse(2 * sim.Microsecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*steps) != 0 {
		t.Fatal("disabled driver emitted a step")
	}
	if d.StepsSeen() != 1 || d.StepsLost() != 1 {
		t.Errorf("seen=%d lost=%d, want 1,1", d.StepsSeen(), d.StepsLost())
	}
	// Re-enable: steps flow again. This is Trojan T8's lever.
	bus.Enable(signal.AxisX).Set(signal.Low)
	bus.Step(signal.AxisX).Pulse(2 * sim.Microsecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*steps) != 1 {
		t.Error("re-enabled driver did not step")
	}
}

func TestDriverRejectsBadArgs(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	if _, err := NewDriver(bus, signal.AxisX, MicrostepSixteenth, nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := NewDriver(bus, signal.AxisX, Microstep(3), func(sim.Time, int) {}); err == nil {
		t.Error("bogus microstep accepted")
	}
}

func TestMicrostepValid(t *testing.T) {
	for _, m := range []Microstep{1, 2, 4, 8, 16} {
		if !m.Valid() {
			t.Errorf("Microstep(%d) should be valid", m)
		}
	}
	for _, m := range []Microstep{0, 3, 32, -1} {
		if m.Valid() {
			t.Errorf("Microstep(%d) should be invalid", m)
		}
	}
}

func TestDriverAccessors(t *testing.T) {
	_, _, d, _ := newTestDriver(t)
	if d.Axis() != signal.AxisX {
		t.Error("Axis() wrong")
	}
	if d.Microstep() != MicrostepSixteenth {
		t.Error("Microstep() wrong")
	}
}

func TestThermistorMonotoneDecreasingVoltage(t *testing.T) {
	th := StandardThermistor()
	prev := th.Voltage(0)
	for temp := 10.0; temp <= 300; temp += 10 {
		v := th.Voltage(temp)
		if v >= prev {
			t.Fatalf("voltage not decreasing at %v°C: %v >= %v", temp, v, prev)
		}
		prev = v
	}
}

func TestThermistorKnownPoints(t *testing.T) {
	th := StandardThermistor()
	// At 25°C the NTC is 100k: divider = 5 * 100k/104.7k ≈ 4.78 V.
	if v := th.Voltage(25); math.Abs(v-4.7755) > 0.01 {
		t.Errorf("Voltage(25) = %v, want ≈4.776", v)
	}
	if r := th.Resistance(25); math.Abs(r-100_000) > 1 {
		t.Errorf("Resistance(25) = %v, want 100k", r)
	}
}

func TestThermistorRoundTrip(t *testing.T) {
	th := StandardThermistor()
	for _, temp := range []float64{0, 25, 60, 100, 210, 260} {
		back := th.Temperature(th.Voltage(temp))
		if math.Abs(back-temp) > 0.01 {
			t.Errorf("round trip %v°C -> %v°C", temp, back)
		}
	}
}

// Property: Temperature∘Voltage is the identity over the printing range.
func TestThermistorRoundTripProperty(t *testing.T) {
	th := StandardThermistor()
	f := func(raw uint16) bool {
		temp := float64(raw)/65535*300 - 20 // -20..280 °C
		back := th.Temperature(th.Voltage(temp))
		return math.Abs(back-temp) < 0.05
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThermistorFaultRails(t *testing.T) {
	th := StandardThermistor()
	if got := th.Temperature(th.VRef); got > -200 {
		t.Errorf("open thermistor reads %v, want cryogenic", got)
	}
	if got := th.Temperature(0); got < 500 {
		t.Errorf("shorted thermistor reads %v, want very hot", got)
	}
}

func TestMosfet(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	m := NewMosfet(bus, signal.PinHotend)
	if m.On() {
		t.Error("mosfet on at reset")
	}
	bus.Line(signal.PinHotend).Set(signal.High)
	if !m.On() {
		t.Error("mosfet did not turn on")
	}
}

func TestEndstop(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	es := NewEndstop(bus, signal.AxisZ)
	if es.Pressed() || bus.MinEndstop(signal.AxisZ).Level() != signal.Low {
		t.Error("endstop pressed at reset")
	}
	es.SetPressed(true)
	es.SetPressed(true) // idempotent
	if bus.MinEndstop(signal.AxisZ).Level() != signal.High {
		t.Error("endstop line not driven high")
	}
	if bus.MinEndstop(signal.AxisZ).Edges() != 1 {
		t.Errorf("endstop produced %d edges, want 1", bus.MinEndstop(signal.AxisZ).Edges())
	}
	es.SetPressed(false)
	if bus.MinEndstop(signal.AxisZ).Level() != signal.Low {
		t.Error("endstop line not released")
	}
}

func TestDutyMeterConvergesToDuty(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	m := NewDutyMeter(bus, signal.PinFan, 200*sim.Millisecond)
	fan := bus.Line(signal.PinFan)

	// 60% duty, 20 ms period, for 2 s (10 time constants).
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 20 * sim.Millisecond
		e.Schedule(at, func() { fan.Set(signal.High) })
		e.Schedule(at+12*sim.Millisecond, func() { fan.Set(signal.Low) })
	}
	if err := e.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := m.Duty(e.Now()); math.Abs(got-0.6) > 0.05 {
		t.Errorf("Duty = %v, want ≈0.6", got)
	}
}

func TestDutyMeterConstantLevels(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	m := NewDutyMeter(bus, signal.PinFan, 100*sim.Millisecond)
	if err := e.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := m.Duty(e.Now()); got != 0 {
		t.Errorf("idle duty = %v, want 0", got)
	}
	bus.Line(signal.PinFan).Set(signal.High)
	if err := e.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := m.Duty(e.Now()); got < 0.99 {
		t.Errorf("saturated duty = %v, want ≈1", got)
	}
}

// Property: the duty estimate never leaves [0,1].
func TestDutyMeterBoundsProperty(t *testing.T) {
	f := func(toggles []uint8) bool {
		e := sim.NewEngine()
		bus := signal.NewBus(e)
		m := NewDutyMeter(bus, signal.PinFan, 50*sim.Millisecond)
		fan := bus.Line(signal.PinFan)
		at := sim.Time(0)
		for i, g := range toggles {
			at += sim.Time(g) * sim.Millisecond
			lv := signal.Low
			if i%2 == 0 {
				lv = signal.High
			}
			func(at sim.Time, lv signal.Level) {
				e.Schedule(at, func() { fan.Set(lv) })
			}(at, lv)
		}
		if err := e.RunUntilIdle(); err != nil {
			return false
		}
		d := m.Duty(e.Now() + sim.Second)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDutyIntegratorExactWindows(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	d := NewDutyIntegrator(bus, signal.PinHotend)
	pin := bus.Line(signal.PinHotend)

	// Window 1: high 30 ms of 100 ms.
	e.Schedule(10*sim.Millisecond, func() { pin.Set(signal.High) })
	e.Schedule(40*sim.Millisecond, func() { pin.Set(signal.Low) })
	if err := e.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := d.Window(e.Now()); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("window 1 duty = %v, want 0.3", got)
	}

	// Window 2: stays low the whole window.
	if err := e.Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := d.Window(e.Now()); got != 0 {
		t.Errorf("window 2 duty = %v, want 0", got)
	}

	// Window 3: high across the whole window (level set mid-window 2 has
	// been consumed; set it now and never drop it).
	pin.Set(signal.High)
	if err := e.Run(300 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := d.Window(e.Now()); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("window 3 duty = %v, want 1", got)
	}

	// Degenerate: zero-length window.
	if got := d.Window(e.Now()); got != 0 {
		t.Errorf("empty window duty = %v, want 0", got)
	}
}

// Property: DutyIntegrator windows always land in [0,1] and a window with
// no High time reads 0, for arbitrary toggle patterns.
func TestDutyIntegratorBoundsProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		e := sim.NewEngine()
		bus := signal.NewBus(e)
		d := NewDutyIntegrator(bus, signal.PinBed)
		pin := bus.Line(signal.PinBed)
		at := sim.Time(0)
		for i, g := range gaps {
			at += sim.Time(g%40+1) * sim.Millisecond
			lv := signal.Low
			if i%2 == 0 {
				lv = signal.High
			}
			func(at sim.Time, lv signal.Level) {
				e.Schedule(at, func() { pin.Set(lv) })
			}(at, lv)
		}
		if err := e.RunUntilIdle(); err != nil {
			return false
		}
		duty := d.Window(e.Now() + sim.Millisecond)
		return duty >= 0 && duty <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExpNeg(t *testing.T) {
	if expNeg(-1) != 1 || expNeg(0) != 1 {
		t.Error("expNeg lower clamp")
	}
	if expNeg(100) != 0 {
		t.Error("expNeg upper clamp")
	}
	if math.Abs(expNeg(1)-math.Exp(-1)) > 1e-15 {
		t.Error("expNeg(1) wrong")
	}
}
