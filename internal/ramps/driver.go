// Package ramps models the RAMPS 1.4 printer control board: A4988 stepper
// drivers with microstep jumpers and active-low enable, the D8/D10 heater
// MOSFETs, the D9 fan output, mechanical endstop switches, and the 100k NTC
// thermistor dividers (paper Section III-C3).
//
// The board is the *actuation* layer: it converts the logic-level signals
// arriving from the Arduino (possibly modified by the OFFRAMPS FPGA in
// between) into motor steps and heater power for the printer plant, and it
// drives the feedback lines (endstops, thermistors) back toward the
// Arduino.
package ramps

import (
	"fmt"

	"offramps/internal/signal"
	"offramps/internal/sim"
)

// Microstep is an A4988 microstepping mode selected by the MS1..MS3
// jumpers on the RAMPS board.
type Microstep int

// A4988 microstep divisors. RAMPS ships with all three jumpers installed:
// 1/16 stepping, the configuration the paper uses ("we opted to use the
// default A4988 drivers shipped with RAMPS").
const (
	MicrostepFull      Microstep = 1
	MicrostepHalf      Microstep = 2
	MicrostepQuarter   Microstep = 4
	MicrostepEighth    Microstep = 8
	MicrostepSixteenth Microstep = 16
)

// Valid reports whether m is a legal A4988 divisor.
func (m Microstep) Valid() bool {
	switch m {
	case MicrostepFull, MicrostepHalf, MicrostepQuarter, MicrostepEighth, MicrostepSixteenth:
		return true
	}
	return false
}

// StepHandler receives motor micro-steps: +1 for one microstep in the
// positive direction, -1 for negative. It runs synchronously inside the
// simulation event that produced the STEP edge.
type StepHandler func(at sim.Time, delta int)

// Driver is one A4988 stepper driver socket. It watches the STEP, DIR and
// EN lines of its axis and emits microsteps to the attached handler.
//
// Behavioural notes that matter to the trojans:
//   - Steps fire on the rising edge of STEP, and only while EN is low
//     (A4988 /ENABLE is active-low). Trojan T8 works by yanking EN high,
//     which silently discards steps — the motor freewheels.
//   - DIR is sampled at the STEP edge. The A4988 requires 200 ns setup;
//     the firmware twin honours a wider margin, and the Driver checks the
//     level at the edge like the silicon does.
type Driver struct {
	axis      signal.Axis
	microstep Microstep
	handler   StepHandler

	step *signal.Line
	dir  *signal.Line
	en   *signal.Line

	// stepsSeen counts rising STEP edges regardless of EN gating;
	// stepsTaken counts microsteps actually emitted.
	stepsSeen  uint64
	stepsTaken uint64
}

// NewDriver attaches a driver to the axis's pins on bus. handler receives
// the microsteps; it must be non-nil.
func NewDriver(bus *signal.Bus, axis signal.Axis, microstep Microstep, handler StepHandler) (*Driver, error) {
	if handler == nil {
		return nil, fmt.Errorf("ramps: driver for %v needs a step handler", axis)
	}
	if !microstep.Valid() {
		return nil, fmt.Errorf("ramps: invalid microstep divisor %d", microstep)
	}
	d := &Driver{
		axis:      axis,
		microstep: microstep,
		handler:   handler,
		step:      bus.Step(axis),
		dir:       bus.Dir(axis),
		en:        bus.Enable(axis),
	}
	d.step.Watch(func(at sim.Time, level signal.Level) {
		if level != signal.High {
			return
		}
		d.stepsSeen++
		if d.en.Level() == signal.High {
			return // disabled: motor freewheels, step lost
		}
		d.stepsTaken++
		delta := 1
		if d.dir.Level() == signal.High {
			delta = -1
		}
		d.handler(at, delta)
	})
	return d, nil
}

// Axis reports which axis the driver serves.
func (d *Driver) Axis() signal.Axis { return d.axis }

// Microstep reports the configured divisor.
func (d *Driver) Microstep() Microstep { return d.microstep }

// StepsSeen reports rising STEP edges observed, including gated ones.
func (d *Driver) StepsSeen() uint64 { return d.stepsSeen }

// StepsTaken reports microsteps actually delivered to the motor.
func (d *Driver) StepsTaken() uint64 { return d.stepsTaken }

// StepsLost reports edges discarded because the driver was disabled.
func (d *Driver) StepsLost() uint64 { return d.stepsSeen - d.stepsTaken }
