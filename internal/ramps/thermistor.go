package ramps

import (
	"math"
)

// Thermistor models the 100 kΩ NTC (EPCOS B57560G104F-class, the RepRap
// standard "thermistor table 1") in the divider circuit RAMPS uses: the
// NTC pulls the analog pin toward ground as temperature rises, against a
// 4.7 kΩ pull-up to 5 V.
//
// The Beta-parameter model is accurate to a couple of °C over the FFF
// range, which is tighter than Marlin's own table interpolation.
type Thermistor struct {
	R25   float64 // resistance at 25 °C, ohms
	Beta  float64 // beta coefficient, kelvin
	RPull float64 // divider pull-up, ohms
	VRef  float64 // divider supply, volts
}

// StandardThermistor returns the RepRap table-1 part in the RAMPS divider.
func StandardThermistor() Thermistor {
	return Thermistor{R25: 100_000, Beta: 4092, RPull: 4700, VRef: 5.0}
}

const kelvinAt25 = 298.15

// Resistance returns the NTC resistance at temperature tempC.
func (t Thermistor) Resistance(tempC float64) float64 {
	tk := tempC + 273.15
	return t.R25 * math.Exp(t.Beta*(1/tk-1/kelvinAt25))
}

// Voltage returns the divider output voltage at temperature tempC. This is
// what the plant drives onto the THERM analog channel.
func (t Thermistor) Voltage(tempC float64) float64 {
	r := t.Resistance(tempC)
	return t.VRef * r / (r + t.RPull)
}

// Temperature inverts Voltage: given a measured divider voltage, return
// the temperature. This is what the firmware's ADC path computes. Voltages
// at or beyond the rails return the corresponding extreme temperature and
// are how a real Marlin detects a shorted/open thermistor (MINTEMP /
// MAXTEMP errors).
func (t Thermistor) Temperature(v float64) float64 {
	if v >= t.VRef {
		return -273.15 // open thermistor: reads as absurdly cold
	}
	if v <= 0 {
		return 1000 // shorted: absurdly hot
	}
	r := t.RPull * v / (t.VRef - v)
	invT := 1/kelvinAt25 + math.Log(r/t.R25)/t.Beta
	return 1/invT - 273.15
}
