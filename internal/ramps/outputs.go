package ramps

import (
	"math"

	"offramps/internal/signal"
	"offramps/internal/sim"
)

// Mosfet models one of the RAMPS power outputs (D10 hotend, D8 bed): a
// logic-level MOSFET that connects the heater to the 24 V rail while its
// gate line is high. Trojan T7 exploits precisely this: with the gate
// forced high the element receives 100 % duty regardless of what the
// firmware's PID wants.
type Mosfet struct {
	line *signal.Line
}

// NewMosfet attaches to the named power pin of bus.
func NewMosfet(bus *signal.Bus, pin string) *Mosfet {
	return &Mosfet{line: bus.Line(pin)}
}

// On reports whether the output is currently conducting.
func (m *Mosfet) On() bool { return m.line.Level() == signal.High }

// Endstop models a mechanical limit switch wired to a MIN endstop input.
// The plant calls SetPressed as the carriage enters/leaves the switch
// travel; the switch drives the feedback line toward the Arduino (and the
// FPGA, which snoops it for homing detection).
//
// Polarity: pressed = High, matching the paper's added mechanical
// endstops in their normally-open wiring.
type Endstop struct {
	line    *signal.Line
	pressed bool
}

// NewEndstop attaches a switch to the axis's MIN endstop line on bus.
func NewEndstop(bus *signal.Bus, axis signal.Axis) *Endstop {
	return &Endstop{line: bus.MinEndstop(axis)}
}

// SetPressed drives the switch state onto the line.
func (e *Endstop) SetPressed(pressed bool) {
	if pressed == e.pressed {
		return
	}
	e.pressed = pressed
	if pressed {
		e.line.Set(signal.High)
	} else {
		e.line.Set(signal.Low)
	}
}

// Pressed reports the current switch state.
func (e *Endstop) Pressed() bool { return e.pressed }

// DutyMeter estimates the recent duty cycle of a PWM line with an
// exponentially-weighted moving average. The plant uses one on the fan
// output (D9): a fan's rotational inertia low-passes the PWM exactly like
// this, so the cooling effect follows the average duty, not the
// instantaneous gate state.
type DutyMeter struct {
	line *signal.Line
	tau  sim.Time // smoothing time constant

	duty     float64
	level    signal.Level
	lastEdge sim.Time
}

// NewDutyMeter attaches a meter with time constant tau to the named pin.
func NewDutyMeter(bus *signal.Bus, pin string, tau sim.Time) *DutyMeter {
	m := &DutyMeter{line: bus.Line(pin), tau: tau}
	m.level = m.line.Level()
	m.line.Watch(func(at sim.Time, level signal.Level) {
		m.fold(at)
		m.level = level
	})
	return m
}

// fold integrates the line level from the last edge to now into the EWMA.
func (m *DutyMeter) fold(now sim.Time) {
	dt := now - m.lastEdge
	if dt <= 0 {
		return
	}
	target := 0.0
	if m.level == signal.High {
		target = 1.0
	}
	// One-pole low-pass response over dt.
	alpha := 1.0 - expNeg(float64(dt)/float64(m.tau))
	m.duty += (target - m.duty) * alpha
	m.lastEdge = now
}

// Duty returns the smoothed duty estimate as of time now.
func (m *DutyMeter) Duty(now sim.Time) float64 {
	m.fold(now)
	return m.duty
}

// DutyIntegrator measures the exact fraction of time a line spent high
// between consecutive Window calls. The plant uses one per heater MOSFET:
// a resistive heater has no inertia worth modelling separately, but the
// thermal integration step must see the *average* power over its window,
// not the instantaneous gate state at the sampling instant — otherwise a
// software-PWM waveform aliases against the thermal tick.
type DutyIntegrator struct {
	line     *signal.Line
	level    signal.Level
	lastEdge sim.Time
	highTime sim.Time
	winStart sim.Time
}

// NewDutyIntegrator attaches an integrator to the named pin.
func NewDutyIntegrator(bus *signal.Bus, pin string) *DutyIntegrator {
	d := &DutyIntegrator{line: bus.Line(pin)}
	d.level = d.line.Level()
	d.line.Watch(func(at sim.Time, level signal.Level) {
		d.fold(at)
		d.level = level
	})
	return d
}

func (d *DutyIntegrator) fold(now sim.Time) {
	if d.level == signal.High && now > d.lastEdge {
		d.highTime += now - d.lastEdge
	}
	d.lastEdge = now
}

// Window returns the duty fraction since the previous Window call (or
// since creation) and starts a new window ending at now.
func (d *DutyIntegrator) Window(now sim.Time) float64 {
	d.fold(now)
	span := now - d.winStart
	if span <= 0 {
		return 0
	}
	duty := float64(d.highTime) / float64(span)
	d.highTime = 0
	d.winStart = now
	d.lastEdge = now
	return duty
}

// expNeg computes e^(-x) clamped for the extreme arguments the meter can
// produce after long idle intervals.
func expNeg(x float64) float64 {
	if x <= 0 {
		return 1
	}
	if x > 40 {
		return 0
	}
	return math.Exp(-x)
}
