package firmware

import (
	"math"
	"strings"
	"testing"

	"offramps/internal/gcode"
	"offramps/internal/printer"
	"offramps/internal/ramps"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// rig is a firmware + plant sharing one bus: the paper's Figure 3a
// "unmodified signal chain" with the Arduino plugged straight into RAMPS.
type rig struct {
	engine *sim.Engine
	bus    *signal.Bus
	plant  *printer.Plant
	fw     *Firmware
}

func newRig(t *testing.T, mod func(*Config)) *rig {
	t.Helper()
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	plant, err := printer.NewPlant(e, bus, printer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if mod != nil {
		mod(&cfg)
	}
	fw, err := New(e, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{engine: e, bus: bus, plant: plant, fw: fw}
}

func (r *rig) run(t *testing.T, src string) {
	t.Helper()
	prog, err := gcode.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	r.fw.Load(prog)
	if err := r.fw.Start(); err != nil {
		t.Fatal(err)
	}
	r.runToCompletion(t)
}

func (r *rig) runToCompletion(t *testing.T) {
	t.Helper()
	for i := 0; !r.fw.Done(); i++ {
		if i > 5000 {
			t.Fatalf("firmware did not finish (pc=%d executed=%d)", r.fw.pc, r.fw.Executed())
		}
		if err := r.engine.Run(r.engine.Now() + sim.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHomingZerosAllAxes(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, "G28\n")
	if r.fw.Err() != nil {
		t.Fatalf("homing failed: %v", r.fw.Err())
	}
	for _, a := range []signal.Axis{signal.AxisX, signal.AxisY, signal.AxisZ} {
		if pos := r.plant.Position(a); math.Abs(pos) > 0.05 {
			t.Errorf("%v = %v mm after homing, want ≈0", a, pos)
		}
		if r.fw.PositionSteps(a) != 0 {
			t.Errorf("%v believed steps = %d, want 0", a, r.fw.PositionSteps(a))
		}
	}
}

func TestHomingSingleAxis(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, "G28 X\n")
	if math.Abs(r.plant.Position(signal.AxisX)) > 0.05 {
		t.Errorf("X = %v", r.plant.Position(signal.AxisX))
	}
	// Y untouched.
	want := printer.DefaultConfig().StartPos[signal.AxisY]
	if got := r.plant.Position(signal.AxisY); math.Abs(got-want) > 1e-9 {
		t.Errorf("Y = %v, want %v", got, want)
	}
}

func TestHomingFailsWithoutEndstop(t *testing.T) {
	// A plant whose X starts beyond the homing travel limit: firmware
	// must halt with a homing error instead of grinding forever.
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	pcfg := printer.DefaultConfig()
	pcfg.TravelMax[signal.AxisX] = 400
	pcfg.StartPos[signal.AxisX] = 390
	if _, err := printer.NewPlant(e, bus, pcfg); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HomingMaxTravel = 50
	fw, err := New(e, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := gcode.ParseString("G28 X\n")
	fw.Load(prog)
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; !fw.Done() && i < 2000; i++ {
		if err := e.Run(e.Now() + sim.Second); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Err() == nil || !strings.Contains(fw.Err().Error(), "homing") {
		t.Errorf("Err() = %v, want homing failure", fw.Err())
	}
}

func TestMoveTracksCommandedPosition(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, `G28
G1 X30 Y20 F6000
G1 X50 Y20 Z1 F3000
`)
	if r.fw.Err() != nil {
		t.Fatal(r.fw.Err())
	}
	if got := r.plant.Position(signal.AxisX); math.Abs(got-50) > 0.05 {
		t.Errorf("X = %v, want 50", got)
	}
	if got := r.plant.Position(signal.AxisY); math.Abs(got-20) > 0.05 {
		t.Errorf("Y = %v, want 20", got)
	}
	if got := r.plant.Position(signal.AxisZ); math.Abs(got-1) > 0.05 {
		t.Errorf("Z = %v, want 1", got)
	}
}

func TestExtrusionDeposits(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, `G28
G1 X20 Y20 F6000
G1 X40 E2.0 F1200
`)
	got := r.plant.Part().TotalFilament()
	if math.Abs(got-2.0) > 0.05 {
		t.Errorf("deposited %v mm, want 2.0", got)
	}
}

func TestG92ShiftsLogicalFrameOnly(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, `G28
G1 X30 F6000
G92 X0
G1 X10 F6000
`)
	// Logical X10 after G92 X0 at machine 30 → machine 40.
	if got := r.plant.Position(signal.AxisX); math.Abs(got-40) > 0.05 {
		t.Errorf("X = %v, want 40", got)
	}
}

func TestRelativeMode(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, `G28
G1 X10 F6000
G91
G1 X5
G1 X5
G90
`)
	if got := r.plant.Position(signal.AxisX); math.Abs(got-20) > 0.05 {
		t.Errorf("X = %v, want 20", got)
	}
}

func TestHeatAndWait(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, `M140 S60
M104 S210
M190 S60
M109 S210
`)
	if r.fw.Err() != nil {
		t.Fatal(r.fw.Err())
	}
	if got := r.plant.HotendTemp(); math.Abs(got-210) > 5 {
		t.Errorf("hotend = %v, want ≈210", got)
	}
	if got := r.plant.BedTemp(); math.Abs(got-60) > 5 {
		t.Errorf("bed = %v, want ≈60", got)
	}
}

func TestHeaterHoldsTemperature(t *testing.T) {
	r := newRig(t, nil)
	prog, _ := gcode.ParseString("M109 S210\nG4 S120\n")
	r.fw.Load(prog)
	if err := r.fw.Start(); err != nil {
		t.Fatal(err)
	}
	r.runToCompletion(t)
	// After two minutes of regulation the PID must hold within a few
	// degrees.
	if got := r.plant.HotendTemp(); math.Abs(got-210) > 6 {
		t.Errorf("held temp = %v, want 210±6", got)
	}
	// And it must never have run away.
	if r.plant.PeakHotendTemp() > 240 {
		t.Errorf("overshoot to %v", r.plant.PeakHotendTemp())
	}
}

func TestThermalRunawayWatchTripsWhenHeaterDead(t *testing.T) {
	// No plant at all: the thermistor reads a constant 25 °C no matter
	// what the heater pin does — exactly what firmware sees under trojan
	// T6 (heater power cut).
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	ntc := ramps.StandardThermistor()
	bus.ThermHotend.Set(ntc.Voltage(25))
	bus.ThermBed.Set(ntc.Voltage(25))
	fw, err := New(e, bus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := gcode.ParseString("M109 S210\n")
	fw.Load(prog)
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; !fw.Done() && i < 200; i++ {
		if err := e.Run(e.Now() + sim.Second); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Err() == nil || !strings.Contains(fw.Err().Error(), "thermal") {
		t.Fatalf("Err() = %v, want thermal protection trip", fw.Err())
	}
	// Kill must drop the heater gate.
	if bus.Line(signal.PinHotend).Level() != signal.Low {
		t.Error("heater pin still high after kill")
	}
}

func TestMaxTempTrips(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	ntc := ramps.StandardThermistor()
	bus.ThermHotend.Set(ntc.Voltage(25))
	bus.ThermBed.Set(ntc.Voltage(25))
	fw, err := New(e, bus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := gcode.ParseString("G4 S10\n")
	fw.Load(prog)
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	// Mid-dwell, the hotend "reads" 300 °C.
	e.Schedule(2*sim.Second, func() { bus.ThermHotend.Set(ntc.Voltage(300)) })
	for i := 0; !fw.Done() && i < 100; i++ {
		if err := e.Run(e.Now() + sim.Second); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Err() == nil || !strings.Contains(fw.Err().Error(), "MAXTEMP") {
		t.Fatalf("Err() = %v, want MAXTEMP", fw.Err())
	}
}

func TestFanControl(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, `M106 S128
G4 S5
`)
	if got := r.fw.FanDuty(); math.Abs(got-128.0/255) > 0.01 {
		t.Errorf("FanDuty = %v", got)
	}
	if got := r.plant.FanDuty(); math.Abs(got-0.5) > 0.1 {
		t.Errorf("plant fan duty = %v, want ≈0.5", got)
	}
	r2 := newRig(t, nil)
	r2.run(t, "M106 S255\nG4 S3\nM107\nG4 S3\n")
	if got := r2.plant.FanDuty(); got > 0.1 {
		t.Errorf("fan duty after M107 = %v, want ≈0", got)
	}
}

func TestMotorEnableLifecycle(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, "G28\nG1 X10 F6000\nM84\n")
	if r.fw.MotorsEnabled() {
		t.Error("motors enabled after M84")
	}
	if r.bus.Enable(signal.AxisX).Level() != signal.High {
		t.Error("X EN not released after M84")
	}
}

func TestDwellTiming(t *testing.T) {
	r := newRig(t, nil)
	prog, _ := gcode.ParseString("G4 P2500\n")
	r.fw.Load(prog)
	if err := r.fw.Start(); err != nil {
		t.Fatal(err)
	}
	r.runToCompletion(t)
	if r.engine.Now() < 2500*sim.Millisecond {
		t.Errorf("finished at %v, dwell was 2.5 s", r.engine.Now())
	}
}

func TestStatusAndUnknownCommands(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, `M115
M105
M117 ;hello display
M73 P10
`)
	if r.fw.UnknownCommands() != 2 {
		t.Errorf("UnknownCommands = %d, want 2 (M115, M73)", r.fw.UnknownCommands())
	}
	joined := strings.Join(r.fw.StatusLog(), "|")
	if !strings.Contains(joined, "ok T:") {
		t.Errorf("status log missing M105 report: %q", joined)
	}
}

func TestStepRateStaysUnderCap(t *testing.T) {
	r := newRig(t, nil)
	tr := signal.NewTrace(r.bus.Step(signal.AxisX))
	r.run(t, `G28
G1 X200 F20000
`)
	stats := tr.ComputeStats()
	if stats.MaxFrequency > DefaultConfig().MaxStepRate*1.01 {
		t.Errorf("X step freq %v Hz exceeds cap %v", stats.MaxFrequency, DefaultConfig().MaxStepRate)
	}
	if stats.MinPulseWidth < sim.Microsecond {
		t.Errorf("pulse width %v below 1 µs", stats.MinPulseWidth)
	}
}

func TestFeedrateAxisClamp(t *testing.T) {
	// Z max feedrate is 12 mm/s; command 100 mm/s and verify duration.
	r := newRig(t, nil)
	prog, _ := gcode.ParseString("G28\nG1 Z50 F6000\n")
	r.fw.Load(prog)
	if err := r.fw.Start(); err != nil {
		t.Fatal(err)
	}
	r.runToCompletion(t)
	if got := r.plant.Position(signal.AxisZ); math.Abs(got-50) > 0.05 {
		t.Fatalf("Z = %v, want 50", got)
	}
	// 50 mm at 12 mm/s is ≥ 4.1 s; homing adds a little. If the clamp
	// failed, the move would finish in 0.5 s.
	if r.engine.Now() < sim.FromSeconds(4) {
		t.Errorf("Z move too fast: total time %v", r.engine.Now())
	}
}

func TestTimeNoiseDeterministicPerSeed(t *testing.T) {
	end := func(seed uint64) sim.Time {
		r := newRig(t, func(c *Config) { c.Seed = seed })
		r.run(t, "G28\nG1 X50 F6000\nG1 X10 F6000\n")
		return r.fw.FinishedAt()
	}
	a1 := end(7)
	a2 := end(7)
	b := end(8)
	if a1 != a2 {
		t.Errorf("same seed, different end times: %v vs %v", a1, a2)
	}
	if a1 == b {
		t.Error("different seeds produced identical timelines")
	}
}

func TestStartErrors(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	fw, err := New(e, bus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Start(); err == nil {
		t.Error("Start without program accepted")
	}
	prog, _ := gcode.ParseString("G4 P1\n")
	fw.Load(prog)
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Start(); err == nil {
		t.Error("double Start accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.StepsPerMM[signal.AxisE] = 0 },
		func(c *Config) { c.MaxFeedrate[signal.AxisX] = 0 },
		func(c *Config) { c.Acceleration = 0 },
		func(c *Config) { c.MaxStepRate = 0 },
		func(c *Config) { c.StepPulseWidth = 0 },
		func(c *Config) { c.DefaultFeedrate = 0 },
		func(c *Config) { c.HomingOrder = nil },
		func(c *Config) { c.HomingBumpDist = 0 },
		func(c *Config) { c.PWMPeriod = 0 },
		func(c *Config) { c.HotendMaxTemp = 0 },
		func(c *Config) { c.WatchPeriod = 0 },
		func(c *Config) { c.TimeNoise = -1 },
		func(c *Config) { c.UARTBaud = 0 },
		func(c *Config) { c.HomingFeedrate[signal.AxisZ] = 0 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		// Deep-copy the maps the mods touch.
		cfg.StepsPerMM = copyAxisMap(cfg.StepsPerMM)
		cfg.MaxFeedrate = copyAxisMap(cfg.MaxFeedrate)
		cfg.HomingFeedrate = copyAxisMap(cfg.HomingFeedrate)
		mod(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mod %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func copyAxisMap(m map[signal.Axis]float64) map[signal.Axis]float64 {
	out := make(map[signal.Axis]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
