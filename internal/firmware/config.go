// Package firmware is a behavioural twin of Marlin running on an Arduino
// Mega: it consumes G-code and drives the Arduino-side bus with exactly the
// signals the paper's FPGA intercepts — STEP/DIR/EN pulse trains shaped by
// a trapezoidal motion planner, PID-controlled heater PWM on D8/D10, fan
// PWM on D9, endstop-driven homing, and thermal-runaway protection.
//
// Fidelity notes (what the experiments depend on):
//   - Step frequency stays below 20 kHz and step pulses are ≥ 1 µs wide,
//     matching the envelope the paper measured on the real stack (§V-B).
//   - Execution timing carries seeded "time noise" — the asynchronous
//     variation between identical prints (§V-C, [30]) that motivates the
//     detector's 5 % margin.
//   - Thermal protection mirrors Marlin: a heat-up watchdog (temperature
//     must keep rising while far from target) and a MAXTEMP cutoff. The
//     heater trojans T6/T7 are judged by how the firmware reacts (§IV-C).
package firmware

import (
	"fmt"

	"offramps/internal/signal"
	"offramps/internal/sim"
)

// PID holds controller gains for a heater loop. Output is MOSFET duty in
// [0,1]. Feedforward supplies the steady-state duty (loss/power × ΔT),
// which is how shipped Marlin configs behave after autotune.
type PID struct {
	Kp, Ki, Kd float64
	// Kff is feedforward duty per °C above ambient.
	Kff float64
}

// Config parameterizes the firmware build, mirroring Configuration.h.
type Config struct {
	// StepsPerMM must match the machine (and the plant model).
	StepsPerMM map[signal.Axis]float64
	// MaxFeedrate caps commanded speed per axis, mm/s.
	MaxFeedrate map[signal.Axis]float64
	// Acceleration for the trapezoidal planner, mm/s².
	Acceleration float64
	// MaxStepRate caps any axis's step frequency, Hz. The Mega's stepper
	// ISR tops out well under this; the paper measured < 20 kHz.
	MaxStepRate float64
	// StepPulseWidth is the STEP high time.
	StepPulseWidth sim.Time
	// DirSetup is the DIR-to-STEP setup time.
	DirSetup sim.Time
	// DefaultFeedrate applies when no F word has been seen, mm/min.
	DefaultFeedrate float64

	// Homing.
	HomingFeedrate  map[signal.Axis]float64 // fast approach, mm/s
	HomingBumpDist  float64                 // back-off before slow re-approach, mm
	HomingSlowDiv   float64                 // slow approach = fast/HomingSlowDiv
	HomingOrder     []signal.Axis           // axis homing order (X, Y, Z)
	HomingMaxTravel float64                 // abort homing after this many mm

	// Heaters.
	HotendPID       PID
	BedPID          PID
	PWMPeriod       sim.Time // software PWM window for heater outputs
	ControlPeriod   sim.Time // PID loop period
	HotendMaxTemp   float64  // MAXTEMP cutoff, °C
	BedMaxTemp      float64
	ReachHysteresis float64 // M109/M190 completion band, °C

	// Thermal runaway protection (heat-up watch).
	WatchPeriod   sim.Time // window length
	WatchIncrease float64  // required rise per window while heating, °C
	WatchMargin   float64  // "far from target" threshold, °C

	// Fan.
	FanPWMPeriod sim.Time

	// Time noise: each command's start is delayed by a uniform random
	// amount in [0, TimeNoise], seeded by Seed. Zero disables noise.
	TimeNoise sim.Time
	Seed      uint64

	// InterCommandDelay models G-code parse/dispatch latency on the Mega.
	InterCommandDelay sim.Time

	// UARTBaud for the display link transmitter.
	UARTBaud int

	// Trains, when non-nil, is a shared step-train cache the firmware
	// recycles pulse trains through instead of owning a private pool —
	// set by pooled testbed cores so sequential runs on one worker reuse
	// train storage. Nil means a private cache.
	Trains *TrainCache
}

// DefaultConfig mirrors a stock RAMPS Marlin for the simulated Prusa.
func DefaultConfig() Config {
	return Config{
		StepsPerMM: map[signal.Axis]float64{
			signal.AxisX: 80, signal.AxisY: 80, signal.AxisZ: 400, signal.AxisE: 96,
		},
		MaxFeedrate: map[signal.Axis]float64{
			signal.AxisX: 200, signal.AxisY: 200, signal.AxisZ: 12, signal.AxisE: 120,
		},
		Acceleration:    1200,
		MaxStepRate:     18_000,
		StepPulseWidth:  2 * sim.Microsecond,
		DirSetup:        20 * sim.Microsecond,
		DefaultFeedrate: 1500,

		HomingFeedrate: map[signal.Axis]float64{
			signal.AxisX: 50, signal.AxisY: 50, signal.AxisZ: 8,
		},
		HomingBumpDist:  2,
		HomingSlowDiv:   5,
		HomingOrder:     []signal.Axis{signal.AxisX, signal.AxisY, signal.AxisZ},
		HomingMaxTravel: 320,

		HotendPID:       PID{Kp: 0.05, Ki: 0.0008, Kd: 0.02, Kff: 0.00275},
		BedPID:          PID{Kp: 0.12, Ki: 0.0015, Kd: 0, Kff: 0.0086},
		PWMPeriod:       100 * sim.Millisecond,
		ControlPeriod:   100 * sim.Millisecond,
		HotendMaxTemp:   275,
		BedMaxTemp:      130,
		ReachHysteresis: 2,

		WatchPeriod:   20 * sim.Second,
		WatchIncrease: 2,
		WatchMargin:   8,

		FanPWMPeriod: 20 * sim.Millisecond,

		TimeNoise:         200 * sim.Microsecond,
		Seed:              1,
		InterCommandDelay: 150 * sim.Microsecond,

		UARTBaud: 115_200,
	}
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	for _, a := range signal.Axes {
		if c.StepsPerMM[a] <= 0 {
			return fmt.Errorf("firmware: StepsPerMM[%v] must be positive", a)
		}
		if c.MaxFeedrate[a] <= 0 {
			return fmt.Errorf("firmware: MaxFeedrate[%v] must be positive", a)
		}
	}
	switch {
	case c.Acceleration <= 0:
		return fmt.Errorf("firmware: Acceleration must be positive")
	case c.MaxStepRate <= 0:
		return fmt.Errorf("firmware: MaxStepRate must be positive")
	case c.StepPulseWidth <= 0:
		return fmt.Errorf("firmware: StepPulseWidth must be positive")
	case c.DefaultFeedrate <= 0:
		return fmt.Errorf("firmware: DefaultFeedrate must be positive")
	case len(c.HomingOrder) == 0:
		return fmt.Errorf("firmware: HomingOrder must not be empty")
	case c.HomingBumpDist <= 0 || c.HomingSlowDiv <= 0 || c.HomingMaxTravel <= 0:
		return fmt.Errorf("firmware: homing parameters must be positive")
	case c.PWMPeriod <= 0 || c.ControlPeriod <= 0 || c.FanPWMPeriod <= 0:
		return fmt.Errorf("firmware: PWM/control periods must be positive")
	case c.HotendMaxTemp <= 0 || c.BedMaxTemp <= 0:
		return fmt.Errorf("firmware: max temperatures must be positive")
	case c.WatchPeriod <= 0 || c.WatchIncrease <= 0 || c.WatchMargin <= 0:
		return fmt.Errorf("firmware: thermal watch parameters must be positive")
	case c.TimeNoise < 0:
		return fmt.Errorf("firmware: TimeNoise must be non-negative")
	case c.UARTBaud <= 0:
		return fmt.Errorf("firmware: UARTBaud must be positive")
	}
	for _, a := range c.HomingOrder {
		if c.HomingFeedrate[a] <= 0 {
			return fmt.Errorf("firmware: HomingFeedrate[%v] must be positive", a)
		}
	}
	return nil
}
