package firmware

import (
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// stepTrain.FireEdge arguments: which edge of the pulse to emit.
const (
	trainRise uint64 = iota
	trainFall
)

// stepTrain emits the step pulses of one axis of one planned move through
// the engine's allocation-free fast path. Instead of enqueueing every
// pulse of the move upfront (O(steps) pending events and two fresh
// closures per pulse), the train keeps at most one rise and one fall in
// flight: each rising edge schedules its own falling edge and the next
// rise from the move's precomputed velocity profile. Pulse timestamps are
// identical to the eager schedule — base plus the profile time of pulse k
// — so captures stay bit-identical.
type stepTrain struct {
	fw    *Firmware
	line  *signal.Line
	prof  profile
	base  sim.Time // absolute move origin (DIR setup already honoured)
	width sim.Time
	k, n  int
}

// riseAt returns the absolute time of pulse k's rising edge — the same
// arithmetic as plannedMove.stepTime, anchored at base.
func (t *stepTrain) riseAt(k int) sim.Time {
	frac := (float64(k) + 0.5) / float64(t.n)
	return t.base + sim.FromSeconds(t.prof.timeAt(frac*t.prof.dist))
}

// FireEdge implements sim.EdgeTarget. A rise drives the line High, books
// the matching fall, and books the next pulse's rise; the final fall
// recycles the train into the firmware's pool.
func (t *stepTrain) FireEdge(arg uint64) {
	if arg == trainFall {
		t.line.Set(signal.Low)
		if t.k >= t.n {
			// Last falling edge: no pending event references the train.
			t.fw.releaseTrain(t)
		}
		return
	}
	if t.fw.killed {
		// Match the eager schedule's kill behaviour: suppressed rises
		// produce no edges (a pre-scheduled fall on an already-Low line
		// was a no-op). The train is abandoned to the collector — kills
		// happen at most once per run.
		return
	}
	t.line.Set(signal.High)
	engine := t.fw.engine
	engine.ScheduleEdge(engine.Now()+t.width, t, trainFall)
	t.k++
	if t.k < t.n {
		engine.ScheduleEdge(t.riseAt(t.k), t, trainRise)
	}
}

// TrainCache recycles step trains. Each firmware owns one by default;
// a pooled testbed core (Config.Trains) shares a cache across the
// sequential runs of one campaign worker, so a reused rig steps with
// zero train allocations. Released trains are fully zeroed, so a cache
// never pins a dead run's engine or firmware. Not safe for concurrent
// use — one cache belongs to one worker at a time.
type TrainCache struct{ pool []*stepTrain }

// NewTrainCache returns an empty cache.
func NewTrainCache() *TrainCache { return &TrainCache{} }

// acquireTrain takes a train from the pool or allocates one.
func (fw *Firmware) acquireTrain() *stepTrain {
	pool := fw.trains.pool
	if n := len(pool); n > 0 {
		t := pool[n-1]
		pool[n-1] = nil
		fw.trains.pool = pool[:n-1]
		return t
	}
	return new(stepTrain)
}

// releaseTrain returns a finished train to the pool.
func (fw *Firmware) releaseTrain(t *stepTrain) {
	*t = stepTrain{}
	fw.trains.pool = append(fw.trains.pool, t)
}
