package firmware

import (
	"bytes"
	"testing"

	"offramps/internal/signal"
	"offramps/internal/sim"
)

func TestUARTRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	line := signal.NewLine(e, signal.PinUARTTx)
	tx := newUARTTx(e, line, 115_200)
	rx := newUARTRx(e, line, 115_200)

	msg := "T:210.0 ok\n"
	tx.sendString(msg)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rx.received(), []byte(msg)) {
		t.Errorf("received %q, want %q", rx.received(), msg)
	}
	if tx.sent != len(msg) {
		t.Errorf("sent = %d, want %d", tx.sent, len(msg))
	}
}

func TestUARTIdleHigh(t *testing.T) {
	e := sim.NewEngine()
	line := signal.NewLine(e, signal.PinUARTTx)
	newUARTTx(e, line, 9600)
	if line.Level() != signal.High {
		t.Error("UART idle level must be mark (high)")
	}
}

func TestUARTBackToBackFrames(t *testing.T) {
	e := sim.NewEngine()
	line := signal.NewLine(e, signal.PinUARTTx)
	tx := newUARTTx(e, line, 115_200)
	rx := newUARTRx(e, line, 115_200)
	// All byte values incl. 0x00 and 0xFF.
	var msg []byte
	for b := 0; b < 256; b++ {
		msg = append(msg, byte(b))
	}
	for _, b := range msg {
		tx.sendByte(b)
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rx.received(), msg) {
		t.Fatalf("round trip corrupted: got %d bytes", len(rx.received()))
	}
}

func TestUARTThroughMITMDelay(t *testing.T) {
	// Display traffic must survive the OFFRAMPS bypass path: a 13 ns
	// propagation delay is far below a 8.7 µs bit time.
	e := sim.NewEngine()
	src := signal.NewLine(e, "UART_SRC")
	dst := signal.NewLine(e, "UART_DST")
	tx := newUARTTx(e, src, 115_200)
	src.Connect(dst, 13*sim.Nanosecond)
	rx := newUARTRx(e, dst, 115_200)
	tx.sendString("hello")
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if string(rx.received()) != "hello" {
		t.Errorf("through-MITM round trip got %q", rx.received())
	}
}
