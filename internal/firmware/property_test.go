package firmware

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"offramps/internal/gcode"
	"offramps/internal/printer"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// Property: after homing, for any sequence of in-bounds absolute moves,
// the plant's physical position agrees with the last commanded coordinate
// to within one microstep on every axis. This is the foundational
// invariant the whole detection methodology rests on: commanded steps ==
// physical steps when nothing malicious is in the path.
func TestCommandedPositionProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-print property test")
	}
	f := func(raw []uint16) bool {
		var sb strings.Builder
		sb.WriteString("G28\n")
		var lastX, lastY, lastZ float64
		n := len(raw)
		if n > 8 {
			n = 8 // bound simulated time
		}
		for i := 0; i < n; i++ {
			lastX = float64(raw[i]%180) + 1
			lastY = float64((raw[i]/180)%150) + 1
			lastZ = float64(raw[i]%50)/10 + 0.2
			fmt.Fprintf(&sb, "G1 X%.1f Y%.1f Z%.1f F9000\n", lastX, lastY, lastZ)
		}
		e := sim.NewEngine()
		bus := signal.NewBus(e)
		plant, err := printer.NewPlant(e, bus, printer.DefaultConfig())
		if err != nil {
			return false
		}
		fw, err := New(e, bus, DefaultConfig())
		if err != nil {
			return false
		}
		prog, err := gcode.ParseString(sb.String())
		if err != nil {
			return false
		}
		fw.Load(prog)
		if err := fw.Start(); err != nil {
			return false
		}
		for i := 0; !fw.Done() && i < 2000; i++ {
			if err := e.Run(e.Now() + sim.Second); err != nil {
				return false
			}
		}
		if !fw.Done() || fw.Err() != nil {
			return false
		}
		if n == 0 {
			return true
		}
		tol := map[signal.Axis]float64{
			signal.AxisX: 1.0 / 80, signal.AxisY: 1.0 / 80, signal.AxisZ: 1.0 / 400,
		}
		return math.Abs(plant.Position(signal.AxisX)-lastX) <= tol[signal.AxisX]+1e-9 &&
			math.Abs(plant.Position(signal.AxisY)-lastY) <= tol[signal.AxisY]+1e-9 &&
			math.Abs(plant.Position(signal.AxisZ)-lastZ) <= tol[signal.AxisZ]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Fault injection: an endstop stuck closed makes homing complete
// instantly at the current (wrong) position — the real failure mode of a
// shorted switch. The firmware believes it is at zero; the plant is not.
func TestFaultStuckEndstop(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	plant, err := printer.NewPlant(e, bus, printer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Short the X endstop by holding its line high at the plant side.
	bus.MinEndstop(signal.AxisX).Set(signal.High)

	fw, err := New(e, bus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := gcode.ParseString("G28 X\n")
	fw.Load(prog)
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; !fw.Done() && i < 100; i++ {
		if err := e.Run(e.Now() + sim.Second); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Err() != nil {
		t.Fatalf("stuck endstop killed the machine: %v", fw.Err())
	}
	// Firmware believes zero; plant has barely moved from its start.
	if fw.PositionSteps(signal.AxisX) != 0 {
		t.Errorf("believed X = %d steps", fw.PositionSteps(signal.AxisX))
	}
	start := printer.DefaultConfig().StartPos[signal.AxisX]
	if got := plant.Position(signal.AxisX); math.Abs(got-start) > 3 {
		t.Errorf("plant X = %v, want near start %v (stuck switch → no real homing)", got, start)
	}
}

// Fault injection: a disconnected (never-closing) Y endstop must produce
// a homing failure rather than an infinite grind.
func TestFaultOpenEndstop(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	// No plant at all: the endstop line never rises. Provide sane
	// thermistor readings so the control loop stays quiet.
	bus.ThermHotend.Set(4.77)
	bus.ThermBed.Set(4.77)
	fw, err := New(e, bus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := gcode.ParseString("G28 Y\n")
	fw.Load(prog)
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; !fw.Done() && i < 500; i++ {
		if err := e.Run(e.Now() + sim.Second); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Err() == nil || !strings.Contains(fw.Err().Error(), "homing Y failed") {
		t.Fatalf("Err() = %v, want homing failure", fw.Err())
	}
}

// Fault injection: thermistor wire breaks mid-print (reads open = very
// cold). The firmware must trip thermal protection, not heat forever.
func TestFaultThermistorOpenCircuit(t *testing.T) {
	e := sim.NewEngine()
	bus := signal.NewBus(e)
	plant, err := printer.NewPlant(e, bus, printer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(e, bus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := gcode.ParseString("M109 S210\nG4 S300\n")
	fw.Load(prog)
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it reach temperature, then snap the thermistor wire: the plant
	// stops publishing (its divider is disconnected) and the pin floats
	// to the pull-up rail, which decodes as absurdly cold.
	e.Schedule(120*sim.Second, func() {
		plant.Stop()
		bus.ThermHotend.Set(4.999) // open circuit: reads ≈ -40 °C
	})
	for i := 0; !fw.Done() && i < 600; i++ {
		if err := e.Run(e.Now() + sim.Second); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Err() == nil {
		t.Fatal("open thermistor never tripped protection")
	}
	// And the heater output must be off, so the plant cools rather than
	// burns (the thermistor lies, but the MOSFET gate is what matters).
	if bus.Line(signal.PinHotend).Level() != signal.Low {
		t.Error("heater still powered after protection trip")
	}
	_ = plant
}
