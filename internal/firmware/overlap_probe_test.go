package firmware

import "testing"

// Probe: StepPulseWidth longer than the step period (legal per
// Config.Validate) — does the pooled step train survive overlapping
// falls?
func TestStepTrainOverlapProbe(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.MaxStepRate = 1_000_000 // 1 µs period
		// default StepPulseWidth = 2 µs > period
	})
	r.run(t, "G28\nG1 X1 F6000\nG1 X2 F6000\n")
}
