package firmware

import (
	"math"
	"testing"
	"testing/quick"

	"offramps/internal/sim"
)

func TestProfileTrapezoid(t *testing.T) {
	// 100 mm at 50 mm/s, 1000 mm/s²: accel dist = 1.25 mm each end,
	// cruise 97.5 mm.
	p := newProfile(100, 50, 1000)
	if p.vPeak != 50 {
		t.Errorf("vPeak = %v, want 50", p.vPeak)
	}
	if math.Abs(p.dAcc-1.25) > 1e-9 {
		t.Errorf("dAcc = %v, want 1.25", p.dAcc)
	}
	wantTotal := 2*0.05 + 97.5/50
	if math.Abs(p.total()-wantTotal) > 1e-9 {
		t.Errorf("total = %v, want %v", p.total(), wantTotal)
	}
}

func TestProfileTriangular(t *testing.T) {
	// 1 mm at 100 mm/s, 1000 mm/s²: can't reach 100 (needs 5 mm each
	// side). Peak = sqrt(a·d) = sqrt(1000).
	p := newProfile(1, 100, 1000)
	if p.tCru != 0 {
		t.Errorf("tCru = %v, want 0", p.tCru)
	}
	if math.Abs(p.vPeak-math.Sqrt(1000)) > 1e-9 {
		t.Errorf("vPeak = %v", p.vPeak)
	}
}

func TestProfileTimeAtEndpoints(t *testing.T) {
	p := newProfile(40, 30, 1200)
	if p.timeAt(0) != 0 {
		t.Error("timeAt(0) != 0")
	}
	if math.Abs(p.timeAt(40)-p.total()) > 1e-12 {
		t.Error("timeAt(dist) != total")
	}
	if p.timeAt(-5) != 0 || math.Abs(p.timeAt(500)-p.total()) > 1e-12 {
		t.Error("timeAt does not clamp")
	}
}

// Property: timeAt is monotonically non-decreasing in distance and bounded
// by the total duration, for arbitrary move geometry.
func TestProfileMonotoneProperty(t *testing.T) {
	f := func(rawDist, rawV uint16, steps uint8) bool {
		dist := 0.1 + float64(rawDist%2000)/10 // 0.1..200 mm
		v := 1 + float64(rawV%3000)/10         // 1..300 mm/s
		p := newProfile(dist, v, 1200)
		n := int(steps%100) + 2
		prev := -1.0
		for k := 0; k <= n; k++ {
			s := dist * float64(k) / float64(n)
			tm := p.timeAt(s)
			if tm < prev-1e-12 || tm > p.total()+1e-12 {
				return false
			}
			prev = tm
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanMoveStepRateCap(t *testing.T) {
	// 10 mm move, 5000 steps on the dominant axis, at a speed that would
	// exceed the cap: 500 steps/mm × 100 mm/s = 50 kHz >> 18 kHz.
	pm := planMove([4]int{5000, 0, 0, 0}, 10, 100, 1200, 18_000)
	cruiseRate := pm.prof.vPeak * 500 // steps/s at peak
	if cruiseRate > 18_000*1.001 {
		t.Errorf("cruise step rate %v exceeds cap", cruiseRate)
	}
}

func TestPlanMoveDirections(t *testing.T) {
	pm := planMove([4]int{-80, 80, 0, -10}, 2, 50, 1200, 18_000)
	if !pm.axes[0].negative || pm.axes[0].steps != 80 {
		t.Errorf("X plan = %+v", pm.axes[0])
	}
	if pm.axes[1].negative || pm.axes[1].steps != 80 {
		t.Errorf("Y plan = %+v", pm.axes[1])
	}
	if pm.axes[2].steps != 0 {
		t.Errorf("Z plan = %+v", pm.axes[2])
	}
	if !pm.axes[3].negative || pm.axes[3].steps != 10 {
		t.Errorf("E plan = %+v", pm.axes[3])
	}
}

func TestPlanMoveZeroDistance(t *testing.T) {
	pm := planMove([4]int{0, 0, 0, 0}, 0, 50, 1200, 18_000)
	if pm.duration() != 0 {
		t.Errorf("zero move duration = %v", pm.duration())
	}
}

func TestStepTimesOrderedWithinMove(t *testing.T) {
	pm := planMove([4]int{800, 0, 0, 0}, 10, 50, 1200, 18_000)
	var prev sim.Time = -1
	for k := 0; k < 800; k++ {
		at := pm.stepTime(k, 800)
		if at <= prev {
			t.Fatalf("step %d at %v not after previous %v", k, at, prev)
		}
		if at > pm.duration() {
			t.Fatalf("step %d at %v beyond duration %v", k, at, pm.duration())
		}
		prev = at
	}
}
