package firmware

import (
	"fmt"

	"offramps/internal/gcode"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// executeHoming implements G28: for each requested axis, in the configured
// order, drive toward the MIN endstop until it closes, back off, and
// re-approach slowly — Marlin's double-tap homing. The endstop actuation
// order this produces is exactly what the FPGA's Homing Detection Module
// watches for (paper §IV-B).
func (fw *Firmware) executeHoming(cmd gcode.Command) {
	all := !cmd.Has('X') && !cmd.Has('Y') && !cmd.Has('Z')
	var axes []signal.Axis
	for _, a := range fw.cfg.HomingOrder {
		var letter byte
		switch a {
		case signal.AxisX:
			letter = 'X'
		case signal.AxisY:
			letter = 'Y'
		case signal.AxisZ:
			letter = 'Z'
		default:
			continue
		}
		if all || cmd.Has(letter) {
			axes = append(axes, a)
		}
	}
	if !fw.motorsEnabled {
		fw.setMotors(true)
	}

	fw.homeNextAxis(axes, 0, func() {
		// All axes homed: logical and machine frames coincide at zero.
		fw.modal.Apply(cmd)
		fw.next()
	})
}

// homeNextAxis homes axes[i] then recurses; done runs after the last axis.
func (fw *Firmware) homeNextAxis(axes []signal.Axis, i int, done func()) {
	if fw.killed {
		return
	}
	if i >= len(axes) {
		done()
		return
	}
	a := axes[i]
	fast := fw.cfg.HomingFeedrate[a]
	slow := fast / fw.cfg.HomingSlowDiv

	// Phase 1: fast approach until the endstop closes.
	fw.seekEndstop(a, fast, func() {
		// Phase 2: back off the bump distance.
		fw.bumpAway(a, slow, func() {
			// Phase 3: slow re-approach for repeatability.
			fw.seekEndstop(a, slow, func() {
				fw.steps[a] = 0
				fw.offset[a] = 0
				fw.homeNextAxis(axes, i+1, done)
			})
		})
	})
}

// seekEndstop steps axis a toward MIN at the given speed (mm/s) until its
// endstop reads pressed. It aborts the whole machine if the axis travels
// further than HomingMaxTravel without hitting the switch (crashed or
// missing endstop — a real failure mode RAMPS clones are notorious for).
func (fw *Firmware) seekEndstop(a signal.Axis, speed float64, done func()) {
	stepsPerMM := fw.cfg.StepsPerMM[a]
	period := sim.FromSeconds(1 / (speed * stepsPerMM))
	if period <= fw.cfg.StepPulseWidth {
		period = fw.cfg.StepPulseWidth * 2
	}
	limit := int(fw.cfg.HomingMaxTravel * stepsPerMM)
	endstop := fw.bus.MinEndstop(a)
	step := fw.bus.Step(a)

	fw.bus.Dir(a).Set(signal.High) // toward MIN
	taken := 0
	var tick func()
	tick = func() {
		if fw.killed {
			return
		}
		if endstop.Level() == signal.High {
			done()
			return
		}
		if taken >= limit {
			fw.halt(fmt.Errorf("firmware: homing %v failed: no endstop after %.0f mm", a, fw.cfg.HomingMaxTravel))
			return
		}
		taken++
		fw.steps[a]--
		step.Set(signal.High)
		step.SetAfter(fw.cfg.StepPulseWidth, signal.Low)
		fw.engine.After(period, tick)
	}
	// Honour DIR setup before the first pulse.
	fw.engine.After(fw.cfg.DirSetup, tick)
}

// bumpAway moves axis a positive by the homing bump distance at the given
// speed, then calls done.
func (fw *Firmware) bumpAway(a signal.Axis, speed float64, done func()) {
	stepsPerMM := fw.cfg.StepsPerMM[a]
	period := sim.FromSeconds(1 / (speed * stepsPerMM))
	if period <= fw.cfg.StepPulseWidth {
		period = fw.cfg.StepPulseWidth * 2
	}
	n := int(fw.cfg.HomingBumpDist * stepsPerMM)
	step := fw.bus.Step(a)

	fw.bus.Dir(a).Set(signal.Low) // away from MIN
	taken := 0
	var tick func()
	tick = func() {
		if fw.killed {
			return
		}
		if taken >= n {
			done()
			return
		}
		taken++
		fw.steps[a]++
		step.Set(signal.High)
		step.SetAfter(fw.cfg.StepPulseWidth, signal.Low)
		fw.engine.After(period, tick)
	}
	fw.engine.After(fw.cfg.DirSetup, tick)
}
