package firmware

import (
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// uartTx is a bit-banged 8N1 UART transmitter for the display link the
// RAMPS routes through its AUX headers (paper §III-C2 item 4). The
// OFFRAMPS FPGA sits on this line too; tracing it shows firmware status
// traffic alongside the control signals.
//
// Idle level is high (UART mark); a frame is start(0), 8 data bits LSB
// first, stop(1).
type uartTx struct {
	engine  *sim.Engine
	line    *signal.Line
	bitTime sim.Time
	// busyUntil serializes frames: a new byte begins after the previous
	// one's stop bit.
	busyUntil sim.Time
	sent      int
}

func newUARTTx(engine *sim.Engine, line *signal.Line, baud int) *uartTx {
	line.Set(signal.High) // idle mark
	return &uartTx{
		engine:  engine,
		line:    line,
		bitTime: sim.Time(int64(sim.Second) / int64(baud)),
	}
}

// sendString queues every byte of s for transmission.
func (u *uartTx) sendString(s string) {
	for i := 0; i < len(s); i++ {
		u.sendByte(s[i])
	}
}

// sendByte schedules the 10 bit transitions of one frame.
func (u *uartTx) sendByte(b byte) {
	start := u.engine.Now()
	if u.busyUntil > start {
		start = u.busyUntil
	}
	// Start bit.
	u.setAt(start, signal.Low)
	// Data bits, LSB first.
	for bit := 0; bit < 8; bit++ {
		level := signal.Low
		if b&(1<<bit) != 0 {
			level = signal.High
		}
		u.setAt(start+sim.Time(bit+1)*u.bitTime, level)
	}
	// Stop bit.
	u.setAt(start+9*u.bitTime, signal.High)
	u.busyUntil = start + 10*u.bitTime
	u.sent++
}

func (u *uartTx) setAt(at sim.Time, level signal.Level) {
	u.engine.ScheduleEdge(at, u.line, uint64(level))
}

// uartRx decodes 8N1 frames from a line by sampling mid-bit after each
// start edge. The FPGA test bench uses it to verify display traffic
// passes through the MITM unharmed.
type uartRx struct {
	engine  *sim.Engine
	bitTime sim.Time
	bytes   []byte

	sampling bool
}

// newUARTRx attaches a receiver to line.
func newUARTRx(engine *sim.Engine, line *signal.Line, baud int) *uartRx {
	rx := &uartRx{engine: engine, bitTime: sim.Time(int64(sim.Second) / int64(baud))}
	line.Watch(func(at sim.Time, level signal.Level) {
		if level != signal.Low || rx.sampling {
			return
		}
		// Falling edge while idle: start bit. Sample the 8 data bits at
		// their centres.
		rx.sampling = true
		var b byte
		for bit := 0; bit < 8; bit++ {
			bit := bit
			engine.Schedule(at+sim.Time(bit+1)*rx.bitTime+rx.bitTime/2, func() {
				if line.Level() == signal.High {
					b |= 1 << bit
				}
			})
		}
		engine.Schedule(at+9*rx.bitTime+rx.bitTime/2, func() {
			rx.bytes = append(rx.bytes, b)
			rx.sampling = false
		})
	})
	return rx
}

// received returns the decoded bytes so far.
func (rx *uartRx) received() []byte { return rx.bytes }
