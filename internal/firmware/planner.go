package firmware

import (
	"math"

	"offramps/internal/sim"
)

// profile is a trapezoidal velocity profile over a move of given distance:
// accelerate at a to vPeak, cruise, decelerate. When the move is too short
// to reach vMax the profile degenerates to a triangle.
type profile struct {
	dist  float64 // total distance, mm
	a     float64 // acceleration, mm/s²
	vPeak float64 // attained peak velocity, mm/s
	tAcc  float64 // seconds accelerating
	tCru  float64 // seconds cruising
	dAcc  float64 // mm covered accelerating (== decelerating)
}

// newProfile plans a move of dist mm at target speed vMax with
// acceleration a. dist and a must be positive; vMax is clamped to a sane
// minimum.
func newProfile(dist, vMax, a float64) profile {
	if vMax < 0.01 {
		vMax = 0.01
	}
	p := profile{dist: dist, a: a}
	dAccFull := vMax * vMax / (2 * a)
	if 2*dAccFull <= dist {
		p.vPeak = vMax
		p.tAcc = vMax / a
		p.dAcc = dAccFull
		p.tCru = (dist - 2*dAccFull) / vMax
	} else {
		p.vPeak = math.Sqrt(a * dist)
		p.tAcc = p.vPeak / a
		p.dAcc = dist / 2
		p.tCru = 0
	}
	return p
}

// total returns the move duration in seconds.
func (p profile) total() float64 { return 2*p.tAcc + p.tCru }

// timeAt returns the time (seconds from move start) at which the head has
// covered s mm. s is clamped to [0, dist].
func (p profile) timeAt(s float64) float64 {
	switch {
	case s <= 0:
		return 0
	case s >= p.dist:
		return p.total()
	case s < p.dAcc:
		return math.Sqrt(2 * s / p.a)
	case s <= p.dist-p.dAcc:
		return p.tAcc + (s-p.dAcc)/p.vPeak
	default:
		rem := p.dist - s
		return p.total() - math.Sqrt(2*rem/p.a)
	}
}

// axisPlan is the per-axis step schedule of one planned move.
type axisPlan struct {
	steps    int  // number of step pulses
	negative bool // DIR level: true = toward MIN
}

// plannedMove is a fully scheduled motion block.
type plannedMove struct {
	prof profile
	axes [4]axisPlan // indexed by axis order X,Y,Z,E (signal.Axes)
}

// planMove converts per-axis step deltas into a timed block. deltas are in
// microsteps (signed); feedrate is mm/s along the dominant geometry;
// distance is the Euclidean length in mm used for the velocity profile.
//
// The per-axis step rate cap is enforced by stretching the profile: if any
// axis would exceed maxStepRate at cruise, the feedrate is reduced. This is
// what keeps every STEP line inside the paper's measured < 20 kHz envelope.
func planMove(deltas [4]int, distance, feedrate, accel, maxStepRate float64) plannedMove {
	pm := plannedMove{}
	maxSteps := 0
	for i, d := range deltas {
		n := d
		if n < 0 {
			pm.axes[i].negative = true
			n = -n
		}
		pm.axes[i].steps = n
		if n > maxSteps {
			maxSteps = n
		}
	}
	if distance <= 0 || maxSteps == 0 {
		pm.prof = profile{dist: 0, a: accel}
		return pm
	}
	// Cap feedrate so the busiest axis stays under maxStepRate: that axis
	// emits maxSteps pulses over ~distance/feedrate seconds at cruise.
	stepsPerMM := float64(maxSteps) / distance
	if feedrate*stepsPerMM > maxStepRate {
		feedrate = maxStepRate / stepsPerMM
	}
	pm.prof = newProfile(distance, feedrate, accel)
	return pm
}

// stepTime returns the simulation-time offset of pulse k (0-based) of an
// axis with n total pulses, spread evenly over the move's distance.
// The +0.5 centres pulses within their distance slot so the first pulse is
// not at t=0 (which would collide with DIR setup).
func (pm plannedMove) stepTime(k, n int) sim.Time {
	frac := (float64(k) + 0.5) / float64(n)
	return sim.FromSeconds(pm.prof.timeAt(frac * pm.prof.dist))
}

// duration returns the block's total duration.
func (pm plannedMove) duration() sim.Time { return sim.FromSeconds(pm.prof.total()) }
