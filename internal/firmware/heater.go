package firmware

import (
	"fmt"

	"offramps/internal/ramps"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// heater is one temperature control loop (hotend or bed): ADC sampling of
// the thermistor channel, PID with feedforward, software PWM onto the
// MOSFET gate pin, and Marlin-style thermal protection.
type heater struct {
	name    string
	pin     *signal.Line
	analog  *signal.Analog
	adc     signal.ADC
	ntc     ramps.Thermistor
	gains   PID
	maxTemp float64
	ambient float64

	// Watchdog parameters (from Config).
	watchPeriod   sim.Time
	watchIncrease float64
	watchMargin   float64

	target   float64
	measured float64
	integral float64
	lastErr  float64
	duty     float64

	// Heat-up watchdog state.
	watchActive bool
	watchBase   float64  // temperature at window start
	watchAt     sim.Time // window start

	// killed latches after a protection trip: output forced off.
	killed bool
}

func newHeater(name string, pin *signal.Line, analog *signal.Analog, maxTemp float64, gains PID, cfg Config) *heater {
	return &heater{
		name:          name,
		pin:           pin,
		analog:        analog,
		adc:           signal.ADC{Bits: 10, VRef: 5.0},
		ntc:           ramps.StandardThermistor(),
		gains:         gains,
		maxTemp:       maxTemp,
		ambient:       25,
		watchPeriod:   cfg.WatchPeriod,
		watchIncrease: cfg.WatchIncrease,
		watchMargin:   cfg.WatchMargin,
	}
}

// sample reads the thermistor through the 10-bit ADC, exactly as the Mega
// does: analog voltage → code → temperature.
func (h *heater) sample() float64 {
	code := h.adc.Convert(h.analog.Value())
	h.measured = h.ntc.Temperature(h.adc.Voltage(code))
	return h.measured
}

// protectionError describes a thermal protection trip.
type protectionError struct {
	heater string
	reason string
	temp   float64
}

func (e *protectionError) Error() string {
	return fmt.Sprintf("firmware: %s thermal protection: %s at %.1f°C", e.heater, e.reason, e.temp)
}

// control runs one PID iteration at time now with loop period dt seconds.
// It returns a non-nil error when thermal protection trips; the caller
// kills the machine.
func (h *heater) control(now sim.Time, dt float64) error {
	temp := h.sample()

	if temp > h.maxTemp {
		h.trip()
		return &protectionError{heater: h.name, reason: "MAXTEMP exceeded", temp: temp}
	}

	if h.killed || h.target <= 0 {
		h.duty = 0
		h.watchActive = false
		return nil
	}

	// Heat-up watchdog: while far below target the temperature must keep
	// climbing. A heater that lost power (trojan T6) stops climbing and
	// trips this within one watch period — "causing the Marlin firmware to
	// enter an error state and end the print prematurely" (§IV-C).
	if temp < h.target-h.watchMargin {
		if !h.watchActive {
			h.watchActive = true
			h.watchBase = temp
			h.watchAt = now
		} else if now-h.watchAt >= h.watchPeriod {
			if temp-h.watchBase < h.watchIncrease {
				h.trip()
				return &protectionError{heater: h.name, reason: "heating failed (thermal runaway watch)", temp: temp}
			}
			h.watchBase = temp
			h.watchAt = now
		}
	} else {
		h.watchActive = false
	}

	// PID with feedforward.
	err := h.target - temp
	h.integral += err * dt
	clampAbs(&h.integral, 200) // anti-windup
	deriv := (err - h.lastErr) / dt
	h.lastErr = err
	duty := h.gains.Kff*(h.target-h.ambient) +
		h.gains.Kp*err + h.gains.Ki*h.integral + h.gains.Kd*deriv
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	h.duty = duty
	return nil
}

// FireEdge implements sim.EdgeTarget: it ends a software-PWM window by
// dropping the MOSFET gate, unless a newer window raised the duty to full.
func (h *heater) FireEdge(uint64) {
	if h.duty < 0.999 {
		h.pin.Set(signal.Low)
	}
}

// trip latches the heater off.
func (h *heater) trip() {
	h.killed = true
	h.duty = 0
	h.target = 0
	h.pin.Set(signal.Low)
}

// setTarget programs a new setpoint and resets the watchdog window.
func (h *heater) setTarget(t float64) {
	if h.killed {
		return
	}
	h.target = t
	h.integral = 0
	h.watchActive = false
}

// reached reports whether the measurement is within hysteresis of target.
func (h *heater) reached(hysteresis float64) bool {
	if h.target <= 0 {
		return true
	}
	diff := h.measured - h.target
	if diff < 0 {
		diff = -diff
	}
	return diff <= hysteresis
}

func clampAbs(v *float64, lim float64) {
	if *v > lim {
		*v = lim
	}
	if *v < -lim {
		*v = -lim
	}
}
