package firmware

import (
	"fmt"
	"math"

	"offramps/internal/gcode"
	"offramps/internal/signal"
)

// moveEntry is the pre-resolved execution of one G0/G1 command: whether
// the modal evaluation produced a move at all (resolved), whether that
// move has physical extent (motion — a zero-distance move still enables
// the motors, so the distinction matters for event-order identity), and
// the planned pulse trains. Entries are immutable once compiled.
type moveEntry struct {
	resolved bool
	motion   bool
	pm       plannedMove
}

// Compiled is an immutable pre-planned execution of one program under
// one firmware configuration: every G0/G1 resolved through the modal
// state, homing and G92 frame effects folded in, and each move's
// trapezoidal profile planned. N same-program scenarios share one
// Compiled — parse/plan cost is paid once per program instead of once
// per run — and simulate from it with byte-identical results, because
// planning is deterministic in (program, config) and independent of the
// run's time-noise seed. Safe for concurrent readers.
type Compiled struct {
	prog    gcode.Program
	entries []moveEntry
}

// Commands reports the compiled program's length.
func (c *Compiled) Commands() int { return len(c.prog) }

// Compile dry-runs the program's geometry under cfg: it tracks the
// modal interpreter state, believed machine position, and G92 offsets
// exactly as execution would, and plans every move. The returned plan
// is only valid for firmwares built with an identical motion
// configuration (StepsPerMM, feedrates, acceleration, pulse timing);
// seed and time-noise settings do not affect planning and may differ.
func Compile(prog gcode.Program, cfg Config) (*Compiled, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := gcode.NewState()
	steps := make(map[signal.Axis]int64, 4)
	offset := make(map[signal.Axis]float64, 4)
	c := &Compiled{prog: prog, entries: make([]moveEntry, len(prog))}
	for i, cmd := range prog {
		if cmd.Empty() {
			continue
		}
		switch cmd.Code {
		case "G0", "G1":
			mv, ok := st.Apply(cmd)
			e := resolveMove(&cfg, steps, offset, mv, ok)
			c.entries[i] = e
			if e.motion {
				for j, a := range signal.Axes {
					n := e.pm.axes[j].steps
					if n == 0 {
						continue
					}
					if e.pm.axes[j].negative {
						steps[a] -= int64(n)
					} else {
						steps[a] += int64(n)
					}
				}
			}
		case "G28":
			// Net effect of double-tap homing: each homed axis's machine
			// position and G92 offset are zeroed (see homeNextAxis).
			all := !cmd.Has('X') && !cmd.Has('Y') && !cmd.Has('Z')
			for _, a := range cfg.HomingOrder {
				var letter byte
				switch a {
				case signal.AxisX:
					letter = 'X'
				case signal.AxisY:
					letter = 'Y'
				case signal.AxisZ:
					letter = 'Z'
				default:
					continue
				}
				if all || cmd.Has(letter) {
					steps[a] = 0
					offset[a] = 0
				}
			}
			st.Apply(cmd)
		case "G90", "G91", "M82", "M83":
			st.Apply(cmd)
		case "G92":
			st.Apply(cmd)
			for _, spec := range []struct {
				letter byte
				axis   signal.Axis
				val    float64
			}{
				{'X', signal.AxisX, st.Pos.X},
				{'Y', signal.AxisY, st.Pos.Y},
				{'Z', signal.AxisZ, st.Pos.Z},
				{'E', signal.AxisE, st.Pos.E},
			} {
				if cmd.Has(spec.letter) {
					offset[spec.axis] = float64(steps[spec.axis])/cfg.StepsPerMM[spec.axis] - spec.val
				}
			}
		}
	}
	return c, nil
}

// resolveMove turns one modal-evaluated move into its execution plan.
// It is THE move-resolution path — the live interpreter and the
// compiler both call it, so a compiled run reproduces an interpreted
// run by construction. steps and offset are read, never written; the
// caller applies the plan's position updates.
func resolveMove(cfg *Config, steps map[signal.Axis]int64, offset map[signal.Axis]float64, mv gcode.Move, ok bool) moveEntry {
	if !ok {
		return moveEntry{} // feedrate-only or zero-length move
	}
	e := moveEntry{resolved: true}

	// Resolve logical targets into machine steps.
	var deltas [4]int
	targets := [4]float64{
		mv.To.X + offset[signal.AxisX],
		mv.To.Y + offset[signal.AxisY],
		mv.To.Z + offset[signal.AxisZ],
		mv.To.E + offset[signal.AxisE],
	}
	for i, a := range signal.Axes {
		target := int64(math.Round(targets[i] * cfg.StepsPerMM[a]))
		deltas[i] = int(target - steps[a])
	}

	// Feedrate resolution: F is mm/min; clamp per-axis.
	feed := mv.Feedrate
	if feed <= 0 {
		feed = cfg.DefaultFeedrate
	}
	speed := feed / 60 // mm/s
	dist := mv.From.Distance(mv.To)
	if dist < 1e-12 {
		dist = math.Abs(mv.Extrusion())
	}
	if dist < 1e-12 {
		return e // resolved but no physical motion
	}
	axisDist := [4]float64{}
	for i, a := range signal.Axes {
		axisDist[i] = math.Abs(float64(deltas[i])) / cfg.StepsPerMM[a]
		if axisDist[i] < 1e-12 {
			continue
		}
		axisSpeed := speed * axisDist[i] / dist
		if limit := cfg.MaxFeedrate[a]; axisSpeed > limit {
			speed *= limit / axisSpeed
		}
	}

	e.motion = true
	e.pm = planMove(deltas, dist, speed, cfg.Acceleration, cfg.MaxStepRate)
	return e
}

// LoadCompiled loads prog together with its pre-compiled plan, replacing
// any previously loaded program. The plan must have been compiled from
// the same program; command count is validated (full content identity is
// the caller's contract — the campaign keys plans by program hash).
func (fw *Firmware) LoadCompiled(prog gcode.Program, c *Compiled) error {
	if c == nil {
		return fmt.Errorf("firmware: LoadCompiled(nil plan)")
	}
	if len(prog) != len(c.prog) {
		return fmt.Errorf("firmware: compiled plan is for a %d-command program, got %d commands", len(c.prog), len(prog))
	}
	fw.prog = prog
	fw.compiled = c
	return nil
}
