package firmware

import (
	"fmt"

	"offramps/internal/gcode"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// Firmware executes a G-code program against the Arduino-side bus. Create
// one with New, load a program with Load, then Start it and drive the
// simulation engine until Done reports true.
type Firmware struct {
	cfg    Config
	engine *sim.Engine
	bus    *signal.Bus

	prog gcode.Program
	pc   int
	// compiled, when non-nil, is the shared pre-planned execution of
	// prog (see Compile); executeMove reads entries from it instead of
	// re-planning each move.
	compiled *Compiled

	modal  *gcode.State
	steps  map[signal.Axis]int64   // believed machine position, microsteps
	offset map[signal.Axis]float64 // machineMM − logicalMM per axis (G92)

	hotend *heater
	bed    *heater

	fanDuty float64 // 0..1 commanded part-fan duty

	rng *sim.Rand

	motorsEnabled bool
	started       bool
	done          bool
	killed        bool
	err           error

	executed  int
	unknown   int
	doneAt    sim.Time
	statusLog []string

	uart *uartTx

	stopControl func()
	stopFanPWM  func()

	// Scheduling fast-path state: cached method values (one bound func
	// instead of a fresh allocation per dispatch), the recycled step-train
	// cache, the part-fan PWM gate target, and the cached fan line.
	nextFn        func()
	executeNextFn func()
	trains        *TrainCache
	fan           fanGate
	fanLine       *signal.Line
}

// fanGate ends a part-fan software-PWM window through the engine's
// allocation-free fast path.
type fanGate struct{ fw *Firmware }

// FireEdge implements sim.EdgeTarget: it drops the fan gate unless a newer
// window has raised the duty to full.
func (g *fanGate) FireEdge(uint64) {
	if g.fw.fanDuty < 0.999 {
		g.fw.fanLine.Set(signal.Low)
	}
}

// New builds a firmware instance attached to the Arduino-side bus.
func New(engine *sim.Engine, bus *signal.Bus, cfg Config) (*Firmware, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fw := &Firmware{
		cfg:    cfg,
		engine: engine,
		bus:    bus,
		modal:  gcode.NewState(),
		steps:  make(map[signal.Axis]int64, 4),
		offset: make(map[signal.Axis]float64, 4),
		rng:    sim.NewRand(cfg.Seed),
		hotend: newHeater("hotend", bus.Line(signal.PinHotend), bus.ThermHotend, cfg.HotendMaxTemp, cfg.HotendPID, cfg),
		bed:    newHeater("bed", bus.Line(signal.PinBed), bus.ThermBed, cfg.BedMaxTemp, cfg.BedPID, cfg),
		uart:   newUARTTx(engine, bus.Line(signal.PinUARTTx), cfg.UARTBaud),
	}
	fw.nextFn = fw.next
	fw.executeNextFn = fw.executeNext
	fw.trains = cfg.Trains
	if fw.trains == nil {
		fw.trains = NewTrainCache()
	}
	fw.fan = fanGate{fw: fw}
	fw.fanLine = bus.Line(signal.PinFan)
	return fw, nil
}

// Load sets the program to execute. It must be called before Start.
func (fw *Firmware) Load(prog gcode.Program) { fw.prog, fw.compiled = prog, nil }

// Start begins execution: the temperature control loop, fan PWM, and the
// command dispatcher. Calling Start twice is an error.
func (fw *Firmware) Start() error {
	if fw.started {
		return fmt.Errorf("firmware: already started")
	}
	if len(fw.prog) == 0 {
		return fmt.Errorf("firmware: no program loaded")
	}
	fw.started = true
	fw.stopControl = fw.engine.Ticker(fw.cfg.ControlPeriod, fw.controlTick)
	fw.stopFanPWM = fw.engine.Ticker(fw.cfg.FanPWMPeriod, fw.fanPWMTick)
	fw.engine.After(fw.dispatchDelay(), fw.executeNextFn)
	return nil
}

// Done reports whether the program finished or the machine was killed.
func (fw *Firmware) Done() bool { return fw.done }

// FinishedAt reports the simulation time at which the program completed or
// the machine was killed (zero while still running).
func (fw *Firmware) FinishedAt() sim.Time { return fw.doneAt }

// Err returns the halt reason if the machine was killed, else nil.
func (fw *Firmware) Err() error { return fw.err }

// Executed reports the number of commands dispatched.
func (fw *Firmware) Executed() int { return fw.executed }

// UnknownCommands reports how many commands were ignored as unsupported.
func (fw *Firmware) UnknownCommands() int { return fw.unknown }

// StatusLog returns messages the firmware logged (M117, M105, errors).
func (fw *Firmware) StatusLog() []string { return fw.statusLog }

// HotendTarget returns the current hotend setpoint.
func (fw *Firmware) HotendTarget() float64 { return fw.hotend.target }

// BedTarget returns the current bed setpoint.
func (fw *Firmware) BedTarget() float64 { return fw.bed.target }

// HotendMeasured returns the last sampled hotend temperature.
func (fw *Firmware) HotendMeasured() float64 { return fw.hotend.measured }

// FanDuty returns the commanded part-fan duty in [0,1].
func (fw *Firmware) FanDuty() float64 { return fw.fanDuty }

// PositionSteps returns the believed machine position of an axis.
func (fw *Firmware) PositionSteps(a signal.Axis) int64 { return fw.steps[a] }

// MotorsEnabled reports whether the EN lines are asserted.
func (fw *Firmware) MotorsEnabled() bool { return fw.motorsEnabled }

// logStatus appends to the firmware's message log and mirrors it onto the
// display UART.
func (fw *Firmware) logStatus(msg string) {
	fw.statusLog = append(fw.statusLog, msg)
	fw.uart.sendString(msg + "\n")
}

// halt kills the machine: heaters off, motors off, execution stops. This
// is Marlin's kill() — reached via thermal protection.
func (fw *Firmware) halt(err error) {
	if fw.killed {
		return
	}
	fw.killed = true
	fw.done = true
	fw.doneAt = fw.engine.Now()
	fw.err = err
	fw.hotend.trip()
	fw.bed.trip()
	fw.setMotors(false)
	if fw.stopControl != nil {
		fw.stopControl()
	}
	if fw.stopFanPWM != nil {
		fw.stopFanPWM()
	}
	fw.bus.Line(signal.PinFan).Set(signal.Low)
	fw.logStatus("KILLED: " + err.Error())
}

// finish completes the program normally.
func (fw *Firmware) finish() {
	if fw.done {
		return
	}
	fw.done = true
	fw.doneAt = fw.engine.Now()
	// Leave the control loops running: a real printer keeps regulating
	// after a print; the session owner decides when to stop simulating.
	fw.logStatus("print finished")
}

// dispatchDelay returns the inter-command latency including time noise.
func (fw *Firmware) dispatchDelay() sim.Time {
	d := fw.cfg.InterCommandDelay
	if fw.cfg.TimeNoise > 0 {
		d += sim.Time(fw.rng.Int63n(int64(fw.cfg.TimeNoise) + 1))
	}
	return d
}

// next schedules the following command after the standard dispatch delay.
func (fw *Firmware) next() {
	if fw.killed {
		return
	}
	fw.engine.After(fw.dispatchDelay(), fw.executeNextFn)
}

// executeNext dispatches one command.
func (fw *Firmware) executeNext() {
	if fw.killed || fw.done {
		return
	}
	// Skip blank/comment lines without consuming dispatch latency.
	for fw.pc < len(fw.prog) && fw.prog[fw.pc].Empty() {
		fw.pc++
	}
	if fw.pc >= len(fw.prog) {
		fw.finish()
		return
	}
	cmd := fw.prog[fw.pc]
	fw.pc++
	fw.executed++

	switch cmd.Code {
	case "G0", "G1":
		fw.executeMove(cmd)
	case "G4":
		fw.executeDwell(cmd)
	case "G28":
		fw.executeHoming(cmd)
	case "G90", "G91", "M82", "M83":
		fw.modal.Apply(cmd)
		fw.next()
	case "G92":
		fw.executeSetPosition(cmd)
	case "M104":
		fw.hotend.setTarget(cmd.FloatDefault('S', 0))
		fw.next()
	case "M140":
		fw.bed.setTarget(cmd.FloatDefault('S', 0))
		fw.next()
	case "M109":
		fw.hotend.setTarget(cmd.FloatDefault('S', 0))
		fw.waitForHeater(fw.hotend)
	case "M190":
		fw.bed.setTarget(cmd.FloatDefault('S', 0))
		fw.waitForHeater(fw.bed)
	case "M106":
		fw.fanDuty = clamp01(cmd.FloatDefault('S', 255) / 255)
		fw.next()
	case "M107":
		fw.fanDuty = 0
		fw.next()
	case "M17":
		fw.setMotors(true)
		fw.next()
	case "M18", "M84":
		fw.setMotors(false)
		fw.next()
	case "M105":
		fw.logStatus(fmt.Sprintf("ok T:%.1f /%.1f B:%.1f /%.1f",
			fw.hotend.measured, fw.hotend.target, fw.bed.measured, fw.bed.target))
		fw.next()
	case "M117":
		fw.logStatus(cmd.Comment)
		fw.next()
	default:
		// Marlin echoes "Unknown command" and carries on; slicers emit
		// plenty of metadata codes (M115, M73, M201...).
		fw.unknown++
		fw.next()
	}
}

// machineMM returns the believed machine position of an axis in mm.
func (fw *Firmware) machineMM(a signal.Axis) float64 {
	return float64(fw.steps[a]) / fw.cfg.StepsPerMM[a]
}

// executeSetPosition handles G92: logical coordinates change, machine
// position does not — the offset absorbs the difference.
func (fw *Firmware) executeSetPosition(cmd gcode.Command) {
	fw.modal.Apply(cmd)
	for _, spec := range []struct {
		letter byte
		axis   signal.Axis
		val    float64
	}{
		{'X', signal.AxisX, fw.modal.Pos.X},
		{'Y', signal.AxisY, fw.modal.Pos.Y},
		{'Z', signal.AxisZ, fw.modal.Pos.Z},
		{'E', signal.AxisE, fw.modal.Pos.E},
	} {
		if cmd.Has(spec.letter) {
			fw.offset[spec.axis] = fw.machineMM(spec.axis) - spec.val
		}
	}
	fw.next()
}

// executeDwell handles G4 (P milliseconds or S seconds).
func (fw *Firmware) executeDwell(cmd gcode.Command) {
	var d sim.Time
	if v, ok := cmd.Float('P'); ok {
		d = sim.Time(v * float64(sim.Millisecond))
	} else if v, ok := cmd.Float('S'); ok {
		d = sim.Time(v * float64(sim.Second))
	}
	if d < 0 {
		d = 0
	}
	fw.engine.After(d, fw.nextFn)
}

// waitForHeater polls until the heater reaches its setpoint (M109/M190).
func (fw *Firmware) waitForHeater(h *heater) {
	var poll func()
	poll = func() {
		if fw.killed {
			return
		}
		if h.reached(fw.cfg.ReachHysteresis) {
			fw.next()
			return
		}
		fw.engine.After(fw.cfg.ControlPeriod, poll)
	}
	fw.engine.After(fw.cfg.ControlPeriod, poll)
}

// setMotors drives all EN lines (A4988 enable is active-low).
func (fw *Firmware) setMotors(on bool) {
	fw.motorsEnabled = on
	level := signal.High
	if on {
		level = signal.Low
	}
	for _, a := range signal.Axes {
		fw.bus.Enable(a).Set(level)
	}
}

// executeMove plans and schedules a G0/G1. The modal state always
// advances through Apply (it is the source of truth for later commands);
// the execution plan comes from the shared compiled plan when one is
// loaded, else from the same resolveMove path the compiler uses — the
// two routes are identical by construction.
func (fw *Firmware) executeMove(cmd gcode.Command) {
	mv, ok := fw.modal.Apply(cmd)
	var entry moveEntry
	if fw.compiled != nil {
		entry = fw.compiled.entries[fw.pc-1]
	} else {
		entry = resolveMove(&fw.cfg, fw.steps, fw.offset, mv, ok)
	}
	if !entry.resolved {
		fw.next() // feedrate-only or zero-length move
		return
	}
	if !fw.motorsEnabled {
		fw.setMotors(true)
	}
	if !entry.motion {
		fw.next()
		return
	}
	pm := entry.pm

	// Set DIR lines now; first step happens ≥ DirSetup later.
	for i, a := range signal.Axes {
		if pm.axes[i].steps == 0 {
			continue
		}
		level := signal.Low
		if pm.axes[i].negative {
			level = signal.High
		}
		fw.bus.Dir(a).Set(level)
	}

	// Emit every step pulse through a per-axis step train: O(1) pending
	// engine work per axis instead of O(steps) events and closures
	// enqueued upfront. Timestamps match the eager schedule exactly.
	base := fw.engine.Now() + fw.cfg.DirSetup
	for i, a := range signal.Axes {
		n := pm.axes[i].steps
		if n == 0 {
			continue
		}
		t := fw.acquireTrain()
		*t = stepTrain{
			fw:    fw,
			line:  fw.bus.Step(a),
			prof:  pm.prof,
			base:  base,
			width: fw.cfg.StepPulseWidth,
			n:     n,
		}
		fw.engine.ScheduleEdge(t.riseAt(0), t, trainRise)
		// Track believed position.
		if pm.axes[i].negative {
			fw.steps[a] -= int64(n)
		} else {
			fw.steps[a] += int64(n)
		}
	}

	fw.engine.After(fw.cfg.DirSetup+pm.duration()+fw.cfg.StepPulseWidth, fw.nextFn)
}

// controlTick runs both heater PID loops and their PWM windows.
func (fw *Firmware) controlTick(now sim.Time) {
	dt := fw.cfg.ControlPeriod.Seconds()
	for _, h := range []*heater{fw.hotend, fw.bed} {
		if err := h.control(now, dt); err != nil {
			fw.halt(err)
			return
		}
		fw.drivePWM(h)
	}
}

// drivePWM emits one software-PWM window for a heater.
func (fw *Firmware) drivePWM(h *heater) {
	switch {
	case h.duty <= 0.001:
		h.pin.Set(signal.Low)
	case h.duty >= 0.999:
		h.pin.Set(signal.High)
	default:
		h.pin.Set(signal.High)
		onTime := sim.Time(float64(fw.cfg.PWMPeriod) * h.duty)
		// The heater's FireEdge only drops the gate if a newer window
		// hasn't raised the duty to full; the next window re-raises it
		// anyway.
		fw.engine.AfterEdge(onTime, h, 0)
	}
}

// fanPWMTick emits one software-PWM window for the part fan.
func (fw *Firmware) fanPWMTick(sim.Time) {
	fan := fw.fanLine
	switch {
	case fw.fanDuty <= 0.001:
		fan.Set(signal.Low)
	case fw.fanDuty >= 0.999:
		fan.Set(signal.High)
	default:
		fan.Set(signal.High)
		onTime := sim.Time(float64(fw.cfg.FanPWMPeriod) * fw.fanDuty)
		fw.engine.AfterEdge(onTime, &fw.fan, 0)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
