package sched

import (
	"fmt"
	"reflect"
	"testing"
)

// lineGrid builds a 1-D grid of n cells with seedsPer seeds each and the
// given extras.
func lineGrid(n, seedsPer int, extras ...string) *Grid {
	g := &Grid{Dims: []int{n}, Extras: extras}
	for i := 0; i < n; i++ {
		c := Cell{Key: fmt.Sprintf("cell%d", i), Coord: []int{i}}
		for s := 0; s < seedsPer; s++ {
			c.Seeds = append(c.Seeds, fmt.Sprintf("cell%d/s%d", i, s))
		}
		g.Cells = append(g.Cells, c)
	}
	return g
}

func mustRound(t *testing.T, s *Scheduler) []string {
	t.Helper()
	round, err := s.NextRound()
	if err != nil {
		t.Fatalf("NextRound: %v", err)
	}
	return round
}

func observeAll(t *testing.T, s *Scheduler, round []string, v func(name string) Verdict) {
	t.Helper()
	for _, name := range round {
		if err := s.Observe(name, v(name)); err != nil {
			t.Fatalf("Observe(%q): %v", name, err)
		}
	}
}

func TestDiverseOrder(t *testing.T) {
	got := diverseOrder(8)
	want := []int{0, 4, 2, 6, 1, 5, 3, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diverseOrder(8) = %v, want %v", got, want)
	}
	// Non-power-of-two: same bit-reversed ranking over width 3, holes
	// (5, 6, 7 beyond n) removed.
	got = diverseOrder(5)
	want = []int{0, 4, 2, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diverseOrder(5) = %v, want %v", got, want)
	}
	if got := diverseOrder(1); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("diverseOrder(1) = %v", got)
	}
}

func TestRoundOneCoversEveryCellAndExtras(t *testing.T) {
	g := lineGrid(5, 3, "golden", "control")
	s, err := New(g, Config{Budget: 3}) // far below mandatory coverage
	if err != nil {
		t.Fatal(err)
	}
	round := mustRound(t, s)
	want := []string{"golden", "control", "cell0/s0", "cell4/s0", "cell2/s0", "cell1/s0", "cell3/s0"}
	if !reflect.DeepEqual(round, want) {
		t.Fatalf("round 1 = %v, want %v", round, want)
	}
	observeAll(t, s, round, func(string) Verdict { return Clean })
	st := s.Stats()
	if st.Covered != 5 {
		t.Fatalf("covered = %d, want 5", st.Covered)
	}
	// Budget (clamped to mandatory 7) is exhausted: next round empty,
	// remaining 10 seeds skipped.
	if round := mustRound(t, s); len(round) != 0 {
		t.Fatalf("expected empty round, got %v", round)
	}
	if got := len(s.Skips()); got != 10 {
		t.Fatalf("skips = %d, want 10", got)
	}
	for _, sk := range s.Skips() {
		if sk.Reason != "scenario budget exhausted" {
			t.Fatalf("skip reason = %q", sk.Reason)
		}
	}
	if !s.Done() {
		t.Fatal("scheduler should be done")
	}
}

func TestBoundaryCellsDealtFirst(t *testing.T) {
	// Verdict flips between cell1 (clean) and cell2 (trojan): cells 1
	// and 2 are boundary, the rest are not.
	g := lineGrid(4, 2)
	s, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	round := mustRound(t, s)
	observeAll(t, s, round, func(name string) Verdict {
		if name == "cell2/s0" || name == "cell3/s0" {
			return Trojan
		}
		return Clean
	})
	round = mustRound(t, s)
	// Boundary cells {1, 2} first in diverse order (2 before 1), then
	// the rest {0, 3} in diverse order.
	want := []string{"cell2/s1", "cell1/s1", "cell0/s1", "cell3/s1"}
	if !reflect.DeepEqual(round, want) {
		t.Fatalf("round 2 = %v, want %v", round, want)
	}
}

func TestUnknownAndErroredCarryNoBoundarySignal(t *testing.T) {
	g := lineGrid(3, 2)
	s, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	round := mustRound(t, s)
	observeAll(t, s, round, func(name string) Verdict {
		switch name {
		case "cell0/s0":
			return Clean
		case "cell1/s0":
			return Errored
		default:
			return Unknown
		}
	})
	if st := s.Stats(); st.Boundary != 0 {
		t.Fatalf("boundary = %d, want 0", st.Boundary)
	}
	round = mustRound(t, s)
	// No boundary cells: plain diverse order.
	want := []string{"cell0/s1", "cell2/s1", "cell1/s1"}
	if !reflect.DeepEqual(round, want) {
		t.Fatalf("round 2 = %v, want %v", round, want)
	}
}

func TestEarlyStopRetiresUnanimousCells(t *testing.T) {
	g := lineGrid(2, 4)
	s, err := New(g, Config{EarlyStopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	round := mustRound(t, s)
	observeAll(t, s, round, func(name string) Verdict {
		if name == "cell1/s0" {
			return Trojan
		}
		return Clean
	})
	round = mustRound(t, s)
	observeAll(t, s, round, func(name string) Verdict {
		if name == "cell1/s1" {
			return Clean // disagrees with seed 0: cell1 never unanimous
		}
		return Clean
	})
	round = mustRound(t, s)
	// cell0 unanimous clean at K=2 → retired; only cell1 deals.
	if !reflect.DeepEqual(round, []string{"cell1/s2"}) {
		t.Fatalf("round 3 = %v", round)
	}
	skips := s.TakeRetired()
	if len(skips) != 2 {
		t.Fatalf("retired = %v", skips)
	}
	for _, sk := range skips {
		if sk.Cell != "cell0" || sk.Reason != "early-stop, 2/2 unanimous" {
			t.Fatalf("skip = %+v", sk)
		}
	}
	if got := s.TakeRetired(); len(got) != 0 {
		t.Fatalf("TakeRetired should drain: %v", got)
	}
	// cell1 (mixed verdicts) runs to the end.
	observeAll(t, s, round, func(string) Verdict { return Trojan })
	round = mustRound(t, s)
	if !reflect.DeepEqual(round, []string{"cell1/s3"}) {
		t.Fatalf("round 4 = %v", round)
	}
	observeAll(t, s, round, func(string) Verdict { return Trojan })
	if round := mustRound(t, s); len(round) != 0 {
		t.Fatalf("expected empty round, got %v", round)
	}
	if !s.Done() {
		t.Fatal("should be done")
	}
}

func TestEarlyStopNeedsKnownVerdicts(t *testing.T) {
	g := lineGrid(1, 3)
	s, err := New(g, Config{EarlyStopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for seeds := 0; seeds < 3; seeds++ {
		round := mustRound(t, s)
		if len(round) != 1 {
			t.Fatalf("round %d = %v", seeds+1, round)
		}
		observeAll(t, s, round, func(string) Verdict { return Unknown })
	}
	// Unanimous Unknown never early-stops: all 3 seeds executed.
	if round := mustRound(t, s); len(round) != 0 {
		t.Fatalf("expected empty round, got %v", round)
	}
	if got := len(s.Skips()); got != 0 {
		t.Fatalf("skips = %d, want 0", got)
	}
}

func TestBudgetBoundsRefinement(t *testing.T) {
	g := lineGrid(3, 3, "golden")
	// mandatory = 1 extra + 3 cells = 4; budget 5 leaves one refinement
	// slot.
	s, err := New(g, Config{Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	round := mustRound(t, s)
	if len(round) != 4 {
		t.Fatalf("round 1 = %v", round)
	}
	observeAll(t, s, round, func(string) Verdict { return Clean })
	round = mustRound(t, s)
	if !reflect.DeepEqual(round, []string{"cell0/s1"}) {
		t.Fatalf("round 2 = %v", round)
	}
	// Budget now exhausted: everything else retired while round 2 runs.
	if got := len(s.Skips()); got != 5 {
		t.Fatalf("skips = %d, want 5", got)
	}
	observeAll(t, s, round, func(string) Verdict { return Clean })
	if round := mustRound(t, s); len(round) != 0 {
		t.Fatalf("expected empty round, got %v", round)
	}
	st := s.Stats()
	if st.Executed != 5 || st.Skipped != 5 || st.Total != 10 || st.Covered != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestObserveOrderWithinRoundIsIrrelevant(t *testing.T) {
	verdict := func(name string) Verdict {
		if name < "cell2" {
			return Clean
		}
		return Trojan
	}
	run := func(reverse bool) [][]string {
		g := lineGrid(4, 3)
		s, err := New(g, Config{Budget: 9, EarlyStopK: 2})
		if err != nil {
			t.Fatal(err)
		}
		var rounds [][]string
		for {
			round := mustRound(t, s)
			if len(round) == 0 {
				break
			}
			rounds = append(rounds, round)
			ordered := append([]string(nil), round...)
			if reverse {
				for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
					ordered[i], ordered[j] = ordered[j], ordered[i]
				}
			}
			observeAll(t, s, ordered, verdict)
		}
		return rounds
	}
	a, b := run(false), run(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round sequence depends on observe order:\n%v\nvs\n%v", a, b)
	}
}

func TestMisuseErrors(t *testing.T) {
	if _, err := New(&Grid{}, Config{}); err == nil {
		t.Fatal("empty grid should error")
	}
	if _, err := New(&Grid{Cells: []Cell{{Key: "a", Seeds: []string{"x"}}, {Key: "b", Seeds: []string{"x"}}}}, Config{}); err == nil {
		t.Fatal("duplicate scenario name should error")
	}
	if _, err := New(&Grid{Dims: []int{2}, Cells: []Cell{{Key: "a", Seeds: []string{"x"}}}}, Config{}); err == nil {
		t.Fatal("coordinate arity mismatch should error")
	}
	if _, err := New(&Grid{Dims: []int{2}, Cells: []Cell{
		{Key: "a", Coord: []int{0}, Seeds: []string{"x"}},
		{Key: "b", Coord: []int{0}, Seeds: []string{"y"}},
	}}, Config{}); err == nil {
		t.Fatal("duplicate coordinate should error")
	}

	g := lineGrid(2, 2)
	s, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe("cell0/s0", Clean); err == nil {
		t.Fatal("observing before dealing should error")
	}
	round := mustRound(t, s)
	if _, err := s.NextRound(); err == nil {
		t.Fatal("NextRound with outstanding scenarios should error")
	}
	observeAll(t, s, round, func(string) Verdict { return Clean })
	if err := s.Observe(round[0], Clean); err == nil {
		t.Fatal("double observe should error")
	}
}
