package sched

import (
	"fmt"
	"math/bits"
	"sort"
)

// Verdict is the detection outcome the scheduler steers by. Only Clean
// and Trojan are *known* verdicts: they feed boundary scoring and
// early-stop unanimity. Unknown (no detector looked) and Errored (the
// run failed) carry no boundary signal and break unanimity, so a cell
// with errors or no signal is never retired early — it just runs in
// diverse order until the budget says otherwise.
type Verdict uint8

const (
	Unknown Verdict = iota
	Clean
	Trojan
	Errored
)

// String renders the verdict for logs and tests.
func (v Verdict) String() string {
	switch v {
	case Clean:
		return "clean"
	case Trojan:
		return "trojan"
	case Errored:
		return "errored"
	default:
		return "unknown"
	}
}

// known reports whether the verdict carries a detection signal.
func (v Verdict) known() bool { return v == Clean || v == Trojan }

// Cell is one grid cell: a point on the swept non-seed axes and the
// scenario names that sample it, in seed order. Seeds[0] is the cell's
// coverage representative — the seed phase 1 runs and the seed whose
// verdict stands for the cell in boundary scoring.
type Cell struct {
	// Key labels the cell in skips and stats (typically the cell's name
	// prefix without the seed label).
	Key string
	// Coord addresses the cell on the grid's swept axes; len(Coord) ==
	// len(Grid.Dims). Two cells are neighbours when their coordinates
	// differ by exactly 1 on exactly one axis.
	Coord []int
	// Seeds are the cell's scenario names in seed order.
	Seeds []string
}

// Grid is the scheduler's view of an expanded sweep: the swept axis
// sizes, the cells in expansion order, and the extra scenarios
// (goldens, controls) that run unconditionally in round 1.
type Grid struct {
	// Dims are the cardinalities of the swept non-seed axes, in axis
	// order. Empty when the sweep has no non-seed axis (a pure seed
	// sweep): then no cell has neighbours and boundary scoring is moot.
	Dims []int
	// Cells are the grid cells in deterministic expansion order.
	Cells []Cell
	// Extras are the scenario names outside the grid proper.
	Extras []string
}

// Config tunes one progressive sweep.
type Config struct {
	// Budget is the target number of executed scenarios, extras and
	// coverage included (≤ 0 = unlimited). Coverage — the extras plus one
	// seed per cell — is mandatory and is dealt even past the budget;
	// the budget bounds refinement beyond it.
	Budget int
	// EarlyStopK retires a cell once its first K executed seeds agree on
	// a known verdict (≤ 0 = never early-stop).
	EarlyStopK int
}

// Skip is one scenario the sweep decided not to run. Reason is the bare
// decision ("early-stop, 2/2 unanimous", "scenario budget exhausted");
// callers wrap it into the synthesized row's error text.
type Skip struct {
	Name   string
	Cell   string
	Reason string
}

// Stats summarizes a sweep for the progress sink.
type Stats struct {
	// Cells and Covered count grid cells and cells with ≥ 1 executed
	// seed; Boundary counts cells currently scored as detection
	// boundaries.
	Cells, Covered, Boundary int
	// Executed, Skipped, and Total count scenarios (extras included in
	// Executed and Total; Total = Executed + Skipped once the sweep is
	// done).
	Executed, Skipped, Total int
	// Rounds is the number of non-empty rounds dealt so far.
	Rounds int
}

// where locates an emitted scenario for Observe.
type where struct {
	cell int // -1 for extras
	seed int
}

// Scheduler runs one progressive sweep. It is synchronous and
// single-goroutine by design: call NextRound, execute the returned
// scenarios however you like (worker pool, lease queue), Observe every
// one of them, and repeat until NextRound returns an empty round. The
// round sequence depends only on (grid, config, verdicts), never on the
// order Observe calls arrive within a round.
type Scheduler struct {
	grid *Grid
	cfg  Config

	order       []int       // cell indices in bit-reversed (cell-diverse) order
	neighbours  [][]int     // per cell: adjacent cell indices
	next        []int       // per cell: next seed index to deal
	verdicts    [][]Verdict // per cell: observed verdicts in seed order
	rep         []Verdict   // per cell: first executed seed's verdict
	retired     []string    // per cell: retirement reason ("" = live)
	outstanding map[string]where
	index       map[string]where
	skips       []Skip // all retirements, in decision order
	fresh       []Skip // retirements not yet drained by TakeRetired
	budget      int    // effective budget (0 = unlimited)
	emitted     int    // scenarios dealt so far
	started     bool
	rounds      int
	total       int
}

// New validates the grid and builds a scheduler over it.
func New(g *Grid, cfg Config) (*Scheduler, error) {
	if g == nil || len(g.Cells) == 0 {
		return nil, fmt.Errorf("sched: grid has no cells")
	}
	seen := make(map[string]bool)
	byCoord := make(map[string]int, len(g.Cells))
	total := len(g.Extras)
	for _, name := range g.Extras {
		if name == "" || seen[name] {
			return nil, fmt.Errorf("sched: empty or duplicate extra %q", name)
		}
		seen[name] = true
	}
	for i, c := range g.Cells {
		if len(c.Seeds) == 0 {
			return nil, fmt.Errorf("sched: cell %q has no seeds", c.Key)
		}
		if len(c.Coord) != len(g.Dims) {
			return nil, fmt.Errorf("sched: cell %q has %d coordinates, grid has %d axes", c.Key, len(c.Coord), len(g.Dims))
		}
		for _, name := range c.Seeds {
			if name == "" || seen[name] {
				return nil, fmt.Errorf("sched: empty or duplicate scenario %q in cell %q", name, c.Key)
			}
			seen[name] = true
		}
		ck := coordKey(c.Coord)
		if _, dup := byCoord[ck]; dup {
			return nil, fmt.Errorf("sched: two cells at coordinate %v", c.Coord)
		}
		byCoord[ck] = i
		total += len(c.Seeds)
	}

	s := &Scheduler{
		grid:        g,
		cfg:         cfg,
		order:       diverseOrder(len(g.Cells)),
		neighbours:  make([][]int, len(g.Cells)),
		next:        make([]int, len(g.Cells)),
		verdicts:    make([][]Verdict, len(g.Cells)),
		rep:         make([]Verdict, len(g.Cells)),
		retired:     make([]string, len(g.Cells)),
		outstanding: make(map[string]where),
		index:       make(map[string]where),
		total:       total,
	}
	// Mandatory coverage overrides the budget: a budget below
	// extras + one-seed-per-cell still covers every cell.
	mandatory := len(g.Extras) + len(g.Cells)
	if cfg.Budget > 0 {
		s.budget = cfg.Budget
		if s.budget < mandatory {
			s.budget = mandatory
		}
	}
	// Axis neighbourhood: coordinates differing by exactly 1 on exactly
	// one axis. Filtered-out cells simply do not exist — a survivor next
	// to a hole has fewer neighbours, not phantom ones.
	for i, c := range g.Cells {
		for ax := range g.Dims {
			for _, d := range [2]int{-1, 1} {
				nc := append([]int(nil), c.Coord...)
				nc[ax] += d
				if j, ok := byCoord[coordKey(nc)]; ok {
					s.neighbours[i] = append(s.neighbours[i], j)
				}
			}
		}
	}
	return s, nil
}

// coordKey canonicalizes a coordinate for map lookup.
func coordKey(coord []int) string {
	return fmt.Sprint(coord)
}

// diverseOrder returns cell indices sorted by the bit-reversal (van der
// Corput) rank of their index within the next power of two — a
// deterministic low-discrepancy permutation that visits the grid's
// expansion order by repeated halving (0, n/2, n/4, 3n/4, ...), so the
// first few cells of every round sample far-apart regions.
func diverseOrder(n int) []int {
	if n == 0 {
		return nil
	}
	width := bits.Len(uint(n - 1))
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	rank := func(i int) uint {
		return bits.Reverse(uint(i)) >> (bits.UintSize - width)
	}
	if width > 0 {
		sort.SliceStable(out, func(a, b int) bool {
			ra, rb := rank(out[a]), rank(out[b])
			if ra != rb {
				return ra < rb
			}
			return out[a] < out[b]
		})
	}
	return out
}

// NextRound deals the next round of scenario names, in priority order.
// An empty round means the sweep is decided: everything is executed,
// observed, or retired (collect the retirements via Skips/TakeRetired).
// Calling it while a previous round's scenarios are unobserved is a
// caller bug and errors.
func (s *Scheduler) NextRound() ([]string, error) {
	if len(s.outstanding) > 0 {
		return nil, fmt.Errorf("sched: %d scenarios of the previous round are unobserved", len(s.outstanding))
	}
	if !s.started {
		s.started = true
		round := make([]string, 0, len(s.grid.Extras)+len(s.grid.Cells))
		for _, name := range s.grid.Extras {
			round = append(round, name)
			s.deal(name, where{cell: -1})
		}
		for _, ci := range s.order {
			name := s.grid.Cells[ci].Seeds[0]
			round = append(round, name)
			s.deal(name, where{cell: ci, seed: 0})
			s.next[ci] = 1
		}
		s.rounds++
		return round, nil
	}

	s.earlyStop()

	// Boundary cells first, then the rest — both in diverse order.
	var candidates []int
	for pass := 0; pass < 2; pass++ {
		for _, ci := range s.order {
			if s.retired[ci] != "" || s.next[ci] >= len(s.grid.Cells[ci].Seeds) {
				continue
			}
			if (pass == 0) == s.boundary(ci) {
				candidates = append(candidates, ci)
			}
		}
	}
	if len(candidates) == 0 {
		return nil, nil
	}

	slots := len(candidates)
	if s.budget > 0 {
		if slots = s.budget - s.emitted; slots < 0 {
			slots = 0
		}
	}
	var round []string
	for _, ci := range candidates {
		if len(round) >= slots {
			break
		}
		cell := &s.grid.Cells[ci]
		name := cell.Seeds[s.next[ci]]
		round = append(round, name)
		s.deal(name, where{cell: ci, seed: s.next[ci]})
		s.next[ci]++
	}
	if s.budget > 0 && s.emitted >= s.budget {
		// The budget is spent; nothing beyond this round will ever be
		// dealt, so retire every remaining seed now and let the caller
		// synthesize the skips while the last round executes.
		for _, ci := range s.order {
			s.retire(ci, "scenario budget exhausted")
		}
	}
	if len(round) > 0 {
		s.rounds++
	}
	return round, nil
}

// deal registers one emitted scenario.
func (s *Scheduler) deal(name string, w where) {
	s.outstanding[name] = w
	s.index[name] = w
	s.emitted++
}

// earlyStop retires cells whose first EarlyStopK executed seeds agree on
// a known verdict. A cell that was not unanimous at K can never become
// unanimous later, so checking ≥ K is exact.
func (s *Scheduler) earlyStop() {
	k := s.cfg.EarlyStopK
	if k <= 0 {
		return
	}
	for ci := range s.grid.Cells {
		if s.retired[ci] != "" || s.next[ci] >= len(s.grid.Cells[ci].Seeds) {
			continue
		}
		vs := s.verdicts[ci]
		if len(vs) < k {
			continue
		}
		unanimous := vs[0].known()
		for _, v := range vs[1:] {
			if v != vs[0] {
				unanimous = false
				break
			}
		}
		if unanimous {
			s.retire(ci, fmt.Sprintf("early-stop, %d/%d unanimous", k, k))
		}
	}
}

// retire marks a cell's remaining seeds skipped. Already-retired and
// fully-dealt cells are no-ops.
func (s *Scheduler) retire(ci int, reason string) {
	if s.retired[ci] != "" {
		return
	}
	cell := &s.grid.Cells[ci]
	if s.next[ci] >= len(cell.Seeds) {
		return
	}
	s.retired[ci] = reason
	for _, name := range cell.Seeds[s.next[ci]:] {
		sk := Skip{Name: name, Cell: cell.Key, Reason: reason}
		s.skips = append(s.skips, sk)
		s.fresh = append(s.fresh, sk)
	}
	s.next[ci] = len(cell.Seeds)
}

// boundary reports whether the cell's representative verdict is known
// and differs from any neighbour's known representative verdict.
func (s *Scheduler) boundary(ci int) bool {
	if !s.rep[ci].known() {
		return false
	}
	for _, nj := range s.neighbours[ci] {
		if s.rep[nj].known() && s.rep[nj] != s.rep[ci] {
			return true
		}
	}
	return false
}

// Observe feeds back one executed scenario's verdict. Every scenario of
// a round must be observed (in any order) before the next round.
func (s *Scheduler) Observe(name string, v Verdict) error {
	w, ok := s.outstanding[name]
	if !ok {
		return fmt.Errorf("sched: %q is not outstanding", name)
	}
	delete(s.outstanding, name)
	if w.cell >= 0 {
		s.verdicts[w.cell] = append(s.verdicts[w.cell], v)
		if w.seed == 0 {
			s.rep[w.cell] = v
		}
	}
	return nil
}

// Done reports whether the sweep is decided: started, nothing
// outstanding, and no live cell holds an undealt seed.
func (s *Scheduler) Done() bool {
	if !s.started || len(s.outstanding) > 0 {
		return false
	}
	for ci, cell := range s.grid.Cells {
		if s.retired[ci] == "" && s.next[ci] < len(cell.Seeds) {
			return false
		}
	}
	return true
}

// Skips returns every retirement decided so far, in decision order.
func (s *Scheduler) Skips() []Skip {
	return append([]Skip(nil), s.skips...)
}

// TakeRetired drains the retirements decided since the last call — the
// farm coordinator's hook for journaling skip rows as they are decided
// instead of at the end.
func (s *Scheduler) TakeRetired() []Skip {
	out := s.fresh
	s.fresh = nil
	return out
}

// Stats snapshots the sweep.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Cells:    len(s.grid.Cells),
		Executed: s.emitted - len(s.outstanding),
		Skipped:  len(s.skips),
		Total:    s.total,
		Rounds:   s.rounds,
	}
	for ci := range s.grid.Cells {
		if len(s.verdicts[ci]) > 0 {
			st.Covered++
		}
		if s.boundary(ci) {
			st.Boundary++
		}
	}
	return st
}
