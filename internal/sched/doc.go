// Package sched is the progressive sweep scheduler: a prioritizing,
// budget-aware feeder that decides *which* scenarios of a grid sweep run
// and in what order, without knowing anything about how they run. It
// sits in front of Campaign.Run (offramps.RunSuiteProgressive) and the
// farm coordinator's lease queue (internal/farm with
// Config.Progressive), borrowing the progressive paradigm of the
// entity-resolution literature — spend a fixed comparison budget where
// it flips decisions — for grid sweeps whose expensive unit is a
// simulated print.
//
// The input is an abstract Grid: cells addressed by integer coordinates
// on the swept (non-seed) axes, each holding its scenario names in seed
// order, plus the extra scenarios (goldens, controls) every sweep must
// run. The root package derives this layout during GridSpec expansion;
// sched deliberately does not import it, so the dependency points
// campaign → scheduler and never back.
//
// Execution proceeds in synchronous rounds (NextRound / Observe):
//
//   - Phase 1, coverage: round 1 deals every extra plus the first seed
//     of every cell, cells ordered by bit-reversed index — a
//     deterministic cell-diverse order that spreads early samples across
//     the grid instead of walking it row by row. Coverage is mandatory:
//     it is dealt even when it alone exceeds the scenario budget, so a
//     budgeted sweep still covers 100% of cells.
//   - Phase 2, refinement: a cell whose representative verdict (its
//     first executed seed's) differs from any axis-neighbour's known
//     verdict is a boundary cell; later rounds deal boundary cells'
//     remaining seeds before anyone else's, so the budget concentrates
//     where detector verdicts flip.
//   - Phase 3, early stop: a cell whose first K executed seeds agree on
//     a known verdict is retired — its remaining seeds become synthesized
//     "skipped (early-stop, K/K unanimous)" rows, keeping stitched
//     reports complete and auditable. Budget exhaustion retires every
//     remaining live seed the same way.
//
// Everything is deterministic for a fixed (grid, Config): rounds are
// computed only from verdicts already fed back, one seed per cell per
// round, so the round sequence — and therefore the executed-scenario
// set and the synthesized skips — never depends on worker count or
// completion order. That contract is what lets CI pin a budgeted sweep
// byte for byte.
package sched
