package signal

import (
	"math"

	"offramps/internal/sim"
)

// Analog is a continuous-valued channel, used for the thermistor voltage
// dividers that the OFFRAMPS routes through the Artix-7's on-chip ADC and
// an off-chip DAC (paper Section III-C1). Values are in volts.
type Analog struct {
	name      string
	engine    *sim.Engine
	value     float64
	listeners []func(at sim.Time, v float64)
}

// NewAnalog creates an analog channel at 0 V.
func NewAnalog(engine *sim.Engine, name string) *Analog {
	if engine == nil {
		panic("signal: NewAnalog with nil engine")
	}
	return &Analog{name: name, engine: engine}
}

// Name reports the channel name (e.g. "THERM0").
func (a *Analog) Name() string { return a.name }

// Value reports the current voltage.
func (a *Analog) Value() float64 { return a.value }

// Watch registers fn to run on every value change.
func (a *Analog) Watch(fn func(at sim.Time, v float64)) {
	if fn == nil {
		panic("signal: Watch with nil listener")
	}
	a.listeners = append(a.listeners, fn)
}

// Set drives the channel to v at the current simulation time.
func (a *Analog) Set(v float64) {
	if v == a.value {
		return
	}
	a.value = v
	now := a.engine.Now()
	for _, fn := range a.listeners {
		fn(now, v)
	}
}

// Connect forwards every change of a onto dst (zero delay — the analog
// buffer path is not on the critical timing path).
func (a *Analog) Connect(dst *Analog) {
	dst.Set(a.value)
	a.Watch(func(_ sim.Time, v float64) { dst.Set(v) })
}

// ADC models an n-bit analog-to-digital converter sampling an Analog
// channel against a reference voltage, like the Artix-7 XADC (12-bit,
// 1.0 V reference after the divider) or the ATmega2560's 10-bit ADC
// against 5 V.
type ADC struct {
	Bits int     // resolution in bits, e.g. 10 or 12
	VRef float64 // full-scale reference voltage
}

// Convert quantizes v to an ADC code, clamping to the valid range.
func (c ADC) Convert(v float64) int {
	if c.Bits <= 0 || c.VRef <= 0 {
		panic("signal: ADC with non-positive Bits or VRef")
	}
	full := (1 << c.Bits) - 1
	code := int(math.Round(v / c.VRef * float64(full)))
	if code < 0 {
		return 0
	}
	if code > full {
		return full
	}
	return code
}

// Voltage converts an ADC code back to volts (DAC direction).
func (c ADC) Voltage(code int) float64 {
	if c.Bits <= 0 || c.VRef <= 0 {
		panic("signal: ADC with non-positive Bits or VRef")
	}
	full := (1 << c.Bits) - 1
	if code < 0 {
		code = 0
	}
	if code > full {
		code = full
	}
	return float64(code) / float64(full) * c.VRef
}
