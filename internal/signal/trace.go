package signal

import (
	"fmt"
	"sort"

	"offramps/internal/sim"
)

// Edge is one recorded transition on a digital line.
type Edge struct {
	At    sim.Time
	Level Level // level after the transition
}

// Trace records every transition of one line, making the FPGA usable as the
// "rudimentary digital logic analyzer" of paper Section V. Traces feed the
// overhead experiment (signal frequency and pulse-width statistics,
// Section V-B) and the VCD exporter.
type Trace struct {
	name  string
	start Level
	edges []Edge
}

// NewTrace attaches a recorder to line and returns it. Recording starts
// immediately and captures the line's current level as the initial state.
func NewTrace(line *Line) *Trace {
	t := &Trace{name: line.Name(), start: line.Level()}
	line.Watch(func(at sim.Time, level Level) {
		t.edges = append(t.edges, Edge{At: at, Level: level})
	})
	return t
}

// Name reports the traced line's name.
func (t *Trace) Name() string { return t.name }

// InitialLevel reports the level when recording began.
func (t *Trace) InitialLevel() Level { return t.start }

// Edges returns the recorded transitions in time order. The returned slice
// is the trace's backing store; callers must not modify it.
func (t *Trace) Edges() []Edge { return t.edges }

// Len reports the number of recorded transitions.
func (t *Trace) Len() int { return len(t.edges) }

// RisingEdges counts Low→High transitions, i.e. pulses for a STEP-style
// signal.
func (t *Trace) RisingEdges() int {
	n := 0
	for _, e := range t.edges {
		if e.Level == High {
			n++
		}
	}
	return n
}

// LevelAt reports the line level at time at, reconstructed from the trace.
func (t *Trace) LevelAt(at sim.Time) Level {
	// Binary search for the last edge at or before `at`.
	i := sort.Search(len(t.edges), func(i int) bool { return t.edges[i].At > at })
	if i == 0 {
		return t.start
	}
	return t.edges[i-1].Level
}

// Stats summarizes pulse timing on a traced line. All durations are zero
// when the trace holds too few edges to measure them.
type Stats struct {
	Line          string
	Edges         int
	RisingEdges   int
	MinPulseWidth sim.Time // shortest High interval
	MaxPulseWidth sim.Time // longest High interval
	MinPeriod     sim.Time // shortest rising-to-rising interval
	MaxFrequency  float64  // 1/MinPeriod in Hz
}

// String formats the statistics in one line for experiment reports.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d edges, %d pulses, min width %v, max freq %.1f Hz",
		s.Line, s.Edges, s.RisingEdges, s.MinPulseWidth, s.MaxFrequency)
}

// ComputeStats derives pulse statistics from the trace. The paper measured
// "maximum frequencies less than 20 kHz with a minimum pulse width of 1 µs"
// for the ordinary Arduino↔RAMPS signals; the overhead experiment
// reproduces that measurement with this function.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Line: t.name, Edges: len(t.edges), RisingEdges: t.RisingEdges()}
	var lastRise sim.Time = -1
	var prevRise sim.Time = -1
	level := t.start
	var levelSince sim.Time
	for _, e := range t.edges {
		if e.Level == level {
			continue // defensive: traces never record non-transitions
		}
		if e.Level == High {
			if prevRise >= 0 {
				period := e.At - prevRise
				if s.MinPeriod == 0 || period < s.MinPeriod {
					s.MinPeriod = period
				}
			}
			prevRise = e.At
			lastRise = e.At
		} else if lastRise >= 0 {
			width := e.At - lastRise
			if s.MinPulseWidth == 0 || width < s.MinPulseWidth {
				s.MinPulseWidth = width
			}
			if width > s.MaxPulseWidth {
				s.MaxPulseWidth = width
			}
		}
		level = e.Level
		levelSince = e.At
	}
	_ = levelSince
	if s.MinPeriod > 0 {
		s.MaxFrequency = float64(sim.Second) / float64(s.MinPeriod)
	}
	return s
}

// DutyCycle reports the fraction of [from, to) the line spent High. It is
// how the experiments measure PWM duty on the heater and fan outputs.
func (t *Trace) DutyCycle(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	var high sim.Time
	level := t.LevelAt(from)
	cursor := from
	i := sort.Search(len(t.edges), func(i int) bool { return t.edges[i].At > from })
	for ; i < len(t.edges) && t.edges[i].At < to; i++ {
		e := t.edges[i]
		if level == High {
			high += e.At - cursor
		}
		cursor = e.At
		level = e.Level
	}
	if level == High {
		high += to - cursor
	}
	return float64(high) / float64(to-from)
}

// Recorder traces a set of lines on a bus. It is the capture-mode front end
// of the FPGA (paper Figure 3c).
type Recorder struct {
	traces map[string]*Trace
	order  []string
}

// NewRecorder starts tracing each named pin of bus. With no names given it
// records every control pin.
func NewRecorder(bus *Bus, pins ...string) *Recorder {
	if len(pins) == 0 {
		pins = ControlPins
	}
	r := &Recorder{traces: make(map[string]*Trace, len(pins))}
	for _, name := range pins {
		if _, dup := r.traces[name]; dup {
			continue
		}
		r.traces[name] = NewTrace(bus.Line(name))
		r.order = append(r.order, name)
	}
	return r
}

// Trace returns the trace for the named pin, or nil if it is not recorded.
func (r *Recorder) Trace(name string) *Trace { return r.traces[name] }

// Pins returns the recorded pin names in registration order.
func (r *Recorder) Pins() []string { return r.order }

// AllStats computes Stats for every recorded pin, in registration order.
func (r *Recorder) AllStats() []Stats {
	out := make([]Stats, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.traces[name].ComputeStats())
	}
	return out
}
