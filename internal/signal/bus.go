package signal

import (
	"fmt"
	"sort"

	"offramps/internal/sim"
)

// Pin names for every control and feedback signal that crosses the
// Arduino↔RAMPS boundary on the OFFRAMPS board (paper Section III-C). The
// constants use the silkscreen-style names the paper uses (e.g. Y_DIR,
// D8/D10 heater outputs).
const (
	// Stepper control, one triple per motor (paper Section III-C2 item 1).
	PinXStep = "X_STEP"
	PinXDir  = "X_DIR"
	PinXEn   = "X_EN"
	PinYStep = "Y_STEP"
	PinYDir  = "Y_DIR"
	PinYEn   = "Y_EN"
	PinZStep = "Z_STEP"
	PinZDir  = "Z_DIR"
	PinZEn   = "Z_EN"
	PinEStep = "E0_STEP"
	PinEDir  = "E0_DIR"
	PinEEn   = "E0_EN"

	// Power outputs: D10 drives the hotend MOSFET, D8 the heated bed,
	// D9 the part-cooling fan (items 2 and 3).
	PinHotend = "D10"
	PinBed    = "D8"
	PinFan    = "D9"

	// Feedback from RAMPS to the Arduino: mechanical endstops (the paper
	// added these to the Prusa) and the PS-ON / diagnostic lines.
	PinXMin = "X_MIN"
	PinYMin = "Y_MIN"
	PinZMin = "Z_MIN"

	// UART between Arduino and display/control board routed through the
	// RAMPS AUX headers (item 4).
	PinUARTTx = "UART_TX"
	PinUARTRx = "UART_RX"
)

// ControlPins lists every Arduino→RAMPS control signal, in a stable order.
// These are the signals the FPGA can modify (trojan path).
var ControlPins = []string{
	PinXStep, PinXDir, PinXEn,
	PinYStep, PinYDir, PinYEn,
	PinZStep, PinZDir, PinZEn,
	PinEStep, PinEDir, PinEEn,
	PinHotend, PinBed, PinFan,
	PinUARTTx,
}

// FeedbackPins lists every RAMPS→Arduino feedback signal, in a stable
// order. The FPGA observes these for homing detection; the thermistor
// analog channels are carried separately (see Analog).
var FeedbackPins = []string{
	PinXMin, PinYMin, PinZMin,
	PinUARTRx,
}

// Axis identifies one of the four stepper-driven axes.
type Axis int

// The four motion axes of a RAMPS-class FFF printer. Values start at 1 so
// the zero value is detectably invalid.
const (
	AxisX Axis = iota + 1
	AxisY
	AxisZ
	AxisE
)

// Axes lists all axes in canonical order (X, Y, Z, E).
var Axes = []Axis{AxisX, AxisY, AxisZ, AxisE}

// String returns the axis letter.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "X"
	case AxisY:
		return "Y"
	case AxisZ:
		return "Z"
	case AxisE:
		return "E"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// MarshalText renders the axis letter, so JSON maps keyed by Axis read
// "X"/"Y"/"Z"/"E" instead of raw integers.
func (a Axis) MarshalText() ([]byte, error) {
	if a < AxisX || a > AxisE {
		return nil, fmt.Errorf("signal: invalid axis %d", int(a))
	}
	return []byte(a.String()), nil
}

// UnmarshalText parses an axis letter.
func (a *Axis) UnmarshalText(text []byte) error {
	switch string(text) {
	case "X":
		*a = AxisX
	case "Y":
		*a = AxisY
	case "Z":
		*a = AxisZ
	case "E":
		*a = AxisE
	default:
		return fmt.Errorf("signal: unknown axis %q", text)
	}
	return nil
}

// StepPin returns the STEP pin name for the axis.
func (a Axis) StepPin() string {
	switch a {
	case AxisX:
		return PinXStep
	case AxisY:
		return PinYStep
	case AxisZ:
		return PinZStep
	case AxisE:
		return PinEStep
	default:
		panic(fmt.Sprintf("signal: StepPin of invalid axis %d", int(a)))
	}
}

// DirPin returns the DIR pin name for the axis.
func (a Axis) DirPin() string {
	switch a {
	case AxisX:
		return PinXDir
	case AxisY:
		return PinYDir
	case AxisZ:
		return PinZDir
	case AxisE:
		return PinEDir
	default:
		panic(fmt.Sprintf("signal: DirPin of invalid axis %d", int(a)))
	}
}

// EnablePin returns the EN pin name for the axis (active-low on A4988).
func (a Axis) EnablePin() string {
	switch a {
	case AxisX:
		return PinXEn
	case AxisY:
		return PinYEn
	case AxisZ:
		return PinZEn
	case AxisE:
		return PinEEn
	default:
		panic(fmt.Sprintf("signal: EnablePin of invalid axis %d", int(a)))
	}
}

// MinEndstopPin returns the MIN endstop pin name for a motion axis. The
// extruder has no endstop; requesting it panics.
func (a Axis) MinEndstopPin() string {
	switch a {
	case AxisX:
		return PinXMin
	case AxisY:
		return PinYMin
	case AxisZ:
		return PinZMin
	default:
		panic(fmt.Sprintf("signal: MinEndstopPin of axis %v", a))
	}
}

// Bus is a named collection of digital lines plus the analog thermistor
// channels. Two buses exist in a full OFFRAMPS setup: the Arduino-side bus
// (firmware drives control pins, reads feedback pins) and the RAMPS-side
// bus (plant reads control pins, drives feedback pins). The FPGA sits
// between them; with jumpers in "normal" position the buses are connected
// back-to-back.
type Bus struct {
	engine *sim.Engine
	lines  map[string]*Line

	// ThermHotend and ThermBed model the thermistor voltage dividers.
	// They are analog channels because the OFFRAMPS routes them through
	// the FPGA's XADC / external DAC path (Section III-C1).
	ThermHotend *Analog
	ThermBed    *Analog
}

// NewBus creates a bus with every control and feedback pin plus the two
// thermistor channels. All digital lines start Low; analog channels start
// at 25 °C-equivalent value set by the plant later.
func NewBus(engine *sim.Engine) *Bus {
	b := &Bus{
		engine:      engine,
		lines:       make(map[string]*Line, len(ControlPins)+len(FeedbackPins)),
		ThermHotend: NewAnalog(engine, "THERM0"),
		ThermBed:    NewAnalog(engine, "THERM1"),
	}
	for _, name := range ControlPins {
		b.lines[name] = NewLine(engine, name)
	}
	for _, name := range FeedbackPins {
		b.lines[name] = NewLine(engine, name)
	}
	return b
}

// Engine returns the simulation engine the bus belongs to.
func (b *Bus) Engine() *sim.Engine { return b.engine }

// Line returns the named line. Unknown names panic: pin names are a closed
// compile-time vocabulary and a typo must fail loudly.
func (b *Bus) Line(name string) *Line {
	l, ok := b.lines[name]
	if !ok {
		panic(fmt.Sprintf("signal: unknown pin %q", name))
	}
	return l
}

// Names returns all pin names on the bus, sorted.
func (b *Bus) Names() []string {
	names := make([]string, 0, len(b.lines))
	for n := range b.lines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Step returns the STEP line for axis.
func (b *Bus) Step(a Axis) *Line { return b.Line(a.StepPin()) }

// Dir returns the DIR line for axis.
func (b *Bus) Dir(a Axis) *Line { return b.Line(a.DirPin()) }

// Enable returns the EN line for axis.
func (b *Bus) Enable(a Axis) *Line { return b.Line(a.EnablePin()) }

// MinEndstop returns the MIN endstop line for a motion axis.
func (b *Bus) MinEndstop(a Axis) *Line { return b.Line(a.MinEndstopPin()) }

// ConnectAll wires every control pin of b to dst and every feedback pin of
// dst back to b, each direction with the given propagation delay. The
// analog channels are forwarded dst→b (thermistors are feedback). This is
// the "unmodified signal chain" of paper Figure 3a.
func (b *Bus) ConnectAll(dst *Bus, delay sim.Time) {
	for _, name := range ControlPins {
		b.Line(name).Connect(dst.Line(name), delay)
	}
	for _, name := range FeedbackPins {
		dst.Line(name).Connect(b.Line(name), delay)
	}
	dst.ThermHotend.Connect(b.ThermHotend)
	dst.ThermBed.Connect(b.ThermBed)
}
