package signal

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"offramps/internal/sim"
)

// WriteVCD serializes a set of traces as a Value Change Dump file, the
// interchange format of every logic analyzer and waveform viewer. This lets
// a user inspect a simulated print in GTKWave exactly as they would inspect
// a capture from the physical OFFRAMPS.
//
// Traces are emitted in the given order; the timescale is 1 ns to match the
// simulation resolution.
func WriteVCD(w io.Writer, traces []*Trace) error {
	if len(traces) == 0 {
		return fmt.Errorf("signal: WriteVCD with no traces")
	}
	if len(traces) > 94 {
		// VCD identifiers here are single printable characters (! through ~).
		return fmt.Errorf("signal: WriteVCD supports at most 94 traces, got %d", len(traces))
	}
	bw := bufio.NewWriter(w)

	ids := make([]byte, len(traces))
	for i := range traces {
		ids[i] = byte('!' + i)
	}

	fmt.Fprintln(bw, "$date simulated $end")
	fmt.Fprintln(bw, "$version OFFRAMPS-sim $end")
	fmt.Fprintln(bw, "$timescale 1ns $end")
	fmt.Fprintln(bw, "$scope module offramps $end")
	for i, t := range traces {
		fmt.Fprintf(bw, "$var wire 1 %c %s $end\n", ids[i], t.Name())
	}
	fmt.Fprintln(bw, "$upscope $end")
	fmt.Fprintln(bw, "$enddefinitions $end")

	// Initial values.
	fmt.Fprintln(bw, "#0")
	fmt.Fprintln(bw, "$dumpvars")
	for i, t := range traces {
		fmt.Fprintf(bw, "%s%c\n", t.InitialLevel(), ids[i])
	}
	fmt.Fprintln(bw, "$end")

	// Merge all edges into one time-ordered stream.
	type stamped struct {
		at    sim.Time
		seq   int
		trace int
		level Level
	}
	var all []stamped
	for i, t := range traces {
		for j, e := range t.Edges() {
			all = append(all, stamped{at: e.At, seq: j, trace: i, level: e.Level})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].trace != all[j].trace {
			return all[i].trace < all[j].trace
		}
		return all[i].seq < all[j].seq
	})

	last := sim.Time(-1)
	for _, s := range all {
		if s.at != last {
			fmt.Fprintf(bw, "#%d\n", int64(s.at))
			last = s.at
		}
		fmt.Fprintf(bw, "%s%c\n", s.level, ids[s.trace])
	}
	return bw.Flush()
}
