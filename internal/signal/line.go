// Package signal models the electrical layer of the OFFRAMPS platform:
// named digital lines with edge listeners and propagation delay, the full
// RAMPS 1.4 pin map as a Bus, analog channels for the thermistor path, and
// logic-analyzer-style traces with timing statistics and VCD export.
//
// Everything between the Arduino (firmware twin) and the RAMPS board
// (driver/plant model) — and everything the FPGA intercepts — travels over
// these lines, exactly as on the physical OFFRAMPS PCB where all GPIO
// headers pass through the Cmod-A7 (paper Section III-C).
package signal

import (
	"fmt"

	"offramps/internal/sim"
)

// Level is a digital logic level.
type Level uint8

// Digital logic levels. The OFFRAMPS shifts the Arduino/RAMPS 5 V domain to
// the FPGA's 3.3 V domain and back; at the behavioural level both map to
// the same two logic states.
const (
	Low Level = iota
	High
)

// String returns "0" or "1".
func (l Level) String() string {
	if l == High {
		return "1"
	}
	return "0"
}

// Invert returns the opposite level.
func (l Level) Invert() Level {
	if l == High {
		return Low
	}
	return High
}

// Listener observes level changes on a Line. It runs synchronously inside
// the simulation event that changed the line.
type Listener func(at sim.Time, level Level)

// Line is a single digital signal line. A Line belongs to an Engine; all
// transitions are timestamped with the engine clock. The zero value is not
// usable — create lines with NewLine or through a Bus.
type Line struct {
	name      string
	engine    *sim.Engine
	level     Level
	listeners []Listener
	// edges counts transitions since creation (both directions).
	edges uint64
	// lastChange is the time of the most recent transition.
	lastChange sim.Time
}

// NewLine creates a line named name at level Low.
func NewLine(engine *sim.Engine, name string) *Line {
	if engine == nil {
		panic("signal: NewLine with nil engine")
	}
	return &Line{name: name, engine: engine}
}

// Name reports the line's name (e.g. "X_STEP").
func (l *Line) Name() string { return l.name }

// Level reports the current logic level.
func (l *Line) Level() Level { return l.level }

// Edges reports the number of transitions observed since creation.
func (l *Line) Edges() uint64 { return l.edges }

// LastChange reports the time of the most recent transition.
func (l *Line) LastChange() sim.Time { return l.lastChange }

// Watch registers fn to be called on every level change. Listeners cannot
// be removed; attach a guard inside fn if conditional delivery is needed.
// (Module lifetimes in this system equal the simulation lifetime, matching
// synthesized FPGA logic, so removal has no use case.)
func (l *Line) Watch(fn Listener) {
	if fn == nil {
		panic("signal: Watch with nil listener")
	}
	l.listeners = append(l.listeners, fn)
}

// Set drives the line to level at the current simulation time. Setting the
// line to its current level is a no-op (no edge, no listener calls),
// mirroring real electrical behaviour.
func (l *Line) Set(level Level) {
	if level == l.level {
		return
	}
	l.level = level
	l.edges++
	l.lastChange = l.engine.Now()
	for _, fn := range l.listeners {
		fn(l.lastChange, level)
	}
}

// FireEdge implements sim.EdgeTarget: it drives the line to Level(arg).
// It is the engine's allocation-free fast path behind SetAfter, Pulse and
// Connect — a prebound callback with the target level as the argument, in
// place of a fresh closure per scheduled edge.
func (l *Line) FireEdge(arg uint64) { l.Set(Level(arg)) }

// SetAfter schedules the line to be driven to level after delay. It models
// a gate or level-shifter output with known propagation delay.
func (l *Line) SetAfter(delay sim.Time, level Level) {
	l.engine.AfterEdge(delay, l, uint64(level))
}

// Pulse drives the line High for width, then back Low. If the line is
// already High it is first taken Low now, and the distinct rising edge
// follows one engine tick (1 ns) later — keeping the falling edge
// timestamp-distinct so Trace pulse-width statistics never observe a
// zero-width pulse.
func (l *Line) Pulse(width sim.Time) {
	if width <= 0 {
		panic(fmt.Sprintf("signal: Pulse with non-positive width %v", width))
	}
	if l.level == High {
		l.Set(Low)
		l.engine.AfterEdge(sim.Nanosecond, l, uint64(High))
		l.engine.AfterEdge(sim.Nanosecond+width, l, uint64(Low))
		return
	}
	l.Set(High)
	l.SetAfter(width, Low)
}

// Connect forwards every transition of l onto dst after delay. This is the
// behavioural model of a wire through the OFFRAMPS jumpers and level
// shifters: in bypass mode the MITM path is exactly a Connect with the
// measured propagation delay (≤ 12.923 ns in the paper). dst immediately
// assumes l's current level.
func (l *Line) Connect(dst *Line, delay sim.Time) {
	if delay < 0 {
		panic("signal: Connect with negative delay")
	}
	dst.Set(l.level)
	l.Watch(func(_ sim.Time, level Level) {
		if delay == 0 {
			dst.Set(level)
			return
		}
		dst.SetAfter(delay, level)
	})
}
