package signal

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"offramps/internal/sim"
)

// pulseTrain drives n pulses of the given width and period onto l,
// scheduled on the engine starting at start.
func pulseTrain(e *sim.Engine, l *Line, start, period, width sim.Time, n int) {
	for i := 0; i < n; i++ {
		at := start + sim.Time(i)*period
		e.Schedule(at, func() { l.Set(High) })
		e.Schedule(at+width, func() { l.Set(Low) })
	}
}

func TestTraceRecordsEdges(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "X_STEP")
	tr := NewTrace(l)
	pulseTrain(e, l, 0, 100*sim.Microsecond, 2*sim.Microsecond, 5)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10 {
		t.Fatalf("Len() = %d, want 10", tr.Len())
	}
	if tr.RisingEdges() != 5 {
		t.Errorf("RisingEdges() = %d, want 5", tr.RisingEdges())
	}
}

func TestTraceLevelAt(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "p")
	tr := NewTrace(l)
	e.Schedule(10, func() { l.Set(High) })
	e.Schedule(20, func() { l.Set(Low) })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   sim.Time
		want Level
	}{
		{0, Low}, {9, Low}, {10, High}, {15, High}, {20, Low}, {100, Low},
	}
	for _, tc := range cases {
		if got := tr.LevelAt(tc.at); got != tc.want {
			t.Errorf("LevelAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestTraceStats(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "X_STEP")
	tr := NewTrace(l)
	// 50 µs period = 20 kHz, 1 µs width: exactly the paper's envelope.
	pulseTrain(e, l, 0, 50*sim.Microsecond, sim.Microsecond, 10)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	s := tr.ComputeStats()
	if s.RisingEdges != 10 {
		t.Errorf("RisingEdges = %d, want 10", s.RisingEdges)
	}
	if s.MinPulseWidth != sim.Microsecond {
		t.Errorf("MinPulseWidth = %v, want 1µs", s.MinPulseWidth)
	}
	if s.MinPeriod != 50*sim.Microsecond {
		t.Errorf("MinPeriod = %v, want 50µs", s.MinPeriod)
	}
	if s.MaxFrequency < 19_999 || s.MaxFrequency > 20_001 {
		t.Errorf("MaxFrequency = %v, want 20 kHz", s.MaxFrequency)
	}
	if !strings.Contains(s.String(), "X_STEP") {
		t.Errorf("Stats.String() = %q missing line name", s.String())
	}
}

func TestTraceStatsEmpty(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "idle")
	tr := NewTrace(l)
	s := tr.ComputeStats()
	if s.Edges != 0 || s.RisingEdges != 0 || s.MaxFrequency != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestTraceDutyCycle(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "D9")
	tr := NewTrace(l)
	// 25% duty: High 25 µs of every 100 µs, 10 cycles.
	pulseTrain(e, l, 0, 100*sim.Microsecond, 25*sim.Microsecond, 10)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	got := tr.DutyCycle(0, sim.Millisecond)
	if got < 0.249 || got > 0.251 {
		t.Errorf("DutyCycle = %v, want 0.25", got)
	}
}

func TestTraceDutyCycleAlwaysHigh(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "D10")
	l.Set(High)
	tr := NewTrace(l)
	if err := e.Run(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := tr.DutyCycle(0, sim.Millisecond); got != 1.0 {
		t.Errorf("DutyCycle of constant-high = %v, want 1", got)
	}
	if got := tr.DutyCycle(5, 5); got != 0 {
		t.Errorf("DutyCycle of empty window = %v, want 0", got)
	}
}

// Property: duty cycle is always within [0,1] for arbitrary pulse trains.
func TestTraceDutyCycleBoundsProperty(t *testing.T) {
	f := func(widths []uint8) bool {
		e := sim.NewEngine()
		l := NewLine(e, "p")
		tr := NewTrace(l)
		at := sim.Time(0)
		for _, w := range widths {
			width := sim.Time(w%50) + 1
			e.Schedule(at, func() { l.Set(High) })
			e.Schedule(at+width, func() { l.Set(Low) })
			at += width + sim.Time(w%37) + 1
		}
		if err := e.RunUntilIdle(); err != nil {
			return false
		}
		d := tr.DutyCycle(0, at+1)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRecorderDefaultsToControlPins(t *testing.T) {
	e := sim.NewEngine()
	b := NewBus(e)
	r := NewRecorder(b)
	if len(r.Pins()) != len(ControlPins) {
		t.Fatalf("Pins() = %d, want %d", len(r.Pins()), len(ControlPins))
	}
	b.Step(AxisX).Pulse(sim.Microsecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if r.Trace(PinXStep).RisingEdges() != 1 {
		t.Error("recorder missed X_STEP pulse")
	}
	if r.Trace("NOPE") != nil {
		t.Error("Trace of unknown pin should be nil")
	}
	stats := r.AllStats()
	if len(stats) != len(ControlPins) {
		t.Errorf("AllStats() = %d entries", len(stats))
	}
}

func TestRecorderDedupsPins(t *testing.T) {
	e := sim.NewEngine()
	b := NewBus(e)
	r := NewRecorder(b, PinXStep, PinXStep, PinYStep)
	if len(r.Pins()) != 2 {
		t.Errorf("Pins() = %v, want deduped 2", r.Pins())
	}
}

func TestWriteVCD(t *testing.T) {
	e := sim.NewEngine()
	a := NewLine(e, "X_STEP")
	bLine := NewLine(e, "Y_STEP")
	ta, tb := NewTrace(a), NewTrace(bLine)
	pulseTrain(e, a, 0, 10*sim.Microsecond, sim.Microsecond, 2)
	pulseTrain(e, bLine, 5*sim.Microsecond, 10*sim.Microsecond, sim.Microsecond, 2)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVCD(&buf, []*Trace{ta, tb}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 1 ! X_STEP $end",
		"$var wire 1 \" Y_STEP $end",
		"$dumpvars",
		"#0",
		"#1000", // first rising edge of X_STEP at 1 µs? no: at 0... see below
	} {
		_ = want
	}
	if !strings.Contains(out, "$var wire 1 ! X_STEP $end") {
		t.Errorf("VCD missing X_STEP var:\n%s", out)
	}
	if !strings.Contains(out, "$enddefinitions $end") {
		t.Error("VCD missing enddefinitions")
	}
	if !strings.Contains(out, "#5000") {
		t.Errorf("VCD missing timestamp 5000:\n%s", out)
	}
}

func TestWriteVCDErrors(t *testing.T) {
	if err := WriteVCD(&bytes.Buffer{}, nil); err == nil {
		t.Error("WriteVCD with no traces should error")
	}
	e := sim.NewEngine()
	traces := make([]*Trace, 95)
	for i := range traces {
		traces[i] = NewTrace(NewLine(e, "l"))
	}
	if err := WriteVCD(&bytes.Buffer{}, traces); err == nil {
		t.Error("WriteVCD with >94 traces should error")
	}
}
