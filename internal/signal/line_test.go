package signal

import (
	"testing"
	"testing/quick"

	"offramps/internal/sim"
)

func TestLineSetAndWatch(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "X_STEP")
	if l.Level() != Low {
		t.Fatal("new line not Low")
	}
	var seen []Level
	l.Watch(func(_ sim.Time, lv Level) { seen = append(seen, lv) })

	l.Set(High)
	l.Set(High) // no-op
	l.Set(Low)
	if len(seen) != 2 || seen[0] != High || seen[1] != Low {
		t.Errorf("listener saw %v, want [High Low]", seen)
	}
	if l.Edges() != 2 {
		t.Errorf("Edges() = %d, want 2", l.Edges())
	}
}

func TestLineSetAfter(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "p")
	l.SetAfter(100, High)
	if l.Level() != Low {
		t.Fatal("SetAfter applied immediately")
	}
	if err := e.Run(99); err != nil {
		t.Fatal(err)
	}
	if l.Level() != Low {
		t.Fatal("SetAfter applied early")
	}
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if l.Level() != High {
		t.Fatal("SetAfter not applied at deadline")
	}
	if l.LastChange() != 100 {
		t.Errorf("LastChange() = %v, want 100", l.LastChange())
	}
}

func TestLinePulse(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "p")
	tr := NewTrace(l)
	l.Pulse(2 * sim.Microsecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	edges := tr.Edges()
	if len(edges) != 2 {
		t.Fatalf("pulse produced %d edges, want 2", len(edges))
	}
	if edges[0].Level != High || edges[1].Level != Low {
		t.Errorf("edge levels = %v,%v", edges[0].Level, edges[1].Level)
	}
	if got := edges[1].At - edges[0].At; got != 2*sim.Microsecond {
		t.Errorf("pulse width = %v, want 2µs", got)
	}
}

func TestLinePulseFromHigh(t *testing.T) {
	e := sim.NewEngine()
	l := NewLine(e, "p")
	l.Set(High)
	tr := NewTrace(l)
	l.Pulse(sim.Microsecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Must see Low then High then Low: a distinct rising edge.
	edges := tr.Edges()
	if len(edges) != 3 {
		t.Fatalf("pulse from High produced %d edges, want 3", len(edges))
	}
	if edges[0].Level != Low || edges[1].Level != High || edges[2].Level != Low {
		t.Errorf("edges = %v", edges)
	}
	// The falling edge must be timestamp-distinct from the new rising
	// edge — a zero-width Low at the same instant would skew Trace
	// pulse-width statistics.
	if edges[1].At <= edges[0].At {
		t.Errorf("rising edge at %v not after the preceding fall at %v", edges[1].At, edges[0].At)
	}
	// And the requested width must hold between the distinct rise and its
	// fall.
	if got := edges[2].At - edges[1].At; got != sim.Microsecond {
		t.Errorf("pulse width = %v, want 1µs", got)
	}
}

func TestLineConnectPropagationDelay(t *testing.T) {
	e := sim.NewEngine()
	src := NewLine(e, "src")
	dst := NewLine(e, "dst")
	const delay = 13 * sim.Nanosecond // paper's measured 12.923 ns, rounded
	src.Connect(dst, delay)

	src.Set(High)
	if dst.Level() != Low {
		t.Fatal("connected line changed with zero elapsed time")
	}
	if err := e.Run(delay); err != nil {
		t.Fatal(err)
	}
	if dst.Level() != High {
		t.Fatal("connected line did not follow after delay")
	}
	if dst.LastChange() != delay {
		t.Errorf("dst.LastChange() = %v, want %v", dst.LastChange(), delay)
	}
}

func TestLineConnectZeroDelaySynchronous(t *testing.T) {
	e := sim.NewEngine()
	src := NewLine(e, "src")
	dst := NewLine(e, "dst")
	src.Connect(dst, 0)
	src.Set(High)
	if dst.Level() != High {
		t.Fatal("zero-delay connect must propagate synchronously")
	}
}

func TestLineConnectAssumesCurrentLevel(t *testing.T) {
	e := sim.NewEngine()
	src := NewLine(e, "src")
	src.Set(High)
	dst := NewLine(e, "dst")
	src.Connect(dst, 0)
	if dst.Level() != High {
		t.Fatal("Connect must copy the current level")
	}
}

func TestLevelStringAndInvert(t *testing.T) {
	if Low.String() != "0" || High.String() != "1" {
		t.Error("Level.String mismatch")
	}
	if Low.Invert() != High || High.Invert() != Low {
		t.Error("Level.Invert mismatch")
	}
}

// Property: a chain of connected lines always converges to the source
// level once events drain, regardless of the toggle pattern.
func TestConnectChainConvergesProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		e := sim.NewEngine()
		lines := make([]*Line, 5)
		for i := range lines {
			lines[i] = NewLine(e, "l")
			if i > 0 {
				lines[i-1].Connect(lines[i], sim.Nanosecond)
			}
		}
		for _, p := range pattern {
			lv := Low
			if p {
				lv = High
			}
			lines[0].Set(lv)
		}
		if err := e.RunUntilIdle(); err != nil {
			return false
		}
		for _, l := range lines[1:] {
			if l.Level() != lines[0].Level() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAnalogSetWatchConnect(t *testing.T) {
	e := sim.NewEngine()
	a := NewAnalog(e, "THERM0")
	b := NewAnalog(e, "THERM0_FPGA")
	a.Connect(b)
	var got []float64
	b.Watch(func(_ sim.Time, v float64) { got = append(got, v) })
	a.Set(1.25)
	a.Set(1.25) // no-op
	a.Set(2.5)
	if b.Value() != 2.5 {
		t.Errorf("connected analog = %v, want 2.5", b.Value())
	}
	if len(got) != 2 {
		t.Errorf("listener fired %d times, want 2", len(got))
	}
}

func TestADCRoundTrip(t *testing.T) {
	adc := ADC{Bits: 10, VRef: 5.0}
	for _, v := range []float64{0, 1.3, 2.5, 4.99, 5.0} {
		code := adc.Convert(v)
		back := adc.Voltage(code)
		if diff := back - v; diff > 0.005 || diff < -0.005 {
			t.Errorf("ADC round trip %v -> %d -> %v", v, code, back)
		}
	}
}

func TestADCClamps(t *testing.T) {
	adc := ADC{Bits: 10, VRef: 5.0}
	if got := adc.Convert(-1); got != 0 {
		t.Errorf("Convert(-1) = %d, want 0", got)
	}
	if got := adc.Convert(99); got != 1023 {
		t.Errorf("Convert(99) = %d, want 1023", got)
	}
	if got := adc.Voltage(-5); got != 0 {
		t.Errorf("Voltage(-5) = %v, want 0", got)
	}
	if got := adc.Voltage(1 << 20); got != 5.0 {
		t.Errorf("Voltage(overflow) = %v, want 5", got)
	}
}

// Property: ADC quantization error is bounded by one LSB for in-range
// inputs.
func TestADCQuantizationErrorProperty(t *testing.T) {
	adc := ADC{Bits: 12, VRef: 3.3}
	lsb := adc.VRef / float64(int(1)<<adc.Bits-1)
	f := func(raw uint16) bool {
		v := float64(raw) / 65535.0 * adc.VRef
		back := adc.Voltage(adc.Convert(v))
		diff := back - v
		if diff < 0 {
			diff = -diff
		}
		return diff <= lsb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
