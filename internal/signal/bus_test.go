package signal

import (
	"strings"
	"testing"

	"offramps/internal/sim"
)

func TestBusHasAllPins(t *testing.T) {
	e := sim.NewEngine()
	b := NewBus(e)
	for _, name := range ControlPins {
		if b.Line(name) == nil {
			t.Errorf("missing control pin %s", name)
		}
	}
	for _, name := range FeedbackPins {
		if b.Line(name) == nil {
			t.Errorf("missing feedback pin %s", name)
		}
	}
	if got, want := len(b.Names()), len(ControlPins)+len(FeedbackPins); got != want {
		t.Errorf("Names() has %d pins, want %d", got, want)
	}
}

func TestBusUnknownPinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown pin did not panic")
		}
	}()
	NewBus(sim.NewEngine()).Line("NOPE")
}

func TestAxisPinHelpers(t *testing.T) {
	cases := []struct {
		axis              Axis
		step, dir, enable string
	}{
		{AxisX, PinXStep, PinXDir, PinXEn},
		{AxisY, PinYStep, PinYDir, PinYEn},
		{AxisZ, PinZStep, PinZDir, PinZEn},
		{AxisE, PinEStep, PinEDir, PinEEn},
	}
	for _, tc := range cases {
		if tc.axis.StepPin() != tc.step {
			t.Errorf("%v.StepPin() = %s", tc.axis, tc.axis.StepPin())
		}
		if tc.axis.DirPin() != tc.dir {
			t.Errorf("%v.DirPin() = %s", tc.axis, tc.axis.DirPin())
		}
		if tc.axis.EnablePin() != tc.enable {
			t.Errorf("%v.EnablePin() = %s", tc.axis, tc.axis.EnablePin())
		}
	}
}

func TestAxisEndstopPins(t *testing.T) {
	if AxisX.MinEndstopPin() != PinXMin || AxisY.MinEndstopPin() != PinYMin || AxisZ.MinEndstopPin() != PinZMin {
		t.Error("endstop pin names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("AxisE.MinEndstopPin() did not panic")
		}
	}()
	AxisE.MinEndstopPin()
}

func TestAxisString(t *testing.T) {
	want := map[Axis]string{AxisX: "X", AxisY: "Y", AxisZ: "Z", AxisE: "E"}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if got := Axis(0).String(); !strings.Contains(got, "0") {
		t.Errorf("invalid axis String() = %q", got)
	}
}

func TestBusAccessorsMatchPins(t *testing.T) {
	e := sim.NewEngine()
	b := NewBus(e)
	for _, a := range Axes {
		if b.Step(a).Name() != a.StepPin() {
			t.Errorf("Step(%v) wrong line", a)
		}
		if b.Dir(a).Name() != a.DirPin() {
			t.Errorf("Dir(%v) wrong line", a)
		}
		if b.Enable(a).Name() != a.EnablePin() {
			t.Errorf("Enable(%v) wrong line", a)
		}
	}
	if b.MinEndstop(AxisX).Name() != PinXMin {
		t.Error("MinEndstop(X) wrong line")
	}
}

func TestConnectAllForwardAndFeedback(t *testing.T) {
	e := sim.NewEngine()
	arduino := NewBus(e)
	ramps := NewBus(e)
	const delay = 13 * sim.Nanosecond
	arduino.ConnectAll(ramps, delay)

	// Control direction: arduino -> ramps.
	arduino.Step(AxisX).Set(High)
	if err := e.Run(delay); err != nil {
		t.Fatal(err)
	}
	if ramps.Step(AxisX).Level() != High {
		t.Error("control pin did not propagate to RAMPS side")
	}

	// Feedback direction: ramps -> arduino.
	ramps.MinEndstop(AxisY).Set(High)
	if err := e.Run(2 * delay); err != nil {
		t.Fatal(err)
	}
	if arduino.MinEndstop(AxisY).Level() != High {
		t.Error("feedback pin did not propagate to Arduino side")
	}

	// Analog feedback.
	ramps.ThermHotend.Set(2.2)
	if arduino.ThermHotend.Value() != 2.2 {
		t.Error("thermistor value did not propagate")
	}

	// No reverse propagation of control pins.
	ramps.Step(AxisY).Set(High)
	if err := e.Run(3 * delay); err != nil {
		t.Fatal(err)
	}
	if arduino.Step(AxisY).Level() != Low {
		t.Error("control pin propagated backwards")
	}
}
