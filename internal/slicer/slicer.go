package slicer

import (
	"fmt"
	"math"

	"offramps/internal/gcode"
)

// Config holds the slicing parameters. DefaultConfig matches the profile
// used for the paper's test prints (0.4 mm nozzle Prusa i3 MK3S+, 0.2 mm
// layers, PLA temperatures, Cura-style two perimeters with sparse
// rectilinear infill).
type Config struct {
	LayerHeight      float64 // mm
	FirstLayerHeight float64 // mm
	NozzleDiameter   float64 // mm
	FilamentDiameter float64 // mm
	ExtrusionWidth   float64 // mm
	// FlowMultiplier scales all extrusion; 1.0 is nominal. Trojan T2
	// emulates a slicer "flow" error — this is the legitimate knob it
	// impersonates.
	FlowMultiplier float64
	Perimeters     int     // number of concentric walls
	InfillSpacing  float64 // mm between infill lines (0 disables infill)
	// SolidLayers prints the first and last N layers with dense infill
	// (line spacing = ExtrusionWidth), like a real slicer's top/bottom
	// shells. 0 keeps the sparse pattern everywhere.
	SolidLayers int
	// SkirtLoops draws N outline loops around the part on layer 1 to
	// prime the nozzle near the part (Cura's default behaviour).
	SkirtLoops int
	// SkirtGap is the clearance between the part and the skirt, mm.
	SkirtGap float64

	PrintSpeed         float64 // mm/s for extruding moves
	FirstLayerSpeed    float64 // mm/s on layer 1
	TravelSpeed        float64 // mm/s for non-extruding moves
	RetractSpeed       float64 // mm/s for retract/unretract
	RetractLength      float64 // mm of filament pulled on travel
	MinTravelNoRetract float64 // travels shorter than this skip retraction

	HotendTemp float64 // °C
	BedTemp    float64 // °C
	FanSpeed   int     // 0-255 PWM applied after layer 1

	CenterX, CenterY float64 // part placement on the bed, mm
}

// DefaultConfig returns the profile described above.
func DefaultConfig() Config {
	return Config{
		LayerHeight:        0.2,
		FirstLayerHeight:   0.2,
		NozzleDiameter:     0.4,
		FilamentDiameter:   1.75,
		ExtrusionWidth:     0.45,
		FlowMultiplier:     1.0,
		Perimeters:         2,
		InfillSpacing:      2.0,
		PrintSpeed:         40,
		FirstLayerSpeed:    20,
		TravelSpeed:        120,
		RetractSpeed:       35,
		RetractLength:      0.8,
		MinTravelNoRetract: 2.0,
		HotendTemp:         210,
		BedTemp:            60,
		FanSpeed:           255,
		CenterX:            110,
		CenterY:            110,
	}
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	switch {
	case c.LayerHeight <= 0:
		return fmt.Errorf("slicer: LayerHeight must be positive, got %v", c.LayerHeight)
	case c.FirstLayerHeight <= 0:
		return fmt.Errorf("slicer: FirstLayerHeight must be positive, got %v", c.FirstLayerHeight)
	case c.FilamentDiameter <= 0:
		return fmt.Errorf("slicer: FilamentDiameter must be positive, got %v", c.FilamentDiameter)
	case c.ExtrusionWidth < c.NozzleDiameter*0.5:
		return fmt.Errorf("slicer: ExtrusionWidth %v too small for nozzle %v", c.ExtrusionWidth, c.NozzleDiameter)
	case c.FlowMultiplier <= 0:
		return fmt.Errorf("slicer: FlowMultiplier must be positive, got %v", c.FlowMultiplier)
	case c.Perimeters < 1:
		return fmt.Errorf("slicer: need at least 1 perimeter, got %d", c.Perimeters)
	case c.PrintSpeed <= 0 || c.TravelSpeed <= 0 || c.FirstLayerSpeed <= 0:
		return fmt.Errorf("slicer: speeds must be positive")
	case c.FanSpeed < 0 || c.FanSpeed > 255:
		return fmt.Errorf("slicer: FanSpeed must be 0..255, got %d", c.FanSpeed)
	case c.SolidLayers < 0:
		return fmt.Errorf("slicer: SolidLayers must be non-negative, got %d", c.SolidLayers)
	case c.SkirtLoops < 0:
		return fmt.Errorf("slicer: SkirtLoops must be non-negative, got %d", c.SkirtLoops)
	case c.SkirtLoops > 0 && c.SkirtGap <= 0:
		return fmt.Errorf("slicer: SkirtGap must be positive when skirt is enabled")
	}
	return nil
}

// extrusionPerMM returns millimetres of filament fed per millimetre of
// extruding XY travel: the cross-sectional area of the deposited bead
// divided by the filament cross-section.
func (c Config) extrusionPerMM(layerHeight float64) float64 {
	bead := c.ExtrusionWidth * layerHeight
	filament := math.Pi / 4 * c.FilamentDiameter * c.FilamentDiameter
	return bead / filament * c.FlowMultiplier
}

// emitter accumulates the program while tracking cumulative E and the
// current XY position.
type emitter struct {
	prog      gcode.Program
	cfg       Config
	e         float64 // cumulative filament since last G92 E0
	x, y      float64 // current position (bed frame)
	haveXY    bool
	retracted bool
}

func (em *emitter) cmd(c gcode.Command) { em.prog = append(em.prog, c) }

func (em *emitter) comment(text string) { em.cmd(gcode.Comment(text)) }

// travel moves to p without extruding, retracting first when the hop is
// long enough to ooze.
func (em *emitter) travel(p Point, z float64) {
	dist := 0.0
	if em.haveXY {
		dist = p.Distance(Point{em.x, em.y})
	}
	if dist < 1e-9 && em.haveXY {
		return
	}
	if em.cfg.RetractLength > 0 && dist >= em.cfg.MinTravelNoRetract && !em.retracted {
		em.e -= em.cfg.RetractLength
		em.cmd(gcode.Synthesize("G1",
			gcode.P('E', round5(em.e)),
			gcode.P('F', em.cfg.RetractSpeed*60)))
		em.retracted = true
	}
	words := []gcode.Param{
		gcode.P('X', round5(p.X)),
		gcode.P('Y', round5(p.Y)),
		gcode.P('F', em.cfg.TravelSpeed*60),
	}
	_ = z
	em.cmd(gcode.Synthesize("G0", words...))
	em.x, em.y, em.haveXY = p.X, p.Y, true
}

// unretract restores the filament after a retracted travel.
func (em *emitter) unretract() {
	if !em.retracted {
		return
	}
	em.e += em.cfg.RetractLength
	em.cmd(gcode.Synthesize("G1",
		gcode.P('E', round5(em.e)),
		gcode.P('F', em.cfg.RetractSpeed*60)))
	em.retracted = false
}

// extrude prints a line to p at the given speed and layer height.
func (em *emitter) extrude(p Point, layerHeight, speed float64) {
	em.unretract()
	dist := p.Distance(Point{em.x, em.y})
	if dist < 1e-9 {
		return
	}
	em.e += dist * em.cfg.extrusionPerMM(layerHeight)
	em.cmd(gcode.Synthesize("G1",
		gcode.P('X', round5(p.X)),
		gcode.P('Y', round5(p.Y)),
		gcode.P('E', round5(em.e)),
		gcode.P('F', speed*60)))
	em.x, em.y = p.X, p.Y
}

func round5(v float64) float64 { return math.Round(v*1e5) / 1e5 }

// Slice produces a complete print program for the shape: heat-up preamble,
// homing, prime line, all layers (perimeters then infill, alternating
// infill direction per layer), and shutdown postamble.
func Slice(shape Shape, cfg Config) (gcode.Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shape == nil {
		return nil, fmt.Errorf("slicer: nil shape")
	}
	if shape.Outline(0) == nil {
		return nil, fmt.Errorf("slicer: shape %s has an empty cross-section", shape.Name())
	}

	em := &emitter{cfg: cfg}
	center := Point{cfg.CenterX, cfg.CenterY}

	// --- Preamble (Cura-style start code) ---
	em.comment(fmt.Sprintf("Sliced by offramps-slicer: %s", shape.Name()))
	em.comment(fmt.Sprintf("layer_height=%g flow=%g perimeters=%d", cfg.LayerHeight, cfg.FlowMultiplier, cfg.Perimeters))
	em.cmd(gcode.Synthesize("M140", gcode.P('S', cfg.BedTemp)))    // start bed heating
	em.cmd(gcode.Synthesize("M104", gcode.P('S', cfg.HotendTemp))) // start hotend heating
	em.cmd(gcode.Synthesize("M190", gcode.P('S', cfg.BedTemp)))    // wait for bed
	em.cmd(gcode.Synthesize("M109", gcode.P('S', cfg.HotendTemp))) // wait for hotend
	em.cmd(gcode.Synthesize("G90"))                                // absolute positioning
	em.cmd(gcode.Synthesize("M82"))                                // absolute E
	em.cmd(gcode.Synthesize("G28"))                                // home all
	em.cmd(gcode.Synthesize("G92", gcode.P('E', 0)))
	em.cmd(gcode.Synthesize("M107")) // fan off for first layer

	// Prime line along the front edge of the bed.
	em.cmd(gcode.Synthesize("G1", gcode.P('Z', round5(cfg.FirstLayerHeight)), gcode.P('F', 1200)))
	em.travel(Point{10, 5}, cfg.FirstLayerHeight)
	em.extrude(Point{100, 5}, cfg.FirstLayerHeight, cfg.FirstLayerSpeed)
	em.cmd(gcode.Synthesize("G92", gcode.P('E', 0)))
	em.e = 0

	// --- Layers ---
	layerCount := int(math.Ceil((shape.Height() - cfg.FirstLayerHeight) / cfg.LayerHeight))
	if layerCount < 0 {
		layerCount = 0
	}
	totalLayers := layerCount + 1

	z := 0.0
	for layer := 0; layer < totalLayers; layer++ {
		lh := cfg.LayerHeight
		if layer == 0 {
			lh = cfg.FirstLayerHeight
		}
		z += lh
		speed := cfg.PrintSpeed
		if layer == 0 {
			speed = cfg.FirstLayerSpeed
		}

		em.comment(fmt.Sprintf("LAYER:%d", layer))
		em.cmd(gcode.Synthesize("G1", gcode.P('Z', round5(z)), gcode.P('F', 1200)))
		if layer == 1 && cfg.FanSpeed > 0 {
			em.cmd(gcode.Synthesize("M106", gcode.P('S', float64(cfg.FanSpeed))))
		}

		// Skirt: outline loops offset outward from the part, layer 1 only.
		if layer == 0 && cfg.SkirtLoops > 0 {
			for si := 0; si < cfg.SkirtLoops; si++ {
				inset := -(cfg.SkirtGap + float64(si+1)*cfg.ExtrusionWidth)
				outline := shape.Outline(inset)
				if len(outline) < 3 {
					continue
				}
				loop := translate(outline, center)
				em.travel(loop[0], z)
				for _, p := range loop[1:] {
					em.extrude(p, lh, speed)
				}
				em.extrude(loop[0], lh, speed)
			}
		}

		// Perimeters, outermost first.
		for pi := 0; pi < cfg.Perimeters; pi++ {
			inset := (float64(pi) + 0.5) * cfg.ExtrusionWidth
			outline := shape.Outline(inset)
			if len(outline) < 3 {
				break
			}
			loop := translate(outline, center)
			em.travel(loop[0], z)
			for _, p := range loop[1:] {
				em.extrude(p, lh, speed)
			}
			em.extrude(loop[0], lh, speed) // close the loop
		}

		// Infill inside the innermost perimeter. Solid shells use dense
		// line spacing on the bottom and top SolidLayers layers.
		spacing := cfg.InfillSpacing
		if cfg.SolidLayers > 0 && (layer < cfg.SolidLayers || layer >= totalLayers-cfg.SolidLayers) {
			spacing = cfg.ExtrusionWidth
		}
		if spacing > 0 {
			innerInset := (float64(cfg.Perimeters) + 0.5) * cfg.ExtrusionWidth
			region := shape.Outline(innerInset)
			if len(region) >= 3 {
				segs := rectilinearInfill(region, spacing, layer%2 == 1)
				for _, s := range segs {
					a := s.A.Add(center)
					b := s.B.Add(center)
					em.travel(a, z)
					em.extrude(b, lh, speed)
				}
			}
		}

		// Reset E periodically like real slicer output so absolute E
		// numbers stay small.
		em.cmd(gcode.Synthesize("G92", gcode.P('E', 0)))
		em.e = 0
		em.retracted = false
	}

	// --- Postamble ---
	em.comment("end of print")
	em.cmd(gcode.Synthesize("M107"))                                              // fan off
	em.cmd(gcode.Synthesize("M104", gcode.P('S', 0)))                             // hotend off
	em.cmd(gcode.Synthesize("M140", gcode.P('S', 0)))                             // bed off
	em.cmd(gcode.Synthesize("G1", gcode.P('Z', round5(z+5)), gcode.P('F', 1200))) // lift
	em.cmd(gcode.Synthesize("G28", gcode.P('X', 0)))                              // park X
	em.cmd(gcode.Synthesize("M84"))                                               // motors off

	return em.prog, nil
}

// translate shifts a polygon by the offset point.
func translate(pg Polygon, off Point) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = p.Add(off)
	}
	return out
}
