package slicer

import (
	"math"
	"sort"
)

// Segment is a straight infill stroke between two points.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Distance(s.B) }

// rectilinearInfill fills the polygon with horizontal scan lines spaced
// `spacing` apart, alternating direction (zig-zag) so the print head does
// not travel back across the part between lines. The polygon may be
// non-convex; intersections are paired even-odd, exactly like a polygon
// rasterizer.
//
// angleEven selects between horizontal lines on even layers and vertical
// lines on odd layers — the classic crosshatch real slicers use, which the
// per-layer axis-tracking captures clearly show as alternating X- and
// Y-dominated step activity.
func rectilinearInfill(pg Polygon, spacing float64, vertical bool) []Segment {
	if len(pg) < 3 || spacing <= 0 {
		return nil
	}
	if vertical {
		rot := make(Polygon, len(pg))
		for i, p := range pg {
			rot[i] = Point{p.Y, p.X} // reflect across y=x
		}
		segs := rectilinearInfill(rot, spacing, false)
		for i := range segs {
			segs[i].A = Point{segs[i].A.Y, segs[i].A.X}
			segs[i].B = Point{segs[i].B.Y, segs[i].B.X}
		}
		return segs
	}

	_, minY, _, maxY := pg.Bounds()
	var out []Segment
	leftToRight := true
	// Offset the first line half a spacing in so lines don't coincide with
	// the boundary.
	for y := minY + spacing/2; y < maxY; y += spacing {
		xs := scanlineCrossings(pg, y)
		if len(xs) < 2 {
			continue
		}
		// Pair crossings even-odd: [x0,x1], [x2,x3], ...
		for i := 0; i+1 < len(xs); i += 2 {
			a := Point{xs[i], y}
			b := Point{xs[i+1], y}
			if b.X-a.X < 1e-9 {
				continue // degenerate sliver
			}
			if leftToRight {
				out = append(out, Segment{a, b})
			} else {
				out = append(out, Segment{b, a})
			}
		}
		leftToRight = !leftToRight
	}
	return out
}

// scanlineCrossings returns the sorted X coordinates where the horizontal
// line at height y crosses the polygon boundary. The half-open edge rule
// (count a vertex only for the edge whose lower endpoint it is) guarantees
// an even number of crossings for any simple polygon.
func scanlineCrossings(pg Polygon, y float64) []float64 {
	var xs []float64
	n := len(pg)
	for i := 0; i < n; i++ {
		p1, p2 := pg[i], pg[(i+1)%n]
		if (p1.Y <= y && p2.Y > y) || (p2.Y <= y && p1.Y > y) {
			t := (y - p1.Y) / (p2.Y - p1.Y)
			xs = append(xs, p1.X+t*(p2.X-p1.X))
		}
	}
	sort.Float64s(xs)
	return xs
}

// totalLength sums the lengths of the segments.
func totalLength(segs []Segment) float64 {
	sum := 0.0
	for _, s := range segs {
		sum += s.Length()
	}
	return sum
}

// polygonArea returns the unsigned area of the polygon (shoelace formula).
func polygonArea(pg Polygon) float64 {
	n := len(pg)
	if n < 3 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += pg[i].X*pg[j].Y - pg[j].X*pg[i].Y
	}
	return math.Abs(sum) / 2
}
