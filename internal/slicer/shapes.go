// Package slicer generates layered Marlin G-code for simple solid shapes.
// It stands in for Ultimaker Cura in the paper's toolchain: the experiments
// need *representative* sliced parts (the paper prints a small calibration
// object shown on quarter-inch graph paper), not arbitrary STL handling.
// The output exercises the same command vocabulary, retraction behaviour,
// and layer structure a real slicer produces.
package slicer

import (
	"fmt"
	"math"
)

// Point is a 2-D coordinate on the build plate, in millimetres.
type Point struct {
	X, Y float64
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Polygon is a closed loop of vertices in counter-clockwise order. The
// closing edge from the last vertex back to the first is implicit.
type Polygon []Point

// Perimeter returns the total edge length including the closing edge.
func (pg Polygon) Perimeter() float64 {
	if len(pg) < 2 {
		return 0
	}
	total := 0.0
	for i := range pg {
		total += pg[i].Distance(pg[(i+1)%len(pg)])
	}
	return total
}

// Bounds returns the axis-aligned bounding box (minX, minY, maxX, maxY).
func (pg Polygon) Bounds() (minX, minY, maxX, maxY float64) {
	if len(pg) == 0 {
		return 0, 0, 0, 0
	}
	minX, maxX = pg[0].X, pg[0].X
	minY, maxY = pg[0].Y, pg[0].Y
	for _, p := range pg[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return minX, minY, maxX, maxY
}

// Shape is a solid to slice. Shapes return their own inset outlines so the
// slicer does not need a general polygon-offset engine; each shape knows
// how to shrink itself for perimeter nesting.
type Shape interface {
	// Name identifies the shape in G-code headers and reports.
	Name() string
	// Height is the total height of the solid in mm.
	Height() float64
	// Outline returns the closed outline at the given inset from the
	// surface (inset 0 = outer wall). It returns nil when the inset
	// consumes the whole cross-section. Shapes in this package are
	// extrusions — constant cross-section — so the outline does not
	// depend on z; the slicer handles the height bound.
	Outline(inset float64) Polygon
}

// Box is a rectangular prism centred on the origin.
type Box struct {
	W, D, H float64 // width (X), depth (Y), height (Z), mm
}

// NewBox returns a box shape; all dimensions must be positive.
func NewBox(w, d, h float64) (Box, error) {
	if w <= 0 || d <= 0 || h <= 0 {
		return Box{}, fmt.Errorf("slicer: box dimensions must be positive, got %v×%v×%v", w, d, h)
	}
	return Box{W: w, D: d, H: h}, nil
}

// Name implements Shape.
func (b Box) Name() string { return fmt.Sprintf("box_%gx%gx%g", b.W, b.D, b.H) }

// Height implements Shape.
func (b Box) Height() float64 { return b.H }

// Outline implements Shape.
func (b Box) Outline(inset float64) Polygon {
	hw, hd := b.W/2-inset, b.D/2-inset
	if hw <= 0 || hd <= 0 {
		return nil
	}
	return Polygon{
		{-hw, -hd}, {hw, -hd}, {hw, hd}, {-hw, hd},
	}
}

// Cylinder is a vertical cylinder centred on the origin, approximated by a
// regular polygon with Segments sides (the way slicers see STL facets).
type Cylinder struct {
	R, H     float64
	Segments int
}

// NewCylinder returns a cylinder shape. Segments below 8 are raised to 8.
func NewCylinder(r, h float64, segments int) (Cylinder, error) {
	if r <= 0 || h <= 0 {
		return Cylinder{}, fmt.Errorf("slicer: cylinder dimensions must be positive, got r=%v h=%v", r, h)
	}
	if segments < 8 {
		segments = 8
	}
	return Cylinder{R: r, H: h, Segments: segments}, nil
}

// Name implements Shape.
func (c Cylinder) Name() string { return fmt.Sprintf("cylinder_r%g_h%g", c.R, c.H) }

// Height implements Shape.
func (c Cylinder) Height() float64 { return c.H }

// Outline implements Shape.
func (c Cylinder) Outline(inset float64) Polygon {
	r := c.R - inset
	if r <= 0 {
		return nil
	}
	pg := make(Polygon, c.Segments)
	for i := 0; i < c.Segments; i++ {
		a := 2 * math.Pi * float64(i) / float64(c.Segments)
		pg[i] = Point{r * math.Cos(a), r * math.Sin(a)}
	}
	return pg
}

// TensileBar is a flat dog-bone test coupon: two wide grip ends joined by a
// narrow gauge section. It is the canonical "structural integrity" specimen
// — the dr0wned and Flaw3D papers evaluate sabotage by breaking exactly
// this kind of part. The waist makes the cross-section non-convex, which
// exercises the scanline infill's even-odd filling.
type TensileBar struct {
	Length     float64 // total X length
	GripWidth  float64 // Y width of the grip ends
	GaugeWidth float64 // Y width of the narrow middle
	GripLen    float64 // X length of each grip end
	H          float64 // height
}

// NewTensileBar returns an ASTM-proportioned coupon scaled to length l.
func NewTensileBar(l, h float64) (TensileBar, error) {
	if l <= 0 || h <= 0 {
		return TensileBar{}, fmt.Errorf("slicer: tensile bar dimensions must be positive, got l=%v h=%v", l, h)
	}
	return TensileBar{
		Length:     l,
		GripWidth:  l * 0.3,
		GaugeWidth: l * 0.12,
		GripLen:    l * 0.25,
		H:          h,
	}, nil
}

// Name implements Shape.
func (t TensileBar) Name() string { return fmt.Sprintf("tensile_bar_l%g", t.Length) }

// Height implements Shape.
func (t TensileBar) Height() float64 { return t.H }

// Outline implements Shape.
func (t TensileBar) Outline(inset float64) Polygon {
	hl := t.Length/2 - inset
	hg := t.GripWidth/2 - inset
	hw := t.GaugeWidth/2 - inset
	gl := t.GripLen - inset // inner edge of the grip shoulder
	if hl <= 0 || hg <= 0 || hw <= 0 || gl <= 0 || hl-gl <= 0 {
		// Inset consumed the waist: fall back to the gauge rectangle or
		// nothing at all.
		if hl > 0 && hw > 0 {
			return Polygon{{-hl, -hw}, {hl, -hw}, {hl, hw}, {-hl, hw}}
		}
		return nil
	}
	innerX := hl - gl
	// Counter-clockwise, starting at the bottom-left grip corner.
	return Polygon{
		{-hl, -hg},     // bottom-left corner
		{-innerX, -hg}, // bottom of left grip, inner edge
		{-innerX, -hw}, // step in to the gauge
		{innerX, -hw},  // along the gauge bottom
		{innerX, -hg},  // step out to the right grip
		{hl, -hg},      // bottom-right corner
		{hl, hg},       // up the right end
		{innerX, hg},   // top of right grip, inner edge
		{innerX, hw},   // step in
		{-innerX, hw},  // along the gauge top
		{-innerX, hg},  // step out
		{-hl, hg},      // top-left corner
	}
}
