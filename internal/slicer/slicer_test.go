package slicer

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"offramps/internal/gcode"
)

func mustBox(t *testing.T, w, d, h float64) Box {
	t.Helper()
	b, err := NewBox(w, d, h)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sliceBox(t *testing.T, w, d, h float64) gcode.Program {
	t.Helper()
	prog, err := Slice(mustBox(t, w, d, h), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestSliceBoxStructure(t *testing.T) {
	prog := sliceBox(t, 20, 20, 2)
	for _, code := range []string{"M104", "M109", "M140", "M190", "G28", "M106", "M107", "M84", "G92"} {
		if prog.Count(code) == 0 {
			t.Errorf("program missing %s", code)
		}
	}
	stats := gcode.ComputeStats(prog)
	// 2 mm at 0.2 mm per layer = 10 layers... plus the prime line at
	// first-layer height which shares layer 0's Z.
	if stats.Layers != 10 {
		t.Errorf("Layers = %d, want 10", stats.Layers)
	}
	if stats.Filament <= 0 {
		t.Error("no filament extruded")
	}
	if stats.PrintingMoves < 100 {
		t.Errorf("suspiciously few printing moves: %d", stats.PrintingMoves)
	}
}

func TestSliceBoxDimensions(t *testing.T) {
	prog := sliceBox(t, 20, 30, 2)
	stats := gcode.ComputeStats(prog)
	cfg := DefaultConfig()
	// The outer perimeter centreline is inset half an extrusion width, so
	// the printed extent of the walls is W - ExtrusionWidth. The prime
	// line extends the X bounds, so check Y only (prime line is at Y=5,
	// far from the part at CenterY=110).
	wantY := 30 - cfg.ExtrusionWidth
	// Bounds include the prime line: restrict expectation to max side.
	gotMaxY := stats.Bounds.MaxY - cfg.CenterY
	if math.Abs(gotMaxY-wantY/2) > 0.01 {
		t.Errorf("max Y offset = %v, want %v", gotMaxY, wantY/2)
	}
}

func TestSliceExtrusionVolume(t *testing.T) {
	// The filament used must roughly equal deposited volume / filament
	// cross-section. Deposited volume ≈ covered area × height; for a
	// dense-ish box with 2 mm infill spacing coverage is partial, so just
	// check the filament is within a sane factor of the fully solid
	// volume.
	prog := sliceBox(t, 20, 20, 2)
	stats := gcode.ComputeStats(prog)
	cfg := DefaultConfig()
	filamentArea := math.Pi / 4 * cfg.FilamentDiameter * cfg.FilamentDiameter
	solidVolume := 20.0 * 20 * 2
	solidFilament := solidVolume / filamentArea
	if stats.Filament > solidFilament {
		t.Errorf("filament %v exceeds fully-solid equivalent %v", stats.Filament, solidFilament)
	}
	if stats.Filament < solidFilament/20 {
		t.Errorf("filament %v implausibly small vs solid %v", stats.Filament, solidFilament)
	}
}

func TestSliceFlowMultiplierScalesFilament(t *testing.T) {
	cfg := DefaultConfig()
	box := mustBox(t, 15, 15, 1)
	base, err := Slice(box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FlowMultiplier = 0.5
	half, err := Slice(box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// NetFilament excludes retract/unretract churn, which does not scale
	// with flow.
	fb := gcode.ComputeStats(base).NetFilament
	fh := gcode.ComputeStats(half).NetFilament
	ratio := fh / fb
	if math.Abs(ratio-0.5) > 0.02 {
		t.Errorf("flow 0.5 gave filament ratio %v, want ~0.5", ratio)
	}
}

func TestSliceRetractionsOnTravel(t *testing.T) {
	prog := sliceBox(t, 20, 20, 1)
	stats := gcode.ComputeStats(prog)
	if stats.Retractions == 0 {
		t.Error("no retractions emitted")
	}
}

func TestSliceCylinderAndTensileBar(t *testing.T) {
	cyl, err := NewCylinder(8, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Slice(cyl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gcode.ComputeStats(prog).PrintingMoves == 0 {
		t.Error("cylinder produced no printing moves")
	}

	bar, err := NewTensileBar(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog, err = Slice(bar, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := gcode.ComputeStats(prog)
	if st.PrintingMoves == 0 {
		t.Error("tensile bar produced no printing moves")
	}
	// The dog-bone is longer than wide.
	if st.Bounds.SizeX() <= st.Bounds.SizeY() {
		t.Errorf("tensile bar bounds %vx%v not elongated", st.Bounds.SizeX(), st.Bounds.SizeY())
	}
}

func TestSliceProgramReparses(t *testing.T) {
	prog := sliceBox(t, 10, 10, 0.6)
	re, err := gcode.ParseString(prog.String())
	if err != nil {
		t.Fatalf("slicer output failed to reparse: %v", err)
	}
	if len(re.Commands()) != len(prog.Commands()) {
		t.Errorf("reparse command count %d != %d", len(re.Commands()), len(prog.Commands()))
	}
}

func TestSliceLayerComments(t *testing.T) {
	prog := sliceBox(t, 10, 10, 1)
	text := prog.String()
	if !strings.Contains(text, ";LAYER:0") || !strings.Contains(text, ";LAYER:4") {
		t.Error("missing LAYER comments")
	}
}

func TestSliceValidation(t *testing.T) {
	box := mustBox(t, 10, 10, 1)
	bad := DefaultConfig()
	bad.LayerHeight = 0
	if _, err := Slice(box, bad); err == nil {
		t.Error("zero layer height accepted")
	}
	bad = DefaultConfig()
	bad.Perimeters = 0
	if _, err := Slice(box, bad); err == nil {
		t.Error("zero perimeters accepted")
	}
	bad = DefaultConfig()
	bad.FanSpeed = 300
	if _, err := Slice(box, bad); err == nil {
		t.Error("fan speed 300 accepted")
	}
	if _, err := Slice(nil, DefaultConfig()); err == nil {
		t.Error("nil shape accepted")
	}
}

func TestSliceSkirt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkirtLoops = 2
	cfg.SkirtGap = 3
	box := mustBox(t, 15, 15, 0.4)
	withSkirt, err := Slice(box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Slice(box, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ws := gcode.ComputeStats(withSkirt)
	ps := gcode.ComputeStats(plain)
	if ws.PrintingMoves <= ps.PrintingMoves {
		t.Error("skirt added no printing moves")
	}
	// The skirt extends the printed bounds beyond the part by the gap.
	if ws.Bounds.SizeX() <= ps.Bounds.SizeX() {
		t.Errorf("skirt bounds %v not larger than part bounds %v", ws.Bounds.SizeX(), ps.Bounds.SizeX())
	}
}

func TestSliceSolidLayers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SolidLayers = 1
	box := mustBox(t, 15, 15, 1.0)
	solid, err := Slice(box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Slice(box, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs := gcode.ComputeStats(solid).NetFilament
	fp := gcode.ComputeStats(sparse).NetFilament
	if fs <= fp*1.2 {
		t.Errorf("solid shells used %.1f mm vs sparse %.1f mm — not denser", fs, fp)
	}
}

func TestSliceSkirtValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkirtLoops = 1
	cfg.SkirtGap = 0
	if _, err := Slice(mustBox(t, 10, 10, 1), cfg); err == nil {
		t.Error("skirt without gap accepted")
	}
	cfg = DefaultConfig()
	cfg.SolidLayers = -1
	if _, err := Slice(mustBox(t, 10, 10, 1), cfg); err == nil {
		t.Error("negative solid layers accepted")
	}
}

func TestShapeConstructorsReject(t *testing.T) {
	if _, err := NewBox(0, 1, 1); err == nil {
		t.Error("NewBox(0,...) accepted")
	}
	if _, err := NewCylinder(-1, 1, 16); err == nil {
		t.Error("NewCylinder(-1,...) accepted")
	}
	if _, err := NewTensileBar(0, 1); err == nil {
		t.Error("NewTensileBar(0,...) accepted")
	}
}

func TestCylinderSegmentsFloor(t *testing.T) {
	c, err := NewCylinder(5, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Segments != 8 {
		t.Errorf("Segments = %d, want raised to 8", c.Segments)
	}
}

func TestBoxOutlineInset(t *testing.T) {
	b := mustBox(t, 10, 20, 5)
	outer := b.Outline(0)
	if len(outer) != 4 {
		t.Fatalf("outline has %d points", len(outer))
	}
	minX, minY, maxX, maxY := outer.Bounds()
	if maxX-minX != 10 || maxY-minY != 20 {
		t.Errorf("outer bounds %v,%v", maxX-minX, maxY-minY)
	}
	inner := b.Outline(1)
	iMinX, _, iMaxX, _ := inner.Bounds()
	if iMaxX-iMinX != 8 {
		t.Errorf("inset bounds X = %v, want 8", iMaxX-iMinX)
	}
	if b.Outline(5) != nil {
		t.Error("over-inset box returned a polygon")
	}
}

func TestCylinderOutlineRadius(t *testing.T) {
	c, _ := NewCylinder(10, 5, 64)
	pg := c.Outline(2)
	for _, p := range pg {
		r := math.Hypot(p.X, p.Y)
		if math.Abs(r-8) > 1e-9 {
			t.Fatalf("inset cylinder vertex radius %v, want 8", r)
		}
	}
	if c.Outline(10) != nil {
		t.Error("over-inset cylinder returned a polygon")
	}
}

func TestTensileBarOutlineNonConvex(t *testing.T) {
	bar, _ := NewTensileBar(60, 2)
	pg := bar.Outline(0)
	if len(pg) != 12 {
		t.Fatalf("dog-bone outline has %d points, want 12", len(pg))
	}
	// The waist must be narrower than the grips.
	_, minY, _, maxY := pg.Bounds()
	if maxY-minY != bar.GripWidth {
		t.Errorf("outline height %v != grip width %v", maxY-minY, bar.GripWidth)
	}
	// Scanline through the middle (y=0) must cross the gauge only: 2
	// crossings.
	xs := scanlineCrossings(pg, 0)
	if len(xs) != 2 {
		t.Errorf("mid scanline crossings = %d, want 2", len(xs))
	}
	// Scanline near the top crosses both grips: 4 crossings.
	xs = scanlineCrossings(pg, bar.GripWidth/2-0.5)
	if len(xs) != 4 {
		t.Errorf("grip scanline crossings = %d, want 4", len(xs))
	}
}

func TestScanlineCrossingsEvenProperty(t *testing.T) {
	bar, _ := NewTensileBar(60, 2)
	pg := bar.Outline(0)
	f := func(raw uint16) bool {
		y := (float64(raw)/65535 - 0.5) * 2 * bar.GripWidth
		return len(scanlineCrossings(pg, y))%2 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectilinearInfillCoversBox(t *testing.T) {
	pg := Polygon{{-5, -5}, {5, -5}, {5, 5}, {-5, 5}}
	segs := rectilinearInfill(pg, 1, false)
	if len(segs) != 10 {
		t.Fatalf("got %d infill lines, want 10", len(segs))
	}
	for _, s := range segs {
		if math.Abs(s.Length()-10) > 1e-9 {
			t.Errorf("infill line length %v, want 10", s.Length())
		}
		if s.A.Y != s.B.Y {
			t.Error("horizontal infill line is not horizontal")
		}
	}
	// Zig-zag: consecutive lines alternate direction.
	for i := 1; i < len(segs); i++ {
		prevDir := segs[i-1].B.X > segs[i-1].A.X
		dir := segs[i].B.X > segs[i].A.X
		if prevDir == dir {
			t.Fatal("infill does not alternate direction")
		}
	}
}

func TestRectilinearInfillVertical(t *testing.T) {
	pg := Polygon{{-5, -5}, {5, -5}, {5, 5}, {-5, 5}}
	segs := rectilinearInfill(pg, 1, true)
	if len(segs) != 10 {
		t.Fatalf("got %d vertical lines, want 10", len(segs))
	}
	for _, s := range segs {
		if s.A.X != s.B.X {
			t.Error("vertical infill line is not vertical")
		}
	}
}

func TestRectilinearInfillSkipsWaist(t *testing.T) {
	bar, _ := NewTensileBar(60, 2)
	pg := bar.Outline(0)
	segs := rectilinearInfill(pg, 1, false)
	// Lines through the grip band must be split into two segments (one
	// per grip); count segments shorter than the bar length.
	sawSplit := false
	for _, s := range segs {
		if s.Length() < bar.Length/2 {
			sawSplit = true
			break
		}
	}
	if !sawSplit {
		t.Error("non-convex infill never split a scanline")
	}
}

func TestRectilinearInfillDegenerate(t *testing.T) {
	if segs := rectilinearInfill(nil, 1, false); segs != nil {
		t.Error("nil polygon produced infill")
	}
	if segs := rectilinearInfill(Polygon{{0, 0}, {1, 1}}, 1, false); segs != nil {
		t.Error("2-point polygon produced infill")
	}
	pg := Polygon{{-5, -5}, {5, -5}, {5, 5}, {-5, 5}}
	if segs := rectilinearInfill(pg, 0, false); segs != nil {
		t.Error("zero spacing produced infill")
	}
}

func TestPolygonArea(t *testing.T) {
	sq := Polygon{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	if a := polygonArea(sq); a != 16 {
		t.Errorf("square area %v, want 16", a)
	}
	if a := polygonArea(Polygon{{0, 0}, {1, 1}}); a != 0 {
		t.Errorf("degenerate area %v, want 0", a)
	}
	// Clockwise winding still positive.
	cw := Polygon{{0, 4}, {4, 4}, {4, 0}, {0, 0}}
	if a := polygonArea(cw); a != 16 {
		t.Errorf("cw area %v, want 16", a)
	}
}

func TestPolygonPerimeter(t *testing.T) {
	sq := Polygon{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	if p := sq.Perimeter(); p != 16 {
		t.Errorf("perimeter %v, want 16", p)
	}
	if p := (Polygon{{1, 1}}).Perimeter(); p != 0 {
		t.Errorf("single point perimeter %v", p)
	}
}

func TestTotalLength(t *testing.T) {
	segs := []Segment{{Point{0, 0}, Point{3, 4}}, {Point{0, 0}, Point{1, 0}}}
	if l := totalLength(segs); l != 6 {
		t.Errorf("totalLength = %v, want 6", l)
	}
}
