package capture

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	tx := Transaction{Index: 42, X: 6060, Y: -8266, Z: 960, E: 52843}
	back := FromFrame(42, tx.Frame())
	if back != tx {
		t.Errorf("round trip: %+v != %+v", back, tx)
	}
}

// Property: Frame/FromFrame round-trips any counter values, including
// negatives.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(x, y, z, e int32, idx uint32) bool {
		tx := Transaction{Index: idx, X: x, Y: y, Z: z, E: e}
		return FromFrame(idx, tx.Frame()) == tx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColumn(t *testing.T) {
	tx := Transaction{X: 1, Y: 2, Z: 3, E: 4}
	for i, col := range Columns {
		v, err := tx.Column(col)
		if err != nil || v != int32(i+1) {
			t.Errorf("Column(%s) = %d, %v", col, v, err)
		}
	}
	if _, err := tx.Column("W"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestAppendContiguity(t *testing.T) {
	var r Recording
	if err := r.Append(Transaction{Index: 0}); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(Transaction{Index: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(Transaction{Index: 3}); err == nil {
		t.Error("gap in indices accepted")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestAppendArbitraryStart(t *testing.T) {
	// Excerpt files (like the paper's Figure 4 listing) start mid-print.
	var r Recording
	if err := r.Append(Transaction{Index: 5113}); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(Transaction{Index: 5114}); err != nil {
		t.Fatal(err)
	}
}

func TestFinal(t *testing.T) {
	var r Recording
	if _, ok := r.Final(); ok {
		t.Error("empty recording has a final transaction")
	}
	r.Append(Transaction{Index: 0, X: 5})
	r.Append(Transaction{Index: 1, X: 9})
	f, ok := r.Final()
	if !ok || f.X != 9 {
		t.Errorf("Final = %+v, %v", f, ok)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := &Recording{}
	r.Append(Transaction{Index: 0, X: 10, Y: -20, Z: 30, E: 40})
	r.Append(Transaction{Index: 1, X: 11, Y: -21, Z: 31, E: 41})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "Index, X, Y, Z, E\n") {
		t.Errorf("header: %q", buf.String())
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Transactions[1] != r.Transactions[1] {
		t.Errorf("round trip: %+v", back.Transactions)
	}
}

func TestCSVPaperFigure4Excerpt(t *testing.T) {
	// The exact text from Figure 4a must parse.
	src := `Index, X, Y, Z, E
5113, 6060, 8266, 960, 52843
5114, 6304, 8095, 960, 52856
5115, 7218, 8285, 960, 52856
5116, 8166, 8483, 960, 52856
5117, 8671, 8620, 960, 52859
5118, 8384, 8733, 960, 52875
`
	r, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 6 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Transactions[0].Index != 5113 || r.Transactions[5].E != 52875 {
		t.Errorf("parsed %+v", r.Transactions)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"bogus header\n1, 2, 3, 4, 5\n",
		"Index, X, Y, Z, E\n1, 2, 3\n",
		"Index, X, Y, Z, E\na, 2, 3, 4, 5\n",
		"Index, X, Y, Z, E\n-1, 2, 3, 4, 5\n",
		"Index, X, Y, Z, E\n0, 1, 1, 1, 1\n5, 1, 1, 1, 1\n", // gap
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("ReadCSV(%q) accepted", src)
		}
	}
}

func TestCSVBlankLinesTolerated(t *testing.T) {
	src := "Index, X, Y, Z, E\n0, 1, 2, 3, 4\n\n1, 2, 3, 4, 5\n"
	r, err := ReadCSV(strings.NewReader(src))
	if err != nil || r.Len() != 2 {
		t.Errorf("blank-line parse: %v, len %d", err, r.Len())
	}
}
