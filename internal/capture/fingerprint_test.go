package capture

import (
	"strings"
	"testing"

	"offramps/internal/sim"
)

func sampleRecording() *Recording {
	rec := &Recording{Period: 100 * sim.Millisecond, StartedAt: 2 * sim.Second}
	for i, tx := range []Transaction{
		{Index: 0, X: 10, Y: 20, Z: 0, E: 5},
		{Index: 1, X: 30, Y: 15, Z: 0, E: 12},
		{Index: 2, X: 25, Y: 40, Z: 4, E: 20},
	} {
		tx.Index = uint32(i)
		if err := rec.Append(tx); err != nil {
			panic(err)
		}
	}
	return rec
}

func TestWindowTime(t *testing.T) {
	rec := sampleRecording()
	// Ticker semantics: window i is exported one full period after the
	// previous, the first at StartedAt+Period.
	for i, want := range []sim.Time{2100 * sim.Millisecond, 2200 * sim.Millisecond, 2300 * sim.Millisecond} {
		at, err := rec.WindowTime(i)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if at != want {
			t.Errorf("window %d at %v, want %v", i, at, want)
		}
	}
	for _, i := range []int{-1, 3} {
		if _, err := rec.WindowTime(i); err == nil {
			t.Errorf("window %d: out-of-range index tolerated", i)
		}
	}
}

func TestWindowTimeZeroPeriod(t *testing.T) {
	// ReadCSV leaves Period zero: window times must error, not
	// extrapolate garbage.
	rec, err := ReadCSV(strings.NewReader("Index, X, Y, Z, E\n0, 1, 2, 3, 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.WindowTime(0); err == nil {
		t.Fatal("zero-period recording produced a window time")
	}
}

func TestFingerprintStreamingMatchesRecomputed(t *testing.T) {
	rec := sampleRecording()
	fp := Fingerprint{Period: rec.Period, StartedAt: rec.StartedAt}
	for _, tx := range rec.Transactions {
		fp.Add(tx)
	}
	want := FingerprintOf(rec)
	if !fp.Equal(&want) {
		t.Errorf("streamed fingerprint differs from recomputed:\n%v\n%v", &fp, &want)
	}
	if fp.Windows != rec.Len() {
		t.Errorf("windows = %d, want %d", fp.Windows, rec.Len())
	}
}

func TestFingerprintDigestSensitivity(t *testing.T) {
	rec := sampleRecording()
	a := FingerprintOf(rec)
	rec.Transactions[1].E++
	b := FingerprintOf(rec)
	if a.Digest == b.Digest {
		t.Error("digest unchanged by a counter mutation")
	}
	if a.Equal(&b) {
		t.Error("fingerprints of different captures compare equal")
	}
}

func TestFingerprintAxisSummaries(t *testing.T) {
	rec := sampleRecording()
	fp := FingerprintOf(rec)
	// Axis X: values 10, 30, 25 → final 25, min 10, max 30, total |Δ| =
	// 20 + 5 (the first window seeds prev; its delta is not counted).
	x := fp.Axes[0]
	if x.Final != 25 || x.Min != 10 || x.Max != 30 || x.TotalAbsDelta != 25 {
		t.Errorf("X summary = %+v", x)
	}
	// Axis E: 5, 12, 20 monotonic → final = max = 20, total |Δ| = 15.
	e := fp.Axes[3]
	if e.Final != 20 || e.Max != 20 || e.TotalAbsDelta != 15 {
		t.Errorf("E summary = %+v", e)
	}
}

func TestFingerprintReset(t *testing.T) {
	rec := sampleRecording()
	fp := Fingerprint{Period: rec.Period}
	for _, tx := range rec.Transactions {
		fp.Add(tx)
	}
	fp.Reset()
	if fp.Windows != 0 || fp.Digest != 0 {
		t.Errorf("reset left state: %+v", fp)
	}
	if fp.Period != rec.Period {
		t.Error("reset cleared the configured period")
	}
	for _, tx := range rec.Transactions {
		fp.Add(tx)
	}
	want := FingerprintOf(rec)
	want.StartedAt = fp.StartedAt
	if !fp.Equal(&want) {
		t.Error("fingerprint after reset differs from a fresh one")
	}
}
